// Package probgraph is a library for threshold-based subgraph similarity
// search over large probabilistic graph databases with correlated edge
// existence, reproducing Yuan, Wang, Chen and Wang, "Efficient Subgraph
// Similarity Search on Large Probabilistic Graph Databases", PVLDB 5(9),
// VLDB 2012.
//
// A probabilistic graph is a labeled undirected graph whose edges exist
// with probabilities given jointly — joint probability tables (JPTs) over
// local "neighbor edge" sets capture correlations such as co-occurring
// protein interactions or congestion spreading between adjacent road
// segments. A T-PS query asks: given a query graph q, an edge-distance
// tolerance δ and a probability threshold ε, which database graphs g have
//
//	Pr( dis(q, world of g) ≤ δ )  ≥  ε ?
//
// Computing that probability is #P-complete, so the engine answers with the
// paper's filter-and-verify pipeline: structural pruning on the certain
// graphs, probabilistic pruning through the PMI index (feature-wise lower
// and upper bounds on subgraph isomorphism probability, combined per query
// by greedy set cover and a relaxed quadratic program), and a Karp–Luby
// Monte-Carlo verifier backed by an exact junction-tree inference engine.
//
// # Quick start
//
//	b := probgraph.NewGraphBuilder("g1")
//	u := b.AddVertex("A")
//	v := b.AddVertex("B")
//	e, _ := b.AddEdge(u, v, "")
//	pg, _ := probgraph.NewIndependentPGraph(b.Build(),
//	    map[probgraph.EdgeID]float64{e: 0.8})
//
//	db, _ := probgraph.NewDatabase([]*probgraph.PGraph{pg},
//	    probgraph.DefaultBuildOptions())
//	res, _ := db.QueryCtx(ctx, query,
//	    probgraph.QueryOptions{Epsilon: 0.5, Delta: 1})
//
// # Contexts and streaming
//
// Every query entry point has a context-first form — QueryCtx,
// QueryTopKCtx, QueryBatchCtx — that threads ctx through the whole
// pipeline: cancellation (or a deadline) is checked per postings shard,
// per exact confirmation, and per candidate evaluation, so a cancelled
// query returns ctx.Err() promptly, leaks no goroutines, and never
// returns a partial result. The context-free forms remain thin
// context.Background() wrappers with unchanged behavior.
//
// Database.QueryStream delivers answers incrementally: it yields each
// verified Match the moment the prune+verify stage admits it, in arrival
// order, as an iter.Seq2[Match, error]. The collected stream, re-sorted
// by graph index, is bitwise-identical to Query's answer set and SSP
// estimates at every worker count — arrival order is the only
// scheduling-dependent aspect. Breaking out of the loop early cancels and
// joins the internal workers before the iterator returns.
//
// # Concurrency
//
// The pipeline is embarrassingly parallel across database graphs, and the
// engine exploits that: QueryOptions.Concurrency bounds a worker pool that
// scans the structural filter's inverted-postings shards, confirms the
// survivors, and evaluates candidates (bound combination and verification)
// in parallel, both in Query/QueryTopK and across the queries of
// Database.QueryBatch.
// Results are deterministic at every worker count — all per-candidate
// randomness is seeded from QueryOptions.Seed and the candidate's graph
// index, never from scheduling order — so a parallel run returns exactly
// what the serial run would.
//
// # Generations and mutation
//
// A Database is a first-class mutable store built from immutable,
// generation-numbered views. Every query pins the current View at entry
// and runs against it untouched, while AddGraph, RemoveGraph, and
// ReplaceGraph build the next view copy-on-write under a writer lock —
// mutations never block queries, queries never block mutations, and a
// query started before a mutation answers bitwise-identically to one run
// before it. Each mutator returns the new generation number.
//
// Removal is tombstone-based: the slot's postings and PMI column stay in
// place, masked, and surviving graph indices are stable. Compact rewrites
// the indexes without the tombstones (renumbering survivors);
// SetCompactThreshold arms automatic compaction. Pin a View explicitly
// (Database.View) to run a multi-query analysis against one frozen state.
//
// See the examples directory for complete programs: examples/quickstart
// walks the paper's own Figure 1 instance, examples/ppi searches a
// synthetic protein-interaction workload and compares the correlated model
// against the independent-edge baseline, and examples/roadnet mines
// reliable route patterns in a congestion-correlated road grid.
package probgraph

import (
	"io"
	"math/rand"

	"probgraph/internal/core"
	"probgraph/internal/dataset"
	"probgraph/internal/feature"
	"probgraph/internal/graph"
	"probgraph/internal/pmi"
	"probgraph/internal/prob"
	"probgraph/internal/verify"
)

// Core graph model.
type (
	// Graph is an immutable labeled undirected graph.
	Graph = graph.Graph
	// GraphBuilder assembles a Graph.
	GraphBuilder = graph.Builder
	// Label is a vertex or edge label.
	Label = graph.Label
	// VertexID addresses a vertex within one graph.
	VertexID = graph.VertexID
	// EdgeID addresses an edge within one graph.
	EdgeID = graph.EdgeID
	// EdgeSet is a bitset over a graph's edges (possible worlds,
	// embeddings).
	EdgeSet = graph.EdgeSet
)

// Probabilistic model.
type (
	// PGraph is a probabilistic graph: certain structure plus JPT factors.
	PGraph = prob.PGraph
	// JPT is a joint probability table over a neighbor-edge set.
	JPT = prob.JPT
	// InferenceEngine performs exact probability queries and world
	// sampling over one PGraph.
	InferenceEngine = prob.Engine
)

// Database and queries.
type (
	// Database is an indexed probabilistic graph database.
	Database = core.Database
	// DatabaseView is one immutable, generation-numbered state of a
	// Database: Database.View pins the current one, every query method
	// exists on it, and no mutation ever changes a pinned view.
	DatabaseView = core.View
	// BuildOptions configures indexing (feature mining α/β/γ/maxL, PMI
	// construction, OPT-SIPBound vs SIPBound).
	BuildOptions = core.BuildOptions
	// QueryOptions configures one T-PS query (ε, δ, OPT-SSPBound vs
	// SSPBound, verifier choice, Concurrency worker-pool bound).
	QueryOptions = core.QueryOptions
	// Result is a query outcome with per-phase statistics.
	Result = core.Result
	// QueryStats instruments the pipeline phases.
	QueryStats = core.Stats
	// VerifierKind selects SMP, Exact, or no verification.
	VerifierKind = core.VerifierKind
	// VerifyOptions tunes the SMP estimator.
	VerifyOptions = verify.Options
	// FeatureOptions are the miner knobs (paper Algorithm 4).
	FeatureOptions = feature.Options
	// PMIOptions are the index construction knobs (paper §4.1).
	PMIOptions = pmi.Options
)

// Verifier kinds.
const (
	// VerifierSMP is the paper's Algorithm 5 Monte-Carlo sampler.
	VerifierSMP = core.VerifierSMP
	// VerifierExact is the Equation 21 inclusion–exclusion baseline.
	VerifierExact = core.VerifierExact
	// VerifierNone stops after pruning.
	VerifierNone = core.VerifierNone
)

// NewGraphBuilder returns a builder for a graph with the given name.
func NewGraphBuilder(name string) *GraphBuilder { return graph.NewBuilder(name) }

// NewPGraph validates and assembles a probabilistic graph from a certain
// graph and JPT factors. Edges not covered by any JPT are certain.
func NewPGraph(g *Graph, jpts []JPT) (*PGraph, error) { return prob.New(g, jpts) }

// NewIndependentPGraph builds a probabilistic graph whose listed edges
// exist independently with the given probabilities (the paper's IND
// baseline model).
func NewIndependentPGraph(g *Graph, edgeProb map[EdgeID]float64) (*PGraph, error) {
	return prob.NewIndependent(g, edgeProb)
}

// NewInferenceEngine builds an exact inference engine over pg: partition
// function, conjunction probabilities, marginals, and exact world sampling.
func NewInferenceEngine(pg *PGraph) (*InferenceEngine, error) { return prob.NewEngine(pg) }

// NewDatabase indexes probabilistic graphs for T-PS queries: it builds
// per-graph inference engines, mines PMI features, constructs the PMI, and
// prepares the structural filter.
func NewDatabase(graphs []*PGraph, opt BuildOptions) (*Database, error) {
	return core.NewDatabase(graphs, opt)
}

// DefaultBuildOptions returns the paper's default configuration
// (OPT-SIPBound index, α=β=γ=0.15 mining thresholds).
func DefaultBuildOptions() BuildOptions { return core.DefaultBuildOptions() }

// Database.AddGraph (on the aliased core type) inserts one graph
// incrementally — engine, structural counts, and PMI column — without
// re-mining the feature vocabulary; Database.RemoveGraph tombstones a
// slot and Database.ReplaceGraph swaps a slot's graph in place (the
// re-scored-JPT case). Each returns the new generation; Database.Compact
// drops accumulated tombstones. All mutations are copy-on-write against
// immutable views, so none of them ever blocks a running query.
//
// Database.QueryBatch (also on the aliased core type) answers many queries
// over one bounded worker pool of QueryOptions.Concurrency goroutines,
// sharing a feature-relation cache that amortizes the query-side feature
// isomorphism tests across structurally overlapping queries. Query i runs
// with the derived seed BatchSeed(Seed, i), so batching never changes an
// individual query's result.

// BatchSeed is the per-query seed Database.QueryBatch derives for the i-th
// query of a batch; running Query with it reproduces that batch member.
func BatchSeed(seed int64, i int) int64 { return core.BatchSeed(seed, i) }

// TopKItem is one ranked answer of Database.QueryTopK: the k graphs with
// the highest subgraph similarity probability, verified in decreasing
// upper-bound order with bound-based early termination.
type TopKItem = core.TopKItem

// Match is one incremental answer of Database.QueryStream: the matching
// graph's database index and its SSP (-1 when the graph was admitted by a
// lower bound without re-estimation, mirroring Result.SSP).
//
// Database.QueryCtx, QueryTopKCtx, QueryBatchCtx (on the aliased core
// type) are the context-first forms of the query API; QueryStream(ctx, q,
// opt) yields Matches in verification-arrival order as an
// iter.Seq2[Match, error]. See the package comment's "Contexts and
// streaming" section for the cancellation and determinism contracts.
type Match = core.Match

// PMIIndex is the probabilistic matrix index; Database.PMI exposes it and
// SavePMI/LoadPMI persist it independently of the data.
type PMIIndex = pmi.Index

// LoadPMI reads an index written by (*PMIIndex).Save. Pair it only with
// the database it was built from.
func LoadPMI(r io.Reader) (*PMIIndex, error) { return pmi.Load(r) }

// Dataset helpers.
type (
	// DatasetOptions shapes the synthetic PPI-like generator.
	DatasetOptions = dataset.PPIOptions
	// Dataset is a generated database with organism ground truth.
	Dataset = dataset.DB
)

// GeneratePPI synthesizes a PPI-like probabilistic graph database with
// organism families (see DESIGN.md for the substitution rationale).
func GeneratePPI(opt DatasetOptions) (*Dataset, error) { return dataset.GeneratePPI(opt) }

// IndependentCounterpart rebuilds a dataset with the same certain graphs
// whose edges exist independently with the correlated model's marginal
// probabilities — the clean IND baseline of the paper's Figure 14.
func IndependentCounterpart(db *Dataset) (*Dataset, error) {
	return dataset.IndependentCounterpart(db)
}

// GenerateRoadGrid builds a congestion-correlated road-grid probabilistic
// graph (the paper's road-network motivation).
func GenerateRoadGrid(n, m int, meanProb, boost float64, rng *rand.Rand) (*PGraph, error) {
	return dataset.GenerateRoadGrid(n, m, meanProb, boost, rng)
}

// ExtractQuery carves a connected query subgraph with the given edge count
// out of a certain graph.
func ExtractQuery(g *Graph, edges int, rng *rand.Rand) *Graph {
	return dataset.ExtractQuery(g, edges, rng)
}

// PaperFigure1 reconstructs the paper's running example: probabilistic
// graphs 001 and 002 and the query q.
func PaperFigure1() (g001, g002 *PGraph, q *Graph, err error) { return dataset.PaperFigure1() }

// SaveDataset writes a dataset in the text format understood by the cmd/
// tools; LoadDataset reads it back.
func SaveDataset(w io.Writer, db *Dataset) error { return dataset.Save(w, db) }

// LoadDataset reads a dataset written by SaveDataset.
func LoadDataset(r io.Reader) (*Dataset, error) { return dataset.Load(r) }

// LoadDatabase reads a full-database snapshot written by Database.Save (on
// the aliased core type): graphs, JPTs, mined features, structural filter,
// and PMI restore bitwise-identical, only the per-graph inference engines
// are rebuilt. No feature mining or bound computation runs, which is what
// lets a serving process (cmd/pgserve) start in parse time and answer
// queries exactly as the database that wrote the snapshot would.
func LoadDatabase(r io.Reader) (*Database, error) { return core.LoadDatabase(r) }

// SnapshotFormat selects the on-disk snapshot encoding for SaveFile and
// SaveAs (on the aliased core type): SnapshotText is the line-oriented v3
// format, SnapshotBinary the mmap-friendly v4 one. LoadDatabase and
// OpenSnapshot sniff the format, so readers never choose.
type SnapshotFormat = core.SnapshotFormat

const (
	SnapshotText   = core.SnapshotText
	SnapshotBinary = core.SnapshotBinary
)

// ParseSnapshotFormat reads a -format flag value ("text", "binary", or
// empty for the default).
func ParseSnapshotFormat(s string) (SnapshotFormat, error) { return core.ParseSnapshotFormat(s) }

// OpenSnapshot opens a snapshot file directly: binary (v4) snapshots are
// memory-mapped, so startup does no full-corpus parse and the page cache
// is shared across processes serving the same file; text snapshots fall
// back to LoadDatabase. Either way the database answers bitwise like the
// one that wrote the file.
func OpenSnapshot(path string) (*Database, error) { return core.OpenSnapshot(path) }

// PartitionRanges splits n database slots into the given number of
// contiguous [lo, hi) ranges, as evenly as possible — the canonical
// cluster partition rule behind Database.Partition / SaveRange (also on
// the aliased core type) and pgproxy's sharded serving: each range is
// saved as a read-only partition snapshot whose queries answer
// bitwise-identically to the full database for the graphs it holds.
func PartitionRanges(n, shards int) ([][2]int, error) { return core.PartitionRanges(n, shards) }

// SaveGraph writes one certain graph in the line-oriented text codec (the
// format of pgsearch -qfile query files). Labels survive spaces, '#', and
// unicode via token escaping.
func SaveGraph(w io.Writer, g *Graph) error { return graph.Encode(w, g) }

// LoadGraphs reads all graphs from a stream of SaveGraph blocks.
func LoadGraphs(r io.Reader) ([]*Graph, error) {
	dec := graph.NewDecoder(r)
	var out []*Graph
	for {
		g, err := dec.Decode()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, g)
	}
}
