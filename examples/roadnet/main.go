// Command roadnet demonstrates the paper's road-network motivation:
// congestion on one road segment correlates with congestion on adjacent
// segments, and route-pattern queries must account for that. It builds a
// database of congestion-correlated road grids (edge present = segment
// flowing), then asks which districts contain a reliable instance of a
// given route pattern with probability ≥ ε.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"probgraph"
	"probgraph/internal/stats"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A database of district grids with varying congestion levels: higher
	// meanProb = segments more likely to flow.
	var graphs []*probgraph.PGraph
	var names []string
	for i, cfg := range []struct {
		n, m  int
		flow  float64
		boost float64
	}{
		{3, 4, 0.85, 0.4}, {3, 4, 0.7, 0.6}, {4, 4, 0.55, 0.8},
		{3, 5, 0.8, 0.5}, {4, 4, 0.75, 0.4}, {3, 4, 0.45, 1.0},
		{4, 5, 0.65, 0.7}, {4, 4, 0.9, 0.3},
	} {
		pg, err := probgraph.GenerateRoadGrid(cfg.n, cfg.m, cfg.flow, cfg.boost, rng)
		if err != nil {
			log.Fatal(err)
		}
		graphs = append(graphs, pg)
		names = append(names, fmt.Sprintf("district-%d(%dx%d,flow=%.2f)", i, cfg.n, cfg.m, cfg.flow))
	}

	opt := probgraph.DefaultBuildOptions()
	opt.Feature.Beta = 0.3
	opt.Feature.MaxL = 4
	db, err := probgraph.NewDatabase(graphs, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Indexed %d districts, %d route features mined\n\n", len(graphs), db.Build().Features)

	// Route pattern: an L-shaped connection through the center zone —
	// suburb → center → center → suburb.
	qb := probgraph.NewGraphBuilder("route-L")
	s1 := qb.AddVertex("suburb")
	c1 := qb.AddVertex("center")
	c2 := qb.AddVertex("center")
	s2 := qb.AddVertex("suburb")
	qb.MustAddEdge(s1, c1, "road")
	qb.MustAddEdge(c1, c2, "road")
	qb.MustAddEdge(c2, s2, "road")
	q := qb.Build()
	fmt.Println("Route pattern:", q)

	table := stats.NewTable("Districts with a reliable route instance",
		"epsilon", "delta", "matching districts")
	for _, eps := range []float64{0.3, 0.5, 0.7, 0.9} {
		for _, delta := range []int{0, 1} {
			res, err := db.Query(q, probgraph.QueryOptions{
				Epsilon: eps, Delta: delta, OptBounds: true, Seed: 5,
			})
			if err != nil {
				log.Fatal(err)
			}
			list := ""
			for i, gi := range res.Answers {
				if i > 0 {
					list += ", "
				}
				list += names[gi]
			}
			if list == "" {
				list = "(none)"
			}
			table.AddRow(eps, delta, list)
		}
	}
	table.Render(os.Stdout)
	fmt.Println("\nHigher ε demands more reliable routes; δ=1 tolerates one broken segment.")
}
