// Command indexing inspects the PMI index: it builds a database, dumps the
// feature matrix with its SIP bounds (the paper's Figure 4 view), compares
// the OPT-SIPBound and SIPBound index variants, and shows how pruning power
// responds — the paper's §4 story in one program.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"probgraph"
	"probgraph/internal/stats"
)

func main() {
	raw, err := probgraph.GeneratePPI(probgraph.DatasetOptions{
		NumGraphs: 16, Organisms: 2, MinVertices: 7, MaxVertices: 10,
		Correlated: true, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}

	build := func(optimize bool) *probgraph.Database {
		opt := probgraph.DefaultBuildOptions()
		opt.Feature.Beta = 0.25
		opt.Feature.MaxL = 4
		opt.PMI.Optimize = optimize
		db, err := probgraph.NewDatabase(raw.Graphs, opt)
		if err != nil {
			log.Fatal(err)
		}
		return db
	}
	optDB := build(true)
	plainDB := build(false)

	fmt.Printf("OPT-SIPBound index: %d features, %d bytes, built in %v (mining %v + PMI %v)\n",
		optDB.Build().Features, optDB.Build().IndexSizeBytes,
		optDB.Build().FeatureTime+optDB.Build().PMITime, optDB.Build().FeatureTime, optDB.Build().PMITime)
	fmt.Printf("SIPBound index:     %d features, %d bytes\n\n", plainDB.Build().Features, plainDB.Build().IndexSizeBytes)

	// The PMI matrix view (paper Figure 4) for the first few features and
	// graphs: ⟨LowerB, UpperB⟩ for contained features, ⟨0⟩ otherwise.
	table := stats.NewTable("PMI matrix excerpt (rows = features, cols = graphs 0-5)",
		"feature", "g0", "g1", "g2", "g3", "g4", "g5")
	maxRows := optDB.PMI().NumFeatures()
	if maxRows > 8 {
		maxRows = 8
	}
	for fi := 0; fi < maxRows; fi++ {
		cells := []interface{}{fmt.Sprintf("f%d(%de)", fi, optDB.PMI().Features[fi].NumEdges())}
		for gi := 0; gi < 6 && gi < len(raw.Graphs); gi++ {
			e := optDB.PMI().Entries[fi][gi]
			if !e.Contained {
				cells = append(cells, "<0>")
			} else {
				cells = append(cells, fmt.Sprintf("<%.2f,%.2f>", e.Lower, e.Upper))
			}
		}
		table.AddRow(cells...)
	}
	table.Render(os.Stdout)
	fmt.Println()

	// Bound tightness: average width of contained entries per variant.
	width := func(db *probgraph.Database) (float64, int) {
		total, n := 0.0, 0
		for fi := range db.PMI().Entries {
			for gi := range db.PMI().Entries[fi] {
				e := db.PMI().Entries[fi][gi]
				if e.Contained {
					total += e.Upper - e.Lower
					n++
				}
			}
		}
		if n == 0 {
			return 0, 0
		}
		return total / float64(n), n
	}
	ow, on := width(optDB)
	pw, _ := width(plainDB)
	fmt.Printf("Average bound width over %d contained entries: OPT %.4f vs plain %.4f\n", on, ow, pw)

	// Pruning-power comparison over a few queries: fraction of structural
	// candidates resolved without verification.
	rng := rand.New(rand.NewSource(23))
	resolve := func(db *probgraph.Database, seed int64) float64 {
		resolved, total := 0, 0
		for trial := 0; trial < 5; trial++ {
			q := probgraph.ExtractQuery(raw.Graphs[trial%len(raw.Graphs)].G, 4, rng)
			res, err := db.Query(q, probgraph.QueryOptions{
				Epsilon: 0.4, Delta: 1, OptBounds: true,
				Verifier: probgraph.VerifierNone, Seed: seed + int64(trial),
			})
			if err != nil {
				log.Fatal(err)
			}
			total += res.Stats.StructConfirmed
			resolved += res.Stats.PrunedByUpper + res.Stats.AcceptedByLower
		}
		if total == 0 {
			return 0
		}
		return float64(resolved) / float64(total)
	}
	rng = rand.New(rand.NewSource(23))
	fOpt := resolve(optDB, 1)
	rng = rand.New(rand.NewSource(23))
	fPlain := resolve(plainDB, 1)
	fmt.Printf("Structural candidates resolved by PMI pruning alone: OPT %.0f%% vs plain %.0f%%\n",
		100*fOpt, 100*fPlain)
}
