// Command topk ranks database graphs by subgraph similarity probability
// instead of thresholding: "which five interaction networks most reliably
// contain this pathway?" It exercises QueryTopK, which verifies candidates
// in decreasing Usim order and stops as soon as no remaining upper bound
// can beat the current k-th best — the natural top-k extension of the
// paper's bound machinery.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"probgraph"
	"probgraph/internal/stats"
)

func main() {
	raw, err := probgraph.GeneratePPI(probgraph.DatasetOptions{
		NumGraphs: 30, Organisms: 3,
		MinVertices: 8, MaxVertices: 12,
		MeanProb: 0.65, Mutations: 0.2,
		Correlated: true, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	opt := probgraph.DefaultBuildOptions()
	opt.Feature.Beta = 0.2
	opt.Feature.MaxL = 4
	db, err := probgraph.NewDatabase(raw.Graphs, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d graphs (%d features)\n\n", db.Len(), db.Build().Features)

	rng := rand.New(rand.NewSource(2))
	q := probgraph.ExtractQuery(raw.Seeds[1], 5, rng)
	fmt.Println("pathway query:", q)

	const k = 5
	top, err := db.QueryTopK(q, k, probgraph.QueryOptions{
		Delta: 1, OptBounds: true, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	table := stats.NewTable(fmt.Sprintf("top-%d most similar graphs (δ=1)", k),
		"rank", "graph", "organism", "SSP")
	for i, item := range top {
		table.AddRow(i+1, raw.Graphs[item.Graph].G.Name(), raw.Organism[item.Graph], item.SSP)
	}
	table.Render(os.Stdout)
	fmt.Println("\nThe query came from organism 1's seed network; its family should")
	fmt.Println("dominate the ranking.")
}
