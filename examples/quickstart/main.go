// Command quickstart walks the paper's running example (Figure 1 /
// Example 1): a two-graph probabilistic database, the query q, and a
// threshold query answered three ways — naive possible-world enumeration,
// the exact inclusion–exclusion verifier, and the full filter-and-verify
// pipeline — to show they agree.
package main

import (
	"fmt"
	"log"

	"probgraph"
)

func main() {
	g001, g002, q, err := probgraph.PaperFigure1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Probabilistic graph database (paper Figure 1):")
	fmt.Println(" ", g001.G)
	fmt.Println(" ", g002.G)
	fmt.Println("Query:", q)
	fmt.Println()

	// Index the database. Small thresholds because the "database" has two
	// graphs; real workloads use the defaults.
	opt := probgraph.DefaultBuildOptions()
	opt.Feature.Beta = 0.4
	opt.Feature.Alpha = 0.05
	opt.Feature.Gamma = 0.05
	opt.Feature.MaxL = 3
	db, err := probgraph.NewDatabase([]*probgraph.PGraph{g001, g002}, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Indexed: %d PMI features, %d bytes of index\n\n",
		db.Build().Features, db.Build().IndexSizeBytes)

	// The subgraph similarity probability of q against each graph, by
	// exhaustive possible-world enumeration (the naive Section 1.1
	// algorithm — feasible only because these graphs are tiny).
	const delta = 1
	for gi, pg := range db.Graphs() {
		ssp, err := db.ExactSSPByEnumeration(q, gi, delta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Pr(q ⊆sim %s) with δ=%d: %.4f\n", pg.G.Name(), delta, ssp)
	}
	fmt.Println()

	// Threshold query: ε = 0.35, δ = 1 (Example 1 runs the same shape with
	// ε = 0.4; our fixture fills the JPT rows the paper leaves unprinted,
	// so the exact SSP is 0.387 instead of the paper's 0.45 — the behavior
	// matches: graph 002 clears the threshold, graph 001 does not).
	const epsilon = 0.35
	res, err := db.Query(q, probgraph.QueryOptions{
		Epsilon:   epsilon,
		Delta:     delta,
		OptBounds: true,
		Verifier:  probgraph.VerifierExact,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T-PS query ε=%.2f δ=%d answers: ", epsilon, delta)
	for _, gi := range res.Answers {
		fmt.Printf("%s ", db.Graphs()[gi].G.Name())
	}
	fmt.Println()
	fmt.Printf("pipeline: %d structural candidates, %d pruned by Usim, %d accepted by Lsim, %d verified\n",
		res.Stats.StructConfirmed,
		res.Stats.PrunedByUpper,
		res.Stats.AcceptedByLower,
		res.Stats.VerifyCandidates)
}
