// Command ppi reproduces the paper's motivating workload: subgraph
// similarity search over protein-protein interaction networks whose
// interactions are correlated. It generates a synthetic STRING-like
// database of organism families, extracts pathway queries from a family,
// and shows (a) the filter-and-verify pipeline answering threshold queries
// and (b) the paper's Figure 14 observation — the correlated model
// classifies organisms better than the independent-edge model.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"probgraph"
	"probgraph/internal/stats"
)

func main() {
	const (
		numGraphs = 36
		organisms = 4
		delta     = 1
		epsilon   = 0.4
	)
	fmt.Printf("Generating %d PPI-like probabilistic graphs (%d organisms)...\n", numGraphs, organisms)

	raw, err := probgraph.GeneratePPI(probgraph.DatasetOptions{
		NumGraphs: numGraphs, Organisms: organisms,
		MinVertices: 8, MaxVertices: 12, EdgeFactor: 1.4,
		MeanProb: 0.7, Mutations: 0.15,
		Correlated: true, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	// IND = the marginal-preserving independent counterpart: identical
	// per-edge marginals, correlations dropped (the paper's Figure 14
	// baseline).
	indRaw, err := probgraph.IndependentCounterpart(raw)
	if err != nil {
		log.Fatal(err)
	}
	build := func(d *probgraph.Dataset) *probgraph.Database {
		opt := probgraph.DefaultBuildOptions()
		opt.Feature.Beta = 0.2
		opt.Feature.MaxL = 4
		db, err := probgraph.NewDatabase(d.Graphs, opt)
		if err != nil {
			log.Fatal(err)
		}
		return db
	}
	corDB := build(raw)
	indDB := build(indRaw)
	fmt.Printf("Indexed: %d PMI features (COR), %d (IND)\n\n", corDB.Build().Features, indDB.Build().Features)

	// Part 1: one threshold query in detail on the correlated model.
	rng := rand.New(rand.NewSource(3))
	q := probgraph.ExtractQuery(raw.Seeds[0], 5, rng)
	fmt.Println("Query (pathway fragment from organism 0):", q)
	res, err := corDB.Query(q, probgraph.QueryOptions{
		Epsilon: epsilon, Delta: delta, OptBounds: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε=%.2f δ=%d: %d answers; pipeline %d→%d→%d (struct→PMI→verified), %.1fms total\n",
		epsilon, delta, len(res.Answers),
		res.Stats.StructConfirmed, res.Stats.VerifyCandidates+res.Stats.AcceptedByLower,
		res.Stats.Answers, float64(res.Stats.TimeTotal.Microseconds())/1000)
	fmt.Println()

	// Part 2: COR vs IND organism classification (paper Figure 14).
	table := stats.NewTable("Organism classification quality (COR vs IND)",
		"epsilon", "COR-precision", "COR-recall", "IND-precision", "IND-recall")
	for _, eps := range []float64{0.3, 0.4, 0.5, 0.6} {
		var corP, corR, indP, indR []float64
		for trial := 0; trial < 6; trial++ {
			fam := trial % organisms
			q := probgraph.ExtractQuery(raw.Seeds[fam], 4, rng)
			if q.NumEdges() == 0 {
				continue
			}
			var truth []int
			for gi, f := range raw.Organism {
				if f == fam {
					truth = append(truth, gi)
				}
			}
			for _, cfg := range []struct {
				db  *probgraph.Database
				ps  *[]float64
				rs  *[]float64
				tag string
			}{{corDB, &corP, &corR, "cor"}, {indDB, &indP, &indR, "ind"}} {
				r, err := cfg.db.Query(q, probgraph.QueryOptions{
					Epsilon: eps, Delta: delta, OptBounds: true, Seed: int64(trial),
				})
				if err != nil {
					log.Fatal(err)
				}
				p, rc := stats.PrecisionRecall(r.Answers, truth)
				*cfg.ps = append(*cfg.ps, p)
				*cfg.rs = append(*cfg.rs, rc)
			}
		}
		table.AddRow(eps, mean(corP), mean(corR), mean(indP), mean(indR))
	}
	table.Render(os.Stdout)
	fmt.Println("\nAs ε grows, recall falls and precision rises for both models; the")
	fmt.Println("correlated model retains organism signal at high thresholds where the")
	fmt.Println("independent approximation starts missing members (paper Figure 14;")
	fmt.Println("run cmd/pgbench -fig 14 for the full sweep at larger scale).")
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
