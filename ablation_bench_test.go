// Ablation benchmarks for the design choices the paper motivates and
// DESIGN.md documents: clique-optimized vs greedy bound families
// (OPT-SIPBound vs SIPBound), optimized vs random query-time bound
// combination (OPT-SSPBound vs SSPBound), Monte-Carlo sample counts, and
// the load-bearing kernels (VF2, canonical codes, minimal cuts).
package probgraph_test

import (
	"math/rand"
	"testing"

	"probgraph"
	"probgraph/internal/cuts"
	"probgraph/internal/graph"
	"probgraph/internal/iso"
	"probgraph/internal/verify"
)

func BenchmarkAblationPMIBuild(b *testing.B) {
	_, raw := microDB(b)
	for _, cfg := range []struct {
		name     string
		optimize bool
	}{{"OPT-SIPBound", true}, {"SIPBound-greedy", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			opt := probgraph.DefaultBuildOptions()
			opt.Feature.MaxL = 4
			opt.Feature.Beta = 0.2
			opt.PMI.Optimize = cfg.optimize
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := probgraph.NewDatabase(raw.Graphs, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationQueryBounds(b *testing.B) {
	db, raw := microDB(b)
	rng := rand.New(rand.NewSource(17))
	q := probgraph.ExtractQuery(raw.Graphs[2].G, 5, rng)
	for _, cfg := range []struct {
		name string
		opt  bool
	}{{"OPT-SSPBound", true}, {"SSPBound-random", false}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q, probgraph.QueryOptions{
					Epsilon: 0.5, Delta: 1, OptBounds: cfg.opt,
					Verifier: probgraph.VerifierNone, Seed: int64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationSMPSamples(b *testing.B) {
	db, raw := microDB(b)
	rng := rand.New(rand.NewSource(19))
	q := probgraph.ExtractQuery(raw.Graphs[0].G, 5, rng)
	for _, n := range []int{200, 800, 3200} {
		b.Run(byteCount(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q, probgraph.QueryOptions{
					Epsilon: 0.5, Delta: 1, OptBounds: true,
					Verify: verify.Options{N: n}, Seed: int64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byteCount(n int) string {
	switch n {
	case 200:
		return "N=200"
	case 800:
		return "N=800"
	default:
		return "N=3200"
	}
}

func BenchmarkKernelVF2Exists(b *testing.B) {
	_, raw := microDB(b)
	rng := rand.New(rand.NewSource(23))
	target := raw.Graphs[0].G
	q := probgraph.ExtractQuery(target, 6, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iso.Exists(q, target, nil)
	}
}

func BenchmarkKernelVF2EdgeSets(b *testing.B) {
	_, raw := microDB(b)
	rng := rand.New(rand.NewSource(29))
	target := raw.Graphs[1].G
	q := probgraph.ExtractQuery(target, 4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iso.EdgeSets(q, target, nil, 32)
	}
}

func BenchmarkKernelCanonicalCode(b *testing.B) {
	_, raw := microDB(b)
	rng := rand.New(rand.NewSource(31))
	q := probgraph.ExtractQuery(raw.Graphs[2].G, 6, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.CanonicalCode(q)
	}
}

func BenchmarkKernelMinimalCuts(b *testing.B) {
	_, raw := microDB(b)
	rng := rand.New(rand.NewSource(37))
	target := raw.Graphs[3].G
	q := probgraph.ExtractQuery(target, 3, rng)
	embs := iso.EdgeSets(q, target, nil, 16)
	if len(embs) == 0 {
		b.Skip("no embeddings for this seed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cuts.MinimalCuts(embs, target.NumEdges(), 32)
	}
}
