// Command pggen generates a synthetic probabilistic graph database file in
// the text format understood by cmd/pgsearch and probgraph.LoadDataset.
//
// Usage:
//
//	pggen -o db.pgraph [-n 120] [-organisms 6] [-minv 10] [-maxv 16]
//	      [-meanprob 0.383] [-mutations 0.25] [-independent] [-seed 1]
//	      [-savesnap db.idx] [-format text|binary]
//	pggen -query [-from db.pgraph] [-qsize 6] [-qfrom 0] -o q.pgraph
//
// The generator mirrors the paper's experimental construction (§6):
// STRING-like PPI graphs with COG-style labels and max-rule JPTs over
// neighbor-edge sets; -independent drops correlations (the IND model).
//
// -savesnap additionally builds the full index (structural filter, feature
// mining, PMI) and writes it as one snapshot, ready for pgserve -snapshot
// or pgsearch -loadsnap — the offline step of the paper's offline/online
// split, done once at generation time. -format picks the snapshot
// encoding: text (the default, v3) or binary (v4, which pgserve opens via
// mmap for parse-free startup). The write is atomic (temp file + rename),
// so a crash mid-save never truncates an existing snapshot.
//
// -query switches to query-workload mode: instead of a database, write one
// connected query graph extracted from a database graph's certain
// structure (the paper's workload construction). -from names an existing
// database file; without it the database is generated in memory from the
// same flags, so a given seed always yields the same query.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"probgraph"
	"probgraph/internal/obs"
)

// main is a thin shell around run: os.Exit skips defers, so every defer
// (profile flushing above all) lives inside run, which only ever returns.
func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run executes pggen and returns its exit code: 0 success, 1 runtime
// error, 2 flag/validation error. Profiles are flushed on every path —
// including validation rejections — by the single deferred Flush.
func run(args []string, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("pggen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default stdout)")
	n := fs.Int("n", 120, "number of graphs")
	organisms := fs.Int("organisms", 6, "number of organism families")
	minV := fs.Int("minv", 10, "minimum vertices per graph")
	maxV := fs.Int("maxv", 16, "maximum vertices per graph")
	edgeFactor := fs.Float64("edgefactor", 1.5, "edges ≈ factor × vertices")
	labels := fs.Int("labels", 8, "vertex label alphabet size")
	meanProb := fs.Float64("meanprob", 0.383, "mean edge existence probability")
	maxGroup := fs.Int("maxgroup", 3, "neighbor-edge-set size cap")
	mutations := fs.Float64("mutations", 0.25, "per-graph edge rewiring rate")
	independent := fs.Bool("independent", false, "independent-edge model (IND) instead of correlated (COR)")
	seed := fs.Int64("seed", 1, "random seed")
	saveSnap := fs.String("savesnap", "", "also build the full index and write a snapshot to this file")
	format := fs.String("format", "text", "snapshot format for -savesnap: text (v3) or binary (v4, mmap-able)")
	queryMode := fs.Bool("query", false, "write a query graph instead of a database")
	from := fs.String("from", "", "query mode: extract from this database file (default: generate)")
	qsize := fs.Int("qsize", 6, "query mode: query size (edges)")
	qfrom := fs.Int("qfrom", 0, "query mode: index of the source graph")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile (generation + -savesnap index build) to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (post-GC) to this file at exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	profiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "pggen: %v\n", err)
		return 1
	}
	defer func() {
		if err := profiles.Flush(); err != nil {
			fmt.Fprintf(stderr, "pggen: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	// One-line rejections for out-of-range knobs, before any generation
	// work: probabilities must be valid, sizes positive.
	if *meanProb <= 0 || *meanProb > 1 {
		fmt.Fprintf(stderr, "pggen: -meanprob must be in (0,1], got %v\n", *meanProb)
		return 2
	}
	if *mutations < 0 || *mutations > 1 {
		fmt.Fprintf(stderr, "pggen: -mutations must be in [0,1], got %v\n", *mutations)
		return 2
	}
	if *n < 1 {
		fmt.Fprintf(stderr, "pggen: -n must be >= 1, got %d\n", *n)
		return 2
	}
	if *qsize < 1 {
		fmt.Fprintf(stderr, "pggen: -qsize must be >= 1, got %d\n", *qsize)
		return 2
	}

	opt := probgraph.DatasetOptions{
		NumGraphs: *n, Organisms: *organisms,
		MinVertices: *minV, MaxVertices: *maxV, EdgeFactor: *edgeFactor,
		Labels: *labels, MeanProb: *meanProb, MaxGroup: *maxGroup,
		Mutations: *mutations, Correlated: !*independent, Seed: *seed,
	}

	if *queryMode {
		if err := writeQuery(stderr, *from, *out, *qsize, *qfrom, *seed, opt); err != nil {
			fmt.Fprintf(stderr, "pggen: %v\n", err)
			return 1
		}
		return 0
	}

	db, err := probgraph.GeneratePPI(opt)
	if err != nil {
		fmt.Fprintf(stderr, "pggen: %v\n", err)
		return 1
	}

	if err := writeDataset(*out, db); err != nil {
		fmt.Fprintf(stderr, "pggen: %v\n", err)
		return 1
	}

	if *saveSnap != "" {
		sf, err := probgraph.ParseSnapshotFormat(*format)
		if err != nil {
			fmt.Fprintf(stderr, "pggen: %v\n", err)
			return 2
		}
		idxDB, err := probgraph.NewDatabase(db.Graphs, probgraph.DefaultBuildOptions())
		if err != nil {
			fmt.Fprintf(stderr, "pggen: %v\n", err)
			return 1
		}
		if err := idxDB.SaveFile(*saveSnap, sf); err != nil {
			fmt.Fprintf(stderr, "pggen: %v\n", err)
			return 1
		}
		feats := 0
		if idxDB.PMI() != nil {
			feats = idxDB.PMI().NumFeatures()
		}
		fmt.Fprintf(stderr, "pggen: wrote snapshot (%d PMI features) to %s\n", feats, *saveSnap)
	}

	totalV, totalE := 0, 0
	for _, pg := range db.Graphs {
		totalV += pg.G.NumVertices()
		totalE += pg.G.NumEdges()
	}
	fmt.Fprintf(stderr, "pggen: wrote %d graphs (avg %.1f vertices, %.1f edges) to %s\n",
		len(db.Graphs), float64(totalV)/float64(len(db.Graphs)),
		float64(totalE)/float64(len(db.Graphs)), orStdout(*out))
	return 0
}

// writeDataset saves db to path, or stdout when path is empty.
func writeDataset(path string, db *probgraph.Dataset) error {
	w := os.Stdout
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return probgraph.SaveDataset(w, db)
}

// writeQuery extracts one connected query graph and writes it in the text
// codec pgsearch -qfile and the pgserve graph_text payload accept.
func writeQuery(stderr io.Writer, from, out string, qsize, qfrom int, seed int64, genOpt probgraph.DatasetOptions) error {
	var db *probgraph.Dataset
	if from != "" {
		f, err := os.Open(from)
		if err != nil {
			return err
		}
		db, err = probgraph.LoadDataset(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		var err error
		db, err = probgraph.GeneratePPI(genOpt)
		if err != nil {
			return err
		}
	}
	if len(db.Graphs) == 0 {
		return errors.New("empty database")
	}
	rng := rand.New(rand.NewSource(seed))
	src := db.Graphs[qfrom%len(db.Graphs)].G
	q := probgraph.ExtractQuery(src, qsize, rng)

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := probgraph.SaveGraph(w, q); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "pggen: wrote query %s (%d vertices, %d edges) to %s\n",
		q.Name(), q.NumVertices(), q.NumEdges(), orStdout(out))
	return nil
}

func orStdout(path string) string {
	if path == "" {
		return "stdout"
	}
	return path
}
