// Command pggen generates a synthetic probabilistic graph database file in
// the text format understood by cmd/pgsearch and probgraph.LoadDataset.
//
// Usage:
//
//	pggen -o db.pgraph [-n 120] [-organisms 6] [-minv 10] [-maxv 16]
//	      [-meanprob 0.383] [-mutations 0.25] [-independent] [-seed 1]
//	      [-savesnap db.idx] [-format text|binary]
//	pggen -query [-from db.pgraph] [-qsize 6] [-qfrom 0] -o q.pgraph
//
// The generator mirrors the paper's experimental construction (§6):
// STRING-like PPI graphs with COG-style labels and max-rule JPTs over
// neighbor-edge sets; -independent drops correlations (the IND model).
//
// -savesnap additionally builds the full index (structural filter, feature
// mining, PMI) and writes it as one snapshot, ready for pgserve -snapshot
// or pgsearch -loadsnap — the offline step of the paper's offline/online
// split, done once at generation time. -format picks the snapshot
// encoding: text (the default, v3) or binary (v4, which pgserve opens via
// mmap for parse-free startup). The write is atomic (temp file + rename),
// so a crash mid-save never truncates an existing snapshot.
//
// -query switches to query-workload mode: instead of a database, write one
// connected query graph extracted from a database graph's certain
// structure (the paper's workload construction). -from names an existing
// database file; without it the database is generated in memory from the
// same flags, so a given seed always yields the same query.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"probgraph"
	"probgraph/internal/obs"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	n := flag.Int("n", 120, "number of graphs")
	organisms := flag.Int("organisms", 6, "number of organism families")
	minV := flag.Int("minv", 10, "minimum vertices per graph")
	maxV := flag.Int("maxv", 16, "maximum vertices per graph")
	edgeFactor := flag.Float64("edgefactor", 1.5, "edges ≈ factor × vertices")
	labels := flag.Int("labels", 8, "vertex label alphabet size")
	meanProb := flag.Float64("meanprob", 0.383, "mean edge existence probability")
	maxGroup := flag.Int("maxgroup", 3, "neighbor-edge-set size cap")
	mutations := flag.Float64("mutations", 0.25, "per-graph edge rewiring rate")
	independent := flag.Bool("independent", false, "independent-edge model (IND) instead of correlated (COR)")
	seed := flag.Int64("seed", 1, "random seed")
	saveSnap := flag.String("savesnap", "", "also build the full index and write a snapshot to this file")
	format := flag.String("format", "text", "snapshot format for -savesnap: text (v3) or binary (v4, mmap-able)")
	queryMode := flag.Bool("query", false, "write a query graph instead of a database")
	from := flag.String("from", "", "query mode: extract from this database file (default: generate)")
	qsize := flag.Int("qsize", 6, "query mode: query size (edges)")
	qfrom := flag.Int("qfrom", 0, "query mode: index of the source graph")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (generation + -savesnap index build) to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (post-GC) to this file at exit")
	flag.Parse()

	stopCPU, err := obs.StartCPUProfile(*cpuprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopCPU()
	defer func() {
		if err := obs.WriteHeapProfile(*memprofile); err != nil {
			log.Fatal(err)
		}
	}()

	// One-line rejections for out-of-range knobs, before any generation
	// work: probabilities must be valid, sizes positive.
	if *meanProb <= 0 || *meanProb > 1 {
		fmt.Fprintf(os.Stderr, "pggen: -meanprob must be in (0,1], got %v\n", *meanProb)
		os.Exit(2)
	}
	if *mutations < 0 || *mutations > 1 {
		fmt.Fprintf(os.Stderr, "pggen: -mutations must be in [0,1], got %v\n", *mutations)
		os.Exit(2)
	}
	if *n < 1 {
		fmt.Fprintf(os.Stderr, "pggen: -n must be >= 1, got %d\n", *n)
		os.Exit(2)
	}
	if *qsize < 1 {
		fmt.Fprintf(os.Stderr, "pggen: -qsize must be >= 1, got %d\n", *qsize)
		os.Exit(2)
	}

	if *queryMode {
		writeQuery(*from, *out, *qsize, *qfrom, *seed, probgraph.DatasetOptions{
			NumGraphs: *n, Organisms: *organisms,
			MinVertices: *minV, MaxVertices: *maxV, EdgeFactor: *edgeFactor,
			Labels: *labels, MeanProb: *meanProb, MaxGroup: *maxGroup,
			Mutations: *mutations, Correlated: !*independent, Seed: *seed,
		})
		return
	}

	db, err := probgraph.GeneratePPI(probgraph.DatasetOptions{
		NumGraphs: *n, Organisms: *organisms,
		MinVertices: *minV, MaxVertices: *maxV, EdgeFactor: *edgeFactor,
		Labels: *labels, MeanProb: *meanProb, MaxGroup: *maxGroup,
		Mutations: *mutations, Correlated: !*independent, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := probgraph.SaveDataset(w, db); err != nil {
		log.Fatal(err)
	}

	if *saveSnap != "" {
		sf, err := probgraph.ParseSnapshotFormat(*format)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pggen: %v\n", err)
			os.Exit(2)
		}
		idxDB, err := probgraph.NewDatabase(db.Graphs, probgraph.DefaultBuildOptions())
		if err != nil {
			log.Fatal(err)
		}
		if err := idxDB.SaveFile(*saveSnap, sf); err != nil {
			log.Fatal(err)
		}
		feats := 0
		if idxDB.PMI() != nil {
			feats = idxDB.PMI().NumFeatures()
		}
		fmt.Fprintf(os.Stderr, "pggen: wrote snapshot (%d PMI features) to %s\n", feats, *saveSnap)
	}

	totalV, totalE := 0, 0
	for _, pg := range db.Graphs {
		totalV += pg.G.NumVertices()
		totalE += pg.G.NumEdges()
	}
	fmt.Fprintf(os.Stderr, "pggen: wrote %d graphs (avg %.1f vertices, %.1f edges) to %s\n",
		len(db.Graphs), float64(totalV)/float64(len(db.Graphs)),
		float64(totalE)/float64(len(db.Graphs)), orStdout(*out))
}

// writeQuery extracts one connected query graph and writes it in the text
// codec pgsearch -qfile and the pgserve graph_text payload accept.
func writeQuery(from, out string, qsize, qfrom int, seed int64, genOpt probgraph.DatasetOptions) {
	var db *probgraph.Dataset
	if from != "" {
		f, err := os.Open(from)
		if err != nil {
			log.Fatal(err)
		}
		db, err = probgraph.LoadDataset(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var err error
		db, err = probgraph.GeneratePPI(genOpt)
		if err != nil {
			log.Fatal(err)
		}
	}
	if len(db.Graphs) == 0 {
		log.Fatal("pggen: empty database")
	}
	rng := rand.New(rand.NewSource(seed))
	src := db.Graphs[qfrom%len(db.Graphs)].G
	q := probgraph.ExtractQuery(src, qsize, rng)

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := probgraph.SaveGraph(w, q); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pggen: wrote query %s (%d vertices, %d edges) to %s\n",
		q.Name(), q.NumVertices(), q.NumEdges(), orStdout(out))
}

func orStdout(path string) string {
	if path == "" {
		return "stdout"
	}
	return path
}
