// Command pggen generates a synthetic probabilistic graph database file in
// the text format understood by cmd/pgsearch and probgraph.LoadDataset.
//
// Usage:
//
//	pggen -o db.pgraph [-n 120] [-organisms 6] [-minv 10] [-maxv 16]
//	      [-meanprob 0.383] [-mutations 0.25] [-independent] [-seed 1]
//
// The generator mirrors the paper's experimental construction (§6):
// STRING-like PPI graphs with COG-style labels and max-rule JPTs over
// neighbor-edge sets; -independent drops correlations (the IND model).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"probgraph"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	n := flag.Int("n", 120, "number of graphs")
	organisms := flag.Int("organisms", 6, "number of organism families")
	minV := flag.Int("minv", 10, "minimum vertices per graph")
	maxV := flag.Int("maxv", 16, "maximum vertices per graph")
	edgeFactor := flag.Float64("edgefactor", 1.5, "edges ≈ factor × vertices")
	labels := flag.Int("labels", 8, "vertex label alphabet size")
	meanProb := flag.Float64("meanprob", 0.383, "mean edge existence probability")
	maxGroup := flag.Int("maxgroup", 3, "neighbor-edge-set size cap")
	mutations := flag.Float64("mutations", 0.25, "per-graph edge rewiring rate")
	independent := flag.Bool("independent", false, "independent-edge model (IND) instead of correlated (COR)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	db, err := probgraph.GeneratePPI(probgraph.DatasetOptions{
		NumGraphs: *n, Organisms: *organisms,
		MinVertices: *minV, MaxVertices: *maxV, EdgeFactor: *edgeFactor,
		Labels: *labels, MeanProb: *meanProb, MaxGroup: *maxGroup,
		Mutations: *mutations, Correlated: !*independent, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := probgraph.SaveDataset(w, db); err != nil {
		log.Fatal(err)
	}

	totalV, totalE := 0, 0
	for _, pg := range db.Graphs {
		totalV += pg.G.NumVertices()
		totalE += pg.G.NumEdges()
	}
	fmt.Fprintf(os.Stderr, "pggen: wrote %d graphs (avg %.1f vertices, %.1f edges) to %s\n",
		len(db.Graphs), float64(totalV)/float64(len(db.Graphs)),
		float64(totalE)/float64(len(db.Graphs)), orStdout(*out))
}

func orStdout(path string) string {
	if path == "" {
		return "stdout"
	}
	return path
}
