package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// gzipMagic starts every pprof output file: runtime/pprof gzips both CPU
// and heap profiles. A created-but-never-flushed profile is empty and
// fails this check — which is exactly the regression (os.Exit skipping
// the flushing defers) these tests pin.
func assertProfile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Errorf("%s: not a flushed pprof profile (%d bytes, no gzip magic) — an early-exit path skipped Flush", filepath.Base(path), len(b))
	}
}

// TestRunValidationExitFlushesProfiles is the satellite regression test:
// a validation rejection (exit 2) must still leave complete profile
// files behind, even though it exits long before the normal end of run.
func TestRunValidationExitFlushesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stderr bytes.Buffer
	code := run([]string{"-meanprob", "1.5", "-cpuprofile", cpu, "-memprofile", mem}, &stderr)
	if code != 2 {
		t.Fatalf("run = %d, want 2 (validation error); stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-meanprob") {
		t.Errorf("stderr does not name the rejected flag: %s", stderr.String())
	}
	assertProfile(t, cpu)
	assertProfile(t, mem)
}

// TestRunGeneratesWithProfiles covers the success path end to end: a
// small database lands in -o and both profiles flush.
func TestRunGeneratesWithProfiles(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "db.pgraph")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stderr bytes.Buffer
	code := run([]string{"-n", "4", "-o", out, "-cpuprofile", cpu, "-memprofile", mem}, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, want 0; stderr: %s", code, stderr.String())
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("no database written to %s (err=%v)", out, err)
	}
	assertProfile(t, cpu)
	assertProfile(t, mem)
}

// TestRunFlagErrorExit pins exit 2 for unparseable flags (no profiles
// are started yet on that path, so nothing else to assert).
func TestRunFlagErrorExit(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-n", "notanint"}, &stderr); code != 2 {
		t.Fatalf("run = %d, want 2 for a flag parse error", code)
	}
}
