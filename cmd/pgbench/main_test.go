package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func assertProfile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Errorf("%s: not a flushed pprof profile (%d bytes, no gzip magic) — an early-exit path skipped Flush", filepath.Base(path), len(b))
	}
}

// TestRunValidationExitFlushesProfiles pins the exit-safety contract:
// the -baseline-tolerance rejection returns 2 before any figure runs,
// and the profile files must still be complete pprof outputs.
func TestRunValidationExitFlushesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-baseline", "whatever.json", "-baseline-tolerance", "-1",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run = %d, want 2 (validation error); stderr: %s", code, stderr.String())
	}
	assertProfile(t, cpu)
	assertProfile(t, mem)
}

// TestRunBadChurnRatesExit pins the churn-rate validation: rejected
// before the (expensive) environment build, exit 2, profiles flushed.
func TestRunBadChurnRatesExit(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-fig", "churn", "-churn", "-5", "-cpuprofile", cpu}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run = %d, want 2 for a bad -churn rate; stderr: %s", code, stderr.String())
	}
	assertProfile(t, cpu)
}

// TestRunFlagErrorExit pins exit 2 for unparseable flags.
func TestRunFlagErrorExit(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-workers", "many"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run = %d, want 2 for a flag parse error", code)
	}
}
