// Command pgbench reproduces the paper's evaluation section: it runs the
// sweep behind every figure (9a–14) on synthetic PPI-like data and prints
// paper-style series tables.
//
// Usage:
//
//	pgbench [-scale tiny|small|full] [-fig all|9a|9b|10|11|12|13|14|scaling]
//	        [-workers N] [-seed N]
//
// Absolute timings are machine-dependent; the reproduction target is the
// shape of each series (see EXPERIMENTS.md).
//
// -workers N runs every query's candidate pipeline on a pool of N
// goroutines (results are unchanged; only timings move). -fig scaling
// prints a dedicated parallel-speedup table sweeping the worker count;
// it is not part of the paper's evaluation, so -fig all (the default)
// covers the paper figures only and scaling must be requested explicitly.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"probgraph/internal/experiments"
	"probgraph/internal/stats"
)

func main() {
	scale := flag.String("scale", "small", "experiment scale: tiny, small, full")
	fig := flag.String("fig", "all", "figure to run: all (= every paper figure), 9a, 9b, 10, 11, 12, 13, 14, or scaling (extra, never implied by all)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "candidate-evaluation worker pool size (<0 = GOMAXPROCS)")
	flag.Parse()

	start := time.Now()
	fmt.Printf("pgbench: scale=%s fig=%s seed=%d workers=%d\n", *scale, *fig, *seed, *workers)
	env, err := experiments.NewEnv(experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d graphs, %d PMI features, index built in %v\n\n",
		env.DB.Len(), env.DB.Build.Features,
		env.DB.Build.FeatureTime+env.DB.Build.PMITime+env.DB.Build.StructTime)

	want := func(name string) bool {
		return *fig == "all" || strings.EqualFold(*fig, name) ||
			(len(name) > 2 && strings.EqualFold(*fig, name[:2]))
	}
	render := func(t *stats.Table, err error) {
		if err != nil {
			log.Fatal(err)
		}
		t.Render(os.Stdout)
		fmt.Println()
	}

	if want("9a") {
		render(env.Fig9a())
	}
	if want("9b") {
		render(env.Fig9b())
	}
	if want("10") {
		a, b, err := env.Fig10()
		if err != nil {
			log.Fatal(err)
		}
		render(a, nil)
		render(b, nil)
	}
	if want("11") {
		a, b, err := env.Fig11()
		if err != nil {
			log.Fatal(err)
		}
		render(a, nil)
		render(b, nil)
	}
	if want("12") {
		tables, err := env.Fig12()
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range tables {
			render(t, nil)
		}
	}
	if want("13") {
		render(env.Fig13())
	}
	if want("14") {
		render(env.Fig14())
	}
	if strings.EqualFold(*fig, "scaling") {
		render(env.Scaling(nil))
	}
	fmt.Printf("pgbench done in %v\n", time.Since(start))
}
