// Command pgbench reproduces the paper's evaluation section: it runs the
// sweep behind every figure (9a–14) on synthetic PPI-like data and prints
// paper-style series tables.
//
// Usage:
//
//	pgbench [-scale tiny|small|full] [-fig all|9a|9b|10|11|12|13|14|scaling|filter|churn|perf]
//	        [-workers N] [-seed N] [-json out.json] [-churn rates]
//	        [-baseline BENCH_baseline.json] [-baseline-tolerance 0.15]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Absolute timings are machine-dependent; the reproduction target is the
// shape of each series (see EXPERIMENTS.md).
//
// -workers N runs every query's candidate pipeline on a pool of N
// goroutines (results are unchanged; only timings move). -fig scaling
// prints a dedicated parallel-speedup table sweeping the worker count,
// -fig filter profiles the structural phase — the inverted-postings
// scan against the dense count-matrix oracle — as the database grows,
// and -fig churn profiles query p50/p99 latency while a background
// writer mutates the database (add/remove) at each of the -churn rates;
// none of these is part of the paper's evaluation, so -fig all (the
// default) covers the paper figures only and they must be requested
// explicitly.
//
// -fig perf runs the fixed steady-state workloads (query/topk/batch and
// binary snapshot load) with deterministic row and sample structure —
// only the latency cells vary between machines — which is what the
// checked-in BENCH_baseline.json pins.
//
// -json out.json additionally writes every produced table as
// machine-readable series — figure name, headers, raw rows, per-column
// numeric series against the first column as x, and the figure's wall
// time — so the performance trajectory can be tracked across commits
// (BENCH_*.json artifacts). Figures, series, and rows appear in a fixed
// order, and nothing in the export besides wall_ms depends on the clock.
//
// -baseline old.json compares this run's p50/p99 columns against a
// previous -json export (figures matched by name, rows by first cell;
// wall_ms is ignored). Any latency more than -baseline-tolerance above
// the baseline exits 4 — the CI perf gate; refresh the baseline with
// `pgbench -scale tiny -fig perf -seed 1 -json BENCH_baseline.json` when
// a slowdown is intended.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"probgraph/internal/experiments"
	"probgraph/internal/obs"
	"probgraph/internal/stats"
)

// seriesJSON is one y-column of a table plotted against the first column.
type seriesJSON struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// figureJSON is one table's machine-readable export.
type figureJSON struct {
	Figure  string       `json:"figure"`
	Title   string       `json:"title"`
	Headers []string     `json:"headers"`
	Rows    [][]string   `json:"rows"`
	Series  []seriesJSON `json:"series"`
	WallMS  float64      `json:"wall_ms"`
}

// main is a thin shell around run: os.Exit skips defers, so every defer
// (profile flushing above all) lives inside run, which only ever returns.
func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes pgbench and returns its exit code: 0 success, 1 runtime
// error, 2 flag/validation error, 4 baseline latency regression. The
// single deferred Flush makes profile output exit-safe on every path,
// the regression gate included.
func run(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("pgbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.String("scale", "small", "experiment scale: tiny, small, full")
	fig := fs.String("fig", "all", "figure to run: all (= every paper figure), 9a, 9b, 10, 11, 12, 13, 14, or scaling/filter/churn/perf (extra, never implied by all)")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 1, "candidate-evaluation worker pool size (<0 = GOMAXPROCS)")
	jsonPath := fs.String("json", "", "write machine-readable per-figure series to this file")
	churnRates := fs.String("churn", "0,20,100",
		"comma-separated background mutation rates (mutations/s) for -fig churn")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile covering index build + figures to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile (post-GC) to this file at exit")
	baseline := fs.String("baseline", "", "compare this run's p50/p99 columns against a previous -json export; regressions beyond the tolerance exit 4")
	baselineTol := fs.Float64("baseline-tolerance", 0.15,
		"allowed fractional p50/p99 regression vs -baseline (0.15 = 15%)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	profiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "pgbench: %v\n", err)
		return 1
	}
	defer func() {
		if err := profiles.Flush(); err != nil {
			fmt.Fprintf(stderr, "pgbench: %v\n", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	// Knob validation after profile start, so even a rejected invocation
	// leaves well-formed (if tiny) profile files behind.
	if *baselineTol < 0 {
		fmt.Fprintf(stderr, "pgbench: -baseline-tolerance must be >= 0, got %v\n", *baselineTol)
		return 2
	}
	var churn []float64
	if strings.EqualFold(*fig, "churn") {
		if churn, err = parseRates(*churnRates); err != nil {
			fmt.Fprintf(stderr, "%v\n", err)
			return 2
		}
	}

	start := time.Now()
	fmt.Fprintf(stdout, "pgbench: scale=%s fig=%s seed=%d workers=%d\n", *scale, *fig, *seed, *workers)
	env, err := experiments.NewEnv(experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers})
	if err != nil {
		fmt.Fprintf(stderr, "pgbench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "database: %d graphs, %d PMI features, index built in %v\n\n",
		env.DB.Len(), env.DB.Build().Features,
		env.DB.Build().FeatureTime+env.DB.Build().PMITime+env.DB.Build().StructTime)

	var figures []figureJSON
	want := func(name string) bool {
		return *fig == "all" || strings.EqualFold(*fig, name) ||
			(len(name) > 2 && strings.EqualFold(*fig, name[:2]))
	}
	// runFig executes one figure, renders its tables, and records them
	// with the figure's wall time split evenly across its tables.
	runFig := func(name string, f func() ([]*stats.Table, error)) error {
		t0 := time.Now()
		tables, err := f()
		wall := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			return err
		}
		for _, t := range tables {
			t.Render(stdout)
			fmt.Fprintln(stdout)
			figures = append(figures, tableJSON(name, t, wall/float64(len(tables))))
		}
		return nil
	}
	one := func(f func() (*stats.Table, error)) func() ([]*stats.Table, error) {
		return func() ([]*stats.Table, error) {
			t, err := f()
			if err != nil {
				return nil, err
			}
			return []*stats.Table{t}, nil
		}
	}
	two := func(f func() (*stats.Table, *stats.Table, error)) func() ([]*stats.Table, error) {
		return func() ([]*stats.Table, error) {
			a, b, err := f()
			if err != nil {
				return nil, err
			}
			return []*stats.Table{a, b}, nil
		}
	}

	type figureRun struct {
		name string
		on   bool
		f    func() ([]*stats.Table, error)
	}
	for _, fr := range []figureRun{
		{"9a", want("9a"), one(env.Fig9a)},
		{"9b", want("9b"), one(env.Fig9b)},
		{"10", want("10"), two(env.Fig10)},
		{"11", want("11"), two(env.Fig11)},
		{"12", want("12"), env.Fig12},
		{"13", want("13"), one(env.Fig13)},
		{"14", want("14"), one(env.Fig14)},
		{"scaling", strings.EqualFold(*fig, "scaling"),
			one(func() (*stats.Table, error) { return env.Scaling(nil) })},
		{"filter", strings.EqualFold(*fig, "filter"),
			one(func() (*stats.Table, error) { return env.Filter(nil) })},
		{"churn", strings.EqualFold(*fig, "churn"),
			one(func() (*stats.Table, error) { return env.Churn(churn) })},
		{"perf", strings.EqualFold(*fig, "perf"), one(env.Perf)},
	} {
		if !fr.on {
			continue
		}
		if err := runFig(fr.name, fr.f); err != nil {
			fmt.Fprintf(stderr, "pgbench: %v\n", err)
			return 1
		}
	}

	// Profiles cover build + figures: flush here so the JSON export and
	// baseline comparison stay out of the measurement. The deferred Flush
	// is idempotent, so this early call costs the later one nothing.
	if err := profiles.Flush(); err != nil {
		fmt.Fprintf(stderr, "pgbench: %v\n", err)
		return 1
	}

	if *jsonPath != "" {
		out := struct {
			Scale   string       `json:"scale"`
			Seed    int64        `json:"seed"`
			Workers int          `json:"workers"`
			WallMS  float64      `json:"wall_ms"`
			Figures []figureJSON `json:"figures"`
		}{*scale, *seed, *workers, float64(time.Since(start).Microseconds()) / 1000, figures}
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintf(stderr, "pgbench: %v\n", err)
			return 1
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "pgbench: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "pgbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d figure series to %s\n", len(figures), *jsonPath)
	}
	if *baseline != "" {
		regressions, err := compareBaseline(*baseline, figures, *baselineTol)
		if err != nil {
			fmt.Fprintf(stderr, "%v\n", err)
			return 1
		}
		if len(regressions) > 0 {
			fmt.Fprintf(stderr, "pgbench: %d latency regression(s) beyond %.0f%% vs %s:\n",
				len(regressions), *baselineTol*100, *baseline)
			for _, r := range regressions {
				fmt.Fprintf(stderr, "  %s\n", r)
			}
			return 4
		}
		fmt.Fprintf(stdout, "baseline check passed: within %.0f%% of %s\n", *baselineTol*100, *baseline)
	}
	fmt.Fprintf(stdout, "pgbench done in %v\n", time.Since(start))
	return 0
}

// compareBaseline checks this run's latency columns against a previous
// -json export. Figures are matched by name, rows by their first cell
// (the workload / x value), and only columns whose header mentions p50 or
// p99 are compared — wall_ms and every other machine-varying field in the
// export are ignored, so the payload carries no timestamps that could
// make the comparison flap. A current value regresses when it exceeds
// baseline·(1+tol); faster-than-baseline is never an error. Rows or
// figures present on only one side are skipped: the gate guards latency,
// not schema drift (tests pin the schema).
func compareBaseline(path string, current []figureJSON, tol float64) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pgbench: reading baseline: %w", err)
	}
	var base struct {
		Figures []figureJSON `json:"figures"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("pgbench: parsing baseline %s: %w", path, err)
	}
	baseRows := map[string]map[string][]string{} // figure -> row key -> cells
	baseHeaders := map[string][]string{}
	for _, f := range base.Figures {
		rows := map[string][]string{}
		for _, row := range f.Rows {
			if len(row) > 0 {
				rows[row[0]] = row
			}
		}
		baseRows[f.Figure] = rows
		baseHeaders[f.Figure] = f.Headers
	}

	var regressions []string
	compared := 0
	for _, f := range current {
		rows, ok := baseRows[f.Figure]
		if !ok {
			continue
		}
		for col, h := range f.Headers {
			if !strings.Contains(h, "p50") && !strings.Contains(h, "p99") {
				continue
			}
			// Column positions must agree for the header match to mean
			// the same measurement on both sides.
			if bh := baseHeaders[f.Figure]; col >= len(bh) || bh[col] != h {
				continue
			}
			for _, row := range f.Rows {
				if len(row) <= col {
					continue
				}
				bRow, ok := rows[row[0]]
				if !ok || len(bRow) <= col {
					continue
				}
				cur, errC := parseCell(row[col])
				old, errO := parseCell(bRow[col])
				if errC != nil || errO != nil || old <= 0 {
					continue
				}
				compared++
				if cur > old*(1+tol) {
					regressions = append(regressions,
						fmt.Sprintf("%s[%s] %s: %.4g ms vs baseline %.4g ms (+%.0f%%)",
							f.Figure, row[0], h, cur, old, (cur/old-1)*100))
				}
			}
		}
	}
	if compared == 0 {
		return nil, fmt.Errorf("pgbench: baseline %s shares no comparable p50/p99 cells with this run (figure/flag mismatch?)", path)
	}
	return regressions, nil
}

// tableJSON converts a rendered table to its export form: raw rows always,
// plus numeric series (per non-x column) when the cells parse as numbers.
// Non-numeric cells (verifier names, "n/a") simply omit that point, so a
// series' x and y stay aligned.
func tableJSON(name string, t *stats.Table, wallMS float64) figureJSON {
	fj := figureJSON{
		Figure:  name,
		Title:   t.Title,
		Headers: t.Headers,
		Rows:    t.Rows(),
		Series:  []seriesJSON{},
		WallMS:  wallMS,
	}
	if len(t.Headers) < 2 {
		return fj
	}
	for col := 1; col < len(t.Headers); col++ {
		s := seriesJSON{Name: t.Headers[col], X: []float64{}, Y: []float64{}}
		for _, row := range t.Rows() {
			if col >= len(row) {
				continue
			}
			x, errX := parseCell(row[0])
			y, errY := parseCell(row[col])
			if errX != nil || errY != nil {
				continue
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		if len(s.Y) > 0 {
			fj.Series = append(fj.Series, s)
		}
	}
	return fj
}

// parseCell reads a numeric table cell, tolerating unit-ish suffixes the
// tables use (q50 → 50 is NOT parsed; "12.5" and "3e-2" are).
func parseCell(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

// parseRates reads the -churn flag: comma-separated non-negative
// mutations-per-second values.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		r, err := strconv.ParseFloat(tok, 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("pgbench: bad -churn rate %q", tok)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pgbench: -churn lists no rates")
	}
	return out, nil
}
