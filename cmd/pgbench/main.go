// Command pgbench reproduces the paper's evaluation section: it runs the
// sweep behind every figure (9a–14) on synthetic PPI-like data and prints
// paper-style series tables.
//
// Usage:
//
//	pgbench [-scale tiny|small|full] [-fig all|9a|9b|10|11|12|13|14|scaling|filter|churn|perf]
//	        [-workers N] [-seed N] [-json out.json] [-churn rates]
//	        [-baseline BENCH_baseline.json] [-baseline-tolerance 0.15]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Absolute timings are machine-dependent; the reproduction target is the
// shape of each series (see EXPERIMENTS.md).
//
// -workers N runs every query's candidate pipeline on a pool of N
// goroutines (results are unchanged; only timings move). -fig scaling
// prints a dedicated parallel-speedup table sweeping the worker count,
// -fig filter profiles the structural phase — the inverted-postings
// scan against the dense count-matrix oracle — as the database grows,
// and -fig churn profiles query p50/p99 latency while a background
// writer mutates the database (add/remove) at each of the -churn rates;
// none of these is part of the paper's evaluation, so -fig all (the
// default) covers the paper figures only and they must be requested
// explicitly.
//
// -fig perf runs the fixed steady-state workloads (query/topk/batch and
// binary snapshot load) with deterministic row and sample structure —
// only the latency cells vary between machines — which is what the
// checked-in BENCH_baseline.json pins.
//
// -json out.json additionally writes every produced table as
// machine-readable series — figure name, headers, raw rows, per-column
// numeric series against the first column as x, and the figure's wall
// time — so the performance trajectory can be tracked across commits
// (BENCH_*.json artifacts). Figures, series, and rows appear in a fixed
// order, and nothing in the export besides wall_ms depends on the clock.
//
// -baseline old.json compares this run's p50/p99 columns against a
// previous -json export (figures matched by name, rows by first cell;
// wall_ms is ignored). Any latency more than -baseline-tolerance above
// the baseline exits 4 — the CI perf gate; refresh the baseline with
// `pgbench -scale tiny -fig perf -seed 1 -json BENCH_baseline.json` when
// a slowdown is intended.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"probgraph/internal/experiments"
	"probgraph/internal/obs"
	"probgraph/internal/stats"
)

// seriesJSON is one y-column of a table plotted against the first column.
type seriesJSON struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// figureJSON is one table's machine-readable export.
type figureJSON struct {
	Figure  string       `json:"figure"`
	Title   string       `json:"title"`
	Headers []string     `json:"headers"`
	Rows    [][]string   `json:"rows"`
	Series  []seriesJSON `json:"series"`
	WallMS  float64      `json:"wall_ms"`
}

func main() {
	scale := flag.String("scale", "small", "experiment scale: tiny, small, full")
	fig := flag.String("fig", "all", "figure to run: all (= every paper figure), 9a, 9b, 10, 11, 12, 13, 14, or scaling/filter/churn/perf (extra, never implied by all)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "candidate-evaluation worker pool size (<0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write machine-readable per-figure series to this file")
	churnRates := flag.String("churn", "0,20,100",
		"comma-separated background mutation rates (mutations/s) for -fig churn")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering index build + figures to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (post-GC) to this file at exit")
	baseline := flag.String("baseline", "", "compare this run's p50/p99 columns against a previous -json export; regressions beyond the tolerance exit 4")
	baselineTol := flag.Float64("baseline-tolerance", 0.15,
		"allowed fractional p50/p99 regression vs -baseline (0.15 = 15%)")
	flag.Parse()

	stopCPU, err := obs.StartCPUProfile(*cpuprofile)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	fmt.Printf("pgbench: scale=%s fig=%s seed=%d workers=%d\n", *scale, *fig, *seed, *workers)
	env, err := experiments.NewEnv(experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d graphs, %d PMI features, index built in %v\n\n",
		env.DB.Len(), env.DB.Build().Features,
		env.DB.Build().FeatureTime+env.DB.Build().PMITime+env.DB.Build().StructTime)

	var figures []figureJSON
	want := func(name string) bool {
		return *fig == "all" || strings.EqualFold(*fig, name) ||
			(len(name) > 2 && strings.EqualFold(*fig, name[:2]))
	}
	// run executes one figure, renders its tables, and records them with
	// the figure's wall time split evenly across its tables.
	run := func(name string, f func() ([]*stats.Table, error)) {
		t0 := time.Now()
		tables, err := f()
		wall := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			log.Fatal(err)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
			fmt.Println()
			figures = append(figures, tableJSON(name, t, wall/float64(len(tables))))
		}
	}
	one := func(f func() (*stats.Table, error)) func() ([]*stats.Table, error) {
		return func() ([]*stats.Table, error) {
			t, err := f()
			if err != nil {
				return nil, err
			}
			return []*stats.Table{t}, nil
		}
	}
	two := func(f func() (*stats.Table, *stats.Table, error)) func() ([]*stats.Table, error) {
		return func() ([]*stats.Table, error) {
			a, b, err := f()
			if err != nil {
				return nil, err
			}
			return []*stats.Table{a, b}, nil
		}
	}

	if want("9a") {
		run("9a", one(env.Fig9a))
	}
	if want("9b") {
		run("9b", one(env.Fig9b))
	}
	if want("10") {
		run("10", two(env.Fig10))
	}
	if want("11") {
		run("11", two(env.Fig11))
	}
	if want("12") {
		run("12", env.Fig12)
	}
	if want("13") {
		run("13", one(env.Fig13))
	}
	if want("14") {
		run("14", one(env.Fig14))
	}
	if strings.EqualFold(*fig, "scaling") {
		run("scaling", one(func() (*stats.Table, error) { return env.Scaling(nil) }))
	}
	if strings.EqualFold(*fig, "filter") {
		run("filter", one(func() (*stats.Table, error) { return env.Filter(nil) }))
	}
	if strings.EqualFold(*fig, "churn") {
		rates, err := parseRates(*churnRates)
		if err != nil {
			log.Fatal(err)
		}
		run("churn", one(func() (*stats.Table, error) { return env.Churn(rates) }))
	}
	if strings.EqualFold(*fig, "perf") {
		run("perf", one(env.Perf))
	}

	// Profiles cover build + figures and are flushed here, before the
	// baseline gate — its os.Exit(4) must not lose them.
	stopCPU()
	if err := obs.WriteHeapProfile(*memprofile); err != nil {
		log.Fatal(err)
	}

	if *jsonPath != "" {
		out := struct {
			Scale   string       `json:"scale"`
			Seed    int64        `json:"seed"`
			Workers int          `json:"workers"`
			WallMS  float64      `json:"wall_ms"`
			Figures []figureJSON `json:"figures"`
		}{*scale, *seed, *workers, float64(time.Since(start).Microseconds()) / 1000, figures}
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d figure series to %s\n", len(figures), *jsonPath)
	}
	if *baseline != "" {
		if *baselineTol < 0 {
			fmt.Fprintf(os.Stderr, "pgbench: -baseline-tolerance must be >= 0, got %v\n", *baselineTol)
			os.Exit(2)
		}
		regressions, err := compareBaseline(*baseline, figures, *baselineTol)
		if err != nil {
			log.Fatal(err)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "pgbench: %d latency regression(s) beyond %.0f%% vs %s:\n",
				len(regressions), *baselineTol*100, *baseline)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(4)
		}
		fmt.Printf("baseline check passed: within %.0f%% of %s\n", *baselineTol*100, *baseline)
	}
	fmt.Printf("pgbench done in %v\n", time.Since(start))
}

// compareBaseline checks this run's latency columns against a previous
// -json export. Figures are matched by name, rows by their first cell
// (the workload / x value), and only columns whose header mentions p50 or
// p99 are compared — wall_ms and every other machine-varying field in the
// export are ignored, so the payload carries no timestamps that could
// make the comparison flap. A current value regresses when it exceeds
// baseline·(1+tol); faster-than-baseline is never an error. Rows or
// figures present on only one side are skipped: the gate guards latency,
// not schema drift (tests pin the schema).
func compareBaseline(path string, current []figureJSON, tol float64) ([]string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("pgbench: reading baseline: %w", err)
	}
	var base struct {
		Figures []figureJSON `json:"figures"`
	}
	if err := json.Unmarshal(raw, &base); err != nil {
		return nil, fmt.Errorf("pgbench: parsing baseline %s: %w", path, err)
	}
	baseRows := map[string]map[string][]string{} // figure -> row key -> cells
	baseHeaders := map[string][]string{}
	for _, f := range base.Figures {
		rows := map[string][]string{}
		for _, row := range f.Rows {
			if len(row) > 0 {
				rows[row[0]] = row
			}
		}
		baseRows[f.Figure] = rows
		baseHeaders[f.Figure] = f.Headers
	}

	var regressions []string
	compared := 0
	for _, f := range current {
		rows, ok := baseRows[f.Figure]
		if !ok {
			continue
		}
		for col, h := range f.Headers {
			if !strings.Contains(h, "p50") && !strings.Contains(h, "p99") {
				continue
			}
			// Column positions must agree for the header match to mean
			// the same measurement on both sides.
			if bh := baseHeaders[f.Figure]; col >= len(bh) || bh[col] != h {
				continue
			}
			for _, row := range f.Rows {
				if len(row) <= col {
					continue
				}
				bRow, ok := rows[row[0]]
				if !ok || len(bRow) <= col {
					continue
				}
				cur, errC := parseCell(row[col])
				old, errO := parseCell(bRow[col])
				if errC != nil || errO != nil || old <= 0 {
					continue
				}
				compared++
				if cur > old*(1+tol) {
					regressions = append(regressions,
						fmt.Sprintf("%s[%s] %s: %.4g ms vs baseline %.4g ms (+%.0f%%)",
							f.Figure, row[0], h, cur, old, (cur/old-1)*100))
				}
			}
		}
	}
	if compared == 0 {
		return nil, fmt.Errorf("pgbench: baseline %s shares no comparable p50/p99 cells with this run (figure/flag mismatch?)", path)
	}
	return regressions, nil
}

// tableJSON converts a rendered table to its export form: raw rows always,
// plus numeric series (per non-x column) when the cells parse as numbers.
// Non-numeric cells (verifier names, "n/a") simply omit that point, so a
// series' x and y stay aligned.
func tableJSON(name string, t *stats.Table, wallMS float64) figureJSON {
	fj := figureJSON{
		Figure:  name,
		Title:   t.Title,
		Headers: t.Headers,
		Rows:    t.Rows(),
		Series:  []seriesJSON{},
		WallMS:  wallMS,
	}
	if len(t.Headers) < 2 {
		return fj
	}
	for col := 1; col < len(t.Headers); col++ {
		s := seriesJSON{Name: t.Headers[col], X: []float64{}, Y: []float64{}}
		for _, row := range t.Rows() {
			if col >= len(row) {
				continue
			}
			x, errX := parseCell(row[0])
			y, errY := parseCell(row[col])
			if errX != nil || errY != nil {
				continue
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		if len(s.Y) > 0 {
			fj.Series = append(fj.Series, s)
		}
	}
	return fj
}

// parseCell reads a numeric table cell, tolerating unit-ish suffixes the
// tables use (q50 → 50 is NOT parsed; "12.5" and "3e-2" are).
func parseCell(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

// parseRates reads the -churn flag: comma-separated non-negative
// mutations-per-second values.
func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		r, err := strconv.ParseFloat(tok, 64)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("pgbench: bad -churn rate %q", tok)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pgbench: -churn lists no rates")
	}
	return out, nil
}
