// Command pgserve is a long-running T-PS query service: it loads an
// indexed database once and answers queries over an HTTP/JSON API, running
// each request on the engine's deterministic worker pool and serving
// repeated queries from an LRU result cache.
//
// Usage:
//
//	pgserve -snapshot db.idx [-addr :8091] [-cache 256] [-workers -1]
//	        [-inflight 0] [-timeout 0] [-compact-threshold 0.5]
//	        [-log-format text|json] [-log-level info] [-slowlog 32]
//	        [-pprof-addr 127.0.0.1:6060]
//	pgserve -db db.pgraph ...   (build the index at startup instead)
//
// With -snapshot (written by pgsearch -savesnap, pggen -savesnap, or
// probgraph.Database.Save/SaveFile) there is no feature mining and no PMI
// bound computation at startup. Binary (v4) snapshots are memory-mapped:
// startup does no full-corpus parse, pages fault in on demand, and
// multiple pgserve processes serving the same file share the page cache.
// Text snapshots are parsed once. Inference engines build lazily on first
// use either way. With -db the full index is built first (the offline
// step the snapshot amortizes away).
//
// Endpoints (JSON bodies; see internal/server for the wire types):
//
//	POST /query         one T-PS query: graph|graph_text, epsilon, delta,
//	                    verifier, plain, seed, workers, no_cache, timeout_ms
//	POST /query/stream  same query, NDJSON delivery: one line per verified
//	                    match as verification admits it, then a summary
//	                    line with the sorted answer set
//	POST /topk          ranked top-k variant (adds k)
//	POST /batch         many queries, one option set, per-member derived seeds
//	POST   /graphs      incremental AddGraph ingestion (pgraph JSON or text)
//	DELETE /graphs/{id} RemoveGraph: tombstones the slot, indices stay stable
//	PUT    /graphs/{id} ReplaceGraph: swaps the slot's graph (re-scored JPTs)
//	GET  /stats         server + cache counters, generation, live/tombstoned
//	GET  /metrics       Prometheus text exposition of the same counters
//	GET  /debug/slowlog the -slowlog slowest queries with their span trees
//	GET  /healthz       liveness probe
//
// Observability: every query endpoint carries a per-request trace — the
// response's X-PG-Trace-Id header names it, and trace=1 (URL knob or
// request body field) inlines the span tree (struct filter → PMI prune →
// verify, with per-shard scan spans) in the JSON reply. /metrics serves
// the full counter/histogram registry; -pprof-addr exposes net/http/pprof
// on a separate listener (never on the public API address). Logs are
// structured (log/slog); -log-format json emits one JSON object per line.
//
// The database is generation-numbered: every query pins the current view,
// so mutations never block queries and a query never sees a half-applied
// mutation; result-cache entries are keyed by generation (no purge on
// mutation). One structured log line records each mutation's old→new
// generation. -compact-threshold controls auto-compaction: once more than
// that fraction of slots is tombstoned, the triggering mutation also
// compacts the database — dropping tombstones and renumbering graph
// indices (its response carries "compacted": true and the slot count
// reclaimed).
//
// Every request runs under a context: the client disconnecting, the
// request's timeout_ms (or the -timeout default) expiring, or pgserve
// being told to shut down all cancel the in-flight evaluation at candidate
// granularity. Expired deadlines answer a structured HTTP 504; shutdown no
// longer waits for a full database scan to finish.
//
// Every response is bitwise-identical to the corresponding library call
// with the same seed; workers changes latency, never answers, and a
// stream's sorted answer set equals /query's. Tracing and metrics are
// purely observational — a traced query returns the same bytes as an
// untraced one (minus the trace field itself).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"probgraph"
	"probgraph/internal/core"
	"probgraph/internal/obs"
	"probgraph/internal/server"
)

func main() {
	snapshot := flag.String("snapshot", "", "snapshot file from pgsearch -savesnap / pggen -savesnap")
	dbPath := flag.String("db", "", "dataset file from pggen (index built at startup)")
	addr := flag.String("addr", ":8091", "listen address")
	cacheSize := flag.Int("cache", 256, "result cache capacity in entries (<0 disables)")
	workers := flag.Int("workers", -1, "default per-query worker pool (<0 = GOMAXPROCS)")
	inflight := flag.Int("inflight", 0, "max concurrently evaluated queries (0 = 2×GOMAXPROCS, <0 unbounded)")
	timeout := flag.Duration("timeout", 0, "default per-request evaluation deadline (0 = none; requests override via timeout_ms)")
	compactThreshold := flag.Float64("compact-threshold", 0.5,
		"auto-compact once tombstoned/total slots exceeds this fraction (renumbers graph indices; <=0 disables)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	slowlogSize := flag.Int("slowlog", 32, "slow-query ring size served at /debug/slowlog (<0 disables)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables; keep it loopback)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgserve: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if (*snapshot == "") == (*dbPath == "") {
		fmt.Fprintln(os.Stderr, "pgserve: give exactly one of -snapshot or -db")
		flag.Usage()
		os.Exit(2)
	}
	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "pgserve: -timeout must be >= 0, got %v\n", *timeout)
		os.Exit(2)
	}
	if *compactThreshold > 1 {
		fmt.Fprintf(os.Stderr, "pgserve: -compact-threshold must be <= 1, got %v\n", *compactThreshold)
		os.Exit(2)
	}

	fatal := func(err error) {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}

	reg := obs.NewRegistry()
	loadGauge := reg.Gauge("pg_snapshot_load_seconds",
		"Time spent loading the snapshot (or building the index) at startup.")

	start := time.Now()
	var db *core.Database
	switch {
	case *snapshot != "":
		db, err = probgraph.OpenSnapshot(*snapshot)
		if err != nil {
			fatal(err)
		}
		loadGauge.Set(time.Since(start).Seconds())
		logger.Info("opened snapshot (no mining)",
			"path", *snapshot, "graphs", db.Len(), "pmi_features", pmiFeatures(db),
			"elapsed", time.Since(start).Round(time.Millisecond).String())
	default:
		f, err := os.Open(*dbPath)
		if err != nil {
			fatal(err)
		}
		raw, err := probgraph.LoadDataset(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		db, err = probgraph.NewDatabase(raw.Graphs, probgraph.DefaultBuildOptions())
		if err != nil {
			fatal(err)
		}
		loadGauge.Set(time.Since(start).Seconds())
		logger.Info("indexed dataset",
			"path", *dbPath, "graphs", db.Len(), "pmi_features", pmiFeatures(db),
			"elapsed", time.Since(start).Round(time.Millisecond).String())
	}

	db.SetCompactThreshold(*compactThreshold)
	srv := server.New(db, server.Options{
		CacheSize: *cacheSize, Workers: *workers, MaxInflight: *inflight,
		Timeout:     *timeout,
		Metrics:     reg,
		SlowlogSize: *slowlogSize,
		// One structured line per committed mutation: old→new generation,
		// resulting shape, and whether auto-compaction renumbered indices.
		MutationLog: func(ev server.MutationEvent) {
			attrs := []any{
				"op", ev.Op, "index", ev.Index,
				"old_generation", ev.OldGeneration, "new_generation", ev.NewGeneration,
				"live", ev.LiveGraphs, "tombstoned", ev.Tombstoned,
				"compacted", ev.Compacted,
			}
			if ev.Compacted {
				attrs = append(attrs, "compacted_slots", ev.CompactedSlots)
			}
			logger.Info("mutation", attrs...)
		},
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener so profiling is never
		// reachable through the public API address.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		//pgvet:leakok the pprof listener is process-lifetime by design; it dies with the process
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// Every request context derives from the signal context: SIGTERM
		// propagates into in-flight queries, which cancel at candidate
		// granularity — graceful shutdown no longer waits for a full
		// database scan to finish, only for the current candidates.
		BaseContext: func(net.Listener) context.Context { return ctx },
		// Handlers never hold database locks across response writes
		// (/query/stream evaluates under the lock but delivers through a
		// buffer, so a stalled reader never pins it), so a slow client
		// costs a connection, not the service; these bound that cost
		// (header slow-loris, dead keep-alives, stuck writes).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	//pgvet:leakok lives exactly until ListenAndServe returns; the buffered send can never block
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "cache", *cacheSize, "workers", *workers, "timeout", timeout.String())

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		logger.Info("shutting down (in-flight queries cancelled)")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("shutdown", "err", err)
		}
	}
}

func pmiFeatures(db *core.Database) int {
	if db.PMI() == nil {
		return 0
	}
	return db.PMI().NumFeatures()
}
