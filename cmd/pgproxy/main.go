// Command pgproxy is the distributed-serving coordinator: it fronts a
// fleet of pgserve shards, each serving one contiguous global-id range
// partition of the same database (see pgsearch -partition), and exposes
// the single-node query API — answers merged across the fleet are
// bitwise-identical to one pgserve holding the whole database.
//
// Usage:
//
//	pgproxy -shards http://10.0.0.1:8091,http://10.0.0.2:8091 [-addr :8090]
//	        [-shard-timeout 0] [-retries 1]
//	        [-log-format text|json] [-log-level info]
//	        [-pprof-addr 127.0.0.1:6060]
//
// Each -shards entry is url or name=url; names default to shard<i> and
// label errors, metrics, and /stats health records. Fleet order must be
// partition order.
//
// Endpoints:
//
//	POST /query         fan-out to every shard; disjoint answer sets merged
//	                    sorted by global graph id, SSP maps unioned
//	POST /query/stream  per-shard NDJSON streams forwarded as lines arrive,
//	                    then one merged summary line
//	POST /topk          shard bound schedules merged into the serial
//	                    verification order, early-termination rule replayed,
//	                    SSPs fetched from each candidate's owning shard
//	POST /batch         one fan-out carrying the whole batch, merged member-wise
//	GET  /stats         per-shard health records + coordinator counters
//	GET  /metrics       Prometheus exposition (pg_shard_requests_total,
//	                    pg_shard_request_duration_seconds, pg_shard_up, ...)
//	GET  /healthz       liveness (the coordinator process is up)
//	GET  /readyz        readiness (every shard's /readyz answers 200)
//
// A shard that cannot answer — down, timed out after -retries, or serving
// a different database generation — fails the whole request with a
// structured error naming the shard; the coordinator never returns a
// silently partial answer. Client disconnects and timeout_ms propagate
// into every shard sub-request.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"probgraph/internal/cluster"
	"probgraph/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	shardsFlag := flag.String("shards", "", "comma-separated shard list, each url or name=url, in partition order")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-attempt deadline for one shard sub-request (0 = none; streams are never bounded by this)")
	retries := flag.Int("retries", 1, "retries per shard sub-request on transport errors (<0 disables)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables; keep it loopback)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgproxy: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	shards, err := parseShards(*shardsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgproxy: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	coord, err := cluster.New(cluster.Options{
		Shards:       shards,
		ShardTimeout: *shardTimeout,
		Retries:      effectiveRetries(*retries),
	})
	if err != nil {
		logger.Error("fatal", "err", err)
		os.Exit(1)
	}
	for _, sh := range shards {
		logger.Info("shard", "name", sh.Name, "url", sh.URL)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// pprof gets its own mux on its own listener so profiling is never
		// reachable through the public API address.
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		//pgvet:leakok the pprof listener is process-lifetime by design; it dies with the process
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pm); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: coord.Handler(),
		// Every request context derives from the signal context: SIGTERM
		// propagates through the coordinator into every in-flight shard
		// sub-request.
		BaseContext:       func(net.Listener) context.Context { return ctx },
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	errc := make(chan error, 1)
	//pgvet:leakok lives exactly until ListenAndServe returns; the buffered send can never block
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "shards", len(shards),
		"shard_timeout", shardTimeout.String(), "retries", *retries)

	select {
	case err := <-errc:
		logger.Error("fatal", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		logger.Info("shutting down (in-flight fan-outs cancelled)")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("shutdown", "err", err)
		}
	}
}

// parseShards splits the -shards flag: comma-separated url or name=url
// entries, fleet order preserved.
func parseShards(s string) ([]cluster.Shard, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("-shards is required")
	}
	var out []cluster.Shard
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var sh cluster.Shard
		if name, url, ok := strings.Cut(part, "="); ok && !strings.Contains(name, "/") {
			sh = cluster.Shard{Name: strings.TrimSpace(name), URL: strings.TrimSpace(url)}
		} else {
			sh = cluster.Shard{URL: part}
		}
		out = append(out, sh)
	}
	if len(out) == 0 {
		return nil, errors.New("-shards is required")
	}
	return out, nil
}

// effectiveRetries maps the flag onto cluster.Options.Retries, whose zero
// value means "default": the flag's explicit 0 must mean no retries.
func effectiveRetries(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}
