package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunJSONCleanRepo runs the real suite over the repo with -json: the
// output must be a valid (empty) JSON array, the exit code 0, and the
// stderr timing line present.
func TestRunJSONCleanRepo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "../../..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s\nstdout:\n%s", code, stderr.String(), stdout.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 0 {
		t.Errorf("clean repo produced findings: %v", findings)
	}
	if !strings.Contains(stderr.String(), "analyzer(s) in") {
		t.Errorf("stderr is missing the timing line:\n%s", stderr.String())
	}
}

// TestRunBadFlag keeps flag errors on exit 2, distinct from findings.
func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nonsense"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d for an unknown flag, want 2", code)
	}
}
