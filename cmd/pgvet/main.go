// Command pgvet runs the project-invariant static-analysis suite over
// the given package patterns (default ./...) and prints one
// file:line:col diagnostic per finding (or, with -json, a JSON array of
// findings for tooling). Paths are shown relative to the working
// directory when they fall under it. Exit status: 0 clean, 1 when
// findings exist, 2 when loading or type-checking fails. A timing line
// on stderr reports packages analyzed and wall time; repeat runs over an
// unchanged tree reuse cached `go list` metadata (PGVET_NOCACHE=1
// disables that). See internal/analysis for what each pass enforces and
// the //pgvet: annotation escape hatches.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"probgraph/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the -json wire form of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pgvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of file:line:col lines")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: pgvet [-json] [packages]")
		fmt.Fprintln(stderr, "Runs the probgraph invariant analyzers (detrange, spanclose, ctxflow, noalloc,")
		fmt.Fprintln(stderr, "atomicmix, lockorder, leakcheck, snapfields).")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	pkgs, stats, err := analysis.LoadWithStats(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags := analysis.RunAnalyzers(pkgs)
	elapsed := time.Since(start)

	// Relativize paths under the working directory: shorter lines, and CI
	// problem matchers annotate by repo-relative path.
	if wd, err := os.Getwd(); err == nil {
		for i := range diags {
			if rel, err := filepath.Rel(wd, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				diags[i].Pos.Filename = rel
			}
		}
	}

	if *jsonOut {
		out := make([]finding, 0, len(diags))
		for _, d := range diags {
			out = append(out, finding{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}

	cached := ""
	if stats.CacheHit {
		cached = ", cached metadata"
	}
	fmt.Fprintf(stderr, "pgvet: %d package(s), %d analyzer(s) in %s%s\n",
		stats.Packages, len(analysis.Analyzers), elapsed.Round(time.Millisecond), cached)
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "pgvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
