// Command pgvet runs the project-invariant static-analysis suite over
// the given package patterns (default ./...) and prints one
// file:line:col diagnostic per finding. Exit status: 0 clean, 1 when
// findings exist, 2 when loading or type-checking fails. See
// internal/analysis for what each pass enforces and the //pgvet:
// annotation escape hatches.
package main

import (
	"flag"
	"fmt"
	"os"

	"probgraph/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("pgvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: pgvet [packages]")
		fmt.Fprintln(stderr, "Runs the probgraph invariant analyzers (detrange, spanclose, ctxflow, noalloc, atomicmix).")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "pgvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
