package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"probgraph"
	"probgraph/internal/server"
	"probgraph/internal/stats"
)

// remoteConfig is -server mode's slice of the flag set.
type remoteConfig struct {
	url      string
	qfile    string
	epsilon  float64
	delta    int
	verifier string
	plain    bool
	seed     int64
	workers  int
	batch    bool
	stream   bool
	jsonOut  bool
	verbose  bool
	timeout  time.Duration
}

// runRemote answers the -qfile queries against a running pgserve or
// pgproxy instead of evaluating locally. Seeds derive exactly as in local
// mode (BatchSeed per query; the base seed for -batch, which the server
// derives per member itself), and the server evaluates with the same
// engine — so the printed answers, SSP estimates, and NDJSON summaries
// are bitwise what local evaluation with the same flags prints.
func runRemote(cfg remoteConfig, say func(string, ...any)) {
	f, err := os.Open(cfg.qfile)
	if err != nil {
		log.Fatal(err)
	}
	qs, err := probgraph.LoadGraphs(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	if len(qs) == 0 {
		log.Fatalf("pgsearch: no query graphs in %s", cfg.qfile)
	}
	say("loaded %d query graph(s) from %s\n", len(qs), cfg.qfile)

	rc := &remoteClient{
		base: strings.TrimRight(cfg.url, "/"),
		// The client itself has no timeout: -timeout travels as timeout_ms
		// and the server enforces it, answering a structured 504.
		hc:        &http.Client{},
		timeoutMS: cfg.timeout.Milliseconds(),
	}

	if cfg.stream {
		runRemoteStream(rc, cfg, qs)
		return
	}

	qStart := time.Now()
	var results []*server.QueryResponse
	if cfg.batch {
		breq := server.BatchRequest{
			Epsilon: cfg.epsilon, Delta: cfg.delta, Verifier: cfg.verifier,
			Plain: cfg.plain, Seed: cfg.seed, Workers: cfg.workers,
			TimeoutMS: rc.timeoutMS,
		}
		for _, q := range qs {
			breq.Queries = append(breq.Queries, *server.GraphToJSON(q))
		}
		var bresp server.BatchResponse
		rc.post("/batch", &breq, &bresp)
		results = bresp.Results
	} else {
		for i, q := range qs {
			req := server.QueryRequest{
				Graph:   server.GraphToJSON(q),
				Epsilon: cfg.epsilon, Delta: cfg.delta, Verifier: cfg.verifier,
				Plain: cfg.plain, Seed: probgraph.BatchSeed(cfg.seed, i),
				Workers: cfg.workers, TimeoutMS: rc.timeoutMS,
			}
			var resp server.QueryResponse
			rc.post("/query", &req, &resp)
			results = append(results, &resp)
		}
	}
	elapsed := time.Since(qStart)

	if cfg.jsonOut {
		printRemoteJSON(qs, results, elapsed)
		return
	}
	table := stats.NewTable("query results",
		"query", "answers", "struct", "pruned", "accepted", "verified", "time")
	for i, res := range results {
		table.AddRow(
			fmt.Sprintf("q%d(%de)", i, qs[i].NumEdges()),
			len(res.Answers),
			res.Stats.StructConfirmed,
			res.Stats.PrunedByUpper,
			res.Stats.AcceptedByLower,
			res.Stats.VerifyCandidates,
			msToDuration(res.Stats.TimeTotalMS),
		)
		if cfg.verbose {
			for k, gi := range res.Answers {
				ssp := res.SSP[gi]
				tag := fmt.Sprintf("SSP≈%.3f", ssp)
				if ssp == -1 {
					tag = "accepted by lower bound"
				}
				fmt.Printf("  q%d → %s (%s)\n", i, res.Names[k], tag)
			}
		}
	}
	table.Render(os.Stdout)
	fmt.Printf("%d queries in %v (workers=%d, batch=%v)\n",
		len(qs), elapsed.Round(time.Microsecond), cfg.workers, cfg.batch)
}

// remoteClient posts JSON bodies against the server's base URL, mapping
// the structured error statuses onto pgsearch's exit codes (504 → exit 3,
// matching local -timeout expiry).
type remoteClient struct {
	base      string
	hc        *http.Client
	timeoutMS int64
}

func (rc *remoteClient) post(path string, in, out any) {
	status, data := rc.postRaw(path, in)
	if status != http.StatusOK {
		rc.fail(status, data)
	}
	if err := json.Unmarshal(data, out); err != nil {
		log.Fatalf("pgsearch: undecodable response from %s%s: %v", rc.base, path, err)
	}
}

func (rc *remoteClient) postRaw(path string, in any) (int, []byte) {
	body, err := json.Marshal(in)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := rc.hc.Post(rc.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatalf("pgsearch: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		log.Fatalf("pgsearch: reading response from %s%s: %v", rc.base, path, err)
	}
	return resp.StatusCode, data
}

// fail reports a non-200 server answer and exits: 504 exits 3 like a
// local -timeout expiry, everything else exits via log.Fatal (code 1).
func (rc *remoteClient) fail(status int, data []byte) {
	msg := strings.TrimSpace(string(data))
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	if status == http.StatusGatewayTimeout {
		fmt.Fprintf(os.Stderr, "pgsearch: %s\n", msg)
		os.Exit(3)
	}
	log.Fatalf("pgsearch: server answered %d: %s", status, msg)
}

// runRemoteStream mirrors local -stream over /query/stream: the server's
// match lines re-emit with the query index prepended, and each query ends
// with the summary shape local mode prints (the server summary's sorted
// answers are bitwise the local ones).
func runRemoteStream(rc *remoteClient, cfg remoteConfig, qs []*probgraph.Graph) {
	enc := json.NewEncoder(os.Stdout)
	for i, q := range qs {
		req := server.QueryRequest{
			Graph:   server.GraphToJSON(q),
			Epsilon: cfg.epsilon, Delta: cfg.delta, Verifier: cfg.verifier,
			Plain: cfg.plain, Seed: probgraph.BatchSeed(cfg.seed, i),
			Workers: cfg.workers, TimeoutMS: rc.timeoutMS,
		}
		start := time.Now()
		body, err := json.Marshal(&req)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := rc.hc.Post(rc.base+"/query/stream", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatalf("pgsearch: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			rc.fail(resp.StatusCode, data)
		}
		br := bufio.NewReader(resp.Body)
		done := false
		for !done {
			raw, rerr := br.ReadBytes('\n')
			if len(bytes.TrimSpace(raw)) > 0 {
				// Probe the discriminators only: a match line's ssp is a
				// number while the summary line's is a map, so the shapes
				// decode separately below.
				var line struct {
					Done    bool   `json:"done"`
					Error   string `json:"error"`
					Timeout bool   `json:"timeout"`
				}
				if err := json.Unmarshal(raw, &line); err != nil {
					resp.Body.Close()
					log.Fatalf("pgsearch: undecodable stream line: %v", err)
				}
				switch {
				case line.Error != "":
					resp.Body.Close()
					if line.Timeout {
						fmt.Fprintf(os.Stderr, "pgsearch: %s\n", line.Error)
						os.Exit(3)
					}
					log.Fatalf("pgsearch: %s", line.Error)
				case line.Done:
					var sum server.StreamSummaryJSON
					if err := json.Unmarshal(raw, &sum); err != nil {
						resp.Body.Close()
						log.Fatalf("pgsearch: undecodable stream summary: %v", err)
					}
					if sum.Answers == nil {
						sum.Answers = []int{}
					}
					if err := enc.Encode(streamSummaryJSON{
						Query: i, Done: true, Answers: sum.Answers, Count: sum.Count,
						TimeMS: float64(time.Since(start).Microseconds()) / 1000,
					}); err != nil {
						log.Fatal(err)
					}
					done = true
				default:
					var m server.StreamMatchJSON
					if err := json.Unmarshal(raw, &m); err != nil {
						resp.Body.Close()
						log.Fatalf("pgsearch: undecodable stream line: %v", err)
					}
					if err := enc.Encode(streamMatchJSON{
						Query: i, Graph: m.Graph, Name: m.Name, SSP: m.SSP,
					}); err != nil {
						log.Fatal(err)
					}
				}
			}
			if rerr != nil {
				if !done {
					resp.Body.Close()
					log.Fatalf("pgsearch: stream from %s ended before summary: %v", rc.base, rerr)
				}
				break
			}
		}
		resp.Body.Close()
	}
}

// printRemoteJSON prints the -json shape local mode prints, from wire
// responses.
func printRemoteJSON(qs []*probgraph.Graph, results []*server.QueryResponse, elapsed time.Duration) {
	out := struct {
		Results []queryJSON `json:"results"`
		TimeMS  float64     `json:"time_ms"`
	}{Results: []queryJSON{}, TimeMS: float64(elapsed.Microseconds()) / 1000}
	for i, res := range results {
		answers := res.Answers
		if answers == nil {
			answers = []int{}
		}
		names := res.Names
		if names == nil {
			names = []string{}
		}
		out.Results = append(out.Results, queryJSON{
			Query: i, Edges: qs[i].NumEdges(),
			Answers: answers, Names: names, SSP: res.SSP,
			Pruned:   res.Stats.PrunedByUpper,
			Accepted: res.Stats.AcceptedByLower,
			Verified: res.Stats.VerifyCandidates,
			TimeMS:   res.Stats.TimeTotalMS,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}

func msToDuration(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond)).Round(time.Microsecond)
}
