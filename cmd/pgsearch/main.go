// Command pgsearch answers T-PS queries over a database file produced by
// cmd/pggen: it builds the full index (structural filter + PMI), extracts
// or reads a query graph, and runs the filter-and-verify pipeline.
//
// Usage:
//
//	pgsearch -db db.pgraph [-epsilon 0.5] [-delta 2] [-qsize 6]
//	         [-qfrom 0] [-queries 5] [-verifier smp|exact|none]
//	         [-plain] [-workers 1] [-batch] [-seed 1] [-v]
//
// Queries are extracted from the certain graph of the graph at index
// -qfrom (rotating across -queries runs), matching the paper's workload
// construction.
//
// -workers N evaluates candidate graphs on a pool of N goroutines (N < 0
// selects GOMAXPROCS). -batch additionally runs all queries through one
// QueryBatch call, spreading the same pool across the queries. Both knobs
// change scheduling only: for a fixed -seed, every combination of
// -workers and -batch reports identical answers.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"probgraph"
	"probgraph/internal/stats"
)

func main() {
	dbPath := flag.String("db", "", "database file from pggen (required)")
	epsilon := flag.Float64("epsilon", 0.5, "probability threshold ε")
	delta := flag.Int("delta", 2, "subgraph distance threshold δ")
	qsize := flag.Int("qsize", 6, "query size (edges)")
	qfrom := flag.Int("qfrom", 0, "index of the graph to extract queries from")
	queries := flag.Int("queries", 5, "number of queries to run")
	verifier := flag.String("verifier", "smp", "verifier: smp, exact, none")
	plain := flag.Bool("plain", false, "use plain SSPBound instead of OPT-SSPBound")
	workers := flag.Int("workers", 1, "candidate-evaluation worker pool size (<0 = GOMAXPROCS)")
	batch := flag.Bool("batch", false, "run all queries through one QueryBatch call")
	saveIndex := flag.String("saveindex", "", "write the built PMI index to this file")
	loadIndex := flag.String("loadindex", "", "load a previously saved PMI index instead of rebuilding")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print per-answer SSP estimates")
	flag.Parse()

	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	raw, err := probgraph.LoadDataset(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d probabilistic graphs\n", len(raw.Graphs))

	start := time.Now()
	buildOpt := probgraph.DefaultBuildOptions()
	buildOpt.SkipPMI = *loadIndex != ""
	db, err := probgraph.NewDatabase(raw.Graphs, buildOpt)
	if err != nil {
		log.Fatal(err)
	}
	if *loadIndex != "" {
		idxFile, err := os.Open(*loadIndex)
		if err != nil {
			log.Fatal(err)
		}
		idx, err := probgraph.LoadPMI(idxFile)
		idxFile.Close()
		if err != nil {
			log.Fatal(err)
		}
		if err := db.AttachPMI(idx); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded PMI index from %s (%d features)\n", *loadIndex, idx.NumFeatures())
	}
	fmt.Printf("indexed in %v: %d PMI features, %.1f KB index\n\n",
		time.Since(start), db.PMI.NumFeatures(), float64(db.Build.IndexSizeBytes)/1024)
	if *saveIndex != "" {
		idxFile, err := os.Create(*saveIndex)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.PMI.Save(idxFile); err != nil {
			log.Fatal(err)
		}
		idxFile.Close()
		fmt.Printf("saved PMI index to %s\n", *saveIndex)
	}

	var vk probgraph.VerifierKind
	switch *verifier {
	case "smp":
		vk = probgraph.VerifierSMP
	case "exact":
		vk = probgraph.VerifierExact
	case "none":
		vk = probgraph.VerifierNone
	default:
		log.Fatalf("unknown verifier %q", *verifier)
	}

	rng := rand.New(rand.NewSource(*seed))
	qs := make([]*probgraph.Graph, *queries)
	for i := range qs {
		src := raw.Graphs[(*qfrom+i)%len(raw.Graphs)].G
		qs[i] = probgraph.ExtractQuery(src, *qsize, rng)
	}

	qStart := time.Now()
	results := make([]*probgraph.Result, len(qs))
	if *batch {
		rs, err := db.QueryBatch(qs, probgraph.QueryOptions{
			Epsilon: *epsilon, Delta: *delta,
			OptBounds: !*plain, Verifier: vk,
			Seed: *seed, Concurrency: *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		results = rs
	} else {
		for i, q := range qs {
			// Same per-query seed derivation as QueryBatch, so -batch
			// changes scheduling only, never answers.
			res, err := db.Query(q, probgraph.QueryOptions{
				Epsilon: *epsilon, Delta: *delta,
				OptBounds: !*plain, Verifier: vk,
				Seed: probgraph.BatchSeed(*seed, i), Concurrency: *workers,
			})
			if err != nil {
				log.Fatal(err)
			}
			results[i] = res
		}
	}
	elapsed := time.Since(qStart)

	table := stats.NewTable("query results",
		"query", "answers", "struct", "pruned", "accepted", "verified", "time")
	for i, res := range results {
		table.AddRow(
			fmt.Sprintf("q%d(%de)", i, qs[i].NumEdges()),
			len(res.Answers),
			res.Stats.StructConfirmed,
			res.Stats.PrunedByUpper,
			res.Stats.AcceptedByLower,
			res.Stats.VerifyCandidates,
			res.Stats.TimeTotal.Round(time.Microsecond),
		)
		if *verbose {
			for _, gi := range res.Answers {
				ssp := res.SSP[gi]
				tag := fmt.Sprintf("SSP≈%.3f", ssp)
				if ssp == -1 {
					tag = "accepted by lower bound"
				}
				fmt.Printf("  q%d → %s (%s)\n", i, raw.Graphs[gi].G.Name(), tag)
			}
		}
	}
	table.Render(os.Stdout)
	fmt.Printf("%d queries in %v (workers=%d, batch=%v)\n",
		len(qs), elapsed.Round(time.Microsecond), *workers, *batch)
}
