// Command pgsearch answers T-PS queries over a database file produced by
// cmd/pggen: it builds the full index (structural filter + PMI), extracts
// or reads a query graph, and runs the filter-and-verify pipeline.
//
// Usage:
//
//	pgsearch -db db.pgraph [-epsilon 0.5] [-delta 2] [-qsize 6]
//	         [-qfrom 0] [-queries 5] [-qfile q.pgraph] [-verifier smp|exact|none]
//	         [-plain] [-workers 1] [-batch] [-seed 1] [-v] [-json]
//	         [-timeout 0] [-stream] [-trace] [-savesnap db.idx]
//	         [-format text|binary]
//	pgsearch -loadsnap db.idx ...   (start from a snapshot, no re-indexing)
//	pgsearch -server http://host:8091 -qfile q.pgraph ...   (remote mode)
//
// Queries are extracted from the certain graph of the graph at index
// -qfrom (rotating across -queries runs), matching the paper's workload
// construction — or read verbatim from -qfile (one or more graph blocks,
// as written by pggen -query).
//
// -savesnap persists the indexed database as one snapshot file (-format
// text writes the v3 line format, -format binary the mmap-able v4 layout);
// -loadsnap restores either without re-mining features or recomputing PMI
// bounds, so repeated sessions (and cmd/pgserve) skip the offline index
// build. Binary snapshots are opened via mmap: no full parse at startup.
// -json prints machine-readable results to stdout instead of tables.
// -savesnap with -partition N instead writes N contiguous range-shard
// snapshots (<savesnap>.shard<i>), one per cmd/pgproxy fleet member.
//
// -server runs the same queries against a running pgserve (or pgproxy
// coordinator) over HTTP instead of evaluating locally; it requires
// -qfile and prints exactly what local evaluation with the same flags
// would — the server's answers are bitwise-identical to the library's.
//
// -workers N evaluates candidate graphs on a pool of N goroutines (N < 0
// selects GOMAXPROCS). -batch additionally runs all queries through one
// QueryBatch call, spreading the same pool across the queries. Both knobs
// change scheduling only: for a fixed -seed, every combination of
// -workers and -batch reports identical answers.
//
// -timeout D bounds the whole query run with a deadline; on expiry
// pgsearch prints a one-line error to stderr and exits 3 (distinct from
// exit 2 for bad flags and exit 1 for evaluation failures).
//
// -stream answers with Database.QueryStream instead: one NDJSON line per
// verified match, written as verification admits it (arrival order), then
// one summary line per query with the sorted answer set — which is
// bitwise-identical to the answers the non-streaming run reports, at any
// -workers. -stream implies NDJSON output and excludes -batch.
//
// -trace prints each query's span tree — pipeline stages (struct filter
// with per-shard scan spans, relax, PMI prune, verify) with durations and
// item counts — to stderr as JSON, leaving stdout untouched. Traced and
// untraced runs return identical answers.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"time"

	"probgraph"
	"probgraph/internal/obs"
	"probgraph/internal/stats"
)

// tracedCtx attaches a fresh trace root to ctx when -trace is on. The
// returned done ends the root and prints the span tree to stderr (stdout
// stays reserved for results and NDJSON). Tracing is observational only:
// answers and stats are identical with and without it.
func tracedCtx(ctx context.Context, enabled bool, label string) (context.Context, func()) {
	if !enabled {
		return ctx, func() {}
	}
	tr := obs.NewTrace()
	root := tr.Root(label)
	//pgvet:spanok ownership transfers to the returned done closure, which ends root
	return obs.ContextWithSpan(ctx, root), func() {
		root.End()
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			TraceID string        `json:"trace_id"`
			Trace   *obs.SpanNode `json:"trace"`
		}{tr.ID(), tr.Tree()}); err != nil {
			log.Fatal(err)
		}
	}
}

func main() {
	dbPath := flag.String("db", "", "database file from pggen")
	loadSnap := flag.String("loadsnap", "", "snapshot file to load instead of -db (skips indexing)")
	saveSnap := flag.String("savesnap", "", "write the indexed database snapshot to this file")
	format := flag.String("format", "text", "snapshot format for -savesnap: text (v3) or binary (v4, mmap-able)")
	epsilon := flag.Float64("epsilon", 0.5, "probability threshold ε")
	delta := flag.Int("delta", 2, "subgraph distance threshold δ")
	qsize := flag.Int("qsize", 6, "query size (edges)")
	qfrom := flag.Int("qfrom", 0, "index of the graph to extract queries from")
	queries := flag.Int("queries", 5, "number of queries to run")
	qfile := flag.String("qfile", "", "read query graph(s) from this file instead of extracting")
	verifier := flag.String("verifier", "smp", "verifier: smp, exact, none")
	plain := flag.Bool("plain", false, "use plain SSPBound instead of OPT-SSPBound")
	workers := flag.Int("workers", 1, "candidate-evaluation worker pool size (<0 = GOMAXPROCS)")
	batch := flag.Bool("batch", false, "run all queries through one QueryBatch call")
	saveIndex := flag.String("saveindex", "", "write the built PMI index to this file")
	loadIndex := flag.String("loadindex", "", "load a previously saved PMI index instead of rebuilding")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print per-answer SSP estimates")
	jsonOut := flag.Bool("json", false, "print results as JSON to stdout (suppresses tables)")
	timeout := flag.Duration("timeout", 0, "deadline for the query run (0 = none; expiry exits 3)")
	stream := flag.Bool("stream", false, "stream matches as NDJSON while verification admits them")
	trace := flag.Bool("trace", false, "print each query's span tree (pipeline stages, per-shard scans) to stderr as JSON")
	serverURL := flag.String("server", "", "query a running pgserve/pgproxy at this base URL instead of evaluating locally (requires -qfile)")
	partition := flag.Int("partition", 0, "with -savesnap: split the database into N contiguous range shards, writing <savesnap>.shard<i> files")
	flag.Parse()

	if *serverURL != "" {
		// Remote mode holds no database: queries must come from -qfile, and
		// every local-index flag is meaningless.
		if *qfile == "" {
			fmt.Fprintln(os.Stderr, "pgsearch: -server requires -qfile")
			os.Exit(2)
		}
		for flagName, set := range map[string]bool{
			"-db": *dbPath != "", "-loadsnap": *loadSnap != "", "-savesnap": *saveSnap != "",
			"-saveindex": *saveIndex != "", "-loadindex": *loadIndex != "",
			"-partition": *partition != 0, "-trace": *trace,
		} {
			if set {
				fmt.Fprintf(os.Stderr, "pgsearch: %s cannot be combined with -server (use trace=1 against the server for traces)\n", flagName)
				os.Exit(2)
			}
		}
	} else if (*dbPath == "") == (*loadSnap == "") {
		fmt.Fprintln(os.Stderr, "pgsearch: give exactly one of -db or -loadsnap")
		flag.Usage()
		os.Exit(2)
	}
	if *partition != 0 && (*partition < 1 || *saveSnap == "") {
		fmt.Fprintln(os.Stderr, "pgsearch: -partition needs a positive shard count and -savesnap")
		os.Exit(2)
	}
	// Reject out-of-range thresholds up front: a bad ε/δ would otherwise
	// surface only after the (possibly expensive) index build.
	if *epsilon <= 0 || *epsilon > 1 {
		fmt.Fprintf(os.Stderr, "pgsearch: -epsilon must be in (0,1], got %v\n", *epsilon)
		os.Exit(2)
	}
	if *delta < 0 {
		fmt.Fprintf(os.Stderr, "pgsearch: -delta must be >= 0, got %d\n", *delta)
		os.Exit(2)
	}
	if *qsize < 1 {
		fmt.Fprintf(os.Stderr, "pgsearch: -qsize must be >= 1, got %d\n", *qsize)
		os.Exit(2)
	}
	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "pgsearch: -timeout must be >= 0, got %v\n", *timeout)
		os.Exit(2)
	}
	if *stream && *batch {
		fmt.Fprintln(os.Stderr, "pgsearch: -stream and -batch are mutually exclusive")
		os.Exit(2)
	}
	say := func(format string, args ...any) {
		// -stream shares stdout with the NDJSON lines, so it implies the
		// same chatter suppression as -json.
		if !*jsonOut && !*stream {
			fmt.Printf(format, args...)
		}
	}

	if *serverURL != "" {
		runRemote(remoteConfig{
			url: *serverURL, qfile: *qfile,
			epsilon: *epsilon, delta: *delta, verifier: *verifier, plain: *plain,
			seed: *seed, workers: *workers, batch: *batch, stream: *stream,
			jsonOut: *jsonOut, verbose: *verbose, timeout: *timeout,
		}, say)
		return
	}

	start := time.Now()
	var db *probgraph.Database
	if *loadSnap != "" {
		var err error
		db, err = probgraph.OpenSnapshot(*loadSnap)
		if err != nil {
			log.Fatal(err)
		}
		say("loaded snapshot %s: %d graphs in %v (no re-indexing)\n",
			*loadSnap, db.Len(), time.Since(start).Round(time.Millisecond))
	} else {
		f, err := os.Open(*dbPath)
		if err != nil {
			log.Fatal(err)
		}
		raw, err := probgraph.LoadDataset(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		say("loaded %d probabilistic graphs\n", len(raw.Graphs))
		buildOpt := probgraph.DefaultBuildOptions()
		buildOpt.SkipPMI = *loadIndex != ""
		db, err = probgraph.NewDatabase(raw.Graphs, buildOpt)
		if err != nil {
			log.Fatal(err)
		}
		if *loadIndex != "" {
			idxFile, err := os.Open(*loadIndex)
			if err != nil {
				log.Fatal(err)
			}
			idx, err := probgraph.LoadPMI(idxFile)
			idxFile.Close()
			if err != nil {
				log.Fatal(err)
			}
			if err := db.AttachPMI(idx); err != nil {
				log.Fatal(err)
			}
			say("loaded PMI index from %s (%d features)\n", *loadIndex, idx.NumFeatures())
		}
		say("indexed in %v: %d PMI features, %.1f KB index\n\n",
			time.Since(start), db.PMI().NumFeatures(), float64(db.Build().IndexSizeBytes)/1024)
	}
	if *saveSnap != "" {
		sf, err := probgraph.ParseSnapshotFormat(*format)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pgsearch: %v\n", err)
			os.Exit(2)
		}
		if *partition > 0 {
			// One snapshot per contiguous range shard: <base>.shard<i> files
			// each carry the full feature vocabulary plus that range's
			// graphs, postings, and PMI columns — what cmd/pgproxy's fleet
			// serves (see internal/cluster).
			ranges, err := probgraph.PartitionRanges(db.Len(), *partition)
			if err != nil {
				log.Fatal(err)
			}
			for i, r := range ranges {
				path := fmt.Sprintf("%s.shard%d", *saveSnap, i)
				if err := db.SaveRangeFile(path, r[0], r[1], sf); err != nil {
					log.Fatal(err)
				}
				say("saved %s shard %d [%d,%d) to %s\n", *format, i, r[0], r[1], path)
			}
		} else {
			if err := db.SaveFile(*saveSnap, sf); err != nil {
				log.Fatal(err)
			}
			say("saved %s snapshot to %s\n", *format, *saveSnap)
		}
	}
	if *saveIndex != "" {
		if db.PMI() == nil {
			log.Fatal("pgsearch: no PMI to save")
		}
		idxFile, err := os.Create(*saveIndex)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.PMI().Save(idxFile); err != nil {
			log.Fatal(err)
		}
		idxFile.Close()
		say("saved PMI index to %s\n", *saveIndex)
	}

	var vk probgraph.VerifierKind
	switch *verifier {
	case "smp":
		vk = probgraph.VerifierSMP
	case "exact":
		vk = probgraph.VerifierExact
	case "none":
		vk = probgraph.VerifierNone
	default:
		log.Fatalf("unknown verifier %q", *verifier)
	}

	var qs []*probgraph.Graph
	if *qfile != "" {
		f, err := os.Open(*qfile)
		if err != nil {
			log.Fatal(err)
		}
		qs, err = probgraph.LoadGraphs(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if len(qs) == 0 {
			log.Fatalf("pgsearch: no query graphs in %s", *qfile)
		}
		say("loaded %d query graph(s) from %s\n", len(qs), *qfile)
	} else {
		rng := rand.New(rand.NewSource(*seed))
		qs = make([]*probgraph.Graph, *queries)
		for i := range qs {
			src := db.Graphs()[(*qfrom+i)%db.Len()].G
			qs[i] = probgraph.ExtractQuery(src, *qsize, rng)
		}
	}

	// The whole query run shares one context; -timeout bounds it and the
	// engine cancels at candidate granularity on expiry.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	exitOnDeadline := func(err error) {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "pgsearch: query run exceeded -timeout %v\n", *timeout)
			os.Exit(3)
		}
	}

	if *stream {
		runStream(ctx, db, qs, probgraph.QueryOptions{
			Epsilon: *epsilon, Delta: *delta,
			OptBounds: !*plain, Verifier: vk,
			Seed: *seed, Concurrency: *workers,
		}, *trace, exitOnDeadline)
		return
	}

	qStart := time.Now()
	results := make([]*probgraph.Result, len(qs))
	if *batch {
		bctx, done := tracedCtx(ctx, *trace, "batch")
		rs, err := db.QueryBatchCtx(bctx, qs, probgraph.QueryOptions{
			Epsilon: *epsilon, Delta: *delta,
			OptBounds: !*plain, Verifier: vk,
			Seed: *seed, Concurrency: *workers,
		})
		done()
		if err != nil {
			exitOnDeadline(err)
			log.Fatal(err)
		}
		results = rs
	} else {
		for i, q := range qs {
			// Same per-query seed derivation as QueryBatch, so -batch
			// changes scheduling only, never answers.
			qctx, done := tracedCtx(ctx, *trace, fmt.Sprintf("q%d", i))
			res, err := db.QueryCtx(qctx, q, probgraph.QueryOptions{
				Epsilon: *epsilon, Delta: *delta,
				OptBounds: !*plain, Verifier: vk,
				Seed: probgraph.BatchSeed(*seed, i), Concurrency: *workers,
			})
			done()
			if err != nil {
				exitOnDeadline(err)
				log.Fatal(err)
			}
			results[i] = res
		}
	}
	elapsed := time.Since(qStart)

	if *jsonOut {
		printJSON(qs, results, db, elapsed)
		return
	}

	table := stats.NewTable("query results",
		"query", "answers", "struct", "pruned", "accepted", "verified", "time")
	for i, res := range results {
		table.AddRow(
			fmt.Sprintf("q%d(%de)", i, qs[i].NumEdges()),
			len(res.Answers),
			res.Stats.StructConfirmed,
			res.Stats.PrunedByUpper,
			res.Stats.AcceptedByLower,
			res.Stats.VerifyCandidates,
			res.Stats.TimeTotal.Round(time.Microsecond),
		)
		if *verbose {
			for _, gi := range res.Answers {
				ssp := res.SSP[gi]
				tag := fmt.Sprintf("SSP≈%.3f", ssp)
				if ssp == -1 {
					tag = "accepted by lower bound"
				}
				fmt.Printf("  q%d → %s (%s)\n", i, db.Graphs()[gi].G.Name(), tag)
			}
		}
	}
	table.Render(os.Stdout)
	fmt.Printf("%d queries in %v (workers=%d, batch=%v)\n",
		len(qs), elapsed.Round(time.Microsecond), *workers, *batch)
}

// streamMatchJSON is one -stream NDJSON line: a verified match of query
// Query, delivered in arrival order.
type streamMatchJSON struct {
	Query int     `json:"query"`
	Graph int     `json:"graph"`
	Name  string  `json:"name"`
	SSP   float64 `json:"ssp"`
}

// streamSummaryJSON closes one query's stream with the sorted answer set —
// bitwise-identical to the non-streaming run's answers.
type streamSummaryJSON struct {
	Query   int     `json:"query"`
	Done    bool    `json:"done"`
	Answers []int   `json:"answers"`
	Count   int     `json:"count"`
	TimeMS  float64 `json:"time_ms"`
}

// runStream answers every query through Database.QueryStream, printing
// matches the moment verification admits them. Per-query seeds derive
// exactly as in the non-streaming path (BatchSeed), so the summary line's
// sorted answers match a plain run with the same flags.
func runStream(ctx context.Context, db *probgraph.Database, qs []*probgraph.Graph,
	opt probgraph.QueryOptions, trace bool, exitOnDeadline func(error)) {
	enc := json.NewEncoder(os.Stdout)
	for i, q := range qs {
		qo := opt
		qo.Seed = probgraph.BatchSeed(opt.Seed, i)
		start := time.Now()
		var answers []int
		qctx, done := tracedCtx(ctx, trace, fmt.Sprintf("q%d", i))
		for m, err := range db.QueryStream(qctx, q, qo) {
			if err != nil {
				exitOnDeadline(err)
				log.Fatal(err)
			}
			if err := enc.Encode(streamMatchJSON{
				Query: i, Graph: m.Graph, Name: db.Graphs()[m.Graph].G.Name(), SSP: m.SSP,
			}); err != nil {
				log.Fatal(err)
			}
			answers = append(answers, m.Graph)
		}
		done()
		sort.Ints(answers)
		if answers == nil {
			answers = []int{}
		}
		if err := enc.Encode(streamSummaryJSON{
			Query: i, Done: true, Answers: answers, Count: len(answers),
			TimeMS: float64(time.Since(start).Microseconds()) / 1000,
		}); err != nil {
			log.Fatal(err)
		}
	}
}

// queryJSON is one query's machine-readable result; answers and ssp are
// exactly the library's (ssp -1 marks direct lower-bound accepts).
type queryJSON struct {
	Query    int             `json:"query"`
	Edges    int             `json:"edges"`
	Answers  []int           `json:"answers"`
	Names    []string        `json:"names"`
	SSP      map[int]float64 `json:"ssp"`
	Pruned   int             `json:"pruned"`
	Accepted int             `json:"accepted"`
	Verified int             `json:"verified"`
	TimeMS   float64         `json:"time_ms"`
}

func printJSON(qs []*probgraph.Graph, results []*probgraph.Result, db *probgraph.Database, elapsed time.Duration) {
	out := struct {
		Results []queryJSON `json:"results"`
		TimeMS  float64     `json:"time_ms"`
	}{Results: []queryJSON{}, TimeMS: float64(elapsed.Microseconds()) / 1000}
	for i, res := range results {
		answers := res.Answers
		if answers == nil {
			answers = []int{}
		}
		names := make([]string, len(answers))
		for k, gi := range answers {
			names[k] = db.Graphs()[gi].G.Name()
		}
		out.Results = append(out.Results, queryJSON{
			Query: i, Edges: qs[i].NumEdges(),
			Answers: answers, Names: names, SSP: res.SSP,
			Pruned:   res.Stats.PrunedByUpper,
			Accepted: res.Stats.AcceptedByLower,
			Verified: res.Stats.VerifyCandidates,
			TimeMS:   float64(res.Stats.TimeTotal.Microseconds()) / 1000,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
}
