package probgraph_test

import (
	"fmt"

	"probgraph"
)

// ExampleNewDatabase indexes the paper's Figure 1 database and runs the
// running-example threshold query.
func ExampleNewDatabase() {
	g001, g002, q, err := probgraph.PaperFigure1()
	if err != nil {
		panic(err)
	}
	opt := probgraph.DefaultBuildOptions()
	opt.Feature.Beta = 0.4
	opt.Feature.MaxL = 3
	db, err := probgraph.NewDatabase([]*probgraph.PGraph{g001, g002}, opt)
	if err != nil {
		panic(err)
	}
	res, err := db.Query(q, probgraph.QueryOptions{
		Epsilon:  0.35,
		Delta:    1,
		Verifier: probgraph.VerifierExact,
	})
	if err != nil {
		panic(err)
	}
	for _, gi := range res.Answers {
		fmt.Println(db.Graphs()[gi].G.Name())
	}
	// Output: 002
}

// ExampleNewPGraph builds a correlated probabilistic graph by hand: a
// triangle whose three neighbor edges share one joint probability table.
func ExampleNewPGraph() {
	b := probgraph.NewGraphBuilder("triangle")
	u := b.AddVertex("A")
	v := b.AddVertex("B")
	w := b.AddVertex("C")
	e1 := b.MustAddEdge(u, v, "")
	e2 := b.MustAddEdge(v, w, "")
	e3 := b.MustAddEdge(u, w, "")

	// Row m assigns edge i present iff bit i of m is set.
	jpt := probgraph.JPT{
		Edges: []probgraph.EdgeID{e1, e2, e3},
		P:     []float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.2},
	}
	pg, err := probgraph.NewPGraph(b.Build(), []probgraph.JPT{jpt})
	if err != nil {
		panic(err)
	}
	eng, err := probgraph.NewInferenceEngine(pg)
	if err != nil {
		panic(err)
	}
	p, err := eng.MarginalPresent(e1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Pr(e1) = %.1f\n", p)
	// Output: Pr(e1) = 0.5
}

// ExampleDatabase_QueryTopK ranks graphs by similarity probability.
func ExampleDatabase_QueryTopK() {
	raw, err := probgraph.GeneratePPI(probgraph.DatasetOptions{
		NumGraphs: 8, MinVertices: 6, MaxVertices: 8, Organisms: 2,
		MeanProb: 0.7, Correlated: true, Seed: 42,
	})
	if err != nil {
		panic(err)
	}
	opt := probgraph.DefaultBuildOptions()
	opt.Feature.Beta = 0.25
	opt.Feature.MaxL = 3
	db, err := probgraph.NewDatabase(raw.Graphs, opt)
	if err != nil {
		panic(err)
	}
	// The first graph's certain structure, as a query against the database.
	q := db.Certain()[0]
	top, err := db.QueryTopK(q, 1, probgraph.QueryOptions{
		Delta: 1, Verifier: probgraph.VerifierSMP,
		Verify: probgraph.VerifyOptions{N: 2000}, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	if len(top) > 0 && top[0].Graph == 0 {
		fmt.Println("best match is the query's own graph")
	}
	// Output: best match is the query's own graph
}
