package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"probgraph/internal/graph"
	"probgraph/internal/iso"
	"probgraph/internal/prob"
	"probgraph/internal/relax"
)

func TestGeneratePPIShape(t *testing.T) {
	db, err := GeneratePPI(PPIOptions{NumGraphs: 12, Organisms: 3, Correlated: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Graphs) != 12 || len(db.Organism) != 12 || len(db.Seeds) != 3 {
		t.Fatalf("shape: %d graphs, %d organisms, %d seeds", len(db.Graphs), len(db.Organism), len(db.Seeds))
	}
	for gi, pg := range db.Graphs {
		if pg.G.NumVertices() < 10 || pg.G.NumVertices() > 18 {
			t.Fatalf("graph %d has %d vertices outside defaults", gi, pg.G.NumVertices())
		}
		if db.Organism[gi] != gi%3 {
			t.Fatalf("organism assignment broken at %d", gi)
		}
		// Every JPT scope must be a neighbor-edge set per Definition 1.
		for ji, j := range pg.JPTs {
			if !prob.IsNeighborEdgeSet(pg.G, j.Edges) {
				t.Fatalf("graph %d JPT %d is not a neighbor edge set", gi, ji)
			}
		}
	}
}

func TestGeneratePPIDeterministic(t *testing.T) {
	a, err := GeneratePPI(PPIOptions{NumGraphs: 6, Seed: 42, Correlated: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePPI(PPIOptions{NumGraphs: 6, Seed: 42, Correlated: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Graphs {
		if a.Graphs[i].G.String() != b.Graphs[i].G.String() {
			t.Fatalf("graph %d differs across identical seeds", i)
		}
		if len(a.Graphs[i].JPTs) != len(b.Graphs[i].JPTs) {
			t.Fatal("JPT structure differs")
		}
	}
}

func TestCorrelatedModelNormalized(t *testing.T) {
	db, err := GeneratePPI(PPIOptions{NumGraphs: 4, MinVertices: 5, MaxVertices: 6, Correlated: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for gi, pg := range db.Graphs {
		eng, err := prob.NewEngine(pg)
		if err != nil {
			t.Fatal(err)
		}
		// Edge-disjoint normalized JPTs ⇒ Z = 1 exactly.
		if math.Abs(eng.Z()-1) > 1e-9 {
			t.Fatalf("graph %d: Z = %v, want 1", gi, eng.Z())
		}
	}
}

func TestGroupNeighborEdgesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnected(rng, "x", 12, 20, 3)
	groups := GroupNeighborEdges(g, 3)
	seen := make(map[graph.EdgeID]bool)
	for _, grp := range groups {
		if len(grp) == 0 || len(grp) > 3 {
			t.Fatalf("group size %d outside (0,3]", len(grp))
		}
		if !prob.IsNeighborEdgeSet(g, grp) {
			t.Fatalf("group %v is not a neighbor edge set", grp)
		}
		for _, e := range grp {
			if seen[e] {
				t.Fatalf("edge %d in two groups", e)
			}
			seen[e] = true
		}
	}
	if len(seen) != g.NumEdges() {
		t.Fatalf("partition covers %d of %d edges", len(seen), g.NumEdges())
	}
}

func TestMaxRuleJPT(t *testing.T) {
	probs := []float64{0.9, 0.2}
	j := MaxRuleJPT([]graph.EdgeID{0, 1}, probs)
	// Raw weights: 00: max(0.1,0.8)=0.8; 10: max(0.9,0.8)=0.9;
	// 01: max(0.1,0.2)=0.2; 11: max(0.9,0.2)=0.9. Sum=2.8.
	want := []float64{0.8 / 2.8, 0.9 / 2.8, 0.2 / 2.8, 0.9 / 2.8}
	for i, w := range want {
		if math.Abs(j.P[i]-w) > 1e-12 {
			t.Fatalf("row %d: got %v want %v", i, j.P[i], w)
		}
	}
}

func TestExtractQueryConnectedAndSized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db, err := GeneratePPI(PPIOptions{NumGraphs: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	g := db.Graphs[0].G
	for _, want := range []int{1, 3, 5, 8} {
		q := ExtractQuery(g, want, rng)
		if q.NumEdges() != want {
			t.Fatalf("query has %d edges, want %d", q.NumEdges(), want)
		}
		if !q.IsConnected() {
			t.Fatalf("query with %d edges is disconnected", want)
		}
		if !iso.Exists(q, g, nil) {
			t.Fatalf("extracted query does not embed in its source")
		}
	}
}

func TestExtractQueryDegenerate(t *testing.T) {
	empty := graph.NewBuilder("e").Build()
	rng := rand.New(rand.NewSource(1))
	q := ExtractQuery(empty, 3, rng)
	if q.NumEdges() != 0 {
		t.Fatal("query from empty graph must be empty")
	}
}

func TestPaperFigure1Fixture(t *testing.T) {
	g001, g002, q, err := PaperFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if g001.G.NumEdges() != 3 || g002.G.NumEdges() != 5 || q.NumEdges() != 5 {
		t.Fatal("figure 1 shapes wrong")
	}
	eng1, err := prob.NewEngine(g001)
	if err != nil {
		t.Fatal(err)
	}
	// Graph 001's printed JPT: Pr(e1,e2,e3 all present) = 0.2.
	all := graph.FullEdgeSet(3)
	p, err := eng1.ProbAllPresent(all)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.2) > 1e-12 {
		t.Fatalf("Pr(001 complete) = %v, want 0.2", p)
	}

	// Graph 002: shared edge e3 between the two JPTs — engine normalizes.
	eng2, err := prob.NewEngine(g002)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	if err := prob.EnumerateWorlds(eng2, func(w graph.EdgeSet, pw float64) bool {
		sum += pw
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("002 world mass = %v, want 1", sum)
	}

	// Example 1 structure: q relaxed by one edge matches worlds of 002.
	u := relax.Relaxed(q, 1, 0)
	if len(u) == 0 {
		t.Fatal("no relaxed queries")
	}
	found := false
	for _, rq := range u {
		if iso.Exists(rq, g002.G, nil) {
			found = true
		}
	}
	if !found {
		t.Fatal("no relaxed query embeds in 002's certain graph")
	}
}

func TestRoadGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pg, err := GenerateRoadGrid(4, 5, 0.5, 0.6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pg.G.NumVertices() != 20 {
		t.Fatalf("grid vertices = %d, want 20", pg.G.NumVertices())
	}
	// 4×5 grid: 4·(5−1) + 5·(4−1) = 31 edges.
	if pg.G.NumEdges() != 31 {
		t.Fatalf("grid edges = %d, want 31", pg.G.NumEdges())
	}
	eng, err := prob.NewEngine(pg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eng.Z()-1) > 1e-9 {
		t.Fatalf("grid Z = %v, want 1", eng.Z())
	}
}

func TestCodecRoundTrip(t *testing.T) {
	db, err := GeneratePPI(PPIOptions{NumGraphs: 5, MinVertices: 5, MaxVertices: 7, Correlated: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Graphs) != len(db.Graphs) {
		t.Fatalf("round trip lost graphs: %d vs %d", len(back.Graphs), len(db.Graphs))
	}
	for i := range db.Graphs {
		a, b := db.Graphs[i], back.Graphs[i]
		if a.G.String() != b.G.String() {
			t.Fatalf("graph %d structure differs", i)
		}
		if back.Organism[i] != db.Organism[i] {
			t.Fatalf("graph %d organism differs", i)
		}
		if len(a.JPTs) != len(b.JPTs) {
			t.Fatalf("graph %d JPT count differs", i)
		}
		for j := range a.JPTs {
			for k := range a.JPTs[j].P {
				if math.Abs(a.JPTs[j].P[k]-b.JPTs[j].P[k]) > 1e-12 {
					t.Fatalf("graph %d JPT %d row %d differs", i, j, k)
				}
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"v 0 a\n",
		"pgraph x\nv 0 a\n",               // unterminated
		"pgraph x\nv 0 a\njpt 1 0\nend\n", // jpt without p
		"pgraph x\np 0.5 0.5\nend\n",      // p without jpt
		"pgraph x\nv 0 a\nv 1 a\ne 0 1 -\njpt 1 0\np 0.5\nend\n", // wrong row count
		"bogus\n",
	}
	for i, in := range cases {
		if _, err := Load(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMeanEdgeProb(t *testing.T) {
	db, err := GeneratePPI(PPIOptions{NumGraphs: 6, MinVertices: 6, MaxVertices: 8, Correlated: false, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	m, err := MeanEdgeProb(db)
	if err != nil {
		t.Fatal(err)
	}
	// IND model: marginals equal the sampled probabilities, whose mean
	// should be near the configured 0.383.
	if m < 0.25 || m > 0.55 {
		t.Fatalf("mean edge probability %v far from configured 0.383", m)
	}
}

func TestIndependentVsCorrelatedSameStructure(t *testing.T) {
	// With the same seed, COR and IND share graph structure (only the JPTs
	// differ) — required for the Figure 14 comparison.
	cor, err := GeneratePPI(PPIOptions{NumGraphs: 4, Seed: 21, Correlated: true})
	if err != nil {
		t.Fatal(err)
	}
	ind, err := GeneratePPI(PPIOptions{NumGraphs: 4, Seed: 21, Correlated: false})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cor.Graphs {
		if cor.Graphs[i].G.String() != ind.Graphs[i].G.String() {
			t.Fatalf("graph %d differs between COR and IND", i)
		}
	}
}
