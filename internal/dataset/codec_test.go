package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"probgraph/internal/graph"
	"probgraph/internal/prob"
)

// buildLabeled assembles a one-JPT pgraph over the given vertex labels with
// an edge (with edge label elabel) between each consecutive pair.
func buildLabeled(t *testing.T, name string, vlabels []string, elabel string) *prob.PGraph {
	t.Helper()
	b := graph.NewBuilder(name)
	for _, l := range vlabels {
		b.AddVertex(graph.Label(l))
	}
	for i := 1; i < len(vlabels); i++ {
		b.MustAddEdge(graph.VertexID(i-1), graph.VertexID(i), graph.Label(elabel))
	}
	g := b.Build()
	probs := map[graph.EdgeID]float64{}
	for e := 0; e < g.NumEdges(); e++ {
		probs[graph.EdgeID(e)] = 0.25 + 0.5*float64(e)/float64(g.NumEdges()+1)
	}
	pg, err := prob.NewIndependent(g, probs)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

// TestRoundTripHostileLabels exercises encTok/decTok: labels and names with
// spaces, '#', '%', a literal '-', tabs, and multi-byte unicode must
// round-trip byte-for-byte through Save/Load.
func TestRoundTripHostileLabels(t *testing.T) {
	hostile := [][2][]string{
		// {vertex labels...}, {name, edge label}
		{{"alpha beta", "x  y"}, {"name with spaces", "edge label"}},
		{{"#comment", "a#b"}, {"#lead", "#"}},
		{{"100%", "%2D", "%"}, {"50% off", "%%"}},
		{{"-", "--", "a-b"}, {"-", "-"}},
		{{"héllo", "世界", "γ≤δ"}, {"próba-gráf", "→"}},
		{{"tab\there", "mix #% -"}, {"\ttabs\t", "sp ace"}},
	}
	db := &DB{}
	for i, h := range hostile {
		db.Graphs = append(db.Graphs, buildLabeled(t, h[1][0], h[0], h[1][1]))
		db.Organism = append(db.Organism, i%3)
	}

	var buf bytes.Buffer
	if err := Save(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v\nfile:\n%s", err, buf.String())
	}
	if len(got.Graphs) != len(db.Graphs) {
		t.Fatalf("got %d graphs, want %d", len(got.Graphs), len(db.Graphs))
	}
	for gi, pg := range db.Graphs {
		rg := got.Graphs[gi]
		if rg.G.Name() != pg.G.Name() {
			t.Errorf("graph %d: name %q != %q", gi, rg.G.Name(), pg.G.Name())
		}
		if got.Organism[gi] != db.Organism[gi] {
			t.Errorf("graph %d: organism %d != %d", gi, got.Organism[gi], db.Organism[gi])
		}
		if rg.G.NumVertices() != pg.G.NumVertices() || rg.G.NumEdges() != pg.G.NumEdges() {
			t.Fatalf("graph %d: shape mismatch", gi)
		}
		for v := 0; v < pg.G.NumVertices(); v++ {
			if rg.G.VertexLabel(graph.VertexID(v)) != pg.G.VertexLabel(graph.VertexID(v)) {
				t.Errorf("graph %d vertex %d: label %q != %q",
					gi, v, rg.G.VertexLabel(graph.VertexID(v)), pg.G.VertexLabel(graph.VertexID(v)))
			}
		}
		for ei, e := range pg.G.Edges() {
			re := rg.G.Edges()[ei]
			if re.U != e.U || re.V != e.V || re.Label != e.Label {
				t.Errorf("graph %d edge %d: %v != %v", gi, ei, re, e)
			}
		}
		if len(rg.JPTs) != len(pg.JPTs) {
			t.Fatalf("graph %d: %d JPTs != %d", gi, len(rg.JPTs), len(pg.JPTs))
		}
		for ji, j := range pg.JPTs {
			rj := rg.JPTs[ji]
			for k, p := range j.P {
				if rj.P[k] != p {
					t.Errorf("graph %d jpt %d row %d: %v != %v (not bitwise)", gi, ji, k, rj.P[k], p)
				}
			}
		}
	}
	// The serialized file must not contain a raw token that Fields would
	// split: every v/e line has a fixed field count.
	for ln, line := range strings.Split(buf.String(), "\n") {
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "v":
			if len(f) != 3 {
				t.Errorf("line %d: vertex line split into %d fields: %q", ln+1, len(f), line)
			}
		case "e":
			if len(f) != 4 {
				t.Errorf("line %d: edge line split into %d fields: %q", ln+1, len(f), line)
			}
		}
	}
}

// TestEncDecTok checks the token escaping directly, including the
// empty-vs-dash distinction.
func TestEncDecTok(t *testing.T) {
	cases := []string{"", "-", "%2D", "a b", "#", "%", "% ", "héllo 世界", "plain", "C0"}
	for _, s := range cases {
		enc := encTok(s)
		if strings.ContainsAny(enc, " \t\r\n") {
			t.Errorf("encTok(%q) = %q contains whitespace", s, enc)
		}
		if strings.HasPrefix(enc, "#") {
			t.Errorf("encTok(%q) = %q starts a comment", s, enc)
		}
		if got := decTok(enc); got != s {
			t.Errorf("decTok(encTok(%q)) = %q", s, got)
		}
	}
	// Legacy compatibility: plain tokens decode to themselves and "-" to "".
	if decTok("-") != "" || decTok("C0") != "C0" {
		t.Error("legacy token decoding broken")
	}
}

// TestGeneratedRoundTripExact checks that a generated database round-trips
// with bitwise-identical probabilities (the %g shortest-representation
// guarantee).
func TestGeneratedRoundTripExact(t *testing.T) {
	db, err := GeneratePPI(PPIOptions{NumGraphs: 6, MinVertices: 5, MaxVertices: 7, Seed: 42, Correlated: true})
	if err != nil {
		t.Fatal(err)
	}
	// Make probabilities adversarial: full-precision random float64s.
	rng := rand.New(rand.NewSource(7))
	for _, pg := range db.Graphs {
		for ji := range pg.JPTs {
			for k := range pg.JPTs[ji].P {
				pg.JPTs[ji].P[k] = rng.Float64()
			}
			pg.JPTs[ji].Normalize()
		}
	}
	var buf bytes.Buffer
	if err := Save(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for gi, pg := range db.Graphs {
		for ji, j := range pg.JPTs {
			for k, p := range j.P {
				if got.Graphs[gi].JPTs[ji].P[k] != p {
					t.Fatalf("graph %d jpt %d row %d: %v != %v", gi, ji, k, got.Graphs[gi].JPTs[ji].P[k], p)
				}
			}
		}
	}
}
