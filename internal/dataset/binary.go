package dataset

import (
	"fmt"

	"probgraph/internal/graph"
	"probgraph/internal/prob"
	"probgraph/internal/snapbin"
)

// Binary pgraph records mirror the text blocks of codec.go for pgsnap v4:
// the certain graph, the organism tag, and the JPT factors with their
// probabilities stored as raw IEEE-754 bits — bitwise-exact round trips by
// construction, where the text codec needs %g shortest-form printing to
// achieve the same.

// EncodePGraphBinary appends one probabilistic graph to a snapshot section.
func EncodePGraphBinary(s *snapbin.Section, pg *prob.PGraph, organism int) {
	graph.EncodeBinary(s, pg.G)
	s.U32(uint32(int32(organism)))
	s.U32(uint32(len(pg.JPTs)))
	for _, j := range pg.JPTs {
		s.U32(uint32(len(j.Edges)))
		for _, e := range j.Edges {
			s.U32(uint32(e))
		}
		for _, p := range j.P {
			s.F64(p)
		}
	}
}

// DecodePGraphBinary reads one binary pgraph record and assembles it via
// prob.New, which applies the same validation as the text decoder. The
// JPT probability tables are copied out of the section (they are small,
// and prob.JPT.Normalize mutates in place — tables must never alias a
// read-only mapping).
func DecodePGraphBinary(c *snapbin.Cursor) (*prob.PGraph, int, error) {
	g, err := graph.DecodeBinary(c)
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: binary pgraph: %w", err)
	}
	organism := int(int32(c.U32()))
	nj := c.Int()
	var jpts []prob.JPT
	for i := 0; i < nj; i++ {
		k := c.Int()
		if c.Err() != nil {
			return nil, 0, c.Err()
		}
		if k <= 0 || k > prob.MaxJPTEdges {
			return nil, 0, fmt.Errorf("dataset: binary pgraph: JPT %d arity %d out of range [1,%d]", i, k, prob.MaxJPTEdges)
		}
		j := prob.JPT{Edges: make([]graph.EdgeID, k), P: make([]float64, 1<<k)}
		for e := range j.Edges {
			j.Edges[e] = graph.EdgeID(c.Int())
		}
		for p := range j.P {
			j.P[p] = c.F64()
		}
		if c.Err() != nil {
			return nil, 0, c.Err()
		}
		jpts = append(jpts, j)
	}
	if c.Err() != nil {
		return nil, 0, c.Err()
	}
	pg, err := prob.New(g, jpts)
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: binary pgraph: %w", err)
	}
	return pg, organism, nil
}
