// Package dataset generates and (de)serializes probabilistic graph
// databases.
//
// The paper evaluates on PPI networks from STRING/BioGRID: 5K probabilistic
// graphs averaging 385 vertices and 612 edges, average edge probability
// 0.383, with vertex labels from COG functional annotations, and JPTs built
// by the rule Pr(x_ne) = max_i Pr(x_i) normalized per neighbor-edge set
// (paper §6). That data is license-gated, so this package synthesizes the
// closest equivalent: labeled sparse graphs with the same statistics knobs,
// organized into "organism" families (the ground truth for the Figure 14
// quality experiment), with exactly the paper's JPT construction. The IND
// variant keeps per-edge probabilities but drops correlations, mirroring
// the paper's COR-vs-IND comparison.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"probgraph/internal/graph"
	"probgraph/internal/prob"
)

// PPIOptions shapes the synthetic PPI-like database.
type PPIOptions struct {
	NumGraphs   int     // default 60
	MinVertices int     // default 10
	MaxVertices int     // default 18
	EdgeFactor  float64 // edges ≈ EdgeFactor × vertices; default 1.5
	Labels      int     // COG-like vertex alphabet size; default 8
	MeanProb    float64 // mean edge existence probability; default 0.383
	MaxGroup    int     // neighbor-edge-set size cap; default 3
	Organisms   int     // number of families; default 6
	Mutations   float64 // fraction of edges rewired per graph; default 0.25
	Correlated  bool    // true = COR (max-rule JPTs), false = IND
	// CorrelationBoost > 0 multiplies each JPT's all-present and all-absent
	// rows by (1 + boost) before normalization, strengthening positive
	// co-existence correlation (PPI interactions predicted from shared
	// elementary links co-occur, per the paper's refs [9, 28]). 0 keeps the
	// pure max-rule construction of the paper's §6.
	CorrelationBoost float64
	Seed             int64
}

func (o PPIOptions) withDefaults() PPIOptions {
	if o.NumGraphs == 0 {
		o.NumGraphs = 60
	}
	if o.MinVertices == 0 {
		o.MinVertices = 10
	}
	if o.MaxVertices == 0 {
		o.MaxVertices = 18
	}
	if o.EdgeFactor == 0 {
		o.EdgeFactor = 1.5
	}
	if o.Labels == 0 {
		o.Labels = 8
	}
	if o.MeanProb == 0 {
		o.MeanProb = 0.383
	}
	if o.MaxGroup == 0 {
		o.MaxGroup = 3
	}
	if o.Organisms == 0 {
		o.Organisms = 6
	}
	if o.Mutations == 0 {
		o.Mutations = 0.25
	}
	return o
}

// DB is a generated database with organism ground truth.
type DB struct {
	Graphs   []*prob.PGraph
	Organism []int          // family of each graph
	Seeds    []*graph.Graph // family seed graphs
}

// GeneratePPI builds the synthetic PPI-like database.
func GeneratePPI(opt PPIOptions) (*DB, error) {
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))
	db := &DB{}
	for o := 0; o < opt.Organisms; o++ {
		nv := opt.MinVertices + rng.Intn(opt.MaxVertices-opt.MinVertices+1)
		db.Seeds = append(db.Seeds, randomConnected(rng, fmt.Sprintf("seed-%d", o), nv, int(opt.EdgeFactor*float64(nv)), opt.Labels))
	}
	for i := 0; i < opt.NumGraphs; i++ {
		fam := i % opt.Organisms
		g := mutate(rng, db.Seeds[fam], opt.Mutations, opt.Labels)
		g = g.Rename(fmt.Sprintf("g%04d-f%d", i, fam))
		pg, err := probabilize(g, opt, rng)
		if err != nil {
			return nil, fmt.Errorf("dataset: graph %d: %w", i, err)
		}
		db.Graphs = append(db.Graphs, pg)
		db.Organism = append(db.Organism, fam)
	}
	return db, nil
}

// randomConnected builds a connected labeled graph: a random spanning tree
// plus extra random edges up to ne.
func randomConnected(rng *rand.Rand, name string, nv, ne int, labels int) *graph.Graph {
	b := graph.NewBuilder(name)
	for i := 0; i < nv; i++ {
		b.AddVertex(cogLabel(rng.Intn(labels)))
	}
	perm := rng.Perm(nv)
	for i := 1; i < nv; i++ {
		u := graph.VertexID(perm[i])
		v := graph.VertexID(perm[rng.Intn(i)])
		b.MustAddEdge(u, v, "")
	}
	for tries, added := 0, nv-1; added < ne && tries < 30*ne; tries++ {
		u := graph.VertexID(rng.Intn(nv))
		v := graph.VertexID(rng.Intn(nv))
		if u == v {
			continue
		}
		if _, err := b.AddEdge(u, v, ""); err == nil {
			added++
		}
	}
	return b.Build()
}

// cogLabel renders COG-style functional category labels (C0, C1, …).
func cogLabel(i int) graph.Label {
	return graph.Label(fmt.Sprintf("C%d", i))
}

// mutate perturbs a seed graph: rewires a fraction of edges and relabels a
// few vertices, keeping the graph connected when possible.
func mutate(rng *rand.Rand, seed *graph.Graph, rate float64, labels int) *graph.Graph {
	nv := seed.NumVertices()
	b := graph.NewBuilder(seed.Name() + "-mut")
	for v := 0; v < nv; v++ {
		l := seed.VertexLabel(graph.VertexID(v))
		if rng.Float64() < rate/4 {
			l = cogLabel(rng.Intn(labels))
		}
		b.AddVertex(l)
	}
	for _, e := range seed.Edges() {
		if rng.Float64() < rate {
			// Rewire: random new endpoint pair.
			for tries := 0; tries < 10; tries++ {
				u := graph.VertexID(rng.Intn(nv))
				v := graph.VertexID(rng.Intn(nv))
				if u == v {
					continue
				}
				if _, err := b.AddEdge(u, v, e.Label); err == nil {
					break
				}
			}
			continue
		}
		// Keep (ignore rare duplicate clashes with rewired edges).
		b.AddEdge(e.U, e.V, e.Label) //nolint:errcheck
	}
	return b.Build()
}

// Probabilize attaches edge probabilities and JPTs to a deterministic
// graph. Edge probabilities are Beta-shaped around meanProb. Correlated
// mode partitions edges into neighbor-edge sets (size ≤ maxGroup, each a
// star at a common vertex) and applies the paper's max-rule joint; the
// independent mode gives each edge its own table.
func Probabilize(g *graph.Graph, meanProb float64, maxGroup int, correlated bool, rng *rand.Rand) (*prob.PGraph, error) {
	return probabilize(g, PPIOptions{MeanProb: meanProb, MaxGroup: maxGroup, Correlated: correlated}.withDefaults(), rng)
}

func probabilize(g *graph.Graph, opt PPIOptions, rng *rand.Rand) (*prob.PGraph, error) {
	probs := make([]float64, g.NumEdges())
	for e := range probs {
		probs[e] = betaish(rng, opt.MeanProb)
	}
	if !opt.Correlated {
		m := make(map[graph.EdgeID]float64, len(probs))
		for e, p := range probs {
			m[graph.EdgeID(e)] = p
		}
		return prob.NewIndependent(g, m)
	}
	groups := GroupNeighborEdges(g, opt.MaxGroup)
	jpts := make([]prob.JPT, 0, len(groups))
	for _, grp := range groups {
		j := MaxRuleJPT(grp, probs)
		if opt.CorrelationBoost > 0 {
			j.P[0] *= 1 + opt.CorrelationBoost
			j.P[len(j.P)-1] *= 1 + opt.CorrelationBoost
			j.Normalize()
		}
		jpts = append(jpts, j)
	}
	return prob.New(g, jpts)
}

// GroupNeighborEdges partitions the edge set into neighbor-edge sets: for
// each vertex in order, its still-unassigned incident edges are grouped in
// chunks of at most maxGroup (each chunk shares the vertex, satisfying
// Definition 1). Every edge lands in exactly one group, so the factor
// product is automatically normalized (Z = 1).
func GroupNeighborEdges(g *graph.Graph, maxGroup int) [][]graph.EdgeID {
	assigned := make([]bool, g.NumEdges())
	var groups [][]graph.EdgeID
	for v := 0; v < g.NumVertices(); v++ {
		var cur []graph.EdgeID
		for _, h := range g.Neighbors(graph.VertexID(v)) {
			if assigned[h.Edge] {
				continue
			}
			assigned[h.Edge] = true
			cur = append(cur, h.Edge)
			if len(cur) == maxGroup {
				groups = append(groups, cur)
				cur = nil
			}
		}
		if len(cur) > 0 {
			groups = append(groups, cur)
		}
	}
	return groups
}

// MaxRuleJPT builds the paper's experimental joint for one neighbor-edge
// set: weight(x_ne) = max_i Pr(x_i) where Pr(x_i) is p_e when edge e is
// assigned 1 and 1−p_e when assigned 0, normalized over the 2^k rows.
func MaxRuleJPT(edges []graph.EdgeID, probs []float64) prob.JPT {
	k := len(edges)
	tab := make([]float64, 1<<k)
	for m := 0; m < 1<<k; m++ {
		best := 0.0
		for i, e := range edges {
			p := probs[e]
			if m&(1<<i) == 0 {
				p = 1 - p
			}
			if p > best {
				best = p
			}
		}
		tab[m] = best
	}
	j := prob.JPT{Edges: append([]graph.EdgeID(nil), edges...), P: tab}
	j.Normalize()
	return j
}

// betaish samples a probability with the given mean using a two-point
// mixture of Beta-like humps (cheap stand-in for STRING's score shape).
func betaish(rng *rand.Rand, mean float64) float64 {
	// Triangular-ish: mean + noise, clamped away from {0,1}.
	p := mean + 0.35*(rng.Float64()+rng.Float64()-1)
	if p < 0.05 {
		p = 0.05
	}
	if p > 0.95 {
		p = 0.95
	}
	return p
}

// ExtractQuery carves a connected query of the requested edge count out of
// a certain graph by growing a random edge-BFS frontier (the paper extracts
// query sets q50…q250 the same way, scaled down here).
func ExtractQuery(g *graph.Graph, edges int, rng *rand.Rand) *graph.Graph {
	if g.NumEdges() == 0 || edges <= 0 {
		return graph.NewBuilder("q-empty").Build()
	}
	if edges > g.NumEdges() {
		edges = g.NumEdges()
	}
	// Start from a random edge; grow by edges adjacent to visited vertices.
	start := graph.EdgeID(rng.Intn(g.NumEdges()))
	chosen := map[graph.EdgeID]bool{start: true}
	visited := map[graph.VertexID]bool{g.Edge(start).U: true, g.Edge(start).V: true}
	for len(chosen) < edges {
		// Walk visited vertices in sorted order: ranging over the map
		// would let Go's randomized iteration order reorder the frontier
		// and derail the rng draws, making extraction nondeterministic
		// across processes even for a fixed seed.
		vs := make([]graph.VertexID, 0, len(visited))
		for v := range visited {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		var frontier []graph.EdgeID
		for _, v := range vs {
			for _, h := range g.Neighbors(v) {
				if !chosen[h.Edge] {
					frontier = append(frontier, h.Edge)
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		e := frontier[rng.Intn(len(frontier))]
		chosen[e] = true
		visited[g.Edge(e).U] = true
		visited[g.Edge(e).V] = true
	}
	ids := make([]graph.EdgeID, 0, len(chosen))
	for e := range chosen {
		ids = append(ids, e)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	q := g.EdgeSubgraph(ids).DropIsolated()
	return q.Rename(fmt.Sprintf("q%d", q.NumEdges()))
}

// PaperFigure1 reconstructs the running example: probabilistic graphs 001
// and 002 and the query q. Graph 002 carries two JPTs sharing edge e3
// exactly as in the figure (rows not printed in the paper are filled
// uniformly and normalized).
func PaperFigure1() (g001, g002 *prob.PGraph, q *graph.Graph, err error) {
	// Graph 001: triangle a-b-d with one 3-edge JPT (all rows printed).
	b1 := graph.NewBuilder("001")
	a := b1.AddVertex("a")
	bb := b1.AddVertex("b")
	d := b1.AddVertex("d")
	e1 := b1.MustAddEdge(a, bb, "")
	e2 := b1.MustAddEdge(bb, d, "")
	e3 := b1.MustAddEdge(a, d, "")
	tab1 := make([]float64, 8)
	set := func(tab []float64, bits [3]int, p float64) {
		tab[bits[0]|bits[1]<<1|bits[2]<<2] = p
	}
	set(tab1, [3]int{1, 1, 1}, 0.2)
	set(tab1, [3]int{1, 1, 0}, 0.2)
	set(tab1, [3]int{1, 0, 1}, 0.1)
	set(tab1, [3]int{1, 0, 0}, 0.1)
	set(tab1, [3]int{0, 1, 1}, 0.1)
	set(tab1, [3]int{0, 1, 0}, 0.1)
	set(tab1, [3]int{0, 0, 1}, 0.1)
	set(tab1, [3]int{0, 0, 0}, 0.1)
	g001, err = prob.New(b1.Build(), []prob.JPT{{Edges: []graph.EdgeID{e1, e2, e3}, P: tab1}})
	if err != nil {
		return nil, nil, nil, err
	}

	// Graph 002: 5 edges over labels (a,a,b,b,c). The JPT scopes force the
	// topology: {e1,e2,e3} must be neighbor edges (common vertex a2) and
	// {e3,e4,e5} likewise (common vertex b2). JPT1 carries the printed rows
	// Pr(1,1,1)=0.3, Pr(0,1,1)=0.3 (rest uniform over the remaining mass);
	// JPT2 carries Pr(1,1,0)=0.25, Pr(1,1,1)=0.15 (rest uniform).
	b2 := graph.NewBuilder("002")
	a1 := b2.AddVertex("a")
	a2 := b2.AddVertex("a")
	v1 := b2.AddVertex("b")
	v2 := b2.AddVertex("b")
	c := b2.AddVertex("c")
	f1 := b2.MustAddEdge(a1, a2, "") // e1: a1-a2
	f2 := b2.MustAddEdge(a2, v1, "") // e2: a2-b1
	f3 := b2.MustAddEdge(a2, v2, "") // e3: a2-b2
	f4 := b2.MustAddEdge(v1, v2, "") // e4: b1-b2
	f5 := b2.MustAddEdge(v2, c, "")  // e5: b2-c
	tab2 := make([]float64, 8)
	rest1 := (1.0 - 0.3 - 0.3) / 6
	for m := range tab2 {
		tab2[m] = rest1
	}
	set(tab2, [3]int{1, 1, 1}, 0.3)
	set(tab2, [3]int{0, 1, 1}, 0.3)
	tab3 := make([]float64, 8)
	rest2 := (1.0 - 0.25 - 0.15) / 6
	for m := range tab3 {
		tab3[m] = rest2
	}
	set(tab3, [3]int{1, 1, 0}, 0.25)
	set(tab3, [3]int{1, 1, 1}, 0.15)
	g002, err = prob.New(b2.Build(), []prob.JPT{
		{Edges: []graph.EdgeID{f1, f2, f3}, P: tab2},
		{Edges: []graph.EdgeID{f3, f4, f5}, P: tab3},
	})
	if err != nil {
		return nil, nil, nil, err
	}

	// Query q: the same shape as 002's certain graph (Example 1 relaxes it
	// by one edge to match the worlds of 002).
	qb := graph.NewBuilder("q")
	qa1 := qb.AddVertex("a")
	qa2 := qb.AddVertex("a")
	qb1 := qb.AddVertex("b")
	qb2 := qb.AddVertex("b")
	qc := qb.AddVertex("c")
	qb.MustAddEdge(qa1, qa2, "")
	qb.MustAddEdge(qa2, qb1, "")
	qb.MustAddEdge(qa2, qb2, "")
	qb.MustAddEdge(qb1, qb2, "")
	qb.MustAddEdge(qb2, qc, "")
	return g001, g002, qb.Build(), nil
}

// GenerateRoadGrid builds a road-network-flavored probabilistic graph: an
// n×m grid whose vertices are labeled by zone and whose neighbor-edge JPTs
// encode "congestion spreads to adjacent segments" — within a group, the
// all-present and all-absent rows get boosted mass (positively correlated
// traffic), matching the paper's road-network motivation [16].
func GenerateRoadGrid(n, m int, meanProb, boost float64, rng *rand.Rand) (*prob.PGraph, error) {
	b := graph.NewBuilder(fmt.Sprintf("grid-%dx%d", n, m))
	id := func(i, j int) graph.VertexID { return graph.VertexID(i*m + j) }
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			zone := "suburb"
			if i > 0 && i < n-1 && j > 0 && j < m-1 {
				zone = "center" // interior vertices form the city center
			}
			b.AddVertex(graph.Label(zone))
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if i+1 < n {
				b.MustAddEdge(id(i, j), id(i+1, j), "road")
			}
			if j+1 < m {
				b.MustAddEdge(id(i, j), id(i, j+1), "road")
			}
		}
	}
	g := b.Build()
	probs := make([]float64, g.NumEdges())
	for e := range probs {
		probs[e] = betaish(rng, meanProb)
	}
	groups := GroupNeighborEdges(g, 3)
	jpts := make([]prob.JPT, 0, len(groups))
	for _, grp := range groups {
		j := MaxRuleJPT(grp, probs)
		// Congestion correlation: boost the all-or-nothing rows.
		j.P[0] *= 1 + boost
		j.P[len(j.P)-1] *= 1 + boost
		j.Normalize()
		jpts = append(jpts, j)
	}
	return prob.New(g, jpts)
}

// IndependentCounterpart returns a database over the same certain graphs
// whose edges exist independently with the correlated model's *marginal*
// probabilities. This is the clean IND baseline for the paper's Figure 14
// comparison: identical marginals, correlations dropped — any quality gap
// is attributable to correlation alone.
func IndependentCounterpart(db *DB) (*DB, error) {
	out := &DB{Organism: append([]int(nil), db.Organism...), Seeds: db.Seeds}
	for gi, pg := range db.Graphs {
		eng, err := prob.NewEngine(pg)
		if err != nil {
			return nil, fmt.Errorf("dataset: graph %d: %w", gi, err)
		}
		m := make(map[graph.EdgeID]float64, pg.NumUncertain())
		for _, e := range pg.UncertainEdges() {
			p, err := eng.MarginalPresent(e)
			if err != nil {
				return nil, fmt.Errorf("dataset: graph %d edge %d: %w", gi, e, err)
			}
			m[e] = p
		}
		ind, err := prob.NewIndependent(pg.G, m)
		if err != nil {
			return nil, fmt.Errorf("dataset: graph %d: %w", gi, err)
		}
		out.Graphs = append(out.Graphs, ind)
	}
	return out, nil
}

// Mean returns the average of xs (0 for empty input); a shared helper for
// the stats-reporting CLIs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanEdgeProb reports the average marginal edge probability of a database
// (diagnostic matching the paper's "each edge has an average value of 0.383
// existence probability").
func MeanEdgeProb(db *DB) (float64, error) {
	var vals []float64
	for _, pg := range db.Graphs {
		eng, err := prob.NewEngine(pg)
		if err != nil {
			return 0, err
		}
		for _, e := range pg.UncertainEdges() {
			p, err := eng.MarginalPresent(e)
			if err != nil {
				return 0, err
			}
			vals = append(vals, p)
		}
	}
	if len(vals) == 0 {
		return 0, nil
	}
	return Mean(vals), nil
}
