package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"probgraph/internal/graph"
	"probgraph/internal/prob"
)

// The database file format is line-oriented:
//
//	pgraph <name> [organism]
//	v <id> <label>
//	e <u> <v> <label>
//	jpt <k> <edge1> … <edgek>
//	p <2^k probabilities>
//	end
//
// Labels use "-" for the empty label. Blank lines and '#' comments are
// ignored.

// Save writes the database to w.
func Save(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	for gi, pg := range db.Graphs {
		org := 0
		if gi < len(db.Organism) {
			org = db.Organism[gi]
		}
		if _, err := fmt.Fprintf(bw, "pgraph %s %d\n", encTok(pg.G.Name()), org); err != nil {
			return err
		}
		for v := 0; v < pg.G.NumVertices(); v++ {
			fmt.Fprintf(bw, "v %d %s\n", v, encTok(string(pg.G.VertexLabel(graph.VertexID(v)))))
		}
		for _, e := range pg.G.Edges() {
			fmt.Fprintf(bw, "e %d %d %s\n", e.U, e.V, encTok(string(e.Label)))
		}
		for _, j := range pg.JPTs {
			fmt.Fprintf(bw, "jpt %d", len(j.Edges))
			for _, e := range j.Edges {
				fmt.Fprintf(bw, " %d", e)
			}
			fmt.Fprintln(bw)
			fmt.Fprint(bw, "p")
			for _, p := range j.P {
				fmt.Fprintf(bw, " %g", p)
			}
			fmt.Fprintln(bw)
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

func encTok(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func decTok(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// Load reads a database written by Save.
func Load(r io.Reader) (*DB, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	db := &DB{}
	var (
		b       *graph.Builder
		jpts    []prob.JPT
		pending *prob.JPT
		org     int
		line    int
	)
	flush := func() error {
		if b == nil {
			return nil
		}
		if pending != nil {
			return fmt.Errorf("dataset: line %d: jpt without probability row", line)
		}
		g := b.Build()
		pg, err := prob.New(g, jpts)
		if err != nil {
			return fmt.Errorf("dataset: line %d: %w", line, err)
		}
		db.Graphs = append(db.Graphs, pg)
		db.Organism = append(db.Organism, org)
		b, jpts, pending = nil, nil, nil
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		switch f[0] {
		case "pgraph":
			if b != nil {
				return nil, fmt.Errorf("dataset: line %d: nested pgraph", line)
			}
			if len(f) < 2 {
				return nil, fmt.Errorf("dataset: line %d: want 'pgraph <name> [organism]'", line)
			}
			b = graph.NewBuilder(decTok(f[1]))
			org = 0
			if len(f) >= 3 {
				v, err := strconv.Atoi(f[2])
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: bad organism %q", line, f[2])
				}
				org = v
			}
		case "v":
			if b == nil || len(f) != 3 {
				return nil, fmt.Errorf("dataset: line %d: bad vertex line", line)
			}
			b.AddVertex(graph.Label(decTok(f[2])))
		case "e":
			if b == nil || len(f) != 4 {
				return nil, fmt.Errorf("dataset: line %d: bad edge line", line)
			}
			u, err1 := strconv.Atoi(f[1])
			v, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dataset: line %d: bad endpoints", line)
			}
			if _, err := b.AddEdge(graph.VertexID(u), graph.VertexID(v), graph.Label(decTok(f[3]))); err != nil {
				return nil, fmt.Errorf("dataset: line %d: %v", line, err)
			}
		case "jpt":
			if b == nil || len(f) < 3 {
				return nil, fmt.Errorf("dataset: line %d: bad jpt line", line)
			}
			if pending != nil {
				return nil, fmt.Errorf("dataset: line %d: jpt before previous probability row", line)
			}
			k, err := strconv.Atoi(f[1])
			if err != nil || len(f) != 2+k {
				return nil, fmt.Errorf("dataset: line %d: jpt arity mismatch", line)
			}
			j := prob.JPT{}
			for _, tok := range f[2:] {
				e, err := strconv.Atoi(tok)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: bad edge id %q", line, tok)
				}
				j.Edges = append(j.Edges, graph.EdgeID(e))
			}
			pending = &j
		case "p":
			if pending == nil {
				return nil, fmt.Errorf("dataset: line %d: probability row without jpt", line)
			}
			want := 1 << len(pending.Edges)
			if len(f)-1 != want {
				return nil, fmt.Errorf("dataset: line %d: want %d probabilities, got %d", line, want, len(f)-1)
			}
			for _, tok := range f[1:] {
				v, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: bad probability %q", line, tok)
				}
				pending.P = append(pending.P, v)
			}
			jpts = append(jpts, *pending)
			pending = nil
		case "end":
			if b == nil {
				return nil, fmt.Errorf("dataset: line %d: stray end", line)
			}
			if err := flush(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown directive %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b != nil {
		return nil, fmt.Errorf("dataset: unterminated pgraph block at EOF")
	}
	return db, nil
}
