package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"probgraph/internal/graph"
	"probgraph/internal/prob"
)

// The database file format is line-oriented:
//
//	pgraph <name> [organism]
//	v <id> <label>
//	e <u> <v> <label>
//	jpt <k> <edge1> … <edgek>
//	p <2^k probabilities>
//	end
//
// Names and labels go through graph.EncodeToken: "-" stands for the empty
// string and whitespace/'#'/'%' are percent-escaped, so labels containing
// spaces, comment markers, or any unicode round-trip intact. Blank lines
// and '#' comments are ignored. Probabilities are printed with %g, which
// emits the shortest representation that parses back to the identical
// float64 — round-trips are bitwise-exact.

// Save writes the database to w.
func Save(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	for gi, pg := range db.Graphs {
		org := 0
		if gi < len(db.Organism) {
			org = db.Organism[gi]
		}
		if err := EncodePGraph(bw, pg, org); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodePGraph writes one pgraph block (certain graph + JPT factors) in the
// database file format. The snapshot codec interleaves these blocks with
// its own sections.
func EncodePGraph(w io.Writer, pg *prob.PGraph, organism int) error {
	if _, err := fmt.Fprintf(w, "pgraph %s %d\n", encTok(pg.G.Name()), organism); err != nil {
		return err
	}
	for v := 0; v < pg.G.NumVertices(); v++ {
		if _, err := fmt.Fprintf(w, "v %d %s\n", v, encTok(string(pg.G.VertexLabel(graph.VertexID(v))))); err != nil {
			return err
		}
	}
	for _, e := range pg.G.Edges() {
		if _, err := fmt.Fprintf(w, "e %d %d %s\n", e.U, e.V, encTok(string(e.Label))); err != nil {
			return err
		}
	}
	for _, j := range pg.JPTs {
		if _, err := fmt.Fprintf(w, "jpt %d", len(j.Edges)); err != nil {
			return err
		}
		for _, e := range j.Edges {
			fmt.Fprintf(w, " %d", e)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, "p")
		for _, p := range j.P {
			fmt.Fprintf(w, " %g", p)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "end")
	return err
}

func encTok(s string) string { return graph.EncodeToken(s) }

func decTok(s string) string { return graph.DecodeToken(s) }

// PGraphDecoder reads a stream of pgraph blocks. It can share a scanner
// with other line-oriented readers (the snapshot codec does), consuming
// exactly the lines of the blocks it decodes.
type PGraphDecoder struct {
	sc   *bufio.Scanner
	line int
}

// NewPGraphDecoder returns a decoder reading from r.
func NewPGraphDecoder(r io.Reader) *PGraphDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	return &PGraphDecoder{sc: sc}
}

// NewPGraphDecoderFromScanner returns a decoder sharing sc with the caller.
func NewPGraphDecoderFromScanner(sc *bufio.Scanner) *PGraphDecoder {
	return &PGraphDecoder{sc: sc}
}

// Decode reads the next pgraph block, returning the graph and its organism
// tag. It returns io.EOF when the stream is exhausted.
func (d *PGraphDecoder) Decode() (*prob.PGraph, int, error) {
	var (
		b       *graph.Builder
		jpts    []prob.JPT
		pending *prob.JPT
		org     int
	)
	for d.sc.Scan() {
		d.line++
		text := strings.TrimSpace(d.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		switch f[0] {
		case "pgraph":
			if b != nil {
				return nil, 0, fmt.Errorf("dataset: line %d: nested pgraph", d.line)
			}
			if len(f) < 2 {
				return nil, 0, fmt.Errorf("dataset: line %d: want 'pgraph <name> [organism]'", d.line)
			}
			b = graph.NewBuilder(decTok(f[1]))
			org = 0
			if len(f) >= 3 {
				v, err := strconv.Atoi(f[2])
				if err != nil {
					return nil, 0, fmt.Errorf("dataset: line %d: bad organism %q", d.line, f[2])
				}
				org = v
			}
		case "v":
			if b == nil || len(f) != 3 {
				return nil, 0, fmt.Errorf("dataset: line %d: bad vertex line", d.line)
			}
			b.AddVertex(graph.Label(decTok(f[2])))
		case "e":
			if b == nil || len(f) != 4 {
				return nil, 0, fmt.Errorf("dataset: line %d: bad edge line", d.line)
			}
			u, err1 := strconv.Atoi(f[1])
			v, err2 := strconv.Atoi(f[2])
			if err1 != nil || err2 != nil {
				return nil, 0, fmt.Errorf("dataset: line %d: bad endpoints", d.line)
			}
			if _, err := b.AddEdge(graph.VertexID(u), graph.VertexID(v), graph.Label(decTok(f[3]))); err != nil {
				return nil, 0, fmt.Errorf("dataset: line %d: %v", d.line, err)
			}
		case "jpt":
			if b == nil || len(f) < 3 {
				return nil, 0, fmt.Errorf("dataset: line %d: bad jpt line", d.line)
			}
			if pending != nil {
				return nil, 0, fmt.Errorf("dataset: line %d: jpt before previous probability row", d.line)
			}
			k, err := strconv.Atoi(f[1])
			if err != nil || len(f) != 2+k {
				return nil, 0, fmt.Errorf("dataset: line %d: jpt arity mismatch", d.line)
			}
			j := prob.JPT{}
			for _, tok := range f[2:] {
				e, err := strconv.Atoi(tok)
				if err != nil {
					return nil, 0, fmt.Errorf("dataset: line %d: bad edge id %q", d.line, tok)
				}
				j.Edges = append(j.Edges, graph.EdgeID(e))
			}
			pending = &j
		case "p":
			if pending == nil {
				return nil, 0, fmt.Errorf("dataset: line %d: probability row without jpt", d.line)
			}
			want := 1 << len(pending.Edges)
			if len(f)-1 != want {
				return nil, 0, fmt.Errorf("dataset: line %d: want %d probabilities, got %d", d.line, want, len(f)-1)
			}
			for _, tok := range f[1:] {
				v, err := strconv.ParseFloat(tok, 64)
				if err != nil {
					return nil, 0, fmt.Errorf("dataset: line %d: bad probability %q", d.line, tok)
				}
				pending.P = append(pending.P, v)
			}
			jpts = append(jpts, *pending)
			pending = nil
		case "end":
			if b == nil {
				return nil, 0, fmt.Errorf("dataset: line %d: stray end", d.line)
			}
			if pending != nil {
				return nil, 0, fmt.Errorf("dataset: line %d: jpt without probability row", d.line)
			}
			pg, err := prob.New(b.Build(), jpts)
			if err != nil {
				return nil, 0, fmt.Errorf("dataset: line %d: %w", d.line, err)
			}
			return pg, org, nil
		default:
			return nil, 0, fmt.Errorf("dataset: line %d: unknown directive %q", d.line, f[0])
		}
	}
	if err := d.sc.Err(); err != nil {
		return nil, 0, err
	}
	if b != nil {
		return nil, 0, fmt.Errorf("dataset: unterminated pgraph block at EOF")
	}
	return nil, 0, io.EOF
}

// Load reads a database written by Save.
func Load(r io.Reader) (*DB, error) {
	d := NewPGraphDecoder(r)
	db := &DB{}
	for {
		pg, org, err := d.Decode()
		if err == io.EOF {
			return db, nil
		}
		if err != nil {
			return nil, err
		}
		db.Graphs = append(db.Graphs, pg)
		db.Organism = append(db.Organism, org)
	}
}
