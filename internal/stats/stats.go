// Package stats renders aligned text tables and series for the experiment
// drivers (cmd/pgbench) and examples, mirroring the way the paper reports
// per-figure series.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v (floats compactly).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the rendered data rows (cells as strings, in AddRow order)
// for machine-readable export; callers must not mutate the result.
func (t *Table) Rows() [][]string { return t.rows }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// PrecisionRecall computes the paper's Figure 9b/14 quality metrics between
// a returned set and a truth set (both as index slices).
func PrecisionRecall(returned, truth []int) (precision, recall float64) {
	inTruth := make(map[int]bool, len(truth))
	for _, x := range truth {
		inTruth[x] = true
	}
	hit := 0
	for _, x := range returned {
		if inTruth[x] {
			hit++
		}
	}
	if len(returned) > 0 {
		precision = float64(hit) / float64(len(returned))
	} else {
		precision = 1 // empty answer has no false positives
	}
	if len(truth) > 0 {
		recall = float64(hit) / float64(len(truth))
	} else {
		recall = 1
	}
	return precision, recall
}
