package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "x", "long-header", "y")
	tb.AddRow(1, 2.34567, "hello")
	tb.AddRow(10, 0.5, "w")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "long-header") {
		t.Fatal("missing header")
	}
	if !strings.Contains(out, "2.346") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("v")
	var buf bytes.Buffer
	tb.Render(&buf)
	if strings.Contains(buf.String(), "==") {
		t.Fatal("unexpected title banner")
	}
}

func TestPrecisionRecall(t *testing.T) {
	cases := []struct {
		returned, truth []int
		p, r            float64
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 1, 1},
		{[]int{1, 2, 3, 4}, []int{1, 2}, 0.5, 1},
		{[]int{1}, []int{1, 2, 3, 4}, 1, 0.25},
		{nil, []int{1}, 1, 0},
		{[]int{1}, nil, 0, 1},
		{nil, nil, 1, 1},
	}
	for i, c := range cases {
		p, r := PrecisionRecall(c.returned, c.truth)
		if p != c.p || r != c.r {
			t.Errorf("case %d: got (%v,%v), want (%v,%v)", i, p, r, c.p, c.r)
		}
	}
}
