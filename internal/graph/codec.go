package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Encode writes g in the line-oriented text format shared by the dataset
// files and the PMI index:
//
//	g <name>
//	v <id> <label>
//	e <u> <v> <label>
//	end
//
// Names and labels are written through EncodeToken, so arbitrary strings —
// spaces, '#', '%', unicode — round-trip intact.
func Encode(w io.Writer, g *Graph) error {
	if _, err := fmt.Fprintf(w, "g %s\n", EncodeToken(g.Name())); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		if _, err := fmt.Fprintf(w, "v %d %s\n", v, EncodeToken(string(g.VertexLabel(VertexID(v))))); err != nil {
			return err
		}
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(w, "e %d %d %s\n", e.U, e.V, EncodeToken(string(e.Label))); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "end")
	return err
}

// tokenUnsafe are the bytes that would break the line-oriented formats:
// whitespace splits tokens, '#' starts a comment, '%' is the escape
// introducer itself.
const tokenUnsafe = " \t\r\n#%"

// EncodeToken renders an arbitrary string as a single whitespace-free token
// of the line-oriented codecs. The empty string becomes "-", a literal "-"
// is escaped to stay distinguishable, and unsafe bytes are %XX
// percent-encoded. Multi-byte UTF-8 sequences contain no unsafe bytes and
// pass through verbatim.
func EncodeToken(s string) string {
	if s == "" {
		return "-"
	}
	if s == "-" {
		return "%2D"
	}
	if !strings.ContainsAny(s, tokenUnsafe) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if strings.IndexByte(tokenUnsafe, c) >= 0 {
			fmt.Fprintf(&b, "%%%02X", c)
		} else {
			b.WriteByte(c)
		}
	}
	return b.String()
}

// DecodeToken inverts EncodeToken. Percent sequences that are not two hex
// digits are kept verbatim, so most pre-escaping files load unchanged.
// Caveat: a legacy label that happens to contain a literal "%" followed by
// two hex digits (e.g. "50%AB") is indistinguishable from an escape and is
// re-interpreted on load; such labels never occur in generated datasets,
// and re-saving any legacy file through the current codec normalizes it.
func DecodeToken(s string) string {
	if s == "-" {
		return ""
	}
	if !strings.Contains(s, "%") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			hi, okH := unhex(s[i+1])
			lo, okL := unhex(s[i+2])
			if okH && okL {
				b.WriteByte(hi<<4 | lo)
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func decLabel(s string) Label {
	return Label(DecodeToken(s))
}

// ScanNonEmpty reads the next non-blank, non-comment line from sc,
// trimmed. It is the shared line-reading convention of every codec that
// composes into the snapshot format (dataset, simsearch, pmi, core); a
// change to comment or blank handling belongs here so the sections cannot
// drift apart. errPrefix names the calling codec in the EOF error.
func ScanNonEmpty(sc *bufio.Scanner, errPrefix string) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			return line, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("%s: unexpected EOF", errPrefix)
}

// Decoder reads a stream of graphs in the Encode format.
type Decoder struct {
	sc   *bufio.Scanner
	line int
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Decoder{sc: sc}
}

// NewDecoderFromScanner returns a Decoder sharing an existing scanner, so a
// caller can interleave graph blocks with its own line-oriented records
// (the PMI index file does this).
func NewDecoderFromScanner(sc *bufio.Scanner) *Decoder {
	return &Decoder{sc: sc}
}

// Decode reads the next graph. It returns io.EOF when the stream is
// exhausted.
func (d *Decoder) Decode() (*Graph, error) {
	var b *Builder
	for d.sc.Scan() {
		d.line++
		line := strings.TrimSpace(d.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "g":
			if b != nil {
				return nil, fmt.Errorf("graph codec line %d: nested graph header", d.line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph codec line %d: want 'g <name>'", d.line)
			}
			b = NewBuilder(DecodeToken(fields[1]))
		case "v":
			if b == nil {
				return nil, fmt.Errorf("graph codec line %d: vertex outside graph block", d.line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph codec line %d: want 'v <id> <label>'", d.line)
			}
			var id int
			if _, err := fmt.Sscanf(fields[1], "%d", &id); err != nil {
				return nil, fmt.Errorf("graph codec line %d: bad vertex id %q", d.line, fields[1])
			}
			if id != len(b.vlabel) {
				return nil, fmt.Errorf("graph codec line %d: vertex ids must be dense and ordered, got %d want %d", d.line, id, len(b.vlabel))
			}
			b.AddVertex(decLabel(fields[2]))
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph codec line %d: edge outside graph block", d.line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph codec line %d: want 'e <u> <v> <label>'", d.line)
			}
			var u, v int
			if _, err := fmt.Sscanf(fields[1], "%d", &u); err != nil {
				return nil, fmt.Errorf("graph codec line %d: bad endpoint %q", d.line, fields[1])
			}
			if _, err := fmt.Sscanf(fields[2], "%d", &v); err != nil {
				return nil, fmt.Errorf("graph codec line %d: bad endpoint %q", d.line, fields[2])
			}
			if _, err := b.AddEdge(VertexID(u), VertexID(v), decLabel(fields[3])); err != nil {
				return nil, fmt.Errorf("graph codec line %d: %v", d.line, err)
			}
		case "end":
			if b == nil {
				return nil, fmt.Errorf("graph codec line %d: 'end' outside graph block", d.line)
			}
			return b.Build(), nil
		default:
			return nil, fmt.Errorf("graph codec line %d: unknown directive %q", d.line, fields[0])
		}
	}
	if err := d.sc.Err(); err != nil {
		return nil, err
	}
	if b != nil {
		return nil, fmt.Errorf("graph codec: unterminated graph block at EOF")
	}
	return nil, io.EOF
}
