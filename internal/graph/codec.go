package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Encode writes g in the line-oriented text format shared by the dataset
// files and the PMI index:
//
//	g <name>
//	v <id> <label>
//	e <u> <v> <label>
//	end
//
// Labels are written verbatim and must not contain whitespace or newlines.
func Encode(w io.Writer, g *Graph) error {
	if _, err := fmt.Fprintf(w, "g %s\n", encName(g.Name())); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		if _, err := fmt.Fprintf(w, "v %d %s\n", v, encLabel(g.VertexLabel(VertexID(v)))); err != nil {
			return err
		}
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(w, "e %d %d %s\n", e.U, e.V, encLabel(e.Label)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "end")
	return err
}

func encName(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func encLabel(l Label) string {
	if l == "" {
		return "-"
	}
	return string(l)
}

func decLabel(s string) Label {
	if s == "-" {
		return ""
	}
	return Label(s)
}

// Decoder reads a stream of graphs in the Encode format.
type Decoder struct {
	sc   *bufio.Scanner
	line int
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Decoder{sc: sc}
}

// NewDecoderFromScanner returns a Decoder sharing an existing scanner, so a
// caller can interleave graph blocks with its own line-oriented records
// (the PMI index file does this).
func NewDecoderFromScanner(sc *bufio.Scanner) *Decoder {
	return &Decoder{sc: sc}
}

// Decode reads the next graph. It returns io.EOF when the stream is
// exhausted.
func (d *Decoder) Decode() (*Graph, error) {
	var b *Builder
	for d.sc.Scan() {
		d.line++
		line := strings.TrimSpace(d.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "g":
			if b != nil {
				return nil, fmt.Errorf("graph codec line %d: nested graph header", d.line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph codec line %d: want 'g <name>'", d.line)
			}
			name := fields[1]
			if name == "-" {
				name = ""
			}
			b = NewBuilder(name)
		case "v":
			if b == nil {
				return nil, fmt.Errorf("graph codec line %d: vertex outside graph block", d.line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph codec line %d: want 'v <id> <label>'", d.line)
			}
			var id int
			if _, err := fmt.Sscanf(fields[1], "%d", &id); err != nil {
				return nil, fmt.Errorf("graph codec line %d: bad vertex id %q", d.line, fields[1])
			}
			if id != len(b.vlabel) {
				return nil, fmt.Errorf("graph codec line %d: vertex ids must be dense and ordered, got %d want %d", d.line, id, len(b.vlabel))
			}
			b.AddVertex(decLabel(fields[2]))
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph codec line %d: edge outside graph block", d.line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph codec line %d: want 'e <u> <v> <label>'", d.line)
			}
			var u, v int
			if _, err := fmt.Sscanf(fields[1], "%d", &u); err != nil {
				return nil, fmt.Errorf("graph codec line %d: bad endpoint %q", d.line, fields[1])
			}
			if _, err := fmt.Sscanf(fields[2], "%d", &v); err != nil {
				return nil, fmt.Errorf("graph codec line %d: bad endpoint %q", d.line, fields[2])
			}
			if _, err := b.AddEdge(VertexID(u), VertexID(v), decLabel(fields[3])); err != nil {
				return nil, fmt.Errorf("graph codec line %d: %v", d.line, err)
			}
		case "end":
			if b == nil {
				return nil, fmt.Errorf("graph codec line %d: 'end' outside graph block", d.line)
			}
			return b.Build(), nil
		default:
			return nil, fmt.Errorf("graph codec line %d: unknown directive %q", d.line, fields[0])
		}
	}
	if err := d.sc.Err(); err != nil {
		return nil, err
	}
	if b != nil {
		return nil, fmt.Errorf("graph codec: unterminated graph block at EOF")
	}
	return nil, io.EOF
}
