package graph

import (
	"bytes"
	"io"
	"testing"
)

// TestEncodeDecodeHostileTokens round-trips graphs whose names and labels
// contain spaces, comment markers, escapes, and unicode through the
// line-oriented codec.
func TestEncodeDecodeHostileTokens(t *testing.T) {
	mk := func(name string, vlabels []string, elabel Label) *Graph {
		b := NewBuilder(name)
		for _, l := range vlabels {
			b.AddVertex(Label(l))
		}
		for i := 1; i < len(vlabels); i++ {
			b.MustAddEdge(VertexID(i-1), VertexID(i), elabel)
		}
		return b.Build()
	}
	graphs := []*Graph{
		mk("q one", []string{"a b", "c#d"}, "e f"),
		mk("", []string{"-", "%", "100%"}, "-"),
		mk("#x", []string{"héllo", "世界"}, "→"),
		mk("plain", []string{"A", "B"}, ""),
	}
	var buf bytes.Buffer
	for _, g := range graphs {
		if err := Encode(&buf, g); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(bytes.NewReader(buf.Bytes()))
	for i, want := range graphs {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("graph %d: %v\nstream:\n%s", i, err, buf.String())
		}
		if got.Name() != want.Name() {
			t.Errorf("graph %d: name %q != %q", i, got.Name(), want.Name())
		}
		if CanonicalCode(got) != CanonicalCode(want) {
			t.Errorf("graph %d: canonical code changed across round-trip", i)
		}
		for v := 0; v < want.NumVertices(); v++ {
			if got.VertexLabel(VertexID(v)) != want.VertexLabel(VertexID(v)) {
				t.Errorf("graph %d vertex %d: %q != %q", i, v,
					got.VertexLabel(VertexID(v)), want.VertexLabel(VertexID(v)))
			}
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Fatalf("want EOF after last graph, got %v", err)
	}
}

func TestTokenEscaping(t *testing.T) {
	cases := map[string]string{
		"":      "-",
		"-":     "%2D",
		"a b":   "a%20b",
		"#":     "%23",
		"%":     "%25",
		"plain": "plain",
	}
	for in, want := range cases {
		if got := EncodeToken(in); got != want {
			t.Errorf("EncodeToken(%q) = %q, want %q", in, got, want)
		}
		if back := DecodeToken(EncodeToken(in)); back != in {
			t.Errorf("DecodeToken(EncodeToken(%q)) = %q", in, back)
		}
	}
	// Unicode passes through unescaped.
	if EncodeToken("héllo") != "héllo" {
		t.Errorf("unicode should pass through, got %q", EncodeToken("héllo"))
	}
	// Malformed escapes decode verbatim (legacy files).
	if DecodeToken("%zz") != "%zz" || DecodeToken("50%") != "50%" {
		t.Error("malformed escapes must decode verbatim")
	}
}
