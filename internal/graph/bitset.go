package graph

import "math/bits"

// EdgeSet is a fixed-capacity bitset over EdgeIDs. It is the representation
// of possible worlds (which edges exist) and of embeddings (which edges a
// match uses) throughout the system.
type EdgeSet struct {
	words []uint64
	n     int
}

// NewEdgeSet returns an empty EdgeSet with capacity for edge IDs 0..n-1.
func NewEdgeSet(n int) EdgeSet {
	return EdgeSet{words: make([]uint64, (n+63)/64), n: n}
}

// FullEdgeSet returns an EdgeSet with all n bits set.
func FullEdgeSet(n int) EdgeSet {
	s := NewEdgeSet(n)
	for i := 0; i < n; i++ {
		s.Add(EdgeID(i))
	}
	return s
}

// Len returns the capacity (number of edge IDs addressable).
func (s EdgeSet) Len() int { return s.n }

// Add sets bit id.
func (s EdgeSet) Add(id EdgeID) { s.words[id>>6] |= 1 << (uint(id) & 63) }

// Remove clears bit id.
func (s EdgeSet) Remove(id EdgeID) { s.words[id>>6] &^= 1 << (uint(id) & 63) }

// Set writes bit id to present.
func (s EdgeSet) Set(id EdgeID, present bool) {
	if present {
		s.Add(id)
	} else {
		s.Remove(id)
	}
}

// Contains reports whether bit id is set.
func (s EdgeSet) Contains(id EdgeID) bool {
	return s.words[id>>6]&(1<<(uint(id)&63)) != 0
}

// Count returns the number of set bits.
func (s EdgeSet) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (s EdgeSet) Clone() EdgeSet {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return EdgeSet{words: w, n: s.n}
}

// CopyFrom overwrites s with the contents of o (same capacity required).
func (s EdgeSet) CopyFrom(o EdgeSet) { copy(s.words, o.words) }

// Clear resets every bit.
func (s EdgeSet) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ContainsAll reports whether every bit of o is set in s.
func (s EdgeSet) ContainsAll(o EdgeSet) bool {
	for i, w := range o.words {
		if w&^s.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share any set bit.
func (s EdgeSet) Intersects(o EdgeSet) bool {
	m := len(s.words)
	if len(o.words) < m {
		m = len(o.words)
	}
	for i := 0; i < m; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o have identical contents.
func (s EdgeSet) Equal(o EdgeSet) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// UnionWith sets s = s ∪ o.
func (s EdgeSet) UnionWith(o EdgeSet) {
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Slice returns the set bits in increasing order.
func (s EdgeSet) Slice() []EdgeID {
	out := make([]EdgeID, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, EdgeID(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// Key returns a string usable as a map key identifying the set contents.
func (s EdgeSet) Key() string {
	b := make([]byte, 0, len(s.words)*8)
	for _, w := range s.words {
		for i := 0; i < 8; i++ {
			b = append(b, byte(w>>(8*i)))
		}
	}
	return string(b)
}
