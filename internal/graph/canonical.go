package graph

import (
	"fmt"
	"sort"
	"strings"
)

// CanonicalCode returns a string that is identical for isomorphic graphs and
// distinct for non-isomorphic ones. It performs an exhaustive search over
// vertex orderings, pruned by iterative color refinement, so it is intended
// for the small graphs this system canonicalizes: mined features and relaxed
// queries (≲ 16 vertices). Isolated vertices participate like any others.
//
// The code is the lexicographically smallest row-major rendering of the
// labeled adjacency matrix together with the ordered vertex label sequence.
func CanonicalCode(g *Graph) string {
	n := g.NumVertices()
	if n == 0 {
		return "∅"
	}
	colors := refine(g)

	// Group vertices by refined color; orderings only permute within groups
	// that share a color, which prunes the factorial search dramatically.
	c := &canonSearch{g: g, colors: colors, perm: make([]VertexID, 0, n), used: make([]bool, n)}
	c.search()
	return c.best
}

// Isomorphic reports whether g1 and g2 are isomorphic, using signatures as a
// fast path and canonical codes for confirmation.
func Isomorphic(g1, g2 *Graph) bool {
	if g1.NumVertices() != g2.NumVertices() || g1.NumEdges() != g2.NumEdges() {
		return false
	}
	if g1.Signature() != g2.Signature() {
		return false
	}
	return CanonicalCode(g1) == CanonicalCode(g2)
}

// refine computes a stable vertex coloring via iterative refinement
// (1-dimensional Weisfeiler-Leman over labels, degrees, incident edge
// labels). Equal final colors are a necessary condition for two vertices to
// be exchangeable by an automorphism.
func refine(g *Graph) []string {
	n := g.NumVertices()
	colors := make([]string, n)
	for v := 0; v < n; v++ {
		colors[v] = fmt.Sprintf("%s/%d", g.VertexLabel(VertexID(v)), g.Degree(VertexID(v)))
	}
	next := make([]string, n)
	for round := 0; round < n; round++ {
		changed := false
		for v := 0; v < n; v++ {
			nb := make([]string, 0, g.Degree(VertexID(v)))
			for _, h := range g.Neighbors(VertexID(v)) {
				nb = append(nb, string(g.EdgeLabel(h.Edge))+"~"+colors[h.To])
			}
			sort.Strings(nb)
			next[v] = colors[v] + "(" + strings.Join(nb, ",") + ")"
		}
		// Compress to small ids to keep strings from growing unboundedly.
		// Ids are ranks of the sorted distinct color strings, which keeps
		// them isomorphism-invariant (a vertex-order-dependent numbering
		// would break permutation invariance of the final code).
		distinct := make([]string, 0, n)
		seen := make(map[string]bool, n)
		for v := 0; v < n; v++ {
			if !seen[next[v]] {
				seen[next[v]] = true
				distinct = append(distinct, next[v])
			}
		}
		sort.Strings(distinct)
		ids := make(map[string]int, len(distinct))
		for i, s := range distinct {
			ids[s] = i
		}
		for v := 0; v < n; v++ {
			nc := fmt.Sprintf("%s#%d", colors[v][:strings.IndexByte(colors[v]+"#", '#')], ids[next[v]])
			if nc != colors[v] {
				changed = true
			}
			colors[v] = nc
		}
		if !changed {
			break
		}
	}
	return colors
}

type canonSearch struct {
	g      *Graph
	colors []string
	perm   []VertexID
	used   []bool
	best   string
}

func (c *canonSearch) search() {
	n := c.g.NumVertices()
	if len(c.perm) == n {
		code := c.render()
		if c.best == "" || code < c.best {
			c.best = code
		}
		return
	}
	// Candidates for the next position: among unused vertices, only the ones
	// with the lexicographically smallest refined color need to be tried at
	// ties; vertices of different colors are not exchangeable, but we must
	// still explore color classes in all orders consistent with minimality.
	// We conservatively try every unused vertex whose color is minimal among
	// unused, plus — to stay exact even when refinement is too coarse — any
	// vertex sharing that minimal color.
	minColor := ""
	for v := 0; v < n; v++ {
		if c.used[v] {
			continue
		}
		if minColor == "" || c.colors[v] < minColor {
			minColor = c.colors[v]
		}
	}
	// Prefix pruning: if the partial rendering already exceeds best, stop.
	if c.best != "" {
		partial := c.render()
		if len(partial) <= len(c.best) && partial > c.best[:len(partial)] {
			return
		}
	}
	for v := 0; v < n; v++ {
		if c.used[v] || c.colors[v] != minColor {
			continue
		}
		c.used[v] = true
		c.perm = append(c.perm, VertexID(v))
		c.search()
		c.perm = c.perm[:len(c.perm)-1]
		c.used[v] = false
	}
}

// render produces the code of the current (possibly partial) permutation:
// the vertex labels in order, then for each vertex the labeled edges to
// earlier vertices.
func (c *canonSearch) render() string {
	var sb strings.Builder
	for i, v := range c.perm {
		sb.WriteString(string(c.g.VertexLabel(v)))
		sb.WriteByte(':')
		for j := 0; j < i; j++ {
			if id, ok := c.g.EdgeBetween(c.perm[j], v); ok {
				fmt.Fprintf(&sb, "%d[%s]", j, c.g.EdgeLabel(id))
			}
		}
		sb.WriteByte(';')
	}
	return sb.String()
}
