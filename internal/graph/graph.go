// Package graph provides labeled undirected graphs: the deterministic
// substrate underneath every component of the probabilistic subgraph
// similarity search system (queries, features, certain graphs gc, relaxed
// queries, possible worlds).
//
// Graphs are simple (no self loops, no parallel edges), vertex- and
// edge-labeled, and immutable once built. Vertices and edges are addressed
// by dense integer IDs so that higher layers can use bitsets and slices
// rather than maps in their inner loops.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// VertexID identifies a vertex within a single Graph. IDs are dense:
// 0..NumVertices()-1.
type VertexID int32

// EdgeID identifies an edge within a single Graph. IDs are dense:
// 0..NumEdges()-1.
type EdgeID int32

// Label is a vertex or edge label. The empty label is valid and acts as a
// wildcard-free ordinary label (it only matches itself).
type Label string

// Edge is an undirected labeled edge between U and V. Invariant: U < V.
type Edge struct {
	U, V  VertexID
	Label Label
}

// Other returns the endpoint of e opposite to v. It panics if v is not an
// endpoint of e.
func (e Edge) Other(v VertexID) VertexID {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
}

// HalfEdge is one direction of an undirected edge as seen from a vertex's
// adjacency list.
type HalfEdge struct {
	To   VertexID
	Edge EdgeID
}

// Graph is an immutable labeled undirected graph.
type Graph struct {
	name   string
	vlabel []Label
	edges  []Edge
	adj    [][]HalfEdge
}

// Builder incrementally assembles a Graph. The zero value is ready to use.
type Builder struct {
	name   string
	vlabel []Label
	edges  []Edge
	seen   map[[2]VertexID]bool
}

// NewBuilder returns a Builder for a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, seen: make(map[[2]VertexID]bool)}
}

// AddVertex appends a vertex with the given label and returns its ID.
func (b *Builder) AddVertex(l Label) VertexID {
	b.vlabel = append(b.vlabel, l)
	return VertexID(len(b.vlabel) - 1)
}

// AddVertices appends n vertices all carrying label l and returns the ID of
// the first one.
func (b *Builder) AddVertices(n int, l Label) VertexID {
	first := VertexID(len(b.vlabel))
	for i := 0; i < n; i++ {
		b.vlabel = append(b.vlabel, l)
	}
	return first
}

// AddEdge appends an undirected edge {u,v} with label l and returns its ID.
// It returns an error for self loops, out-of-range endpoints, or duplicate
// edges.
func (b *Builder) AddEdge(u, v VertexID, l Label) (EdgeID, error) {
	if u == v {
		return 0, fmt.Errorf("graph %q: self loop on vertex %d", b.name, u)
	}
	n := VertexID(len(b.vlabel))
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, fmt.Errorf("graph %q: edge {%d,%d} references missing vertex (have %d vertices)", b.name, u, v, n)
	}
	if u > v {
		u, v = v, u
	}
	key := [2]VertexID{u, v}
	if b.seen == nil {
		b.seen = make(map[[2]VertexID]bool)
	}
	if b.seen[key] {
		return 0, fmt.Errorf("graph %q: duplicate edge {%d,%d}", b.name, u, v)
	}
	b.seen[key] = true
	b.edges = append(b.edges, Edge{U: u, V: v, Label: l})
	return EdgeID(len(b.edges) - 1), nil
}

// MustAddEdge is AddEdge for static construction in tests and examples; it
// panics on error.
func (b *Builder) MustAddEdge(u, v VertexID, l Label) EdgeID {
	id, err := b.AddEdge(u, v, l)
	if err != nil {
		panic(err)
	}
	return id
}

// Build finalizes the graph. The Builder must not be reused afterwards.
func (b *Builder) Build() *Graph {
	g := &Graph{
		name:   b.name,
		vlabel: b.vlabel,
		edges:  b.edges,
		adj:    make([][]HalfEdge, len(b.vlabel)),
	}
	deg := make([]int, len(b.vlabel))
	for _, e := range b.edges {
		deg[e.U]++
		deg[e.V]++
	}
	for v := range g.adj {
		if deg[v] > 0 {
			g.adj[v] = make([]HalfEdge, 0, deg[v])
		}
	}
	for id, e := range b.edges {
		g.adj[e.U] = append(g.adj[e.U], HalfEdge{To: e.V, Edge: EdgeID(id)})
		g.adj[e.V] = append(g.adj[e.V], HalfEdge{To: e.U, Edge: EdgeID(id)})
	}
	return g
}

// Name returns the graph's name (may be empty).
func (g *Graph) Name() string { return g.name }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.vlabel) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// VertexLabel returns the label of vertex v.
func (g *Graph) VertexLabel(v VertexID) Label { return g.vlabel[v] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// EdgeLabel returns the label of the edge with the given ID.
func (g *Graph) EdgeLabel(id EdgeID) Label { return g.edges[id].Label }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v VertexID) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of v. The returned slice must not be
// modified.
func (g *Graph) Neighbors(v VertexID) []HalfEdge { return g.adj[v] }

// EdgeBetween returns the ID of the edge joining u and v, if any.
func (g *Graph) EdgeBetween(u, v VertexID) (EdgeID, bool) {
	// Scan the shorter adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, h := range g.adj[u] {
		if h.To == v {
			return h.Edge, true
		}
	}
	return 0, false
}

// HasEdgeBetween reports whether u and v are adjacent.
func (g *Graph) HasEdgeBetween(u, v VertexID) bool {
	_, ok := g.EdgeBetween(u, v)
	return ok
}

// Edges returns a copy of the edge slice, indexed by EdgeID.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// IncidentEdges returns the IDs of edges incident to v.
func (g *Graph) IncidentEdges(v VertexID) []EdgeID {
	out := make([]EdgeID, len(g.adj[v]))
	for i, h := range g.adj[v] {
		out[i] = h.Edge
	}
	return out
}

// Rename returns a shallow copy of g carrying a different name. The
// structural data is shared; Graphs are immutable so sharing is safe.
func (g *Graph) Rename(name string) *Graph {
	cp := *g
	cp.name = name
	return &cp
}

// DeleteEdges returns a new graph with the same vertex set and every edge of
// g except those whose IDs appear in drop. Edge IDs are renumbered densely
// in the original order.
func (g *Graph) DeleteEdges(drop []EdgeID) *Graph {
	dead := make([]bool, len(g.edges))
	for _, id := range drop {
		dead[id] = true
	}
	b := NewBuilder(g.name)
	b.vlabel = append([]Label(nil), g.vlabel...)
	for id, e := range g.edges {
		if !dead[id] {
			b.edges = append(b.edges, e)
		}
	}
	return b.Build()
}

// EdgeSubgraph returns the subgraph of g consisting of exactly the edges in
// keep plus every vertex of g (vertex set is preserved so VertexIDs remain
// stable). Edge IDs are renumbered densely in increasing original order.
func (g *Graph) EdgeSubgraph(keep []EdgeID) *Graph {
	sorted := append([]EdgeID(nil), keep...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	b := NewBuilder(g.name)
	b.vlabel = append([]Label(nil), g.vlabel...)
	var prev EdgeID = -1
	for _, id := range sorted {
		if id == prev {
			continue
		}
		prev = id
		b.edges = append(b.edges, g.edges[id])
	}
	return b.Build()
}

// DropIsolated returns a copy of g without isolated (degree-0) vertices.
// Vertex IDs are renumbered densely preserving order; edge order is kept.
func (g *Graph) DropIsolated() *Graph {
	remap := make([]VertexID, len(g.vlabel))
	b := NewBuilder(g.name)
	for v, l := range g.vlabel {
		if len(g.adj[v]) > 0 {
			remap[v] = b.AddVertex(l)
		} else {
			remap[v] = -1
		}
	}
	for _, e := range g.edges {
		b.edges = append(b.edges, Edge{U: remap[e.U], V: remap[e.V], Label: e.Label})
	}
	return b.Build()
}

// ConnectedComponents returns, for each vertex, its component index, and the
// number of components.
func (g *Graph) ConnectedComponents() (comp []int, n int) {
	comp = make([]int, len(g.vlabel))
	for i := range comp {
		comp[i] = -1
	}
	var stack []VertexID
	for v := range g.vlabel {
		if comp[v] >= 0 {
			continue
		}
		stack = append(stack[:0], VertexID(v))
		comp[v] = n
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.adj[u] {
				if comp[h.To] < 0 {
					comp[h.To] = n
					stack = append(stack, h.To)
				}
			}
		}
		n++
	}
	return comp, n
}

// IsConnected reports whether g is connected. The empty graph and the
// single-vertex graph are connected.
func (g *Graph) IsConnected() bool {
	_, n := g.ConnectedComponents()
	return n <= 1
}

// Signature is a cheap isomorphism-invariant fingerprint: two isomorphic
// graphs always have equal signatures. It is used for fast candidate
// rejection before running canonical coding or VF2.
func (g *Graph) Signature() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "v%d e%d;", len(g.vlabel), len(g.edges))
	vl := make([]string, len(g.vlabel))
	for i, l := range g.vlabel {
		vl[i] = fmt.Sprintf("%s/%d", l, len(g.adj[i]))
	}
	sort.Strings(vl)
	sb.WriteString(strings.Join(vl, ","))
	sb.WriteByte(';')
	el := make([]string, len(g.edges))
	for i, e := range g.edges {
		lu, lv := g.vlabel[e.U], g.vlabel[e.V]
		if lu > lv {
			lu, lv = lv, lu
		}
		el[i] = string(lu) + "|" + string(e.Label) + "|" + string(lv)
	}
	sort.Strings(el)
	sb.WriteString(strings.Join(el, ","))
	return sb.String()
}

// String renders a compact human-readable description.
func (g *Graph) String() string {
	var sb strings.Builder
	if g.name != "" {
		fmt.Fprintf(&sb, "%s: ", g.name)
	}
	fmt.Fprintf(&sb, "%d vertices, %d edges {", len(g.vlabel), len(g.edges))
	for i, e := range g.edges {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d(%s)-[%s]-%d(%s)", e.U, g.vlabel[e.U], e.Label, e.V, g.vlabel[e.V])
	}
	sb.WriteString("}")
	return sb.String()
}

// LabelCounts returns multiset counts of vertex and edge labels; used by
// filters and the feature miner.
func (g *Graph) LabelCounts() (verts map[Label]int, edges map[Label]int) {
	verts = make(map[Label]int)
	edges = make(map[Label]int)
	for _, l := range g.vlabel {
		verts[l]++
	}
	for _, e := range g.edges {
		edges[e.Label]++
	}
	return verts, edges
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	b := NewBuilder(g.name)
	b.vlabel = append([]Label(nil), g.vlabel...)
	b.edges = append([]Edge(nil), g.edges...)
	return b.Build()
}
