package graph

import (
	"strings"
	"testing"
)

// FuzzTokenRoundTrip pins the token escaping contract for arbitrary
// strings, including invalid UTF-8: the encoding is always a single
// non-empty token free of codec metacharacters, and decoding inverts it
// exactly. This is what lets graph names and labels carry any bytes
// through the line-oriented snapshot format.
func FuzzTokenRoundTrip(f *testing.F) {
	for _, s := range []string{
		"", "-", "a", "hello world", "%", "%%", "%zz", "50%", "50%AB",
		"a\nb", "tab\there", "ret\rurn", "#comment", "héllo", "%25",
		string([]byte{0xff, 0x00, 0x25}),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		enc := EncodeToken(s)
		if enc == "" {
			t.Fatalf("EncodeToken(%q) produced an empty token", s)
		}
		// The escape introducer '%' itself is fine in output; what must
		// never appear is anything the line scanners split or strip on.
		if strings.ContainsAny(enc, " \t\r\n#") {
			t.Fatalf("EncodeToken(%q) = %q contains codec metacharacters", s, enc)
		}
		if got := DecodeToken(enc); got != s {
			t.Fatalf("DecodeToken(EncodeToken(%q)) = %q", s, got)
		}
	})
}
