package graph

import (
	"fmt"

	"probgraph/internal/snapbin"
)

// Binary graph records are the pgsnap v4 counterpart of the text codec in
// codec.go: name, vertex labels, and edges as length-prefixed structured
// fields instead of escaped tokens. Decoding goes through the Builder, so
// the same structural validation (endpoint range, self loops, duplicate
// edges) applies to both codecs.

// EncodeBinary appends g's binary record to a snapshot section.
func EncodeBinary(s *snapbin.Section, g *Graph) {
	s.Str(g.name)
	s.U32(uint32(len(g.vlabel)))
	for _, l := range g.vlabel {
		s.Str(string(l))
	}
	s.U32(uint32(len(g.edges)))
	for _, e := range g.edges {
		s.U32(uint32(e.U))
		s.U32(uint32(e.V))
		s.Str(string(e.Label))
	}
}

// DecodeBinary reads one binary graph record. Corrupt input returns an
// error; allocation is bounded by the bytes actually present (each
// declared vertex or edge must be backed by data, so a lying count runs
// out of section before it runs out of memory).
func DecodeBinary(c *snapbin.Cursor) (*Graph, error) {
	name := c.Str()
	nv := c.Int()
	b := NewBuilder(name)
	for i := 0; i < nv; i++ {
		l := c.Str()
		if c.Err() != nil {
			return nil, c.Err()
		}
		b.AddVertex(Label(l))
	}
	ne := c.Int()
	for i := 0; i < ne; i++ {
		u := c.Int()
		v := c.Int()
		l := c.Str()
		if c.Err() != nil {
			return nil, c.Err()
		}
		if _, err := b.AddEdge(VertexID(u), VertexID(v), Label(l)); err != nil {
			return nil, fmt.Errorf("graph: binary record: %w", err)
		}
	}
	if c.Err() != nil {
		return nil, c.Err()
	}
	return b.Build(), nil
}
