package graph

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, b *Builder, u, v VertexID, l Label) EdgeID {
	t.Helper()
	id, err := b.AddEdge(u, v, l)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d,%q): %v", u, v, l, err)
	}
	return id
}

// triangle builds the paper's graph 001: a triangle with labels a,b,d.
func triangle(t *testing.T) *Graph {
	b := NewBuilder("001")
	va := b.AddVertex("a")
	vb := b.AddVertex("b")
	vd := b.AddVertex("d")
	mustEdge(t, b, va, vb, "")
	mustEdge(t, b, vb, vd, "")
	mustEdge(t, b, va, vd, "")
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := triangle(t)
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d vertices %d edges, want 3/3", g.NumVertices(), g.NumEdges())
	}
	if g.Name() != "001" {
		t.Fatalf("name = %q", g.Name())
	}
	for v := VertexID(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if !g.IsConnected() {
		t.Error("triangle should be connected")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder("x")
	v := b.AddVertex("a")
	if _, err := b.AddEdge(v, v, ""); err == nil {
		t.Fatal("expected self-loop error")
	}
}

func TestBuilderRejectsDuplicateEdge(t *testing.T) {
	b := NewBuilder("x")
	u := b.AddVertex("a")
	v := b.AddVertex("b")
	mustAdd := func() error { _, err := b.AddEdge(u, v, ""); return err }
	if err := mustAdd(); err != nil {
		t.Fatalf("first edge: %v", err)
	}
	if err := mustAdd(); err == nil {
		t.Fatal("expected duplicate-edge error")
	}
	// Reversed orientation is the same undirected edge.
	if _, err := b.AddEdge(v, u, ""); err == nil {
		t.Fatal("expected duplicate-edge error for reversed endpoints")
	}
}

func TestBuilderRejectsMissingVertex(t *testing.T) {
	b := NewBuilder("x")
	b.AddVertex("a")
	if _, err := b.AddEdge(0, 5, ""); err == nil {
		t.Fatal("expected missing-vertex error")
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 1, V: 4}
	if e.Other(1) != 4 || e.Other(4) != 1 {
		t.Fatal("Other endpoints wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-endpoint")
		}
	}()
	e.Other(2)
}

func TestEdgeBetween(t *testing.T) {
	g := triangle(t)
	if _, ok := g.EdgeBetween(0, 1); !ok {
		t.Error("edge {0,1} missing")
	}
	if _, ok := g.EdgeBetween(1, 0); !ok {
		t.Error("edge {1,0} (reversed) missing")
	}
	b := NewBuilder("p")
	x := b.AddVertex("a")
	y := b.AddVertex("b")
	b.AddVertex("c")
	mustEdge(t, b, x, y, "")
	p := b.Build()
	if _, ok := p.EdgeBetween(0, 2); ok {
		t.Error("nonexistent edge reported")
	}
}

func TestDeleteEdges(t *testing.T) {
	g := triangle(t)
	h := g.DeleteEdges([]EdgeID{0})
	if h.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", h.NumEdges())
	}
	if h.NumVertices() != 3 {
		t.Fatalf("vertex set must be preserved")
	}
	if g.NumEdges() != 3 {
		t.Fatal("original mutated")
	}
}

func TestEdgeSubgraphDedupAndOrder(t *testing.T) {
	g := triangle(t)
	h := g.EdgeSubgraph([]EdgeID{2, 0, 2})
	if h.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2 (dedup)", h.NumEdges())
	}
	if h.Edge(0) != g.Edge(0) || h.Edge(1) != g.Edge(2) {
		t.Fatal("edges not in increasing original order")
	}
}

func TestDropIsolated(t *testing.T) {
	b := NewBuilder("x")
	u := b.AddVertex("a")
	b.AddVertex("iso")
	w := b.AddVertex("b")
	mustEdge(t, b, u, w, "l")
	g := b.Build()
	h := g.DropIsolated()
	if h.NumVertices() != 2 || h.NumEdges() != 1 {
		t.Fatalf("got %d/%d, want 2 vertices 1 edge", h.NumVertices(), h.NumEdges())
	}
	if h.VertexLabel(0) != "a" || h.VertexLabel(1) != "b" {
		t.Fatal("labels scrambled by renumbering")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder("x")
	a := b.AddVertex("a")
	c := b.AddVertex("a")
	d := b.AddVertex("a")
	e := b.AddVertex("a")
	mustEdge(t, b, a, c, "")
	mustEdge(t, b, d, e, "")
	g := b.Build()
	comp, n := g.ConnectedComponents()
	if n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Fatalf("bad component assignment %v", comp)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestSignatureInvariance(t *testing.T) {
	// Same triangle built in a different vertex order must share a signature.
	b := NewBuilder("t2")
	vd := b.AddVertex("d")
	va := b.AddVertex("a")
	vb := b.AddVertex("b")
	mustEdge(t, b, vd, va, "")
	mustEdge(t, b, va, vb, "")
	mustEdge(t, b, vb, vd, "")
	g2 := b.Build()
	g1 := triangle(t)
	if g1.Signature() != g2.Signature() {
		t.Fatalf("signatures differ:\n%s\n%s", g1.Signature(), g2.Signature())
	}
}

// randomGraph builds a random labeled graph from a seed.
func randomGraph(rng *rand.Rand, nv, ne int, vlabels, elabels []Label) *Graph {
	b := NewBuilder("rnd")
	for i := 0; i < nv; i++ {
		b.AddVertex(vlabels[rng.Intn(len(vlabels))])
	}
	tries := 0
	for added := 0; added < ne && tries < 20*ne; tries++ {
		u := VertexID(rng.Intn(nv))
		v := VertexID(rng.Intn(nv))
		if u == v {
			continue
		}
		if _, err := b.AddEdge(u, v, elabels[rng.Intn(len(elabels))]); err == nil {
			added++
		}
	}
	return b.Build()
}

// permuteGraph returns an isomorphic copy of g under a random vertex
// permutation with shuffled edge insertion order.
func permuteGraph(rng *rand.Rand, g *Graph) *Graph {
	n := g.NumVertices()
	perm := rng.Perm(n)
	b := NewBuilder(g.Name() + "-perm")
	inv := make([]VertexID, n)
	for newID := 0; newID < n; newID++ {
		inv[perm[newID]] = VertexID(newID)
	}
	for newID := 0; newID < n; newID++ {
		b.AddVertex(g.VertexLabel(VertexID(perm[newID])))
	}
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		if _, err := b.AddEdge(inv[e.U], inv[e.V], e.Label); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func TestCanonicalCodePermutationInvariance(t *testing.T) {
	vlabels := []Label{"a", "b", "c"}
	elabels := []Label{"", "x"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(6), rng.Intn(10), vlabels, elabels)
		h := permuteGraph(rng, g)
		return CanonicalCode(g) == CanonicalCode(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalCodeDistinguishes(t *testing.T) {
	// Path a-b-c vs star is the classic refinement-needed case; also check
	// label-sensitivity.
	b1 := NewBuilder("p3")
	x := b1.AddVertex("a")
	y := b1.AddVertex("a")
	z := b1.AddVertex("a")
	w := b1.AddVertex("a")
	mustEdge(t, b1, x, y, "")
	mustEdge(t, b1, y, z, "")
	mustEdge(t, b1, z, w, "")
	path := b1.Build()

	b2 := NewBuilder("s3")
	c := b2.AddVertex("a")
	for i := 0; i < 3; i++ {
		leaf := b2.AddVertex("a")
		mustEdge(t, b2, c, leaf, "")
	}
	star := b2.Build()

	if CanonicalCode(path) == CanonicalCode(star) {
		t.Fatal("path and star share a canonical code")
	}

	t1 := triangle(t)
	b3 := NewBuilder("t3")
	va := b3.AddVertex("a")
	vb := b3.AddVertex("b")
	vc := b3.AddVertex("c") // different label than 'd'
	mustEdge(t, b3, va, vb, "")
	mustEdge(t, b3, vb, vc, "")
	mustEdge(t, b3, va, vc, "")
	t2 := b3.Build()
	if CanonicalCode(t1) == CanonicalCode(t2) {
		t.Fatal("differently labeled triangles share a canonical code")
	}
}

func TestIsomorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 6, 8, []Label{"a", "b"}, []Label{""})
	h := permuteGraph(rng, g)
	if !Isomorphic(g, h) {
		t.Fatal("permuted copy not isomorphic")
	}
	if g.NumEdges() > 0 {
		k := g.DeleteEdges([]EdgeID{0}) // same counts? no: one fewer edge
		if Isomorphic(g, k) {
			t.Fatal("graphs with different edge counts reported isomorphic")
		}
	}
}

func TestCanonicalCodeEmptyAndSingle(t *testing.T) {
	empty := NewBuilder("e").Build()
	if CanonicalCode(empty) == "" {
		t.Fatal("empty graph code must be nonempty")
	}
	b := NewBuilder("s")
	b.AddVertex("a")
	single := b.Build()
	b2 := NewBuilder("s2")
	b2.AddVertex("b")
	single2 := b2.Build()
	if CanonicalCode(single) == CanonicalCode(single2) {
		t.Fatal("single vertices with different labels share a code")
	}
}

func TestLabelCounts(t *testing.T) {
	g := triangle(t)
	vc, ec := g.LabelCounts()
	if vc["a"] != 1 || vc["b"] != 1 || vc["d"] != 1 {
		t.Fatalf("vertex counts %v", vc)
	}
	if ec[""] != 3 {
		t.Fatalf("edge counts %v", ec)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var buf bytes.Buffer
	var originals []*Graph
	for i := 0; i < 5; i++ {
		g := randomGraph(rng, 3+rng.Intn(5), rng.Intn(8), []Label{"a", "bb", "c"}, []Label{"", "x"})
		originals = append(originals, g)
		if err := Encode(&buf, g); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i := 0; ; i++ {
		g, err := dec.Decode()
		if err == io.EOF {
			if i != len(originals) {
				t.Fatalf("decoded %d graphs, want %d", i, len(originals))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		o := originals[i]
		if g.NumVertices() != o.NumVertices() || g.NumEdges() != o.NumEdges() {
			t.Fatalf("graph %d: size mismatch", i)
		}
		for v := 0; v < o.NumVertices(); v++ {
			if g.VertexLabel(VertexID(v)) != o.VertexLabel(VertexID(v)) {
				t.Fatalf("graph %d vertex %d label mismatch", i, v)
			}
		}
		for e := 0; e < o.NumEdges(); e++ {
			if g.Edge(EdgeID(e)) != o.Edge(EdgeID(e)) {
				t.Fatalf("graph %d edge %d mismatch", i, e)
			}
		}
	}
}

func TestCodecErrors(t *testing.T) {
	cases := []string{
		"v 0 a\n",                           // vertex outside block
		"g x\nv 1 a\n",                      // non-dense vertex id
		"g x\ne 0 1 l\n",                    // edge without vertices
		"g x\nv 0 a\n",                      // unterminated block
		"g x\ng y\n",                        // nested header
		"g x\nv 0 a\nfrob 1 2\n",            // unknown directive
		"g x\nv 0 a\nv 1 a\ne 0 0 l\nend\n", // self loop via codec
	}
	for i, in := range cases {
		dec := NewDecoder(bytes.NewReader([]byte(in)))
		if _, err := dec.Decode(); err == nil || err == io.EOF {
			t.Errorf("case %d: expected decode error, got %v", i, err)
		}
	}
}

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet(130)
	if s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if !s.Contains(0) || !s.Contains(64) || !s.Contains(129) || s.Contains(1) {
		t.Fatal("membership wrong")
	}
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 2 {
		t.Fatal("remove failed")
	}
	got := s.Slice()
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Fatalf("slice = %v", got)
	}
}

func TestEdgeSetAlgebra(t *testing.T) {
	a := NewEdgeSet(80)
	b := NewEdgeSet(80)
	a.Add(3)
	a.Add(70)
	b.Add(3)
	if !a.ContainsAll(b) {
		t.Fatal("ContainsAll failed")
	}
	if b.ContainsAll(a) {
		t.Fatal("ContainsAll inverted")
	}
	if !a.Intersects(b) {
		t.Fatal("Intersects failed")
	}
	c := NewEdgeSet(80)
	c.Add(5)
	if a.Intersects(c) {
		t.Fatal("phantom intersection")
	}
	c.UnionWith(a)
	if !c.Contains(3) || !c.Contains(70) || !c.Contains(5) {
		t.Fatal("union failed")
	}
	d := c.Clone()
	if !d.Equal(c) {
		t.Fatal("clone not equal")
	}
	d.Remove(5)
	if d.Equal(c) {
		t.Fatal("clone aliased")
	}
	if c.Key() == d.Key() {
		t.Fatal("keys must differ")
	}
	d.Clear()
	if d.Count() != 0 {
		t.Fatal("clear failed")
	}
	full := FullEdgeSet(80)
	if full.Count() != 80 {
		t.Fatalf("full count = %d", full.Count())
	}
	e := NewEdgeSet(80)
	e.Set(7, true)
	e.Set(7, false)
	if e.Contains(7) {
		t.Fatal("Set(false) failed")
	}
	e.CopyFrom(a)
	if !e.Equal(a) {
		t.Fatal("CopyFrom failed")
	}
}

func TestEdgeSetKeyQuick(t *testing.T) {
	f := func(xs []uint16) bool {
		s1 := NewEdgeSet(256)
		s2 := NewEdgeSet(256)
		for _, x := range xs {
			s1.Add(EdgeID(x % 256))
			s2.Add(EdgeID(x % 256))
		}
		return s1.Key() == s2.Key() && s1.Equal(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRename(t *testing.T) {
	g := triangle(t)
	h := g.Rename("zzz")
	if h.Name() != "zzz" || g.Name() != "001" {
		t.Fatal("rename broken")
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatal("rename must preserve structure")
	}
}

func TestClone(t *testing.T) {
	g := triangle(t)
	h := g.Clone()
	if !Isomorphic(g, h) {
		t.Fatal("clone not isomorphic")
	}
}

func TestStringRendering(t *testing.T) {
	g := triangle(t)
	s := g.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
