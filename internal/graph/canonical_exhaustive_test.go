package graph

import "testing"

// TestCanonicalCodeExhaustiveOracle enumerates every labeled graph on 4
// vertices with 2 vertex labels and unlabeled edges (2^4 label choices ×
// 2^6 edge subsets = 1024 graphs) and checks, for every pair, that
// canonical-code equality coincides exactly with brute-force isomorphism.
func TestCanonicalCodeExhaustiveOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive oracle is slow")
	}
	const n = 4
	pairs := [][2]VertexID{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	var graphs []*Graph
	var codes []string
	for lm := 0; lm < 1<<n; lm++ {
		for em := 0; em < 1<<len(pairs); em++ {
			b := NewBuilder("x")
			for v := 0; v < n; v++ {
				if lm&(1<<v) != 0 {
					b.AddVertex("a")
				} else {
					b.AddVertex("b")
				}
			}
			for pi, p := range pairs {
				if em&(1<<pi) != 0 {
					b.MustAddEdge(p[0], p[1], "")
				}
			}
			g := b.Build()
			graphs = append(graphs, g)
			codes = append(codes, CanonicalCode(g))
		}
	}
	perms := permutations(n)
	isoOracle := func(a, b *Graph) bool {
		if a.NumEdges() != b.NumEdges() {
			return false
		}
		for _, perm := range perms {
			ok := true
			for v := 0; v < n && ok; v++ {
				ok = a.VertexLabel(VertexID(v)) == b.VertexLabel(VertexID(perm[v]))
			}
			for _, e := range a.Edges() {
				if !ok {
					break
				}
				_, has := b.EdgeBetween(VertexID(perm[e.U]), VertexID(perm[e.V]))
				ok = has
			}
			if ok {
				return true
			}
		}
		return false
	}
	// Compare a deterministic sample of pairs (full 1024² is ~1M pairs —
	// feasible but slow with the permutation oracle; stride keeps ~40k
	// pairs while covering every graph).
	checked := 0
	for i := 0; i < len(graphs); i++ {
		for j := i; j < len(graphs); j += 13 {
			same := codes[i] == codes[j]
			iso := isoOracle(graphs[i], graphs[j])
			if same != iso {
				t.Fatalf("graphs %d vs %d: canonical says %v, oracle says %v\n%v\n%v",
					i, j, same, iso, graphs[i], graphs[j])
			}
			checked++
		}
	}
	if checked < 10000 {
		t.Fatalf("only %d pairs checked", checked)
	}
}

func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for v := 0; v < n; v++ {
			if !used[v] {
				used[v] = true
				perm[i] = v
				rec(i + 1)
				used[v] = false
			}
		}
	}
	rec(0)
	return out
}
