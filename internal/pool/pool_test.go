package pool

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestNormalize(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		concurrency, n, want int
	}{
		{0, 10, 1},
		{1, 10, 1},
		{4, 10, 4},
		{4, 2, 2},
		{4, 0, 1},
		{-1, 1 << 30, maxprocs},
		{-7, 1, 1},
		{16, 16, 16},
	}
	for _, c := range cases {
		if got := Normalize(c.concurrency, c.n); got != c.want {
			t.Errorf("Normalize(%d, %d) = %d, want %d", c.concurrency, c.n, got, c.want)
		}
	}
}

func TestForEachIndexCoversAllOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		ForEachIndex(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachIndexEmpty(t *testing.T) {
	called := false
	ForEachIndex(0, 4, func(i int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
}

// TestForEachIndexCtxCompletesUncancelled: with a live context the ctx
// variant behaves exactly like ForEachIndex and returns nil.
func TestForEachIndexCtxCompletesUncancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const n = 500
		counts := make([]atomic.Int32, n)
		err := ForEachIndexCtx(context.Background(), n, workers, func(i int) { counts[i].Add(1) })
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

// TestForEachIndexCtxPreCancelled: an already-dead context runs nothing at
// all — the first cancellation point is before the first fn call.
func TestForEachIndexCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEachIndexCtx(ctx, 100, workers, func(i int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d fn calls ran on a dead context", workers, ran.Load())
		}
	}
}

// TestForEachIndexCtxCancelMidRun: cancelling while the loop is in flight
// stops it promptly — the visited count stays well below n — returns
// ctx.Err(), and leaves no worker goroutines behind.
func TestForEachIndexCtxCancelMidRun(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		const n = 1 << 20
		var ran atomic.Int32
		err := ForEachIndexCtx(ctx, n, workers, func(i int) {
			if ran.Add(1) == 50 {
				cancel()
			}
			time.Sleep(50 * time.Microsecond)
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight fn calls (one per worker) may finish after cancel; no
		// new index may start.
		if got := ran.Load(); got > 50+int32(workers) {
			t.Fatalf("workers=%d: %d indices ran after cancel at 50", workers, got)
		}
		waitForGoroutines(t, before)
	}
}

// waitForGoroutines polls until the goroutine count returns to (at most)
// the recorded baseline, failing after a generous deadline. Cheap leak
// check: ForEachIndexCtx promises every worker has exited on return.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline %d (now %d)",
				baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
