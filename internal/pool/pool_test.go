package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestNormalize(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		concurrency, n, want int
	}{
		{0, 10, 1},
		{1, 10, 1},
		{4, 10, 4},
		{4, 2, 2},
		{4, 0, 1},
		{-1, 1 << 30, maxprocs},
		{-7, 1, 1},
		{16, 16, 16},
	}
	for _, c := range cases {
		if got := Normalize(c.concurrency, c.n); got != c.want {
			t.Errorf("Normalize(%d, %d) = %d, want %d", c.concurrency, c.n, got, c.want)
		}
	}
}

func TestForEachIndexCoversAllOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		ForEachIndex(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachIndexEmpty(t *testing.T) {
	called := false
	ForEachIndex(0, 4, func(i int) { called = true })
	if called {
		t.Fatal("fn called for n=0")
	}
}
