// Package pool provides the engine's deterministic bounded worker pool.
// Every parallel phase of the pipeline — candidate evaluation in core,
// shard scans in the simsearch structural filter — runs on this one
// primitive, so the QueryOptions.Concurrency knob has a single meaning
// everywhere: it bounds goroutines, never changes results.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Normalize resolves a Concurrency knob to an actual worker count for n
// independent work items: 0 (and 1) mean serial, a negative value selects
// GOMAXPROCS, and the result never exceeds n (floor 1).
func Normalize(concurrency, n int) int {
	w := concurrency
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEachIndex runs fn(i) for every i in [0, n) on a bounded pool of
// `workers` goroutines (serially when workers <= 1). fn must confine its
// writes to per-index slots; indices are handed out by an atomic counter,
// so completion order is unspecified.
func ForEachIndex(n, workers int, fn func(i int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
