// Package pool provides the engine's deterministic bounded worker pool.
// Every parallel phase of the pipeline — candidate evaluation in core,
// shard scans in the simsearch structural filter — runs on this one
// primitive, so the QueryOptions.Concurrency knob has a single meaning
// everywhere: it bounds goroutines, never changes results.
//
// The context-aware entry point ForEachIndexCtx is the cancellation
// backbone of the query engine: cancellation is checked once per work
// item, so a cancelled query stops at item granularity (one candidate
// evaluation, one postings shard) without ever changing the result of
// items that did complete.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Normalize resolves a Concurrency knob to an actual worker count for n
// independent work items: 0 (and 1) mean serial, a negative value selects
// GOMAXPROCS, and the result never exceeds n (floor 1).
func Normalize(concurrency, n int) int {
	w := concurrency
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEachIndex runs fn(i) for every i in [0, n) on a bounded pool of
// `workers` goroutines (serially when workers <= 1). fn must confine its
// writes to per-index slots; indices are handed out by an atomic counter,
// so completion order is unspecified.
func ForEachIndex(n, workers int, fn func(i int)) {
	ForEachIndexCtx(context.Background(), n, workers, fn)
}

// ForEachIndexCtx is ForEachIndex with cooperative cancellation: ctx is
// checked before each index is handed out, and once it is done no further
// fn call starts. Indices already dispatched run to completion — fn is
// never interrupted mid-call — and every worker goroutine has exited by
// the time ForEachIndexCtx returns, so a cancelled loop leaks nothing.
// The return value is ctx.Err() when the loop stopped early, nil when all
// n indices ran.
func ForEachIndexCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	// A context that died at any point during the loop — even one that
	// raced the final index — reports cancellation: callers treat a
	// non-nil return as "results must be discarded", which is the only
	// sound reading when some tail of fn calls may have been skipped.
	return ctx.Err()
}
