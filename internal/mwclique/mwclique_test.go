package mwclique

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce enumerates all subsets.
func bruteForce(g *Graph) float64 {
	best := 0.0
	for mask := 0; mask < 1<<g.N; mask++ {
		w := 0.0
		ok := true
		var nodes []int
		for i := 0; i < g.N && ok; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			for _, j := range nodes {
				if !g.Adj[i][j] {
					ok = false
					break
				}
			}
			if ok {
				nodes = append(nodes, i)
				w += g.Weight[i]
			}
		}
		if ok && w > best {
			best = w
		}
	}
	return best
}

func randomCliqueGraph(rng *rand.Rand, n int, density float64) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.Weight[i] = rng.Float64() * 3
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

func TestSolveAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomCliqueGraph(rng, 2+rng.Intn(10), 0.2+0.6*rng.Float64())
		res := Solve(g)
		want := bruteForce(g)
		if math.Abs(res.Weight-want) > 1e-9 {
			t.Logf("seed %d: got %v want %v", seed, res.Weight, want)
			return false
		}
		// The reported clique must actually be a clique with that weight.
		w := 0.0
		for i, u := range res.Nodes {
			w += g.Weight[u]
			for _, v := range res.Nodes[i+1:] {
				if !g.Adj[u][v] {
					t.Logf("seed %d: reported set not a clique", seed)
					return false
				}
			}
		}
		return math.Abs(w-res.Weight) < 1e-9 && res.Exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveEmptyAndSingle(t *testing.T) {
	if r := Solve(NewGraph(0)); r.Weight != 0 || len(r.Nodes) != 0 {
		t.Fatal("empty graph should give empty clique")
	}
	g := NewGraph(1)
	g.Weight[0] = 2.5
	r := Solve(g)
	if r.Weight != 2.5 || len(r.Nodes) != 1 {
		t.Fatalf("single node: %+v", r)
	}
}

func TestSolveNoEdges(t *testing.T) {
	g := NewGraph(4)
	for i := range g.Weight {
		g.Weight[i] = float64(i + 1)
	}
	r := Solve(g)
	// Best clique in an edgeless graph is the single heaviest node.
	if r.Weight != 4 || len(r.Nodes) != 1 || r.Nodes[0] != 3 {
		t.Fatalf("got %+v", r)
	}
}

func TestSolveCompleteGraph(t *testing.T) {
	g := NewGraph(5)
	total := 0.0
	for i := 0; i < 5; i++ {
		g.Weight[i] = float64(i) + 0.5
		total += g.Weight[i]
		for j := i + 1; j < 5; j++ {
			g.AddEdge(i, j)
		}
	}
	r := Solve(g)
	if math.Abs(r.Weight-total) > 1e-9 || len(r.Nodes) != 5 {
		t.Fatalf("complete graph: %+v, want all nodes weight %v", r, total)
	}
}

func TestGreedyFallbackLargeGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomCliqueGraph(rng, MaxExactNodes+10, 0.3)
	r := Solve(g)
	if r.Exact {
		t.Fatal("large input should use greedy fallback")
	}
	for i, u := range r.Nodes {
		for _, v := range r.Nodes[i+1:] {
			if !g.Adj[u][v] {
				t.Fatal("greedy result not a clique")
			}
		}
	}
}

func TestSelfEdgeIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0)
	if g.Adj[0][0] {
		t.Fatal("self edge must be ignored")
	}
}

func TestPaperExample6Shape(t *testing.T) {
	// Paper Example 6: three embeddings EM1, EM2, EM3 where EM1 ⟂ EM3 only.
	// Node weights −ln(1−p) with p1=p3 chosen so the pair beats EM2 alone.
	g := NewGraph(3)
	p := []float64{0.14, 0.11, 0.14} // Pr(Bfi|COR)-style values
	for i, pi := range p {
		g.Weight[i] = -math.Log(1 - pi)
	}
	g.AddEdge(0, 2)
	r := Solve(g)
	if len(r.Nodes) != 2 || r.Nodes[0] != 0 || r.Nodes[1] != 2 {
		t.Fatalf("expected clique {0,2}, got %v", r.Nodes)
	}
	// LowerB = 1 − e^{−weight} should beat the single-node alternative.
	if lb := 1 - math.Exp(-r.Weight); lb <= p[1] {
		t.Fatalf("pair bound %v not tighter than singleton %v", lb, p[1])
	}
}
