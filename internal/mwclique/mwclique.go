// Package mwclique solves the maximum weight clique problem used by the PMI
// index to pick the tightest families of disjoint embeddings (lower bound,
// paper §4.1.1) and disjoint embedding cuts (upper bound, paper §4.1.2).
//
// The solver is a branch-and-bound in the spirit of Balas–Xue (reference [7]
// of the paper): vertices are ordered by weight, and a greedy coloring of
// the candidate set provides the upper bound (sum over color classes of the
// heaviest member). Inputs here are tiny graphs over embeddings/cuts
// (tens of nodes), for which the exact search is immediate; a guard falls
// back to a greedy solution beyond a node budget.
package mwclique

import "sort"

// MaxExactNodes is the input size beyond which Solve switches from exact
// branch-and-bound to the greedy heuristic.
const MaxExactNodes = 400

// Graph is an undirected graph over nodes 0..N-1 given by an adjacency
// matrix, with nonnegative node weights.
type Graph struct {
	N      int
	Adj    [][]bool
	Weight []float64
}

// NewGraph allocates an empty graph with n nodes and zero weights.
func NewGraph(n int) *Graph {
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	return &Graph{N: n, Adj: adj, Weight: make([]float64, n)}
}

// AddEdge links nodes i and j.
func (g *Graph) AddEdge(i, j int) {
	if i == j {
		return
	}
	g.Adj[i][j] = true
	g.Adj[j][i] = true
}

// Result is a clique and its total weight.
type Result struct {
	Nodes  []int
	Weight float64
	Exact  bool // false when the greedy fallback produced the answer
}

// Solve returns a maximum weight clique of g. Zero-weight nodes are
// admissible but never help, so they are only included when free.
func Solve(g *Graph) Result {
	if g.N == 0 {
		return Result{Exact: true}
	}
	if g.N > MaxExactNodes {
		r := greedy(g)
		r.Exact = false
		return r
	}
	s := &solver{g: g}
	// Seed with greedy so pruning starts effective.
	seed := greedy(g)
	s.best = seed.Weight
	s.bestSet = seed.Nodes

	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.Weight[order[a]] > g.Weight[order[b]] })
	s.expand(order, nil, 0)
	sort.Ints(s.bestSet)
	return Result{Nodes: s.bestSet, Weight: s.best, Exact: true}
}

type solver struct {
	g       *Graph
	best    float64
	bestSet []int
}

// colorBound returns an upper bound on the best clique weight within cand:
// nodes are greedily partitioned into independent-set color classes; any
// clique takes at most one node per class, so the sum of per-class maxima
// bounds the achievable weight.
func (s *solver) colorBound(cand []int) float64 {
	var classes [][]int
	var classMax []float64
	for _, v := range cand {
		placed := false
		for ci, class := range classes {
			ok := true
			for _, u := range class {
				if s.g.Adj[v][u] {
					ok = false
					break
				}
			}
			if ok {
				classes[ci] = append(classes[ci], v)
				if s.g.Weight[v] > classMax[ci] {
					classMax[ci] = s.g.Weight[v]
				}
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int{v})
			classMax = append(classMax, s.g.Weight[v])
		}
	}
	bound := 0.0
	for _, m := range classMax {
		bound += m
	}
	return bound
}

func (s *solver) expand(cand []int, cur []int, curW float64) {
	if len(cand) == 0 {
		if curW > s.best {
			s.best = curW
			s.bestSet = append([]int(nil), cur...)
		}
		return
	}
	if curW+s.colorBound(cand) <= s.best {
		return
	}
	for i, v := range cand {
		// Remaining-weight bound for this branch position.
		rem := 0.0
		for _, u := range cand[i:] {
			rem += s.g.Weight[u]
		}
		if curW+rem <= s.best {
			return
		}
		var next []int
		for _, u := range cand[i+1:] {
			if s.g.Adj[v][u] {
				next = append(next, u)
			}
		}
		s.expand(next, append(cur, v), curW+s.g.Weight[v])
	}
	if curW > s.best {
		s.best = curW
		s.bestSet = append([]int(nil), cur...)
	}
}

// greedy grows a clique by repeatedly adding the heaviest compatible node.
func greedy(g *Graph) Result {
	order := make([]int, g.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.Weight[order[a]] > g.Weight[order[b]] })
	var clique []int
	w := 0.0
	for _, v := range order {
		ok := true
		for _, u := range clique {
			if !g.Adj[v][u] {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, v)
			w += g.Weight[v]
		}
	}
	sort.Ints(clique)
	return Result{Nodes: clique, Weight: w}
}
