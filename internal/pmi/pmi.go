// Package pmi implements the Probabilistic Matrix Index (paper §3.1, §4):
// a feature × graph matrix whose entry for (f, g) holds lower and upper
// bounds on the subgraph isomorphism probability SIP = Pr(f ⊆iso g).
//
// Lower bound (paper §4.1.1, Eq 17): over a family IN of pairwise
// edge-disjoint embeddings of f in gc,
//
//	LowerB(f) = 1 − Π_{i∈IN} (1 − Pr(Bfi | COR_i))
//
// where COR_i conditions on the overlapping embeddings being absent. The
// tightest family is a maximum weight clique on the embedding-disjointness
// graph fG with node weights −ln(1 − Pr(Bfi|COR_i)) (paper Example 6).
//
// Upper bound (paper §4.1.2, Eq 20): dually, over a family IN′ of pairwise
// disjoint minimal embedding cuts,
//
//	UpperB(f) = Π_{i∈IN′} (1 − Pr(Bci | COM_i))
//
// with the tightest family again a maximum weight clique, now over cuts.
//
// Conditional probabilities Pr(B|COND) come either from the exact
// inclusion–exclusion path (prob.ProbConjNegConj) or from the paper's
// Algorithm 3 Monte-Carlo estimator on a shared pool of sampled worlds.
package pmi

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"probgraph/internal/cuts"
	"probgraph/internal/feature"
	"probgraph/internal/graph"
	"probgraph/internal/iso"
	"probgraph/internal/mwclique"
	"probgraph/internal/prob"
)

// Options tunes index construction.
type Options struct {
	// MaxEmbeddings caps |Ef| per (feature, graph) pair. Default 24.
	MaxEmbeddings int
	// MaxCuts caps the enumerated minimal embedding cuts. Default 24.
	MaxCuts int
	// MaxOverlap caps the conditioning set |COR|/|COM| per embedding/cut.
	// Default 6.
	MaxOverlap int
	// ExactCondLimit: conditioning sets up to this size use the exact
	// inclusion–exclusion path; larger ones fall back to Algorithm 3
	// sampling. Default 6 (so the default configuration is fully exact).
	ExactCondLimit int
	// Xi and Tau are the paper's Monte-Carlo parameters; the Algorithm 3
	// sample count is N = ceil(4·ln(2/ξ)/τ²). Defaults ξ=0.05, τ=0.25.
	Xi, Tau float64
	// Optimize selects OPT-SIPBound (max-weight-clique tightest families).
	// When false the builder uses the greedy disjoint family (the paper's
	// plain SIPBound ablation). Default true via NewOptions.
	Optimize bool
	// Workers bounds build parallelism. Default GOMAXPROCS.
	Workers int
	// Seed drives Algorithm 3 sampling deterministically.
	Seed int64
}

// NewOptions returns the default (OPT-SIPBound) configuration.
func NewOptions() Options {
	return Options{Optimize: true}
}

func (o Options) withDefaults() Options {
	if o.MaxEmbeddings == 0 {
		o.MaxEmbeddings = 24
	}
	if o.MaxCuts == 0 {
		o.MaxCuts = 24
	}
	if o.MaxOverlap == 0 {
		o.MaxOverlap = 6
	}
	if o.ExactCondLimit == 0 {
		o.ExactCondLimit = 6
	}
	if o.Xi == 0 {
		o.Xi = 0.05
	}
	if o.Tau == 0 {
		o.Tau = 0.25
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// SampleN returns the Algorithm 3 world-pool size for the options.
func (o Options) SampleN() int {
	o = o.withDefaults()
	return int(math.Ceil(4 * math.Log(2/o.Xi) / (o.Tau * o.Tau)))
}

// Entry is one cell of the matrix: SIP bounds of feature f in graph g.
type Entry struct {
	Contained bool // f ⊆iso gc; when false the paper stores ⟨0⟩
	Lower     float64
	Upper     float64
}

// Index is the probabilistic matrix index. It is immutable once
// published; the copy-on-write constructors in incremental.go (WithColumn,
// WithMaskedColumn, WithReplacedColumn, CompactedColumns) return new
// indexes sharing untouched rows with their predecessor.
type Index struct {
	Features []*graph.Graph
	//pgvet:nosnap canonical codes are re-derived from Features at load time
	Codes []string
	// Entries[fi][gi] bounds Pr(Features[fi] ⊆iso db[gi]).
	Entries [][]Entry
	//pgvet:nosnap pmi sections do not persist options; the snapshot loaders restore them from BuildOptions
	Opt Options

	// masked marks tombstoned columns (nil = none); maskCount counts
	// them. Masked columns keep their in-memory entries (the row slices
	// are shared with older index generations) but Save writes them as
	// uncontained and Lookup is never called for them.
	masked    []bool
	maskCount int

	// cols is the authoritative column (graph) count. It cannot be
	// derived from Entries when the mined vocabulary is empty — there is
	// no row to measure — and the mutation constructors need it even
	// then.
	cols int
}

// Build constructs the PMI for the database. engines[i] must be an
// inference engine over db[i]; feats come from the feature miner. The build
// fans out across graphs.
func Build(db []*prob.PGraph, engines []*prob.Engine, feats []*feature.Feature, opt Options) (*Index, error) {
	opt = opt.withDefaults()
	if len(db) != len(engines) {
		return nil, fmt.Errorf("pmi: %d graphs but %d engines", len(db), len(engines))
	}
	idx := &Index{Opt: opt, cols: len(db)}
	for _, f := range feats {
		idx.Features = append(idx.Features, f.G)
		idx.Codes = append(idx.Codes, f.Code)
		idx.Entries = append(idx.Entries, make([]Entry, len(db)))
	}

	// Invert feature support for quick "contained" lookups.
	contained := make([][]bool, len(feats))
	for fi, f := range feats {
		contained[fi] = make([]bool, len(db))
		for _, gi := range f.Support {
			contained[fi][gi] = true
		}
	}

	var wg sync.WaitGroup
	jobs := make(chan int)
	errMu := sync.Mutex{}
	var firstErr error
	for w := 0; w < opt.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for gi := range jobs {
				rng := rand.New(rand.NewSource(opt.Seed ^ int64(gi)*0x9e3779b97f4a7c))
				b := &graphBuilder{
					opt: opt, pg: db[gi], eng: engines[gi], rng: rng,
				}
				for fi := range feats {
					if !contained[fi][gi] {
						continue
					}
					entry, err := b.bounds(feats[fi].G)
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("pmi: feature %d graph %d: %w", fi, gi, err)
						}
						errMu.Unlock()
						continue
					}
					idx.Entries[fi][gi] = entry
				}
			}
		}(w)
	}
	for gi := range db {
		jobs <- gi
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return idx, nil
}

// graphBuilder computes entries for one graph; it owns a private rng and a
// lazily sampled world pool shared by all Algorithm 3 estimates on this
// graph.
type graphBuilder struct {
	opt  Options
	pg   *prob.PGraph
	eng  *prob.Engine
	rng  *rand.Rand
	pool []graph.EdgeSet
}

func (b *graphBuilder) worldPool() []graph.EdgeSet {
	if b.pool == nil {
		n := b.opt.SampleN()
		b.pool = make([]graph.EdgeSet, n)
		scratch := make([]bool, b.pg.NumUncertain())
		for i := range b.pool {
			w := b.pg.NewWorld()
			b.eng.SampleWorldInto(b.rng, w, scratch)
			b.pool[i] = w
		}
	}
	return b.pool
}

// bounds computes the PMI entry for one contained feature.
func (b *graphBuilder) bounds(f *graph.Graph) (Entry, error) {
	gc := b.pg.G
	embs := iso.EdgeSets(f, gc, nil, b.opt.MaxEmbeddings)
	if len(embs) == 0 {
		// Support said contained but matching found nothing: inconsistent.
		return Entry{}, fmt.Errorf("no embeddings for contained feature")
	}
	lower, err := b.lowerBound(embs)
	if err != nil {
		return Entry{}, err
	}
	upper, err := b.upperBound(embs)
	if err != nil {
		return Entry{}, err
	}
	return Entry{Contained: true, Lower: lower, Upper: upper}, nil
}

// condProb returns Pr(all of base hold polarity | none of others fully hold
// polarity), exactly when the conditioning set is small, else via the
// Algorithm 3 estimator over the shared world pool.
func (b *graphBuilder) condProb(base graph.EdgeSet, others []graph.EdgeSet, present bool) (float64, error) {
	if len(others) <= b.opt.ExactCondLimit {
		num, err := prob.ProbConjNegConj(b.eng, &base, others, present, 0)
		if err != nil {
			return 0, err
		}
		den, err := prob.ProbConjNegConj(b.eng, nil, others, present, 0)
		if err != nil {
			return 0, err
		}
		if den <= 0 {
			return 0, nil
		}
		p := num / den
		if p > 1 {
			p = 1
		}
		return p, nil
	}
	// Algorithm 3: n1 = worlds where base holds and no other holds;
	// n2 = worlds where no other holds.
	holds := func(w graph.EdgeSet, s graph.EdgeSet) bool {
		if present {
			return w.ContainsAll(s)
		}
		// All edges absent.
		for _, e := range s.Slice() {
			if w.Contains(e) {
				return false
			}
		}
		return true
	}
	n1, n2 := 0, 0
	for _, w := range b.worldPool() {
		anyOther := false
		for _, o := range others {
			if holds(w, o) {
				anyOther = true
				break
			}
		}
		if anyOther {
			continue
		}
		n2++
		if holds(w, base) {
			n1++
		}
	}
	if n2 == 0 {
		return 0, nil
	}
	return float64(n1) / float64(n2), nil
}

// overlapping returns up to MaxOverlap members of sets (≠ skip) sharing an
// edge with base, largest overlap first.
func (b *graphBuilder) overlapping(base graph.EdgeSet, sets []graph.EdgeSet, skip int) []graph.EdgeSet {
	type scored struct {
		i       int
		overlap int
	}
	var cand []scored
	for i, s := range sets {
		if i == skip || !base.Intersects(s) {
			continue
		}
		ov := 0
		for _, e := range s.Slice() {
			if base.Contains(e) {
				ov++
			}
		}
		cand = append(cand, scored{i, ov})
	}
	sort.Slice(cand, func(a, c int) bool {
		if cand[a].overlap != cand[c].overlap {
			return cand[a].overlap > cand[c].overlap
		}
		return cand[a].i < cand[c].i
	})
	if len(cand) > b.opt.MaxOverlap {
		cand = cand[:b.opt.MaxOverlap]
	}
	out := make([]graph.EdgeSet, len(cand))
	for i, c := range cand {
		out[i] = sets[c.i]
	}
	return out
}

// lowerBound follows §4.1.1: weight each embedding by −ln(1 − Pr(Bfi|COR))
// (Algorithm 3 / exact conditionals), pick the tightest pairwise-disjoint
// family via the Example 6 max-weight clique, then evaluate the selected
// family. The paper's Eq 17 multiplies (1 − Pr(Bfi|COR)) assuming the
// disjoint embeddings are conditionally independent; under shared-edge JPTs
// that product can exceed the true SIP, so we sharpen the final step: the
// union probability Pr(∨_{i∈IN} Bfi) of the selected family is computed
// exactly by inclusion–exclusion over the inference engine, which is a
// sound lower bound for any family (monotonicity of union) and is at least
// as tight as the product form when independence does hold.
func (b *graphBuilder) lowerBound(embs []graph.EdgeSet) (float64, error) {
	weights, err := b.familyWeights(embs, true)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, fam := range b.candidateFamilies(embs, weights) {
		sets := pickSets(embs, fam)
		pNone, err := prob.ProbConjNegConj(b.eng, nil, sets, true, 0)
		if err != nil {
			return 0, err
		}
		if v := 1 - pNone; v > best {
			best = v
		}
	}
	return best, nil
}

// upperBound follows §4.1.2 dually over minimal embedding cuts: weights
// −ln(1 − Pr(Bci|COM)), tightest disjoint family by max-weight clique, and
// the intersection Pr(∧_{i∈IN′} ¬Bci) evaluated exactly (sound upper bound
// for any cut family: every enumerated cut is a true embedding cut, so
// SIP = Pr(no cut of the full family is absent) ≤ Pr(none of IN′ absent)).
func (b *graphBuilder) upperBound(embs []graph.EdgeSet) (float64, error) {
	cutSets := cuts.MinimalCuts(embs, b.pg.G.NumEdges(), b.opt.MaxCuts)
	if len(cutSets) == 0 {
		return 1, nil
	}
	weights, err := b.familyWeights(cutSets, false)
	if err != nil {
		return 0, err
	}
	best := 1.0
	for _, fam := range b.candidateFamilies(cutSets, weights) {
		sets := pickSets(cutSets, fam)
		pNone, err := prob.ProbConjNegConj(b.eng, nil, sets, false, 0)
		if err != nil {
			return 0, err
		}
		if pNone < best {
			best = pNone
		}
	}
	return best, nil
}

// familyWeights computes the per-member clique weights −ln(1−Pr(B·|COND))
// of §4.1 (embeddings when present=true, cuts when present=false).
func (b *graphBuilder) familyWeights(sets []graph.EdgeSet, present bool) ([]float64, error) {
	weights := make([]float64, len(sets))
	for i, s := range sets {
		cond := b.overlapping(s, sets, i)
		p, err := b.condProb(s, cond, present)
		if err != nil {
			return nil, err
		}
		weights[i] = clampNegLog1m(p)
	}
	return weights, nil
}

// MaxExactFamily bounds the family size whose union/intersection is
// evaluated exactly (2^k inclusion–exclusion terms).
const MaxExactFamily = 8

// candidateFamilies returns the disjoint families to evaluate: the greedy
// family always, plus the max-weight clique family under Optimize (taking
// the better of the two keeps OPT-SIPBound ≥ SIPBound by construction).
func (b *graphBuilder) candidateFamilies(sets []graph.EdgeSet, weights []float64) [][]int {
	families := [][]int{capFamily(iso.MaxDisjointGreedy(sets), weights)}
	if !b.opt.Optimize {
		return families
	}
	g := mwclique.NewGraph(len(sets))
	copy(g.Weight, weights)
	for i := range sets {
		for j := i + 1; j < len(sets); j++ {
			if !sets[i].Intersects(sets[j]) {
				g.AddEdge(i, j)
			}
		}
	}
	families = append(families, capFamily(mwclique.Solve(g).Nodes, weights))
	return families
}

// capFamily keeps the MaxExactFamily heaviest members.
func capFamily(fam []int, weights []float64) []int {
	if len(fam) <= MaxExactFamily {
		return fam
	}
	cp := append([]int(nil), fam...)
	sort.Slice(cp, func(a, b int) bool { return weights[cp[a]] > weights[cp[b]] })
	return cp[:MaxExactFamily]
}

func pickSets(sets []graph.EdgeSet, fam []int) []graph.EdgeSet {
	out := make([]graph.EdgeSet, len(fam))
	for i, j := range fam {
		out[i] = sets[j]
	}
	return out
}

// clampNegLog1m returns −ln(1−p) with p clamped into [0, 1−1e−12] so that
// certain events produce a very large (not infinite) weight.
func clampNegLog1m(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1-1e-12 {
		p = 1 - 1e-12
	}
	return -math.Log1p(-p)
}

// Lookup returns the row Dg of the paper: for each feature contained in
// gc(gi), its entry. The returned slice is indexed by feature.
func (idx *Index) Lookup(gi int) []Entry {
	return idx.LookupInto(gi, make([]Entry, 0, len(idx.Features)))
}

// LookupInto is Lookup gathering into buf (reset to length 0 first): the
// query hot path calls it once per candidate with a pooled buffer, so the
// steady state allocates nothing. It allocates only when buf's capacity
// is short.
func (idx *Index) LookupInto(gi int, buf []Entry) []Entry {
	buf = buf[:0]
	for fi := range idx.Features {
		buf = append(buf, idx.Entries[fi][gi])
	}
	return buf
}

// NumFeatures returns the number of indexed features.
func (idx *Index) NumFeatures() int { return len(idx.Features) }

// SizeBytes estimates the in-memory size of the matrix (the paper's
// "index size" metric of Figure 12d): 17 bytes per entry (two float64s and
// a flag) plus the feature graphs.
func (idx *Index) SizeBytes() int {
	total := 0
	for _, row := range idx.Entries {
		total += 17 * len(row)
	}
	for _, f := range idx.Features {
		total += 16*f.NumVertices() + 24*f.NumEdges()
	}
	return total
}
