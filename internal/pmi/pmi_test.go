package pmi

import (
	"math/rand"
	"testing"

	"probgraph/internal/dataset"
	"probgraph/internal/feature"
	"probgraph/internal/graph"
	"probgraph/internal/iso"
	"probgraph/internal/prob"
	"probgraph/internal/relax"
)

// buildSmallDB makes a small correlated database plus engines and features.
func buildSmallDB(t *testing.T, seed int64, n int, correlated bool) ([]*prob.PGraph, []*prob.Engine, []*feature.Feature) {
	t.Helper()
	db, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: n, MinVertices: 5, MaxVertices: 7, EdgeFactor: 1.3,
		Labels: 3, Organisms: 2, Correlated: correlated, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*prob.Engine, len(db.Graphs))
	var certain []*graph.Graph
	for i, pg := range db.Graphs {
		eng, err := prob.NewEngine(pg)
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
		certain = append(certain, pg.G)
	}
	feats := feature.Mine(certain, feature.Options{Beta: 0.2, Alpha: 0.05, Gamma: 0.05, MaxL: 3})
	if len(feats) == 0 {
		t.Fatal("no features for PMI test")
	}
	return db.Graphs, engines, feats
}

// exactSIP computes Pr(f ⊆iso g) by world enumeration.
func exactSIP(t *testing.T, eng *prob.Engine, f, gc *graph.Graph) float64 {
	t.Helper()
	total := 0.0
	if err := prob.EnumerateWorlds(eng, func(w graph.EdgeSet, p float64) bool {
		if iso.Exists(f, gc, &w) {
			total += p
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return total
}

func TestBoundsSandwichExactSIP(t *testing.T) {
	for _, correlated := range []bool{false, true} {
		graphs, engines, feats := buildSmallDB(t, 21, 8, correlated)
		opt := NewOptions()
		opt.Seed = 5
		idx, err := Build(graphs, engines, feats, opt)
		if err != nil {
			t.Fatal(err)
		}
		const slack = 0.02 // bound derivation is exact only under the paper's CI assumption
		checked := 0
		for fi, fg := range idx.Features {
			for gi := range graphs {
				e := idx.Entries[fi][gi]
				if !e.Contained {
					continue
				}
				sip := exactSIP(t, engines[gi], fg, graphs[gi].G)
				if e.Lower > sip+slack {
					t.Errorf("correlated=%v feature %d graph %d: Lower %v > exact SIP %v", correlated, fi, gi, e.Lower, sip)
				}
				if e.Upper < sip-slack {
					t.Errorf("correlated=%v feature %d graph %d: Upper %v < exact SIP %v", correlated, fi, gi, e.Upper, sip)
				}
				if e.Lower < -1e-9 || e.Upper > 1+1e-9 {
					t.Errorf("bounds outside [0,1]: %+v", e)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatal("no contained entries checked")
		}
	}
}

func TestUncontainedEntriesAreZero(t *testing.T) {
	graphs, engines, feats := buildSmallDB(t, 33, 6, true)
	idx, err := Build(graphs, engines, feats, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	for fi, fg := range idx.Features {
		for gi := range graphs {
			e := idx.Entries[fi][gi]
			if e.Contained != iso.Exists(fg, graphs[gi].G, nil) {
				t.Fatalf("containment flag wrong at (%d,%d)", fi, gi)
			}
			if !e.Contained && (e.Lower != 0 || e.Upper != 0) {
				t.Fatalf("uncontained entry not ⟨0⟩: %+v", e)
			}
		}
	}
}

func TestOptimizeTightensBounds(t *testing.T) {
	graphs, engines, feats := buildSmallDB(t, 44, 8, true)
	optOn := NewOptions()
	optOn.Seed = 1
	on, err := Build(graphs, engines, feats, optOn)
	if err != nil {
		t.Fatal(err)
	}
	optOff := NewOptions()
	optOff.Optimize = false
	optOff.Seed = 1
	off, err := Build(graphs, engines, feats, optOff)
	if err != nil {
		t.Fatal(err)
	}
	// OPT bounds must never be looser (greedy families are sub-families of
	// the clique search space); strictly tighter somewhere is expected but
	// not guaranteed per entry.
	const eps = 1e-9
	for fi := range on.Features {
		for gi := range graphs {
			a, b := on.Entries[fi][gi], off.Entries[fi][gi]
			if !a.Contained {
				continue
			}
			if a.Lower < b.Lower-eps {
				t.Fatalf("OPT lower %v looser than greedy %v at (%d,%d)", a.Lower, b.Lower, fi, gi)
			}
			if a.Upper > b.Upper+eps {
				t.Fatalf("OPT upper %v looser than greedy %v at (%d,%d)", a.Upper, b.Upper, fi, gi)
			}
		}
	}
}

func TestSamplingPathAgreesWithExact(t *testing.T) {
	graphs, engines, feats := buildSmallDB(t, 55, 5, true)
	exactOpt := NewOptions()
	exactOpt.ExactCondLimit = 99 // force exact conditionals
	exact, err := Build(graphs, engines, feats, exactOpt)
	if err != nil {
		t.Fatal(err)
	}
	mcOpt := NewOptions()
	mcOpt.ExactCondLimit = -1 // force Algorithm 3 sampling everywhere
	mcOpt.Tau = 0.08          // tighter τ for a sharper comparison
	mcOpt.Seed = 99
	mc, err := Build(graphs, engines, feats, mcOpt)
	if err != nil {
		t.Fatal(err)
	}
	for fi := range exact.Features {
		for gi := range graphs {
			a, b := exact.Entries[fi][gi], mc.Entries[fi][gi]
			if !a.Contained {
				continue
			}
			if diff := abs(a.Lower - b.Lower); diff > 0.12 {
				t.Fatalf("MC lower diverges at (%d,%d): exact %v vs MC %v", fi, gi, a.Lower, b.Lower)
			}
			if diff := abs(a.Upper - b.Upper); diff > 0.12 {
				t.Fatalf("MC upper diverges at (%d,%d): exact %v vs MC %v", fi, gi, a.Upper, b.Upper)
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestSampleN(t *testing.T) {
	o := Options{Xi: 0.05, Tau: 0.25}
	// N = ceil(4·ln(40)/0.0625) = ceil(236.09…) = 237.
	if n := o.SampleN(); n != 237 {
		t.Fatalf("SampleN = %d, want 237", n)
	}
}

func TestLookupShape(t *testing.T) {
	graphs, engines, feats := buildSmallDB(t, 66, 4, false)
	idx, err := Build(graphs, engines, feats, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	row := idx.Lookup(0)
	if len(row) != idx.NumFeatures() {
		t.Fatalf("Lookup length %d, want %d", len(row), idx.NumFeatures())
	}
	if idx.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestPaperFigure1Bounds(t *testing.T) {
	// Features in graph 002 of Figure 1, in the spirit of Examples 5–7: a
	// single a-b edge (multiple overlapping + disjoint embeddings) and the
	// a-b-b path. For each, the computed PMI entry must sandwich the exact
	// SIP, and the disjointness graph must be exercised (≥ 2 embeddings).
	_, g002, _, err := dataset.PaperFigure1()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := prob.NewEngine(g002)
	if err != nil {
		t.Fatal(err)
	}
	mkPath := func(labels ...graph.Label) *graph.Graph {
		fb := graph.NewBuilder("f")
		prev := fb.AddVertex(labels[0])
		for _, l := range labels[1:] {
			next := fb.AddVertex(l)
			fb.MustAddEdge(prev, next, "")
			prev = next
		}
		return fb.Build()
	}
	for _, f := range []*graph.Graph{mkPath("a", "b"), mkPath("a", "b", "b"), mkPath("b", "b", "c")} {
		embs := iso.EdgeSets(f, g002.G, nil, 0)
		if len(embs) == 0 {
			t.Fatalf("feature %v does not embed in 002", f)
		}
		b := &graphBuilder{opt: NewOptions().withDefaults(), pg: g002, eng: eng, rng: rand.New(rand.NewSource(1))}
		entry, err := b.bounds(f)
		if err != nil {
			t.Fatal(err)
		}
		sip := exactSIP(t, eng, f, g002.G)
		if entry.Lower > sip+1e-6 || entry.Upper < sip-1e-6 {
			t.Fatalf("feature %v: bounds [%v, %v] do not sandwich exact SIP %v", f, entry.Lower, entry.Upper, sip)
		}
	}
	// The a-b edge has two embeddings sharing vertex a2 plus nothing
	// disjoint... verify at least the 2-embedding case runs through the
	// clique machinery without degenerating.
	if n := len(iso.EdgeSets(mkPath("a", "b"), g002.G, nil, 0)); n < 2 {
		t.Fatalf("expected ≥2 a-b embeddings, got %d", n)
	}
}

func TestRelaxIntegrationSmoke(t *testing.T) {
	// PMI features must interoperate with relaxed queries: a feature equal
	// to a relaxed query must be detected as both sub- and super-graph.
	graphs, _, feats := buildSmallDB(t, 77, 4, true)
	q := dataset.ExtractQuery(graphs[0].G, 4, rand.New(rand.NewSource(3)))
	u := relax.Relaxed(q, 1, 0)
	if len(u) == 0 {
		t.Fatal("no relaxed queries")
	}
	found := false
	for _, rq := range u {
		for _, f := range feats {
			if iso.Exists(f.G, rq, nil) {
				found = true
			}
		}
	}
	if !found {
		t.Skip("no feature embeds in any relaxed query for this seed (acceptable)")
	}
}
