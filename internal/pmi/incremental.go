package pmi

import (
	"fmt"
	"math/rand"
	"slices"

	"probgraph/internal/iso"
	"probgraph/internal/prob"
)

// This file holds the copy-on-write mutation constructors of the index.
// An Index is immutable once published: WithColumn, WithMaskedColumn,
// WithReplacedColumn, and CompactedColumns each return a new Index that
// shares every untouched row with its predecessor, so queries holding an
// older Index (a pinned generation view, see internal/core) never observe
// the mutation. The feature vocabulary is never re-mined — the standard
// trade-off for incremental maintenance of feature-based graph indexes
// (pruning power for new graphs is bounded by the existing features;
// rebuild periodically if the data distribution drifts).

// column computes the new graph's SIP-bound column against every indexed
// feature, in full, before any structural change happens — a failed
// computation leaves nothing to undo.
func (idx *Index) column(pg *prob.PGraph, eng *prob.Engine, gi int) ([]Entry, error) {
	opt := idx.Opt.withDefaults()
	b := &graphBuilder{
		opt: opt, pg: pg, eng: eng,
		rng: rand.New(rand.NewSource(opt.Seed ^ int64(gi)*0x9e3779b97f4a7c)),
	}
	column := make([]Entry, len(idx.Features))
	for fi, fg := range idx.Features {
		if !iso.Exists(fg, pg.G, nil) {
			continue
		}
		entry, err := b.bounds(fg)
		if err != nil {
			return nil, fmt.Errorf("pmi: feature %d on graph %d: %w", fi, gi, err)
		}
		column[fi] = entry
	}
	return column, nil
}

// clone returns a shallow struct copy — the starting point of every
// copy-on-write constructor.
func (idx *Index) clone() *Index {
	cp := *idx
	return &cp
}

// numGraphs returns the column count of the matrix. Indexes loaded from
// pre-generation files (or hand-assembled in tests) may not carry cols;
// they fall back to the first row's length — correct whenever a row
// exists at all.
func (idx *Index) numGraphs() int {
	if idx.cols > 0 || len(idx.Entries) == 0 {
		return idx.cols
	}
	return len(idx.Entries[0])
}

// WithColumn returns a new Index extended by one column: SIP bounds of
// every indexed feature against the new graph. Row appends reuse the
// receiver's backing arrays when capacity allows, writing only beyond the
// receiver's length — invisible to readers of the old Index; mutations
// form a linear chain (serialized by core's writer lock), so a backing
// slot is written at most once after becoming reachable.
func (idx *Index) WithColumn(pg *prob.PGraph, eng *prob.Engine) (*Index, error) {
	gi := idx.numGraphs()
	column, err := idx.column(pg, eng, gi)
	if err != nil {
		return nil, err
	}
	n := idx.clone()
	n.cols = gi + 1
	n.Entries = slices.Clone(idx.Entries)
	for fi := range n.Entries {
		n.Entries[fi] = append(idx.Entries[fi], column[fi])
	}
	if idx.masked != nil {
		n.masked = append(idx.masked, false)
	}
	return n, nil
}

// WithMaskedColumn returns a new Index with column gi masked: Lookup
// callers are expected never to ask for a masked (tombstoned) graph, and
// Save writes the column as uncontained — the paper's ⟨0⟩ — so the dead
// graph's bounds leave the persisted matrix immediately. O(numGraphs),
// no row is copied.
func (idx *Index) WithMaskedColumn(gi int) *Index {
	return idx.WithMaskedColumns([]int{gi})
}

// WithMaskedColumns is the bulk form of WithMaskedColumn (snapshot
// loads, AttachPMI re-masking).
func (idx *Index) WithMaskedColumns(ids []int) *Index {
	if len(ids) == 0 {
		return idx
	}
	n := idx.clone()
	// Size the mask to cover every requested slot even when the index
	// cannot tell its own column count (zero-feature vocabulary loaded
	// from a pre-generation file): the caller's slot ids are validated
	// against the database, which is the authority the mask serves.
	size := idx.numGraphs()
	for _, gi := range ids {
		if gi >= size {
			size = gi + 1
		}
	}
	n.masked = make([]bool, size)
	copy(n.masked, idx.masked)
	for _, gi := range ids {
		if !n.masked[gi] {
			n.masked[gi] = true
			n.maskCount++
		}
	}
	return n
}

// WithReplacedColumn returns a new Index whose column gi holds the bounds
// of pg instead. Every row is copied (the column cuts across all of
// them); the replaced slot's mask, if any, is cleared.
func (idx *Index) WithReplacedColumn(gi int, pg *prob.PGraph, eng *prob.Engine) (*Index, error) {
	column, err := idx.column(pg, eng, gi)
	if err != nil {
		return nil, err
	}
	n := idx.clone()
	n.Entries = slices.Clone(idx.Entries)
	for fi := range n.Entries {
		row := slices.Clone(idx.Entries[fi])
		row[gi] = column[fi]
		n.Entries[fi] = row
	}
	if idx.masked != nil && idx.masked[gi] {
		n.masked = slices.Clone(idx.masked)
		n.masked[gi] = false
		n.maskCount--
	}
	return n, nil
}

// CompactedColumns returns a new Index without the masked columns:
// surviving columns keep their relative order and are renumbered
// contiguously, matching the database compaction that drops the
// tombstoned graphs.
func (idx *Index) CompactedColumns() *Index {
	if idx.maskCount == 0 {
		return idx
	}
	n := idx.clone()
	n.Entries = make([][]Entry, len(idx.Entries))
	for fi, row := range idx.Entries {
		nr := make([]Entry, 0, len(row)-idx.maskCount)
		for gi, e := range row {
			if idx.masked[gi] {
				continue
			}
			nr = append(nr, e)
		}
		n.Entries[fi] = nr
	}
	n.masked, n.maskCount = nil, 0
	n.cols = idx.numGraphs() - idx.maskCount
	return n
}

// Masked reports whether column gi is masked (tombstoned).
func (idx *Index) Masked(gi int) bool { return idx.masked != nil && idx.masked[gi] }

// MaskedColumns returns the number of masked columns.
func (idx *Index) MaskedColumns() int { return idx.maskCount }
