package pmi

import (
	"fmt"
	"math/rand"

	"probgraph/internal/iso"
	"probgraph/internal/prob"
)

// AddGraph appends one column to the matrix: SIP bounds of every indexed
// feature against the new graph. The feature vocabulary is not re-mined —
// the standard trade-off for incremental maintenance of feature-based graph
// indexes (pruning power for the new graph is bounded by the existing
// features; rebuild periodically if the data distribution drifts).
//
// The column is computed in full before any row is extended, so a failed
// AddGraph leaves the index exactly as it was — no ragged rows.
func (idx *Index) AddGraph(pg *prob.PGraph, eng *prob.Engine) error {
	opt := idx.Opt.withDefaults()
	gi := 0
	if len(idx.Entries) > 0 {
		gi = len(idx.Entries[0])
	}
	b := &graphBuilder{
		opt: opt, pg: pg, eng: eng,
		rng: rand.New(rand.NewSource(opt.Seed ^ int64(gi)*0x9e3779b97f4a7c)),
	}
	column := make([]Entry, len(idx.Features))
	for fi, fg := range idx.Features {
		if !iso.Exists(fg, pg.G, nil) {
			continue
		}
		entry, err := b.bounds(fg)
		if err != nil {
			return fmt.Errorf("pmi: feature %d on new graph: %w", fi, err)
		}
		column[fi] = entry
	}
	for fi := range idx.Entries {
		idx.Entries[fi] = append(idx.Entries[fi], column[fi])
	}
	return nil
}
