package pmi

import (
	"bytes"
	"testing"

	"probgraph/internal/feature"
)

// TestWithColumnMatchesBuild: growing the matrix one copy-on-write column
// at a time produces exactly the entries a from-scratch Build over the
// final database would (the incremental path uses the same per-graph seed
// derivation), and no link of the chain mutates its predecessor.
func TestWithColumnMatchesBuild(t *testing.T) {
	graphs, engines, feats := buildSmallDB(t, 3, 6, true)
	full, err := Build(graphs, engines, feats, NewOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Seed the chain with the first 3 graphs. Build consumes Support
	// lists, which cover the full database — truncate them to the prefix
	// (Support is the exact containment list, so this equals mining over
	// the prefix with the same vocabulary); WithColumn re-checks
	// containment itself for the rest.
	prefixFeats := make([]*feature.Feature, len(feats))
	for i, f := range feats {
		cp := *f
		cp.Support = nil
		for _, gi := range f.Support {
			if gi < 3 {
				cp.Support = append(cp.Support, gi)
			}
		}
		prefixFeats[i] = &cp
	}
	base, err := Build(graphs[:3], engines[:3], prefixFeats, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	chain := []*Index{base}
	for gi := 3; gi < len(graphs); gi++ {
		next, err := chain[len(chain)-1].WithColumn(graphs[gi], engines[gi])
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, next)
	}
	for li, idx := range chain {
		wantCols := 3 + li
		for fi := range idx.Entries {
			if len(idx.Entries[fi]) != wantCols {
				t.Fatalf("link %d row %d: %d columns, want %d", li, fi, len(idx.Entries[fi]), wantCols)
			}
		}
	}
	final := chain[len(chain)-1]
	for fi := range full.Entries {
		for gi := range full.Entries[fi] {
			if full.Entries[fi][gi] != final.Entries[fi][gi] {
				t.Fatalf("entry (%d,%d): incremental %+v != built %+v",
					fi, gi, final.Entries[fi][gi], full.Entries[fi][gi])
			}
		}
	}
}

// TestMaskedColumnSaveAndCompact: a masked column serializes as
// uncontained, the predecessor index is untouched, save→load→save of the
// masked index is byte-stable, and CompactedColumns equals a matrix that
// never contained the column.
func TestMaskedColumnSaveAndCompact(t *testing.T) {
	graphs, engines, feats := buildSmallDB(t, 5, 5, false)
	idx, err := Build(graphs, engines, feats, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	const dead = 2
	masked := idx.WithMaskedColumn(dead)
	if idx.MaskedColumns() != 0 || idx.Masked(dead) {
		t.Fatal("masking mutated the predecessor")
	}
	if masked.MaskedColumns() != 1 || !masked.Masked(dead) {
		t.Fatal("mask not recorded")
	}
	// Idempotent and bulk-compatible.
	if again := masked.WithMaskedColumns([]int{dead}); again.MaskedColumns() != 1 {
		t.Fatal("re-masking double-counted")
	}

	var plain, maskedOut bytes.Buffer
	if err := idx.Save(&plain); err != nil {
		t.Fatal(err)
	}
	if err := masked.Save(&maskedOut); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(maskedOut.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for fi := range loaded.Entries {
		if loaded.Entries[fi][dead].Contained {
			t.Fatalf("row %d: masked column survived the save as contained", fi)
		}
	}
	var second bytes.Buffer
	if err := loaded.WithMaskedColumns([]int{dead}).Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(maskedOut.Bytes(), second.Bytes()) {
		t.Fatal("masked save→load→save not byte-stable")
	}

	compacted := masked.CompactedColumns()
	for fi := range compacted.Entries {
		if len(compacted.Entries[fi]) != len(graphs)-1 {
			t.Fatalf("row %d: %d columns after compaction, want %d",
				fi, len(compacted.Entries[fi]), len(graphs)-1)
		}
		for gi := range compacted.Entries[fi] {
			src := gi
			if gi >= dead {
				src = gi + 1
			}
			if compacted.Entries[fi][gi] != idx.Entries[fi][src] {
				t.Fatalf("compacted entry (%d,%d) != original (%d,%d)", fi, gi, fi, src)
			}
		}
	}
}

// TestWithReplacedColumn: replacing a column yields the entries the graph
// would have received at insertion time (same slot seed), and clears any
// mask on the slot.
func TestWithReplacedColumn(t *testing.T) {
	graphs, engines, feats := buildSmallDB(t, 7, 5, true)
	idx, err := Build(graphs, engines, feats, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	const slot = 1
	masked := idx.WithMaskedColumn(slot)
	repl, err := masked.WithReplacedColumn(slot, graphs[slot], engines[slot])
	if err != nil {
		t.Fatal(err)
	}
	if repl.Masked(slot) || repl.MaskedColumns() != 0 {
		t.Fatal("replacement did not clear the slot's mask")
	}
	// Replacing a slot with the graph it already holds reproduces the
	// built entries bitwise: the column seed depends only on the slot.
	for fi := range idx.Entries {
		if repl.Entries[fi][slot] != idx.Entries[fi][slot] {
			t.Fatalf("row %d: self-replacement changed the entry", fi)
		}
	}
}
