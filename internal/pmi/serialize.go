package pmi

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"probgraph/internal/graph"
)

// The index file format is line-oriented and self-describing:
//
//	pmi v1 <numFeatures> <numGraphs>
//	feature <idx>
//	  ... graph codec block (g/v/e/end) ...
//	row <idx> <numEntries>
//	<gi> <lower> <upper>        (contained entries only)
//	endrow
//
// Uncontained entries are implicit (the paper's ⟨0⟩).

// Save writes the index to w.
func (idx *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "pmi v1 %d %d\n", len(idx.Features), idx.numGraphs()); err != nil {
		return err
	}
	for fi, fg := range idx.Features {
		fmt.Fprintf(bw, "feature %d\n", fi)
		if err := graph.Encode(bw, fg); err != nil {
			return err
		}
		// Masked (tombstoned) columns serialize as uncontained — the
		// paper's ⟨0⟩ — so a dead graph's bounds leave the persisted
		// matrix; the loader re-applies the mask from the snapshot's
		// tombstone list, which keeps save→load→save byte-stable.
		contained := 0
		for gi, e := range idx.Entries[fi] {
			if e.Contained && !idx.Masked(gi) {
				contained++
			}
		}
		fmt.Fprintf(bw, "row %d %d\n", fi, contained)
		for gi, e := range idx.Entries[fi] {
			if e.Contained && !idx.Masked(gi) {
				fmt.Fprintf(bw, "%d %.17g %.17g\n", gi, e.Lower, e.Upper)
			}
		}
		fmt.Fprintln(bw, "endrow")
	}
	return bw.Flush()
}

// Load reads an index written by Save. The caller is responsible for
// pairing it with the database it was built from (numGraphs must match).
func Load(r io.Reader) (*Index, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return LoadFromScanner(sc)
}

// LoadFromScanner reads an index from a scanner shared with the caller,
// consuming exactly the index's lines — the snapshot codec embeds the Save
// format as one section of a larger file.
func LoadFromScanner(sc *bufio.Scanner) (*Index, error) {
	return LoadFromScannerCols(sc, -1)
}

// LoadFromScannerCols is LoadFromScanner with the column (graph) count the
// caller expects, validated against the header before any row is
// allocated — a corrupt or hostile header cannot force a huge allocation.
// wantCols < 0 skips the check (standalone Load, where the caller has no
// database to compare against).
func LoadFromScannerCols(sc *bufio.Scanner, wantCols int) (*Index, error) {
	header, err := readNonEmpty(sc)
	if err != nil {
		return nil, fmt.Errorf("pmi: reading header: %w", err)
	}
	var nf, ng int
	if _, err := fmt.Sscanf(header, "pmi v1 %d %d", &nf, &ng); err != nil {
		return nil, fmt.Errorf("pmi: bad header %q", header)
	}
	if nf < 0 || ng < 0 {
		return nil, fmt.Errorf("pmi: negative dimensions in header %q", header)
	}
	if wantCols >= 0 && ng != wantCols {
		return nil, fmt.Errorf("pmi: index covers %d graphs, want %d", ng, wantCols)
	}
	idx := &Index{cols: ng}
	dec := graph.NewDecoderFromScanner(sc)
	for fi := 0; fi < nf; fi++ {
		line, err := readNonEmpty(sc)
		if err != nil {
			return nil, err
		}
		if line != fmt.Sprintf("feature %d", fi) {
			return nil, fmt.Errorf("pmi: want 'feature %d', got %q", fi, line)
		}
		fg, err := dec.Decode()
		if err != nil {
			return nil, fmt.Errorf("pmi: feature %d graph: %w", fi, err)
		}
		idx.Features = append(idx.Features, fg)
		idx.Codes = append(idx.Codes, graph.CanonicalCode(fg))

		line, err = readNonEmpty(sc)
		if err != nil {
			return nil, err
		}
		var rowIdx, contained int
		if _, err := fmt.Sscanf(line, "row %d %d", &rowIdx, &contained); err != nil || rowIdx != fi {
			return nil, fmt.Errorf("pmi: bad row header %q for feature %d", line, fi)
		}
		row := make([]Entry, ng)
		for c := 0; c < contained; c++ {
			line, err = readNonEmpty(sc)
			if err != nil {
				return nil, err
			}
			fields := strings.Fields(line)
			if len(fields) != 3 {
				return nil, fmt.Errorf("pmi: bad entry line %q", line)
			}
			gi, err1 := strconv.Atoi(fields[0])
			lo, err2 := strconv.ParseFloat(fields[1], 64)
			hi, err3 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil || err3 != nil || gi < 0 || gi >= ng {
				return nil, fmt.Errorf("pmi: bad entry %q", line)
			}
			row[gi] = Entry{Contained: true, Lower: lo, Upper: hi}
		}
		line, err = readNonEmpty(sc)
		if err != nil {
			return nil, err
		}
		if line != "endrow" {
			return nil, fmt.Errorf("pmi: want 'endrow', got %q", line)
		}
		idx.Entries = append(idx.Entries, row)
	}
	return idx, nil
}

// readNonEmpty reads the next non-blank, non-comment line, trimmed.
func readNonEmpty(sc *bufio.Scanner) (string, error) {
	return graph.ScanNonEmpty(sc, "pmi")
}
