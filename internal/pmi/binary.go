package pmi

import (
	"fmt"

	"probgraph/internal/graph"
	"probgraph/internal/snapbin"
)

// The binary section is the pgsnap v4 counterpart of Save/LoadFromScanner:
// feature graphs, a contained-bitmap, and the bounds of the contained
// entries as two float64 slabs (row-major, bit-order), bitwise-exact by
// construction. Masked (tombstoned) columns serialize as uncontained —
// exactly like the text codec — and the snapshot loader re-applies the
// mask from the tombstone list, which keeps save→load→save byte-stable.
//
// Unlike the structural slabs, the PMI is materialized into row-major
// Entries at decode time (one memcpy-scale pass): the Entry layout is
// pointer-free but interleaved, and keeping the public Entries [][]Entry
// shape is worth more than zero-copy here.

// EncodeBinary appends the index to a snapshot section:
//
//	u32 nf, u32 ng
//	nf binary graph records (the features)
//	contained bitmap, u32 length-prefixed, bit fi*ng+gi LSB-first
//	f64 slab: lower bounds of the contained entries, row-major
//	f64 slab: upper bounds, same order
func (idx *Index) EncodeBinary(s *snapbin.Section) {
	ng := idx.numGraphs()
	s.U32(uint32(len(idx.Features)))
	s.U32(uint32(ng))
	for _, f := range idx.Features {
		graph.EncodeBinary(s, f)
	}
	bitmap := make([]byte, (len(idx.Features)*ng+7)/8)
	var lo, hi []float64
	for fi := range idx.Features {
		for gi, e := range idx.Entries[fi] {
			if e.Contained && !idx.Masked(gi) {
				bit := fi*ng + gi
				bitmap[bit/8] |= 1 << (bit % 8)
				lo = append(lo, e.Lower)
				hi = append(hi, e.Upper)
			}
		}
	}
	s.Bytes(bitmap)
	s.Align8()
	s.F64s(lo)
	s.F64s(hi)
}

// DecodeBinary reads an index written by EncodeBinary. wantCols is the
// graph count the caller knows from the enclosing snapshot; it is
// validated before any row is allocated, so a corrupt header cannot force
// a huge allocation.
func DecodeBinary(c *snapbin.Cursor, wantCols int) (*Index, error) {
	nf := c.Int()
	ng := c.Int()
	if c.Err() != nil {
		return nil, fmt.Errorf("pmi: binary header: %w", c.Err())
	}
	if ng != wantCols {
		return nil, fmt.Errorf("pmi: index covers %d graphs, snapshot has %d", ng, wantCols)
	}
	idx := &Index{cols: ng}
	for fi := 0; fi < nf; fi++ {
		fg, err := graph.DecodeBinary(c)
		if err != nil {
			return nil, fmt.Errorf("pmi: feature %d: %w", fi, err)
		}
		idx.Features = append(idx.Features, fg)
		idx.Codes = append(idx.Codes, graph.CanonicalCode(fg))
	}
	bitmap := c.Bytes()
	c.Align8()
	lo := c.F64s()
	hi := c.F64s()
	if c.Err() != nil {
		return nil, fmt.Errorf("pmi: binary payload: %w", c.Err())
	}
	if len(bitmap) != (nf*ng+7)/8 {
		return nil, fmt.Errorf("pmi: bitmap has %d bytes, want %d", len(bitmap), (nf*ng+7)/8)
	}
	contained := 0
	for _, b := range bitmap {
		for ; b != 0; b &= b - 1 {
			contained++
		}
	}
	if len(lo) != contained || len(hi) != contained {
		return nil, fmt.Errorf("pmi: %d contained bits but %d/%d bounds", contained, len(lo), len(hi))
	}
	next := 0
	for fi := 0; fi < nf; fi++ {
		row := make([]Entry, ng)
		for gi := 0; gi < ng; gi++ {
			bit := fi*ng + gi
			if bitmap[bit/8]&(1<<(bit%8)) != 0 {
				row[gi] = Entry{Contained: true, Lower: lo[next], Upper: hi[next]}
				next++
			}
		}
		idx.Entries = append(idx.Entries, row)
	}
	return idx, nil
}
