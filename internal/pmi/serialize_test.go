package pmi

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	graphs, engines, feats := buildSmallDB(t, 88, 5, true)
	idx, err := Build(graphs, engines, feats, NewOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFeatures() != idx.NumFeatures() {
		t.Fatalf("features %d vs %d", back.NumFeatures(), idx.NumFeatures())
	}
	for fi := range idx.Features {
		if back.Codes[fi] != idx.Codes[fi] {
			t.Fatalf("feature %d code mismatch", fi)
		}
		if len(back.Entries[fi]) != len(idx.Entries[fi]) {
			t.Fatalf("feature %d row length mismatch", fi)
		}
		for gi := range idx.Entries[fi] {
			a, b := idx.Entries[fi][gi], back.Entries[fi][gi]
			if a.Contained != b.Contained || a.Lower != b.Lower || a.Upper != b.Upper {
				t.Fatalf("entry (%d,%d): %+v vs %+v", fi, gi, a, b)
			}
		}
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"",                        // empty
		"bogus header\n",          // bad magic
		"pmi v1 1 2\n",            // truncated
		"pmi v1 1 2\nfeature 5\n", // wrong feature index
		"pmi v1 1 2\nfeature 0\ng f\nv 0 a\nend\nrow 0 1\nbadline\nendrow\n",   // bad entry
		"pmi v1 1 2\nfeature 0\ng f\nv 0 a\nend\nrow 0 1\n9 0.1 0.2\nendrow\n", // gi out of range
	}
	for i, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSaveLoadEmptyIndex(t *testing.T) {
	idx := &Index{}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFeatures() != 0 {
		t.Fatal("empty index round trip failed")
	}
}
