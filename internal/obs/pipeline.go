package obs

import (
	"context"
	"time"
)

// PipelineStats is the per-query stage payload the engine reports at
// query exit — a decoupled mirror of core.Stats, so core can bridge its
// instrumentation into the registry without obs importing core.
type PipelineStats struct {
	StructFilterCandidates int
	StructConfirmed        int
	PrunedByUpper          int
	AcceptedByLower        int
	VerifyCandidates       int
	Answers                int
	RelaxedQueries         int

	TimeStruct time.Duration
	TimeProb   time.Duration
	TimeVerify time.Duration
}

// Pipeline aggregates query-pipeline counters across all queries served
// by one process: candidate flow through the filter → prune → verify
// funnel, and per-stage compute histograms. The server attaches it to
// each request context (ContextWithPipeline); core's query exit observes
// into it — one bridge, so /metrics and per-query stats can't diverge.
type Pipeline struct {
	StructCandidates *Counter
	StructConfirmed  *Counter
	PrunedUpper      *Counter
	AcceptedLower    *Counter
	Verified         *Counter
	Answers          *Counter
	Relaxed          *Counter

	StageStruct *Histogram
	StageProb   *Histogram
	StageVerify *Histogram
}

// NewPipeline registers the pipeline families on r.
func NewPipeline(r *Registry) *Pipeline {
	return &Pipeline{
		StructCandidates: r.Counter("pg_struct_filter_candidates_total",
			"Candidates emitted by the structural feature-miss filter, before exact confirmation."),
		StructConfirmed: r.Counter("pg_struct_confirmed_total",
			"Structural candidates confirmed by exact subgraph-distance check (|SCq|)."),
		PrunedUpper: r.Counter("pg_candidates_pruned_total",
			"Candidates discarded by the PMI upper bound (Pruning 1).", "rule", "upper"),
		AcceptedLower: r.Counter("pg_candidates_accepted_total",
			"Candidates accepted outright by the PMI lower bound (Pruning 2).", "rule", "lower"),
		Verified: r.Counter("pg_candidates_verified_total",
			"Candidates sent to SSP verification."),
		Answers: r.Counter("pg_answers_total",
			"Answers returned across all queries."),
		Relaxed: r.Counter("pg_relaxed_queries_total",
			"Relaxed queries generated (|U|) across all queries."),
		StageStruct: r.Histogram("pg_stage_duration_seconds",
			"Per-query compute spent in each pipeline stage.", nil, "stage", "struct"),
		StageProb: r.Histogram("pg_stage_duration_seconds",
			"Per-query compute spent in each pipeline stage.", nil, "stage", "prob"),
		StageVerify: r.Histogram("pg_stage_duration_seconds",
			"Per-query compute spent in each pipeline stage.", nil, "stage", "verify"),
	}
}

// Observe folds one query's stats into the counters. Safe for concurrent
// use; nil receivers are ignored so call sites need no guard.
func (p *Pipeline) Observe(s PipelineStats) {
	if p == nil {
		return
	}
	p.StructCandidates.Add(int64(s.StructFilterCandidates))
	p.StructConfirmed.Add(int64(s.StructConfirmed))
	p.PrunedUpper.Add(int64(s.PrunedByUpper))
	p.AcceptedLower.Add(int64(s.AcceptedByLower))
	p.Verified.Add(int64(s.VerifyCandidates))
	p.Answers.Add(int64(s.Answers))
	p.Relaxed.Add(int64(s.RelaxedQueries))
	p.StageStruct.Observe(s.TimeStruct.Seconds())
	p.StageProb.Observe(s.TimeProb.Seconds())
	p.StageVerify.Observe(s.TimeVerify.Seconds())
}

type pipelineCtxKey struct{}

// ContextWithPipeline attaches p so the engine's query exit can report
// stage stats. Attaching nil returns ctx unchanged.
func ContextWithPipeline(ctx context.Context, p *Pipeline) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, pipelineCtxKey{}, p)
}

// PipelineFrom returns the attached pipeline, or nil. Never allocates.
func PipelineFrom(ctx context.Context) *Pipeline {
	p, _ := ctx.Value(pipelineCtxKey{}).(*Pipeline)
	return p
}
