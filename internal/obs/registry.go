// Package obs is the engine's zero-dependency observability layer:
// Prometheus-style metric instruments with text exposition (registry.go),
// lightweight per-query tracing carried through context.Context (trace.go),
// the pipeline-stage counter bridge core reports into at query exit
// (pipeline.go), a bounded slow-query log (slowlog.go), structured-logging
// setup (log.go), and CPU/heap profile helpers for the CLIs (profile.go).
//
// Everything here is stdlib-only by design — the serving layer must stay
// deployable from a bare `go build` — and every instrument is safe for
// concurrent use. The tracing side is built around a nil-safe value type
// (Span): with no trace attached to the context, every call is a no-op on
// a zero value and the query hot path allocates nothing.
package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds — spanning sub-millisecond cache hits to multi-second scans.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). Instruments are created once at
// setup time and updated lock-free; WritePrometheus takes the registry
// lock only to walk the family list.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// family groups every series sharing one metric name under a single
// # HELP / # TYPE header, as the exposition format requires.
type family struct {
	name, help, typ string
	counters        []*Counter
	gauges          []*Gauge
	histograms      []*Histogram
	collect         func(emit func(labels string, value float64))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers (or extends) a monotonically increasing counter
// family. labels are alternating key/value pairs naming this series.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	f := r.family(name, help, "counter")
	c := &Counter{labels: renderLabels(labels)}
	r.mu.Lock()
	f.counters = append(f.counters, c)
	r.mu.Unlock()
	return c
}

// Gauge registers a gauge series that can go up and down.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	f := r.family(name, help, "gauge")
	g := &Gauge{labels: renderLabels(labels)}
	r.mu.Lock()
	f.gauges = append(f.gauges, g)
	r.mu.Unlock()
	return g
}

// Histogram registers a fixed-bucket histogram series. buckets are upper
// bounds, ascending; the +Inf bucket is implicit. A nil buckets slice
// selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	f := r.family(name, help, "histogram")
	h := &Histogram{labels: renderLabels(labels), bounds: buckets,
		counts: make([]atomic.Int64, len(buckets)+1)}
	r.mu.Lock()
	f.histograms = append(f.histograms, h)
	r.mu.Unlock()
	return h
}

// Collect registers a callback-backed family: fn is invoked at scrape
// time and emits zero or more samples (labels rendered with Labels, or
// ""). Use it for values whose source of truth lives elsewhere — cache
// counters, database shape, runtime stats — so /metrics and any JSON
// status endpoint reading the same source can never disagree. typ is
// "counter" or "gauge".
func (r *Registry) Collect(name, typ, help string, fn func(emit func(labels string, value float64))) {
	f := r.family(name, help, typ)
	r.mu.Lock()
	f.collect = fn
	r.mu.Unlock()
}

// Labels renders alternating key/value pairs into the exposition label
// syntax used by Collect emitters: Labels("op", "add") → `op="add"`.
func Labels(kv ...string) string { return renderLabels(kv) }

func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing int64.
type Counter struct {
	labels string
	v      atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can move in both directions.
type Gauge struct {
	labels string
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets and tracks their sum.
type Histogram struct {
	labels  string
	bounds  []float64
	counts  []atomic.Int64 // one per bound + the +Inf overflow
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
}

// WritePrometheus renders every family in registration order in the text
// exposition format. Scrapes racing concurrent updates see a consistent
// enough snapshot for monitoring: counters are monotone, and histogram
// bucket counts may trail the sum by in-flight observations.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, c := range f.counters {
			writeSample(w, f.name, c.labels, float64(c.Value()))
		}
		for _, g := range f.gauges {
			writeSample(w, f.name, g.labels, g.Value())
		}
		for _, h := range f.histograms {
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				writeSample(w, f.name+"_bucket", joinLabels(h.labels, `le="`+formatValue(bound)+`"`), float64(cum))
			}
			cum += h.counts[len(h.bounds)].Load()
			writeSample(w, f.name+"_bucket", joinLabels(h.labels, `le="+Inf"`), float64(cum))
			writeSample(w, f.name+"_sum", h.labels, h.Sum())
			writeSample(w, f.name+"_count", h.labels, float64(cum))
		}
		if f.collect != nil {
			f.collect(func(labels string, value float64) {
				writeSample(w, f.name, labels, value)
			})
		}
	}
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// RegisterGoRuntime adds the standard Go process families (goroutines,
// heap, GC) as scrape-time collectors — one runtime.ReadMemStats per
// scrape, zero steady-state cost.
func (r *Registry) RegisterGoRuntime() {
	r.Collect("go_goroutines", "gauge", "Number of goroutines.",
		func(emit func(string, float64)) { emit("", float64(runtime.NumGoroutine())) })
	var msMu sync.Mutex
	var ms runtime.MemStats
	read := func(f func(*runtime.MemStats) float64) float64 {
		msMu.Lock()
		defer msMu.Unlock()
		runtime.ReadMemStats(&ms)
		return f(&ms)
	}
	r.Collect("go_memstats_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.",
		func(emit func(string, float64)) {
			emit("", read(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
		})
	r.Collect("go_memstats_heap_objects", "gauge", "Number of allocated heap objects.",
		func(emit func(string, float64)) {
			emit("", read(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }))
		})
	r.Collect("go_memstats_alloc_bytes_total", "counter", "Cumulative bytes allocated for heap objects.",
		func(emit func(string, float64)) {
			emit("", read(func(m *runtime.MemStats) float64 { return float64(m.TotalAlloc) }))
		})
	r.Collect("go_gc_cycles_total", "counter", "Completed GC cycles.",
		func(emit func(string, float64)) {
			emit("", read(func(m *runtime.MemStats) float64 { return float64(m.NumGC) }))
		})
	r.Collect("go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.",
		func(emit func(string, float64)) {
			emit("", read(func(m *runtime.MemStats) float64 { return float64(m.PauseTotalNs) / 1e9 }))
		})
	r.Collect("go_gomaxprocs", "gauge", "GOMAXPROCS.",
		func(emit func(string, float64)) { emit("", float64(runtime.GOMAXPROCS(0))) })
}
