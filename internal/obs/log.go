package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a structured slog.Logger for the -log-format /
// -log-level CLI flags: format is "text" or "json", level one of debug,
// info, warn, error. This is the one place the cmds construct loggers,
// so every binary emits the same shape.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lvl, err := ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}

// ParseLogLevel maps a -log-level flag value to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
	}
}
