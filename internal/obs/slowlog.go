package obs

import (
	"sync"
	"time"
)

// SlowEntry is one slow-query record served at /debug/slowlog.
type SlowEntry struct {
	TraceID    string    `json:"trace_id"`
	Endpoint   string    `json:"endpoint"`
	Time       time.Time `json:"time"`
	DurationMS float64   `json:"duration_ms"`
	Trace      *SpanNode `json:"trace,omitempty"`
}

// Slowlog keeps the N slowest queries the process has served, duration
// descending. Offers below the current floor are rejected in O(1) once
// the log is full, so the per-request cost of a fast query is one mutex
// round and a comparison.
type Slowlog struct {
	mu      sync.Mutex
	max     int
	entries []SlowEntry
}

// NewSlowlog returns a log keeping the max slowest entries; max <= 0
// returns nil, and a nil Slowlog ignores every call.
func NewSlowlog(max int) *Slowlog {
	if max <= 0 {
		return nil
	}
	return &Slowlog{max: max}
}

// Admits reports whether an entry of this duration would currently be
// kept — the cheap pre-check that lets callers skip building the span
// tree for queries that won't make the log. Inherently racy against
// concurrent offers; the worst case is one wasted tree build.
func (sl *Slowlog) Admits(durationMS float64) bool {
	if sl == nil {
		return false
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return len(sl.entries) < sl.max || durationMS > sl.entries[len(sl.entries)-1].DurationMS
}

// Offer inserts e if it ranks among the max slowest seen so far.
func (sl *Slowlog) Offer(e SlowEntry) {
	if sl == nil {
		return
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if len(sl.entries) >= sl.max && e.DurationMS <= sl.entries[len(sl.entries)-1].DurationMS {
		return
	}
	pos := len(sl.entries)
	for pos > 0 && sl.entries[pos-1].DurationMS < e.DurationMS {
		pos--
	}
	sl.entries = append(sl.entries, SlowEntry{})
	copy(sl.entries[pos+1:], sl.entries[pos:])
	sl.entries[pos] = e
	if len(sl.entries) > sl.max {
		sl.entries = sl.entries[:sl.max]
	}
}

// Snapshot returns the current entries, slowest first.
func (sl *Slowlog) Snapshot() []SlowEntry {
	if sl == nil {
		return []SlowEntry{}
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return append([]SlowEntry(nil), sl.entries...)
}
