package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// stop function; the CLIs (-cpuprofile on pgbench, pggen) defer stop()
// around their workload. An empty path is a no-op.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// Profiles bundles a CLI run's optional CPU and heap profile outputs so
// flushing is one idempotent call. The CLIs both defer Flush (covering
// every structured return) and call it explicitly before code that must
// not be measured; only the first call does work, so the two compose.
// The zero/nil Profiles flushes as a no-op.
type Profiles struct {
	mem     string
	stopCPU func()
	flushed bool
}

// StartProfiles begins a CPU profile to cpu and arranges a heap profile
// to mem at Flush time. Either path may be empty (that output is
// skipped).
func StartProfiles(cpu, mem string) (*Profiles, error) {
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		return nil, err
	}
	return &Profiles{mem: mem, stopCPU: stop}, nil
}

// Flush stops the CPU profile and writes the heap profile. Idempotent
// and nil-safe: callers defer it for safety and may also invoke it
// early, at the precise point the measured region ends.
func (p *Profiles) Flush() error {
	if p == nil || p.flushed {
		return nil
	}
	p.flushed = true
	p.stopCPU()
	return WriteHeapProfile(p.mem)
}

// WriteHeapProfile dumps an allocation profile to path (after a GC, so
// the numbers reflect live heap, not collection timing). An empty path
// is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}
