package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Trace records the span tree of one query: a span per pipeline stage
// (struct filter → PMI prune → relax → verify → top-k commit), with
// per-shard children under the structural stage. It is carried through
// context.Context (ContextWithSpan) so the engine's layers can attach
// spans without new parameters, and it is safe for concurrent use —
// parallel shard scans and candidate workers append under one mutex at
// stage/shard granularity, never per candidate.
//
// Cost model: with no trace attached, SpanFrom returns the zero Span and
// every Span method is a no-op — the disabled path does zero allocation
// and zero synchronization (pinned by core's AllocsPerRun tests). With a
// trace attached, cost is a bounded handful of appends per query,
// independent of candidate count.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []SpanData
}

// SpanData is one recorded span. Parent indexes Spans() (-1 for roots);
// Start is the offset from the trace's creation, Duration is valid once
// Done is set, and Count carries an optional item count (candidates
// confirmed, relaxed queries, shard emissions, ...).
type SpanData struct {
	Name     string
	Parent   int
	Start    time.Duration
	Duration time.Duration
	Count    int64
	Done     bool
}

// Trace IDs: a process-random base whisked with a counter — unique within
// and (with high probability) across processes, no per-trace entropy read.
var (
	traceBase = func() uint64 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano())
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
	traceSeq atomic.Uint64
)

// NewTrace starts an empty trace with a fresh ID; its clock starts now.
func NewTrace() *Trace {
	z := traceBase + traceSeq.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z ^= z >> 27
	return &Trace{id: fmt.Sprintf("%016x", z), start: time.Now()}
}

// ID returns the trace identifier surfaced as X-PG-Trace-Id.
func (t *Trace) ID() string { return t.id }

// Span is a nil-safe handle on one trace span. The zero Span (no trace)
// ignores every operation, which is what keeps the untraced hot path
// allocation- and lock-free.
type Span struct {
	tr  *Trace
	idx int32
}

// Active reports whether the span belongs to a live trace.
func (s Span) Active() bool { return s.tr != nil }

// Trace returns the owning trace, nil for the zero Span.
func (s Span) Trace() *Trace { return s.tr }

func (t *Trace) newSpan(name string, parent int) Span {
	now := time.Since(t.start)
	t.mu.Lock()
	idx := len(t.spans)
	t.spans = append(t.spans, SpanData{Name: name, Parent: parent, Start: now})
	t.mu.Unlock()
	return Span{tr: t, idx: int32(idx)}
}

// Root opens a top-level span (Parent -1).
func (t *Trace) Root(name string) Span { return t.newSpan(name, -1) }

// Child opens a span under s. On the zero Span it returns the zero Span.
func (s Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	return s.tr.newSpan(name, int(s.idx))
}

// End closes the span. No-op on the zero Span; closing twice keeps the
// first duration.
func (s Span) End() { s.end(0, false) }

// EndCount closes the span and records an item count.
func (s Span) EndCount(n int64) { s.end(n, true) }

func (s Span) end(n int64, setCount bool) {
	if s.tr == nil {
		return
	}
	now := time.Since(s.tr.start)
	s.tr.mu.Lock()
	sp := &s.tr.spans[s.idx]
	if !sp.Done {
		sp.Done = true
		sp.Duration = now - sp.Start
	}
	if setCount {
		sp.Count = n
	}
	s.tr.mu.Unlock()
}

// Spans returns a copy of the recorded spans in creation order.
func (t *Trace) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanData(nil), t.spans...)
}

// OpenSpans counts spans not yet ended — 0 after any complete query run,
// cancelled ones included (every stage ends its span on every exit path).
func (t *Trace) OpenSpans() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	open := 0
	for i := range t.spans {
		if !t.spans[i].Done {
			open++
		}
	}
	return open
}

// SpanNode is the JSON-marshalable span tree inlined into responses by
// the trace=1 request knob and stored in the slowlog.
type SpanNode struct {
	Name       string      `json:"name"`
	StartMS    float64     `json:"start_ms"`
	DurationMS float64     `json:"duration_ms"`
	Count      int64       `json:"count,omitempty"`
	Children   []*SpanNode `json:"children,omitempty"`
}

// Tree assembles the span tree. Spans still open (a scrape racing a live
// query) report their duration as of now. Multiple roots are wrapped
// under a synthetic "trace" node; the usual single root is returned
// directly.
func (t *Trace) Tree() *SpanNode {
	now := time.Since(t.start)
	t.mu.Lock()
	spans := append([]SpanData(nil), t.spans...)
	t.mu.Unlock()

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	nodes := make([]*SpanNode, len(spans))
	for i, sp := range spans {
		d := sp.Duration
		if !sp.Done {
			d = now - sp.Start
		}
		nodes[i] = &SpanNode{Name: sp.Name, StartMS: ms(sp.Start), DurationMS: ms(d), Count: sp.Count}
	}
	var roots []*SpanNode
	for i, sp := range spans {
		if sp.Parent >= 0 && sp.Parent < len(nodes) {
			nodes[sp.Parent].Children = append(nodes[sp.Parent].Children, nodes[i])
		} else {
			roots = append(roots, nodes[i])
		}
	}
	switch len(roots) {
	case 0:
		return nil
	case 1:
		return roots[0]
	}
	return &SpanNode{Name: "trace", DurationMS: ms(now), Children: roots}
}

type spanCtxKey struct{}

// ContextWithSpan attaches s as the context's current span — the parent
// that downstream stages hang their children from. Attaching the zero
// Span returns ctx unchanged, so untraced calls pay nothing.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if s.tr == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the context's current span, or the zero Span. The
// lookup itself never allocates.
func SpanFrom(ctx context.Context) Span {
	s, _ := ctx.Value(spanCtxKey{}).(Span)
	return s
}

// TraceFrom returns the trace the context's span belongs to, or nil.
func TraceFrom(ctx context.Context) *Trace { return SpanFrom(ctx).tr }
