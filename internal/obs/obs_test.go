package obs

import (
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// expositionLine matches one valid Prometheus text-format line: a HELP or
// TYPE comment, or a sample with optional labels and a float value.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+` +
		`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[-+]?Inf|[-+]?[0-9].*))$`)

func scrape(t *testing.T, r *Registry) map[string]string {
	t.Helper()
	var b strings.Builder
	r.WritePrometheus(&b)
	out := make(map[string]string)
	for _, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Fatalf("malformed exposition line: %q", line)
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		out[line[:sp]] = line[sp+1:]
	}
	return out
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pg_test_total", "Test counter.", "endpoint", "query")
	g := r.Gauge("pg_test_gauge", "Test gauge.")
	h := r.Histogram("pg_test_seconds", "Test histogram.", []float64{0.01, 0.1, 1})
	r.Collect("pg_test_dyn", "gauge", "Dynamic.", func(emit func(string, float64)) {
		emit(Labels("generation", "3"), 7)
	})
	r.RegisterGoRuntime()

	c.Add(2)
	c.Inc()
	g.Set(1.5)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	m := scrape(t, r)
	for key, want := range map[string]string{
		`pg_test_total{endpoint="query"}`:   "3",
		`pg_test_gauge`:                     "1.5",
		`pg_test_seconds_bucket{le="0.01"}`: "0",
		`pg_test_seconds_bucket{le="0.1"}`:  "2",
		`pg_test_seconds_bucket{le="1"}`:    "2",
		`pg_test_seconds_bucket{le="+Inf"}`: "3",
		`pg_test_seconds_count`:             "3",
		`pg_test_seconds_sum`:               "5.1",
		`pg_test_dyn{generation="3"}`:       "7",
	} {
		if got := m[key]; got != want {
			t.Errorf("%s = %q, want %q", key, got, want)
		}
	}
	if _, ok := m["go_goroutines"]; !ok {
		t.Error("go_goroutines missing from runtime collectors")
	}
}

func TestHistogramBoundaryAndConcurrency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", []float64{1, 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1) // exactly on a bound: le="1" is inclusive
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	m := scrape(t, r)
	if m[`h_seconds_bucket{le="1"}`] != "8000" {
		t.Fatalf(`le="1" bucket = %s, want 8000 (upper bounds are inclusive)`, m[`h_seconds_bucket{le="1"}`])
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "c", "name", "a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `esc_total{name="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace()
	if tr.ID() == "" || NewTrace().ID() == tr.ID() {
		t.Fatal("trace IDs must be non-empty and distinct")
	}
	root := tr.Root("query")
	ctx := ContextWithSpan(context.Background(), root)

	stage := SpanFrom(ctx).Child("struct_filter")
	sctx := ContextWithSpan(ctx, stage)
	for i := 0; i < 3; i++ {
		sh := SpanFrom(sctx).Child("postings_shard")
		sh.EndCount(int64(i))
	}
	stage.EndCount(9)
	root.End()

	spans := tr.Spans()
	if len(spans) != 5 {
		t.Fatalf("got %d spans, want 5", len(spans))
	}
	if spans[0].Parent != -1 || spans[1].Parent != 0 {
		t.Fatalf("parent chain wrong: %+v", spans[:2])
	}
	for i := 2; i < 5; i++ {
		if spans[i].Parent != 1 {
			t.Fatalf("shard span %d parent = %d, want 1", i, spans[i].Parent)
		}
	}
	if tr.OpenSpans() != 0 {
		t.Fatalf("%d open spans after End, want 0", tr.OpenSpans())
	}
	tree := tr.Tree()
	if tree.Name != "query" || len(tree.Children) != 1 ||
		tree.Children[0].Name != "struct_filter" || len(tree.Children[0].Children) != 3 {
		t.Fatalf("tree shape wrong: %+v", tree)
	}
	if tree.Children[0].Count != 9 {
		t.Fatalf("struct_filter count = %d, want 9", tree.Children[0].Count)
	}
}

func TestZeroSpanIsInert(t *testing.T) {
	var s Span
	if s.Active() || s.Trace() != nil {
		t.Fatal("zero span must be inactive")
	}
	c := s.Child("x") // must not panic, must stay inert
	c.End()
	c.EndCount(3)
	ctx := context.Background()
	if ContextWithSpan(ctx, s) != ctx {
		t.Fatal("attaching the zero span must return ctx unchanged")
	}
	if SpanFrom(ctx).Active() || TraceFrom(ctx) != nil {
		t.Fatal("empty context must yield the zero span")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := SpanFrom(ctx)
		sp.Child("y").End()
		_ = ContextWithSpan(ctx, sp)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per op, want 0", allocs)
	}
}

func TestSlowlogKeepsSlowest(t *testing.T) {
	sl := NewSlowlog(3)
	for _, d := range []float64{5, 1, 9, 3, 7, 2} {
		if sl.Admits(d) {
			sl.Offer(SlowEntry{TraceID: "t", DurationMS: d, Time: time.Now()})
		}
	}
	got := sl.Snapshot()
	if len(got) != 3 || got[0].DurationMS != 9 || got[1].DurationMS != 7 || got[2].DurationMS != 5 {
		t.Fatalf("slowlog = %+v, want durations [9 7 5]", got)
	}
	if sl.Admits(4) {
		t.Fatal("4ms must not be admitted past floor 5")
	}
	var nilLog *Slowlog
	nilLog.Offer(SlowEntry{}) // nil log ignores everything
	if nilLog.Admits(1) || len(nilLog.Snapshot()) != 0 {
		t.Fatal("nil slowlog must be inert")
	}
}

func TestPipelineObserve(t *testing.T) {
	r := NewRegistry()
	p := NewPipeline(r)
	p.Observe(PipelineStats{
		StructFilterCandidates: 10, StructConfirmed: 6,
		PrunedByUpper: 3, AcceptedByLower: 1, VerifyCandidates: 2, Answers: 2,
		RelaxedQueries: 4, TimeStruct: time.Millisecond,
	})
	if p.StructCandidates.Value() != 10 || p.PrunedUpper.Value() != 3 || p.Answers.Value() != 2 {
		t.Fatalf("pipeline counters wrong: %d %d %d",
			p.StructCandidates.Value(), p.PrunedUpper.Value(), p.Answers.Value())
	}
	if p.StageStruct.Count() != 1 {
		t.Fatalf("stage histogram count = %d, want 1", p.StageStruct.Count())
	}
	var nilP *Pipeline
	nilP.Observe(PipelineStats{}) // nil pipeline ignores everything
	ctx := context.Background()
	if ContextWithPipeline(ctx, nil) != ctx || PipelineFrom(ctx) != nil {
		t.Fatal("nil pipeline context plumbing must be inert")
	}
	ctx2 := ContextWithPipeline(ctx, p)
	if PipelineFrom(ctx2) != p {
		t.Fatal("pipeline not recovered from context")
	}
}

func TestNewLogger(t *testing.T) {
	var b strings.Builder
	lg, err := NewLogger(&b, "json", "debug")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "k", 1)
	if !strings.Contains(b.String(), `"msg":"hello"`) || !strings.Contains(b.String(), `"k":1`) {
		t.Fatalf("json log line wrong: %s", b.String())
	}
	if _, err := NewLogger(&b, "yaml", "info"); err == nil {
		t.Fatal("unknown format must error")
	}
	if _, err := NewLogger(&b, "text", "loud"); err == nil {
		t.Fatal("unknown level must error")
	}
}
