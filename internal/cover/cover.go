// Package cover implements the weighted set cover approximation used to
// compute the tightest SSP upper bound Usim(q) (paper Definition 10 and
// Algorithm 1): elements are the relaxed queries rq1..rqa, sets are the
// indexed features' supersets with weight UpperB(f), and the greedy
// ln|U|-approximate cover minimizes the summed upper bounds.
package cover

import "math"

// Instance is a weighted set cover problem over elements 0..NumElements-1.
type Instance struct {
	NumElements int
	Sets        [][]int   // Sets[j] lists the elements covered by set j
	Weights     []float64 // Weights[j] >= 0
}

// Result is the greedy cover.
type Result struct {
	Chosen []int   // indices of chosen sets, in selection order
	Weight float64 // total weight of the chosen sets
	Full   bool    // false when the union of all sets cannot cover U
}

// Scratch holds Greedy's working buffers so hot callers can reuse them
// across calls and run allocation-free. The zero value is ready to use.
type Scratch struct {
	covered []bool
	used    []bool
	chosen  []int
}

// Greedy runs the classic weighted greedy: repeatedly pick the set
// minimizing weight / newly-covered-count (paper Algorithm 1's γ(s)).
// If the instance is infeasible it covers what it can and reports
// Full=false.
func Greedy(in Instance) Result {
	return GreedyScratch(in, &Scratch{})
}

// GreedyScratch is Greedy with caller-owned buffers: it allocates nothing
// once the scratch has grown to the instance size. Result.Chosen aliases
// the scratch and is valid only until its next use.
func GreedyScratch(in Instance, sc *Scratch) Result {
	covered := clearedBools(&sc.covered, in.NumElements)
	used := clearedBools(&sc.used, len(in.Sets))
	remaining := in.NumElements
	var res Result
	for remaining > 0 {
		best, bestGamma, bestGain := -1, math.Inf(1), 0
		for j, s := range in.Sets {
			if used[j] {
				continue
			}
			gain := 0
			for _, e := range s {
				if !covered[e] {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			gamma := in.Weights[j] / float64(gain)
			if gamma < bestGamma || (gamma == bestGamma && gain > bestGain) {
				best, bestGamma, bestGain = j, gamma, gain
			}
		}
		if best < 0 {
			res.Chosen = chosenList(used, sc)
			res.Weight = totalWeight(in, used)
			res.Full = false
			return res
		}
		used[best] = true
		for _, e := range in.Sets[best] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	res.Chosen = chosenList(used, sc)
	res.Weight = totalWeight(in, used)
	res.Full = true
	return res
}

// clearedBools resizes *buf to n all-false entries, reusing capacity.
func clearedBools(buf *[]bool, n int) []bool {
	b := *buf
	if cap(b) < n {
		b = make([]bool, n)
	} else {
		b = b[:n]
		for i := range b {
			b[i] = false
		}
	}
	*buf = b
	return b
}

func chosenList(used []bool, sc *Scratch) []int {
	out := sc.chosen[:0]
	for j, u := range used {
		if u {
			out = append(out, j)
		}
	}
	sc.chosen = out
	if len(out) == 0 {
		return nil
	}
	return out
}

func totalWeight(in Instance, used []bool) float64 {
	w := 0.0
	for j, u := range used {
		if u {
			w += in.Weights[j]
		}
	}
	return w
}

// BruteForceOptimal exhaustively finds the minimum-weight full cover; it is
// a test oracle and only admits small instances (≤ 20 sets).
func BruteForceOptimal(in Instance) (weight float64, ok bool) {
	n := len(in.Sets)
	if n > 20 {
		return 0, false
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		covered := make([]bool, in.NumElements)
		cnt := 0
		w := 0.0
		for j := 0; j < n; j++ {
			if mask&(1<<j) == 0 {
				continue
			}
			w += in.Weights[j]
			for _, e := range in.Sets[j] {
				if !covered[e] {
					covered[e] = true
					cnt++
				}
			}
		}
		if cnt == in.NumElements && w < best {
			best = w
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}
