package cover

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyPaperExample3(t *testing.T) {
	// Paper Example 3: U = {rq1,rq2,rq3}; s1={rq1,rq2} w=0.4,
	// s2={rq2,rq3} w=0.1, s3={rq1,rq3} w=0.5. Candidate covers are
	// {s1,s2}=0.5, {s1,s3}=0.9, {s2,s3}=0.6; the tightest Usim is 0.5.
	in := Instance{
		NumElements: 3,
		Sets:        [][]int{{0, 1}, {1, 2}, {0, 2}},
		Weights:     []float64{0.4, 0.1, 0.5},
	}
	res := Greedy(in)
	if !res.Full {
		t.Fatal("instance is coverable")
	}
	if math.Abs(res.Weight-0.5) > 1e-12 {
		t.Fatalf("Usim = %v, want 0.5", res.Weight)
	}
}

func TestGreedyIsValidCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		nSets := 1 + rng.Intn(8)
		in := Instance{NumElements: n}
		for j := 0; j < nSets; j++ {
			var s []int
			for e := 0; e < n; e++ {
				if rng.Intn(2) == 0 {
					s = append(s, e)
				}
			}
			in.Sets = append(in.Sets, s)
			in.Weights = append(in.Weights, rng.Float64())
		}
		res := Greedy(in)
		covered := make([]bool, n)
		for _, j := range res.Chosen {
			for _, e := range in.Sets[j] {
				covered[e] = true
			}
		}
		// Full=true must mean everything covered; Full=false must mean the
		// instance itself is infeasible.
		all := true
		for _, c := range covered {
			all = all && c
		}
		if res.Full != all {
			return false
		}
		if !res.Full {
			universe := make([]bool, n)
			for _, s := range in.Sets {
				for _, e := range s {
					universe[e] = true
				}
			}
			for _, u := range universe {
				if !u {
					return true // genuinely infeasible
				}
			}
			return false // feasible but greedy said infeasible
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyApproximationBound(t *testing.T) {
	// Greedy weight ≤ OPT · H(|U|) ≤ OPT · (ln|U| + 1).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		nSets := 2 + rng.Intn(6)
		in := Instance{NumElements: n}
		for j := 0; j < nSets; j++ {
			var s []int
			for e := 0; e < n; e++ {
				if rng.Intn(2) == 0 {
					s = append(s, e)
				}
			}
			if len(s) == 0 {
				s = []int{rng.Intn(n)}
			}
			in.Sets = append(in.Sets, s)
			in.Weights = append(in.Weights, 0.05+rng.Float64())
		}
		opt, feasible := BruteForceOptimal(in)
		res := Greedy(in)
		if !feasible {
			return !res.Full
		}
		if !res.Full {
			return false
		}
		return res.Weight <= opt*(math.Log(float64(n))+1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyEmptyUniverse(t *testing.T) {
	res := Greedy(Instance{NumElements: 0})
	if !res.Full || res.Weight != 0 || len(res.Chosen) != 0 {
		t.Fatalf("empty universe: %+v", res)
	}
}

func TestGreedyInfeasible(t *testing.T) {
	in := Instance{NumElements: 2, Sets: [][]int{{0}}, Weights: []float64{1}}
	res := Greedy(in)
	if res.Full {
		t.Fatal("element 1 is uncoverable")
	}
	if len(res.Chosen) != 1 || res.Chosen[0] != 0 {
		t.Fatalf("should still cover what it can: %+v", res)
	}
}

func TestGreedyPrefersCheapPerElement(t *testing.T) {
	// One expensive set covering everything vs two cheap sets: greedy picks
	// by weight/gain ratio.
	in := Instance{
		NumElements: 2,
		Sets:        [][]int{{0, 1}, {0}, {1}},
		Weights:     []float64{1.0, 0.1, 0.1},
	}
	res := Greedy(in)
	if math.Abs(res.Weight-0.2) > 1e-12 {
		t.Fatalf("weight = %v, want 0.2", res.Weight)
	}
}
