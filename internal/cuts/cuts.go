// Package cuts enumerates minimal embedding cuts (paper §4.1.2): sets of
// target edges whose joint removal destroys every embedding of a feature f
// in the certain graph gc. The paper reduces cut enumeration to s–t cuts of
// a "parallel graph" cG built from one line graph per embedding
// (Karzanov–Timofeev, reference [22]); since cG is exactly a parallel
// composition of the embeddings' edge paths, its minimal s–t cuts are
// exactly the minimal transversals of the embedding hypergraph — one edge
// chosen from every embedding, minimized. We enumerate those directly with
// Berge's sequential algorithm under a cap.
//
// Any enumerated cut is a valid embedding cut, and the PMI upper bound
// remains correct for any subset of the full cut family, so capping the
// enumeration trades bound tightness for time, never correctness.
package cuts

import (
	"sort"

	"probgraph/internal/graph"
)

// DefaultMaxCuts bounds the number of cuts kept.
const DefaultMaxCuts = 64

// capSlack is the working-set multiplier before intermediate pruning.
const capSlack = 4

// MinimalCuts returns minimal embedding cuts of the given embeddings
// (each an edge set over a graph with numEdges edges). At most maxCuts cuts
// are returned (maxCuts <= 0 selects DefaultMaxCuts), preferring small
// cuts. The result is empty when embeddings is empty.
func MinimalCuts(embeddings []graph.EdgeSet, numEdges, maxCuts int) []graph.EdgeSet {
	if len(embeddings) == 0 {
		return nil
	}
	if maxCuts <= 0 {
		maxCuts = DefaultMaxCuts
	}
	// Process small embeddings first: their choices branch least.
	embs := append([]graph.EdgeSet(nil), embeddings...)
	sort.Slice(embs, func(i, j int) bool { return embs[i].Count() < embs[j].Count() })

	var trans []graph.EdgeSet
	for _, e := range embs[0].Slice() {
		s := graph.NewEdgeSet(numEdges)
		s.Add(e)
		trans = append(trans, s)
	}
	for _, emb := range embs[1:] {
		var next []graph.EdgeSet
		for _, t := range trans {
			if t.Intersects(emb) {
				next = append(next, t)
				continue
			}
			for _, e := range emb.Slice() {
				nt := t.Clone()
				nt.Add(e)
				next = append(next, nt)
			}
		}
		next = minimize(next)
		if len(next) > maxCuts*capSlack {
			sort.Slice(next, func(i, j int) bool { return next[i].Count() < next[j].Count() })
			next = next[:maxCuts*capSlack]
		}
		trans = next
	}
	trans = minimize(trans)
	sort.Slice(trans, func(i, j int) bool {
		ci, cj := trans[i].Count(), trans[j].Count()
		if ci != cj {
			return ci < cj
		}
		return trans[i].Key() < trans[j].Key()
	})
	if len(trans) > maxCuts {
		trans = trans[:maxCuts]
	}
	return trans
}

// minimize removes duplicates and strict supersets.
func minimize(sets []graph.EdgeSet) []graph.EdgeSet {
	sort.Slice(sets, func(i, j int) bool {
		ci, cj := sets[i].Count(), sets[j].Count()
		if ci != cj {
			return ci < cj
		}
		return sets[i].Key() < sets[j].Key()
	})
	var out []graph.EdgeSet
	seen := make(map[string]bool)
	for _, s := range sets {
		k := s.Key()
		if seen[k] {
			continue
		}
		dominated := false
		for _, kept := range out {
			if s.ContainsAll(kept) {
				dominated = true
				break
			}
		}
		if !dominated {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// IsCut reports whether candidate hits every embedding — the defining
// property of an embedding cut.
func IsCut(candidate graph.EdgeSet, embeddings []graph.EdgeSet) bool {
	for _, emb := range embeddings {
		if !candidate.Intersects(emb) {
			return false
		}
	}
	return true
}

// ParallelGraph constructs the paper's cG illustration (Figure 8): one line
// graph per embedding (k+1 fresh nodes chained by k edges labeled with the
// target edge IDs), attached in parallel between fresh s and t vertices by
// unlabeled edges. It exists for exposition and tests; MinimalCuts does not
// need it.
func ParallelGraph(embeddings []graph.EdgeSet) *graph.Graph {
	b := graph.NewBuilder("cG")
	s := b.AddVertex("s")
	t := b.AddVertex("t")
	for _, emb := range embeddings {
		first := b.AddVertex("")
		prev := first
		for _, e := range emb.Slice() {
			next := b.AddVertex("")
			b.MustAddEdge(prev, next, graph.Label(edgeLabel(e)))
			prev = next
		}
		b.MustAddEdge(s, first, "")
		b.MustAddEdge(prev, t, "")
	}
	return b.Build()
}

func edgeLabel(e graph.EdgeID) string {
	// Small decimal rendering without fmt to keep this hot-path free.
	if e == 0 {
		return "e0"
	}
	var buf [12]byte
	i := len(buf)
	for v := int(e); v > 0; v /= 10 {
		i--
		buf[i] = byte('0' + v%10)
	}
	return "e" + string(buf[i:])
}
