package cuts

import (
	"math/rand"
	"testing"
	"testing/quick"

	"probgraph/internal/graph"
)

func mk(numEdges int, ids ...graph.EdgeID) graph.EdgeSet {
	s := graph.NewEdgeSet(numEdges)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func TestPaperExample7(t *testing.T) {
	// Feature f2's embeddings in graph 002: {e1,e2}, {e2,e3}, {e3,e4}
	// (0-indexed: {0,1},{1,2},{2,3}). The minimal embedding cuts are
	// {e2,e4}, {e2,e3} and {e1,e3} — note the paper's Figure 8 lists
	// {e1,e3,e4}, which is dominated by the true minimal cut {e1,e3}.
	embs := []graph.EdgeSet{mk(5, 0, 1), mk(5, 1, 2), mk(5, 2, 3)}
	cutsFound := MinimalCuts(embs, 5, 0)
	want := map[string]bool{
		mk(5, 1, 3).Key(): true, // {e2,e4}
		mk(5, 1, 2).Key(): true, // {e2,e3}
		mk(5, 0, 2).Key(): true, // {e1,e3}
	}
	if len(cutsFound) != len(want) {
		t.Fatalf("found %d cuts, want %d", len(cutsFound), len(want))
	}
	for _, c := range cutsFound {
		if !want[c.Key()] {
			t.Fatalf("unexpected cut %v", c.Slice())
		}
	}
}

func TestCutsHitEveryEmbedding(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numEdges := 6 + rng.Intn(6)
		nEmb := 1 + rng.Intn(5)
		embs := make([]graph.EdgeSet, nEmb)
		for i := range embs {
			embs[i] = graph.NewEdgeSet(numEdges)
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				embs[i].Add(graph.EdgeID(rng.Intn(numEdges)))
			}
		}
		for _, c := range MinimalCuts(embs, numEdges, 0) {
			if !IsCut(c, embs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCutsAreMinimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numEdges := 5 + rng.Intn(4)
		nEmb := 1 + rng.Intn(4)
		embs := make([]graph.EdgeSet, nEmb)
		for i := range embs {
			embs[i] = graph.NewEdgeSet(numEdges)
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				embs[i].Add(graph.EdgeID(rng.Intn(numEdges)))
			}
		}
		for _, c := range MinimalCuts(embs, numEdges, 0) {
			// Removing any single edge must break the cut property.
			for _, e := range c.Slice() {
				smaller := c.Clone()
				smaller.Remove(e)
				if IsCut(smaller, embs) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCutsCompleteOnSmallInstances(t *testing.T) {
	// Against brute force: every minimal transversal must be found when no
	// cap truncation occurs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numEdges := 5
		nEmb := 1 + rng.Intn(3)
		embs := make([]graph.EdgeSet, nEmb)
		for i := range embs {
			embs[i] = graph.NewEdgeSet(numEdges)
			k := 1 + rng.Intn(2)
			for j := 0; j < k; j++ {
				embs[i].Add(graph.EdgeID(rng.Intn(numEdges)))
			}
		}
		found := MinimalCuts(embs, numEdges, 1024)
		keys := make(map[string]bool, len(found))
		for _, c := range found {
			keys[c.Key()] = true
		}
		// Brute force all subsets; a minimal cut must appear in found.
		for mask := 1; mask < 1<<numEdges; mask++ {
			s := graph.NewEdgeSet(numEdges)
			for e := 0; e < numEdges; e++ {
				if mask&(1<<e) != 0 {
					s.Add(graph.EdgeID(e))
				}
			}
			if !IsCut(s, embs) {
				continue
			}
			minimal := true
			for _, e := range s.Slice() {
				sub := s.Clone()
				sub.Remove(e)
				if IsCut(sub, embs) {
					minimal = false
					break
				}
			}
			if minimal && !keys[s.Key()] {
				t.Logf("seed %d: missing minimal cut %v", seed, s.Slice())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCutsCap(t *testing.T) {
	// Many disjoint 2-edge embeddings → 2^n minimal cuts; the cap must bite.
	numEdges := 20
	var embs []graph.EdgeSet
	for i := 0; i < 10; i++ {
		embs = append(embs, mk(numEdges, graph.EdgeID(2*i), graph.EdgeID(2*i+1)))
	}
	found := MinimalCuts(embs, numEdges, 16)
	if len(found) > 16 {
		t.Fatalf("cap violated: %d cuts", len(found))
	}
	for _, c := range found {
		if !IsCut(c, embs) {
			t.Fatal("capped result contains a non-cut")
		}
	}
}

func TestEmptyEmbeddings(t *testing.T) {
	if got := MinimalCuts(nil, 5, 0); got != nil {
		t.Fatalf("no embeddings should give no cuts, got %v", got)
	}
}

func TestParallelGraphShape(t *testing.T) {
	// Figure 8 shape for f2's embeddings: 3 line graphs of 2 edges each.
	embs := []graph.EdgeSet{mk(5, 0, 1), mk(5, 1, 2), mk(5, 2, 3)}
	cg := ParallelGraph(embs)
	// Vertices: s, t + 3 per embedding (k+1 = 3) = 11.
	if cg.NumVertices() != 11 {
		t.Fatalf("cG has %d vertices, want 11", cg.NumVertices())
	}
	// Edges: per embedding k labeled + 2 anchors = 4, total 12.
	if cg.NumEdges() != 12 {
		t.Fatalf("cG has %d edges, want 12", cg.NumEdges())
	}
	if !cg.IsConnected() {
		t.Fatal("cG must be connected")
	}
	// s and t have degree = number of embeddings.
	if cg.Degree(0) != 3 || cg.Degree(1) != 3 {
		t.Fatalf("s/t degrees %d/%d, want 3/3", cg.Degree(0), cg.Degree(1))
	}
}
