package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"probgraph/internal/snapbin"
)

// SnapshotFormat selects the on-disk snapshot encoding.
type SnapshotFormat string

const (
	// SnapshotText is the line-oriented pgsnap v3 format: human-readable,
	// diffable, and the only choice when the snapshot must be inspected or
	// patched by hand. Loading it parses the whole file.
	SnapshotText SnapshotFormat = "text"
	// SnapshotBinary is the pgsnap v4 binary format: mmap-able, so
	// OpenSnapshot starts in O(1) and shares pages across processes.
	SnapshotBinary SnapshotFormat = "binary"
)

// ParseSnapshotFormat parses a -format flag value.
func ParseSnapshotFormat(s string) (SnapshotFormat, error) {
	switch SnapshotFormat(s) {
	case SnapshotText, SnapshotBinary:
		return SnapshotFormat(s), nil
	}
	return "", fmt.Errorf("core: unknown snapshot format %q (want %q or %q)", s, SnapshotText, SnapshotBinary)
}

// SaveAs writes the view in the given format; see Save and SaveBinary.
func (v *View) SaveAs(w io.Writer, format SnapshotFormat) error {
	switch format {
	case SnapshotBinary:
		return v.SaveBinary(w)
	case SnapshotText, "":
		return v.Save(w)
	}
	return fmt.Errorf("core: unknown snapshot format %q", format)
}

// SaveAs writes the current view in the given format.
func (db *Database) SaveAs(w io.Writer, format SnapshotFormat) error {
	return db.View().SaveAs(w, format)
}

// SaveFile atomically writes the view to path in the given format: the
// snapshot is written to a temporary file in the same directory, synced,
// and renamed over path — a crash mid-save can truncate only the
// temporary file, never an existing snapshot at path.
func (v *View) SaveFile(path string, format SnapshotFormat) error {
	return writeFileAtomic(path, func(w io.Writer) error {
		return v.SaveAs(w, format)
	})
}

// SaveFile atomically writes the current view to path; see View.SaveFile.
func (db *Database) SaveFile(path string, format SnapshotFormat) error {
	return db.View().SaveFile(path, format)
}

// OpenSnapshot loads a snapshot from a file, format-sniffed. A binary
// (pgsnap v4) snapshot is mmap'd: the load touches only the section table
// plus the graph records, the big slabs stay on disk until queries fault
// them in, and every process opening the same file shares the page cache.
// The mapping lives for the process lifetime — a served database aliases
// it. Text snapshots are streamed through LoadDatabase.
func OpenSnapshot(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [len(snapbin.Magic)]byte
	if _, err := io.ReadFull(f, magic[:]); err == nil && snapbin.IsBinary(magic[:]) {
		data, err := mapFile(f)
		if err != nil {
			return nil, fmt.Errorf("core: mapping %s: %w", path, err)
		}
		return loadBinarySnapshot(data)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return LoadDatabase(f)
}

// writeFileAtomic writes via a same-directory temp file + fsync + rename,
// so path either keeps its old content or holds the complete new content.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	defer func() {
		if tmp != nil {
			tmp.Close()
		}
		if err != nil {
			os.Remove(name)
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		tmp = nil
		return err
	}
	tmp = nil
	return os.Rename(name, path)
}
