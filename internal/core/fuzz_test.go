package core

import (
	"bytes"
	"os"
	"testing"
)

// FuzzLoadDatabase drives the snapshot loaders — text sniffing, the v1/v3
// scanners, and the v4 binary cursor — with arbitrary bytes. The contract
// under fuzzing is purely defensive: a corrupt snapshot must produce an
// error, never a panic, an index out of range, or an attempt to allocate
// slabs the input cannot back. The corpus seeds every checked-in fixture
// plus truncations and bit flips of the binary one, which walk the cursor
// through its bounds checks.
func FuzzLoadDatabase(f *testing.F) {
	for _, name := range []string{"v1_tiny.pgsnap", "v2_tiny.pgsnap", "v3_tiny.pgsnap",
		"v3_tiny_tombs.pgsnap", "v4_tiny.pgsnapb", "v4_tiny_tombs.pgsnapb"} {
		if b, err := os.ReadFile(fixturePath(name)); err == nil {
			f.Add(b)
		}
	}
	if v4, err := os.ReadFile(fixturePath("v4_tiny.pgsnapb")); err == nil {
		for _, cut := range []int{1, 7, 8, 9, 24, len(v4) / 2, len(v4) - 1} {
			if cut > 0 && cut < len(v4) {
				f.Add(v4[:cut])
			}
		}
		for _, pos := range []int{0, 8, 12, 16, 24, 40, 64, len(v4) / 3, len(v4) - 2} {
			if pos >= 0 && pos < len(v4) {
				c := bytes.Clone(v4)
				c[pos] ^= 0x40
				f.Add(c)
			}
		}
	}
	f.Add([]byte("pgsnap v3\noptions {}\n"))
	f.Add([]byte("pgsnap v1\noptions {}\ngraphs 2\n"))
	f.Add([]byte("PGSNAPB4"))
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := LoadDatabase(bytes.NewReader(data))
		if err == nil && db == nil {
			t.Fatal("LoadDatabase returned nil database without an error")
		}
	})
}
