package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"

	"probgraph/internal/dataset"
	"probgraph/internal/graph"
)

// partitionAll splits db into the given number of contiguous range
// partitions.
func partitionAll(t *testing.T, db *Database, shards int) []*Database {
	t.Helper()
	ranges, err := PartitionRanges(db.Len(), shards)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*Database, len(ranges))
	for i, r := range ranges {
		parts[i], err = db.Partition(r[0], r[1])
		if err != nil {
			t.Fatalf("partition [%d,%d): %v", r[0], r[1], err)
		}
	}
	return parts
}

// mergedAnswers runs q on every partition and merges the translated
// answers/SSPs the way the coordinator does: global ids sorted ascending,
// SSP maps unioned.
func mergedAnswers(t *testing.T, parts []*Database, q *graph.Graph, opt QueryOptions) ([]int, map[int]float64) {
	t.Helper()
	var answers []int
	ssp := make(map[int]float64)
	for _, p := range parts {
		v := p.View()
		res, err := v.QueryCtx(context.Background(), q, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, li := range res.Answers {
			answers = append(answers, v.GID(li))
		}
		for li, pr := range res.SSP {
			ssp[v.GID(li)] = pr
		}
	}
	sort.Ints(answers)
	return answers, ssp
}

// TestRangePartitionBitwise is the core determinism property: a query
// evaluated per-partition and merged answers bitwise what the full
// database answers — same answer ids, same SSP estimates — across seeds,
// worker counts, and shard counts.
func TestRangePartitionBitwise(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		db, _ := smallDatabase(t, seed, 12, true)
		rng := rand.New(rand.NewSource(seed))
		for _, shards := range []int{2, 3} {
			parts := partitionAll(t, db, shards)
			for qi := 0; qi < 3; qi++ {
				q := dataset.ExtractQuery(db.Graphs()[qi%db.Len()].G, 4, rng)
				for _, workers := range []int{1, 4} {
					opt := QueryOptions{Epsilon: 0.3, Delta: 1, OptBounds: true,
						Seed: seed + int64(qi), Concurrency: workers}
					full, err := db.Query(q, opt)
					if err != nil {
						t.Fatal(err)
					}
					want := append([]int(nil), full.Answers...)
					sort.Ints(want)
					got, gotSSP := mergedAnswers(t, parts, q, opt)
					if len(got) != len(want) {
						t.Fatalf("seed=%d shards=%d q=%d workers=%d: merged %v != full %v",
							seed, shards, qi, workers, got, want)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("seed=%d shards=%d q=%d workers=%d: merged %v != full %v",
								seed, shards, qi, workers, got, want)
						}
					}
					for gi, pr := range full.SSP {
						if gotSSP[gi] != pr {
							t.Fatalf("seed=%d shards=%d q=%d workers=%d: SSP[%d] = %v, full %v",
								seed, shards, qi, workers, gi, gotSSP[gi], pr)
						}
					}
				}
			}
		}
	}
}

// TestRangePartitionWithTombstones checks that partitioning a database
// holding tombstoned slots keeps global ids stable and answers bitwise.
func TestRangePartitionWithTombstones(t *testing.T) {
	db, _ := smallDatabase(t, 7, 12, true)
	for _, id := range []int{2, 5, 9} {
		if _, err := db.RemoveGraph(id); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(7))
	q := dataset.ExtractQuery(db.Graphs()[1].G, 4, rng)
	opt := QueryOptions{Epsilon: 0.3, Delta: 1, OptBounds: true, Seed: 7}
	full, err := db.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int(nil), full.Answers...)
	sort.Ints(want)
	parts := partitionAll(t, db, 3)
	got, gotSSP := mergedAnswers(t, parts, q, opt)
	if len(got) != len(want) {
		t.Fatalf("merged %v != full %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v != full %v", got, want)
		}
		if gotSSP[want[i]] != full.SSP[want[i]] {
			t.Fatalf("SSP[%d] = %v, full %v", want[i], gotSSP[want[i]], full.SSP[want[i]])
		}
	}
}

// TestRangeSnapshotRoundTrip saves a partition in both snapshot formats
// and checks the reloaded copy keeps the global-id mapping and answers.
func TestRangeSnapshotRoundTrip(t *testing.T) {
	db, _ := smallDatabase(t, 5, 10, true)
	rng := rand.New(rand.NewSource(5))
	q := dataset.ExtractQuery(db.Graphs()[0].G, 4, rng)
	opt := QueryOptions{Epsilon: 0.3, Delta: 1, OptBounds: true, Seed: 5}
	for _, format := range []SnapshotFormat{SnapshotText, SnapshotBinary} {
		var buf bytes.Buffer
		if err := db.SaveRange(&buf, 4, 10, format); err != nil {
			t.Fatal(err)
		}
		part, err := LoadDatabase(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("format %v: %v", format, err)
		}
		pv := part.View()
		if !pv.Partitioned() {
			t.Fatalf("format %v: reloaded partition lost its gids", format)
		}
		for li := 0; li < pv.Len(); li++ {
			if want := 4 + li; pv.GID(li) != want {
				t.Fatalf("format %v: GID(%d) = %d, want %d", format, li, pv.GID(li), want)
			}
		}
		orig, err := db.Partition(4, 10)
		if err != nil {
			t.Fatal(err)
		}
		a1, s1 := mergedAnswers(t, []*Database{orig}, q, opt)
		a2, s2 := mergedAnswers(t, []*Database{part}, q, opt)
		if len(a1) != len(a2) {
			t.Fatalf("format %v: reloaded answers %v != %v", format, a2, a1)
		}
		for i := range a1 {
			if a1[i] != a2[i] || s1[a1[i]] != s2[a1[i]] {
				t.Fatalf("format %v: reloaded answers %v/%v != %v/%v", format, a2, s2, a1, s1)
			}
		}
	}
}

// TestPartitionReadOnly checks every mutation path rejects partitions
// with ErrPartitioned.
func TestPartitionReadOnly(t *testing.T) {
	db, raw := smallDatabase(t, 3, 8, false)
	part, err := db.Partition(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := part.AddGraph(raw.Graphs[0]); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("AddGraph: %v, want ErrPartitioned", err)
	}
	if _, err := part.RemoveGraph(0); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("RemoveGraph: %v, want ErrPartitioned", err)
	}
	if _, err := part.ReplaceGraph(0, raw.Graphs[0]); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("ReplaceGraph: %v, want ErrPartitioned", err)
	}
	if _, err := part.Compact(); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("Compact: %v, want ErrPartitioned", err)
	}
	if _, err := part.View().Range(0, 2); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("Range of a partition: %v, want ErrPartitioned", err)
	}
	// The partition keeps its source's generation so a coordinator can
	// detect a half-rolled-out fleet.
	if got, want := part.View().Generation, db.View().Generation; got != want {
		t.Fatalf("partition generation %d, source %d", got, want)
	}
}

// TestPartitionRanges checks the contiguous split: full cover, no
// overlap, remainder spread over the earliest ranges, and rejection of
// bad shapes.
func TestPartitionRanges(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{{10, 3}, {9, 3}, {7, 1}, {5, 5}} {
		ranges, err := PartitionRanges(tc.n, tc.shards)
		if err != nil {
			t.Fatalf("PartitionRanges(%d,%d): %v", tc.n, tc.shards, err)
		}
		if len(ranges) != tc.shards {
			t.Fatalf("PartitionRanges(%d,%d): %d ranges", tc.n, tc.shards, len(ranges))
		}
		next := 0
		for _, r := range ranges {
			if r[0] != next || r[1] <= r[0] {
				t.Fatalf("PartitionRanges(%d,%d): bad range %v (next=%d)", tc.n, tc.shards, r, next)
			}
			next = r[1]
		}
		if next != tc.n {
			t.Fatalf("PartitionRanges(%d,%d): covers [0,%d), want [0,%d)", tc.n, tc.shards, next, tc.n)
		}
	}
	for _, tc := range []struct{ n, shards int }{{0, 1}, {5, 0}, {5, 6}, {5, -1}} {
		if _, err := PartitionRanges(tc.n, tc.shards); err == nil {
			t.Fatalf("PartitionRanges(%d,%d): want error", tc.n, tc.shards)
		}
	}
}

// TestLocalOf checks the global→local inverse on identity and partition
// views.
func TestLocalOf(t *testing.T) {
	db, _ := smallDatabase(t, 3, 8, false)
	v := db.View()
	if v.LocalOf(3) != 3 || v.LocalOf(8) != -1 || v.LocalOf(-1) != -1 {
		t.Fatalf("identity LocalOf broken: %d %d %d", v.LocalOf(3), v.LocalOf(8), v.LocalOf(-1))
	}
	part, err := db.Partition(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	pv := part.View()
	for li := 0; li < pv.Len(); li++ {
		if pv.LocalOf(pv.GID(li)) != li {
			t.Fatalf("LocalOf(GID(%d)) = %d", li, pv.LocalOf(pv.GID(li)))
		}
	}
	if pv.LocalOf(0) != -1 || pv.LocalOf(6) != -1 {
		t.Fatalf("out-of-range gids resolved: %d %d", pv.LocalOf(0), pv.LocalOf(6))
	}
}

// TestTopKBoundsDistributedReplay replays the coordinator's distributed
// top-k at the library level: per-partition bound schedules merged into
// the serial verification order, SSPs fetched from the owning partition
// via VerifySSPBatch, serial early-termination rule applied — the result
// must be bitwise the full database's QueryTopK at every worker count.
func TestTopKBoundsDistributedReplay(t *testing.T) {
	for _, seed := range []int64{3, 9} {
		db, _ := smallDatabase(t, seed, 12, true)
		rng := rand.New(rand.NewSource(seed))
		q := dataset.ExtractQuery(db.Graphs()[2].G, 4, rng)
		const k = 4
		opt := QueryOptions{Delta: 1, OptBounds: true, Seed: seed}
		for _, workers := range []int{1, 4} {
			wopt := opt
			wopt.Concurrency = workers
			full, err := db.QueryTopK(q, k, wopt)
			if err != nil {
				t.Fatal(err)
			}
			parts := partitionAll(t, db, 3)
			type entry struct {
				gid   int
				upper float64
				part  *Database
			}
			var sched []entry
			degenerate := false
			for _, p := range parts {
				pv := p.View()
				bounds, dg, err := pv.QueryTopKBounds(context.Background(), q, k, wopt)
				if err != nil {
					t.Fatal(err)
				}
				degenerate = degenerate || dg
				for _, b := range bounds {
					sched = append(sched, entry{gid: pv.GID(b.Graph), upper: b.Upper, part: p})
				}
			}
			if degenerate {
				t.Fatal("unexpected degenerate schedule in test setup")
			}
			sort.Slice(sched, func(i, j int) bool {
				if sched[i].upper != sched[j].upper {
					return sched[i].upper > sched[j].upper
				}
				return sched[i].gid < sched[j].gid
			})
			var top []TopKItem
			kth := func() float64 {
				if len(top) < k {
					return 0
				}
				return top[len(top)-1].SSP
			}
			for _, e := range sched {
				if len(top) >= k && e.upper <= kth() {
					break
				}
				pv := e.part.View()
				ssps, err := pv.VerifySSPBatch(context.Background(), q, []int{pv.LocalOf(e.gid)}, wopt)
				if err != nil {
					t.Fatal(err)
				}
				if ssps[0] > 0 {
					top = insertTopK(top, TopKItem{Graph: e.gid, SSP: ssps[0]}, k)
				}
			}
			if len(top) != len(full) {
				t.Fatalf("seed=%d workers=%d: replay %v != full %v", seed, workers, top, full)
			}
			for i := range full {
				if top[i] != full[i] {
					t.Fatalf("seed=%d workers=%d: replay %v != full %v", seed, workers, top, full)
				}
			}
		}
	}
}
