package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"probgraph/internal/dataset"
	"probgraph/internal/feature"
	"probgraph/internal/graph"
	"probgraph/internal/pmi"
	"probgraph/internal/simsearch"
	"probgraph/internal/snapbin"
)

// The snapshot is the full indexed database in one versioned file, so a
// process can start answering queries without re-mining features or
// rebuilding the PMI. It composes the existing line-oriented codecs:
//
//	pgsnap v3
//	options <one-line JSON of BuildOptions>
//	generation <gen> <numTombstones>
//	  tombs <slot ids ascending>      (only when numTombstones > 0)
//	graphs <n>
//	  ... n dataset pgraph blocks (certain graph + JPTs) ...
//	features <nf>
//	  feat <i> <supportLen> <support ints...>
//	  ... graph codec block ...
//	struct <0|1>
//	  ... simsearch section when present ...
//	pmi <0|1>
//	  ... pmi.Save section when present ...
//	endpgsnap
//
// The v3 generation section carries the view's generation number and its
// tombstoned slots; the graphs section still writes every slot (dead ones
// included) so graph indices — and therefore per-candidate query seeding —
// survive the round trip, while the PMI section writes masked columns as
// uncontained and the loader re-applies the mask from the tombstone list.
// Snapshots written before generations existed (header "pgsnap v1", with
// either a v1 or v2 simsearch section) still load: they restore at
// generation 1 with no tombstones.
//
// Every numeric payload round-trips bitwise (JPT probabilities via %g
// shortest-representation, PMI bounds via %.17g), so a query against the
// reloaded database returns exactly what the original would. Only the
// per-graph inference engines are rebuilt after a load — lazily, on first
// use per slot (see View.Engine); junction-tree construction is
// deterministic, so deferral changes no answer.
//
// pgsnap v4 is the binary counterpart of this format — same sections,
// mmap-friendly layout; see snapshot_binary.go. LoadDatabase sniffs the
// format from the leading magic, Save keeps writing text, SaveBinary and
// SaveFile write v4.

// SnapshotVersion identifies the snapshot format written by Save. The v3
// format added the generation section; v1 files still load.
const SnapshotVersion = "pgsnap v3"

// snapshotVersionV1 is the pre-generation header, accepted by
// LoadDatabase for back compatibility.
const snapshotVersionV1 = "pgsnap v1"

// Save writes the database — graphs, JPTs, mined features, structural
// filter, PMI, generation, and tombstones — as one snapshot. The view is
// pinned once at entry, so a snapshot taken under concurrent mutation is
// one consistent generation. LoadDatabase restores it without any feature
// mining or bound recomputation.
func (db *Database) Save(w io.Writer) error {
	return db.View().Save(w)
}

// Save writes this exact generation as a snapshot; see Database.Save.
func (v *View) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, SnapshotVersion)

	optJSON, err := json.Marshal(v.opt)
	if err != nil {
		return fmt.Errorf("core: snapshot options: %w", err)
	}
	fmt.Fprintf(bw, "options %s\n", optJSON)

	fmt.Fprintf(bw, "generation %d %d\n", v.Generation, v.Tombstones())
	if v.Tombstones() > 0 {
		fmt.Fprint(bw, "tombs")
		for gi := range v.Graphs {
			if !v.Live(gi) {
				fmt.Fprintf(bw, " %d", gi)
			}
		}
		fmt.Fprintln(bw)
	}

	// Range partitions (SaveRange) persist their slot→global-id map; the
	// line is absent for ordinary snapshots, keeping them byte-identical
	// to what earlier writers produced.
	if v.gids != nil {
		fmt.Fprintf(bw, "gids %d", len(v.gids))
		for _, g := range v.gids {
			fmt.Fprintf(bw, " %d", g)
		}
		fmt.Fprintln(bw)
	}

	fmt.Fprintf(bw, "graphs %d\n", len(v.Graphs))
	for _, pg := range v.Graphs {
		if err := dataset.EncodePGraph(bw, pg, 0); err != nil {
			return err
		}
	}

	fmt.Fprintf(bw, "features %d\n", len(v.Features))
	for i, f := range v.Features {
		fmt.Fprintf(bw, "feat %d %d", i, len(f.Support))
		for _, gi := range f.Support {
			fmt.Fprintf(bw, " %d", gi)
		}
		fmt.Fprintln(bw)
		if err := graph.Encode(bw, f.G); err != nil {
			return err
		}
	}

	if v.Struct != nil {
		fmt.Fprintln(bw, "struct 1")
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := v.Struct.Save(w); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(bw, "struct 0")
	}

	if v.PMI != nil {
		fmt.Fprintln(bw, "pmi 1")
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := v.PMI.Save(w); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(bw, "pmi 0")
	}

	fmt.Fprintln(bw, "endpgsnap")
	return bw.Flush()
}

// LoadDatabase reads a snapshot written by Save or SaveBinary and returns
// a Database equivalent to the one that wrote it: identical graphs,
// features, structural counts, PMI bounds, generation, and tombstones.
// The format is sniffed from the first bytes, so callers never need to
// know which one they were handed. No feature mining or bound computation
// runs, and inference engines are built lazily on first use (see
// View.Engine). Pre-generation text snapshots (header "pgsnap v1") load
// at generation 1 with no tombstones. To map a binary snapshot instead of
// reading it into memory, use OpenSnapshot.
func LoadDatabase(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(snapbin.Magic)); err == nil && snapbin.IsBinary(magic) {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading binary snapshot: %w", err)
		}
		return loadBinarySnapshot(data)
	}
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)

	header, err := snapLine(sc)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot header: %w", err)
	}
	v3 := header == SnapshotVersion
	if !v3 && header != snapshotVersionV1 {
		return nil, fmt.Errorf("core: not a snapshot (header %q, want %q or %q)",
			header, SnapshotVersion, snapshotVersionV1)
	}

	v := &View{Generation: 1}
	line, err := snapLine(sc)
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(line, "options ") {
		return nil, fmt.Errorf("core: snapshot: want options line, got %q", line)
	}
	if err := json.Unmarshal([]byte(line[len("options "):]), &v.opt); err != nil {
		return nil, fmt.Errorf("core: snapshot options: %w", err)
	}

	var tombs []int
	if v3 {
		line, err = snapLine(sc)
		if err != nil {
			return nil, err
		}
		var ntomb int
		if _, err := fmt.Sscanf(line, "generation %d %d", &v.Generation, &ntomb); err != nil {
			return nil, fmt.Errorf("core: snapshot: bad generation line %q", line)
		}
		if ntomb > 0 {
			line, err = snapLine(sc)
			if err != nil {
				return nil, err
			}
			fields := strings.Fields(line)
			if len(fields) != 1+ntomb || fields[0] != "tombs" {
				return nil, fmt.Errorf("core: snapshot: bad tombs line %q (want %d ids)", line, ntomb)
			}
			for _, tok := range fields[1:] {
				gi, err := strconv.Atoi(tok)
				if err != nil || gi < 0 {
					return nil, fmt.Errorf("core: snapshot: bad tombstone id %q", tok)
				}
				tombs = append(tombs, gi)
			}
		}
	}

	line, err = snapLine(sc)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(line, "gids ") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("core: snapshot: bad gids line %q", line)
		}
		ng, convErr := strconv.Atoi(fields[1])
		if convErr != nil || len(fields) != 2+ng {
			return nil, fmt.Errorf("core: snapshot: bad gids line %q", line)
		}
		gids := make([]int, ng)
		for k, tok := range fields[2:] {
			g, err := strconv.Atoi(tok)
			if err != nil || g < 0 || (k > 0 && g <= gids[k-1]) {
				return nil, fmt.Errorf("core: snapshot: bad global id %q (ids must be non-negative and strictly ascending)", tok)
			}
			gids[k] = g
		}
		v.gids = gids
		line, err = snapLine(sc)
		if err != nil {
			return nil, err
		}
	}
	var n int
	if _, err := fmt.Sscanf(line, "graphs %d", &n); err != nil {
		return nil, fmt.Errorf("core: snapshot: bad graphs header %q", line)
	}
	if v.gids != nil && len(v.gids) != n {
		return nil, fmt.Errorf("core: snapshot: gids count %d != graphs %d", len(v.gids), n)
	}
	dec := dataset.NewPGraphDecoderFromScanner(sc)
	for gi := 0; gi < n; gi++ {
		pg, _, err := dec.Decode()
		if err != nil {
			return nil, fmt.Errorf("core: snapshot graph %d: %w", gi, err)
		}
		v.Graphs = append(v.Graphs, pg)
		v.Certain = append(v.Certain, pg.G)
	}
	for _, gi := range tombs {
		if gi >= n {
			return nil, fmt.Errorf("core: snapshot: tombstone %d out of range [0,%d)", gi, n)
		}
	}

	line, err = snapLine(sc)
	if err != nil {
		return nil, err
	}
	var nf int
	if _, err := fmt.Sscanf(line, "features %d", &nf); err != nil {
		return nil, fmt.Errorf("core: snapshot: bad features header %q", line)
	}
	gdec := graph.NewDecoderFromScanner(sc)
	for fi := 0; fi < nf; fi++ {
		line, err = snapLine(sc)
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || fields[0] != "feat" {
			return nil, fmt.Errorf("core: snapshot: bad feat line %q", line)
		}
		idx, err1 := strconv.Atoi(fields[1])
		supLen, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || idx != fi || len(fields) != 3+supLen {
			return nil, fmt.Errorf("core: snapshot: bad feat line %q for feature %d", line, fi)
		}
		support := make([]int, supLen)
		for k, tok := range fields[3:] {
			gi, err := strconv.Atoi(tok)
			if err != nil || gi < 0 || gi >= n {
				return nil, fmt.Errorf("core: snapshot: bad support %q in %q", tok, line)
			}
			support[k] = gi
		}
		fg, err := gdec.Decode()
		if err != nil {
			return nil, fmt.Errorf("core: snapshot feature %d graph: %w", fi, err)
		}
		v.Features = append(v.Features, &feature.Feature{
			G: fg, Code: graph.CanonicalCode(fg), Support: support,
		})
	}
	v.Build.Features = len(v.Features)

	line, err = snapLine(sc)
	if err != nil {
		return nil, err
	}
	var hasStruct int
	if _, err := fmt.Sscanf(line, "struct %d", &hasStruct); err != nil {
		return nil, fmt.Errorf("core: snapshot: bad struct header %q", line)
	}
	if hasStruct == 1 {
		ix, err := simsearch.LoadFromScanner(sc, v.Certain)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot: %w", err)
		}
		v.Struct = ix.WithTombstones(tombs)
	}

	line, err = snapLine(sc)
	if err != nil {
		return nil, err
	}
	var hasPMI int
	if _, err := fmt.Sscanf(line, "pmi %d", &hasPMI); err != nil {
		return nil, fmt.Errorf("core: snapshot: bad pmi header %q", line)
	}
	if hasPMI == 1 {
		idx, err := pmi.LoadFromScannerCols(sc, n)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot: %w", err)
		}
		// pmi.Save does not persist options; restore them from the build
		// options so incremental mutations behave exactly as before the
		// round-trip. The tombstone mask is re-applied so dead columns
		// stay masked (their entries were written as uncontained).
		idx.Opt = v.opt.PMI
		v.PMI = idx.WithMaskedColumns(tombs)
		v.Build.IndexSizeBytes = v.PMI.SizeBytes()
	}

	line, err = snapLine(sc)
	if err != nil {
		return nil, err
	}
	if line != "endpgsnap" {
		return nil, fmt.Errorf("core: snapshot: want endpgsnap, got %q", line)
	}

	v.liveCount = n
	if len(tombs) > 0 {
		v.live = make([]bool, n)
		for gi := range v.live {
			v.live[gi] = true
		}
		for _, gi := range tombs {
			if v.live[gi] {
				v.live[gi] = false
				v.liveCount--
			}
		}
	}

	// Inference engines are rebuilt lazily, on first use per slot —
	// junction-tree construction is deterministic, so deferring it
	// changes no answer, and startup stays flat in the corpus size.
	v.newLazyEngines(n)
	return newFromView(v), nil
}

// snapLine reads the next non-blank, non-comment line, trimmed.
func snapLine(sc *bufio.Scanner) (string, error) {
	return graph.ScanNonEmpty(sc, "core: snapshot")
}
