package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"probgraph/internal/dataset"
	"probgraph/internal/feature"
	"probgraph/internal/graph"
	"probgraph/internal/pmi"
	"probgraph/internal/pool"
	"probgraph/internal/prob"
	"probgraph/internal/simsearch"
)

// The snapshot is the full indexed database in one versioned file, so a
// process can start answering queries without re-mining features or
// rebuilding the PMI. It composes the existing line-oriented codecs:
//
//	pgsnap v1
//	options <one-line JSON of BuildOptions>
//	graphs <n>
//	  ... n dataset pgraph blocks (certain graph + JPTs) ...
//	features <nf>
//	  feat <i> <supportLen> <support ints...>
//	  ... graph codec block ...
//	struct <0|1>
//	  ... simsearch section when present ...
//	pmi <0|1>
//	  ... pmi.Save section when present ...
//	endpgsnap
//
// Every numeric payload round-trips bitwise (JPT probabilities via %g
// shortest-representation, PMI bounds via %.17g), so a query against the
// reloaded database returns exactly what the original would. Only the
// per-graph inference engines are rebuilt at load time — junction-tree
// construction is deterministic and cheap next to feature mining and PMI
// bound computation.

// SnapshotVersion identifies the snapshot format written by Save.
const SnapshotVersion = "pgsnap v1"

// Save writes the database — graphs, JPTs, mined features, structural
// filter, and PMI — as one snapshot. LoadDatabase restores it without any
// feature mining or bound recomputation.
func (db *Database) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, SnapshotVersion)

	optJSON, err := json.Marshal(db.opt)
	if err != nil {
		return fmt.Errorf("core: snapshot options: %w", err)
	}
	fmt.Fprintf(bw, "options %s\n", optJSON)

	fmt.Fprintf(bw, "graphs %d\n", len(db.Graphs))
	for _, pg := range db.Graphs {
		if err := dataset.EncodePGraph(bw, pg, 0); err != nil {
			return err
		}
	}

	fmt.Fprintf(bw, "features %d\n", len(db.Features))
	for i, f := range db.Features {
		fmt.Fprintf(bw, "feat %d %d", i, len(f.Support))
		for _, gi := range f.Support {
			fmt.Fprintf(bw, " %d", gi)
		}
		fmt.Fprintln(bw)
		if err := graph.Encode(bw, f.G); err != nil {
			return err
		}
	}

	if db.Struct != nil {
		fmt.Fprintln(bw, "struct 1")
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := db.Struct.Save(w); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(bw, "struct 0")
	}

	if db.PMI != nil {
		fmt.Fprintln(bw, "pmi 1")
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := db.PMI.Save(w); err != nil {
			return err
		}
	} else {
		fmt.Fprintln(bw, "pmi 0")
	}

	fmt.Fprintln(bw, "endpgsnap")
	return bw.Flush()
}

// LoadDatabase reads a snapshot written by Save and returns a Database
// equivalent to the one that wrote it: identical graphs, features,
// structural counts, and PMI bounds, with freshly built inference engines.
// No feature mining or bound computation runs — load cost is parsing plus
// junction-tree construction.
func LoadDatabase(r io.Reader) (*Database, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)

	header, err := snapLine(sc)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot header: %w", err)
	}
	if header != SnapshotVersion {
		return nil, fmt.Errorf("core: not a snapshot (header %q, want %q)", header, SnapshotVersion)
	}

	db := &Database{}
	line, err := snapLine(sc)
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(line, "options ") {
		return nil, fmt.Errorf("core: snapshot: want options line, got %q", line)
	}
	if err := json.Unmarshal([]byte(line[len("options "):]), &db.opt); err != nil {
		return nil, fmt.Errorf("core: snapshot options: %w", err)
	}

	line, err = snapLine(sc)
	if err != nil {
		return nil, err
	}
	var n int
	if _, err := fmt.Sscanf(line, "graphs %d", &n); err != nil {
		return nil, fmt.Errorf("core: snapshot: bad graphs header %q", line)
	}
	dec := dataset.NewPGraphDecoderFromScanner(sc)
	for gi := 0; gi < n; gi++ {
		pg, _, err := dec.Decode()
		if err != nil {
			return nil, fmt.Errorf("core: snapshot graph %d: %w", gi, err)
		}
		db.Graphs = append(db.Graphs, pg)
		db.Certain = append(db.Certain, pg.G)
	}

	line, err = snapLine(sc)
	if err != nil {
		return nil, err
	}
	var nf int
	if _, err := fmt.Sscanf(line, "features %d", &nf); err != nil {
		return nil, fmt.Errorf("core: snapshot: bad features header %q", line)
	}
	gdec := graph.NewDecoderFromScanner(sc)
	for fi := 0; fi < nf; fi++ {
		line, err = snapLine(sc)
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(line)
		if len(fields) < 3 || fields[0] != "feat" {
			return nil, fmt.Errorf("core: snapshot: bad feat line %q", line)
		}
		idx, err1 := strconv.Atoi(fields[1])
		supLen, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || idx != fi || len(fields) != 3+supLen {
			return nil, fmt.Errorf("core: snapshot: bad feat line %q for feature %d", line, fi)
		}
		support := make([]int, supLen)
		for k, tok := range fields[3:] {
			gi, err := strconv.Atoi(tok)
			if err != nil || gi < 0 || gi >= n {
				return nil, fmt.Errorf("core: snapshot: bad support %q in %q", tok, line)
			}
			support[k] = gi
		}
		fg, err := gdec.Decode()
		if err != nil {
			return nil, fmt.Errorf("core: snapshot feature %d graph: %w", fi, err)
		}
		db.Features = append(db.Features, &feature.Feature{
			G: fg, Code: graph.CanonicalCode(fg), Support: support,
		})
	}
	db.Build.Features = len(db.Features)

	line, err = snapLine(sc)
	if err != nil {
		return nil, err
	}
	var hasStruct int
	if _, err := fmt.Sscanf(line, "struct %d", &hasStruct); err != nil {
		return nil, fmt.Errorf("core: snapshot: bad struct header %q", line)
	}
	if hasStruct == 1 {
		ix, err := simsearch.LoadFromScanner(sc, db.Certain)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot: %w", err)
		}
		db.Struct = ix
	}

	line, err = snapLine(sc)
	if err != nil {
		return nil, err
	}
	var hasPMI int
	if _, err := fmt.Sscanf(line, "pmi %d", &hasPMI); err != nil {
		return nil, fmt.Errorf("core: snapshot: bad pmi header %q", line)
	}
	if hasPMI == 1 {
		idx, err := pmi.LoadFromScanner(sc)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot: %w", err)
		}
		for fi := range idx.Entries {
			if len(idx.Entries[fi]) != n {
				return nil, fmt.Errorf("core: snapshot: PMI row %d covers %d graphs, snapshot has %d",
					fi, len(idx.Entries[fi]), n)
			}
		}
		// pmi.Save does not persist options; restore them from the build
		// options so incremental AddGraph behaves exactly as before the
		// round-trip.
		idx.Opt = db.opt.PMI
		db.PMI = idx
		db.Build.IndexSizeBytes = idx.SizeBytes()
	}

	line, err = snapLine(sc)
	if err != nil {
		return nil, err
	}
	if line != "endpgsnap" {
		return nil, fmt.Errorf("core: snapshot: want endpgsnap, got %q", line)
	}

	// Rebuild the inference engines — deterministic junction-tree
	// construction, parallel across graphs.
	db.Engines = make([]*prob.Engine, n)
	engErrs := make([]error, n)
	pool.ForEachIndex(n, normalizeWorkers(-1, n), func(gi int) {
		db.Engines[gi], engErrs[gi] = prob.NewEngine(db.Graphs[gi])
	})
	for gi, err := range engErrs {
		if err != nil {
			return nil, fmt.Errorf("core: snapshot graph %d engine: %w", gi, err)
		}
	}
	return db, nil
}

// snapLine reads the next non-blank, non-comment line, trimmed.
func snapLine(sc *bufio.Scanner) (string, error) {
	return graph.ScanNonEmpty(sc, "core: snapshot")
}
