package core

import (
	"math/rand"
	"sync"

	"probgraph/internal/cover"
	"probgraph/internal/pmi"
)

// scratch is the pooled per-candidate working state of the pruning hot
// path. An evaluating goroutine takes one from the pool, reseeds the
// embedded rng from the candidate's candSeed, runs the judge, and puts it
// back. In steady state a candidate decided by the bounds allocates
// nothing: every buffer sticks at its high-water capacity inside the
// pool, and Seed on a rand.NewSource-backed Rand restores exactly the
// stream a fresh rand.New(rand.NewSource(seed)) would produce — pooling
// never changes a drawn value, so the determinism contract is untouched.
type scratch struct {
	rng *rand.Rand

	entries  []pmi.Entry // LookupInto buffer (one PMI row)
	choicesF []float64   // plain upper bound: per-rq qualifying uppers
	choicesI []int       // plain lower bound: per-rq qualifying features
	chosen   []int       // lower bound: selected feature family
	cur      []int       // soundLsim working copy
	sets     [][]int     // OPT bounds: Instance.Sets backing
	wl, wu   []float64   // OPT bounds: Instance weight backings
	featOf   []int       // OPT lower bound: set index → feature index
	covered  []bool      // OPT upper bound: rq coverage flags
	singles  []int       // OPT upper bound: singleton-set backing [0,1,...]
	cov      cover.Scratch
}

var scratchPool = sync.Pool{
	New: func() any { return &scratch{rng: rand.New(rand.NewSource(0))} },
}

// getScratch takes a pooled scratch reseeded for one candidate.
func getScratch(seed int64) *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.rng.Seed(seed)
	return sc
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

// clearedBools resizes *buf to n all-false entries, reusing capacity.
func clearedBools(buf *[]bool, n int) []bool {
	b := *buf
	if cap(b) < n {
		b = make([]bool, n)
	} else {
		b = b[:n]
		for i := range b {
			b[i] = false
		}
	}
	*buf = b
	return b
}
