package core

import (
	"context"
	"sync"

	"probgraph/internal/graph"
	"probgraph/internal/iso"
	"probgraph/internal/pool"
)

// normalizeWorkers and forEachIndexCtx are the package-local names of the
// shared deterministic worker pool (internal/pool), which the structural
// filter's shard scan also runs on — one Concurrency knob, one pool
// semantics everywhere. Cancellation is checked per work item (one
// candidate evaluation); the returned error is ctx.Err() when the loop
// stopped early.
func normalizeWorkers(concurrency, n int) int { return pool.Normalize(concurrency, n) }

func forEachIndexCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return pool.ForEachIndexCtx(ctx, n, workers, fn)
}

// Salts separating the independent per-candidate random streams derived
// from one QueryOptions.Seed.
const (
	pruneSalt  = 0x5bf03635
	verifySalt = 0x27d4eb2f
)

// candSeed derives the RNG seed for candidate graph gi from the query
// seed with a SplitMix64-style mix. Every randomized per-candidate step
// (SSPBound pair choice, QP rounding, SMP sampling) seeds from this and
// nothing else, so a candidate's draws are a pure function of (Seed, gi) —
// independent of scheduling order and of which other candidates exist.
// That is what makes serial and concurrent runs bitwise-identical.
func candSeed(seed int64, gi int) int64 {
	z := uint64(seed) + (uint64(gi)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// BatchSeed is the per-query seed QueryBatch derives from its base seed:
// query i of a batch runs exactly as db.Query would with this seed, which
// lets callers reproduce any batch member individually.
func BatchSeed(seed int64, i int) int64 {
	return seed + int64(i)*1000003
}

// relEntry records which PMI features relate to one relaxed query by
// subgraph isomorphism, in each direction.
type relEntry struct {
	sup []int // features f with f ⊆iso rq (upper-bound direction)
	sub []int // features f with rq ⊆iso f (lower-bound direction)
}

// relCache memoizes feature relations keyed by the relaxed query's
// canonical code. QueryBatch shares one cache across its queries: relaxed
// query sets of similar queries overlap heavily, so the subgraph
// isomorphism tests against the feature vocabulary — the dominant cost of
// pruner construction — are paid once per distinct relaxed query instead
// of once per (query, relaxed query) pair.
type relCache struct {
	mu sync.Mutex
	m  map[string]relEntry
}

func newRelCache() *relCache { return &relCache{m: make(map[string]relEntry)} }

// featureRelations computes (or recalls from cache) the feature sets
// related to one relaxed query. Safe for concurrent use.
func (v *View) featureRelations(rq *graph.Graph, cache *relCache) relEntry {
	var key string
	if cache != nil {
		key = graph.CanonicalCode(rq)
		cache.mu.Lock()
		e, ok := cache.m[key]
		cache.mu.Unlock()
		if ok {
			return e
		}
	}
	var e relEntry
	for j := 0; j < v.PMI.NumFeatures(); j++ {
		f := v.PMI.Features[j]
		if iso.Exists(f, rq, nil) {
			e.sup = append(e.sup, j)
		}
		if iso.Exists(rq, f, nil) {
			e.sub = append(e.sub, j)
		}
	}
	if cache != nil {
		cache.mu.Lock()
		cache.m[key] = e
		cache.mu.Unlock()
	}
	return e
}
