package core

import (
	"context"
	"iter"
	"sync/atomic"

	"probgraph/internal/graph"
	"probgraph/internal/obs"
	"probgraph/internal/relax"
)

// Match is one verified answer delivered by Database.QueryStream: a
// database graph index and the SSP reported for it. SSP mirrors
// Result.SSP: verified answers carry their estimate, direct lower-bound
// accepts (and VerifierNone answers) carry -1 — they were admitted without
// re-estimation.
type Match struct {
	Graph int
	SSP   float64
}

// QueryStream runs the T-PS pipeline for q and yields verified matches as
// the per-candidate prune+verify stage admits them, instead of
// materializing a *Result at the end. The filter-and-verify pipeline
// front-loads cheap pruning, so answers become known one at a time long
// before the scan finishes; streaming hands each to the consumer the
// moment its verification completes.
//
// Delivery order is arrival order — whichever candidate finishes first —
// and therefore scheduling-dependent. The *set* is not: every per-match
// outcome is a pure function of (Seed, graph index), so the collected
// stream, re-sorted by Match.Graph, is bitwise-identical to Query's
// Answers and SSP estimates at every worker count. Determinism lives in
// the set, arrival order is the only nondeterminism.
//
// The sequence ends in one of three ways:
//   - normally, after the last candidate's outcome was yielded;
//   - with a single (Match{}, err) pair when evaluation fails or ctx is
//     cancelled (err is then ctx.Err(); cancellation is checked per shard
//     and per candidate, exactly as in QueryCtx);
//   - silently, when the consumer breaks out of the loop early — the
//     internal workers are cancelled and joined before the iterator
//     returns, so an abandoned stream leaks no goroutines.
//
// Matches that were already yielded are never retracted; a consumer that
// only needs the first few answers can break as soon as it has them.
func (db *Database) QueryStream(ctx context.Context, q *graph.Graph, opt QueryOptions) iter.Seq2[Match, error] {
	// The view is pinned here — when the stream is created — not when the
	// consumer starts ranging; either way no mutation committed later can
	// reach a started stream.
	return db.View().QueryStream(ctx, q, opt)
}

// QueryStream on a pinned View; see the Database method.
func (v *View) QueryStream(ctx context.Context, q *graph.Graph, opt QueryOptions) iter.Seq2[Match, error] {
	return func(yield func(Match, error) bool) {
		opt = opt.withDefaults()
		if err := opt.Validate(); err != nil {
			yield(Match{}, err)
			return
		}
		if err := ctx.Err(); err != nil {
			yield(Match{}, err)
			return
		}

		// Degenerate relaxation: δ ≥ |q| admits every graph with SSP 1
		// (see query); stream them in index order.
		if opt.Delta >= q.NumEdges() {
			for gi := range v.Graphs {
				if !v.Live(gi) {
					continue
				}
				if err := ctx.Err(); err != nil {
					yield(Match{}, err)
					return
				}
				if !yield(Match{Graph: gi, SSP: 1}, nil) {
					return
				}
			}
			return
		}

		parent := obs.SpanFrom(ctx)
		sp := parent.Child("struct_filter")
		scq, filterCount, err := v.Struct.SCqCtx(obs.ContextWithSpan(ctx, sp), q, opt.Delta, opt.Concurrency)
		sp.EndCount(int64(len(scq)))
		if err != nil {
			yield(Match{}, err)
			return
		}
		u := relax.Relaxed(q, opt.Delta, opt.MaxRelaxed)
		var pr *pruner
		if !opt.SkipProbPruning && v.PMI != nil {
			sp = parent.Child("pmi_prune")
			pr, err = v.newPruner(ctx, u, opt, nil)
			sp.End()
			if err != nil {
				yield(Match{}, err)
				return
			}
		}

		// Fan the candidates out over the shared worker pool
		// (forEachIndexCtx, per-candidate cancellation like every other
		// parallel phase). Workers push each admitted match (or the first
		// evaluation error) onto an unbuffered channel; the consumer side
		// of the rendezvous is this iterator's yield loop, so
		// back-pressure from a slow consumer naturally throttles
		// evaluation. inner is cancelled on early break, error, or caller
		// cancellation; every send selects against it, so no worker can
		// block forever on a departed consumer.
		inner, cancel := context.WithCancel(ctx)
		defer cancel()
		type item struct {
			m   Match
			err error
		}
		out := make(chan item)
		finished := make(chan struct{})
		// When a pipeline is attached, tally outcomes with atomics (the
		// workers race) and fold them into the process counters once all
		// workers have exited — before finished closes, so the tally is
		// complete on every exit path, including early consumer breaks.
		pipe := obs.PipelineFrom(ctx)
		var pruned, accepted, verified, answers atomic.Int64
		go func() {
			defer close(finished)
			sp := parent.Child("verify")
			forEachIndexCtx(inner, len(scq), normalizeWorkers(opt.Concurrency, len(scq)), func(i int) {
				gi := scq[i]
				o := v.evalCandidate(q, u, pr, gi, opt)
				if o.err != nil {
					select {
					case out <- item{err: o.err}:
					case <-inner.Done():
					}
					cancel() // stop handing out further candidates
					return
				}
				match, ssp := outcomeMatch(o, opt)
				if pipe != nil {
					switch o.verdict {
					case judgePrune:
						pruned.Add(1)
					case judgeAccept:
						accepted.Add(1)
					default:
						verified.Add(1)
					}
					if match {
						answers.Add(1)
					}
				}
				if match {
					select {
					case out <- item{m: Match{Graph: gi, SSP: ssp}}:
					case <-inner.Done():
					}
				}
			})
			sp.EndCount(int64(len(scq)))
			pipe.Observe(obs.PipelineStats{
				StructFilterCandidates: filterCount,
				StructConfirmed:        len(scq),
				PrunedByUpper:          int(pruned.Load()),
				AcceptedByLower:        int(accepted.Load()),
				VerifyCandidates:       int(verified.Load()),
				Answers:                int(answers.Load()),
				RelaxedQueries:         len(u),
			})
		}()
		// Join the workers on every exit path — the iterator must not
		// return while pool goroutines are still running.
		join := func() { cancel(); <-finished }

		for {
			select {
			case it := <-out:
				if it.err != nil {
					join()
					yield(Match{}, it.err)
					return
				}
				if !yield(it.m, nil) {
					join()
					return
				}
			case <-finished:
				// All workers exited; out is unbuffered, so no yielded-but-
				// unreceived item can exist. Distinguish completion from
				// caller cancellation.
				if err := ctx.Err(); err != nil {
					yield(Match{}, err)
				}
				return
			}
		}
	}
}
