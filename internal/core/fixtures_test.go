package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The checked-in snapshot fixtures under testdata/snapshots pin the
// on-disk formats: every version the loader claims to accept has a file
// there that must keep loading and answering. v1_tiny/v2_tiny (with
// recorded answers) cover the legacy text formats in
// snapshot_compat_test.go; the v3/v4 pairs below pin the current text and
// binary formats against each other. All of them seed FuzzLoadDatabase.

func fixturePath(name string) string { return filepath.Join(fixtureDir, name) }

func currentFixtureNames() []string {
	return []string{"v3_tiny.pgsnap", "v4_tiny.pgsnapb", "v3_tiny_tombs.pgsnap", "v4_tiny_tombs.pgsnapb"}
}

// TestRegenSnapshotFixtures is the maintenance entry point, not a test:
//
//	PGSNAP_REGEN=1 go test ./internal/core -run RegenSnapshotFixtures
//
// rewrites the current-format fixtures after a deliberate format change;
// commit the result. Without the variable it only verifies the files
// exist. The v1/v2 fixtures are never regenerated — old writers are gone.
func TestRegenSnapshotFixtures(t *testing.T) {
	if os.Getenv("PGSNAP_REGEN") == "" {
		for _, name := range currentFixtureNames() {
			if _, err := os.Stat(fixturePath(name)); err != nil {
				t.Errorf("missing fixture %s — regenerate with PGSNAP_REGEN=1", name)
			}
		}
		return
	}
	write := func(name string, b []byte) {
		if err := os.WriteFile(fixturePath(name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	db, _ := snapDB(t, 8)
	var v3, v4 bytes.Buffer
	if err := db.Save(&v3); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveBinary(&v4); err != nil {
		t.Fatal(err)
	}
	write("v3_tiny.pgsnap", v3.Bytes())
	write("v4_tiny.pgsnapb", v4.Bytes())

	if _, err := db.RemoveGraph(2); err != nil {
		t.Fatal(err)
	}
	var v3t, v4t bytes.Buffer
	if err := db.Save(&v3t); err != nil {
		t.Fatal(err)
	}
	if err := db.SaveBinary(&v4t); err != nil {
		t.Fatal(err)
	}
	write("v3_tiny_tombs.pgsnap", v3t.Bytes())
	write("v4_tiny_tombs.pgsnapb", v4t.Bytes())
}

// TestSnapshotFixtureReplay is the cross-format contract on disk: the v3
// text and v4 binary fixtures of the same corpus must answer recorded
// queries identically (with and without tombstones), and the binary
// fixtures must survive load→save byte-identically. A failure here means
// a codec change altered the meaning of existing files.
func TestSnapshotFixtureReplay(t *testing.T) {
	_, raw := snapDB(t, 8)
	qs := snapQueries(t, raw, 3)
	opt := QueryOptions{Epsilon: 0.3, Delta: 1, OptBounds: true, Seed: 9}

	load := func(name string) *Database {
		b, err := os.ReadFile(fixturePath(name))
		if err != nil {
			t.Fatalf("missing fixture %s (regenerate with PGSNAP_REGEN=1): %v", name, err)
		}
		db, err := LoadDatabase(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("fixture %s: %v", name, err)
		}
		return db
	}
	type recorded struct {
		Answers []int
		SSP     map[int]float64
	}
	answers := func(db *Database) []recorded {
		out := make([]recorded, len(qs))
		for i, q := range qs {
			r, err := db.Query(q, opt)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = recorded{r.Answers, r.SSP}
		}
		return out
	}

	if got, want := answers(load("v4_tiny.pgsnapb")), answers(load("v3_tiny.pgsnap")); !reflect.DeepEqual(got, want) {
		t.Errorf("v4_tiny.pgsnapb answers diverge from v3_tiny.pgsnap")
	}
	if got, want := answers(load("v4_tiny_tombs.pgsnapb")), answers(load("v3_tiny_tombs.pgsnap")); !reflect.DeepEqual(got, want) {
		t.Errorf("v4_tiny_tombs.pgsnapb answers diverge from v3_tiny_tombs.pgsnap")
	}

	for _, name := range []string{"v4_tiny.pgsnapb", "v4_tiny_tombs.pgsnapb"} {
		b, err := os.ReadFile(fixturePath(name))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := load(name).SaveBinary(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), b) {
			t.Errorf("%s: load→save not byte-identical (%d vs %d bytes)", name, buf.Len(), len(b))
		}
	}
}
