//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; alloc
// pins that demand exact counts skip under it (the race runtime itself
// allocates, which is not what they measure).
const raceEnabled = false
