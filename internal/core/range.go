package core

import (
	"fmt"
	"io"
	"sync/atomic"

	"probgraph/internal/feature"
	"probgraph/internal/prob"
)

// Range builds the partition of this view holding global ids [lo, hi):
// the live graphs of that slot range, renumbered contiguously, with the
// structural postings and PMI columns restricted to them and the full
// mined feature vocabulary carried over (supports remapped). The
// partition remembers each slot's global id, and all per-candidate query
// seeding routes through that map — so a query evaluated on the partition
// returns, for every graph it holds, exactly the verdict and SSP the full
// database computes for the same graph, bitwise. That is the contract a
// sharded cluster's merge relies on.
//
// The partition keeps the source view's generation (shards of the same
// database report the same generation, which is how a coordinator detects
// a mixed fleet). Tombstoned slots inside [lo, hi) are dropped — their
// global ids simply don't appear in the partition. A range with no live
// slots is an error, as is partitioning a partition.
func (v *View) Range(lo, hi int) (*View, error) {
	if v.gids != nil {
		return nil, fmt.Errorf("core: range [%d,%d): %w", lo, hi, ErrPartitioned)
	}
	if lo < 0 || hi > v.Len() || lo >= hi {
		return nil, fmt.Errorf("core: range [%d,%d) out of bounds [0,%d)", lo, hi, v.Len())
	}
	nv := &View{
		Generation: v.Generation,
		opt:        v.opt,
		Build:      v.Build,
	}
	// remap: old slot → partition slot, -1 when outside the range or
	// tombstoned. Same shape as compactView, plus the range restriction.
	remap := make([]int, v.Len())
	var dead []int
	for gi := range v.Graphs {
		if gi < lo || gi >= hi || !v.Live(gi) {
			remap[gi] = -1
			dead = append(dead, gi)
			continue
		}
		remap[gi] = len(nv.Graphs)
		nv.Graphs = append(nv.Graphs, v.Graphs[gi])
		nv.Engines = append(nv.Engines, v.Engines[gi])
		nv.Certain = append(nv.Certain, v.Certain[gi])
		nv.gids = append(nv.gids, gi)
	}
	if len(nv.Graphs) == 0 {
		return nil, fmt.Errorf("core: range [%d,%d) holds no live graphs", lo, hi)
	}
	nv.liveCount = len(nv.Graphs)
	nv.Features = make([]*feature.Feature, len(v.Features))
	for i, f := range v.Features {
		cp := *f
		cp.Support = nil
		for _, gi := range f.Support {
			if gi < len(remap) && remap[gi] >= 0 {
				cp.Support = append(cp.Support, remap[gi])
			}
		}
		nv.Features[i] = &cp
	}
	if v.engLazy != nil {
		nv.engLazy = make([]atomic.Pointer[prob.Engine], len(nv.Graphs))
		for gi, ni := range remap {
			if ni >= 0 && nv.Engines[ni] == nil && gi < len(v.engLazy) {
				if e := v.engLazy[gi].Load(); e != nil {
					nv.engLazy[ni].Store(e)
				}
			}
		}
	}
	// Masking every out-of-partition slot and compacting restricts the
	// indices to the partition's graphs while keeping the full feature
	// vocabulary — postings rows and PMI bound entries for the survivors
	// are carried over bitwise, so shard-side pruning decisions match the
	// full database's.
	if v.Struct != nil {
		nv.Struct = v.Struct.WithTombstones(dead).Compacted()
	}
	if v.PMI != nil {
		nv.PMI = v.PMI.WithMaskedColumns(dead).CompactedColumns()
		nv.Build.IndexSizeBytes = nv.PMI.SizeBytes()
	}
	return nv, nil
}

// Partition wraps View.Range in a Database, ready to serve. The database
// is read-only (see ErrPartitioned).
func (db *Database) Partition(lo, hi int) (*Database, error) {
	pv, err := db.View().Range(lo, hi)
	if err != nil {
		return nil, err
	}
	return newFromView(pv), nil
}

// SaveRange writes the partition holding global ids [lo, hi) as a
// snapshot in the given format. Loading it (LoadDatabase / OpenSnapshot)
// yields a read-only partition whose queries are bitwise-identical to the
// full database's for the graphs it holds — the shard bootstrap path of a
// distributed deployment.
func (v *View) SaveRange(w io.Writer, lo, hi int, format SnapshotFormat) error {
	pv, err := v.Range(lo, hi)
	if err != nil {
		return err
	}
	return pv.SaveAs(w, format)
}

// SaveRange writes a range partition of the current view; see
// View.SaveRange.
func (db *Database) SaveRange(w io.Writer, lo, hi int, format SnapshotFormat) error {
	return db.View().SaveRange(w, lo, hi, format)
}

// SaveRangeFile atomically writes a range partition of the current view
// to path; see View.SaveRange and View.SaveFile.
func (db *Database) SaveRangeFile(path string, lo, hi int, format SnapshotFormat) error {
	pv, err := db.View().Range(lo, hi)
	if err != nil {
		return err
	}
	return pv.SaveFile(path, format)
}

// PartitionRanges splits n slots into the given number of contiguous
// [lo, hi) ranges, as evenly as possible (earlier ranges take the
// remainder). This is the canonical cluster partition rule: every slot
// lands in exactly one range, in order. shards must be in [1, n].
func PartitionRanges(n, shards int) ([][2]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: partitioning empty database")
	}
	if shards < 1 || shards > n {
		return nil, fmt.Errorf("core: shard count %d out of range [1,%d]", shards, n)
	}
	out := make([][2]int, 0, shards)
	base, rem := n/shards, n%shards
	lo := 0
	for i := 0; i < shards; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out, nil
}
