package core

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"probgraph/internal/dataset"
	"probgraph/internal/graph"
	"probgraph/internal/pmi"
	"probgraph/internal/prob"
	"probgraph/internal/verify"
)

// extraGraphs generates n insertable graphs from the test distribution.
func extraGraphs(t *testing.T, seed int64, n int) []*prob.PGraph {
	t.Helper()
	raw, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: n, MinVertices: 5, MaxVertices: 7, EdgeFactor: 1.3,
		Labels: 3, Organisms: 2, Correlated: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw.Graphs
}

// workerSweep returns the property-test worker counts {1, 4, GOMAXPROCS},
// deduplicated.
func workerSweep() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// runAtWorkers runs the query at every worker count and asserts the
// results are bitwise-identical, returning the serial one.
func runAtWorkers(t *testing.T, v *View, q *graph.Graph, opt QueryOptions) *Result {
	t.Helper()
	var base *Result
	for _, w := range workerSweep() {
		o := opt
		o.Concurrency = w
		res, err := v.Query(q, o)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res.Answers, base.Answers) || !reflect.DeepEqual(res.SSP, base.SSP) {
			t.Fatalf("workers=%d: result diverged from serial\n got: %v %v\nwant: %v %v",
				w, res.Answers, res.SSP, base.Answers, base.SSP)
		}
	}
	return base
}

// TestMutationEquivalenceProperty drives an interleaved add/remove/replace
// /query schedule and checks, after every mutation, that the mutated
// database answers exactly like a fresh NewDatabase built from the
// surviving graphs:
//
//   - with probabilistic pruning bypassed (candidates are then exactly the
//     vocabulary-independent structural set SCq), answers AND SSP
//     estimates must match bitwise through the slot→fresh index mapping —
//     for the SMP verifier this also pins that per-candidate seeding
//     depends only on (Seed, index);
//   - with the full pipeline (PMI pruning + exact verifier) the answer
//     sets must agree — pruning is vocabulary-dependent but sound;
//   - every check runs at workers ∈ {1, 4, GOMAXPROCS}, bitwise-identical;
//   - the same holds across a save/load round-trip of the mutated
//     (tombstoned) database;
//   - after Compact(), slot indices align with the fresh database, so the
//     pruning-bypassed comparison needs no mapping at all.
func TestMutationEquivalenceProperty(t *testing.T) {
	db, raw := smallDatabase(t, 2101, 8, true)
	pool := extraGraphs(t, 2102, 3)
	rng := rand.New(rand.NewSource(2103))

	// current[i] = the PGraph occupying slot i, nil when tombstoned.
	current := make([]*prob.PGraph, len(raw.Graphs))
	copy(current, raw.Graphs)

	schedule := []string{"remove", "add", "remove", "replace", "add", "remove"}

	applyMutation := func(op string, poolNext *int) {
		t.Helper()
		switch op {
		case "add":
			pg := pool[*poolNext%len(pool)]
			*poolNext++
			gi, _, err := db.AddGraph(pg)
			if err != nil {
				t.Fatal(err)
			}
			if gi != len(current) {
				t.Fatalf("AddGraph slot %d, want %d", gi, len(current))
			}
			current = append(current, pg)
		case "remove":
			var live []int
			for gi, pg := range current {
				if pg != nil {
					live = append(live, gi)
				}
			}
			gi := live[rng.Intn(len(live))]
			if _, err := db.RemoveGraph(gi); err != nil {
				t.Fatal(err)
			}
			current[gi] = nil
		case "replace":
			var live []int
			for gi, pg := range current {
				if pg != nil {
					live = append(live, gi)
				}
			}
			gi := live[rng.Intn(len(live))]
			pg := pool[*poolNext%len(pool)]
			*poolNext++
			if _, err := db.ReplaceGraph(gi, pg); err != nil {
				t.Fatal(err)
			}
			current[gi] = pg
		}
	}

	// check compares the mutated database against a fresh build over the
	// survivors, for one query.
	check := func(q *graph.Graph, seed int64) {
		t.Helper()
		var survivors []*prob.PGraph
		remap := map[int]int{} // slot -> fresh index
		for gi, pg := range current {
			if pg != nil {
				remap[gi] = len(survivors)
				survivors = append(survivors, pg)
			}
		}
		opt := DefaultBuildOptions()
		opt.Feature.Beta = 0.2
		opt.Feature.Alpha = 0.05
		opt.Feature.Gamma = 0.05
		opt.Feature.MaxL = 3
		opt.PMI.Seed = 2101
		fresh, err := NewDatabase(survivors, opt)
		if err != nil {
			t.Fatal(err)
		}

		// (1) Pruning bypassed, exact verifier: candidates are the
		// vocabulary-independent SCq and the exact SSP is seed-free, so
		// answers AND SSP estimates must match bitwise through the slot
		// mapping even while slot indices differ from fresh indices.
		bypass := QueryOptions{
			Epsilon: 0.35, Delta: 1, SkipProbPruning: true, Seed: seed,
			Verifier: VerifierExact, Verify: verify.Options{MaxClauses: 22},
		}
		mutated := runAtWorkers(t, db.View(), q, bypass)
		freshRes, err := fresh.Query(q, bypass)
		if err != nil {
			t.Fatal(err)
		}
		mappedAnswers := make([]int, 0, len(mutated.Answers))
		for _, gi := range mutated.Answers {
			mappedAnswers = append(mappedAnswers, remap[gi])
		}
		sort.Ints(mappedAnswers)
		wantAnswers := freshRes.Answers
		if wantAnswers == nil {
			wantAnswers = []int{}
		}
		if !reflect.DeepEqual(mappedAnswers, wantAnswers) {
			t.Fatalf("bypass answers: mutated %v (mapped %v) != fresh %v",
				mutated.Answers, mappedAnswers, freshRes.Answers)
		}
		if len(mutated.SSP) != len(freshRes.SSP) {
			t.Fatalf("bypass SSP sizes: %d != %d", len(mutated.SSP), len(freshRes.SSP))
		}
		for gi, ssp := range mutated.SSP {
			if want := freshRes.SSP[remap[gi]]; want != ssp {
				t.Fatalf("bypass SSP: slot %d (fresh %d): %v != %v", gi, remap[gi], ssp, want)
			}
		}

		// (2) Full pipeline + exact verifier: answer sets agree.
		full := QueryOptions{
			Epsilon: 0.35, Delta: 1, OptBounds: true, Seed: seed,
			Verifier: VerifierExact, Verify: verify.Options{MaxClauses: 22},
		}
		mutatedFull := runAtWorkers(t, db.View(), q, full)
		freshFull, err := fresh.Query(q, full)
		if err != nil {
			t.Fatal(err)
		}
		mappedFull := make([]int, 0, len(mutatedFull.Answers))
		for _, gi := range mutatedFull.Answers {
			mappedFull = append(mappedFull, remap[gi])
		}
		sort.Ints(mappedFull)
		if !sameIntSet(mappedFull, freshFull.Answers) {
			t.Fatalf("full-pipeline answers: mutated %v (mapped %v) != fresh %v",
				mutatedFull.Answers, mappedFull, freshFull.Answers)
		}
	}

	poolNext := 0
	for si, op := range schedule {
		applyMutation(op, &poolNext)
		src := 0
		for gi, pg := range current {
			if pg != nil {
				src = gi
				break
			}
		}
		q := dataset.ExtractQuery(current[src].G, 4, rng)
		check(q, int64(40+si))
	}

	// Save/load round-trip of the tombstoned database: same query, bitwise.
	q := dataset.ExtractQuery(firstLive(current).G, 4, rng)
	fullOpts := QueryOptions{Epsilon: 0.35, Delta: 1, OptBounds: true, Seed: 99}
	before, err := db.Query(q, fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := db.Save(&snap); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadDatabase(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Generation() != db.Generation() || reloaded.NumLive() != db.NumLive() {
		t.Fatalf("round-trip: gen/live (%d,%d) != (%d,%d)",
			reloaded.Generation(), reloaded.NumLive(), db.Generation(), db.NumLive())
	}
	after, err := reloaded.Query(q, fullOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.Answers, after.Answers) || !reflect.DeepEqual(before.SSP, after.SSP) {
		t.Fatalf("round-trip changed the answer: %v %v != %v %v",
			after.Answers, after.SSP, before.Answers, before.SSP)
	}

	// Compact: indices align with the fresh database, so the
	// pruning-bypassed comparison is bitwise with no mapping — and the
	// SMP verifier now agrees too, because per-candidate seeds are
	// derived from indices that finally coincide.
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.Tombstones() != 0 {
		t.Fatalf("tombstones survived Compact: %d", db.Tombstones())
	}
	var survivors []*prob.PGraph
	for _, pg := range current {
		if pg != nil {
			survivors = append(survivors, pg)
		}
	}
	fresh, err := NewDatabase(survivors, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	bypass := QueryOptions{Epsilon: 0.35, Delta: 1, SkipProbPruning: true, Seed: 7,
		Verify: verify.Options{N: 200}}
	a := runAtWorkers(t, db.View(), q, bypass)
	b, err := fresh.Query(q, bypass)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIntSet(a.Answers, b.Answers) || !reflect.DeepEqual(a.SSP, b.SSP) {
		t.Fatalf("post-compact: %v %v != fresh %v %v", a.Answers, a.SSP, b.Answers, b.SSP)
	}
}

func firstLive(current []*prob.PGraph) *prob.PGraph {
	for _, pg := range current {
		if pg != nil {
			return pg
		}
	}
	return nil
}

// TestPinnedViewSurvivesMutations: a view pinned before a burst of
// mutations answers bitwise-identically afterwards — the acceptance
// criterion "a query started before a mutation completes against its
// pinned view with results bitwise-identical to pre-mutation Query".
func TestPinnedViewSurvivesMutations(t *testing.T) {
	db, raw := smallDatabase(t, 2201, 7, true)
	pool := extraGraphs(t, 2202, 2)
	rng := rand.New(rand.NewSource(2203))
	q := dataset.ExtractQuery(raw.Graphs[1].G, 4, rng)
	opt := QueryOptions{Epsilon: 0.35, Delta: 1, OptBounds: true, Seed: 17}

	pinned := db.View()
	want, err := pinned.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := db.AddGraph(pool[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RemoveGraph(2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReplaceGraph(1, pool[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}

	got, err := pinned.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Answers, want.Answers) || !reflect.DeepEqual(got.SSP, want.SSP) {
		t.Fatalf("pinned view drifted: %v %v != %v %v", got.Answers, got.SSP, want.Answers, want.SSP)
	}
	if pinned.Generation == db.Generation() {
		t.Fatal("mutations did not advance the generation")
	}
}

// TestRemoveGraphSemantics pins removal behaviour: the removed graph
// leaves every answer set while the survivors' results — indices and SSP
// estimates — stay bitwise-identical (slots are stable, seeding is by
// slot); double removal and out-of-range ids fail; generations advance.
func TestRemoveGraphSemantics(t *testing.T) {
	db, raw := smallDatabase(t, 2301, 8, true)
	rng := rand.New(rand.NewSource(2302))
	q := dataset.ExtractQuery(raw.Graphs[0].G, 4, rng)
	opt := QueryOptions{Epsilon: 0.3, Delta: 1, OptBounds: true, Seed: 23}

	before, err := db.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Answers) == 0 {
		t.Skip("query has no answers; pick a different seed")
	}
	victim := before.Answers[0]

	gen, err := db.RemoveGraph(victim)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("generation after first mutation = %d, want 2", gen)
	}
	if db.Len() != 8 || db.NumLive() != 7 || db.Tombstones() != 1 {
		t.Fatalf("shape after remove: len=%d live=%d tombs=%d", db.Len(), db.NumLive(), db.Tombstones())
	}

	after, err := db.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantAnswers := make([]int, 0, len(before.Answers)-1)
	for _, gi := range before.Answers {
		if gi != victim {
			wantAnswers = append(wantAnswers, gi)
		}
	}
	if !reflect.DeepEqual(after.Answers, wantAnswers) {
		t.Fatalf("post-remove answers %v, want %v", after.Answers, wantAnswers)
	}
	for gi, ssp := range after.SSP {
		if want, ok := before.SSP[gi]; !ok || want != ssp {
			t.Fatalf("survivor %d: SSP %v, want %v (present %t)", gi, ssp, before.SSP[gi], ok)
		}
	}

	if _, err := db.RemoveGraph(victim); err == nil || !strings.Contains(err.Error(), "already removed") {
		t.Fatalf("double remove: err = %v", err)
	}
	if _, err := db.RemoveGraph(99); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range remove: err = %v", err)
	}
	if _, err := db.ReplaceGraph(victim, raw.Graphs[0]); err == nil {
		t.Fatal("replacing a tombstoned slot succeeded")
	}

	// The degenerate δ ≥ |q| path must skip tombstones too.
	deg, err := db.Query(q, QueryOptions{Epsilon: 0.5, Delta: q.NumEdges(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, gi := range deg.Answers {
		if gi == victim {
			t.Fatal("degenerate path answered a tombstoned slot")
		}
	}
	if len(deg.Answers) != 7 {
		t.Fatalf("degenerate path answered %d graphs, want 7", len(deg.Answers))
	}
}

// TestAutoCompactThreshold: once tombstones cross the configured
// fraction, the triggering removal compacts in the same commit — two
// generations in one mutation, tombstones gone, survivors renumbered.
func TestAutoCompactThreshold(t *testing.T) {
	db, _ := smallDatabase(t, 2401, 6, true)
	db.SetCompactThreshold(0.25)

	gen, err := db.RemoveGraph(0)
	if err != nil {
		t.Fatal(err)
	}
	// 1/6 ≤ 0.25: tombstone stays.
	if gen != 2 || db.Tombstones() != 1 || db.Len() != 6 {
		t.Fatalf("after first remove: gen=%d tombs=%d len=%d", gen, db.Tombstones(), db.Len())
	}
	gen, err = db.RemoveGraph(3)
	if err != nil {
		t.Fatal(err)
	}
	// 2/6 > 0.25: remove + compact in one commit.
	if gen != 4 {
		t.Fatalf("auto-compacting remove returned generation %d, want 4 (remove + compact)", gen)
	}
	if db.Tombstones() != 0 || db.Len() != 4 || db.NumLive() != 4 {
		t.Fatalf("after auto-compact: tombs=%d len=%d live=%d", db.Tombstones(), db.Len(), db.NumLive())
	}
	if db.PMI() != nil {
		for fi := range db.PMI().Entries {
			if len(db.PMI().Entries[fi]) != 4 {
				t.Fatalf("PMI row %d has %d columns after compaction, want 4", fi, len(db.PMI().Entries[fi]))
			}
		}
	}
}

// TestChurnMutationsDuringQueries is the race stress behind the CI
// mutation-during-query step: a background writer hammers
// add/remove/replace (with occasional compaction) while query, top-k,
// batch, and streaming readers run at several worker counts. Run with
// -race; correctness of interleaved results is covered by the
// equivalence property test — here the assertions are only that nothing
// errors, no reader ever observes a half-applied mutation (slot-array
// lengths agree), and every stream's sorted answers match a re-run
// against its own pinned view.
func TestChurnMutationsDuringQueries(t *testing.T) {
	db, raw := smallDatabase(t, 2501, 8, true)
	pool := extraGraphs(t, 2502, 4)
	rng := rand.New(rand.NewSource(2503))
	var qs []*graph.Graph
	for i := 0; i < 4; i++ {
		qs = append(qs, dataset.ExtractQuery(raw.Graphs[i].G, 4, rng))
	}

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		wrng := rand.New(rand.NewSource(2504))
		added := []int{}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0, 1:
				if gi, _, err := db.AddGraph(pool[i%len(pool)]); err == nil {
					added = append(added, gi)
				}
			case 2:
				if len(added) > 0 {
					k := wrng.Intn(len(added))
					if _, err := db.RemoveGraph(added[k]); err == nil {
						added = append(added[:k], added[k+1:]...)
					}
				}
			case 3:
				if _, err := db.ReplaceGraph(wrng.Intn(3), pool[i%len(pool)]); err != nil {
					// Slot may be tombstoned by an earlier iteration; only
					// unexpected errors matter and those surface via the
					// equivalence tests.
					_ = err
				}
			}
			if i%16 == 15 {
				if _, err := db.Compact(); err != nil {
					t.Error(err)
					return
				}
				added = added[:0]
			}
		}
	}()

	var readerWG sync.WaitGroup
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			workers := []int{1, 4, -1}[r%3]
			for i := 0; i < 25; i++ {
				v := db.View()
				if len(v.Graphs) != len(v.Engines) || len(v.Graphs) != len(v.Certain) {
					t.Errorf("view %d: ragged slot arrays (%d, %d, %d)",
						v.Generation, len(v.Graphs), len(v.Engines), len(v.Certain))
					return
				}
				q := qs[(r+i)%len(qs)]
				opt := QueryOptions{Epsilon: 0.35, Delta: 1, OptBounds: true,
					Seed: int64(i), Concurrency: workers}
				switch i % 3 {
				case 0:
					var got []int
					for m, err := range v.QueryStream(context.Background(), q, opt) {
						if err != nil {
							t.Errorf("reader %d: stream: %v", r, err)
							return
						}
						got = append(got, m.Graph)
					}
					sort.Ints(got)
					res, err := v.Query(q, opt)
					if err != nil {
						t.Errorf("reader %d: %v", r, err)
						return
					}
					want := res.Answers
					if want == nil {
						want = []int{}
					}
					if got == nil {
						got = []int{}
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("reader %d: stream answers %v != query %v on pinned view", r, got, want)
						return
					}
				case 1:
					if _, err := v.QueryTopK(q, 3, opt); err != nil {
						t.Errorf("reader %d: topk: %v", r, err)
						return
					}
				case 2:
					if _, err := v.QueryBatch(qs[:2], opt); err != nil {
						t.Errorf("reader %d: batch: %v", r, err)
						return
					}
				}
			}
		}(r)
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}

// TestAttachPMIKeepsTombstoneMask: attaching a persisted PMI to a
// database that already has tombstones must re-apply the column mask —
// otherwise a later Compact would drop graph slots but keep every PMI
// column, leaving queries pruning against other graphs' bounds.
func TestAttachPMIKeepsTombstoneMask(t *testing.T) {
	db, raw := smallDatabase(t, 2601, 6, true)
	const victim = 2
	if _, err := db.RemoveGraph(victim); err != nil {
		t.Fatal(err)
	}

	// Round-trip the PMI the way pgsearch -saveindex/-loadindex does.
	var buf bytes.Buffer
	if err := db.PMI().Save(&buf); err != nil {
		t.Fatal(err)
	}
	idx, err := pmi.Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AttachPMI(idx); err != nil {
		t.Fatal(err)
	}
	if !db.PMI().Masked(victim) || db.PMI().MaskedColumns() != 1 {
		t.Fatalf("attached PMI lost the tombstone mask (masked=%t count=%d)",
			db.PMI().Masked(victim), db.PMI().MaskedColumns())
	}

	if _, err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	for fi := range db.PMI().Entries {
		if len(db.PMI().Entries[fi]) != db.Len() {
			t.Fatalf("post-compact PMI row %d has %d columns, database has %d slots",
				fi, len(db.PMI().Entries[fi]), db.Len())
		}
	}

	// And the compacted database still answers exactly like a pipeline
	// with sound per-slot bounds: exact verifier vs naive enumeration.
	rng := rand.New(rand.NewSource(2602))
	q := dataset.ExtractQuery(raw.Graphs[0].G, 4, rng)
	res, err := db.Query(q, QueryOptions{
		Epsilon: 0.35, Delta: 1, OptBounds: true,
		Verifier: VerifierExact, Verify: verify.Options{MaxClauses: 22}, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naiveAnswers(t, db, q, 0.35, 1)
	if !sameIntSet(res.Answers, want) {
		t.Fatalf("post-compact answers %v != naive %v", res.Answers, want)
	}
}

// TestMutationsOnZeroFeatureVocabulary: a database whose mining yields no
// features (PMI with zero rows) must still support the whole mutation
// surface — the PMI's column count cannot be derived from a row when
// there is none (regression: RemoveGraph used to panic sizing the mask).
func TestMutationsOnZeroFeatureVocabulary(t *testing.T) {
	raw, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 5, MinVertices: 5, MaxVertices: 7, EdgeFactor: 1.3,
		Labels: 3, Organisms: 2, Correlated: true, Seed: 2701,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultBuildOptions()
	opt.Feature.Beta = 5.0 // minSupport > |D|: nothing can qualify
	db, err := NewDatabase(raw.Graphs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if db.PMI() == nil || db.PMI().NumFeatures() != 0 {
		t.Fatalf("setup: want a PMI with zero feature rows, got %v", db.PMI())
	}

	if _, err := db.RemoveGraph(1); err != nil {
		t.Fatalf("RemoveGraph on zero-feature database: %v", err)
	}
	if gi, _, err := db.AddGraph(raw.Graphs[0]); err != nil || gi != 5 {
		t.Fatalf("AddGraph on zero-feature database: gi=%d err=%v", gi, err)
	}
	if _, err := db.ReplaceGraph(0, raw.Graphs[2]); err != nil {
		t.Fatalf("ReplaceGraph on zero-feature database: %v", err)
	}
	// Save→load→mutate→compact round trip keeps working too.
	var snap bytes.Buffer
	if err := db.Save(&snap); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadDatabase(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reloaded.RemoveGraph(3); err != nil {
		t.Fatal(err)
	}
	if _, err := reloaded.Compact(); err != nil {
		t.Fatal(err)
	}
	if reloaded.NumLive() != 4 || reloaded.Tombstones() != 0 {
		t.Fatalf("post-compact shape: live=%d tombs=%d", reloaded.NumLive(), reloaded.Tombstones())
	}
	rng := rand.New(rand.NewSource(2702))
	q := dataset.ExtractQuery(raw.Graphs[2].G, 4, rng)
	if _, err := reloaded.Query(q, QueryOptions{Epsilon: 0.4, Delta: 1, Seed: 3}); err != nil {
		t.Fatal(err)
	}
}
