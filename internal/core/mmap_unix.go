//go:build unix

package core

import (
	"os"
	"syscall"
)

// mapFile maps f read-only. The mapping is intentionally never unmapped:
// OpenSnapshot hands out a database whose slabs alias the pages for the
// process lifetime, which is exactly the serving pattern — the kernel
// shares the page cache across every process mapping the same snapshot.
func mapFile(f *os.File) ([]byte, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil
	}
	if size != int64(int(size)) {
		return nil, syscall.EFBIG
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}
