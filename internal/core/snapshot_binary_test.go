package core

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"probgraph/internal/dataset"
)

// roundTripBinary snapshots db as pgsnap v4 and loads it back through the
// format-sniffing loader.
func roundTripBinary(t *testing.T, db *Database) *Database {
	t.Helper()
	var buf bytes.Buffer
	if err := db.SaveBinary(&buf); err != nil {
		t.Fatalf("SaveBinary: %v", err)
	}
	got, err := LoadDatabase(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadDatabase(binary): %v", err)
	}
	return got
}

// TestSnapshotBinaryDifferential: one corpus saved as v3 text and v4
// binary, loaded side by side, must answer bitwise-identically across
// every query mode — the two formats are one database.
func TestSnapshotBinaryDifferential(t *testing.T) {
	db, raw := snapDB(t, 10)
	text := roundTrip(t, db)
	bin := roundTripBinary(t, db)

	if bin.Len() != text.Len() || bin.Generation() != text.Generation() {
		t.Fatalf("shape diverged: binary %d/gen %d, text %d/gen %d",
			bin.Len(), bin.Generation(), text.Len(), text.Generation())
	}
	for fi := range text.PMI().Entries {
		if !reflect.DeepEqual(text.PMI().Entries[fi], bin.PMI().Entries[fi]) {
			t.Fatalf("PMI row %d diverged between text and binary load", fi)
		}
	}

	qs := snapQueries(t, raw, 3)
	for i, q := range qs {
		for _, opt := range []QueryOptions{
			{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: int64(7 + i)},
			{Epsilon: 0.6, Delta: 1, Seed: int64(100 + i)},
		} {
			want, err := text.Query(q, opt)
			if err != nil {
				t.Fatal(err)
			}
			have, err := bin.Query(q, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Answers, have.Answers) || !reflect.DeepEqual(want.SSP, have.SSP) {
				t.Fatalf("query %d: text and binary loads diverged", i)
			}
		}
	}

	wantTop, err := text.QueryTopK(qs[0], 3, QueryOptions{Delta: 1, OptBounds: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	haveTop, err := bin.QueryTopK(qs[0], 3, QueryOptions{Delta: 1, OptBounds: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantTop, haveTop) {
		t.Fatalf("topk diverged: %v != %v", haveTop, wantTop)
	}

	opt := QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: 21, Concurrency: 3}
	wantBatch, err := text.QueryBatch(qs, opt)
	if err != nil {
		t.Fatal(err)
	}
	haveBatch, err := bin.QueryBatch(qs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantBatch {
		if !reflect.DeepEqual(wantBatch[i].Answers, haveBatch[i].Answers) ||
			!reflect.DeepEqual(wantBatch[i].SSP, haveBatch[i].SSP) {
			t.Fatalf("batch query %d diverged", i)
		}
	}

	sopt := QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: 33}
	var wantStream, haveStream []Match
	for m, err := range text.QueryStream(context.Background(), qs[0], sopt) {
		if err != nil {
			t.Fatal(err)
		}
		wantStream = append(wantStream, m)
	}
	for m, err := range bin.QueryStream(context.Background(), qs[0], sopt) {
		if err != nil {
			t.Fatal(err)
		}
		haveStream = append(haveStream, m)
	}
	if !reflect.DeepEqual(wantStream, haveStream) {
		t.Fatalf("stream diverged: %v != %v", haveStream, wantStream)
	}
}

// TestSnapshotBinaryByteStable: save→load→save must be byte-identical —
// the binary codec has no formatting ambiguity to hide behind.
func TestSnapshotBinaryByteStable(t *testing.T) {
	db, _ := snapDB(t, 8)

	// Exercise the tombstone path too.
	if _, err := db.RemoveGraph(3); err != nil {
		t.Fatal(err)
	}

	var first bytes.Buffer
	if err := db.SaveBinary(&first); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadDatabase(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := reloaded.SaveBinary(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("binary snapshot not byte-stable: %d vs %d bytes", first.Len(), second.Len())
	}
}

// TestSnapshotBinaryTombstones: generation and tombstones survive the
// binary round trip and removed graphs stay invisible to queries.
func TestSnapshotBinaryTombstones(t *testing.T) {
	db, raw := snapDB(t, 8)
	if _, err := db.RemoveGraph(2); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RemoveGraph(5); err != nil {
		t.Fatal(err)
	}
	got := roundTripBinary(t, db)
	if got.Generation() != db.Generation() || got.Tombstones() != 2 || got.NumLive() != 6 {
		t.Fatalf("tombstone state diverged: gen %d/%d, tombs %d, live %d",
			got.Generation(), db.Generation(), got.Tombstones(), got.NumLive())
	}
	q := snapQueries(t, raw, 1)[0]
	opt := QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: 17}
	want, err := db.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Answers, have.Answers) || !reflect.DeepEqual(want.SSP, have.SSP) {
		t.Fatalf("tombstoned query diverged")
	}
}

// TestOpenSnapshot: the mmap-backed open answers identically to the
// in-memory load, for both formats.
func TestOpenSnapshot(t *testing.T) {
	db, raw := snapDB(t, 8)
	dir := t.TempDir()
	q := snapQueries(t, raw, 1)[0]
	opt := QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: 5}
	want, err := db.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []SnapshotFormat{SnapshotText, SnapshotBinary} {
		path := filepath.Join(dir, "snap-"+string(format))
		if err := db.SaveFile(path, format); err != nil {
			t.Fatalf("SaveFile(%s): %v", format, err)
		}
		got, err := OpenSnapshot(path)
		if err != nil {
			t.Fatalf("OpenSnapshot(%s): %v", format, err)
		}
		have, err := got.Query(q, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Answers, have.Answers) || !reflect.DeepEqual(want.SSP, have.SSP) {
			t.Fatalf("OpenSnapshot(%s) answers diverged", format)
		}
	}
}

// TestSnapshotBinaryNoPMI: a structure-only database round-trips in v4.
func TestSnapshotBinaryNoPMI(t *testing.T) {
	raw, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 6, MinVertices: 5, MaxVertices: 6, Organisms: 2,
		Correlated: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultBuildOptions()
	opt.SkipPMI = true
	db, err := NewDatabase(raw.Graphs, opt)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTripBinary(t, db)
	if got.PMI() != nil {
		t.Fatal("reloaded database unexpectedly has a PMI")
	}
	if got.Struct() == nil {
		t.Fatal("reloaded database lost its structural filter")
	}
}

// TestSaveFileAtomic: a save that dies partway must leave an existing
// snapshot at the path untouched.
func TestSaveFileAtomic(t *testing.T) {
	db, _ := snapDB(t, 6)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := db.SaveFile(path, SnapshotBinary); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the write partway: writeFileAtomic's writer fails after a few
	// bytes, simulating a crash mid-save.
	err = writeFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial garbage")); err != nil {
			return err
		}
		return os.ErrClosed
	})
	if err == nil {
		t.Fatal("want error from failed save")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(good, after) {
		t.Fatal("failed save corrupted the existing snapshot")
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover temp files: %v", entries)
	}
	if _, err := LoadDatabase(bytes.NewReader(after)); err != nil {
		t.Fatalf("surviving snapshot no longer loads: %v", err)
	}
}
