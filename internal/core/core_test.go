package core

import (
	"math"
	"math/rand"
	"testing"

	"probgraph/internal/dataset"
	"probgraph/internal/graph"
	"probgraph/internal/prob"
	"probgraph/internal/verify"
)

// smallDatabase builds an indexed database of small graphs where exact
// world enumeration is feasible.
func smallDatabase(t *testing.T, seed int64, n int, correlated bool) (*Database, *dataset.DB) {
	t.Helper()
	raw, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: n, MinVertices: 5, MaxVertices: 7, EdgeFactor: 1.3,
		Labels: 3, Organisms: 2, Correlated: correlated, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultBuildOptions()
	opt.Feature.Beta = 0.2
	opt.Feature.Alpha = 0.05
	opt.Feature.Gamma = 0.05
	opt.Feature.MaxL = 3
	opt.PMI.Seed = seed
	db, err := NewDatabase(raw.Graphs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return db, raw
}

// naiveAnswers computes the T-PS answer set by full enumeration.
func naiveAnswers(t *testing.T, db *Database, q *graph.Graph, eps float64, delta int) ([]int, map[int]float64) {
	t.Helper()
	var out []int
	ssp := make(map[int]float64)
	for gi := range db.Graphs() {
		p, err := db.ExactSSPByEnumeration(q, gi, delta)
		if err != nil {
			t.Fatal(err)
		}
		ssp[gi] = p
		if p >= eps {
			out = append(out, gi)
		}
	}
	return out, ssp
}

func sameIntSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[int]bool, len(a))
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

// TestPipelineWithoutBoundsIsExact: structural pruning (Theorem 1) + Lemma 1
// + exact verification must reproduce naive enumeration exactly — no
// heuristic component involved.
func TestPipelineWithoutBoundsIsExact(t *testing.T) {
	for _, correlated := range []bool{false, true} {
		db, _ := smallDatabase(t, 101, 8, correlated)
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 4; trial++ {
			q := dataset.ExtractQuery(db.Certain()[trial%len(db.Certain())], 4, rng)
			for _, delta := range []int{0, 1} {
				eps := 0.4
				res, err := db.Query(q, QueryOptions{
					Epsilon: eps, Delta: delta,
					SkipProbPruning: true,
					Verifier:        VerifierExact,
					Verify:          verify.Options{MaxClauses: 22},
				})
				if err != nil {
					t.Fatalf("correlated=%v trial %d: %v", correlated, trial, err)
				}
				want, ssp := naiveAnswers(t, db, q, eps, delta)
				if !sameIntSet(res.Answers, want) {
					t.Fatalf("correlated=%v trial %d delta %d: pipeline %v vs naive %v (ssp %v)",
						correlated, trial, delta, res.Answers, want, ssp)
				}
			}
		}
	}
}

// TestFullPipelineSoundness: with probabilistic pruning enabled, answers
// must still match naive enumeration — the PMI bounds are sound (exact
// family evaluation), so pruning introduces no errors with the Exact
// verifier.
func TestFullPipelineSoundness(t *testing.T) {
	for _, optBounds := range []bool{false, true} {
		db, _ := smallDatabase(t, 202, 8, true)
		rng := rand.New(rand.NewSource(9))
		for trial := 0; trial < 3; trial++ {
			q := dataset.ExtractQuery(db.Certain()[trial], 4, rng)
			eps := 0.35
			res, err := db.Query(q, QueryOptions{
				Epsilon: eps, Delta: 1,
				OptBounds: optBounds,
				Verifier:  VerifierExact,
				Verify:    verify.Options{MaxClauses: 22},
				Seed:      int64(trial),
			})
			if err != nil {
				t.Fatalf("optBounds=%v trial %d: %v", optBounds, trial, err)
			}
			want, ssp := naiveAnswers(t, db, q, eps, 1)
			if !sameIntSet(res.Answers, want) {
				t.Fatalf("optBounds=%v trial %d: pipeline %v vs naive %v (ssp %v, stats %+v)",
					optBounds, trial, res.Answers, want, ssp, res.Stats)
			}
		}
	}
}

// TestSMPPipelineCloseToExact: the default SMP verifier must agree with
// naive enumeration except on graphs whose SSP is within sampling noise of
// the threshold.
func TestSMPPipelineCloseToExact(t *testing.T) {
	db, _ := smallDatabase(t, 303, 8, true)
	rng := rand.New(rand.NewSource(11))
	q := dataset.ExtractQuery(db.Certain()[0], 4, rng)
	eps := 0.45
	res, err := db.Query(q, QueryOptions{
		Epsilon: eps, Delta: 1,
		OptBounds: true,
		Verifier:  VerifierSMP,
		Verify:    verify.Options{N: 20000},
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ssp := naiveAnswers(t, db, q, eps, 1)
	inRes := make(map[int]bool)
	for _, gi := range res.Answers {
		inRes[gi] = true
	}
	const margin = 0.05
	for gi, p := range ssp {
		if math.Abs(p-eps) < margin {
			continue // borderline: sampling may land either side
		}
		if (p >= eps) != inRes[gi] {
			t.Fatalf("graph %d: exact SSP %v vs threshold %v disagrees with pipeline (answered=%v)",
				gi, p, eps, inRes[gi])
		}
	}
}

func TestQueryStatsPopulated(t *testing.T) {
	db, _ := smallDatabase(t, 404, 6, true)
	rng := rand.New(rand.NewSource(13))
	q := dataset.ExtractQuery(db.Certain()[0], 4, rng)
	res, err := db.Query(q, QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.RelaxedQueries == 0 {
		t.Fatal("stats: relaxed queries not recorded")
	}
	if s.StructFilterCandidates < s.StructConfirmed {
		t.Fatal("stats: filter candidates < confirmed")
	}
	if s.StructConfirmed != s.PrunedByUpper+s.AcceptedByLower+s.VerifyCandidates {
		t.Fatalf("stats: phase counts inconsistent: %+v", s)
	}
	if s.TimeTotal <= 0 {
		t.Fatal("stats: total time missing")
	}
}

func TestQueryValidation(t *testing.T) {
	db, _ := smallDatabase(t, 505, 4, false)
	q := db.Certain()[0]
	if _, err := db.Query(q, QueryOptions{Epsilon: 1.5, Delta: 1}); err == nil {
		t.Fatal("epsilon > 1 must be rejected")
	}
	if _, err := db.Query(q, QueryOptions{Epsilon: 0.5, Delta: -1}); err == nil {
		t.Fatal("negative delta must be rejected")
	}
}

func TestDeltaBeyondQuerySize(t *testing.T) {
	db, _ := smallDatabase(t, 606, 4, true)
	b := graph.NewBuilder("tiny")
	u := b.AddVertex("C0")
	v := b.AddVertex("C1")
	b.MustAddEdge(u, v, "")
	q := b.Build()
	res, err := db.Query(q, QueryOptions{Epsilon: 0.9, Delta: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != db.Len() {
		t.Fatalf("δ ≥ |q| must match everything: got %d of %d", len(res.Answers), db.Len())
	}
}

func TestDirectAcceptsAreTrueAnswers(t *testing.T) {
	// Any graph accepted by Pruning 2 must truly have SSP ≥ ε.
	db, _ := smallDatabase(t, 707, 8, true)
	rng := rand.New(rand.NewSource(17))
	found := false
	for trial := 0; trial < 6 && !found; trial++ {
		q := dataset.ExtractQuery(db.Certain()[trial%len(db.Certain())], 3, rng)
		eps := 0.3
		res, err := db.Query(q, QueryOptions{
			Epsilon: eps, Delta: 1, OptBounds: true,
			Verifier: VerifierExact, Verify: verify.Options{MaxClauses: 22},
			Seed: int64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.AcceptedByLower == 0 {
			continue
		}
		found = true
		for gi, ssp := range res.SSP {
			if ssp != -1 {
				continue // verified, not direct-accepted
			}
			p, err := db.ExactSSPByEnumeration(q, gi, 1)
			if err != nil {
				t.Fatal(err)
			}
			if p < eps-1e-9 {
				t.Fatalf("direct accept of graph %d with true SSP %v < ε %v", gi, p, eps)
			}
		}
	}
	if !found {
		t.Skip("no direct accepts in these trials (acceptable)")
	}
}

func TestVerifierNoneCountsCandidates(t *testing.T) {
	db, _ := smallDatabase(t, 808, 6, true)
	rng := rand.New(rand.NewSource(19))
	q := dataset.ExtractQuery(db.Certain()[1], 4, rng)
	res, err := db.Query(q, QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Verifier: VerifierNone, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Answers = direct accepts + unpruned candidates.
	if len(res.Answers) != res.Stats.AcceptedByLower+res.Stats.VerifyCandidates {
		t.Fatalf("VerifierNone answer math wrong: %+v", res.Stats)
	}
}

func TestEmptyDatabaseRejected(t *testing.T) {
	if _, err := NewDatabase(nil, DefaultBuildOptions()); err == nil {
		t.Fatal("empty database must be rejected")
	}
}

func TestPaperExample1EndToEnd(t *testing.T) {
	// Example 1: querying with q at δ=1 matches the worlds of 002 that are
	// within one deleted edge, and thresholding at ε below that SSP returns
	// 002. Our fixture fills the JPT rows the paper did not print
	// uniformly, so the exact value differs from the paper's 0.45; the
	// qualitative contract must hold: SSP grows with δ, and the pipeline
	// returns 002 for ε just below the exact SSP.
	g001, g002, q, err := dataset.PaperFigure1()
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultBuildOptions()
	opt.Feature.Beta = 0.4
	opt.Feature.Alpha = 0.05
	opt.Feature.Gamma = 0.05
	opt.Feature.MaxL = 3
	db, err := NewDatabase([]*prob.PGraph{g001, g002}, opt)
	if err != nil {
		t.Fatal(err)
	}
	ssp0, err := db.ExactSSPByEnumeration(q, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ssp1, err := db.ExactSSPByEnumeration(q, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(ssp1 >= ssp0) || ssp1 <= 0 || ssp1 > 1 {
		t.Fatalf("SSP monotonicity broken: δ=0 → %v, δ=1 → %v", ssp0, ssp1)
	}
	eps := ssp1 * 0.9
	if eps <= 0 {
		t.Fatalf("degenerate SSP %v", ssp1)
	}
	res, err := db.Query(q, QueryOptions{
		Epsilon: eps, Delta: 1, OptBounds: true,
		Verifier: VerifierExact, Verify: verify.Options{MaxClauses: 22},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, gi := range res.Answers {
		if gi == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("graph 002 not returned at ε=%v (SSP=%v): %+v", eps, ssp1, res.Answers)
	}
}
