package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"probgraph/internal/dataset"
	"probgraph/internal/relax"
)

// TestBoundsSandwichExactSSP is the central safety property of the whole
// pruning pipeline: for every structural candidate, Usim(q) must upper-
// bound and the sound Lsim(q) must lower-bound the exact subgraph
// similarity probability — otherwise Pruning 1 could drop true answers or
// Pruning 2 could accept false ones.
func TestBoundsSandwichExactSSP(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		raw, err := dataset.GeneratePPI(dataset.PPIOptions{
			NumGraphs: 6, MinVertices: 5, MaxVertices: 7, EdgeFactor: 1.3,
			Labels: 3, Organisms: 2, Correlated: true,
			CorrelationBoost: float64(seed%3) * 0.8, // sweep correlation strength
			Seed:             seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultBuildOptions()
		opt.Feature.Beta = 0.2
		opt.Feature.Alpha = 0.05
		opt.Feature.Gamma = 0.05
		opt.Feature.MaxL = 3
		opt.PMI.Seed = seed
		db, err := NewDatabase(raw.Graphs, opt)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed + 1))
		q := dataset.ExtractQuery(db.Certain()[int(seed)%len(db.Certain())], 4, rng)
		if q.NumEdges() < 2 {
			return true
		}
		const delta = 1
		u := relax.Relaxed(q, delta, 0)
		scq, _ := db.Struct().SCq(q, delta, 1)
		for _, optBounds := range []bool{false, true} {
			qo := QueryOptions{Epsilon: 0.5, Delta: delta, OptBounds: optBounds, Seed: seed}
			pr, err := db.View().newPruner(context.Background(), u, qo.withDefaults(), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, gi := range scq {
				exact, err := db.ExactSSPByEnumeration(q, gi, delta)
				if err != nil {
					t.Fatal(err)
				}
				sc := getScratch(candSeed(qo.Seed^pruneSalt, gi))
				sc.entries = db.PMI().LookupInto(gi, sc.entries[:0])
				upper := pr.upperBound(sc.entries, sc)
				lower := pr.lowerBound(sc.entries, sc)
				putScratch(sc)
				const slack = 1e-9
				if upper < exact-slack {
					t.Logf("seed %d opt=%v graph %d: Usim %v < exact SSP %v", seed, optBounds, gi, upper, exact)
					return false
				}
				if lower > exact+slack {
					t.Logf("seed %d opt=%v graph %d: Lsim %v > exact SSP %v", seed, optBounds, gi, lower, exact)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStructuralPruningNeverDropsAnswers checks Theorem 1 end to end:
// every graph with nonzero exact SSP must survive structural pruning.
func TestStructuralPruningNeverDropsAnswers(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		raw, err := dataset.GeneratePPI(dataset.PPIOptions{
			NumGraphs: 6, MinVertices: 5, MaxVertices: 7,
			Labels: 3, Organisms: 2, Correlated: true, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultBuildOptions()
		opt.SkipPMI = true
		db, err := NewDatabase(raw.Graphs, opt)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		q := dataset.ExtractQuery(db.Certain()[0], 4, rng)
		if q.NumEdges() < 2 {
			return true
		}
		const delta = 1
		scq, _ := db.Struct().SCq(q, delta, 1)
		inSCQ := make(map[int]bool, len(scq))
		for _, gi := range scq {
			inSCQ[gi] = true
		}
		for gi := range db.Graphs() {
			exact, err := db.ExactSSPByEnumeration(q, gi, delta)
			if err != nil {
				t.Fatal(err)
			}
			if exact > 0 && !inSCQ[gi] {
				t.Logf("seed %d: graph %d has SSP %v but was structurally pruned", seed, gi, exact)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
