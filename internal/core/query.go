package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"probgraph/internal/cover"
	"probgraph/internal/graph"
	"probgraph/internal/iso"
	"probgraph/internal/obs"
	"probgraph/internal/pmi"
	"probgraph/internal/prob"
	"probgraph/internal/qp"
	"probgraph/internal/relax"
	"probgraph/internal/verify"
)

// VerifierKind selects the verification algorithm.
type VerifierKind int

const (
	// VerifierSMP is the paper's Algorithm 5 sampler (default).
	VerifierSMP VerifierKind = iota
	// VerifierExact is the Equation 21 inclusion–exclusion baseline.
	VerifierExact
	// VerifierNone stops after pruning: candidates count as answers. Used
	// to measure pruning quality in the Figure 10–12 experiments.
	VerifierNone
)

// QueryOptions configures one T-PS query.
type QueryOptions struct {
	// Epsilon is the probability threshold ε ∈ (0, 1].
	Epsilon float64
	// Delta is the subgraph distance threshold δ ≥ 0.
	Delta int
	// SkipProbPruning bypasses the PMI phase (Structure-only pipeline).
	SkipProbPruning bool
	// OptBounds selects OPT-SSPBound (set cover + QP); false selects the
	// plain SSPBound that picks one arbitrary feature pair per relaxed
	// query (paper §6's SSPBound baseline).
	OptBounds bool
	// Verifier selects SMP (default), Exact, or none.
	Verifier VerifierKind
	// Verify tunes the SMP estimator / caps Exact's clause count.
	Verify verify.Options
	// MaxRelaxed caps |U| and MaxClausesPerRQ caps embeddings collected per
	// relaxed query during verification.
	MaxRelaxed      int
	MaxClausesPerRQ int
	// Seed drives the randomized pieces (QP rounding, SSPBound pair
	// choice, SMP) deterministically.
	Seed int64
	// Concurrency bounds the worker pool evaluating candidate graphs
	// (bound combination and verification): 0 or 1 run serially, a
	// negative value selects GOMAXPROCS. The result set, SSP estimates,
	// and counters are identical for every setting — all per-candidate
	// randomness is seeded purely from Seed and the candidate's graph
	// index, never from scheduling order. In QueryBatch the same knob
	// bounds the pool spread across the batch's queries.
	Concurrency int
}

func (o QueryOptions) withDefaults() QueryOptions {
	if o.Epsilon == 0 {
		o.Epsilon = 0.5
	}
	if o.MaxClausesPerRQ == 0 {
		o.MaxClausesPerRQ = 64
	}
	if o.Verify.Seed == 0 {
		o.Verify.Seed = o.Seed + 1
	}
	return o
}

// Validate reports whether the result-affecting knobs are in range:
// ε ∈ (0, 1] (0 is accepted as "unset", defaulting to 0.5) and δ ≥ 0.
// Query applies the same checks internally (QueryTopK only the δ one — it
// ignores ε); callers that want to reject bad requests up front — before
// any work, and distinguishable from evaluation failures (the server maps
// Validate errors to HTTP 400 on all three endpoints, everything
// downstream to 422) — call this on the untouched options.
func (o QueryOptions) Validate() error {
	if o.Epsilon < 0 || o.Epsilon > 1 {
		return fmt.Errorf("core: epsilon %v outside (0,1]", o.Epsilon)
	}
	if o.Delta < 0 {
		return fmt.Errorf("core: negative delta %d", o.Delta)
	}
	return nil
}

// Stats instruments a query run with the paper's reported metrics.
//
// TimeProb and TimeVerify sum the per-candidate compute spent in each
// phase. At Concurrency <= 1 that equals the phase's wall-clock time; with
// a larger pool the candidates overlap, so the sums measure aggregate CPU
// work and only TimeTotal remains wall-clock.
type Stats struct {
	StructFilterCandidates int // Grafil-style filter output ("Structure")
	StructConfirmed        int // |SCq|
	PrunedByUpper          int // Pruning 1 discards
	AcceptedByLower        int // Pruning 2 direct accepts
	VerifyCandidates       int // graphs sent to verification
	Answers                int

	RelaxedQueries int // |U|

	TimeStruct time.Duration
	TimeProb   time.Duration
	TimeVerify time.Duration
	TimeTotal  time.Duration
}

// observe bridges the query's stats into the process-wide pipeline
// metrics, if the caller attached one to ctx (the server does, per
// request). A context without a pipeline makes this free; observing
// happens once at query exit, so hot per-candidate paths never touch it.
func (s Stats) observe(ctx context.Context) {
	if p := obs.PipelineFrom(ctx); p != nil {
		p.Observe(obs.PipelineStats{
			StructFilterCandidates: s.StructFilterCandidates,
			StructConfirmed:        s.StructConfirmed,
			PrunedByUpper:          s.PrunedByUpper,
			AcceptedByLower:        s.AcceptedByLower,
			VerifyCandidates:       s.VerifyCandidates,
			Answers:                s.Answers,
			RelaxedQueries:         s.RelaxedQueries,
			TimeStruct:             s.TimeStruct,
			TimeProb:               s.TimeProb,
			TimeVerify:             s.TimeVerify,
		})
	}
}

// Result is a query outcome.
type Result struct {
	// Answers lists matching graph indices ascending.
	Answers []int
	// SSP holds the verified subgraph similarity probability for graphs
	// that went through verification (others — direct accepts — are not
	// re-estimated and map to -1).
	SSP map[int]float64
	// Stats carries phase instrumentation.
	Stats Stats
}

// Query runs the full T-PS pipeline for query graph q against the
// current view, pinned at entry — concurrent mutations neither block nor
// disturb it. Candidates are evaluated on a pool of opt.Concurrency
// workers; see QueryOptions for the determinism guarantee. Query never
// cancels; it is QueryCtx with context.Background().
func (db *Database) Query(q *graph.Graph, opt QueryOptions) (*Result, error) {
	return db.View().Query(q, opt)
}

// Query on a pinned View is Query against exactly that generation.
func (v *View) Query(q *graph.Graph, opt QueryOptions) (*Result, error) {
	return v.query(context.Background(), q, opt, nil)
}

// QueryCtx is Query under a context: cancellation (or a deadline) is
// checked at every pipeline stage — before the structural scan, per
// postings shard, per exact confirmation, per relaxed query during pruner
// construction, and per candidate in the fused prune+verify loop. A
// cancelled query returns (nil, ctx.Err()) promptly — one in-flight
// candidate evaluation per worker at most — leaks no goroutines, and
// never returns a partial Result. An uncancelled QueryCtx call returns
// exactly what Query would.
func (db *Database) QueryCtx(ctx context.Context, q *graph.Graph, opt QueryOptions) (*Result, error) {
	return db.View().QueryCtx(ctx, q, opt)
}

// QueryCtx on a pinned View is QueryCtx against exactly that generation.
func (v *View) QueryCtx(ctx context.Context, q *graph.Graph, opt QueryOptions) (*Result, error) {
	return v.query(ctx, q, opt, nil)
}

// candOutcome is the per-candidate result of the fused pruning +
// verification stage, written by exactly one worker.
type candOutcome struct {
	verdict judgement
	ssp     float64
	err     error
	probT   time.Duration
	verifyT time.Duration
}

// evalCandidate runs the fused probabilistic-pruning + verification stage
// for one candidate graph gi. pr == nil skips the pruning phase (PMI
// disabled or bypassed). The outcome is a pure function of
// (v, q, u, gi, opt): all randomness is seeded from candSeed, so every
// caller — the materializing query loop, the top-k scheduler, the stream
// workers — computes the identical outcome regardless of scheduling.
//
//pgvet:noalloc
func (v *View) evalCandidate(q *graph.Graph, u []*graph.Graph, pr *pruner, gi int, opt QueryOptions) candOutcome {
	var o candOutcome
	if pr != nil {
		t := time.Now()
		sc := getScratch(candSeed(opt.Seed^pruneSalt, v.GID(gi)))
		o.verdict = pr.judge(gi, sc)
		putScratch(sc)
		o.probT = time.Since(t)
	}
	if o.verdict != judgeUndecided || opt.Verifier == VerifierNone {
		return o
	}
	t := time.Now()
	o.ssp, o.err = v.VerifySSP(q, u, gi, opt)
	o.verifyT = time.Since(t)
	return o
}

// outcomeMatch translates a candidate outcome into stream terms: whether
// gi belongs to the answer set, and the SSP to report for it. Verified
// answers carry their estimate; direct lower-bound accepts and
// VerifierNone answers carry -1 ("not re-estimated"), mirroring
// Result.SSP.
func outcomeMatch(o candOutcome, opt QueryOptions) (match bool, ssp float64) {
	switch o.verdict {
	case judgePrune:
		return false, 0
	case judgeAccept:
		return true, -1
	default:
		if opt.Verifier == VerifierNone {
			return true, -1
		}
		return o.ssp >= opt.Epsilon, o.ssp
	}
}

func (v *View) query(ctx context.Context, q *graph.Graph, opt QueryOptions, cache *relCache) (*Result, error) {
	opt = opt.withDefaults()
	if opt.Epsilon <= 0 || opt.Epsilon > 1 {
		return nil, fmt.Errorf("core: epsilon %v outside (0,1]", opt.Epsilon)
	}
	if opt.Delta < 0 {
		return nil, fmt.Errorf("core: negative delta")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	parent := obs.SpanFrom(ctx)
	res := &Result{SSP: make(map[int]float64)}

	// Degenerate relaxation: δ ≥ |q| makes every world a match (the empty
	// relaxed query embeds everywhere), so SSP = 1 ≥ ε for every graph.
	if opt.Delta >= q.NumEdges() {
		for gi := range v.Graphs {
			if !v.Live(gi) {
				continue
			}
			res.Answers = append(res.Answers, gi)
			res.SSP[gi] = 1
		}
		res.Stats.Answers = len(res.Answers)
		res.Stats.TimeTotal = time.Since(start)
		res.Stats.observe(ctx)
		return res, nil
	}

	// Phase 1: structural pruning (Theorem 1). The inverted-postings scan
	// and the exact confirmations share the query's worker pool.
	t0 := time.Now()
	sp := parent.Child("struct_filter")
	scq, filterCount, err := v.Struct.SCqCtx(obs.ContextWithSpan(ctx, sp), q, opt.Delta, opt.Concurrency)
	sp.EndCount(int64(len(scq)))
	if err != nil {
		return nil, err
	}
	res.Stats.StructFilterCandidates = filterCount
	res.Stats.StructConfirmed = len(scq)
	res.Stats.TimeStruct = time.Since(t0)

	// Relaxed query set U (Lemma 1).
	sp = parent.Child("relax")
	u := relax.Relaxed(q, opt.Delta, opt.MaxRelaxed)
	sp.EndCount(int64(len(u)))
	res.Stats.RelaxedQueries = len(u)

	// Phases 2+3, fused per candidate: probabilistic pruning via PMI
	// bounds, then verification (§5) for the undecided. Each candidate is
	// independent — bounds combine query-side relations with the graph's
	// PMI row, verification touches only that graph's engine — so the
	// pipeline fans out over the worker pool. Randomized steps draw from a
	// per-candidate RNG seeded by candSeed, making the outcome identical
	// at any concurrency.
	probActive := !opt.SkipProbPruning && v.PMI != nil
	var pr *pruner
	if probActive {
		t := time.Now()
		sp = parent.Child("pmi_prune")
		pr, err = v.newPruner(ctx, u, opt, cache)
		sp.End()
		if err != nil {
			return nil, err
		}
		res.Stats.TimeProb += time.Since(t)
	}
	outs := make([]candOutcome, len(scq))
	var abort atomic.Bool // first verification error stops remaining work
	sp = parent.Child("verify")
	err = forEachIndexCtx(ctx, len(scq), normalizeWorkers(opt.Concurrency, len(scq)), func(i int) {
		if abort.Load() {
			return // a pending error makes this candidate's work moot
		}
		outs[i] = v.evalCandidate(q, u, pr, scq[i], opt)
		if outs[i].err != nil {
			abort.Store(true)
		}
	})
	sp.EndCount(int64(len(scq)))
	if err != nil {
		return nil, err
	}

	// Deterministic aggregation in database order.
	for i, gi := range scq {
		o := outs[i]
		if o.err != nil {
			return nil, fmt.Errorf("core: verifying graph %d: %w", gi, o.err)
		}
		res.Stats.TimeProb += o.probT
		res.Stats.TimeVerify += o.verifyT
		switch o.verdict {
		case judgePrune:
			res.Stats.PrunedByUpper++
		case judgeAccept:
			res.Stats.AcceptedByLower++
			res.Answers = append(res.Answers, gi)
			res.SSP[gi] = -1
		default:
			res.Stats.VerifyCandidates++
			if opt.Verifier == VerifierNone {
				res.Answers = append(res.Answers, gi)
				continue
			}
			res.SSP[gi] = o.ssp
			if o.ssp >= opt.Epsilon {
				res.Answers = append(res.Answers, gi)
			}
		}
	}

	sortInts(res.Answers)
	res.Stats.Answers = len(res.Answers)
	res.Stats.TimeTotal = time.Since(start)
	res.Stats.observe(ctx)
	return res, nil
}

// VerifySSP computes the subgraph similarity probability of q (with relaxed
// set u) against graph gi using the configured verifier. The SMP sampler's
// seed is derived from opt.Seed and gi alone, so the estimate for a graph
// is reproducible regardless of which other graphs are verified, in what
// order, or on how many workers.
func (db *Database) VerifySSP(q *graph.Graph, u []*graph.Graph, gi int, opt QueryOptions) (float64, error) {
	return db.View().VerifySSP(q, u, gi, opt)
}

// VerifySSP on a pinned View; see the Database method.
func (v *View) VerifySSP(q *graph.Graph, u []*graph.Graph, gi int, opt QueryOptions) (float64, error) {
	opt = opt.withDefaults()
	clauses := v.collectClauses(u, gi, opt.MaxClausesPerRQ)
	if len(clauses) == 0 {
		return 0, nil
	}
	eng, err := v.Engine(gi)
	if err != nil {
		return 0, err
	}
	switch opt.Verifier {
	case VerifierExact:
		return verify.Exact(eng, clauses, opt.Verify.MaxClauses)
	default:
		vo := opt.Verify
		vo.Seed = candSeed(opt.Seed^verifySalt, v.GID(gi))
		return verify.SMP(eng, clauses, vo)
	}
}

// collectClauses gathers the DNF of Equation 22: distinct embedding edge
// sets of every rq ∈ U in gc, absorbed and deduplicated.
func (v *View) collectClauses(u []*graph.Graph, gi, capPerRQ int) []graph.EdgeSet {
	gc := v.Certain[gi]
	var clauses []graph.EdgeSet
	for _, rq := range u {
		clauses = append(clauses, iso.EdgeSets(rq, gc, nil, capPerRQ)...)
	}
	return verify.DedupClauses(clauses)
}

// ExactSSPByEnumeration computes SSP by full possible-world enumeration —
// the naive Section 1.1 baseline, used by tests and the smallest benches.
func (db *Database) ExactSSPByEnumeration(q *graph.Graph, gi, delta int) (float64, error) {
	return db.View().ExactSSPByEnumeration(q, gi, delta)
}

// ExactSSPByEnumeration on a pinned View; see the Database method.
func (v *View) ExactSSPByEnumeration(q *graph.Graph, gi, delta int) (float64, error) {
	u := relax.Relaxed(q, delta, 0)
	eng, err := v.Engine(gi)
	if err != nil {
		return 0, err
	}
	total := 0.0
	err = prob.EnumerateWorlds(eng, func(w graph.EdgeSet, p float64) bool {
		for _, rq := range u {
			if iso.Exists(rq, v.Certain[gi], &w) {
				total += p
				break
			}
		}
		return true
	})
	return total, err
}

type judgement int

const (
	judgeUndecided judgement = iota
	judgePrune
	judgeAccept
)

// pruner evaluates the Pruning 1 / Pruning 2 conditions of §3.1 for one
// query against any graph, reusing the query-side feature/rq relations.
// After construction it is immutable and safe for concurrent judge calls;
// randomized family selection draws from the caller's per-candidate rng.
type pruner struct {
	v   *View
	u   []*graph.Graph
	opt QueryOptions

	// supOf[j] = relaxed queries containing feature j (rq ⊇iso f, for the
	// upper bound); subOf[j] = relaxed queries contained in feature j
	// (rq ⊆iso f, for the lower bound).
	supOf [][]int
	subOf [][]int
}

// newPruner builds the query-side feature/relaxed-query relation tables.
// The dominant cost is the subgraph isomorphism tests of featureRelations,
// one batch per relaxed query, so ctx is checked at that granularity — a
// cancelled construction returns (nil, ctx.Err()).
func (v *View) newPruner(ctx context.Context, u []*graph.Graph, opt QueryOptions, cache *relCache) (*pruner, error) {
	p := &pruner{v: v, u: u, opt: opt}
	nf := v.PMI.NumFeatures()
	p.supOf = make([][]int, nf)
	p.subOf = make([][]int, nf)
	for i, rq := range u {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rel := v.featureRelations(rq, cache)
		for _, j := range rel.sup {
			p.supOf[j] = append(p.supOf[j], i)
		}
		for _, j := range rel.sub {
			p.subOf[j] = append(p.subOf[j], i)
		}
	}
	return p, nil
}

// judge applies Pruning 1 (upper < ε ⇒ prune) then Pruning 2 (lower ≥ ε ⇒
// accept) to graph gi, working entirely out of the caller's scratch.
func (p *pruner) judge(gi int, sc *scratch) judgement {
	sc.entries = p.v.PMI.LookupInto(gi, sc.entries[:0])
	usim := p.upperBound(sc.entries, sc)
	if usim < p.opt.Epsilon {
		return judgePrune
	}
	lsim := p.lowerBound(sc.entries, sc)
	if lsim >= p.opt.Epsilon {
		return judgeAccept
	}
	return judgeUndecided
}

// upperBound computes Usim(q). Soundness: rq ⊇iso f means a world
// containing rq also contains f, so Pr(∨ Brq) ≤ Σ UpperB over any feature
// family covering U; relaxed queries no feature covers contribute the
// trivial bound Pr(Brq) ≤ 1.
//
// OPT-SSPBound minimizes the covering weight with the greedy set cover
// (Definition 10, Algorithm 1); plain SSPBound picks one qualifying feature
// per rq at random (the paper's §6 baseline).
func (p *pruner) upperBound(entries []pmi.Entry, sc *scratch) float64 {
	if p.opt.OptBounds {
		in := cover.Instance{NumElements: len(p.u)}
		in.Sets, in.Weights = sc.sets[:0], sc.wu[:0]
		covered := clearedBools(&sc.covered, len(p.u))
		for j, e := range entries {
			if !e.Contained || len(p.supOf[j]) == 0 {
				continue
			}
			in.Sets = append(in.Sets, p.supOf[j])
			in.Weights = append(in.Weights, e.Upper)
			for _, i := range p.supOf[j] {
				covered[i] = true
			}
		}
		// Uncovered relaxed queries contribute singleton sets of weight 1;
		// sc.singles is the identity list [0,1,...], so the singleton {i}
		// is a subslice of it — no per-set allocation.
		for i := len(sc.singles); i < len(p.u); i++ {
			sc.singles = append(sc.singles, i)
		}
		for i, c := range covered {
			if !c {
				in.Sets = append(in.Sets, sc.singles[i:i+1:i+1])
				in.Weights = append(in.Weights, 1)
			}
		}
		sc.sets, sc.wu = in.Sets, in.Weights
		return cover.GreedyScratch(in, &sc.cov).Weight
	}
	total := 0.0
	for i := range p.u {
		choices := sc.choicesF[:0]
		for j, e := range entries {
			if !e.Contained {
				continue
			}
			for _, ri := range p.supOf[j] {
				if ri == i {
					choices = append(choices, e.Upper)
					break
				}
			}
		}
		sc.choicesF = choices
		if len(choices) == 0 {
			total += 1
			continue
		}
		total += choices[sc.rng.Intn(len(choices))]
	}
	return total
}

// lowerBound computes Lsim(q). Soundness: rq ⊆iso f with f ⊆iso gc means a
// world containing f contains rq, so ∨ Bf over any distinct feature family
// implies ∨ Brq, and a valid lower bound on Pr(∨ Bf) lower-bounds the SSP.
//
// Family selection follows the paper — OPT-SSPBound maximizes the
// Definition 11 objective via the relaxed QP + randomized rounding
// (Algorithm 2), plain SSPBound picks one qualifying feature per rq at
// random — but the selected collection is then *evaluated* with the
// correlation-safe Bonferroni form
//
//	Lsim = max( max_j LowerB_j ,  Σ_j LowerB_j − Σ_{i<j} min(U_i, U_j) )
//
// which holds for arbitrarily correlated events (Pr(A∧B) ≤ min(Pr A, Pr B)),
// unlike the paper's Σ L − (Σ U)² whose pairwise product step assumes
// independence and can over-accept under strong positive correlation.
func (p *pruner) lowerBound(entries []pmi.Entry, sc *scratch) float64 {
	chosen := sc.chosen[:0]
	if p.opt.OptBounds {
		in := qp.Instance{NumElements: len(p.u)}
		in.Sets, in.WL, in.WU = sc.sets[:0], sc.wl[:0], sc.wu[:0]
		featOf := sc.featOf[:0]
		for j, e := range entries {
			if !e.Contained || len(p.subOf[j]) == 0 {
				continue
			}
			in.Sets = append(in.Sets, p.subOf[j])
			in.WL = append(in.WL, e.Lower)
			in.WU = append(in.WU, e.Upper)
			featOf = append(featOf, j)
		}
		sc.sets, sc.wl, sc.wu, sc.featOf = in.Sets, in.WL, in.WU, featOf
		if len(in.Sets) == 0 {
			return 0
		}
		for _, s := range qp.Solve(in, sc.rng).Chosen {
			chosen = append(chosen, featOf[s])
		}
	} else {
		// Dedup by linear scan over the (small) chosen family instead of a
		// per-candidate map; first-seen order is preserved, so the family —
		// and the bound — is exactly what the map produced.
		for i := range p.u {
			choices := sc.choicesI[:0]
			for j, e := range entries {
				if !e.Contained {
					continue
				}
				for _, ri := range p.subOf[j] {
					if ri == i {
						choices = append(choices, j)
						break
					}
				}
			}
			sc.choicesI = choices
			if len(choices) > 0 {
				j := choices[sc.rng.Intn(len(choices))]
				dup := false
				for _, c := range chosen {
					if c == j {
						dup = true
						break
					}
				}
				if !dup {
					chosen = append(chosen, j)
				}
			}
		}
	}
	sc.chosen = chosen
	return soundLsim(entries, chosen, sc)
}

// soundLsim evaluates the correlation-safe lower bound of a feature
// collection, also trying all sub-collections greedily by dropping the
// weakest member while it improves the bound (fewer features shrink the
// pairwise penalty faster than they shrink Σ L).
func soundLsim(entries []pmi.Entry, chosen []int, sc *scratch) float64 {
	best := 0.0
	cur := append(sc.cur[:0], chosen...)
	for len(cur) > 0 {
		if v := bonferroniMin(entries, cur); v > best {
			best = v
		}
		// Drop the member with the smallest L − it contributes least.
		worst, worstIdx := math.Inf(1), -1
		for k, j := range cur {
			if entries[j].Lower < worst {
				worst, worstIdx = entries[j].Lower, k
			}
		}
		cur = append(cur[:worstIdx], cur[worstIdx+1:]...)
	}
	sc.cur = cur
	return best
}

// bonferroniMin is Σ L − Σ_{i<j} min(U_i, U_j), floored by the best single
// member (a union is at least its largest term).
func bonferroniMin(entries []pmi.Entry, chosen []int) float64 {
	sumL, penalty, single := 0.0, 0.0, 0.0
	for a, j := range chosen {
		sumL += entries[j].Lower
		if entries[j].Lower > single {
			single = entries[j].Lower
		}
		for _, k := range chosen[a+1:] {
			m := entries[j].Upper
			if entries[k].Upper < m {
				m = entries[k].Upper
			}
			penalty += m
		}
	}
	v := sumL - penalty
	if single > v {
		v = single
	}
	return v
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
