package core

import (
	"fmt"
	"sync/atomic"

	"probgraph/internal/prob"
)

// Snapshot loads defer inference-engine construction: junction trees are
// the one genuinely expensive per-graph piece of a load, and a serving
// process typically queries a small, hot subset of slots long before it
// touches every graph. A deferred slot has Engines[gi] == nil and resolves
// through Engine on first use.
//
// The lazy cache is a slice of atomic pointers shared by every view
// descended from the load (the slice header is copied by the
// copy-on-write mutations, the slots are shared). That sharing is sound
// because a slot's engine is a pure function of the graph occupying it at
// load time: mutations that change a slot's graph (ReplaceGraph) install
// a non-nil Engines entry in their successor views, which shadows the
// lazy slot — old views still resolve the old graph's engine through the
// cache, new views never consult it. Concurrent resolvers may race to
// build the same engine; construction is deterministic, the CAS keeps one
// winner, and the loser's work is discarded — results are identical
// either way.

// Engine returns slot gi's inference engine, building it on first use for
// slots loaded lazily from a snapshot. Safe for concurrent use.
func (v *View) Engine(gi int) (*prob.Engine, error) {
	if e := v.Engines[gi]; e != nil {
		return e, nil
	}
	if v.engLazy == nil || gi >= len(v.engLazy) {
		return nil, fmt.Errorf("core: graph %d has no engine", gi)
	}
	if e := v.engLazy[gi].Load(); e != nil {
		return e, nil
	}
	e, err := prob.NewEngine(v.Graphs[gi])
	if err != nil {
		return nil, fmt.Errorf("core: graph %d engine: %w", gi, err)
	}
	v.engLazy[gi].CompareAndSwap(nil, e)
	return v.engLazy[gi].Load(), nil
}

// newLazyEngines prepares the engine slots of a freshly loaded view: all
// n slots nil, backed by a lazy cache.
func (v *View) newLazyEngines(n int) {
	v.Engines = make([]*prob.Engine, n)
	v.engLazy = make([]atomic.Pointer[prob.Engine], n)
}
