package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"probgraph/internal/dataset"
	"probgraph/internal/graph"
	"probgraph/internal/obs"
	"probgraph/internal/relax"
)

// allocFixture builds a corpus plus one query and returns the structural
// candidates that the PMI bounds alone decide (judgePrune) — the
// steady-state hot path whose allocation budget the tests below pin.
// Epsilon is set high so Pruning 1 fires for most candidates; with
// OptBounds the surviving accept path runs qp.Solve, which is outside the
// zero-alloc contract (it only runs for candidates headed to verification
// anyway), so the fixture restricts itself to the pruned set.
func allocFixture(t *testing.T, optBounds bool) (v *View, q *graph.Graph, u []*graph.Graph, pr *pruner, pruned []int, opt QueryOptions) {
	t.Helper()
	db, raw := snapDB(t, 12)
	v = db.View()
	// Sweep both regular 4-edge queries and 2-edge ones: with 1-edge
	// relaxations the rq ⊆iso f relation is nonempty (features are edges
	// and wedges), so the plain lower bound can actually decide.
	cands := snapQueries(t, raw, 8)
	qrng := rand.New(rand.NewSource(21))
	for i := 0; i < 8; i++ {
		cands = append(cands, dataset.ExtractQuery(raw.Graphs[i%len(raw.Graphs)].G, 2, qrng))
	}
	for _, cand := range cands {
		for _, eps := range []float64{0.99, 0.7, 0.4, 0.1} {
			q = cand
			opt = QueryOptions{Epsilon: eps, Delta: 1, OptBounds: optBounds, Seed: 7}.withDefaults()
			u = relax.Relaxed(q, opt.Delta, opt.MaxRelaxed)
			var err error
			pr, err = v.newPruner(context.Background(), u, opt, nil)
			if err != nil {
				t.Fatal(err)
			}
			scq, _, err := v.Struct.SCqCtx(context.Background(), q, opt.Delta, 1)
			if err != nil {
				t.Fatal(err)
			}
			pruned = pruned[:0]
			for _, gi := range scq {
				sc := getScratch(candSeed(opt.Seed^pruneSalt, gi))
				verdict := pr.judge(gi, sc)
				putScratch(sc)
				// With plain bounds every bounds-decided candidate is on the
				// zero-alloc path; with OPT bounds only Pruning 1 rejects are.
				if verdict == judgePrune || (!optBounds && verdict == judgeAccept) {
					pruned = append(pruned, gi)
				}
			}
			if len(pruned) > 0 {
				return
			}
		}
	}
	t.Fatal("no query in the fixture sweep produced bounds-decided candidates")
	return
}

// TestEvalCandidateSteadyStateAllocs verifies the hot-path allocation
// budget at one worker: once the scratch pool is warm, a candidate
// decided by the bounds allocates nothing — every buffer (PMI row, choice
// lists, cover scratch, rng) comes from the pooled scratch.
// AllocsPerRun pins GOMAXPROCS to 1, so this is exactly the workers=1
// configuration.
func TestEvalCandidateSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the pin runs in the plain test pass")
	}
	for _, optBounds := range []bool{false, true} {
		t.Run(fmt.Sprintf("optBounds=%v", optBounds), func(t *testing.T) {
			v, q, u, pr, pruned, opt := allocFixture(t, optBounds)
			for _, gi := range pruned {
				_ = v.evalCandidate(q, u, pr, gi, opt)
			}
			avg := testing.AllocsPerRun(100, func() {
				for _, gi := range pruned {
					_ = v.evalCandidate(q, u, pr, gi, opt)
				}
			})
			// avg counts a whole sweep over len(pruned) candidates, so a
			// real per-candidate leak shows up as avg >= len(pruned); a
			// one-off pool eviction stays far below 1.
			if avg >= 1 {
				t.Errorf("evalCandidate allocates: %.2f allocs per %d-candidate sweep, want ~0", avg, len(pruned))
			}
		})
	}
}

// TestEvalCandidateParallelAllocs is the same budget at GOMAXPROCS
// workers: the scratch pool hands each worker its own warm buffers, so
// the per-candidate allocation rate stays near zero under parallel
// evaluation too (the small constant measured here is the worker-pool
// spawn itself, amortized over thousands of candidates).
func TestEvalCandidateParallelAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the pin runs in the plain test pass")
	}
	workers := runtime.GOMAXPROCS(0)
	for _, optBounds := range []bool{false, true} {
		t.Run(fmt.Sprintf("optBounds=%v", optBounds), func(t *testing.T) {
			v, q, u, pr, pruned, opt := allocFixture(t, optBounds)
			reps := make([]int, 0, 4096+len(pruned))
			for len(reps) < 4096 {
				reps = append(reps, pruned...)
			}
			run := func() error {
				return forEachIndexCtx(context.Background(), len(reps), workers, func(i int) {
					_ = v.evalCandidate(q, u, pr, reps[i], opt)
				})
			}
			if err := run(); err != nil { // warm one scratch per worker
				t.Fatal(err)
			}
			best := math.Inf(1)
			for trial := 0; trial < 3; trial++ {
				var m0, m1 runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&m0)
				if err := run(); err != nil {
					t.Fatal(err)
				}
				runtime.ReadMemStats(&m1)
				if per := float64(m1.Mallocs-m0.Mallocs) / float64(len(reps)); per < best {
					best = per
				}
			}
			if best >= 0.25 {
				t.Errorf("parallel evalCandidate allocates %.3f allocs/candidate at %d workers, want ~0", best, workers)
			}
		})
	}
}

// TestTracingDisabledAddsNoAllocs pins the observability contract on the
// allocation budget: the span instrumentation threaded through the query
// pipeline costs nothing when tracing is off, and a bounded constant —
// independent of the candidate count — when it is on.
//
// Three measurements of the same full v.query call:
//   - plain context (how every pre-observability caller runs),
//   - context that went through ContextWithSpan with a zero Span (the
//     disabled path must be literally the same context, so same allocs),
//   - live trace (extra allocs allowed, but only for the handful of
//     stage/shard spans — never per candidate).
func TestTracingDisabledAddsNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("exact allocation counts jitter under the race runtime")
	}
	db, raw := snapDB(t, 12)
	v := db.View()
	q := snapQueries(t, raw, 1)[0]
	opt := QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: 7}.withDefaults()

	run := func(ctx context.Context) {
		if _, err := v.query(ctx, q, opt, nil); err != nil {
			t.Fatal(err)
		}
	}
	run(context.Background()) // warm scratch pools and lazy engines

	plain := testing.AllocsPerRun(50, func() { run(context.Background()) })
	disabled := testing.AllocsPerRun(50, func() {
		run(obs.ContextWithSpan(context.Background(), obs.Span{}))
	})
	if disabled != plain {
		t.Errorf("disabled tracing changes the allocation budget: %.1f allocs vs %.1f plain", disabled, plain)
	}

	traced := testing.AllocsPerRun(50, func() {
		tr := obs.NewTrace()
		root := tr.Root("query")
		run(obs.ContextWithSpan(context.Background(), root))
		root.End()
	})
	// The traced run may allocate the trace, the root, and one span per
	// pipeline stage / postings shard — a small constant. Anything that
	// scales with candidates (the fixture corpus has 12) is a regression
	// into the per-candidate hot path.
	shards, _ := v.Struct.PostingsStats()
	budget := plain + 8*float64(8+shards)
	if traced > budget {
		t.Errorf("traced query allocates %.1f, untraced %.1f; span overhead exceeds constant budget %.1f",
			traced, plain, budget)
	}
}

// TestInsertTopKNoAlloc verifies the third leg of the budget: with the
// +1 overflow slot pre-sized, folding any stream of verification results
// into the ranking never reallocates, and the ranking matches the sort
// order (SSP descending, graph ascending).
func TestInsertTopKNoAlloc(t *testing.T) {
	const k = 10
	rng := rand.New(rand.NewSource(3))
	ssps := make([]float64, 200)
	for i := range ssps {
		ssps[i] = rng.Float64()
	}
	top := make([]TopKItem, 0, k+1)
	avg := testing.AllocsPerRun(100, func() {
		top = top[:0]
		for gi, s := range ssps {
			top = insertTopK(top, TopKItem{Graph: gi, SSP: s}, k)
		}
	})
	if avg != 0 {
		t.Errorf("insertTopK allocates: %.2f allocs per %d-item fold, want 0", avg, len(ssps))
	}
	if len(top) != k {
		t.Fatalf("kept %d items, want %d", len(top), k)
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].SSP < top[i].SSP ||
			(top[i-1].SSP == top[i].SSP && top[i-1].Graph > top[i].Graph) {
			t.Fatalf("ranking out of order at %d: %+v before %+v", i, top[i-1], top[i])
		}
	}
}
