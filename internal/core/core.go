// Package core assembles the paper's full T-PS query pipeline: structural
// pruning over the certain graphs, probabilistic pruning through the PMI
// index (SSPBound / OPT-SSPBound over SIPBound / OPT-SIPBound entries), and
// Monte-Carlo or exact verification (paper §1.2).
package core

import (
	"fmt"
	"time"

	"probgraph/internal/feature"
	"probgraph/internal/graph"
	"probgraph/internal/pmi"
	"probgraph/internal/prob"
	"probgraph/internal/simsearch"
)

// BuildOptions configures database and index construction.
type BuildOptions struct {
	// Feature mining knobs (paper Algorithm 4: α, β, γ, maxL).
	Feature feature.Options
	// PMI construction knobs; PMI.Optimize distinguishes OPT-SIPBound
	// (true) from SIPBound (false).
	PMI pmi.Options
	// StructFeatures caps the structural filter's counting features.
	StructFeatures int
	// SkipPMI builds only the structural layer (used by the Structure-only
	// baseline and by IND-model comparisons that rebuild indices).
	SkipPMI bool
}

// DefaultBuildOptions returns the paper's default parameter setting scaled
// to this implementation.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{PMI: pmi.NewOptions()}
}

// BuildStats records index construction cost (Figure 12c/12d metrics).
type BuildStats struct {
	Features       int
	FeatureTime    time.Duration
	PMITime        time.Duration
	StructTime     time.Duration
	IndexSizeBytes int
}

// Database is an indexed probabilistic graph database ready for T-PS
// queries.
type Database struct {
	Graphs  []*prob.PGraph
	Engines []*prob.Engine
	Certain []*graph.Graph

	Features []*feature.Feature
	PMI      *pmi.Index
	Struct   *simsearch.Index

	Build BuildStats
	opt   BuildOptions
}

// NewDatabase indexes the given probabilistic graphs: it builds per-graph
// inference engines, mines PMI features, constructs the PMI, and prepares
// the structural filter.
func NewDatabase(graphs []*prob.PGraph, opt BuildOptions) (*Database, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("core: empty database")
	}
	db := &Database{Graphs: graphs, opt: opt}
	for i, pg := range graphs {
		eng, err := prob.NewEngine(pg)
		if err != nil {
			return nil, fmt.Errorf("core: graph %d: %w", i, err)
		}
		db.Engines = append(db.Engines, eng)
		db.Certain = append(db.Certain, pg.G)
	}

	t0 := time.Now()
	sf := simsearch.DefaultFeatures(db.Certain, opt.StructFeatures)
	db.Struct = simsearch.BuildIndex(db.Certain, sf)
	db.Build.StructTime = time.Since(t0)

	t1 := time.Now()
	db.Features = feature.Mine(db.Certain, opt.Feature)
	db.Build.FeatureTime = time.Since(t1)
	db.Build.Features = len(db.Features)

	if !opt.SkipPMI {
		t2 := time.Now()
		idx, err := pmi.Build(graphs, db.Engines, db.Features, opt.PMI)
		if err != nil {
			return nil, fmt.Errorf("core: building PMI: %w", err)
		}
		db.PMI = idx
		db.Build.PMITime = time.Since(t2)
		db.Build.IndexSizeBytes = idx.SizeBytes()
	}
	return db, nil
}

// Len returns the number of graphs.
func (db *Database) Len() int { return len(db.Graphs) }

// AddGraph appends one probabilistic graph to the database incrementally:
// it builds the inference engine, extends the structural filter, and adds
// the graph's column to the PMI. The mined feature vocabulary is kept
// (standard incremental-index trade-off; rebuild with NewDatabase when the
// data distribution drifts). The new graph's index is returned.
//
// AddGraph is atomic: the fallible steps (engine construction, PMI column
// computation) run before any database state is touched, so a failed call
// leaves the database exactly as it was — including every Build stat.
// pmi.Index.AddGraph computes its column in full before extending any row,
// which makes it the commit point; all bookkeeping (IndexSizeBytes
// included) is written only after it and the remaining infallible appends
// succeed, so no field ever describes a database that was never committed.
func (db *Database) AddGraph(pg *prob.PGraph) (int, error) {
	eng, err := prob.NewEngine(pg)
	if err != nil {
		return 0, fmt.Errorf("core: adding graph: %w", err)
	}
	if db.PMI != nil {
		if err := db.PMI.AddGraph(pg, eng); err != nil {
			return 0, err
		}
	}
	gi := len(db.Graphs)
	db.Graphs = append(db.Graphs, pg)
	db.Engines = append(db.Engines, eng)
	db.Certain = append(db.Certain, pg.G)
	if db.Struct != nil {
		db.Struct.AddGraph(pg.G)
	}
	if db.PMI != nil {
		db.Build.IndexSizeBytes = db.PMI.SizeBytes()
	}
	return gi, nil
}

// AttachPMI installs a previously persisted index (see pmi.Index.Save /
// pmi.Load), replacing whatever the build produced. The index must have
// been built from exactly this database: the column count is validated
// here, entry semantics cannot be (garbage in, garbage out).
func (db *Database) AttachPMI(idx *pmi.Index) error {
	for fi := range idx.Entries {
		if len(idx.Entries[fi]) != len(db.Graphs) {
			return fmt.Errorf("core: index row %d covers %d graphs, database has %d",
				fi, len(idx.Entries[fi]), len(db.Graphs))
		}
	}
	db.PMI = idx
	db.Build.IndexSizeBytes = idx.SizeBytes()
	return nil
}
