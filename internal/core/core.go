// Package core assembles the paper's full T-PS query pipeline: structural
// pruning over the certain graphs, probabilistic pruning through the PMI
// index (SSPBound / OPT-SSPBound over SIPBound / OPT-SIPBound entries), and
// Monte-Carlo or exact verification (paper §1.2).
//
// The database is a first-class mutable store built from immutable,
// generation-numbered views: every query entry point pins the current View
// and runs against it untouched while AddGraph / RemoveGraph /
// ReplaceGraph build the next view copy-on-write under a writer lock —
// mutations never block readers and readers never block mutations. See
// the View type for the full contract.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"probgraph/internal/feature"
	"probgraph/internal/graph"
	"probgraph/internal/pmi"
	"probgraph/internal/prob"
	"probgraph/internal/simsearch"
)

// BuildOptions configures database and index construction.
type BuildOptions struct {
	// Feature mining knobs (paper Algorithm 4: α, β, γ, maxL).
	Feature feature.Options
	// PMI construction knobs; PMI.Optimize distinguishes OPT-SIPBound
	// (true) from SIPBound (false).
	PMI pmi.Options
	// StructFeatures caps the structural filter's counting features.
	StructFeatures int
	// SkipPMI builds only the structural layer (used by the Structure-only
	// baseline and by IND-model comparisons that rebuild indices).
	SkipPMI bool
}

// DefaultBuildOptions returns the paper's default parameter setting scaled
// to this implementation.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{PMI: pmi.NewOptions()}
}

// BuildStats records index construction cost (Figure 12c/12d metrics).
type BuildStats struct {
	Features       int
	FeatureTime    time.Duration
	PMITime        time.Duration
	StructTime     time.Duration
	IndexSizeBytes int
}

// View is one immutable, generation-numbered state of a Database. Every
// query entry point pins the current view at its start and runs against it
// untouched, so a query observes one consistent database no matter how
// many mutations commit while it runs — and its results are
// bitwise-identical to running the same query before the mutation.
//
// Slots and tombstones: graphs occupy slots 0..Len()-1, and a slot's
// index is the graph index queries report. RemoveGraph tombstones a slot
// — the postings and PMI keep its entries, every scan filters it — so
// surviving indices are stable across removals. Compact drops the
// tombstones and renumbers the survivors contiguously (in slot order),
// realigning per-candidate query seeding with a fresh NewDatabase over
// the surviving graphs; the mined feature vocabulary is carried over
// (remapped), not re-mined, so only the PMI pruning phase can differ
// from a truly fresh build — never the answer set it is sound against.
//
// A View is safe for unbounded concurrent use and never changes; pin one
// with Database.View to run a multi-query analysis against a single
// consistent state.
type View struct {
	// Generation numbers this view; NewDatabase starts at 1 and every
	// committed mutation increments it.
	Generation uint64

	Graphs []*prob.PGraph
	//pgvet:nosnap engines are rebuilt lazily after a load (junction-tree construction is deterministic)
	Engines []*prob.Engine
	//pgvet:nosnap each entry aliases Graphs[i].G; loaders re-derive the slice
	Certain []*graph.Graph

	// engLazy backs nil Engines slots from snapshot loads, resolved on
	// first use by View.Engine. The slice is shared by COW successor
	// views; see engine.go for the sharing argument.
	engLazy []atomic.Pointer[prob.Engine]

	Features []*feature.Feature
	PMI      *pmi.Index
	Struct   *simsearch.Index

	//pgvet:nosnap build-time metrics, not state; loaders repopulate the fields queries read
	Build BuildStats
	opt   BuildOptions

	// live marks which slots hold live graphs (nil = all live);
	// liveCount counts them.
	live      []bool
	liveCount int

	// gids maps this view's slots to the global graph ids of the
	// database it was partitioned from (nil = identity: slot i is global
	// id i). Range views (View.Range, Database.Partition, SaveRange) set
	// it so per-candidate query seeding — and therefore every verdict and
	// SSP estimate — is computed from the global id, which is what makes
	// a sharded evaluation bitwise-identical to the full database's.
	// Views with a non-nil gids are read-only: mutations would desync the
	// map (see ErrPartitioned).
	gids []int
}

// Len returns the number of slots, tombstoned ones included — the
// exclusive upper bound of graph indices.
func (v *View) Len() int { return len(v.Graphs) }

// NumLive returns the number of live (non-tombstoned) graphs.
func (v *View) NumLive() int { return v.liveCount }

// Tombstones returns the number of tombstoned slots.
func (v *View) Tombstones() int { return len(v.Graphs) - v.liveCount }

// Live reports whether slot gi holds a live graph.
func (v *View) Live(gi int) bool { return v.live == nil || v.live[gi] }

// Options returns the build options the database was constructed with.
func (v *View) Options() BuildOptions { return v.opt }

// Partitioned reports whether this view is a range partition of a larger
// database (built by Range / Partition / a SaveRange snapshot). Partitioned
// views are read-only.
func (v *View) Partitioned() bool { return v.gids != nil }

// GID translates slot gi of this view to its global graph id: the slot it
// occupied in the database the view was partitioned from. For ordinary
// (non-partitioned) views it is the identity. All per-candidate seeding
// routes through GID, which is what keeps a partition's verdicts and SSP
// estimates bitwise-identical to the full database's.
func (v *View) GID(gi int) int {
	if v.gids == nil {
		return gi
	}
	return v.gids[gi]
}

// LocalOf translates a global graph id back to this view's slot, or -1
// when the id is not held by this partition. For ordinary views it is the
// identity (bounded by Len).
func (v *View) LocalOf(global int) int {
	if v.gids == nil {
		if global < 0 || global >= len(v.Graphs) {
			return -1
		}
		return global
	}
	lo, hi := 0, len(v.gids) // gids is strictly ascending: binary search
	for lo < hi {
		mid := (lo + hi) / 2
		if v.gids[mid] < global {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.gids) && v.gids[lo] == global {
		return lo
	}
	return -1
}

// Database is an indexed probabilistic graph database ready for T-PS
// queries. It holds the current View behind an atomic pointer; queries pin
// it wait-free while the mutation API (AddGraph, RemoveGraph,
// ReplaceGraph, Compact) builds successor views under the writer lock.
// All methods are safe for concurrent use.
type Database struct {
	cur atomic.Pointer[View]

	// mu is the writer lock: it serializes mutations (which read the
	// current view, build its copy-on-write successor, and publish it)
	// and is never taken by a query — readers never block on a writer.
	mu sync.Mutex

	// compactThreshold (guarded by mu) triggers automatic compaction
	// after a mutation once Tombstones() > threshold × Len(); 0 disables
	// auto-compaction (Compact stays available).
	compactThreshold float64
}

// NewDatabase indexes the given probabilistic graphs: it builds per-graph
// inference engines, mines PMI features, constructs the PMI, and prepares
// the structural filter. The database starts at generation 1.
func NewDatabase(graphs []*prob.PGraph, opt BuildOptions) (*Database, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("core: empty database")
	}
	v := &View{Generation: 1, Graphs: graphs, opt: opt, liveCount: len(graphs)}
	for i, pg := range graphs {
		eng, err := prob.NewEngine(pg)
		if err != nil {
			return nil, fmt.Errorf("core: graph %d: %w", i, err)
		}
		v.Engines = append(v.Engines, eng)
		v.Certain = append(v.Certain, pg.G)
	}

	t0 := time.Now()
	sf := simsearch.DefaultFeatures(v.Certain, opt.StructFeatures)
	v.Struct = simsearch.BuildIndex(v.Certain, sf)
	v.Build.StructTime = time.Since(t0)

	t1 := time.Now()
	v.Features = feature.Mine(v.Certain, opt.Feature)
	v.Build.FeatureTime = time.Since(t1)
	v.Build.Features = len(v.Features)

	if !opt.SkipPMI {
		t2 := time.Now()
		idx, err := pmi.Build(graphs, v.Engines, v.Features, opt.PMI)
		if err != nil {
			return nil, fmt.Errorf("core: building PMI: %w", err)
		}
		v.PMI = idx
		v.Build.PMITime = time.Since(t2)
		v.Build.IndexSizeBytes = idx.SizeBytes()
	}
	db := &Database{}
	db.cur.Store(v)
	return db, nil
}

// newFromView wraps a fully built view (snapshot loads) in a Database.
func newFromView(v *View) *Database {
	db := &Database{}
	db.cur.Store(v)
	return db
}

// View pins the current view: an immutable snapshot of the database the
// caller can query for as long as it likes, unaffected by concurrent
// mutations. Every query method on Database is shorthand for pinning a
// view and calling the same method on it.
func (db *Database) View() *View { return db.cur.Load() }

// Len returns the current number of slots (tombstoned ones included); see
// View.Len.
func (db *Database) Len() int { return db.View().Len() }

// NumLive returns the current number of live graphs.
func (db *Database) NumLive() int { return db.View().NumLive() }

// Tombstones returns the current number of tombstoned slots.
func (db *Database) Tombstones() int { return db.View().Tombstones() }

// Generation returns the current generation number.
func (db *Database) Generation() uint64 { return db.View().Generation }

// Graphs returns the current view's graph slots. Tombstoned slots keep
// their graph; check View.Live before dereferencing semantics that
// require liveness.
func (db *Database) Graphs() []*prob.PGraph { return db.View().Graphs }

// Certain returns the current view's certain graphs, by slot.
func (db *Database) Certain() []*graph.Graph { return db.View().Certain }

// PMI returns the current view's probabilistic matrix index (nil when the
// database was built with SkipPMI).
func (db *Database) PMI() *pmi.Index { return db.View().PMI }

// Struct returns the current view's structural filter.
func (db *Database) Struct() *simsearch.Index { return db.View().Struct }

// Features returns the current view's mined feature vocabulary.
func (db *Database) Features() []*feature.Feature { return db.View().Features }

// Build returns the current view's construction statistics.
func (db *Database) Build() BuildStats { return db.View().Build }

// SetCompactThreshold configures automatic compaction: after a mutation
// leaves more than frac × Len() slots tombstoned, the mutation compacts
// the database in the same commit (one extra generation). frac <= 0
// disables auto-compaction; Compact remains available either way. Note
// that compaction renumbers the surviving graphs.
func (db *Database) SetCompactThreshold(frac float64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.compactThreshold = frac
}

// CompactThreshold returns the configured auto-compaction threshold.
func (db *Database) CompactThreshold() float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.compactThreshold
}

// ErrNoSuchGraph marks mutations addressing a slot that does not exist
// or was already removed. Callers (the HTTP layer) use errors.Is to map
// it to a not-found response, distinct from evaluation failures.
var ErrNoSuchGraph = errors.New("no such graph")

// ErrPartitioned marks mutations attempted on a partitioned database (one
// loaded from a SaveRange snapshot or built by Partition). Partitions are
// read-only serving replicas: a local mutation would desynchronize the
// global-id map — and with it the seeding contract that keeps shard
// answers bitwise-identical to the full database — so the owner of the
// full database must mutate and re-partition instead.
var ErrPartitioned = errors.New("database is a read-only partition")

// checkMutable rejects mutations on partitioned views. Caller holds db.mu.
func (db *Database) checkMutable() error {
	if db.cur.Load().Partitioned() {
		return fmt.Errorf("core: %w", ErrPartitioned)
	}
	return nil
}

// Mutation describes one committed mutation: the slot it targeted (or
// created), the generation transition, the resulting shape, and whether
// the mutation triggered auto-compaction (renumbering graph indices).
// Every field is captured inside the writer lock, so the record is
// consistent even under concurrent mutations.
type Mutation struct {
	Index         int
	OldGeneration uint64
	NewGeneration uint64
	LiveGraphs    int
	Tombstoned    int
	Compacted     bool
	// CompactedSlots is the number of tombstoned slots reclaimed when
	// Compacted is true (the shrink in View.Len), 0 otherwise.
	CompactedSlots int
}

// record fills the post-state fields from the committed view.
func (m *Mutation) record(old, committed *View) {
	m.OldGeneration = old.Generation
	m.NewGeneration = committed.Generation
	m.LiveGraphs = committed.NumLive()
	m.Tombstoned = committed.Tombstones()
}

// AddGraph inserts one probabilistic graph incrementally: it builds the
// inference engine, extends the structural filter, and appends the
// graph's column to the PMI — all copy-on-write, so queries running
// against the pre-insertion view are never blocked or disturbed. The
// mined feature vocabulary is kept (standard incremental-index trade-off;
// rebuild with NewDatabase when the data distribution drifts). The new
// graph's slot index and the new generation are returned.
//
// AddGraph is atomic: the fallible steps (engine construction, PMI column
// computation) run before the successor view is published, so a failed
// call leaves the database — and every already-pinned view — exactly as
// it was.
func (db *Database) AddGraph(pg *prob.PGraph) (int, uint64, error) {
	m, err := db.AddGraphInfo(pg)
	return m.Index, m.NewGeneration, err
}

// AddGraphInfo is AddGraph returning the full mutation record.
func (db *Database) AddGraphInfo(pg *prob.PGraph) (Mutation, error) {
	// Engine construction depends only on the incoming graph, so it runs
	// before the writer lock — concurrent mutations serialize only on the
	// view-dependent index work.
	eng, err := prob.NewEngine(pg)
	if err != nil {
		return Mutation{}, fmt.Errorf("core: adding graph: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.checkMutable(); err != nil {
		return Mutation{}, err
	}
	v := db.cur.Load()
	nv := *v
	if v.PMI != nil {
		npmi, err := v.PMI.WithColumn(pg, eng)
		if err != nil {
			return Mutation{}, err
		}
		nv.PMI = npmi
		nv.Build.IndexSizeBytes = npmi.SizeBytes()
	}
	gi := len(v.Graphs)
	nv.Graphs = append(v.Graphs, pg)
	nv.Engines = append(v.Engines, eng)
	nv.Certain = append(v.Certain, pg.G)
	if v.live != nil {
		nv.live = append(v.live, true)
	}
	nv.liveCount = v.liveCount + 1
	if v.Struct != nil {
		nv.Struct = v.Struct.WithGraph(pg.G)
	}
	nv.Generation = v.Generation + 1
	db.cur.Store(&nv)
	m := Mutation{Index: gi}
	m.record(v, &nv)
	return m, nil
}

// RemoveGraph tombstones slot id: the graph disappears from every
// subsequent query (already-pinned views still see it) while its postings
// and PMI column stay in place, masked, until Compact rewrites them.
// Surviving graph indices are unchanged. The new generation is returned.
func (db *Database) RemoveGraph(id int) (uint64, error) {
	m, err := db.RemoveGraphInfo(id)
	return m.NewGeneration, err
}

// RemoveGraphInfo is RemoveGraph returning the full mutation record —
// including whether the removal crossed the compaction threshold and
// renumbered the survivors.
func (db *Database) RemoveGraphInfo(id int) (Mutation, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.checkMutable(); err != nil {
		return Mutation{}, err
	}
	v := db.cur.Load()
	if err := v.checkLive(id, "removing"); err != nil {
		return Mutation{}, err
	}
	nv := *v
	nv.live = make([]bool, len(v.Graphs))
	if v.live != nil {
		copy(nv.live, v.live)
	} else {
		for i := range nv.live {
			nv.live[i] = true
		}
	}
	nv.live[id] = false
	nv.liveCount = v.liveCount - 1
	if v.Struct != nil {
		nv.Struct = v.Struct.WithTombstone(id)
	}
	if v.PMI != nil {
		nv.PMI = v.PMI.WithMaskedColumn(id)
	}
	nv.Generation = v.Generation + 1
	final := db.maybeCompact(&nv)
	db.cur.Store(final)
	m := Mutation{Index: id, Compacted: final != &nv}
	if m.Compacted {
		m.CompactedSlots = nv.Len() - final.Len()
	}
	m.record(v, final)
	return m, nil
}

// ReplaceGraph swaps the graph in live slot id for pg — the re-scored-JPT
// case: same slot index, fresh engine, recomputed structural counts and
// PMI column, all copy-on-write. The new generation is returned.
func (db *Database) ReplaceGraph(id int, pg *prob.PGraph) (uint64, error) {
	m, err := db.ReplaceGraphInfo(id, pg)
	return m.NewGeneration, err
}

// ReplaceGraphInfo is ReplaceGraph returning the full mutation record.
func (db *Database) ReplaceGraphInfo(id int, pg *prob.PGraph) (Mutation, error) {
	// As in AddGraphInfo, the engine build is view-independent and stays
	// outside the writer lock.
	eng, err := prob.NewEngine(pg)
	if err != nil {
		return Mutation{}, fmt.Errorf("core: replacing graph %d: %w", id, err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.checkMutable(); err != nil {
		return Mutation{}, err
	}
	v := db.cur.Load()
	if err := v.checkLive(id, "replacing"); err != nil {
		return Mutation{}, err
	}
	nv := *v
	if v.PMI != nil {
		npmi, err := v.PMI.WithReplacedColumn(id, pg, eng)
		if err != nil {
			return Mutation{}, err
		}
		nv.PMI = npmi
		nv.Build.IndexSizeBytes = npmi.SizeBytes()
	}
	nv.Graphs = cloneWith(v.Graphs, id, pg)
	nv.Engines = cloneWith(v.Engines, id, eng)
	nv.Certain = cloneWith(v.Certain, id, pg.G)
	if v.Struct != nil {
		nv.Struct = v.Struct.WithReplaced(id, pg.G)
	}
	nv.Generation = v.Generation + 1
	db.cur.Store(&nv)
	m := Mutation{Index: id}
	m.record(v, &nv)
	return m, nil
}

// Compact rewrites the database without its tombstoned slots: survivors
// keep their relative order and are renumbered contiguously, the postings
// and the PMI drop the dead entries, and feature supports are remapped.
// After Compact, per-candidate query seeding aligns with a fresh
// NewDatabase over the surviving graphs (pruning-bypassed queries answer
// bitwise-identically to one); the mined vocabulary is carried over, not
// re-mined. A database without tombstones is returned unchanged (same
// generation).
func (db *Database) Compact() (uint64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.checkMutable(); err != nil {
		return 0, err
	}
	v := db.cur.Load()
	if v.Tombstones() == 0 {
		return v.Generation, nil
	}
	nv := compactView(v)
	db.cur.Store(nv)
	return nv.Generation, nil
}

// maybeCompact applies the auto-compaction policy to a not-yet-published
// successor view. Caller holds db.mu.
func (db *Database) maybeCompact(nv *View) *View {
	if db.compactThreshold <= 0 || nv.Len() == 0 {
		return nv
	}
	if float64(nv.Tombstones()) <= db.compactThreshold*float64(nv.Len()) {
		return nv
	}
	return compactView(nv)
}

// compactView builds the tombstone-free successor of v.
func compactView(v *View) *View {
	nv := &View{
		Generation: v.Generation + 1,
		opt:        v.opt,
		Build:      v.Build,
	}
	remap := make([]int, len(v.Graphs)) // old slot → new slot, -1 when dead
	for gi := range v.Graphs {
		if !v.Live(gi) {
			remap[gi] = -1
			continue
		}
		remap[gi] = len(nv.Graphs)
		nv.Graphs = append(nv.Graphs, v.Graphs[gi])
		nv.Engines = append(nv.Engines, v.Engines[gi])
		nv.Certain = append(nv.Certain, v.Certain[gi])
	}
	nv.liveCount = len(nv.Graphs)
	nv.Features = make([]*feature.Feature, len(v.Features))
	for i, f := range v.Features {
		cp := *f
		cp.Support = nil
		for _, gi := range f.Support {
			if gi < len(remap) && remap[gi] >= 0 {
				cp.Support = append(cp.Support, remap[gi])
			}
		}
		nv.Features[i] = &cp
	}
	// Lazily loaded engine slots stay lazy across compaction: survivors
	// keep their (renumbered) cache slot, with already-resolved engines
	// carried over so no work is repeated.
	if v.engLazy != nil {
		nv.engLazy = make([]atomic.Pointer[prob.Engine], len(nv.Graphs))
		for gi, ni := range remap {
			if ni >= 0 && nv.Engines[ni] == nil && gi < len(v.engLazy) {
				if e := v.engLazy[gi].Load(); e != nil {
					nv.engLazy[ni].Store(e)
				}
			}
		}
	}
	if v.Struct != nil {
		nv.Struct = v.Struct.Compacted()
	}
	if v.PMI != nil {
		nv.PMI = v.PMI.CompactedColumns()
		nv.Build.IndexSizeBytes = nv.PMI.SizeBytes()
	}
	return nv
}

// checkLive validates a mutation target slot. Both failure modes wrap
// ErrNoSuchGraph.
func (v *View) checkLive(id int, verb string) error {
	if id < 0 || id >= len(v.Graphs) {
		return fmt.Errorf("core: %s graph %d: %w: index out of range [0,%d)", verb, id, ErrNoSuchGraph, len(v.Graphs))
	}
	if !v.Live(id) {
		return fmt.Errorf("core: %s graph %d: %w: already removed", verb, id, ErrNoSuchGraph)
	}
	return nil
}

// tombstoneIDs lists the view's tombstoned slots, ascending.
func (v *View) tombstoneIDs() []int {
	if v.live == nil {
		return nil
	}
	var out []int
	for gi, ok := range v.live {
		if !ok {
			out = append(out, gi)
		}
	}
	return out
}

// cloneWith returns a copy of xs with xs[i] = x.
func cloneWith[T any](xs []T, i int, x T) []T {
	out := make([]T, len(xs))
	copy(out, xs)
	out[i] = x
	return out
}

// AttachPMI installs a previously persisted index (see pmi.Index.Save /
// pmi.Load) as a new generation, replacing whatever the build produced.
// The index must have been built from exactly this database: the column
// count is validated here, entry semantics cannot be (garbage in, garbage
// out). The view's tombstones are re-applied as the column mask, so a
// later Compact keeps the columns aligned with the renumbered slots.
func (db *Database) AttachPMI(idx *pmi.Index) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.checkMutable(); err != nil {
		return err
	}
	v := db.cur.Load()
	for fi := range idx.Entries {
		if len(idx.Entries[fi]) != len(v.Graphs) {
			return fmt.Errorf("core: index row %d covers %d graphs, database has %d",
				fi, len(idx.Entries[fi]), len(v.Graphs))
		}
	}
	nv := *v
	nv.PMI = idx.WithMaskedColumns(v.tombstoneIDs())
	nv.Build.IndexSizeBytes = nv.PMI.SizeBytes()
	nv.Generation = v.Generation + 1
	db.cur.Store(&nv)
	return nil
}
