package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"probgraph/internal/dataset"
	"probgraph/internal/graph"
)

// snapDB builds a small indexed database for snapshot tests.
func snapDB(t *testing.T, n int) (*Database, *dataset.DB) {
	t.Helper()
	raw, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: n, MinVertices: 5, MaxVertices: 7, Organisms: 3,
		Correlated: true, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(raw.Graphs, DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	return db, raw
}

func snapQueries(t *testing.T, raw *dataset.DB, k int) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	qs := make([]*graph.Graph, k)
	for i := range qs {
		qs[i] = dataset.ExtractQuery(raw.Graphs[i%len(raw.Graphs)].G, 4, rng)
	}
	return qs
}

// roundTrip snapshots db and loads it back.
func roundTrip(t *testing.T, db *Database) *Database {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadDatabase(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadDatabase: %v", err)
	}
	return got
}

// TestSnapshotRoundTripIdentity: the reloaded database must answer queries
// bitwise-identically to the one that wrote the snapshot — same answers,
// same SSP estimates, same pruning counters.
func TestSnapshotRoundTripIdentity(t *testing.T) {
	db, raw := snapDB(t, 10)
	got := roundTrip(t, db)

	if got.Len() != db.Len() {
		t.Fatalf("reloaded %d graphs, want %d", got.Len(), db.Len())
	}
	if got.PMI() == nil || got.PMI().NumFeatures() != db.PMI().NumFeatures() {
		t.Fatalf("PMI features: got %v, want %d", got.PMI(), db.PMI().NumFeatures())
	}
	if len(got.Features()) != len(db.Features()) {
		t.Fatalf("mined features: got %d, want %d", len(got.Features()), len(db.Features()))
	}
	for fi := range db.PMI().Entries {
		for gi := range db.PMI().Entries[fi] {
			a, b := db.PMI().Entries[fi][gi], got.PMI().Entries[fi][gi]
			if a != b {
				t.Fatalf("PMI entry (%d,%d) changed: %+v != %+v", fi, gi, b, a)
			}
		}
	}

	for i, q := range snapQueries(t, raw, 4) {
		for _, opt := range []QueryOptions{
			{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: int64(7 + i)},
			{Epsilon: 0.6, Delta: 1, Seed: int64(100 + i)}, // plain SSPBound
			{Epsilon: 0.4, Delta: 1, OptBounds: true, Verifier: VerifierExact, Seed: 3},
		} {
			want, err := db.Query(q, opt)
			if err != nil {
				t.Fatal(err)
			}
			have, err := got.Query(q, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want.Answers, have.Answers) {
				t.Fatalf("query %d: answers %v != %v", i, have.Answers, want.Answers)
			}
			if !reflect.DeepEqual(want.SSP, have.SSP) {
				t.Fatalf("query %d: SSP %v != %v (not bitwise)", i, have.SSP, want.SSP)
			}
			if want.Stats.PrunedByUpper != have.Stats.PrunedByUpper ||
				want.Stats.AcceptedByLower != have.Stats.AcceptedByLower ||
				want.Stats.VerifyCandidates != have.Stats.VerifyCandidates ||
				want.Stats.StructConfirmed != have.Stats.StructConfirmed {
				t.Fatalf("query %d: pruning counters diverged: %+v != %+v", i, have.Stats, want.Stats)
			}
		}
	}
}

// TestSnapshotTopKAndBatch: the extended query modes agree across the
// round-trip too.
func TestSnapshotTopKAndBatch(t *testing.T) {
	db, raw := snapDB(t, 8)
	got := roundTrip(t, db)
	qs := snapQueries(t, raw, 3)

	wantTop, err := db.QueryTopK(qs[0], 3, QueryOptions{Delta: 1, OptBounds: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	haveTop, err := got.QueryTopK(qs[0], 3, QueryOptions{Delta: 1, OptBounds: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantTop, haveTop) {
		t.Fatalf("topk diverged: %v != %v", haveTop, wantTop)
	}

	opt := QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: 21, Concurrency: 3}
	wantBatch, err := db.QueryBatch(qs, opt)
	if err != nil {
		t.Fatal(err)
	}
	haveBatch, err := got.QueryBatch(qs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantBatch {
		if !reflect.DeepEqual(wantBatch[i].Answers, haveBatch[i].Answers) ||
			!reflect.DeepEqual(wantBatch[i].SSP, haveBatch[i].SSP) {
			t.Fatalf("batch query %d diverged", i)
		}
	}
}

// TestSnapshotIncrementalAddGraph: AddGraph on a reloaded database produces
// the same column as on the original (options survive the round-trip).
func TestSnapshotIncrementalAddGraph(t *testing.T) {
	db, raw := snapDB(t, 8)
	got := roundTrip(t, db)

	extra, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 1, MinVertices: 5, MaxVertices: 6, Organisms: 1,
		Correlated: true, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	pg := extra.Graphs[0]
	wi, _, err := db.AddGraph(pg)
	if err != nil {
		t.Fatal(err)
	}
	hi, _, err := got.AddGraph(pg)
	if err != nil {
		t.Fatal(err)
	}
	if wi != hi {
		t.Fatalf("AddGraph index %d != %d", hi, wi)
	}
	for fi := range db.PMI().Entries {
		if db.PMI().Entries[fi][wi] != got.PMI().Entries[fi][hi] {
			t.Fatalf("incremental PMI column diverged at feature %d: %+v != %+v",
				fi, got.PMI().Entries[fi][hi], db.PMI().Entries[fi][wi])
		}
	}

	q := snapQueries(t, raw, 1)[0]
	opt := QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: 13}
	want, err := db.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Answers, have.Answers) {
		t.Fatalf("post-AddGraph answers diverged: %v != %v", have.Answers, want.Answers)
	}
}

// TestSnapshotNoPMI: a structure-only database (SkipPMI) snapshots and
// reloads too.
func TestSnapshotNoPMI(t *testing.T) {
	raw, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 6, MinVertices: 5, MaxVertices: 6, Organisms: 2,
		Correlated: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultBuildOptions()
	opt.SkipPMI = true
	db, err := NewDatabase(raw.Graphs, opt)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, db)
	if got.PMI() != nil {
		t.Fatal("reloaded database unexpectedly has a PMI")
	}
	q := snapQueries(t, raw, 1)[0]
	qo := QueryOptions{Epsilon: 0.4, Delta: 1, Seed: 2}
	want, err := db.Query(q, qo)
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Query(q, qo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Answers, have.Answers) || !reflect.DeepEqual(want.SSP, have.SSP) {
		t.Fatalf("structure-only query diverged")
	}
}

// TestSnapshotRejectsGarbage: loading a non-snapshot fails cleanly.
func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := LoadDatabase(bytes.NewReader([]byte("pgraph g0 0\nend\n"))); err == nil {
		t.Fatal("want error for non-snapshot input")
	}
	if _, err := LoadDatabase(bytes.NewReader(nil)); err == nil {
		t.Fatal("want error for empty input")
	}
}
