package core

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"probgraph/internal/obs"
)

// tracedQueryCtx returns a context carrying a fresh trace root plus the
// trace and root for post-run inspection.
func tracedQueryCtx() (context.Context, *obs.Trace, obs.Span) {
	tr := obs.NewTrace()
	root := tr.Root("query")
	return obs.ContextWithSpan(context.Background(), root), tr, root
}

// findChild returns the first direct child with the given name, or nil.
func findChild(n *obs.SpanNode, name string) *obs.SpanNode {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// TestQuerySpanTreeMatchesStats runs one traced query and checks that the
// span tree's stage structure and item counts correspond to the Stats the
// same query reports: struct_filter carries |SCq| (with per-shard postings
// spans and the exact-confirmation span underneath), relax carries |U|,
// and verify covers every structural candidate. This is the acceptance
// contract — the trace is a faithful account of the pipeline, not a
// parallel bookkeeping that can drift.
func TestQuerySpanTreeMatchesStats(t *testing.T) {
	db, raw := snapDB(t, 12)
	v := db.View()
	for qi, q := range snapQueries(t, raw, 4) {
		opt := QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: int64(3 + qi)}
		ctx, tr, root := tracedQueryCtx()
		res, err := v.query(ctx, q, opt.withDefaults(), nil)
		root.End()
		if err != nil {
			t.Fatal(err)
		}
		if n := tr.OpenSpans(); n != 0 {
			t.Fatalf("query %d: %d spans still open after completion", qi, n)
		}
		tree := tr.Tree()
		if tree.Name != "query" {
			t.Fatalf("query %d: root span %q, want query", qi, tree.Name)
		}
		sf := findChild(tree, "struct_filter")
		if sf == nil {
			t.Fatalf("query %d: no struct_filter span in %+v", qi, tree)
		}
		if int(sf.Count) != res.Stats.StructConfirmed {
			t.Errorf("query %d: struct_filter count %d != StructConfirmed %d",
				qi, sf.Count, res.Stats.StructConfirmed)
		}
		if findChild(sf, "postings_shard") == nil && res.Stats.StructFilterCandidates > 0 {
			// The shard spans exist whenever the postings scan ran; a query
			// whose feature budget admits everything skips the scan.
			shards, _ := v.Struct.PostingsStats()
			if shards > 0 {
				t.Errorf("query %d: struct_filter has no postings_shard child", qi)
			}
		}
		if c := findChild(sf, "confirm"); c == nil {
			t.Errorf("query %d: struct_filter has no confirm span", qi)
		} else if int(c.Count) != res.Stats.StructFilterCandidates {
			t.Errorf("query %d: confirm count %d != StructFilterCandidates %d",
				qi, c.Count, res.Stats.StructFilterCandidates)
		}
		rx := findChild(tree, "relax")
		if rx == nil || int(rx.Count) != res.Stats.RelaxedQueries {
			t.Errorf("query %d: relax span %+v, want count %d", qi, rx, res.Stats.RelaxedQueries)
		}
		if findChild(tree, "pmi_prune") == nil {
			t.Errorf("query %d: no pmi_prune span (PMI is built in this fixture)", qi)
		}
		vf := findChild(tree, "verify")
		if vf == nil || int(vf.Count) != res.Stats.StructConfirmed {
			t.Errorf("query %d: verify span %+v, want count %d", qi, vf, res.Stats.StructConfirmed)
		}
		for _, n := range tree.Children {
			if n.DurationMS < 0 {
				t.Errorf("query %d: span %s has negative duration", qi, n.Name)
			}
		}
	}
}

// TestPipelineBridgeMatchesStats attaches an obs.Pipeline to the query
// context and checks the process counters absorb exactly the per-query
// Stats — the bridge /metrics depends on.
func TestPipelineBridgeMatchesStats(t *testing.T) {
	db, raw := snapDB(t, 12)
	v := db.View()
	reg := obs.NewRegistry()
	p := obs.NewPipeline(reg)
	ctx := obs.ContextWithPipeline(context.Background(), p)

	var want Stats
	for qi, q := range snapQueries(t, raw, 3) {
		res, err := v.query(ctx, q, QueryOptions{Epsilon: 0.4, Delta: 1, Seed: int64(qi)}.withDefaults(), nil)
		if err != nil {
			t.Fatal(err)
		}
		want.StructFilterCandidates += res.Stats.StructFilterCandidates
		want.StructConfirmed += res.Stats.StructConfirmed
		want.PrunedByUpper += res.Stats.PrunedByUpper
		want.AcceptedByLower += res.Stats.AcceptedByLower
		want.VerifyCandidates += res.Stats.VerifyCandidates
		want.Answers += res.Stats.Answers
		want.RelaxedQueries += res.Stats.RelaxedQueries
	}
	got := map[string]int64{
		"struct_candidates": p.StructCandidates.Value(),
		"struct_confirmed":  p.StructConfirmed.Value(),
		"pruned_upper":      p.PrunedUpper.Value(),
		"accepted_lower":    p.AcceptedLower.Value(),
		"verified":          p.Verified.Value(),
		"answers":           p.Answers.Value(),
		"relaxed":           p.Relaxed.Value(),
	}
	wantM := map[string]int64{
		"struct_candidates": int64(want.StructFilterCandidates),
		"struct_confirmed":  int64(want.StructConfirmed),
		"pruned_upper":      int64(want.PrunedByUpper),
		"accepted_lower":    int64(want.AcceptedByLower),
		"verified":          int64(want.VerifyCandidates),
		"answers":           int64(want.Answers),
		"relaxed":           int64(want.RelaxedQueries),
	}
	if !reflect.DeepEqual(got, wantM) {
		t.Fatalf("pipeline counters diverge from summed Stats:\n got %v\nwant %v", got, wantM)
	}
	if n := p.StageStruct.Count(); n != 3 {
		t.Fatalf("stage histogram observed %d queries, want 3", n)
	}
}

// errAfterCtx cancels itself after its Err method has been consulted
// limit times. The worker pool checks Err per work item (serial path
// included), so this produces a deterministic mid-pipeline cancellation
// at an exact, sweepable point — no timing involved.
type errAfterCtx struct {
	context.Context // carries the trace span; Value passes through
	calls           atomic.Int64
	limit           int64
}

func (c *errAfterCtx) Err() error {
	if c.calls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

// TestCancelledQueryClosesSpans sweeps the cancellation point across the
// whole pipeline and asserts the invariant the slowlog and trace readers
// rely on: however a query dies, every span it opened is closed by the
// time it returns.
func TestCancelledQueryClosesSpans(t *testing.T) {
	db, raw := snapDB(t, 12)
	v := db.View()
	q := snapQueries(t, raw, 1)[0]
	opt := QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: 5}.withDefaults()

	sawCancel := false
	for limit := int64(1); limit < 10_000; limit++ {
		base, tr, root := tracedQueryCtx()
		ctx := &errAfterCtx{Context: base, limit: limit}
		_, err := v.query(ctx, q, opt, nil)
		root.End()
		if n := tr.OpenSpans(); n != 0 {
			t.Fatalf("limit %d: %d spans open after query returned (err=%v)", limit, n, err)
		}
		if err == nil {
			// The budget outlasted the whole pipeline; every earlier limit
			// cancelled somewhere inside it.
			if !sawCancel {
				t.Fatal("fixture query consulted ctx.Err() zero times")
			}
			return
		}
		sawCancel = true
	}
	t.Fatal("query never completed within the Err-budget sweep")
}

// TestTracedEqualsUntraced pins the determinism contract extension:
// serial ≡ parallel ≡ traced ≡ untraced, bitwise — tracing observes the
// pipeline, it must never perturb answers, SSP floats, or counters.
func TestTracedEqualsUntraced(t *testing.T) {
	db, raw := snapDB(t, 12)
	v := db.View()
	for qi, q := range snapQueries(t, raw, 3) {
		opt := QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: int64(11 + qi)}
		want, err := v.query(context.Background(), q, opt.withDefaults(), nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			o := opt
			o.Concurrency = workers
			ctx, _, root := tracedQueryCtx()
			got, err := v.query(ctx, q, o.withDefaults(), nil)
			root.End()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Answers, want.Answers) || !reflect.DeepEqual(got.SSP, want.SSP) {
				t.Fatalf("query %d workers=%d: traced result diverges from untraced", qi, workers)
			}
			if got.Stats.PrunedByUpper != want.Stats.PrunedByUpper ||
				got.Stats.VerifyCandidates != want.Stats.VerifyCandidates {
				t.Fatalf("query %d workers=%d: traced counters diverge", qi, workers)
			}
		}
	}
}
