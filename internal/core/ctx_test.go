package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"probgraph/internal/dataset"
	"probgraph/internal/graph"
	"probgraph/internal/verify"
)

// slowQueryEnv builds a database and query sized so that a full QueryCtx
// run takes long enough to cancel mid-scan reliably: probabilistic pruning
// is bypassed, so every structural candidate pays a verification with a
// large sample count.
func slowQueryEnv(t *testing.T) (*Database, *graph.Graph, QueryOptions) {
	t.Helper()
	db, _ := smallDatabase(t, 2001, 16, true)
	rng := rand.New(rand.NewSource(61))
	q := dataset.ExtractQuery(db.Certain()[0], 4, rng)
	opt := QueryOptions{
		Epsilon: 0.4, Delta: 1, SkipProbPruning: true,
		Verifier: VerifierSMP, Verify: verify.Options{N: 60000},
		Seed: 5,
	}
	return db, q, opt
}

// checkGoroutineBaseline polls until the goroutine count returns to (at
// most) baseline plus a small slack for runtime housekeeping.
func checkGoroutineBaseline(t *testing.T, label string, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: goroutine leak: baseline %d, now %d", label, baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestQueryCtxPreCancelled: every Ctx entry point returns ctx.Err()
// immediately on an already-dead context, before any pipeline work.
func TestQueryCtxPreCancelled(t *testing.T) {
	db, _ := smallDatabase(t, 2002, 6, true)
	rng := rand.New(rand.NewSource(67))
	q := dataset.ExtractQuery(db.Certain()[0], 4, rng)
	opt := QueryOptions{Epsilon: 0.4, Delta: 1, Seed: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if res, err := db.QueryCtx(ctx, q, opt); !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("QueryCtx: (%v, %v), want (nil, Canceled)", res, err)
	}
	if items, err := db.QueryTopKCtx(ctx, q, 3, opt); !errors.Is(err, context.Canceled) || items != nil {
		t.Fatalf("QueryTopKCtx: (%v, %v), want (nil, Canceled)", items, err)
	}
	if rs, err := db.QueryBatchCtx(ctx, []*graph.Graph{q, q}, opt); !errors.Is(err, context.Canceled) || rs != nil {
		t.Fatalf("QueryBatchCtx: (%v, %v), want (nil, Canceled)", rs, err)
	}
}

// TestQueryCtxCancelMidScan cancels a running query at varying worker
// counts and asserts the three promises of the contract: the call returns
// ctx.Err() (never a partial Result), it returns promptly — bounded by one
// in-flight candidate per worker, not by the remaining scan — and the
// worker-pool goroutines are gone afterwards.
func TestQueryCtxCancelMidScan(t *testing.T) {
	db, q, opt := slowQueryEnv(t)

	// Control: the uncancelled query must be slow enough that a mid-scan
	// cancel actually lands mid-scan.
	start := time.Now()
	want, err := db.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if full < 50*time.Millisecond {
		t.Skipf("full query took only %v; too fast to cancel mid-scan reliably", full)
	}
	if want.Stats.VerifyCandidates == 0 {
		t.Fatal("workload has no verification candidates; cancellation test is vacuous")
	}

	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		baseline := runtime.NumGoroutine()
		po := opt
		po.Concurrency = workers
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(full / 8)
			cancel()
		}()
		start := time.Now()
		res, err := db.QueryCtx(ctx, q, po)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Fatalf("workers=%d: cancelled query returned a partial result", workers)
		}
		// Prompt: far sooner than finishing the scan would take. The slack
		// covers the in-flight candidate evaluations that run to completion.
		if elapsed > full {
			t.Fatalf("workers=%d: cancelled query returned after %v (full scan %v) — not prompt",
				workers, elapsed, full)
		}
		checkGoroutineBaseline(t, "QueryCtx", baseline)
	}
}

// TestQueryTopKCtxCancelMidScan: same contract for the speculative top-k
// scheduler, whose workers block on a condition variable rather than the
// shared pool — cancellation must wake and drain them.
func TestQueryTopKCtxCancelMidScan(t *testing.T) {
	db, q, opt := slowQueryEnv(t)
	start := time.Now()
	if _, err := db.QueryTopK(q, 3, opt); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if full < 50*time.Millisecond {
		t.Skipf("full top-k took only %v; too fast to cancel mid-scan reliably", full)
	}
	for _, workers := range []int{1, 4} {
		baseline := runtime.NumGoroutine()
		po := opt
		po.Concurrency = workers
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(full / 8)
			cancel()
		}()
		items, err := db.QueryTopKCtx(ctx, q, 3, po)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if items != nil {
			t.Fatalf("workers=%d: cancelled top-k returned a partial ranking", workers)
		}
		checkGoroutineBaseline(t, "QueryTopKCtx", baseline)
	}
}

// TestQueryBatchCtxCancelStopsWholeBatch: the shared context ends every
// member; no partial batch results come back.
func TestQueryBatchCtxCancelStopsWholeBatch(t *testing.T) {
	db, q, opt := slowQueryEnv(t)
	qs := []*graph.Graph{q, q, q, q}
	start := time.Now()
	if _, err := db.QueryBatch(qs[:1], opt); err != nil {
		t.Fatal(err)
	}
	perQuery := time.Since(start)
	if perQuery < 50*time.Millisecond {
		t.Skipf("member query took only %v; too fast to cancel mid-batch reliably", perQuery)
	}
	baseline := runtime.NumGoroutine()
	po := opt
	po.Concurrency = 2
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(perQuery / 4)
		cancel()
	}()
	rs, err := db.QueryBatchCtx(ctx, qs, po)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rs != nil {
		t.Fatal("cancelled batch returned partial results")
	}
	checkGoroutineBaseline(t, "QueryBatchCtx", baseline)
}

// TestQueryCtxDeadline: an expired deadline reports DeadlineExceeded, the
// same way a manual cancel reports Canceled.
func TestQueryCtxDeadline(t *testing.T) {
	db, q, opt := slowQueryEnv(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass
	if _, err := db.QueryCtx(ctx, q, opt); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestQueryCtxUncancelledIdentical: threading a live context changes
// nothing — QueryCtx(Background) is bitwise Query.
func TestQueryCtxUncancelledIdentical(t *testing.T) {
	db, _ := smallDatabase(t, 2003, 8, true)
	rng := rand.New(rand.NewSource(71))
	q := dataset.ExtractQuery(db.Certain()[1], 4, rng)
	opt := QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: 13, Concurrency: 4}
	want, err := db.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.QueryCtx(context.Background(), q, opt)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "ctx vs plain", want, got)
}
