package core

import (
	"fmt"
	"math/rand"
	"testing"

	"probgraph/internal/dataset"
	"probgraph/internal/graph"
	"probgraph/internal/verify"
)

// sameResults asserts two query results are bitwise-identical: same answer
// list, same SSP estimates (exact float equality — the determinism
// guarantee is bitwise, not approximate), same phase counters.
func sameResults(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Answers) != len(b.Answers) {
		t.Fatalf("%s: answers %v vs %v", label, a.Answers, b.Answers)
	}
	for i := range a.Answers {
		if a.Answers[i] != b.Answers[i] {
			t.Fatalf("%s: answers %v vs %v", label, a.Answers, b.Answers)
		}
	}
	if len(a.SSP) != len(b.SSP) {
		t.Fatalf("%s: SSP maps differ in size: %v vs %v", label, a.SSP, b.SSP)
	}
	for gi, p := range a.SSP {
		if q, ok := b.SSP[gi]; !ok || p != q {
			t.Fatalf("%s: SSP[%d] = %v vs %v", label, gi, p, b.SSP[gi])
		}
	}
	as, bs := a.Stats, b.Stats
	if as.StructConfirmed != bs.StructConfirmed ||
		as.PrunedByUpper != bs.PrunedByUpper ||
		as.AcceptedByLower != bs.AcceptedByLower ||
		as.VerifyCandidates != bs.VerifyCandidates ||
		as.Answers != bs.Answers {
		t.Fatalf("%s: stats diverge: %+v vs %+v", label, as, bs)
	}
}

// TestSerialParallelIdenticalResults is the engine's determinism contract:
// for a fixed QueryOptions.Seed, every Concurrency setting must produce
// the same answers, the same SSP estimates, and the same pruning counters,
// across both bound modes and both randomized verifier paths. Run under
// `go test -race` this also exercises the worker pool for data races.
func TestSerialParallelIdenticalResults(t *testing.T) {
	db, _ := smallDatabase(t, 1001, 10, true)
	rng := rand.New(rand.NewSource(41))
	var qs []*graph.Graph
	for i := 0; i < 3; i++ {
		qs = append(qs, dataset.ExtractQuery(db.Certain()[i*3%len(db.Certain())], 4, rng))
	}
	for _, optBounds := range []bool{false, true} {
		for _, vk := range []VerifierKind{VerifierSMP, VerifierExact, VerifierNone} {
			for qi, q := range qs {
				opt := QueryOptions{
					Epsilon: 0.4, Delta: 1, OptBounds: optBounds,
					Verifier: vk, Verify: verify.Options{N: 2000, MaxClauses: 22},
					Seed: int64(100 + qi), Concurrency: 1,
				}
				serial, err := db.Query(q, opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{0, 2, 4, 8, -1} {
					po := opt
					po.Concurrency = workers
					par, err := db.Query(q, po)
					if err != nil {
						t.Fatal(err)
					}
					label := fmt.Sprintf("optBounds=%v/verifier=%d/q=%d/workers=%d",
						optBounds, vk, qi, workers)
					sameResults(t, label, serial, par)
				}
			}
		}
	}
}

// TestQueryTopKParallelMatchesSerial: the ranked answers and their SSP
// estimates must not depend on the worker count. (The set of candidates
// verified before the early-termination cutoff may differ; the surviving
// top-k cannot.)
func TestQueryTopKParallelMatchesSerial(t *testing.T) {
	db, _ := smallDatabase(t, 1002, 10, true)
	rng := rand.New(rand.NewSource(43))
	q := dataset.ExtractQuery(db.Certain()[2], 4, rng)
	opt := QueryOptions{
		Delta: 1, OptBounds: true,
		Verifier: VerifierSMP, Verify: verify.Options{N: 1500},
		Seed: 9, Concurrency: 1,
	}
	const k = 3
	serial, err := db.QueryTopK(q, k, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		po := opt
		po.Concurrency = workers
		par, err := db.QueryTopK(q, k, po)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d items vs serial %d", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d rank %d: %+v vs serial %+v", workers, i, par[i], serial[i])
			}
		}
	}
}

// TestQueryBatchInnerConcurrency: a batch smaller than the pool spreads
// leftover workers inside each query; results must still match the
// serial per-query runs exactly.
func TestQueryBatchInnerConcurrency(t *testing.T) {
	db, _ := smallDatabase(t, 1003, 8, true)
	rng := rand.New(rand.NewSource(47))
	qs := []*graph.Graph{
		dataset.ExtractQuery(db.Certain()[0], 4, rng),
		dataset.ExtractQuery(db.Certain()[1], 4, rng),
	}
	opt := QueryOptions{
		Epsilon: 0.4, Delta: 1, OptBounds: true,
		Verifier: VerifierSMP, Verify: verify.Options{N: 1500},
		Seed: 17, Concurrency: 8,
	}
	batch, err := db.QueryBatch(qs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		qo := opt
		qo.Seed = BatchSeed(opt.Seed, i)
		qo.Concurrency = 1
		seq, err := db.Query(q, qo)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "batch query", batch[i], seq)
	}
}

// TestQueryBatchRepeatedQueriesHitCache: duplicate queries in one batch
// must produce identical results per seed and exercise the shared
// feature-relation cache (same relaxed queries → cache hits).
func TestQueryBatchRepeatedQueriesHitCache(t *testing.T) {
	db, _ := smallDatabase(t, 1004, 8, true)
	rng := rand.New(rand.NewSource(53))
	q := dataset.ExtractQuery(db.Certain()[0], 4, rng)
	qs := []*graph.Graph{q, q, q, q}
	opt := QueryOptions{
		Epsilon: 0.4, Delta: 1, OptBounds: true,
		Verifier: VerifierExact, Verify: verify.Options{MaxClauses: 22},
		Seed: 23, Concurrency: 4,
	}
	batch, err := db.QueryBatch(qs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		qo := opt
		qo.Seed = BatchSeed(opt.Seed, i)
		qo.Concurrency = 1
		seq, err := db.Query(qs[i], qo)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "repeated batch query", batch[i], seq)
	}
}

func TestNormalizeWorkers(t *testing.T) {
	cases := []struct {
		concurrency, n, wantMin, wantMax int
	}{
		{0, 10, 1, 1},
		{1, 10, 1, 1},
		{4, 10, 4, 4},
		{4, 2, 2, 2},
		{8, 0, 1, 1},
		{-1, 100, 1, 1 << 20}, // GOMAXPROCS-dependent, just bounded
	}
	for _, c := range cases {
		got := normalizeWorkers(c.concurrency, c.n)
		if got < c.wantMin || got > c.wantMax {
			t.Fatalf("normalizeWorkers(%d, %d) = %d, want in [%d, %d]",
				c.concurrency, c.n, got, c.wantMin, c.wantMax)
		}
	}
}

func TestCandSeedSpreads(t *testing.T) {
	seen := make(map[int64]bool)
	for gi := 0; gi < 1000; gi++ {
		s := candSeed(7, gi)
		if seen[s] {
			t.Fatalf("candSeed collision at gi=%d", gi)
		}
		seen[s] = true
	}
	if candSeed(7, 0) == candSeed(8, 0) {
		t.Fatal("candSeed ignores the base seed")
	}
}
