package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"testing"

	"probgraph/internal/graph"
	"probgraph/internal/simsearch"
)

const fixtureDir = "../../testdata/snapshots"

// TestLoadV1FixtureSnapshot loads the checked-in snapshot written by the
// previous binary revision (whose simsearch section is the pre-postings v1
// format) and asserts it still answers — with the recorded answers, at
// every worker count, and re-savable in the current format.
func TestLoadV1FixtureSnapshot(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join(fixtureDir, "v1_tiny.pgsnap"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("simsearch v1 ")) {
		t.Fatal("fixture no longer carries a v1 simsearch section; regenerate it from the revision before the postings index")
	}
	db, err := LoadDatabase(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("loading v1 fixture: %v", err)
	}
	if db.Struct() == nil {
		t.Fatal("fixture loaded without a structural filter")
	}
	if got := db.Struct().ShardSize(); got != simsearch.DefaultShardSize {
		t.Fatalf("v1 section shard size = %d, want default %d", got, simsearch.DefaultShardSize)
	}
	if shards, entries := db.Struct().PostingsStats(); shards < 1 || entries < 1 {
		t.Fatalf("postings not rebuilt from v1 counts: %d shards, %d entries", shards, entries)
	}

	qf, err := os.Open(filepath.Join(fixtureDir, "v1_tiny_query.pgraph"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := graph.NewDecoder(qf).Decode()
	qf.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The recorded run: pgsearch -epsilon 0.3 -delta 2 -seed 5 on query 0
	// (per-query seed BatchSeed(5, 0) = 5).
	var want struct {
		Answers []int              `json:"answers"`
		SSP     map[string]float64 `json:"ssp"`
	}
	expRaw, err := os.ReadFile(filepath.Join(fixtureDir, "v1_tiny_expected.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(expRaw, &want); err != nil {
		t.Fatal(err)
	}
	opt := QueryOptions{Epsilon: 0.3, Delta: 2, OptBounds: true, Seed: BatchSeed(5, 0)}
	var base *Result
	for _, workers := range []int{1, 4} {
		o := opt
		o.Concurrency = workers
		res, err := db.Query(q, o)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(res.Answers, want.Answers) {
			t.Fatalf("workers=%d: answers %v, recorded %v", workers, res.Answers, want.Answers)
		}
		if base == nil {
			base = res
			if len(res.SSP) != len(want.SSP) {
				t.Fatalf("SSP map has %d entries, recorded %d", len(res.SSP), len(want.SSP))
			}
			for gi, ssp := range res.SSP {
				if w := want.SSP[strconv.Itoa(gi)]; w != ssp {
					t.Fatalf("graph %d: SSP %v, recorded %v", gi, ssp, w)
				}
			}
		} else if len(res.SSP) != len(base.SSP) {
			t.Fatalf("workers=%d: SSP map size diverged", workers)
		}
		for gi, ssp := range res.SSP {
			if ssp != base.SSP[gi] {
				t.Fatalf("workers=%d graph %d: SSP %v != serial %v", workers, gi, ssp, base.SSP[gi])
			}
		}
	}

	// Re-saving writes the current format, which must round-trip bitwise.
	var first bytes.Buffer
	if err := db.Save(&first); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(first.Bytes(), []byte("simsearch v2 ")) {
		t.Fatal("re-save did not upgrade the simsearch section to v2")
	}
	db2, err := LoadDatabase(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := db2.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("current-format snapshot not byte-stable across a round trip")
	}
}

// TestLoadV2FixtureSnapshot loads the checked-in snapshot written by the
// revision before generations existed (header "pgsnap v1", simsearch
// section already v2) and asserts it still answers with the recorded
// answers at every worker count, restores at generation 1 with no
// tombstones, and re-saves in the current byte-stable v3 format.
func TestLoadV2FixtureSnapshot(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join(fixtureDir, "v2_tiny.pgsnap"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("pgsnap v1\n")) || !bytes.Contains(raw, []byte("simsearch v2 ")) {
		t.Fatal("fixture is not a v2-era snapshot; regenerate it from the revision before generations")
	}
	db, err := LoadDatabase(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("loading v2 fixture: %v", err)
	}
	if db.Generation() != 1 || db.Tombstones() != 0 {
		t.Fatalf("v2 fixture restored at generation %d with %d tombstones, want 1 and 0",
			db.Generation(), db.Tombstones())
	}

	q := fixtureQuery(t, "v2_tiny_query.pgraph")
	want := fixtureExpected(t, "v2_tiny_expected.json")
	opt := QueryOptions{Epsilon: 0.3, Delta: 2, OptBounds: true, Seed: BatchSeed(5, 0)}
	for _, workers := range []int{1, 4} {
		o := opt
		o.Concurrency = workers
		res, err := db.Query(q, o)
		if err != nil {
			t.Fatal(err)
		}
		assertRecorded(t, res, want, workers)
	}

	var first bytes.Buffer
	if err := db.Save(&first); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(first.Bytes(), []byte(SnapshotVersion+"\n")) {
		t.Fatalf("re-save did not upgrade the snapshot header to %q", SnapshotVersion)
	}
	db2, err := LoadDatabase(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := db2.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("v3 snapshot not byte-stable across a round trip")
	}
}

// TestMutateFixtureSaveV3Replay is the back-compat acceptance check in
// full: load the old-format fixtures, mutate (add + remove), save — the
// result must be a v3 snapshot carrying generation and tombstones that
// round-trips byte-stably — reload, and replay the recorded query: the
// surviving graphs must answer exactly as recorded (slots are stable
// under tombstoning), with the removed slot filtered out.
func TestMutateFixtureSaveV3Replay(t *testing.T) {
	for _, fixture := range []string{"v1_tiny", "v2_tiny"} {
		raw, err := os.ReadFile(filepath.Join(fixtureDir, fixture+".pgsnap"))
		if err != nil {
			t.Fatal(err)
		}
		db, err := LoadDatabase(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", fixture, err)
		}
		q := fixtureQuery(t, fixture+"_query.pgraph")
		want := fixtureExpected(t, fixture+"_expected.json")
		if len(want.Answers) == 0 {
			t.Fatalf("%s: recorded run has no answers; fixture unusable for removal replay", fixture)
		}
		victim := want.Answers[0]

		// Mutate: insert a copy of slot 0's graph, tombstone a recorded
		// answer.
		if _, _, err := db.AddGraph(db.Graphs()[0]); err != nil {
			t.Fatalf("%s: add: %v", fixture, err)
		}
		if _, err := db.RemoveGraph(victim); err != nil {
			t.Fatalf("%s: remove: %v", fixture, err)
		}

		var v3 bytes.Buffer
		if err := db.Save(&v3); err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(v3.Bytes(), []byte(SnapshotVersion+"\n")) {
			t.Fatalf("%s: mutated save is not a v3 snapshot", fixture)
		}
		if !bytes.Contains(v3.Bytes(), []byte(fmt.Sprintf("generation 3 1\ntombs %d\n", victim))) {
			t.Fatalf("%s: v3 snapshot lacks the generation/tombstone section", fixture)
		}

		reloaded, err := LoadDatabase(bytes.NewReader(v3.Bytes()))
		if err != nil {
			t.Fatalf("%s: reloading v3: %v", fixture, err)
		}
		if reloaded.Generation() != 3 || reloaded.Tombstones() != 1 {
			t.Fatalf("%s: reloaded gen=%d tombs=%d, want 3 and 1",
				fixture, reloaded.Generation(), reloaded.Tombstones())
		}
		var again bytes.Buffer
		if err := reloaded.Save(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v3.Bytes(), again.Bytes()) {
			t.Fatalf("%s: v3 snapshot with tombstones not byte-stable", fixture)
		}

		// Replay on the original slots: recorded answers minus the
		// tombstoned one, SSP bitwise for every surviving recorded
		// candidate. The inserted graph occupies a fresh slot (>= the
		// original length) with no recorded estimate — it is ignored.
		res, err := reloaded.Query(q, QueryOptions{Epsilon: 0.3, Delta: 2, OptBounds: true, Seed: BatchSeed(5, 0)})
		if err != nil {
			t.Fatal(err)
		}
		originalLen := reloaded.Len() - 1
		var gotOriginal []int
		for _, gi := range res.Answers {
			if gi < originalLen {
				gotOriginal = append(gotOriginal, gi)
			}
		}
		wantAnswers := make([]int, 0, len(want.Answers)-1)
		for _, gi := range want.Answers {
			if gi != victim {
				wantAnswers = append(wantAnswers, gi)
			}
		}
		if !slices.Equal(gotOriginal, wantAnswers) {
			t.Fatalf("%s: replay answers %v, want recorded-minus-victim %v", fixture, gotOriginal, wantAnswers)
		}
		for gi, ssp := range res.SSP {
			if gi >= originalLen {
				continue // the inserted copy has no recorded estimate
			}
			if w, ok := want.SSP[strconv.Itoa(gi)]; ok && w != ssp {
				t.Fatalf("%s: replay SSP[%d] = %v, recorded %v", fixture, gi, ssp, w)
			}
		}
	}
}

// fixtureQuery loads a recorded query graph.
func fixtureQuery(t *testing.T, name string) *graph.Graph {
	t.Helper()
	qf, err := os.Open(filepath.Join(fixtureDir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer qf.Close()
	q, err := graph.NewDecoder(qf).Decode()
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// recordedRun is the shape of the *_expected.json fixtures.
type recordedRun struct {
	Answers []int              `json:"answers"`
	SSP     map[string]float64 `json:"ssp"`
}

// fixtureExpected loads a recorded answer set.
func fixtureExpected(t *testing.T, name string) recordedRun {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(fixtureDir, name))
	if err != nil {
		t.Fatal(err)
	}
	var want recordedRun
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// assertRecorded compares one run against a recorded one, bitwise.
func assertRecorded(t *testing.T, res *Result, want recordedRun, workers int) {
	t.Helper()
	if !slices.Equal(res.Answers, want.Answers) {
		t.Fatalf("workers=%d: answers %v, recorded %v", workers, res.Answers, want.Answers)
	}
	if len(res.SSP) != len(want.SSP) {
		t.Fatalf("workers=%d: SSP map has %d entries, recorded %d", workers, len(res.SSP), len(want.SSP))
	}
	for gi, ssp := range res.SSP {
		if w := want.SSP[strconv.Itoa(gi)]; w != ssp {
			t.Fatalf("workers=%d graph %d: SSP %v, recorded %v", workers, gi, ssp, w)
		}
	}
}
