package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"testing"

	"probgraph/internal/graph"
	"probgraph/internal/simsearch"
)

const fixtureDir = "../../testdata/snapshots"

// TestLoadV1FixtureSnapshot loads the checked-in snapshot written by the
// previous binary revision (whose simsearch section is the pre-postings v1
// format) and asserts it still answers — with the recorded answers, at
// every worker count, and re-savable in the current format.
func TestLoadV1FixtureSnapshot(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join(fixtureDir, "v1_tiny.pgsnap"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte("simsearch v1 ")) {
		t.Fatal("fixture no longer carries a v1 simsearch section; regenerate it from the revision before the postings index")
	}
	db, err := LoadDatabase(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("loading v1 fixture: %v", err)
	}
	if db.Struct == nil {
		t.Fatal("fixture loaded without a structural filter")
	}
	if got := db.Struct.ShardSize(); got != simsearch.DefaultShardSize {
		t.Fatalf("v1 section shard size = %d, want default %d", got, simsearch.DefaultShardSize)
	}
	if shards, entries := db.Struct.PostingsStats(); shards < 1 || entries < 1 {
		t.Fatalf("postings not rebuilt from v1 counts: %d shards, %d entries", shards, entries)
	}

	qf, err := os.Open(filepath.Join(fixtureDir, "v1_tiny_query.pgraph"))
	if err != nil {
		t.Fatal(err)
	}
	q, err := graph.NewDecoder(qf).Decode()
	qf.Close()
	if err != nil {
		t.Fatal(err)
	}

	// The recorded run: pgsearch -epsilon 0.3 -delta 2 -seed 5 on query 0
	// (per-query seed BatchSeed(5, 0) = 5).
	var want struct {
		Answers []int              `json:"answers"`
		SSP     map[string]float64 `json:"ssp"`
	}
	expRaw, err := os.ReadFile(filepath.Join(fixtureDir, "v1_tiny_expected.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(expRaw, &want); err != nil {
		t.Fatal(err)
	}
	opt := QueryOptions{Epsilon: 0.3, Delta: 2, OptBounds: true, Seed: BatchSeed(5, 0)}
	var base *Result
	for _, workers := range []int{1, 4} {
		o := opt
		o.Concurrency = workers
		res, err := db.Query(q, o)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(res.Answers, want.Answers) {
			t.Fatalf("workers=%d: answers %v, recorded %v", workers, res.Answers, want.Answers)
		}
		if base == nil {
			base = res
			if len(res.SSP) != len(want.SSP) {
				t.Fatalf("SSP map has %d entries, recorded %d", len(res.SSP), len(want.SSP))
			}
			for gi, ssp := range res.SSP {
				if w := want.SSP[strconv.Itoa(gi)]; w != ssp {
					t.Fatalf("graph %d: SSP %v, recorded %v", gi, ssp, w)
				}
			}
		} else if len(res.SSP) != len(base.SSP) {
			t.Fatalf("workers=%d: SSP map size diverged", workers)
		}
		for gi, ssp := range res.SSP {
			if ssp != base.SSP[gi] {
				t.Fatalf("workers=%d graph %d: SSP %v != serial %v", workers, gi, ssp, base.SSP[gi])
			}
		}
	}

	// Re-saving writes the current format, which must round-trip bitwise.
	var first bytes.Buffer
	if err := db.Save(&first); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(first.Bytes(), []byte("simsearch v2 ")) {
		t.Fatal("re-save did not upgrade the simsearch section to v2")
	}
	db2, err := LoadDatabase(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := db2.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("current-format snapshot not byte-stable across a round trip")
	}
}
