package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"probgraph/internal/dataset"
	"probgraph/internal/verify"
)

// streamSSP is the SSP Query's Result implies for answer gi: the recorded
// estimate when one exists, -1 otherwise (VerifierNone answers have no
// Result.SSP entry but stream as "not re-estimated").
func streamSSP(res *Result, gi int) float64 {
	if ssp, ok := res.SSP[gi]; ok {
		return ssp
	}
	return -1
}

// TestQueryStreamCollectEqualsQuery is the stream/collect identity
// contract: across seeds, worker counts, bound modes, and verifiers, the
// collected stream — re-sorted by graph index — must be bitwise-identical
// to Query's answer set and SSP estimates. Arrival order may differ run to
// run; the set may not.
func TestQueryStreamCollectEqualsQuery(t *testing.T) {
	db, _ := smallDatabase(t, 3001, 10, true)
	rng := rand.New(rand.NewSource(83))
	qs := []int{0, 3, 6}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, optBounds := range []bool{false, true} {
		for _, vk := range []VerifierKind{VerifierSMP, VerifierNone} {
			for _, qi := range qs {
				q := dataset.ExtractQuery(db.Certain()[qi], 4, rng)
				for seed := int64(1); seed <= 3; seed++ {
					opt := QueryOptions{
						Epsilon: 0.4, Delta: 1, OptBounds: optBounds, Verifier: vk,
						Verify: verify.Options{N: 1200}, Seed: seed,
					}
					want, err := db.Query(q, opt)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range workerCounts {
						po := opt
						po.Concurrency = workers
						label := fmt.Sprintf("optBounds=%v/verifier=%d/q=%d/seed=%d/workers=%d",
							optBounds, vk, qi, seed, workers)
						var got []Match
						for m, err := range db.QueryStream(context.Background(), q, po) {
							if err != nil {
								t.Fatalf("%s: stream error: %v", label, err)
							}
							got = append(got, m)
						}
						sort.Slice(got, func(i, j int) bool { return got[i].Graph < got[j].Graph })
						if len(got) != len(want.Answers) {
							t.Fatalf("%s: stream yielded %d matches, Query found %d (%v vs %v)",
								label, len(got), len(want.Answers), got, want.Answers)
						}
						for i, m := range got {
							if m.Graph != want.Answers[i] {
								t.Fatalf("%s: sorted stream graph[%d] = %d, Query %d",
									label, i, m.Graph, want.Answers[i])
							}
							if wssp := streamSSP(want, m.Graph); m.SSP != wssp {
								t.Fatalf("%s: SSP[%d] = %v, Query %v (not bitwise)",
									label, m.Graph, m.SSP, wssp)
							}
						}
					}
				}
			}
		}
	}
}

// TestQueryStreamEarlyBreak: a consumer that stops after the first match
// must leave no goroutines behind, and every match it did see must be a
// true Query answer with the identical SSP — early abandonment never
// corrupts what was already delivered.
func TestQueryStreamEarlyBreak(t *testing.T) {
	db, _ := smallDatabase(t, 3002, 10, true)
	rng := rand.New(rand.NewSource(91))
	q := dataset.ExtractQuery(db.Certain()[0], 4, rng)
	opt := QueryOptions{Epsilon: 0.3, Delta: 2, OptBounds: true, Seed: 7}
	want, err := db.Query(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Answers) < 3 {
		t.Fatalf("workload has %d answers, want >= 3 for a meaningful early break (pick new seeds)",
			len(want.Answers))
	}
	wantSSP := make(map[int]float64)
	for _, gi := range want.Answers {
		wantSSP[gi] = streamSSP(want, gi)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for cut := 1; cut <= len(want.Answers); cut++ {
			baseline := runtime.NumGoroutine()
			po := opt
			po.Concurrency = workers
			var got []Match
			for m, err := range db.QueryStream(context.Background(), q, po) {
				if err != nil {
					t.Fatalf("workers=%d cut=%d: stream error: %v", workers, cut, err)
				}
				got = append(got, m)
				if len(got) == cut {
					break
				}
			}
			if len(got) != cut {
				t.Fatalf("workers=%d: got %d matches before break, want %d", workers, len(got), cut)
			}
			seen := make(map[int]bool)
			for _, m := range got {
				if seen[m.Graph] {
					t.Fatalf("workers=%d cut=%d: graph %d yielded twice", workers, cut, m.Graph)
				}
				seen[m.Graph] = true
				wssp, ok := wantSSP[m.Graph]
				if !ok {
					t.Fatalf("workers=%d cut=%d: stream yielded non-answer %d", workers, cut, m.Graph)
				}
				if m.SSP != wssp {
					t.Fatalf("workers=%d cut=%d: SSP[%d] = %v, Query %v", workers, cut, m.Graph, m.SSP, wssp)
				}
			}
			checkGoroutineBaseline(t, "QueryStream early break", baseline)
		}
	}
}

// TestQueryStreamCancelMidStream: cancelling the caller's context ends the
// stream with ctx.Err() as its final element and reclaims the workers.
func TestQueryStreamCancelMidStream(t *testing.T) {
	db, q, opt := slowQueryEnv(t)
	for _, workers := range []int{1, 4} {
		baseline := runtime.NumGoroutine()
		po := opt
		po.Concurrency = workers
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		var finalErr error
		for _, err := range db.QueryStream(ctx, q, po) {
			if err != nil {
				finalErr = err
			}
		}
		cancel()
		if !errors.Is(finalErr, context.Canceled) {
			t.Fatalf("workers=%d: final stream error = %v, want context.Canceled", workers, finalErr)
		}
		checkGoroutineBaseline(t, "QueryStream cancel", baseline)
	}
}

// TestQueryStreamPreCancelled: a dead context yields exactly one error
// element and nothing else.
func TestQueryStreamPreCancelled(t *testing.T) {
	db, _ := smallDatabase(t, 3003, 6, true)
	rng := rand.New(rand.NewSource(97))
	q := dataset.ExtractQuery(db.Certain()[0], 4, rng)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, errs := 0, 0
	for m, err := range db.QueryStream(ctx, q, QueryOptions{Epsilon: 0.4, Delta: 1}) {
		n++
		if err != nil {
			errs++
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("stream error = %v, want Canceled", err)
			}
		} else {
			t.Fatalf("dead context yielded match %+v", m)
		}
	}
	if n != 1 || errs != 1 {
		t.Fatalf("dead context yielded %d elements (%d errors), want exactly 1 error", n, errs)
	}
}

// TestQueryStreamDegenerateDelta: δ ≥ |q| streams every graph with SSP 1,
// matching Query's degenerate fast path.
func TestQueryStreamDegenerateDelta(t *testing.T) {
	db, _ := smallDatabase(t, 3004, 6, true)
	rng := rand.New(rand.NewSource(101))
	q := dataset.ExtractQuery(db.Certain()[0], 3, rng)
	opt := QueryOptions{Epsilon: 0.4, Delta: q.NumEdges()}
	var got []Match
	for m, err := range db.QueryStream(context.Background(), q, opt) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m)
	}
	if len(got) != db.Len() {
		t.Fatalf("degenerate stream yielded %d, want %d", len(got), db.Len())
	}
	for i, m := range got {
		if m.Graph != i || m.SSP != 1 {
			t.Fatalf("degenerate match[%d] = %+v, want {%d 1}", i, m, i)
		}
	}
}

// TestQueryStreamBadOptions: invalid thresholds surface as a single error
// element, mirroring Query's validation.
func TestQueryStreamBadOptions(t *testing.T) {
	db, _ := smallDatabase(t, 3005, 6, true)
	rng := rand.New(rand.NewSource(103))
	q := dataset.ExtractQuery(db.Certain()[0], 3, rng)
	for _, opt := range []QueryOptions{
		{Epsilon: 1.5, Delta: 1},
		{Epsilon: 0.4, Delta: -1},
	} {
		n := 0
		var got error
		for _, err := range db.QueryStream(context.Background(), q, opt) {
			n++
			got = err
		}
		if n != 1 || got == nil {
			t.Fatalf("opt %+v: %d elements, err %v — want exactly one error", opt, n, got)
		}
	}
}
