package core

import (
	"math/rand"
	"testing"

	"probgraph/internal/dataset"
	"probgraph/internal/verify"
)

// TestAddGraphMatchesNaive: after incremental insertion, pipeline answers
// (Exact verifier) over the extended database must equal naive enumeration
// over the extended database.
func TestAddGraphMatchesNaive(t *testing.T) {
	db, raw := smallDatabase(t, 1001, 6, true)
	// Generate two extra graphs from the same distribution.
	extra, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 2, MinVertices: 5, MaxVertices: 7, EdgeFactor: 1.3,
		Labels: 3, Organisms: 2, Correlated: true, Seed: 2002,
	})
	if err != nil {
		t.Fatal(err)
	}
	genBefore := db.Generation()
	for i, pg := range extra.Graphs {
		gi, gen, err := db.AddGraph(pg)
		if err != nil {
			t.Fatal(err)
		}
		if gi >= db.Len() {
			t.Fatalf("returned index %d out of range", gi)
		}
		if want := genBefore + uint64(i) + 1; gen != want {
			t.Fatalf("AddGraph returned generation %d, want %d", gen, want)
		}
	}
	if db.Len() != len(raw.Graphs)+2 {
		t.Fatalf("database has %d graphs, want %d", db.Len(), len(raw.Graphs)+2)
	}
	// PMI columns must cover the new graphs.
	for fi := range db.PMI().Entries {
		if len(db.PMI().Entries[fi]) != db.Len() {
			t.Fatalf("PMI row %d has %d columns, want %d", fi, len(db.PMI().Entries[fi]), db.Len())
		}
	}

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		// Mix queries from the original and the inserted graphs.
		src := db.Certain()[(trial*3+db.Len()-1)%db.Len()]
		q := dataset.ExtractQuery(src, 4, rng)
		eps := 0.35
		res, err := db.Query(q, QueryOptions{
			Epsilon: eps, Delta: 1, OptBounds: true,
			Verifier: VerifierExact, Verify: verify.Options{MaxClauses: 22},
			Seed: int64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		want, ssp := naiveAnswers(t, db, q, eps, 1)
		if !sameIntSet(res.Answers, want) {
			t.Fatalf("trial %d: incremental db pipeline %v vs naive %v (ssp %v)",
				trial, res.Answers, want, ssp)
		}
	}
}

// TestAddGraphBookkeepingAfterCommit: every Build stat and index structure
// reflects the post-insertion database once AddGraph returns — the
// IndexSizeBytes write happens after the commit point, never between the
// PMI extension and the graph append.
func TestAddGraphBookkeepingAfterCommit(t *testing.T) {
	db, _ := smallDatabase(t, 1007, 5, true)
	extra, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 1, MinVertices: 5, MaxVertices: 6, EdgeFactor: 1.3,
		Labels: 3, Organisms: 1, Correlated: true, Seed: 4004,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, postingsBefore := db.Struct().PostingsStats()
	if _, _, err := db.AddGraph(extra.Graphs[0]); err != nil {
		t.Fatal(err)
	}
	if want := db.PMI().SizeBytes(); db.Build().IndexSizeBytes != want {
		t.Fatalf("IndexSizeBytes = %d, want PMI.SizeBytes() = %d", db.Build().IndexSizeBytes, want)
	}
	if _, after := db.Struct().PostingsStats(); after <= postingsBefore {
		t.Fatalf("structural postings did not grow: %d -> %d", postingsBefore, after)
	}
	if v := db.View(); len(v.Graphs) != len(v.Engines) || len(v.Graphs) != len(v.Certain) {
		t.Fatalf("parallel slices diverged: %d graphs, %d engines, %d certain",
			len(v.Graphs), len(v.Engines), len(v.Certain))
	}

	// Without a PMI the stat must stay untouched (no stale PMI size).
	raw2, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 4, MinVertices: 5, MaxVertices: 7, EdgeFactor: 1.3,
		Labels: 3, Organisms: 2, Correlated: true, Seed: 1009,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultBuildOptions()
	opt.SkipPMI = true
	noPMI, err := NewDatabase(raw2.Graphs, opt)
	if err != nil {
		t.Fatal(err)
	}
	before := noPMI.Build().IndexSizeBytes
	if _, _, err := noPMI.AddGraph(extra.Graphs[0]); err != nil {
		t.Fatal(err)
	}
	if noPMI.Build().IndexSizeBytes != before {
		t.Fatalf("IndexSizeBytes changed on a PMI-less database: %d -> %d", before, noPMI.Build().IndexSizeBytes)
	}
}

// TestAddGraphBoundsStaySound: PMI entries added incrementally must still
// sandwich the exact SIP.
func TestAddGraphBoundsStaySound(t *testing.T) {
	db, _ := smallDatabase(t, 1003, 5, true)
	extra, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 1, MinVertices: 5, MaxVertices: 6, EdgeFactor: 1.3,
		Labels: 3, Organisms: 1, Correlated: true, Seed: 3003,
	})
	if err != nil {
		t.Fatal(err)
	}
	gi, _, err := db.AddGraph(extra.Graphs[0])
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for fi, fg := range db.PMI().Features {
		e := db.PMI().Entries[fi][gi]
		if !e.Contained {
			continue
		}
		// Exact SIP by world enumeration.
		q := fg
		sip, err := db.ExactSSPByEnumeration(q, gi, 0)
		if err != nil {
			t.Fatal(err)
		}
		if e.Lower > sip+1e-9 || e.Upper < sip-1e-9 {
			t.Fatalf("feature %d: incremental bounds [%v,%v] miss exact SIP %v", fi, e.Lower, e.Upper, sip)
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no contained features on the inserted graph (acceptable)")
	}
}
