//go:build !unix

package core

import (
	"io"
	"os"
)

// mapFile reads f fully into memory — the portable fallback where mmap is
// unavailable. Same contract as the unix version minus the page sharing.
func mapFile(f *os.File) ([]byte, error) {
	return io.ReadAll(f)
}
