package core

import (
	"fmt"
	"sort"
	"sync"

	"probgraph/internal/graph"
	"probgraph/internal/relax"
)

// TopKItem is one ranked answer.
type TopKItem struct {
	Graph int     // database index
	SSP   float64 // estimated subgraph similarity probability
}

// QueryTopK returns the k database graphs with the highest SSP for q at
// distance δ, ranked descending. It extends the paper's threshold queries
// the way its bounds machinery invites: candidates are verified in
// decreasing Usim order, and verification stops as soon as the next
// candidate's upper bound cannot beat the current k-th best SSP.
// QueryOptions.Epsilon is ignored.
func (db *Database) QueryTopK(q *graph.Graph, k int, opt QueryOptions) ([]TopKItem, error) {
	opt = opt.withDefaults()
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive")
	}
	if opt.Delta < 0 {
		return nil, fmt.Errorf("core: negative delta")
	}
	if opt.Delta >= q.NumEdges() {
		out := make([]TopKItem, 0, k)
		for gi := 0; gi < db.Len() && len(out) < k; gi++ {
			out = append(out, TopKItem{Graph: gi, SSP: 1})
		}
		return out, nil
	}
	scq, _ := db.Struct.SCq(q, opt.Delta)
	if len(scq) == 0 {
		return nil, nil
	}
	u := relax.Relaxed(q, opt.Delta, opt.MaxRelaxed)

	// Upper bounds order the verification schedule.
	type cand struct {
		gi    int
		upper float64
	}
	cands := make([]cand, 0, len(scq))
	if db.PMI != nil {
		pr := db.newPruner(q, u, opt)
		for _, gi := range scq {
			ub := pr.upperBound(db.PMI.Lookup(gi))
			if ub > 1 {
				ub = 1
			}
			cands = append(cands, cand{gi, ub})
		}
	} else {
		for _, gi := range scq {
			cands = append(cands, cand{gi, 1})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].upper > cands[j].upper })

	var top []TopKItem
	kthBest := func() float64 {
		if len(top) < k {
			return 0
		}
		return top[len(top)-1].SSP
	}
	for _, c := range cands {
		if len(top) >= k && c.upper <= kthBest() {
			break // no remaining candidate can enter the top k
		}
		ssp, err := db.VerifySSP(q, u, c.gi, opt)
		if err != nil {
			return nil, fmt.Errorf("core: verifying graph %d: %w", c.gi, err)
		}
		if ssp <= 0 {
			continue
		}
		top = append(top, TopKItem{Graph: c.gi, SSP: ssp})
		sort.Slice(top, func(i, j int) bool { return top[i].SSP > top[j].SSP })
		if len(top) > k {
			top = top[:k]
		}
	}
	return top, nil
}

// QueryBatch answers many queries concurrently over a bounded worker pool
// (workers ≤ 0 selects one per query, capped at 8). The database is
// read-only during queries, so batch execution is safe; each query gets a
// distinct derived seed for reproducibility.
func (db *Database) QueryBatch(qs []*graph.Graph, opt QueryOptions, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = len(qs)
		if workers > 8 {
			workers = 8
		}
	}
	results := make([]*Result, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				qo := opt
				qo.Seed = opt.Seed + int64(i)*1000003
				results[i], errs[i] = db.Query(qs[i], qo)
			}
		}()
	}
	for i := range qs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: query %d: %w", i, err)
		}
	}
	return results, nil
}
