package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"probgraph/internal/graph"
	"probgraph/internal/obs"
	"probgraph/internal/relax"
)

// TopKItem is one ranked answer.
type TopKItem struct {
	Graph int     // database index
	SSP   float64 // estimated subgraph similarity probability
}

// QueryTopK returns the k database graphs with the highest SSP for q at
// distance δ, ranked descending. It extends the paper's threshold queries
// the way its bounds machinery invites: candidates are verified in
// decreasing Usim order, and verification stops as soon as the next
// candidate's upper bound cannot beat the current k-th best SSP.
// QueryOptions.Epsilon is ignored.
//
// With opt.Concurrency > 1 both the bound computation and the verification
// schedule fan out over the worker pool. Workers verify candidates
// speculatively in schedule order while a commit loop folds finished
// results into the top-k sequentially, applying the exact serial
// termination rule — so the returned ranking is bitwise-identical to a
// serial run at any worker count. Speculation past the serial cutoff is
// bounded and its results are discarded, costing only wasted work, never
// a changed answer.
func (db *Database) QueryTopK(q *graph.Graph, k int, opt QueryOptions) ([]TopKItem, error) {
	return db.View().QueryTopKCtx(context.Background(), q, k, opt)
}

// QueryTopK on a pinned View is QueryTopK against exactly that
// generation.
func (v *View) QueryTopK(q *graph.Graph, k int, opt QueryOptions) ([]TopKItem, error) {
	return v.QueryTopKCtx(context.Background(), q, k, opt)
}

// QueryTopKCtx is QueryTopK under a context. Cancellation is checked at
// every stage — structural scan (shard granularity), bound computation and
// verification (candidate granularity) — and wakes workers blocked on the
// speculation window, so a cancelled call returns (nil, ctx.Err())
// promptly without leaking goroutines. An uncancelled call returns exactly
// QueryTopK's ranking.
func (db *Database) QueryTopKCtx(ctx context.Context, q *graph.Graph, k int, opt QueryOptions) ([]TopKItem, error) {
	return db.View().QueryTopKCtx(ctx, q, k, opt)
}

// QueryTopKCtx on a pinned View; see the Database method.
func (v *View) QueryTopKCtx(ctx context.Context, q *graph.Graph, k int, opt QueryOptions) ([]TopKItem, error) {
	opt = opt.withDefaults()
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive")
	}
	if opt.Delta < 0 {
		return nil, fmt.Errorf("core: negative delta")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.Delta >= q.NumEdges() {
		out := make([]TopKItem, 0, k)
		for gi := 0; gi < v.Len() && len(out) < k; gi++ {
			if !v.Live(gi) {
				continue
			}
			out = append(out, TopKItem{Graph: gi, SSP: 1})
		}
		return out, nil
	}
	cands, u, err := v.topkSchedule(ctx, q, opt)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, nil
	}
	workers := normalizeWorkers(opt.Concurrency, len(cands))

	// Verification with bound-based early termination. Workers verify
	// candidates speculatively in schedule order; a sequential commit
	// loop replays the serial algorithm over finished results — stop the
	// moment the next candidate's upper bound cannot beat the k-th best
	// SSP, otherwise fold its SSP in. Per-graph SSPs are deterministic
	// (candSeed), so the committed prefix — and hence the result — is
	// exactly the serial run's. A lookahead window bounds how far workers
	// may speculate past the last committed result; results beyond the
	// serial cutoff are discarded.
	n := len(cands)
	window := 2 * workers
	if window < k {
		window = k
	}
	var (
		mu        sync.Mutex
		next      int  // next speculative index to hand out
		committed int  // results folded into top, in schedule order
		stopped   bool // serial termination rule fired
		firstErr  error
		ctxErr    error // set by the cancellation watcher, ends the run
		done      = make([]bool, n)
		ssps      = make([]float64, n)
		errs      = make([]error, n)
	)
	// top is pre-sized to its maximum (k kept + 1 overflow slot before
	// truncation), so the commit loop never reallocates it.
	capTop := k
	if capTop > n {
		capTop = n
	}
	top := make([]TopKItem, 0, capTop+1)
	cond := sync.NewCond(&mu)
	// The workers block on cond (speculation window), not on a channel, so
	// ctx cancellation must be translated into a broadcast: a watcher
	// goroutine marks ctxErr and wakes everyone. stopWatch reclaims the
	// watcher on normal completion.
	if cdone := ctx.Done(); cdone != nil {
		stopWatch := make(chan struct{})
		defer close(stopWatch)
		go func() {
			select {
			case <-cdone:
				mu.Lock()
				ctxErr = ctx.Err()
				cond.Broadcast()
				mu.Unlock()
			case <-stopWatch:
			}
		}()
	}
	kthBest := func() float64 {
		if len(top) < k {
			return 0
		}
		return top[len(top)-1].SSP
	}
	// commit advances over finished results exactly as the serial loop
	// would. The termination rule needs only the committed prefix — not
	// candidate `committed`'s own verification — so it is checked before
	// waiting on done[committed]; the cutoff then fires without paying
	// for the first hopeless candidate. Caller holds mu.
	commit := func() {
		for !stopped && firstErr == nil && ctxErr == nil && committed < n {
			c := cands[committed]
			if len(top) >= k && c.Upper <= kthBest() {
				stopped = true
				break
			}
			if !done[committed] {
				break
			}
			if errs[committed] != nil {
				firstErr = fmt.Errorf("core: verifying graph %d: %w", c.Graph, errs[committed])
				break
			}
			if ssp := ssps[committed]; ssp > 0 {
				top = insertTopK(top, TopKItem{Graph: c.Graph, SSP: ssp}, k)
			}
			committed++
		}
	}
	verifyWorker := func() {
		for {
			mu.Lock()
			for !stopped && firstErr == nil && ctxErr == nil && next < n && next >= committed+window {
				cond.Wait()
			}
			if stopped || firstErr != nil || ctxErr != nil || next >= n {
				mu.Unlock()
				return
			}
			i := next
			next++
			mu.Unlock()

			ssp, err := v.VerifySSP(q, u, cands[i].Graph, opt)

			mu.Lock()
			ssps[i], errs[i], done[i] = ssp, err, true
			commit()
			cond.Broadcast()
			mu.Unlock()
		}
	}
	sp := obs.SpanFrom(ctx).Child("topk_commit")
	if workers <= 1 {
		verifyWorker()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				verifyWorker()
			}()
		}
		wg.Wait()
	}
	// The watcher may still be writing ctxErr; read the terminal state
	// under the lock. A cancelled run reports ctx.Err() even when the
	// serial cutoff raced it to completion — "cancelled means cancelled"
	// keeps the caller-facing contract one-dimensional.
	mu.Lock()
	cerr, ferr, ranking := ctxErr, firstErr, top
	nCommitted := committed
	mu.Unlock()
	sp.EndCount(int64(nCommitted))
	if cerr != nil {
		return nil, cerr
	}
	if ferr != nil {
		return nil, ferr
	}
	return ranking, nil
}

// insertTopK folds item into the ranking by sorted insertion (SSP
// descending, graph ascending), keeping at most k items. Keys are unique —
// each graph commits once — so this yields exactly the order a full
// re-sort would, and with cap(top) > len(top) it never allocates.
//
//pgvet:noalloc
func insertTopK(top []TopKItem, item TopKItem, k int) []TopKItem {
	pos := len(top)
	for pos > 0 && (top[pos-1].SSP < item.SSP ||
		(top[pos-1].SSP == item.SSP && top[pos-1].Graph > item.Graph)) {
		pos--
	}
	top = append(top, TopKItem{})
	copy(top[pos+1:], top[pos:])
	top[pos] = item
	if len(top) > k {
		top = top[:k]
	}
	return top
}

// TopKBound is one entry of the top-k verification schedule: a structural
// candidate slot and its clamped SSP upper bound. The schedule is sorted
// Upper descending, slot ascending — the order the serial top-k algorithm
// verifies in.
type TopKBound struct {
	Graph int     // database slot index
	Upper float64 // SSP upper bound, clamped to 1
}

// topkSchedule computes the top-k verification schedule for q: the
// structural candidate set, each candidate's upper bound (seeded from its
// global id, so partitions agree bitwise with the full database), sorted
// by the serial verification order. It also returns the relaxed query set
// the verification phase needs. An empty candidate set returns (nil, u,
// nil). Spans attach under the context's span as in Query.
func (v *View) topkSchedule(ctx context.Context, q *graph.Graph, opt QueryOptions) ([]TopKBound, []*graph.Graph, error) {
	parent := obs.SpanFrom(ctx)
	sp := parent.Child("struct_filter")
	scq, _, err := v.Struct.SCqCtx(obs.ContextWithSpan(ctx, sp), q, opt.Delta, opt.Concurrency)
	sp.EndCount(int64(len(scq)))
	if err != nil {
		return nil, nil, err
	}
	sp = parent.Child("relax")
	u := relax.Relaxed(q, opt.Delta, opt.MaxRelaxed)
	sp.EndCount(int64(len(u)))
	if len(scq) == 0 {
		return nil, u, nil
	}
	workers := normalizeWorkers(opt.Concurrency, len(scq))

	// Upper bounds order the verification schedule. Each candidate's bound
	// draws from its own candSeed-derived rng, so the schedule is the same
	// at any worker count.
	cands := make([]TopKBound, len(scq))
	if v.PMI != nil {
		sp = parent.Child("bounds")
		pr, err := v.newPruner(ctx, u, opt, nil)
		if err != nil {
			sp.End()
			return nil, nil, err
		}
		err = forEachIndexCtx(ctx, len(scq), workers, func(i int) {
			gi := scq[i]
			sc := getScratch(candSeed(opt.Seed^pruneSalt, v.GID(gi)))
			sc.entries = v.PMI.LookupInto(gi, sc.entries[:0])
			ub := pr.upperBound(sc.entries, sc)
			putScratch(sc)
			if ub > 1 {
				ub = 1
			}
			cands[i] = TopKBound{Graph: gi, Upper: ub}
		})
		sp.EndCount(int64(len(scq)))
		if err != nil {
			return nil, nil, err
		}
	} else {
		for i, gi := range scq {
			cands[i] = TopKBound{Graph: gi, Upper: 1}
		}
	}
	// Slot ascending breaks upper-bound ties. On a partition, slots are in
	// global-id order, so merging shard schedules by (Upper desc, global
	// id asc) reproduces exactly this order over the union.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Upper != cands[j].Upper {
			return cands[i].Upper > cands[j].Upper
		}
		return cands[i].Graph < cands[j].Graph
	})
	return cands, u, nil
}

// QueryTopKBounds computes the top-k verification schedule without
// verifying anything: the ranked candidate slots with their upper bounds,
// sorted in serial verification order (Upper descending, slot ascending).
// A distributed coordinator calls this on every shard, merges the
// schedules by (Upper, global id), and replays the serial early-
// termination rule over the union — fetching SSPs via VerifySSPBatch —
// to reproduce QueryTopK bitwise.
//
// The degenerate return (δ ≥ |E(q)|, where every live graph matches with
// SSP 1) lists the first k live slots with Upper 1 and degenerate=true;
// no verification is needed for them.
func (v *View) QueryTopKBounds(ctx context.Context, q *graph.Graph, k int, opt QueryOptions) (bounds []TopKBound, degenerate bool, err error) {
	opt = opt.withDefaults()
	if k <= 0 {
		return nil, false, fmt.Errorf("core: k must be positive")
	}
	if opt.Delta < 0 {
		return nil, false, fmt.Errorf("core: negative delta")
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	if opt.Delta >= q.NumEdges() {
		out := make([]TopKBound, 0, k)
		for gi := 0; gi < v.Len() && len(out) < k; gi++ {
			if !v.Live(gi) {
				continue
			}
			out = append(out, TopKBound{Graph: gi, Upper: 1})
		}
		return out, true, nil
	}
	cands, _, err := v.topkSchedule(ctx, q, opt)
	return cands, false, err
}

// VerifySSPBatch verifies the SSP of q against each of the given slots on
// the worker pool, returning the estimates in input order. The relaxed
// query set is derived internally (as Query and QueryTopK derive it), and
// each slot's estimate seeds from its global id alone — the same value
// VerifySSP returns, independent of batching, order, or worker count.
func (v *View) VerifySSPBatch(ctx context.Context, q *graph.Graph, gis []int, opt QueryOptions) ([]float64, error) {
	opt = opt.withDefaults()
	if opt.Delta < 0 {
		return nil, fmt.Errorf("core: negative delta")
	}
	if len(gis) == 0 {
		return nil, nil
	}
	u := relax.Relaxed(q, opt.Delta, opt.MaxRelaxed)
	out := make([]float64, len(gis))
	errs := make([]error, len(gis))
	workers := normalizeWorkers(opt.Concurrency, len(gis))
	err := forEachIndexCtx(ctx, len(gis), workers, func(i int) {
		out[i], errs[i] = v.VerifySSP(q, u, gis[i], opt)
	})
	if err != nil {
		return nil, err
	}
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("core: verifying graph %d: %w", gis[i], e)
		}
	}
	return out, nil
}

// QueryBatch answers many queries over one bounded worker pool of
// opt.Concurrency goroutines (0 or 1 serial, negative GOMAXPROCS) and
// returns their results in input order. Query i runs with the derived seed
// BatchSeed(opt.Seed, i), so its result is bitwise-identical to calling
// Query with that seed directly — batching never changes answers.
//
// The pool is spread across queries first; leftover capacity (when the
// pool is larger than the batch) parallelizes candidates inside each
// query. Queries additionally share one feature-relation cache, amortizing
// the query-side feature/relaxed-query isomorphism tests that dominate
// pruner setup when the batch's queries overlap structurally.
func (db *Database) QueryBatch(qs []*graph.Graph, opt QueryOptions) ([]*Result, error) {
	return db.View().QueryBatchCtx(context.Background(), qs, opt)
}

// QueryBatch on a pinned View is QueryBatch against exactly that
// generation.
func (v *View) QueryBatch(qs []*graph.Graph, opt QueryOptions) ([]*Result, error) {
	return v.QueryBatchCtx(context.Background(), qs, opt)
}

// QueryBatchCtx is QueryBatch under a context. The context is shared by
// every member query — cancellation stops the whole batch (member queries
// check it per pipeline stage and per candidate) and the call returns
// (nil, ctx.Err()); there are no partial batch results. An uncancelled
// call returns exactly QueryBatch's results.
func (db *Database) QueryBatchCtx(ctx context.Context, qs []*graph.Graph, opt QueryOptions) ([]*Result, error) {
	return db.View().QueryBatchCtx(ctx, qs, opt)
}

// QueryBatchCtx on a pinned View: every member query runs against the
// same generation — a batch is one consistent read of the database.
func (v *View) QueryBatchCtx(ctx context.Context, qs []*graph.Graph, opt QueryOptions) ([]*Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	workers := normalizeWorkers(opt.Concurrency, len(qs))
	inner := 1
	if w := normalizeWorkers(opt.Concurrency, len(qs)*v.Len()); w > workers {
		inner = w / workers
	}
	cache := newRelCache()
	results := make([]*Result, len(qs))
	errs := make([]error, len(qs))
	var abort atomic.Bool // first failed query stops remaining work
	err := forEachIndexCtx(ctx, len(qs), workers, func(i int) {
		if abort.Load() {
			return
		}
		qo := opt
		qo.Seed = BatchSeed(opt.Seed, i)
		qo.Concurrency = inner
		results[i], errs[i] = v.query(ctx, qs[i], qo, cache)
		if errs[i] != nil {
			abort.Store(true)
		}
	})
	if err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			// A member that died of the shared context reports plain
			// ctx.Err(): the batch was cancelled, not that query failing.
			if err == ctx.Err() {
				return nil, err
			}
			return nil, fmt.Errorf("core: query %d: %w", i, err)
		}
	}
	return results, nil
}
