package core

import (
	"math/rand"
	"sort"
	"testing"

	"probgraph/internal/dataset"
	"probgraph/internal/graph"
	"probgraph/internal/verify"
)

func TestQueryTopKMatchesExactRanking(t *testing.T) {
	db, _ := smallDatabase(t, 909, 8, true)
	rng := rand.New(rand.NewSource(21))
	q := dataset.ExtractQuery(db.Certain()[2], 4, rng)
	const k = 3
	got, err := db.QueryTopK(q, k, QueryOptions{
		Delta: 1, OptBounds: true,
		Verifier: VerifierExact, Verify: verify.Options{MaxClauses: 22},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Oracle ranking by exhaustive enumeration.
	type item struct {
		gi  int
		ssp float64
	}
	var all []item
	for gi := range db.Graphs() {
		p, err := db.ExactSSPByEnumeration(q, gi, 1)
		if err != nil {
			t.Fatal(err)
		}
		if p > 0 {
			all = append(all, item{gi, p})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ssp > all[j].ssp })
	if len(all) > k {
		all = all[:k]
	}
	if len(got) != len(all) {
		t.Fatalf("top-k returned %d items, oracle has %d", len(got), len(all))
	}
	for i := range got {
		if got[i].Graph != all[i].gi {
			// Ties in SSP can permute; accept if the SSPs match.
			if got[i].SSP != all[i].ssp {
				t.Fatalf("rank %d: got graph %d (%.4f), want %d (%.4f)",
					i, got[i].Graph, got[i].SSP, all[i].gi, all[i].ssp)
			}
		}
		if diff := got[i].SSP - all[i].ssp; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("rank %d SSP %v vs oracle %v", i, got[i].SSP, all[i].ssp)
		}
	}
}

func TestQueryTopKValidation(t *testing.T) {
	db, _ := smallDatabase(t, 910, 4, false)
	q := db.Certain()[0]
	if _, err := db.QueryTopK(q, 0, QueryOptions{Delta: 1}); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := db.QueryTopK(q, 2, QueryOptions{Delta: -1}); err == nil {
		t.Fatal("negative delta must be rejected")
	}
}

func TestQueryTopKDegenerateDelta(t *testing.T) {
	db, _ := smallDatabase(t, 911, 5, true)
	gb := graph.NewBuilder("tiny")
	u := gb.AddVertex("C0")
	v := gb.AddVertex("C1")
	gb.MustAddEdge(u, v, "")
	res, err := db.QueryTopK(gb.Build(), 3, QueryOptions{Delta: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("want 3 trivial matches, got %d", len(res))
	}
	for _, it := range res {
		if it.SSP != 1 {
			t.Fatal("degenerate delta must give SSP 1")
		}
	}
}

func TestQueryBatchMatchesSequential(t *testing.T) {
	db, _ := smallDatabase(t, 912, 8, true)
	rng := rand.New(rand.NewSource(33))
	var qs []*graph.Graph
	for i := 0; i < 5; i++ {
		qs = append(qs, dataset.ExtractQuery(db.Certain()[i%len(db.Certain())], 4, rng))
	}
	opt := QueryOptions{
		Epsilon: 0.4, Delta: 1, OptBounds: true,
		Verifier: VerifierExact, Verify: verify.Options{MaxClauses: 22},
		Seed: 7, Concurrency: 4,
	}
	batch, err := db.QueryBatch(qs, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		qo := opt
		qo.Seed = BatchSeed(opt.Seed, i)
		qo.Concurrency = 1
		seq, err := db.Query(q, qo)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIntSet(batch[i].Answers, seq.Answers) {
			t.Fatalf("query %d: batch %v vs sequential %v", i, batch[i].Answers, seq.Answers)
		}
	}
}
