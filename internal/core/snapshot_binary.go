package core

import (
	"encoding/json"
	"fmt"
	"io"

	"probgraph/internal/dataset"
	"probgraph/internal/feature"
	"probgraph/internal/graph"
	"probgraph/internal/pmi"
	"probgraph/internal/simsearch"
	"probgraph/internal/snapbin"
)

// pgsnap v4 is the binary snapshot: the same sections as the v3 text
// format, laid out in a snapbin container (magic "PGSNAPB4", section
// table, 8-byte-aligned length-prefixed payloads) so a server can mmap
// the file and start serving without parsing the corpus — the count
// matrix and posting slabs are used directly from the mapping on
// little-endian hosts, and the page cache shares them across processes.
//
// Sections, in file order (order is fixed so save→load→save is
// byte-identical):
//
//	secOptions     one JSON blob of BuildOptions
//	secGeneration  u64 generation; i32 slab of tombstoned slots
//	secGraphs      u32 n; n dataset pgraph records (certain graph + JPTs)
//	secFeatures    u32 nf; per feature an i32 support slab + graph record
//	secStruct      simsearch binary section (absent when Struct is nil)
//	secPMI         pmi binary section (absent when PMI is nil)
//	secGIDs        i32 slab of slot→global-id map (range partitions only)
//
// Float payloads are stored as raw IEEE-754 bits, so the bitwise
// determinism contract holds across the round trip by construction —
// no formatting/parsing is involved at all.
const (
	secOptions    = 1
	secGeneration = 2
	secGraphs     = 3
	secFeatures   = 4
	secStruct     = 5
	secPMI        = 6
	secGIDs       = 7
)

// SaveBinary writes the database's current view as a pgsnap v4 binary
// snapshot; see View.SaveBinary.
func (db *Database) SaveBinary(w io.Writer) error {
	return db.View().SaveBinary(w)
}

// SaveBinary writes this exact generation as a pgsnap v4 binary snapshot.
// LoadDatabase and OpenSnapshot restore it; the output is deterministic
// (same view → same bytes).
func (v *View) SaveBinary(w io.Writer) error {
	bw := snapbin.NewWriter()

	optJSON, err := json.Marshal(v.opt)
	if err != nil {
		return fmt.Errorf("core: snapshot options: %w", err)
	}
	bw.Section(secOptions).Bytes(optJSON)

	gen := bw.Section(secGeneration)
	gen.U64(v.Generation)
	tombs := v.tombstoneIDs()
	tombs32 := make([]int32, len(tombs))
	for i, gi := range tombs {
		tombs32[i] = int32(gi)
	}
	gen.I32s(tombs32)

	gs := bw.Section(secGraphs)
	gs.U32(uint32(len(v.Graphs)))
	for _, pg := range v.Graphs {
		dataset.EncodePGraphBinary(gs, pg, 0)
	}

	fs := bw.Section(secFeatures)
	fs.U32(uint32(len(v.Features)))
	for _, f := range v.Features {
		sup := make([]int32, len(f.Support))
		for i, gi := range f.Support {
			sup[i] = int32(gi)
		}
		fs.I32s(sup)
		graph.EncodeBinary(fs, f.G)
	}

	if v.Struct != nil {
		v.Struct.EncodeBinary(bw.Section(secStruct))
	}
	if v.PMI != nil {
		v.PMI.EncodeBinary(bw.Section(secPMI))
	}
	if v.gids != nil {
		gids32 := make([]int32, len(v.gids))
		for i, g := range v.gids {
			gids32[i] = int32(g)
		}
		bw.Section(secGIDs).I32s(gids32)
	}

	_, err = bw.WriteTo(w)
	return err
}

// loadBinarySnapshot restores a database from pgsnap v4 bytes — typically
// an mmap'd file (OpenSnapshot) or a fully read stream (LoadDatabase).
// The returned database may alias data: slabs are pointed at it zero-copy
// where the host allows, so the caller must keep it valid (and unmodified)
// for the database's lifetime.
func loadBinarySnapshot(data []byte) (*Database, error) {
	snap, err := snapbin.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	v := &View{Generation: 1}

	sec, ok := snap.Section(secOptions)
	if !ok {
		return nil, fmt.Errorf("core: snapshot: missing options section")
	}
	c := snapbin.NewCursor(sec)
	optJSON := c.Bytes()
	if c.Err() != nil {
		return nil, fmt.Errorf("core: snapshot options: %w", c.Err())
	}
	if err := json.Unmarshal(optJSON, &v.opt); err != nil {
		return nil, fmt.Errorf("core: snapshot options: %w", err)
	}

	sec, ok = snap.Section(secGeneration)
	if !ok {
		return nil, fmt.Errorf("core: snapshot: missing generation section")
	}
	c = snapbin.NewCursor(sec)
	v.Generation = c.U64()
	tombs32 := c.I32s()
	if c.Err() != nil {
		return nil, fmt.Errorf("core: snapshot generation: %w", c.Err())
	}

	sec, ok = snap.Section(secGraphs)
	if !ok {
		return nil, fmt.Errorf("core: snapshot: missing graphs section")
	}
	c = snapbin.NewCursor(sec)
	n := c.Int()
	if c.Err() != nil {
		return nil, fmt.Errorf("core: snapshot graphs: %w", c.Err())
	}
	for gi := 0; gi < n; gi++ {
		pg, _, err := dataset.DecodePGraphBinary(c)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot graph %d: %w", gi, err)
		}
		v.Graphs = append(v.Graphs, pg)
		v.Certain = append(v.Certain, pg.G)
	}

	var tombs []int
	for _, t := range tombs32 {
		gi := int(t)
		if gi < 0 || gi >= n {
			return nil, fmt.Errorf("core: snapshot: tombstone %d out of range [0,%d)", gi, n)
		}
		tombs = append(tombs, gi)
	}

	sec, ok = snap.Section(secFeatures)
	if !ok {
		return nil, fmt.Errorf("core: snapshot: missing features section")
	}
	c = snapbin.NewCursor(sec)
	nf := c.Int()
	if c.Err() != nil {
		return nil, fmt.Errorf("core: snapshot features: %w", c.Err())
	}
	for fi := 0; fi < nf; fi++ {
		sup32 := c.I32s()
		if c.Err() != nil {
			return nil, fmt.Errorf("core: snapshot feature %d: %w", fi, c.Err())
		}
		support := make([]int, len(sup32))
		for k, gi := range sup32 {
			if gi < 0 || int(gi) >= n {
				return nil, fmt.Errorf("core: snapshot feature %d: support %d out of range [0,%d)", fi, gi, n)
			}
			support[k] = int(gi)
		}
		fg, err := graph.DecodeBinary(c)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot feature %d graph: %w", fi, err)
		}
		v.Features = append(v.Features, &feature.Feature{
			G: fg, Code: graph.CanonicalCode(fg), Support: support,
		})
	}
	v.Build.Features = len(v.Features)

	if sec, ok = snap.Section(secStruct); ok {
		ix, err := simsearch.DecodeBinary(snapbin.NewCursor(sec), v.Certain)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot: %w", err)
		}
		v.Struct = ix.WithTombstones(tombs)
	}

	if sec, ok = snap.Section(secPMI); ok {
		idx, err := pmi.DecodeBinary(snapbin.NewCursor(sec), n)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot: %w", err)
		}
		// As in the text loader: pmi sections do not persist options, and
		// masked columns were written as uncontained, so the options and
		// the tombstone mask are restored here.
		idx.Opt = v.opt.PMI
		v.PMI = idx.WithMaskedColumns(tombs)
		v.Build.IndexSizeBytes = v.PMI.SizeBytes()
	}

	if sec, ok = snap.Section(secGIDs); ok {
		c = snapbin.NewCursor(sec)
		gids32 := c.I32s()
		if c.Err() != nil {
			return nil, fmt.Errorf("core: snapshot gids: %w", c.Err())
		}
		if len(gids32) != n {
			return nil, fmt.Errorf("core: snapshot: gids count %d != graphs %d", len(gids32), n)
		}
		gids := make([]int, n)
		for k, g := range gids32 {
			if g < 0 || (k > 0 && int(g) <= gids[k-1]) {
				return nil, fmt.Errorf("core: snapshot: bad global id %d (ids must be non-negative and strictly ascending)", g)
			}
			gids[k] = int(g)
		}
		v.gids = gids
	}

	v.liveCount = n
	if len(tombs) > 0 {
		v.live = make([]bool, n)
		for gi := range v.live {
			v.live[gi] = true
		}
		for _, gi := range tombs {
			if v.live[gi] {
				v.live[gi] = false
				v.liveCount--
			}
		}
	}

	v.newLazyEngines(n)
	return newFromView(v), nil
}
