package feature

import (
	"math/rand"
	"testing"

	"probgraph/internal/graph"
	"probgraph/internal/iso"
)

func smallDB(rng *rand.Rand, n int) []*graph.Graph {
	var dbc []*graph.Graph
	for i := 0; i < n; i++ {
		b := graph.NewBuilder("g")
		nv := 5 + rng.Intn(4)
		for v := 0; v < nv; v++ {
			b.AddVertex(graph.Label([]string{"a", "b", "c"}[rng.Intn(3)]))
		}
		for tries, added := 0, 0; added < nv+2 && tries < 60; tries++ {
			u := graph.VertexID(rng.Intn(nv))
			v := graph.VertexID(rng.Intn(nv))
			if u == v {
				continue
			}
			if _, err := b.AddEdge(u, v, ""); err == nil {
				added++
			}
		}
		dbc = append(dbc, b.Build())
	}
	return dbc
}

func TestMineSupportIsSound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dbc := smallDB(rng, 12)
	feats := Mine(dbc, Options{Beta: 0.2, Alpha: 0.05, Gamma: 0.05, MaxL: 4})
	if len(feats) == 0 {
		t.Fatal("no features mined")
	}
	for fi, f := range feats {
		if len(f.Support) == 0 {
			t.Fatalf("feature %d has empty support", fi)
		}
		for _, gi := range f.Support {
			if !iso.Exists(f.G, dbc[gi], nil) {
				t.Fatalf("feature %d claims support in graph %d but does not embed", fi, gi)
			}
		}
		// Support must be complete: any graph containing f is listed.
		inSupport := make(map[int]bool)
		for _, gi := range f.Support {
			inSupport[gi] = true
		}
		for gi := range dbc {
			if iso.Exists(f.G, dbc[gi], nil) && !inSupport[gi] {
				t.Fatalf("feature %d misses supporting graph %d", fi, gi)
			}
		}
	}
}

func TestMineRespectsBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dbc := smallDB(rng, 10)
	feats := Mine(dbc, Options{Beta: 0.5, Alpha: 0.01, Gamma: 0.01, MaxL: 3})
	for _, f := range feats {
		// frq uses the α-qualified subset of Support, which is ≤ |Support|;
		// Support itself must meet the floor too.
		if len(f.Support) < 5 {
			t.Fatalf("feature with support %d violates β=0.5 over 10 graphs", len(f.Support))
		}
	}
}

func TestMineRespectsMaxL(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dbc := smallDB(rng, 8)
	for _, maxL := range []int{2, 3, 4} {
		for _, f := range Mine(dbc, Options{Beta: 0.1, Alpha: 0.01, Gamma: 0.01, MaxL: maxL}) {
			if f.G.NumVertices() > maxL {
				t.Fatalf("feature with %d vertices violates maxL=%d", f.G.NumVertices(), maxL)
			}
		}
	}
}

func TestMineDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dbc := smallDB(rng, 8)
	feats := Mine(dbc, Options{Beta: 0.1, Alpha: 0.01, Gamma: 0.01, MaxL: 4})
	seen := make(map[string]bool)
	for _, f := range feats {
		if seen[f.Code] {
			t.Fatalf("duplicate feature code %q", f.Code)
		}
		seen[f.Code] = true
		if f.Code != graph.CanonicalCode(f.G) {
			t.Fatal("stored code does not match graph")
		}
	}
}

func TestMineMaxFeaturesCap(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	dbc := smallDB(rng, 10)
	feats := Mine(dbc, Options{Beta: 0.1, Alpha: 0.01, Gamma: 0.01, MaxL: 5, MaxFeatures: 3})
	if len(feats) > 3 {
		t.Fatalf("MaxFeatures ignored: %d features", len(feats))
	}
}

func TestMineEmptyDB(t *testing.T) {
	if feats := Mine(nil, Options{}); feats != nil {
		t.Fatal("empty database must yield no features")
	}
}

func TestMineGrowsBeyondSingleEdges(t *testing.T) {
	// A database of identical triangles must produce a 3-vertex feature.
	var dbc []*graph.Graph
	for i := 0; i < 6; i++ {
		b := graph.NewBuilder("tri")
		v0 := b.AddVertex("a")
		v1 := b.AddVertex("b")
		v2 := b.AddVertex("c")
		b.MustAddEdge(v0, v1, "")
		b.MustAddEdge(v1, v2, "")
		b.MustAddEdge(v0, v2, "")
		dbc = append(dbc, b.Build())
	}
	feats := Mine(dbc, Options{Beta: 0.9, Alpha: 0.5, Gamma: -1, MaxL: 3})
	maxEdges := 0
	for _, f := range feats {
		if f.G.NumEdges() > maxEdges {
			maxEdges = f.G.NumEdges()
		}
	}
	if maxEdges < 2 {
		t.Fatalf("mining never grew beyond single edges (max %d edges)", maxEdges)
	}
}

func TestGammaPrunesRedundantFeatures(t *testing.T) {
	// Five graphs all contain the edges a-b and b-c, but only three contain
	// the connected path a-b-c (in the other two the edges are disjoint).
	// The path's support (3) is 60% of its parents' intersection (5), so it
	// is kept at γ ≤ 0.4 and pruned at stricter γ.
	mkPath := func() *graph.Graph {
		b := graph.NewBuilder("path")
		va := b.AddVertex("a")
		vb := b.AddVertex("b")
		vc := b.AddVertex("c")
		b.MustAddEdge(va, vb, "")
		b.MustAddEdge(vb, vc, "")
		return b.Build()
	}
	mkSplit := func() *graph.Graph {
		b := graph.NewBuilder("split")
		va := b.AddVertex("a")
		vb1 := b.AddVertex("b")
		vb2 := b.AddVertex("b")
		vc := b.AddVertex("c")
		b.MustAddEdge(va, vb1, "")
		b.MustAddEdge(vb2, vc, "")
		return b.Build()
	}
	dbc := []*graph.Graph{mkPath(), mkPath(), mkPath(), mkSplit(), mkSplit()}
	hasPath := func(feats []*Feature) bool {
		for _, f := range feats {
			if f.G.NumEdges() == 2 {
				return true
			}
		}
		return false
	}
	loose := Mine(dbc, Options{Beta: 0.2, Alpha: 0.1, Gamma: 0.3, MaxL: 3})
	strict := Mine(dbc, Options{Beta: 0.2, Alpha: 0.1, Gamma: 0.5, MaxL: 3})
	if !hasPath(loose) {
		t.Fatal("γ=0.3 should keep the 2-edge path (support shrinks by 40%)")
	}
	if hasPath(strict) {
		t.Fatal("γ=0.5 should prune the 2-edge path (support shrinks only 40%)")
	}
}
