// Package feature mines the frequent, discriminative subgraph features that
// populate the probabilistic matrix index (paper §4.2, Algorithm 4).
//
// Selection follows the paper's two rules — prefer features with many
// disjoint embeddings (they give large |IN| / |IN′| families and therefore
// tight SIP bounds) and prefer small features — implemented through four
// knobs:
//
//	α     minimum ratio of disjoint embeddings among all embeddings for a
//	      graph to count toward a feature's frequency
//	β     minimum frequency frq(f) = |{g : f ⊆iso gc, |IN|/|Ef| ≥ α}| / |D|
//	γ     discriminative shrink: keep f only when its support is at least a
//	      γ fraction smaller than the intersection of its indexed
//	      sub-features' supports, |Df| ≤ (1−γ)·|∩ Df′|
//	maxL  maximum feature size (vertices)
//
// Mining is level-wise pattern growth: level-1 features are the distinct
// labeled edges; each level extends embeddings by one adjacent edge, with
// canonical-code deduplication and anti-monotone support pruning (a
// candidate's support is a subset of its parent's).
package feature

import (
	"sort"

	"probgraph/internal/graph"
	"probgraph/internal/iso"
)

// Options controls mining. Zero values select the defaults (the paper's
// default parameter setting is α=β=γ=0.15, maxL=150; our scaled default
// keeps the thresholds and bounds feature size by vertices).
type Options struct {
	Alpha float64 // disjoint-embedding ratio threshold (default 0.15; negative = 0)
	Beta  float64 // frequency threshold (default 0.15; negative = 0)
	Gamma float64 // discriminative threshold (default 0.15; negative = 0)
	MaxL  int     // max feature vertices (default 10)

	MaxFeatures           int // cap on |F| (default 256)
	MaxEmbeddingsPerGraph int // cap on |Ef| when computing ratios (default 64)
	MaxCandidatesPerLevel int // growth cap (default 2048)
}

func (o Options) withDefaults() Options {
	// Zero selects the default; negative selects an explicit zero (off).
	switch {
	case o.Alpha < 0:
		o.Alpha = 0
	case o.Alpha == 0:
		o.Alpha = 0.15
	}
	switch {
	case o.Beta < 0:
		o.Beta = 0
	case o.Beta == 0:
		o.Beta = 0.15
	}
	switch {
	case o.Gamma < 0:
		o.Gamma = 0
	case o.Gamma == 0:
		o.Gamma = 0.15
	}
	if o.MaxL == 0 {
		o.MaxL = 10
	}
	if o.MaxFeatures == 0 {
		o.MaxFeatures = 256
	}
	if o.MaxEmbeddingsPerGraph == 0 {
		o.MaxEmbeddingsPerGraph = 64
	}
	if o.MaxCandidatesPerLevel == 0 {
		o.MaxCandidatesPerLevel = 2048
	}
	return o
}

// Feature is a mined pattern with its database support.
type Feature struct {
	G *graph.Graph
	//pgvet:nosnap canonical code is re-derived from G at load time
	Code    string
	Support []int // indices of graphs whose certain graph contains G
}

// Mine extracts features from the certain graphs dbc.
func Mine(dbc []*graph.Graph, opt Options) []*Feature {
	opt = opt.withDefaults()
	if len(dbc) == 0 {
		return nil
	}
	minSupport := int(opt.Beta * float64(len(dbc)))
	if minSupport < 1 {
		minSupport = 1
	}

	var out []*Feature
	supportOf := make(map[string][]int) // code -> support (for dis())

	level := mineSingleEdges(dbc)
	for len(level) > 0 && len(out) < opt.MaxFeatures {
		var next []*candidate
		seen := make(map[string]bool)
		for _, c := range level {
			if len(out) >= opt.MaxFeatures {
				break
			}
			// Frequency with the α disjoint-ratio qualification.
			qualified := 0
			for _, gi := range c.support {
				if disjointRatioOK(c.g, dbc[gi], opt) {
					qualified++
				}
			}
			if qualified < minSupport {
				continue
			}
			// Discriminative check against already indexed sub-features.
			if !discriminativeOK(c, out, opt.Gamma) {
				continue
			}
			f := &Feature{G: c.g, Code: c.code, Support: c.support}
			out = append(out, f)
			supportOf[c.code] = c.support

			// Grow.
			if c.g.NumVertices() >= opt.MaxL {
				continue
			}
			for _, ext := range extend(c, dbc, opt) {
				if seen[ext.code] || len(next) >= opt.MaxCandidatesPerLevel {
					continue
				}
				if len(ext.support) < minSupport {
					continue
				}
				seen[ext.code] = true
				next = append(next, ext)
			}
		}
		level = next
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].G.NumEdges() != out[j].G.NumEdges() {
			return out[i].G.NumEdges() < out[j].G.NumEdges()
		}
		return out[i].Code < out[j].Code
	})
	return out
}

type candidate struct {
	g       *graph.Graph
	code    string
	support []int
}

// mineSingleEdges builds the level-1 candidates: one per distinct labeled
// edge triple (uLabel, edgeLabel, vLabel).
func mineSingleEdges(dbc []*graph.Graph) []*candidate {
	type triple struct{ a, e, b graph.Label }
	supp := make(map[triple][]int)
	for gi, g := range dbc {
		local := make(map[triple]bool)
		for _, ed := range g.Edges() {
			la, lb := g.VertexLabel(ed.U), g.VertexLabel(ed.V)
			if la > lb {
				la, lb = lb, la
			}
			local[triple{la, ed.Label, lb}] = true
		}
		for tr := range local {
			supp[tr] = append(supp[tr], gi)
		}
	}
	var out []*candidate
	for tr, s := range supp {
		b := graph.NewBuilder("f")
		u := b.AddVertex(tr.a)
		v := b.AddVertex(tr.b)
		b.MustAddEdge(u, v, tr.e)
		g := b.Build()
		sort.Ints(s)
		out = append(out, &candidate{g: g, code: graph.CanonicalCode(g), support: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].code < out[j].code })
	return out
}

// disjointRatioOK computes |IN| / |Ef| ≥ α for feature f in graph g, with
// Ef capped and IN greedy (the exact clique version is reserved for the PMI
// builder where tightness matters).
func disjointRatioOK(f, g *graph.Graph, opt Options) bool {
	sets := iso.EdgeSets(f, g, nil, opt.MaxEmbeddingsPerGraph)
	if len(sets) == 0 {
		return false
	}
	in := iso.MaxDisjointGreedy(sets)
	return float64(len(in))/float64(len(sets)) >= opt.Alpha
}

// discriminativeOK implements the paper's dis(f) criterion in its usable
// (gIndex-style) form. Read literally, dis(f) = |∩{Df′ : f′ ⊆iso f}| / |Df|
// is always exactly 1 when f′ ranges over sub-features including f (every
// graph containing f contains each f′), so a threshold in the paper's
// sweep range [0.05, 0.25] would never prune — yet the paper's Figure 12d
// shows the index shrinking as γ grows. We therefore keep a feature only
// when its support shrinks by at least a γ fraction relative to what its
// indexed sub-features already predict:
//
//	|Df| ≤ (1 − γ)·|∩ {Df′ : f′ ⊊ f, f′ ∈ F}|
//
// which matches gIndex's discriminative-fragment intent and reproduces the
// decreasing index-size trend. Features with no indexed sub-feature are
// trivially discriminative.
func discriminativeOK(c *candidate, indexed []*Feature, gamma float64) bool {
	if len(c.support) == 0 {
		return false
	}
	var inter map[int]bool
	for _, f := range indexed {
		if f.G.NumEdges() >= c.g.NumEdges() {
			continue
		}
		if !iso.Exists(f.G, c.g, nil) {
			continue
		}
		if inter == nil {
			inter = make(map[int]bool, len(f.Support))
			for _, gi := range f.Support {
				inter[gi] = true
			}
			continue
		}
		keep := make(map[int]bool, len(inter))
		for _, gi := range f.Support {
			if inter[gi] {
				keep[gi] = true
			}
		}
		inter = keep
	}
	if inter == nil {
		return true
	}
	return float64(len(c.support)) <= (1-gamma)*float64(len(inter))
}

// extend grows a candidate by one edge using its embeddings in supporting
// graphs; support is computed exactly (iso test over the parent support).
func extend(c *candidate, dbc []*graph.Graph, opt Options) []*candidate {
	type ext struct {
		g    *graph.Graph
		code string
	}
	candidates := make(map[string]*ext)
	// Derive extension shapes from a few supporting graphs' embeddings.
	samples := c.support
	if len(samples) > 8 {
		samples = samples[:8]
	}
	for _, gi := range samples {
		g := dbc[gi]
		embs := iso.FindAll(c.g, g, nil, 8)
		for _, em := range embs {
			inImage := make(map[graph.VertexID]graph.VertexID, len(em.VMap)) // target -> pattern
			for pv, tv := range em.VMap {
				inImage[tv] = graph.VertexID(pv)
			}
			for pv, tv := range em.VMap {
				for _, h := range g.Neighbors(tv) {
					if em.Edges.Contains(h.Edge) {
						continue
					}
					ng := buildExtension(c.g, graph.VertexID(pv), inImage, g, h)
					if ng == nil {
						continue
					}
					code := graph.CanonicalCode(ng)
					if _, ok := candidates[code]; !ok {
						candidates[code] = &ext{g: ng, code: code}
					}
				}
			}
		}
	}
	var out []*candidate
	for _, e := range candidates {
		supp := make([]int, 0, len(c.support))
		for _, gi := range c.support {
			if iso.Exists(e.g, dbc[gi], nil) {
				supp = append(supp, gi)
			}
		}
		out = append(out, &candidate{g: e.g, code: e.code, support: supp})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].code < out[j].code })
	return out
}

// buildExtension adds to pattern p the target edge h leaving the image of
// pattern vertex pv: either a back-edge to another mapped vertex or a fresh
// pendant vertex carrying the target's labels.
func buildExtension(p *graph.Graph, pv graph.VertexID, inImage map[graph.VertexID]graph.VertexID, g *graph.Graph, h graph.HalfEdge) *graph.Graph {
	b := graph.NewBuilder("f")
	for v := 0; v < p.NumVertices(); v++ {
		b.AddVertex(p.VertexLabel(graph.VertexID(v)))
	}
	for _, e := range p.Edges() {
		b.MustAddEdge(e.U, e.V, e.Label)
	}
	lbl := g.EdgeLabel(h.Edge)
	if opv, mapped := inImage[h.To]; mapped {
		// Back edge within the pattern (may already exist -> reject).
		if _, err := b.AddEdge(pv, opv, lbl); err != nil {
			return nil
		}
	} else {
		nv := b.AddVertex(g.VertexLabel(h.To))
		b.MustAddEdge(pv, nv, lbl)
	}
	return b.Build()
}
