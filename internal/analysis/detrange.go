package analysis

import (
	"go/ast"
	"go/types"
)

// detRangeScope names the packages whose loops feed either query answers
// or rendered output (snapshots, /metrics, /stats): the determinism
// contract — serial ≡ parallel ≡ pre-refactor, byte-stable exposition —
// makes map iteration order a bug there unless the loop body provably
// does not care. Scoping is by package name so the analyzer works
// unchanged on fixture modules and golden testdata.
var detRangeScope = map[string]bool{
	"core":      true,
	"simsearch": true,
	"pmi":       true,
	"relax":     true,
	"cover":     true,
	"qp":        true,
	"obs":       true,
	"server":    true,
}

// randAllowed are the math/rand package-level functions that do not touch
// the global (scheduling-ordered) source: constructors taking an explicit
// seed or source.
var randAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// DetRange enforces the determinism contract statically:
//
//   - In query/render-path packages, `range` over a map is a finding
//     unless the loop carries //pgvet:sorted <why> — iteration order is
//     random per run, and the contract demands bitwise-identical answers
//     and byte-stable rendered output.
//   - Anywhere (non-test files), calling a math/rand or math/rand/v2
//     package-level function backed by the global source is a finding:
//     global-state draws depend on everything else in the process, so
//     results stop being a pure function of (Seed, input). Seeded
//     rand.New(rand.NewSource(...)) and *rand.Rand methods are fine.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc:  "no map iteration in query/render-path packages without a //pgvet:sorted justification; no global math/rand state",
	Run:  runDetRange,
}

func runDetRange(pkgs []*Package, report func(Diagnostic)) {
	for _, pkg := range pkgs {
		inScope := detRangeScope[pkg.Name]
		for _, file := range pkg.Files {
			ds := parseDirectives(pkg.Fset, file)
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					if inScope {
						checkMapRange(pkg, file, ds, n, report)
					}
				case *ast.Ident:
					checkGlobalRand(pkg, n, report)
				}
				return true
			})
		}
	}
}

func checkMapRange(pkg *Package, file *ast.File, ds directives, rs *ast.RangeStmt, report func(Diagnostic)) {
	tv, ok := pkg.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	pos := pkg.Fset.Position(rs.Pos())
	fd := enclosingFunc(file, rs.Pos())
	ok, unjustified := suppressed(ds, pkg.Fset, fd, pos.Line, "sorted")
	if ok {
		return
	}
	msg := "range over map in package " + pkg.Name + " (iteration order is nondeterministic); sort the keys or annotate //pgvet:sorted <why>"
	if unjustified {
		msg = "//pgvet:sorted annotation is missing its one-line justification"
	}
	report(Diagnostic{Pos: pos, Message: msg})
}

func checkGlobalRand(pkg *Package, id *ast.Ident, report func(Diagnostic)) {
	obj := pkg.Info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return
	}
	// Methods (rng.Intn on a seeded *rand.Rand) are deterministic; only
	// package-level functions reach the global source.
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	if randAllowed[fn.Name()] {
		return
	}
	report(Diagnostic{
		Pos: pkg.Fset.Position(id.Pos()),
		Message: "call to " + path + "." + fn.Name() +
			" uses the global rand source (nondeterministic under concurrency); seed a *rand.Rand via rand.New(rand.NewSource(seed)) instead",
	})
}
