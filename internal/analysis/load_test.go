package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckMissingExportData pins the failure mode when an import's
// export data is unavailable: a clean error naming the package, not a
// nil dereference inside the importer.
func TestCheckMissingExportData(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", "package x\n\nimport \"sync\"\n\nvar Mu sync.Mutex\n", parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Check(fset, "x", []*ast.File{f}, exportImporter(fset, map[string]string{}))
	if err == nil {
		t.Fatal("expected an error for missing export data")
	}
	if !strings.Contains(err.Error(), "sync") {
		t.Errorf("error does not name the missing package: %v", err)
	}
}

// TestLoadCacheHit proves the go-list metadata cache round-trips: an
// unchanged tree resolves from cache on the second load.
func TestLoadCacheHit(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module cachefix\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "a.go"), "package a\n\nfunc A() int { return 1 }\n")
	t.Setenv("PGVET_NOCACHE", "")
	if os.Getenv("PGVET_NOCACHE") != "" {
		t.Fatal("PGVET_NOCACHE leaked into the test environment")
	}

	if _, _, err := LoadWithStats(dir, "./..."); err != nil {
		t.Fatalf("first load: %v", err)
	}
	pkgs, stats, err := LoadWithStats(dir, "./...")
	if err != nil {
		t.Fatalf("second load: %v", err)
	}
	if !stats.CacheHit {
		t.Error("second load over an unchanged tree did not hit the metadata cache")
	}
	if stats.Packages != 1 || len(pkgs) != 1 {
		t.Errorf("loaded %d packages (stats %d), want 1", len(pkgs), stats.Packages)
	}

	// Touching a source file must invalidate the fingerprint.
	writeFile(t, filepath.Join(dir, "a.go"), "package a\n\nfunc A() int { return 2 }\n")
	_, stats, err = LoadWithStats(dir, "./...")
	if err != nil {
		t.Fatalf("third load: %v", err)
	}
	if stats.CacheHit {
		t.Error("load after an edit reused stale cached metadata")
	}
}

// TestLoadCachePatternOutsideDir pins the fingerprint's coverage of
// filesystem-path patterns that resolve outside the load directory: a
// file added at the module root must invalidate a cache entry keyed
// from a subdirectory with a ../... pattern (the real-world shape is
// `go test ./cmd/pgvet` running the suite over the whole repo).
func TestLoadCachePatternOutsideDir(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "sub")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(root, "go.mod"), "module cachefix\n\ngo 1.24\n")
	writeFile(t, filepath.Join(root, "a.go"), "package a\n\nfunc A() int { return 1 }\n")
	writeFile(t, filepath.Join(sub, "sub.go"), "package sub\n\nfunc S() int { return 1 }\n")
	t.Setenv("PGVET_NOCACHE", "")

	if _, _, err := LoadWithStats(sub, "./...", "../..."); err != nil {
		t.Fatalf("first load: %v", err)
	}
	_, stats, err := LoadWithStats(sub, "./...", "../...")
	if err != nil {
		t.Fatalf("second load: %v", err)
	}
	if !stats.CacheHit {
		t.Error("second load over an unchanged tree did not hit the metadata cache")
	}

	// A brand-new file outside the load directory must miss the cache.
	writeFile(t, filepath.Join(root, "b.go"), "package a\n\nfunc B() int { return 2 }\n")
	_, stats, err = LoadWithStats(sub, "./...", "../...")
	if err != nil {
		t.Fatalf("third load: %v", err)
	}
	if stats.CacheHit {
		t.Error("load after adding a file outside the load dir reused stale cached metadata")
	}
	if stats.Packages != 2 {
		t.Errorf("loaded %d packages, want 2", stats.Packages)
	}
}
