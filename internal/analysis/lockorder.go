package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder is the interprocedural deadlock pass: it propagates mutex
// acquisitions through the call graph and reports (1) any cycle in the
// resulting lock-order graph — two call paths that acquire the same two
// locks in opposite orders, including the degenerate self-cycle of
// re-acquiring a held sync.Mutex — and (2) any path that acquires a lock
// owned by the core package while already holding a server- or obs-side
// lock. The boundary rule is the sharding guard: once pgserve fans out
// over shards, a handler that reaches core.Database's writer lock while
// pinning a server-side mutex is a deadlock waiting for two shards to
// cross. Runtime -race and the churn stress tests only see schedules that
// actually interleave; this pass sees every path.
//
// The model is a lexical abstract interpretation, the same shape as
// spanclose but whole-program: per function, acquisitions and call sites
// are collected in source order with the locally-held set; a fixpoint then
// propagates held-at-entry sets over the call graph. Locks are identified
// by the same string keys as atomicmix fields ("pkgpath.Type.field" for
// mutex fields, scope-qualified names for variables), so an acquisition in
// a source-loaded package and a call from an export-data-loaded view of it
// agree. `defer mu.Unlock()` keeps the lock held to function end — which
// is exactly right for ordering purposes. Goroutine bodies (`go func`)
// are separate roots with an empty held set: the launcher's locks are not
// held on the new goroutine's stack.
//
// Escape hatch: //pgvet:lockok <why> on the acquiring line removes that
// acquisition's edges from the order graph; the justification is
// mandatory.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "no lock-order cycles, and no core lock acquired while holding a server/obs lock",
	Run:  runLockOrder,
}

// lockRef identifies one lock: key for identity, display for messages,
// pkgName for the core/server/obs boundary rule.
type lockRef struct {
	key     string
	display string
	pkgName string
}

// lock event kinds, in the order they appear in a function's event stream.
const (
	evAcquire = iota
	evRelease
	evCall
)

type lockEvent struct {
	kind     int
	lock     lockRef  // evAcquire / evRelease
	callees  []string // evCall
	deferred bool     // evRelease inside a defer: held to function end
	pos      token.Pos
}

// lockFn is one function's event stream; goroutine bodies become synthetic
// entries (key "parent$goN") that the fixpoint treats as roots.
type lockFn struct {
	key    string
	node   *cgNode // declaring function's node (directives, position info)
	events []lockEvent
	goBody bool
}

func runLockOrder(pkgs []*Package, report func(Diagnostic)) {
	cg := buildCallGraph(pkgs)

	fns := map[string]*lockFn{}
	var keys []string
	for _, key := range cg.sortedKeys() {
		node := cg.node(key)
		for _, lf := range collectLockFns(node) {
			fns[lf.key] = lf
			keys = append(keys, lf.key)
		}
	}
	sort.Strings(keys)

	// Fixpoint: propagate the set of locks held at entry along call edges.
	// Goroutine bodies keep an empty entry set — they run on a new stack.
	heldAtEntry := map[string]map[string]lockRef{}
	for _, k := range keys {
		heldAtEntry[k] = map[string]lockRef{}
	}
	work := append([]string(nil), keys...)
	for len(work) > 0 {
		key := work[len(work)-1]
		work = work[:len(work)-1]
		lf := fns[key]
		held := cloneLocks(heldAtEntry[key])
		for _, ev := range lf.events {
			switch ev.kind {
			case evAcquire:
				held[ev.lock.key] = ev.lock
			case evRelease:
				if !ev.deferred {
					delete(held, ev.lock.key)
				}
			case evCall:
				for _, callee := range ev.callees {
					target, ok := fns[callee]
					if !ok || target.goBody {
						continue
					}
					entry := heldAtEntry[callee]
					grew := false
					for k, l := range held {
						if _, have := entry[k]; !have {
							entry[k] = l
							grew = true
						}
					}
					if grew {
						work = append(work, callee)
					}
				}
			}
		}
	}

	// Final replay: collect order edges and report the immediate findings
	// (re-entry, boundary violations) at their acquisition sites.
	type lockEdge struct {
		from, to lockRef
		pos      token.Pos
		node     *cgNode
	}
	edges := map[string]*lockEdge{}
	var edgeKeys []string
	reported := map[string]bool{}
	for _, key := range keys {
		lf := fns[key]
		held := cloneLocks(heldAtEntry[key])
		for _, ev := range lf.events {
			switch ev.kind {
			case evAcquire:
				line := lf.node.pkg.Fset.Position(ev.pos).Line
				ds := fileDirectives(lf.node.pkg, ev.pos)
				if ok, unjustified := suppressed(ds, lf.node.pkg.Fset, lf.node.decl, line, "lockok"); ok {
					held[ev.lock.key] = ev.lock
					continue
				} else if unjustified {
					rk := "just:" + lf.node.pkg.Fset.Position(ev.pos).String()
					if !reported[rk] {
						reported[rk] = true
						report(Diagnostic{Pos: lf.node.pkg.Fset.Position(ev.pos),
							Message: "//pgvet:lockok annotation is missing its one-line justification"})
					}
					held[ev.lock.key] = ev.lock
					continue
				}
				if _, re := held[ev.lock.key]; re {
					rk := "re:" + lf.node.pkg.Fset.Position(ev.pos).String()
					if !reported[rk] {
						reported[rk] = true
						report(Diagnostic{Pos: lf.node.pkg.Fset.Position(ev.pos),
							Message: "lock " + ev.lock.display + " acquired while already held on this path (sync mutexes are not reentrant)"})
					}
				}
				for _, h := range sortedLocks(held) {
					if h.key == ev.lock.key {
						continue
					}
					if isServerSide(h.pkgName) && ev.lock.pkgName == "core" {
						rk := "bound:" + lf.node.pkg.Fset.Position(ev.pos).String() + "|" + h.key
						if !reported[rk] {
							reported[rk] = true
							report(Diagnostic{Pos: lf.node.pkg.Fset.Position(ev.pos),
								Message: "core lock " + ev.lock.display + " acquired while holding " + h.pkgName + "-side lock " + h.display +
									" (deadlock-by-construction once shards fan out); release it first or annotate //pgvet:lockok <why>"})
						}
					}
					ek := h.key + "->" + ev.lock.key
					if _, ok := edges[ek]; !ok {
						edges[ek] = &lockEdge{from: h, to: ev.lock, pos: ev.pos, node: lf.node}
						edgeKeys = append(edgeKeys, ek)
					}
				}
				held[ev.lock.key] = ev.lock
			case evRelease:
				if !ev.deferred {
					delete(held, ev.lock.key)
				}
			}
		}
	}

	// Cycle detection over the lock-order graph: any strongly connected
	// component with two or more locks means two paths disagree on order.
	adj := map[string][]string{}
	inGraph := map[string]lockRef{}
	sort.Strings(edgeKeys)
	for _, ek := range edgeKeys {
		e := edges[ek]
		adj[e.from.key] = append(adj[e.from.key], e.to.key)
		inGraph[e.from.key] = e.from
		inGraph[e.to.key] = e.to
	}
	sccOf := stronglyConnected(inGraph, adj)
	members := map[int][]string{}
	for k, id := range sccOf { //pgvet:sorted member lists are sorted before use
		members[id] = append(members[id], k)
	}
	for _, ek := range edgeKeys {
		e := edges[ek]
		if sccOf[e.from.key] != sccOf[e.to.key] {
			continue
		}
		cycle := members[sccOf[e.from.key]]
		if len(cycle) < 2 {
			continue
		}
		sort.Strings(cycle)
		var names []string
		for _, k := range cycle {
			names = append(names, inGraph[k].display)
		}
		report(Diagnostic{Pos: e.node.pkg.Fset.Position(e.pos),
			Message: "acquiring " + e.to.display + " while holding " + e.from.display +
				" creates a lock-order cycle among {" + strings.Join(names, ", ") + "}; pick one order or annotate //pgvet:lockok <why>"})
	}
}

// collectLockFns walks one declaration into its event stream plus one
// synthetic stream per `go func` body found inside it (recursively).
func collectLockFns(node *cgNode) []*lockFn {
	main := &lockFn{key: node.key, node: node}
	out := []*lockFn{main}
	var walk func(root ast.Node, into *lockFn)
	walk = func(root ast.Node, into *lockFn) {
		deferCalls := map[*ast.CallExpr]bool{}
		goLits := map[*ast.FuncLit]bool{}
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				deferCalls[n.Call] = true
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					goLits[lit] = true
				}
			}
			return true
		})
		ast.Inspect(root, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && goLits[lit] && n != root {
				sub := &lockFn{key: into.key + "$go" + itoa(len(out)), node: node, goBody: true}
				out = append(out, sub)
				walk(lit.Body, sub)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lock, acquire, isLock := lockCall(node.pkg, call); isLock {
				kind := evRelease
				if acquire {
					kind = evAcquire
				}
				into.events = append(into.events, lockEvent{
					kind: kind, lock: lock, deferred: deferCalls[call], pos: call.Pos(),
				})
				return true
			}
			if callees := node.pkg.callees(call); len(callees) > 0 {
				into.events = append(into.events, lockEvent{kind: evCall, callees: callees, pos: call.Pos()})
			}
			return true
		})
	}
	walk(main.node.decl, main)
	return out
}

// callees resolves a call site to target keys without CHA (static calls
// only): the event streams need the same resolution the call graph uses
// for static calls, and interface dispatch is handled conservatively by
// not propagating held sets through it.
func (pkg *Package) callees(call *ast.CallExpr) []string {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
		return nil
	}
	return []string{funcKey(fn)}
}

// lockCall classifies call as a sync.Mutex/RWMutex (R)Lock or (R)Unlock on
// an identifiable lock, returning the lock and whether it acquires.
func lockCall(pkg *Package, call *ast.CallExpr) (lockRef, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockRef{}, false, false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockRef{}, false, false
	}
	var acquire bool
	switch fn.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockRef{}, false, false
	}
	lock := lockRefOf(pkg, sel.X)
	if lock.key == "" {
		return lockRef{}, false, false
	}
	return lock, acquire, true
}

// lockRefOf identifies the lock named by the receiver expression of a
// (R)Lock/(R)Unlock call: struct fields key like atomicmix fields,
// package-level vars by path-qualified name, locals by declaration site.
func lockRefOf(pkg *Package, expr ast.Expr) lockRef {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if key := fieldKey(pkg, e); key != "" {
			named, _ := derefType(pkg.Info.Selections[e].Recv()).(*types.Named)
			return lockRef{key: key, display: shortKey(key), pkgName: named.Obj().Pkg().Name()}
		}
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil {
			key := obj.Pkg().Path() + "." + obj.Name()
			return lockRef{key: key, display: obj.Pkg().Name() + "." + obj.Name(), pkgName: obj.Pkg().Name()}
		}
	case *ast.Ident:
		obj, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return lockRef{}
		}
		if obj.Parent() == obj.Pkg().Scope() {
			key := obj.Pkg().Path() + "." + obj.Name()
			return lockRef{key: key, display: obj.Pkg().Name() + "." + obj.Name(), pkgName: obj.Pkg().Name()}
		}
		// Function-local lock: one lock per declaration site.
		p := pkg.Fset.Position(obj.Pos())
		key := obj.Pkg().Path() + "." + obj.Name() + "@" + itoa(p.Line)
		return lockRef{key: key, display: obj.Name() + " (local, " + obj.Pkg().Name() + ")", pkgName: obj.Pkg().Name()}
	}
	return lockRef{}
}

// shortKey renders "full/pkg/path.Type.field" as "pkg.Type.field".
func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// isServerSide reports locks owned by the serving layers for the boundary
// rule: holding one of these while taking a core lock inverts the
// designed core→outward order.
func isServerSide(pkgName string) bool { return pkgName == "server" || pkgName == "obs" }

func cloneLocks(m map[string]lockRef) map[string]lockRef {
	c := make(map[string]lockRef, len(m))
	for k, v := range m { //pgvet:sorted analysis-internal state clone; diagnostics are sorted at the end
		c[k] = v
	}
	return c
}

func sortedLocks(m map[string]lockRef) []lockRef {
	keys := make([]string, 0, len(m))
	for k := range m { //pgvet:sorted keys are sorted on the next line
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockRef, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// fileDirectives parses the //pgvet: annotations of the file containing
// pos, caching per package so replays stay cheap.
func fileDirectives(pkg *Package, pos token.Pos) directives {
	if pkg.dirCache == nil {
		pkg.dirCache = map[*ast.File]directives{}
	}
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			ds, ok := pkg.dirCache[f]
			if !ok {
				ds = parseDirectives(pkg.Fset, f)
				pkg.dirCache[f] = ds
			}
			return ds
		}
	}
	return directives{}
}

// stronglyConnected is Tarjan's algorithm over the lock-order graph,
// returning a component id per node key.
func stronglyConnected(nodes map[string]lockRef, adj map[string][]string) map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, ncomp := 0, 0

	keys := make([]string, 0, len(nodes))
	for k := range nodes { //pgvet:sorted keys are sorted on the next line
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			strongconnect(k)
		}
	}
	return comp
}
