package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicMix enforces access-mode consistency for sync/atomic: once any
// code touches a struct field through an atomic.* function, every other
// access to that field — in any package — must be atomic too. A single
// plain read racing an atomic write is still a data race; it just hides
// from casual review because "most" accesses look disciplined. The
// generation counters and the obs registry's live-span gauge are the
// fields this protects here.
//
// The pass runs in two sweeps over the whole loaded program: the first
// collects facts — fields passed by address to a sync/atomic function —
// keyed by (package, type, field) so facts survive the source-vs-export
// object-identity split; the second flags every selector reaching one of
// those fields outside an atomic call. Intentional exceptions (a plain
// read inside a lock-held section, a constructor before publication) are
// annotated //pgvet:nonatomic <why>.
//
// Fields of the typed atomic.Int64/Uint64/... wrappers need no analysis:
// their API makes non-atomic access unrepresentable, which is also why
// they are the preferred fix for any finding from this pass.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic anywhere is never accessed non-atomically elsewhere",
	Run:  runAtomicMix,
}

func runAtomicMix(pkgs []*Package, report func(Diagnostic)) {
	// Sweep 1: collect atomically-accessed fields and remember the exact
	// selector nodes that appear inside atomic calls, so sweep 2 can skip
	// them.
	facts := map[string]bool{}        // "pkgpath.Type.field" -> accessed atomically somewhere
	atomicUses := map[ast.Node]bool{} // selector nodes consumed by atomic calls
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg, call) {
					return true
				}
				for _, arg := range call.Args {
					sel := addressedField(arg)
					if sel == nil {
						continue
					}
					atomicUses[sel] = true
					if key := fieldKey(pkg, sel); key != "" {
						facts[key] = true
					}
				}
				return true
			})
		}
	}
	if len(facts) == 0 {
		return
	}

	// Sweep 2: any other selector reaching a fact field is a finding.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ds := parseDirectives(pkg.Fset, file)
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicUses[sel] {
					return true
				}
				key := fieldKey(pkg, sel)
				if key == "" || !facts[key] {
					return true
				}
				pos := pkg.Fset.Position(sel.Pos())
				fd := enclosingFunc(file, sel.Pos())
				if ok, unjustified := suppressed(ds, pkg.Fset, fd, pos.Line, "nonatomic"); ok {
					return true
				} else if unjustified {
					report(Diagnostic{Pos: pos, Message: "//pgvet:nonatomic annotation is missing its one-line justification"})
					return true
				}
				report(Diagnostic{Pos: pos, Message: "field " + key +
					" is accessed via sync/atomic elsewhere; this plain access races with it (use atomic loads/stores, or //pgvet:nonatomic <why>)"})
				return true
			})
		}
	}
}

// isAtomicCall reports calls to package-level functions of sync/atomic.
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addressedField unwraps &x.f (the shape every pointer-taking atomic.*
// function is called with) to the field selector.
func addressedField(arg ast.Expr) *ast.SelectorExpr {
	ue, ok := arg.(*ast.UnaryExpr)
	if !ok {
		return nil
	}
	sel, _ := ue.X.(*ast.SelectorExpr)
	return sel
}

// fieldKey names a struct-field selector as "pkgpath.Type.field", or ""
// when sel is not a field of a named struct type. String keys rather
// than types.Object identity: the same field is a different Object when
// its package is loaded from source versus from export data.
func fieldKey(pkg *Package, sel *ast.SelectorExpr) string {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || !field.IsField() || field.Pkg() == nil {
		return ""
	}
	named, ok := derefType(s.Recv()).(*types.Named)
	if !ok {
		return ""
	}
	return field.Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
}
