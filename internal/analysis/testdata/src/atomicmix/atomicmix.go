// Package atomicmix is the atomicmix golden fixture: one field accessed
// both ways (a race), one consistently atomic, one with a documented
// exception.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

// Counter mixes access modes on n, keeps m consistent, and reads g under
// an annotated exception.
type Counter struct {
	mu sync.Mutex
	n  int64
	m  int64
	g  int64
}

// Inc is the atomic side of every field.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
	atomic.AddInt64(&c.m, 1)
	c.mu.Lock()
	atomic.AddInt64(&c.g, 1)
	c.mu.Unlock()
}

// Read races: a plain load of a field written through sync/atomic.
func (c *Counter) Read() int64 {
	return c.n // want "accessed via sync/atomic elsewhere"
}

// ReadAtomic is the consistent counterpart — clean.
func (c *Counter) ReadAtomic() int64 {
	return atomic.LoadInt64(&c.m)
}

// ReadLocked carries a justified exception for its plain access.
func (c *Counter) ReadLocked() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	//pgvet:nonatomic fixture: mu is held by every writer of g, so this read cannot race
	return c.g
}
