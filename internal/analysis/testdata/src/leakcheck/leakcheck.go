// Package leakcheck is the leakcheck golden fixture: a leaked launch for
// the literal and the named-function form, one passing launch per
// accepted termination evidence, and a documented process-lifetime
// exception.
package leakcheck

import (
	"context"
	"sync"
)

// LeakRange launches a ranger over a channel nothing ever closes.
func LeakRange(ch chan int) {
	go func() { // want "no provable termination path"
		for range ch {
		}
	}()
}

// spin receives forever; it is the target of LeakNamed.
func spin(ch chan int) {
	for {
		<-ch
	}
}

// LeakNamed launches a declared function with no termination path.
func LeakNamed(ch chan int) {
	go spin(ch) // want "no provable termination path"
}

// WaitedOK pairs every Done with the Wait below — the worker-pool shape.
func WaitedOK(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// CtxOK ties the goroutine's lifetime to a cancelable context.
func CtxOK(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// ClosedOK drains a channel this function provably closes.
func ClosedOK(work []int) {
	ch := make(chan int)
	go func() {
		for range ch {
		}
	}()
	for _, w := range work {
		ch <- w
	}
	close(ch)
}

// Forever runs for the process lifetime on purpose.
//
//pgvet:leakok fixture: accept-loop runs for the process lifetime by design
func Forever(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}
