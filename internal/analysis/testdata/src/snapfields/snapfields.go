// Package snapfields is the snapfields golden fixture: a serialized
// record whose binary encoder forgot one field, a load-derived field with
// a documented exception, and a text-only struct that stays out of scope.
package snapfields

import "fmt"

// sink models a snapshot section; the binary codec writes into it.
type sink struct{ buf []byte }

func (s *sink) u64(v uint64) { _ = v }
func (s *sink) str(v string) { _ = v }

// Record round-trips through both formats — almost.
type Record struct {
	ID   uint64
	Name string
	Skew uint64 // want "not referenced in the binary save codec path"
	//pgvet:nosnap fixture: cache is rebuilt from Name at load time
	Cache string
}

// Save writes the text form.
func (r *Record) Save() string {
	return fmt.Sprintf("%d %s %d", r.ID, r.Name, r.Skew)
}

// Load reads the text form.
func Load(line string) (*Record, error) {
	r := &Record{}
	if _, err := fmt.Sscanf(line, "%d %s %d", &r.ID, &r.Name, &r.Skew); err != nil {
		return nil, err
	}
	r.Cache = r.Name
	return r, nil
}

// EncodeBinary writes the binary form — and forgot Skew.
func (r *Record) EncodeBinary(s *sink) {
	s.u64(r.ID)
	s.str(r.Name)
}

// DecodeBinary reads the binary form.
func DecodeBinary(data []byte) *Record {
	r := &Record{}
	r.ID = uint64(len(data))
	r.Name = string(data)
	r.Skew = 0
	r.Cache = r.Name
	return r
}

// Header has no binary section at all, so it never enters scope: no
// finding for Version despite its two-path reference.
type Header struct{ Version int }

// SaveHeader writes the text-only header.
func SaveHeader(h *Header) string { return fmt.Sprintf("v%d", h.Version) }

// LoadHeader reads it back.
func LoadHeader() *Header { return &Header{Version: 3} }
