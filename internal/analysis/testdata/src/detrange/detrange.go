// Package core is the detrange golden fixture: the package is named
// after a query-path package so map iteration falls in scope, and it
// exercises both global and seeded math/rand use.
package core

import "math/rand"

// Sum ranges a map without a justification — a finding — and again with
// one — suppressed.
func Sum(m map[int]int) int {
	n := 0
	for _, v := range m { // want "range over map in package core"
		n += v
	}
	for _, v := range m { //pgvet:sorted addition is order-insensitive
		n += v
	}
	return n
}

// Draw uses the global source — a finding — then a seeded *rand.Rand,
// which is the sanctioned form.
func Draw() int {
	n := rand.Intn(10) // want "global rand source"
	r := rand.New(rand.NewSource(1))
	return n + r.Intn(10)
}

// Unjustified carries an annotation with no why, which is itself a
// finding: the justification is the point.
func Unjustified(m map[int]int) int {
	n := 0
	//pgvet:sorted
	for k := range m { // want "missing its one-line justification"
		n += k
	}
	return n
}
