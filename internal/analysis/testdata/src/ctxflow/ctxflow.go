// Package ctxflow is the ctxflow golden fixture: the X / XCtx sibling
// convention, context laundering, and the annotated detachment escape.
package ctxflow

import "context"

// Item is a result placeholder.
type Item struct{}

// QueryCtx is the context-bearing entry point.
func QueryCtx(ctx context.Context, n int) []Item { return make([]Item, n) }

// Query is the public wrapper shim. It receives no ctx, so it is out of
// the analyzer's scope by construction — wrappers need no annotation.
func Query(n int) []Item { return QueryCtx(context.Background(), n) }

// Launder receives a ctx and drops it twice over.
func Launder(ctx context.Context, n int) []Item {
	_ = context.Background() // want "discards the caller's context"
	return Query(n)          // want "call to Query drops this function's context; use QueryCtx"
}

// Flows passes its ctx on — clean.
func Flows(ctx context.Context, n int) []Item {
	return QueryCtx(ctx, n)
}

// Detached documents a deliberate detachment with a justification.
func Detached(ctx context.Context, n int) []Item {
	//pgvet:ctxbg fixture: the flusher must outlive the request that started it
	bg := context.Background()
	return QueryCtx(bg, n)
}
