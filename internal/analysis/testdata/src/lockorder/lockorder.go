// Package lockorder is the lockorder golden fixture: a two-lock cycle
// with one leg acquired through a helper (so the edge only exists
// interprocedurally), a reentrant acquisition, and a deliberate inversion
// with a documented exception.
package lockorder

import "sync"

var a, b sync.Mutex

// AcquireAB takes a then b — b through a helper, so the a→b edge is only
// visible once held sets propagate over the call graph.
func AcquireAB() {
	a.Lock()
	lockB()
	a.Unlock()
}

func lockB() {
	b.Lock() // want "acquiring lockorder.b while holding lockorder.a creates a lock-order cycle"
	b.Unlock()
}

// AcquireBA takes the same two locks in the opposite order.
func AcquireBA() {
	b.Lock()
	a.Lock() // want "acquiring lockorder.a while holding lockorder.b creates a lock-order cycle"
	defer a.Unlock()
	defer b.Unlock()
}

var m sync.Mutex

// Reenter acquires m twice on a single path; sync mutexes self-deadlock.
func Reenter() {
	m.Lock()
	m.Lock() // want "acquired while already held"
	m.Unlock()
	m.Unlock()
}

var c, d sync.Mutex

// AcquireCD establishes the intended c→d order.
func AcquireCD() {
	c.Lock()
	d.Lock()
	d.Unlock()
	c.Unlock()
}

// AcquireDC inverts it on purpose; the annotation removes the d→c edge
// and with it the would-be cycle.
func AcquireDC() {
	d.Lock()
	//pgvet:lockok fixture: startup-only path, never concurrent with AcquireCD
	c.Lock()
	c.Unlock()
	d.Unlock()
}
