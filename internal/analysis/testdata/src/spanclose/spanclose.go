// Package spanclose is the spanclose golden fixture. It carries a local
// stub of the obs span API: the analyzer keys off the Child/Root → Span
// shape, not the obs import path, exactly so fixtures and future
// observability packages are covered without configuration.
package spanclose

import "errors"

// Span mirrors obs.Span: Child opens, End/EndCount close.
type Span struct{ name string }

// Child opens a child span.
func (s Span) Child(name string) Span { return Span{name: name} }

// End closes the span.
func (s Span) End() {}

// EndCount closes the span with a count.
func (s Span) EndCount(n int64) {}

// Trace mirrors obs.Trace.
type Trace struct{}

// Root opens the root span.
func (t *Trace) Root(name string) Span { return Span{name: name} }

var errBoom = errors.New("boom")

// LeakOnError forgets sp on the error return path — the exact bug class
// the PR 7 sweep fixed.
func LeakOnError(parent Span, fail bool) error {
	sp := parent.Child("stage")
	if fail {
		return errBoom // want "span sp not closed on this return path"
	}
	sp.End()
	return nil
}

// ClosedEverywhere closes on both paths — clean.
func ClosedEverywhere(parent Span, fail bool) error {
	sp := parent.Child("stage")
	if fail {
		sp.End()
		return errBoom
	}
	sp.EndCount(1)
	return nil
}

// DeferClose closes via defer, covering every later path — clean.
func DeferClose(parent Span, fail bool) error {
	sp := parent.Child("stage")
	defer sp.End()
	if fail {
		return errBoom
	}
	return nil
}

// Transfer returns sp itself — ownership moves to the caller, clean.
func Transfer(parent Span) Span {
	sp := parent.Child("stage")
	return sp
}

// Annotated suppresses a known-open return with a justification.
func Annotated(parent Span, fail bool) error {
	sp := parent.Child("stage")
	if fail {
		//pgvet:spanok fixture: a registry sweep ends the span out of band
		return errBoom
	}
	sp.End()
	return nil
}

// LeakAtEnd falls off the end of the function with sp still open.
func LeakAtEnd(parent Span) {
	sp := parent.Child("stage") // want "span sp not closed before the function ends"
	_ = sp
}

// LoopLeak opens a span per iteration and only closes the last one after
// the loop — each iteration's span must close within the body.
func LoopLeak(parent Span, n int) {
	var sp Span
	for i := 0; i < n; i++ {
		sp = parent.Child("iter") // want "opened inside a loop is not closed within the loop body"
	}
	sp.End()
}

// carrier owns a span on behalf of a longer-lived operation.
type carrier struct {
	span Span
	name string
}

// TransferStruct hands the span to a carrier struct literal — ownership
// moves with the literal, same as returning the span directly; clean.
func TransferStruct(parent Span) carrier {
	sp := parent.Child("op")
	return carrier{span: sp, name: "op"}
}

// TransferStructAssign stores the span into a literal bound to a
// variable the function returns later; also clean.
func TransferStructAssign(parent Span) *carrier {
	sp := parent.Child("op")
	c := &carrier{span: sp}
	return c
}
