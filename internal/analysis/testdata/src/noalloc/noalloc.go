// Package noalloc is the noalloc golden fixture: every banned construct
// once, the clean hot-path shapes, and the line-level allocok excuse.
package noalloc

import "fmt"

// sink accepts boxed values.
type sink interface{ Put(v any) }

// Sprint concentrates the banned constructs.
//
//pgvet:noalloc
func Sprint(x int, s, t string) string {
	msg := fmt.Sprintf("%d", x) // want "fmt.Sprintf call"
	u := s + t                  // want "string concatenation"
	b := []byte(s)              // want "conversion"
	_ = b
	return msg + u // want "string concatenation"
}

// Hot is the sanctioned hot-path shape: reslice re-use and self-append.
//
//pgvet:noalloc
func Hot(dst []int, src []int) []int {
	dst = dst[:0]
	for _, v := range src {
		dst = append(dst, v)
	}
	return dst
}

// Grow appends into a different slice than its source, defeating the
// caller's capacity hint.
//
//pgvet:noalloc
func Grow(src []int) []int {
	out := append(src, 1) // want "append into a different slice"
	return out
}

// Each builds a closure over sum — a heap-allocated environment.
//
//pgvet:noalloc
func Each(xs []int) int {
	sum := 0
	f := func(v int) { sum += v } // want "closure capturing sum"
	for _, v := range xs {
		f(v)
	}
	return sum
}

// Box passes a concrete int where an interface is expected; the pointer
// is pointer-shaped and boxes for free.
//
//pgvet:noalloc
func Box(s sink, v int, p *int) {
	s.Put(v) // want "interface boxing of int"
	s.Put(p)
}

// ColdPath excuses one allocating line with a justification.
//
//pgvet:noalloc
func ColdPath(err error) string {
	if err != nil {
		//pgvet:allocok cold error path, never taken per-candidate
		return fmt.Sprintf("noalloc: %v", err)
	}
	return ""
}

// Unannotated is not under the contract; nothing here is flagged.
func Unannotated(s, t string) string { return s + t }

// Pool is generic; the contract attaches to its annotated method exactly
// as it does to a plain method — type parameters change nothing.
type Pool[T any] struct{ items []T }

//pgvet:noalloc
func (p *Pool[T]) Describe(prefix string) string {
	return prefix + "pool" // want "string concatenation"
}
