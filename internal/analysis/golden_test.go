package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// stdExports lists export data for the stdlib packages the fixtures
// import (plus their dependency closure), once per test binary.
var stdExports = sync.OnceValues(func() (map[string]string, error) {
	_, exports, err := listPackages(".", "context", "errors", "fmt", "math/rand", "sync", "sync/atomic")
	return exports, err
})

// wantRe matches the golden expectation comments: // want "regexp"
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// TestGolden runs each analyzer alone over its fixture package under
// testdata/src/<name> and checks the findings against the // want
// comments, in both directions: every want must be hit, and every
// diagnostic must be wanted. The fixtures double as the acceptance
// demonstration — each contains at least one true positive and one
// justified-annotation suppression.
func TestGolden(t *testing.T) {
	exports, err := stdExports()
	if err != nil {
		t.Fatalf("listing stdlib export data: %v", err)
	}
	for _, a := range Analyzers {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name)
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatalf("fixture dir: %v", err)
			}
			fset := token.NewFileSet()
			var files []*ast.File
			var wants []*expectation
			for _, e := range entries {
				if !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				path := filepath.Join(dir, e.Name())
				f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
				if err != nil {
					t.Fatalf("parsing fixture: %v", err)
				}
				files = append(files, f)
				wants = append(wants, parseWants(t, fset, f)...)
			}
			pkg, err := Check(fset, a.Name, files, exportImporter(fset, exports))
			if err != nil {
				t.Fatalf("type-checking fixture: %v", err)
			}
			var diags []Diagnostic
			a.Run([]*Package{pkg}, func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			})
			for _, d := range diags {
				if w := matchWant(wants, d); w != nil {
					w.matched = true
					continue
				}
				t.Errorf("unexpected diagnostic: %s", d)
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: want %q, but the analyzer reported nothing matching it", w.file, w.line, w.pattern)
				}
			}
			if len(wants) == 0 {
				t.Errorf("fixture for %s has no // want expectations", a.Name)
			}
		})
	}
}

func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("bad want pattern %q: %v", m[1], err)
			}
			pos := fset.Position(c.Pos())
			wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
		}
	}
	return wants
}

func matchWant(wants []*expectation, d Diagnostic) *expectation {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// TestGoldenSuppressionsPresent keeps the fixtures honest about their
// second job: each must demonstrate at least one justified annotation
// that the matching analyzer stays silent about.
func TestGoldenSuppressionsPresent(t *testing.T) {
	annotations := map[string]string{
		"detrange":   "//pgvet:sorted ",
		"spanclose":  "//pgvet:spanok ",
		"ctxflow":    "//pgvet:ctxbg ",
		"noalloc":    "//pgvet:allocok ",
		"atomicmix":  "//pgvet:nonatomic ",
		"lockorder":  "//pgvet:lockok ",
		"leakcheck":  "//pgvet:leakok ",
		"snapfields": "//pgvet:nosnap ",
	}
	for _, a := range Analyzers {
		src, err := os.ReadFile(filepath.Join("testdata", "src", a.Name, a.Name+".go"))
		if err != nil {
			t.Fatalf("%s fixture: %v", a.Name, err)
		}
		if !strings.Contains(string(src), annotations[a.Name]) {
			t.Errorf("%s fixture demonstrates no justified %q suppression", a.Name, strings.TrimSpace(annotations[a.Name]))
		}
	}
}
