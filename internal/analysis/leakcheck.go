package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LeakCheck audits every `go` launch site for a provable termination path,
// the static half of the goroutine-baseline assertions in core's ctx
// tests (which can only count goroutines on exercised schedules). A
// launch passes when its body shows at least one accepted shape:
//
//   - it watches a context — any reference to a context.Context value
//     (ctx.Done(), ctx.Err(), deriving a child) ties its lifetime to a
//     cancelable tree;
//   - it signals a WaitGroup — the body calls Done on a WaitGroup that
//     some function in the same package Waits on (the pool/topk worker
//     pattern);
//   - it drains a closable channel — the body ranges over or receives
//     from a channel that the same package provably closes (the
//     watcher/stopWatch pattern in core/topk.go).
//
// Channels and WaitGroups are matched the way the other passes match
// identities: by types.Object for locals (closure captures included) and
// by atomicmix-style field keys for struct fields, so the evidence search
// spans the whole package, not just the launching function.
//
// A goroutine that is deliberately process-lifetime (a pprof listener, an
// accept loop) carries //pgvet:leakok <why> on the launch line or the
// launching function; the justification is mandatory.
var LeakCheck = &Analyzer{
	Name: "leakcheck",
	Doc:  "every `go` launch site has a provable termination path or a justified //pgvet:leakok",
	Run:  runLeakCheck,
}

func runLeakCheck(pkgs []*Package, report func(Diagnostic)) {
	cg := buildCallGraph(pkgs)
	for _, pkg := range pkgs {
		closed, waited := packageTerminationFacts(pkg)
		for _, file := range pkg.Files {
			ds := parseDirectives(pkg.Fset, file)
			f := file
			ast.Inspect(file, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pkg, cg, f, ds, gs, closed, waited, report)
				return true
			})
		}
	}
}

// chanOrWgKey identifies a channel or WaitGroup across a package:
// a types.Object for variables, an atomicmix-style field key string for
// struct fields. The two spaces cannot collide.
func chanOrWgKey(pkg *Package, expr ast.Expr) any {
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[e]; obj != nil {
			return obj
		}
		if obj := pkg.Info.Defs[e]; obj != nil {
			return obj
		}
	case *ast.SelectorExpr:
		if key := fieldKey(pkg, e); key != "" {
			return key
		}
	}
	return nil
}

// packageTerminationFacts scans every declaration in pkg for the two
// package-level termination signals: channels passed to close(), and
// WaitGroups some function calls Wait() on.
func packageTerminationFacts(pkg *Package) (closed, waited map[any]bool) {
	closed = map[any]bool{}
	waited = map[any]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) == 1 {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					if key := chanOrWgKey(pkg, call.Args[0]); key != nil {
						closed[key] = true
					}
				}
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if isWaitGroupExpr(pkg, sel.X) {
					if key := chanOrWgKey(pkg, sel.X); key != nil {
						waited[key] = true
					}
				}
			}
			return true
		})
	}
	return closed, waited
}

func isWaitGroupExpr(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := derefType(tv.Type).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func checkGoStmt(pkg *Package, cg *callGraph, file *ast.File, ds directives,
	gs *ast.GoStmt, closed, waited map[any]bool, report func(Diagnostic)) {
	pos := pkg.Fset.Position(gs.Pos())
	fd := enclosingFunc(file, gs.Pos())
	if ok, unjustified := suppressed(ds, pkg.Fset, fd, pos.Line, "leakok"); ok {
		return
	} else if unjustified {
		report(Diagnostic{Pos: pos, Message: "//pgvet:leakok annotation is missing its one-line justification"})
		return
	}

	// The body under audit: the launched literal, or the declaration of
	// the named function being launched. Evidence for a named launch is
	// still judged against the *launching* package's close/Wait facts when
	// the callee is in the same package; a cross-package named launch is
	// audited against its own package if it is loaded.
	var body ast.Node
	evPkg := pkg
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn := calleeFunc(pkg, gs.Call); fn != nil {
			if node := cg.node(funcKey(fn)); node != nil {
				body = node.decl.Body
				evPkg = node.pkg
			}
		}
	}
	if body == nil {
		report(Diagnostic{Pos: pos, Message: "goroutine launches a function pgvet cannot see into; " +
			"annotate //pgvet:leakok <why> or launch a declared function"})
		return
	}
	if evPkg != pkg {
		closed, waited = packageTerminationFacts(evPkg)
	}
	if goroutineTerminates(evPkg, body, closed, waited) {
		return
	}
	report(Diagnostic{Pos: pos, Message: "goroutine has no provable termination path " +
		"(no context watched, no WaitGroup.Done with a package-side Wait, no receive from a channel the package closes); " +
		"tie it to one or annotate //pgvet:leakok <why>"})
}

// goroutineTerminates scans body for any accepted termination evidence.
// Nested `go` bodies are skipped: a child goroutine's lifetime says
// nothing about its parent's.
func goroutineTerminates(pkg *Package, body ast.Node, closed, waited map[any]bool) bool {
	terminates := false
	skip := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				skip[lit.Body] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		if terminates || skip[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			// Evidence: the body references a context value.
			if obj := pkg.Info.Uses[n]; obj != nil && isContextType(derefType(obj.Type())) {
				terminates = true
			}
		case *ast.CallExpr:
			// Evidence: wg.Done() with a Wait on the same WaitGroup.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isWaitGroupExpr(pkg, sel.X) {
				if key := chanOrWgKey(pkg, sel.X); key != nil && waited[key] {
					terminates = true
				}
			}
		case *ast.UnaryExpr:
			// Evidence: <-ch where the package closes ch.
			if n.Op == token.ARROW {
				if key := chanOrWgKey(pkg, n.X); key != nil && closed[key] {
					terminates = true
				}
			}
		case *ast.RangeStmt:
			// Evidence: for range ch where the package closes ch.
			if tv, ok := pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if key := chanOrWgKey(pkg, n.X); key != nil && closed[key] {
						terminates = true
					}
				}
			}
		}
		return !terminates
	})
	return terminates
}
