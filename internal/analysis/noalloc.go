package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc audits functions annotated //pgvet:noalloc — the query hot
// path's zero-allocation contract, pinned at runtime by
// testing.AllocsPerRun. The runtime pins only see the branches a test
// exercises; this pass bans the allocating constructs on every branch:
//
//   - any fmt.* call (Sprintf and friends allocate; even Fprintf boxes
//     its operands);
//   - string concatenation with +, and string<->[]byte/[]rune
//     conversions (each copies);
//   - function literals that capture variables (closure environments are
//     heap-allocated; non-capturing literals are fine);
//   - append whose result is not assigned back to the slice appended to
//     (append into a fresh or foreign variable defeats the caller's
//     capacity hint and escapes);
//   - interface boxing: passing or assigning a concrete non-pointer
//     value where an interface is expected (pointers and interfaces
//     convert without allocating; everything else may not).
//
// make() is deliberately not banned: the hot-path pools grow their
// scratch with make on the cold path, and AllocsPerRun keeps that
// honest. Individual lines inside a noalloc function can be excused with
// //pgvet:allocok <why> (e.g. a cold error path).
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//pgvet:noalloc functions contain no allocating constructs on any branch",
	Run:  runNoAlloc,
}

func runNoAlloc(pkgs []*Package, report func(Diagnostic)) {
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ds := parseDirectives(pkg.Fset, file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if _, found := ds.onFunc(pkg.Fset, fd, "noalloc"); !found {
					continue
				}
				checkNoAlloc(pkg, ds, fd, report)
			}
		}
	}
}

type noallocChecker struct {
	pkg    *Package
	ds     directives
	fd     *ast.FuncDecl
	report func(Diagnostic)
}

func checkNoAlloc(pkg *Package, ds directives, fd *ast.FuncDecl, report func(Diagnostic)) {
	c := &noallocChecker{pkg: pkg, ds: ds, fd: fd, report: report}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.BinaryExpr:
			c.checkConcat(n)
		case *ast.FuncLit:
			c.checkClosure(n)
		case *ast.AssignStmt:
			c.checkAppend(n)
		}
		return true
	})
}

// flag reports a finding at pos unless excused by //pgvet:allocok <why>.
func (c *noallocChecker) flag(pos token.Pos, msg string) {
	p := c.pkg.Fset.Position(pos)
	// allocok is a line-level excuse only — checking the whole function
	// would let one annotation swallow every finding, defeating noalloc.
	if d, found := c.ds.at(p.Line, "allocok"); found {
		if d.arg != "" {
			return
		}
		c.report(Diagnostic{Pos: p, Message: "//pgvet:allocok annotation is missing its one-line justification"})
		return
	}
	c.report(Diagnostic{Pos: p, Message: msg + " in //pgvet:noalloc function " + c.fd.Name.Name})
}

func (c *noallocChecker) checkCall(call *ast.CallExpr) {
	// fmt.* — always allocates (boxing at minimum).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := c.pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			c.flag(call.Pos(), "fmt."+fn.Name()+" call")
			return
		}
	}
	// string([]byte) / []byte(string) / []rune(string) / string([]rune)
	// conversions copy.
	if tv, ok := c.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		atv, ok := c.pkg.Info.Types[call.Args[0]]
		if !ok || atv.Type == nil {
			return
		}
		src := atv.Type.Underlying()
		if isStringByteConversion(dst, src) {
			c.flag(call.Pos(), "string/byte-slice conversion (copies)")
			return
		}
	}
	// Interface boxing at call boundaries: a concrete non-pointer
	// argument passed to an interface parameter.
	c.checkBoxingArgs(call)
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isStringByteConversion(dst, src types.Type) bool {
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func (c *noallocChecker) checkConcat(be *ast.BinaryExpr) {
	if be.Op != token.ADD {
		return
	}
	tv, ok := c.pkg.Info.Types[be]
	if !ok || tv.Type == nil || !isString(tv.Type.Underlying()) {
		return
	}
	if tv.Value != nil {
		return // constant-folded at compile time; no runtime allocation
	}
	c.flag(be.Pos(), "string concatenation")
}

// checkClosure flags function literals that capture outer variables.
// A literal referencing only its own parameters and locals compiles to a
// plain function value and is allowed.
func (c *noallocChecker) checkClosure(lit *ast.FuncLit) {
	declared := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pkg.Info.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})
	var captured types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pkg.Info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || declared[obj] || v.IsField() {
			return true
		}
		// Package-level vars are not captured; only function-scoped ones.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if c.fd.Pos() <= v.Pos() && v.Pos() < lit.Pos() {
			captured = obj
		}
		return true
	})
	if captured != nil {
		c.flag(lit.Pos(), "closure capturing "+captured.Name()+" (heap-allocated environment)")
	}
}

// checkAppend flags `dst = append(src, ...)` where dst and src are not
// the same expression — appending into a different variable defeats
// amortized growth and makes the result escape its capacity hint. The
// allowed forms are x = append(x, ...) and x = append(x[:0], ...) (and
// the same through identical selector chains).
func (c *noallocChecker) checkAppend(as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if b, ok := c.pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	src := call.Args[0]
	// Strip a reslice: append(x[:0], ...) re-uses x's backing array.
	if sl, ok := src.(*ast.SliceExpr); ok {
		src = sl.X
	}
	if sameStorage(c.pkg, as.Lhs[0], src) {
		return
	}
	c.flag(as.Pos(), "append into a different slice than its source (defeats the capacity hint)")
}

// sameStorage reports whether two expressions name the same variable or
// the same selector chain off the same base.
func sameStorage(pkg *Package, a, b ast.Expr) bool {
	switch ae := a.(type) {
	case *ast.Ident:
		be, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		ao := identObj(pkg, ae)
		return ao != nil && ao == identObj(pkg, be)
	case *ast.SelectorExpr:
		be, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		ao := pkg.Info.Uses[ae.Sel]
		bo := pkg.Info.Uses[be.Sel]
		return ao != nil && ao == bo && sameStorage(pkg, ae.X, be.X)
	}
	return false
}

func identObj(pkg *Package, id *ast.Ident) types.Object {
	if o := pkg.Info.Uses[id]; o != nil {
		return o
	}
	return pkg.Info.Defs[id]
}

// checkBoxingArgs flags concrete, non-pointer-shaped values passed where
// an interface is expected — the conversion heap-allocates the value.
// Pointers, interfaces, channels, maps, funcs, and unsafe.Pointer are
// pointer-shaped and box for free.
func (c *noallocChecker) checkBoxingArgs(call *ast.CallExpr) {
	fn := calleeFunc(c.pkg, call)
	if fn == nil {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return // already flagged wholesale
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis != token.NoPos {
				continue // x... passes the slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := c.pkg.Info.Types[arg]
		if !ok || atv.Type == nil {
			continue
		}
		if atv.IsNil() || pointerShaped(atv.Type) {
			continue
		}
		c.flag(arg.Pos(), "interface boxing of "+atv.Type.String())
	}
}

func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
