package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SnapFields is the codec-parity pass: every exported field of a struct
// that the snapshot formats serialize must be referenced in all four codec
// paths — text save, text load, binary save, binary load (pgsnap v3 and
// v4 maintain the same sections side by side) — or carry a justified
// //pgvet:nosnap <why> on its declaration. It turns the "added a field,
// forgot one codec" bug from a fixture-replay failure into a vet-time
// diagnostic.
//
// The four paths are call-graph closures seeded by function name: a
// function whose name starts with Save/Encode (case-insensitive) roots a
// save path, Load/Decode a load path; a classified name containing
// "binary" selects the binary variant of either, anything else the text
// variant. Traversal from a root walks unclassified helpers freely but
// stops at any function classified into a *different* path — that cut is
// what keeps LoadDatabase's magic-sniffing dispatch into
// loadBinarySnapshot from folding the two load closures together (and
// SaveAs's format switch likewise). Field references are plain selector
// reads/writes plus composite-literal fields (keyed fields individually,
// positional literals touch every field).
//
// A struct is in scope when at least one of its exported fields is
// referenced in all four closures — that is what "serialized into a
// snapshot section" looks like statically, and it keeps single-format
// structs (the text-only dataset.DB header, server JSON bodies, build
// stats) out of scope. In-scope structs then owe every exported field to
// all four paths. Derived or runtime-only fields are the escape hatch's
// job: //pgvet:nosnap <why> on the field, justification mandatory.
var SnapFields = &Analyzer{
	Name: "snapfields",
	Doc:  "every exported field of a snapshot-serialized struct is referenced in all four codec paths",
	Run:  runSnapFields,
}

// codec path indices, in reporting order.
const (
	pTextSave = iota
	pTextLoad
	pBinSave
	pBinLoad
	nPaths
)

var pathNames = [nPaths]string{"text save", "text load", "binary save", "binary load"}

// classifyCodec maps a function name to its codec path. ok is false for
// unclassified helpers (which every traversal may walk through).
func classifyCodec(name string) (path int, ok bool) {
	lower := strings.ToLower(name)
	var save bool
	switch {
	case strings.HasPrefix(lower, "save"), strings.HasPrefix(lower, "encode"):
		save = true
	case strings.HasPrefix(lower, "load"), strings.HasPrefix(lower, "decode"):
		save = false
	default:
		return 0, false
	}
	if strings.Contains(lower, "binary") {
		if save {
			return pBinSave, true
		}
		return pBinLoad, true
	}
	if save {
		return pTextSave, true
	}
	return pTextLoad, true
}

func runSnapFields(pkgs []*Package, report func(Diagnostic)) {
	cg := buildCallGraph(pkgs)

	// The key's last segment is the function (not receiver) name; classify
	// every node once.
	pathOf := map[string]int{}
	classified := map[string]bool{}
	var roots [nPaths][]string
	for _, key := range cg.sortedKeys() {
		name := key[strings.LastIndex(key, ".")+1:]
		if p, ok := classifyCodec(name); ok {
			pathOf[key] = p
			classified[key] = true
			roots[p] = append(roots[p], key)
		}
	}

	// One closure per path; the cut stops traversal at nodes classified
	// into any other path.
	var refs [nPaths]map[string]bool
	for p := 0; p < nPaths; p++ {
		path := p
		closure := cg.closure(roots[p], func(key string) bool {
			return classified[key] && pathOf[key] != path
		})
		refs[p] = map[string]bool{}
		keys := make([]string, 0, len(closure))
		for k := range closure { //pgvet:sorted keys are sorted on the next line
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if node := cg.node(k); node != nil {
				collectFieldRefs(node, refs[p])
			}
		}
	}

	// Sweep every struct declared in the loaded packages: in scope when
	// some exported field appears in all four closures; then every
	// exported field owes all four or a justified //pgvet:nosnap.
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			inScope := false
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !f.Exported() {
					continue
				}
				key := structFieldKey(named, f)
				all := true
				for p := 0; p < nPaths; p++ {
					all = all && refs[p][key]
				}
				if all {
					inScope = true
					break
				}
			}
			if !inScope {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !f.Exported() {
					continue
				}
				key := structFieldKey(named, f)
				var missing []string
				for p := 0; p < nPaths; p++ {
					if !refs[p][key] {
						missing = append(missing, pathNames[p])
					}
				}
				if len(missing) == 0 {
					continue
				}
				pos := pkg.Fset.Position(f.Pos())
				ds := fileDirectives(pkg, f.Pos())
				if ok, unjustified := suppressed(ds, pkg.Fset, nil, pos.Line, "nosnap"); ok {
					continue
				} else if unjustified {
					report(Diagnostic{Pos: pos, Message: "//pgvet:nosnap annotation is missing its one-line justification"})
					continue
				}
				report(Diagnostic{Pos: pos, Message: "snapshot field " + shortKey(key) +
					" is not referenced in the " + strings.Join(missing, ", ") + " codec path(s); " +
					"round-trip it through all four or annotate //pgvet:nosnap <why>"})
			}
		}
	}
}

// structFieldKey renders a declared field in the same space fieldKey puts
// selector references: "pkgpath.Type.field".
func structFieldKey(named *types.Named, f *types.Var) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + f.Name()
}

// collectFieldRefs records every struct-field reference in node's body
// into out: selector reads/writes, keyed composite-literal fields, and —
// for positional composite literals — every field of the struct.
func collectFieldRefs(node *cgNode, out map[string]bool) {
	pkg := node.pkg
	ast.Inspect(node.decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if key := fieldKey(pkg, n); key != "" {
				out[key] = true
			}
		case *ast.CompositeLit:
			tv, ok := pkg.Info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			named, ok := derefType(tv.Type).(*types.Named)
			if !ok {
				return true
			}
			named = named.Origin()
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			keyed := false
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				keyed = true
				if id, ok := kv.Key.(*ast.Ident); ok {
					if named.Obj().Pkg() != nil {
						out[named.Obj().Pkg().Path()+"."+named.Obj().Name()+"."+id.Name] = true
					}
				}
			}
			if !keyed && len(n.Elts) > 0 {
				// Positional literal: every field is written.
				for i := 0; i < st.NumFields(); i++ {
					if key := structFieldKey(named, st.Field(i)); key != "" {
						out[key] = true
					}
				}
			}
		}
		return true
	})
}
