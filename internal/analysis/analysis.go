// Package analysis is pgvet's analyzer suite: a stdlib-only (go/ast,
// go/parser, go/types, go/importer — no x/tools) static-analysis driver
// plus eight project-specific passes that mechanically enforce invariants
// every PR so far has relied on but only runtime tests guarded:
//
//   - detrange:  determinism — no map iteration in query/render-path
//     packages without an order-insensitivity justification, and no
//     global math/rand state outside tests.
//   - spanclose: span hygiene — every obs span started in a function is
//     closed on every return path, error returns included.
//   - ctxflow:   context flow — a function that receives a
//     context.Context never launders it through context.Background() and
//     never calls the ctx-less variant of a callee that has one.
//   - noalloc:   zero-alloc contract — functions annotated
//     //pgvet:noalloc contain none of the allocating constructs the
//     AllocsPerRun pins can miss on unexercised branches.
//   - atomicmix: a struct field touched through sync/atomic anywhere is
//     never read or written non-atomically elsewhere.
//   - lockorder: no two call paths acquire the same mutexes in opposite
//     orders, no re-acquisition of a held mutex, and no core lock taken
//     while holding a server/obs lock (interprocedural, over the CHA
//     call graph in callgraph.go).
//   - leakcheck: every `go` launch site shows a provable termination
//     path — a watched context, a WaitGroup.Done with a package-side
//     Wait, or a receive from a channel the package closes.
//   - snapfields: every exported field of a snapshot-serialized struct
//     round-trips through all four codec paths (text/binary × save/load).
//
// Runtime tests (AllocsPerRun, the serial≡parallel identity properties,
// the cancel-closes-spans sweep, -race under churn) catch violations late
// and only on exercised paths; these passes catch them at vet time on all
// paths. Each pass has an explicit, justified escape hatch — an
// annotation comment of the form
//
//	//pgvet:<name> <one-line why>
//
// on the offending line, the line above it, or (for function-scoped
// directives) in the function's doc comment. Suppressions without a
// justification are themselves findings: the why is the point.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is one pass. Run receives every loaded package (passes that
// need whole-program facts, like atomicmix, see them all at once) and
// reports findings through report.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pkgs []*Package, report func(Diagnostic))
}

// Analyzers is the pgvet suite in execution order.
var Analyzers = []*Analyzer{
	DetRange,
	SpanClose,
	CtxFlow,
	NoAlloc,
	AtomicMix,
	LockOrder,
	LeakCheck,
	SnapFields,
}

// RunAnalyzers runs every analyzer over pkgs and returns the findings
// sorted by position.
func RunAnalyzers(pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range Analyzers {
		run := func(d Diagnostic) {
			d.Analyzer = a.Name
			report(d)
		}
		a.Run(pkgs, run)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// directive is one parsed //pgvet:<name> <arg> comment.
type directive struct {
	name string // e.g. "sorted", "noalloc"
	arg  string // the justification text, "" if absent
}

// directives indexes a file's pgvet annotations by the line they sit on.
type directives map[int][]directive

// parseDirectives collects every //pgvet: comment in file, keyed by line.
// One comment may carry several directives ("//pgvet:sorted why
// //pgvet:allocok why"): each introducer starts a new directive whose
// argument runs to the next introducer.
func parseDirectives(fset *token.FileSet, file *ast.File) directives {
	const introducer = "//pgvet:"
	ds := directives{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			line := fset.Position(c.Pos()).Line
			rest := c.Text
			for {
				i := strings.Index(rest, introducer)
				if i < 0 {
					break
				}
				rest = rest[i+len(introducer):]
				text := rest
				if j := strings.Index(text, introducer); j >= 0 {
					text = text[:j]
				}
				name, arg, _ := strings.Cut(text, " ")
				ds[line] = append(ds[line], directive{name: name, arg: strings.TrimSpace(arg)})
			}
		}
	}
	return ds
}

// at returns the named directive attached to a node at the given line:
// on the line itself (trailing comment) or the line directly above.
func (ds directives) at(line int, name string) (directive, bool) {
	for _, l := range []int{line, line - 1} {
		for _, d := range ds[l] {
			if d.name == name {
				return d, true
			}
		}
	}
	return directive{}, false
}

// onFunc returns the named directive scoped to a whole function: anywhere
// in its doc comment, or on the line directly above the declaration.
func (ds directives) onFunc(fset *token.FileSet, fd *ast.FuncDecl, name string) (directive, bool) {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			line := fset.Position(c.Pos()).Line
			for _, d := range ds[line] {
				if d.name == name {
					return d, true
				}
			}
		}
	}
	return ds.at(fset.Position(fd.Pos()).Line, name)
}

// suppressed reports whether a finding at node line `line` is covered by
// a justified (non-empty why) escape directive, either on the line or on
// the enclosing function. An unjustified directive does not suppress —
// the analyzers separately flag it as missing its why.
func suppressed(ds directives, fset *token.FileSet, fd *ast.FuncDecl, line int, name string) (ok, unjustified bool) {
	d, found := ds.at(line, name)
	if !found && fd != nil {
		d, found = ds.onFunc(fset, fd, name)
	}
	if !found {
		return false, false
	}
	return d.arg != "", d.arg == ""
}

// enclosingFunc returns the FuncDecl in file whose body spans pos, if any.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
