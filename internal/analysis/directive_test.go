package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// TestParseDirectivesTwoOnOneLine pins the multi-directive comment form:
// each introducer starts a fresh directive and its argument stops at the
// next introducer instead of swallowing it.
func TestParseDirectivesTwoOnOneLine(t *testing.T) {
	fset, f := parseOne(t, "package p\n\nvar x = 1 //pgvet:sorted keys are pre-sorted //pgvet:allocok cold path\n")
	ds := parseDirectives(fset, f)
	d, ok := ds.at(3, "sorted")
	if !ok || d.arg != "keys are pre-sorted" {
		t.Errorf("sorted directive = %+v (found=%v), want arg %q", d, ok, "keys are pre-sorted")
	}
	d, ok = ds.at(3, "allocok")
	if !ok || d.arg != "cold path" {
		t.Errorf("allocok directive = %+v (found=%v), want arg %q", d, ok, "cold path")
	}
}

// TestOnFuncGenericMethod pins directive scoping on a generic type's
// method: the annotation attaches to the declaration like any other
// method — type parameters change nothing about comment positions.
func TestOnFuncGenericMethod(t *testing.T) {
	fset, f := parseOne(t, `package p

type Pool[T any] struct{ items []T }

// Len reports the pool size.
//
//pgvet:noalloc
func (p *Pool[T]) Len() int { return len(p.items) }
`)
	ds := parseDirectives(fset, f)
	var fd *ast.FuncDecl
	for _, d := range f.Decls {
		if x, ok := d.(*ast.FuncDecl); ok {
			fd = x
		}
	}
	if fd == nil {
		t.Fatal("no method declaration parsed")
	}
	if _, ok := ds.onFunc(fset, fd, "noalloc"); !ok {
		t.Error("onFunc missed a directive in a generic method's doc comment")
	}
}
