package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The whole-program layer shared by the interprocedural passes (lockorder,
// leakcheck, snapfields): a class-hierarchy-analysis (CHA) call graph over
// every loaded package.
//
// Cross-package identity is the central design constraint. The same
// function is a different *types.Func depending on whether its package was
// type-checked from source (a target) or imported from export data (a
// dependency of another target), so nodes are keyed by strings —
// "pkgpath.Name" for functions, "pkgpath.Recv.Name" for methods — exactly
// the way atomicmix keys struct fields. Dynamic dispatch through an
// interface is resolved by CHA over the same string space: a call to an
// interface method adds edges to every concrete method in the loaded
// program with the same name and the same signature (printed with
// package-path qualification, which compares equal across the
// source/export-data divide where pointer identity would not).
//
// Function literals are inlined into their enclosing declaration: a call
// made inside a closure is an edge of the declaring function. That is the
// right model for the passes built on top — a closure runs on its
// creator's goroutine unless launched with `go`, and goroutine bodies get
// their own treatment in lockorder (separate roots with an empty held-lock
// set) and leakcheck (separate launch sites).

// cgCall is one static call site: the resolved callee keys (one for a
// static call, possibly several for an interface dispatch) at a position.
type cgCall struct {
	callees []string
	pos     token.Pos
}

// cgNode is one declared function or method in the loaded program.
type cgNode struct {
	key   string
	pkg   *Package
	decl  *ast.FuncDecl
	calls []cgCall // source order
}

// callGraph is the CHA call graph over a set of loaded packages.
type callGraph struct {
	nodes map[string]*cgNode
	// impls maps "name|signature" of a method to the keys of every
	// concrete method in the program matching it — the CHA dispatch table.
	impls map[string][]string
}

// funcKey returns the stable cross-package key for fn: "pkgpath.Name", or
// "pkgpath.Recv.Name" for a method on a named type. Generic instances
// share their origin's key.
func funcKey(fn *types.Func) string {
	fn = fn.Origin()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := derefType(sig.Recv().Type()).(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + obj.Name() + "." + fn.Name()
			}
			return obj.Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// pathQualifier qualifies type names with their full package path, so two
// renderings of the same signature compare equal even when the underlying
// types.Package pointers differ (source-loaded vs export-data-loaded).
func pathQualifier(p *types.Package) string { return p.Path() }

// methodSig renders fn's name and signature (receiver excluded) into the
// CHA dispatch key.
func methodSig(fn *types.Func) string {
	return fn.Name() + "|" + types.TypeString(fn.Type(), pathQualifier)
}

// buildCallGraph indexes every function declaration in pkgs and resolves
// its call sites.
func buildCallGraph(pkgs []*Package) *callGraph {
	cg := &callGraph{nodes: map[string]*cgNode{}, impls: map[string][]string{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(fn)
				cg.nodes[key] = &cgNode{key: key, pkg: pkg, decl: fd}
				if fd.Recv != nil {
					sig := methodSig(fn)
					cg.impls[sig] = append(cg.impls[sig], key)
				}
			}
		}
	}
	for _, node := range cg.nodes {
		n := node
		ast.Inspect(n.decl, func(an ast.Node) bool {
			call, ok := an.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callees := cg.resolveCallees(n.pkg, call); len(callees) > 0 {
				n.calls = append(n.calls, cgCall{callees: callees, pos: call.Pos()})
			}
			return true
		})
	}
	return cg
}

// resolveCallees maps a call expression to callee keys: the single static
// callee, or the CHA implementer set for an interface-method call. Calls
// through plain function values (and conversions, builtins) resolve to
// nothing — a known under-approximation shared with every CHA design.
func (cg *callGraph) resolveCallees(pkg *Package, call *ast.CallExpr) []string {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return cg.impls[methodSig(fn)]
		}
	}
	return []string{funcKey(fn)}
}

// node returns the declared node for key, or nil for functions outside the
// loaded program (stdlib, export-data-only dependencies).
func (cg *callGraph) node(key string) *cgNode { return cg.nodes[key] }

// sortedKeys returns every node key in deterministic order; the
// interprocedural passes iterate in this order so diagnostics and fixpoint
// tie-breaks never depend on map order.
func (cg *callGraph) sortedKeys() []string {
	keys := make([]string, 0, len(cg.nodes))
	for k := range cg.nodes { //pgvet:sorted keys are sorted on the next line
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// closure walks the graph from the given roots and returns every reachable
// node key, honoring a per-node cut predicate: when cut(key) reports true
// for a non-root node, traversal stops at (and excludes) it. snapfields
// uses the cut to keep, say, a text-load traversal from bleeding into the
// binary loader that LoadDatabase dispatches to after sniffing the magic.
func (cg *callGraph) closure(roots []string, cut func(key string) bool) map[string]bool {
	seen := map[string]bool{}
	stack := append([]string(nil), roots...)
	for _, r := range roots {
		seen[r] = true
	}
	for len(stack) > 0 {
		key := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := cg.nodes[key]
		if node == nil {
			continue
		}
		for _, c := range node.calls {
			for _, callee := range c.callees {
				if seen[callee] || cg.nodes[callee] == nil {
					continue
				}
				if cut != nil && cut(callee) {
					continue
				}
				seen[callee] = true
				stack = append(stack, callee)
			}
		}
	}
	return seen
}
