package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCleanOnRepo is the gate CI relies on: the full suite over the
// real module reports nothing. Any finding here means either a real
// contract violation slipped in or an annotation lost its justification.
func TestRunCleanOnRepo(t *testing.T) {
	diags, err := Run(filepath.Join("..", ".."), "./...")
	if err != nil {
		t.Fatalf("pgvet load: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// brokenFixture violates all eight contracts at once. It lives in a
// throwaway module so `go list` resolves it like any real target.
const brokenFixture = `// Package core deliberately violates every pgvet contract.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

type Span struct{ n string }

func (s Span) Child(name string) Span { return Span{n: name} }
func (s Span) End()                   {}

type counters struct{ hits int64 }

func RangeMap(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n + rand.Intn(10)
}

func LeakSpan(parent Span, fail bool) error {
	sp := parent.Child("stage")
	if fail {
		return fmt.Errorf("boom")
	}
	sp.End()
	return nil
}

func Launder(ctx context.Context) context.Context {
	return context.Background()
}

//pgvet:noalloc
func Format(x int) string {
	return fmt.Sprintf("%d", x)
}

func Mixed(c *counters) int64 {
	atomic.AddInt64(&c.hits, 1)
	return c.hits
}

var muA, muB sync.Mutex

func OrderAB() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func OrderBA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

var dbMu sync.Mutex

func Mutate() {
	dbMu.Lock()
	dbMu.Unlock()
}

var leakCh = make(chan int)

func SpawnLeak() {
	go func() {
		for range leakCh {
		}
	}()
}

type Sink struct{ n int64 }

func (s *Sink) put(v int64) { s.n += v }

type Rec struct {
	A int64
	B int64
}

func (r *Rec) Save() string { return fmt.Sprintf("%d %d", r.A, r.B) }

func LoadRec(s string) *Rec {
	r := &Rec{}
	fmt.Sscanf(s, "%d %d", &r.A, &r.B)
	return r
}

func (r *Rec) EncodeBinary(s *Sink) { s.put(r.A) }

func DecodeRecBinary(v int64) *Rec { return &Rec{A: v, B: v} }
`

// brokenServerFixture holds a server-side lock across a call into the
// core package, tripping lockorder's cross-package boundary rule.
const brokenServerFixture = `// Package server holds its own lock across a call into core.
package server

import (
	"sync"

	core "fixture"
)

var mu sync.Mutex

func Handle() {
	mu.Lock()
	core.Mutate()
	mu.Unlock()
}
`

// TestRunFlagsBrokenFixture proves the non-zero-exit half of the driver
// contract: a module violating each invariant produces at least one
// finding from every analyzer.
func TestRunFlagsBrokenFixture(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fixture\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "core.go"), brokenFixture)
	if err := os.MkdirAll(filepath.Join(dir, "server"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, filepath.Join(dir, "server", "server.go"), brokenServerFixture)

	diags, err := Run(dir, "./...")
	if err != nil {
		t.Fatalf("pgvet load: %v", err)
	}
	byAnalyzer := map[string]int{}
	boundary := false
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
		if strings.Contains(d.Message, "while holding server-side lock") {
			boundary = true
		}
	}
	for _, a := range Analyzers {
		if byAnalyzer[a.Name] == 0 {
			t.Errorf("analyzer %s reported nothing on the broken fixture; findings: %v", a.Name, diags)
		}
	}
	if !boundary {
		t.Errorf("lockorder missed the cross-package server→core boundary violation; findings: %v", diags)
	}
}

// TestRunLoadError confirms load failures surface as errors, which the
// CLI turns into exit 2 (distinct from exit 1 for findings).
func TestRunLoadError(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fixture\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "bad.go"), "package core\n\nfunc Broken() { return 3 }\n")
	if _, err := Run(dir, "./..."); err == nil {
		t.Fatal("expected a load/type-check error for an unbuildable package")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
