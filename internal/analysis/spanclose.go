package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanClose enforces the PR 7 span-hygiene invariant statically: every
// obs span opened in a function (a call to a Child or Root method whose
// result is a Span) must be closed — End or EndCount — on every path out
// of the function, error returns included. The runtime sweep (the
// Err-counting cancel tests) only proves it for exercised paths; this
// pass proves it for all of them.
//
// The walk is a small branch-sensitive abstract interpretation over the
// statement tree:
//
//   - an assignment from a Child/Root call opens the assigned variable;
//   - v.End() / v.EndCount(n) / defer v.End() closes it (a deferred close
//     covers every subsequent path by construction);
//   - at a return, every still-open span is a finding — unless the span
//     itself is among the returned values (ownership transfer);
//   - if/switch/select branches are walked on cloned state and merged: a
//     span survives as open unless every non-terminating branch closed it;
//   - loop bodies are walked on cloned state; closes inside a loop do not
//     count for code after it (the body may run zero times), and a span
//     opened inside a loop body must close inside that body;
//   - function literals are independent scopes, each checked on its own.
//
// Escape hatch: //pgvet:spanok <why> on the offending line or the
// function suppresses, with the justification mandatory.
var SpanClose = &Analyzer{
	Name: "spanclose",
	Doc:  "every obs span opened in a function is closed on every return path",
	Run:  runSpanClose,
}

func runSpanClose(pkgs []*Package, report func(Diagnostic)) {
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ds := parseDirectives(pkg.Fset, file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &spanWalker{pkg: pkg, file: file, ds: ds, fn: fd, report: report}
				w.checkBody(fd.Body)
				// Function literals anywhere in the declaration (including
				// nested ones) are their own scopes.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						lw := &spanWalker{pkg: pkg, file: file, ds: ds, fn: fd, report: report}
						lw.checkBody(lit.Body)
					}
					return true
				})
			}
		}
	}
}

// spanWalker carries one function-scope check.
type spanWalker struct {
	pkg    *Package
	file   *ast.File
	ds     directives
	fn     *ast.FuncDecl
	report func(Diagnostic)
}

// openSet maps an open span variable to the position it was opened at.
type openSet map[types.Object]token.Pos

func (o openSet) clone() openSet {
	c := make(openSet, len(o))
	for k, v := range o { //pgvet:sorted analysis-internal state clone; diagnostics are sorted at the end
		c[k] = v
	}
	return c
}

func (w *spanWalker) checkBody(body *ast.BlockStmt) {
	open := openSet{}
	terminated := w.walk(body.List, open)
	if !terminated {
		for obj, pos := range open { //pgvet:sorted diagnostics are position-sorted after collection
			w.leak(pos, obj, "end")
		}
	}
}

func (w *spanWalker) leak(pos token.Pos, obj types.Object, format string) {
	p := w.pkg.Fset.Position(pos)
	if ok, unjustified := suppressed(w.ds, w.pkg.Fset, w.fn, p.Line, "spanok"); ok {
		return
	} else if unjustified {
		w.report(Diagnostic{Pos: p, Message: "//pgvet:spanok annotation is missing its one-line justification"})
		return
	}
	msg := "span " + obj.Name() + " may leak"
	switch format {
	case "end":
		msg = "span " + obj.Name() + " not closed before the function ends"
	case "loop":
		msg = "span " + obj.Name() + " opened inside a loop is not closed within the loop body"
	case "reopen":
		msg = "span " + obj.Name() + " reassigned while still open; close it first"
	case "drop":
		msg = "span result discarded without being closed"
	}
	w.report(Diagnostic{Pos: p, Message: msg})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// walk processes stmts sequentially, mutating open, and reports findings.
// It returns true when the statement list definitely terminates (returns,
// panics, or exits) — callers use that to drop a branch's state from
// merges.
func (w *spanWalker) walk(stmts []ast.Stmt, open openSet) bool {
	for _, stmt := range stmts {
		if w.walkStmt(stmt, open) {
			return true
		}
	}
	return false
}

func (w *spanWalker) walkStmt(stmt ast.Stmt, open openSet) bool {
	w.compositeTransfers(stmt, open)
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		w.handleAssign(s, open)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if w.isCreator(call) {
				w.leak(call.Pos(), fakeObj{}, "drop")
				return false
			}
			if obj := w.closedVar(call); obj != nil {
				delete(open, obj)
			}
			return w.isTerminalCall(call)
		}
	case *ast.DeferStmt:
		if obj := w.closedVar(s.Call); obj != nil {
			delete(open, obj) // a deferred close covers every later path
			return false
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ... sp.End() ... }(): closes inside the
			// deferred literal cover every later path too.
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if obj := w.closedVar(call); obj != nil {
						delete(open, obj)
					}
				}
				return true
			})
		}
	case *ast.GoStmt:
		if obj := w.closedVar(s.Call); obj != nil {
			delete(open, obj)
		}
	case *ast.ReturnStmt:
		returned := map[types.Object]bool{}
		for _, res := range s.Results {
			if id, ok := res.(*ast.Ident); ok {
				if obj := w.pkg.Info.Uses[id]; obj != nil {
					returned[obj] = true
				}
			}
		}
		for obj, pos := range open { //pgvet:sorted diagnostics are position-sorted after collection
			if returned[obj] {
				continue // ownership transferred to the caller
			}
			// Report at the return site but reference the open position;
			// suppression is checked at the return's line.
			p := w.pkg.Fset.Position(s.Pos())
			if ok, unjustified := suppressed(w.ds, w.pkg.Fset, w.fn, p.Line, "spanok"); ok {
				continue
			} else if unjustified {
				w.report(Diagnostic{Pos: p, Message: "//pgvet:spanok annotation is missing its one-line justification"})
				continue
			}
			w.report(Diagnostic{Pos: p, Message: "span " + obj.Name() +
				" not closed on this return path (opened at line " + itoa(w.pkg.Fset.Position(pos).Line) +
				"); call End/EndCount before returning"})
		}
		return true
	case *ast.BlockStmt:
		return w.walk(s.List, open)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, open)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, open)
		}
		thenSt := open.clone()
		thenTerm := w.walk(s.Body.List, thenSt)
		elseSt := open.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseSt)
		}
		mergeBranches(open, []openSet{thenSt, elseSt}, []bool{thenTerm, elseTerm})
		return thenTerm && elseTerm
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranches(s, open)
	case *ast.ForStmt:
		w.walkLoop(s.Body, open)
	case *ast.RangeStmt:
		w.walkLoop(s.Body, open)
	}
	return false
}

// compositeTransfers removes from open any span stored into a composite
// literal within a leaf statement: c := carrier{span: sp} (or return
// carrier{sp}) hands ownership to whatever holds the literal, exactly
// like assigning to a field — which already stops tracking. Branch and
// loop statements are skipped here; their nested leaves each pass
// through walkStmt and get their own check.
func (w *spanWalker) compositeTransfers(stmt ast.Stmt, open openSet) {
	switch stmt.(type) {
	case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.DeclStmt,
		*ast.DeferStmt, *ast.GoStmt, *ast.SendStmt:
	default:
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range lit.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			id, ok := el.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := w.pkg.Info.Uses[id]; obj != nil {
				delete(open, obj)
			}
		}
		return true
	})
}

// fakeObj stands in for the (nonexistent) variable of a discarded span.
type fakeObj struct{ types.Object }

func (fakeObj) Name() string { return "(discarded)" }

func (w *spanWalker) handleAssign(s *ast.AssignStmt, open openSet) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || !w.isCreator(call) {
		return
	}
	// sp := parent.Child(...) / sp = parent.Child(...): find the lhs var.
	if len(s.Lhs) != 1 {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		// Assigned to a field or index: ownership escapes this function's
		// scope; tracking stops here.
		return
	}
	if id.Name == "_" {
		w.leak(call.Pos(), fakeObj{}, "drop")
		return
	}
	var obj types.Object
	if d := w.pkg.Info.Defs[id]; d != nil {
		obj = d
	} else {
		obj = w.pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if _, already := open[obj]; already {
		w.leak(s.Pos(), obj, "reopen")
	}
	open[obj] = call.Pos()
}

// isCreator reports whether call opens a span: a call to a method or
// function named Child or Root whose static result type is a named type
// called Span.
func (w *spanWalker) isCreator(call *ast.CallExpr) bool {
	name := calleeName(call)
	if name != "Child" && name != "Root" {
		return false
	}
	tv, ok := w.pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Name() == "Span"
}

// closedVar returns the span variable closed by call (v.End() or
// v.EndCount(n) on a plain identifier), or nil.
func (w *spanWalker) closedVar(call *ast.CallExpr) types.Object {
	name := calleeName(call)
	if name != "End" && name != "EndCount" {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := w.pkg.Info.Uses[id]
	if obj == nil {
		return nil
	}
	if named, ok := obj.Type().(*types.Named); !ok || named.Obj().Name() != "Span" {
		return nil
	}
	return obj
}

// isTerminalCall reports calls that never return: panic and the
// conventional fatal/exit helpers.
func (w *spanWalker) isTerminalCall(call *ast.CallExpr) bool {
	switch name := calleeName(call); name {
	case "panic", "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
		return true
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// walkBranches handles switch/type-switch/select: every case body is
// walked on cloned state; the merged state keeps a span open unless every
// non-terminating branch closed it. A switch without a default keeps the
// incoming state as an implicit fall-through branch.
func (w *spanWalker) walkBranches(stmt ast.Stmt, open openSet) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, open)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, open)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var states []openSet
	var terms []bool
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			stmts = c.Body
		}
		st := open.clone()
		terms = append(terms, w.walk(stmts, st))
		states = append(states, st)
	}
	if !hasDefault {
		states = append(states, open.clone())
		terms = append(terms, false)
	}
	mergeBranches(open, states, terms)
	allTerm := len(terms) > 0
	for _, t := range terms {
		allTerm = allTerm && t
	}
	return allTerm
}

// walkLoop checks a loop body on cloned state. Spans opened inside the
// body must close inside it; closes of outer spans inside the body do not
// propagate out (the body may run zero times).
func (w *spanWalker) walkLoop(body *ast.BlockStmt, open openSet) {
	st := open.clone()
	w.walk(body.List, st)
	for obj, pos := range st { //pgvet:sorted diagnostics are position-sorted after collection
		if _, existedBefore := open[obj]; !existedBefore {
			w.leak(pos, obj, "loop")
		}
	}
}

// mergeBranches rewrites open in place: a span stays open if any
// non-terminating branch left it open; spans opened inside branches that
// fall through join the merged state.
func mergeBranches(open openSet, states []openSet, terms []bool) {
	merged := openSet{}
	for i, st := range states {
		if terms[i] {
			continue
		}
		for obj, pos := range st { //pgvet:sorted analysis-internal merge; diagnostics are sorted at the end
			merged[obj] = pos
		}
	}
	for obj := range open { //pgvet:sorted analysis-internal merge; diagnostics are sorted at the end
		if _, ok := merged[obj]; !ok {
			delete(open, obj)
		}
	}
	for obj, pos := range merged { //pgvet:sorted analysis-internal merge; diagnostics are sorted at the end
		open[obj] = pos
	}
}
