package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	dirCache map[*ast.File]directives // lazily parsed //pgvet: annotations per file
}

// Load resolves patterns with `go list -json -export -deps` run in dir,
// parses and type-checks every matched (non-dependency) package from
// source, and returns them sharing one FileSet. Imports — the module's own
// packages and the standard library alike — are resolved through the
// build cache's export data, so loading needs nothing beyond the go
// toolchain itself. Test files are not loaded: pgvet's contracts are
// production-path contracts, and two of them (math/rand global state, map
// iteration) are deliberately looser in tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, _, err := LoadWithStats(dir, patterns...)
	return pkgs, err
}

// LoadStats reports how a Load resolved, for the CLI's timing line.
type LoadStats struct {
	Packages int  // directly-matched packages type-checked from source
	CacheHit bool // go list metadata came from the on-disk cache
}

// LoadWithStats is Load plus resolution metadata.
func LoadWithStats(dir string, patterns ...string) ([]*Package, LoadStats, error) {
	var stats LoadStats
	targets, exports, hit, err := listPackagesCached(dir, patterns...)
	if err != nil {
		return nil, stats, err
	}
	stats.CacheHit = hit
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var pkgs []*Package
	for _, t := range targets {
		// Fail with the package and import named rather than letting the
		// importer surface a bare "no export data" mid-type-check: a dep
		// that does not compile (or a cgo package, which go list exports
		// only when cgo preprocessing ran) both land here.
		if len(t.CgoFiles) > 0 {
			return nil, stats, fmt.Errorf("pgvet: package %s uses cgo, which pgvet does not analyze", t.ImportPath)
		}
		for _, ipath := range t.Imports {
			if ipath == "unsafe" || ipath == "C" {
				continue
			}
			if _, ok := exports[ipath]; !ok {
				return nil, stats, fmt.Errorf("pgvet: package %s: no compiled export data for import %q (does it build?)", t.ImportPath, ipath)
			}
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, stats, fmt.Errorf("pgvet: %w", err)
			}
			files = append(files, f)
		}
		pkg, err := Check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, stats, err
		}
		pkg.Dir = t.Dir
		pkgs = append(pkgs, pkg)
	}
	stats.Packages = len(pkgs)
	return pkgs, stats, nil
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
}

// listPackages runs `go list -json -export -deps` in dir and returns the
// directly-matched packages plus an import-path → export-data-file map
// covering everything listed (matches and dependencies alike).
func listPackages(dir string, patterns ...string) ([]listPkg, map[string]string, error) {
	raw, err := runGoList(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	return parseListOutput(raw)
}

func runGoList(dir string, patterns ...string) ([]byte, error) {
	cmd := exec.Command("go", append([]string{"list", "-json", "-export", "-deps"}, patterns...)...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("pgvet: go list: %s", bytes.TrimSpace(ee.Stderr))
		}
		return nil, fmt.Errorf("pgvet: go list: %w", err)
	}
	return out, nil
}

func parseListOutput(raw []byte) ([]listPkg, map[string]string, error) {
	var targets []listPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(raw))
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return nil, nil, fmt.Errorf("pgvet: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}

// listPackagesCached wraps listPackages with an on-disk cache of the raw
// `go list` JSON. The -export listing is the slow half of a pgvet run (it
// compiles anything stale), so repeat runs over an unchanged tree skip it
// entirely. The key fingerprints everything that can change the answer:
// toolchain version, resolved directory, patterns, and the name/size/mtime
// of every .go, go.mod, and go.sum file under the directory and under the
// root of every filesystem-path pattern (./..., ../...). A hit is
// trusted only while every cached export-data file still exists (the build
// cache may have been trimmed). PGVET_NOCACHE=1 disables the cache.
func listPackagesCached(dir string, patterns ...string) ([]listPkg, map[string]string, bool, error) {
	if os.Getenv("PGVET_NOCACHE") != "" {
		targets, exports, err := listPackages(dir, patterns...)
		return targets, exports, false, err
	}
	fp, err := listFingerprint(dir, patterns)
	if err != nil {
		// Fingerprinting failed (permission hole, racing deletes): list
		// without the cache rather than failing the run.
		targets, exports, err := listPackages(dir, patterns...)
		return targets, exports, false, err
	}
	path := filepath.Join(os.TempDir(), "pgvet-list-"+fp+".json")
	if raw, err := os.ReadFile(path); err == nil {
		if targets, exports, err := parseListOutput(raw); err == nil && exportsExist(exports) {
			return targets, exports, true, nil
		}
	}
	raw, err := runGoList(dir, patterns...)
	if err != nil {
		return nil, nil, false, err
	}
	targets, exports, err := parseListOutput(raw)
	if err != nil {
		return nil, nil, false, err
	}
	// Best-effort write-then-rename; a failed write only costs the next
	// run a re-list.
	if tmp, cerr := os.CreateTemp(os.TempDir(), "pgvet-list-*"); cerr == nil {
		if _, werr := tmp.Write(raw); werr == nil && tmp.Close() == nil {
			_ = os.Rename(tmp.Name(), path)
		} else {
			tmp.Close()
			_ = os.Remove(tmp.Name())
		}
	}
	return targets, exports, false, nil
}

func exportsExist(exports map[string]string) bool {
	for _, f := range exports {
		if _, err := os.Stat(f); err != nil {
			return false
		}
	}
	return true
}

// listFingerprint hashes the inputs that determine `go list -export`
// output for dir+patterns. Hidden, underscore, and testdata directories
// are skipped — go list ignores them too. Filesystem-path patterns
// (./..., ../...) resolve packages that may live outside dir, so their
// roots are walked too: a file added under ../.. must invalidate a cache
// entry keyed from a subdirectory.
func listFingerprint(dir string, patterns []string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	roots := []string{abs}
	for _, p := range patterns {
		if p != "." && !strings.HasPrefix(p, "./") && !strings.HasPrefix(p, "..") {
			continue // import-path pattern; resolves inside the module tree
		}
		base := strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
		if base == "" {
			base = "."
		}
		r, err := filepath.Abs(filepath.Join(abs, base))
		if err != nil {
			return "", err
		}
		roots = append(roots, r)
	}
	// Drop roots nested inside another root so no file hashes twice.
	sort.Strings(roots)
	walked := roots[:0]
	for _, r := range roots {
		nested := false
		for _, k := range walked {
			if r == k || strings.HasPrefix(r, k+string(filepath.Separator)) {
				nested = true
				break
			}
		}
		if !nested {
			walked = append(walked, r)
		}
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00", runtime.Version(), abs, strings.Join(patterns, "\x00"))
	for _, root := range walked {
		fmt.Fprintf(h, "root:%s\x00", root)
		err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			name := d.Name()
			if d.IsDir() {
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return fs.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(name, ".go") && name != "go.mod" && name != "go.sum" {
				return nil
			}
			info, err := d.Info()
			if err != nil {
				return err
			}
			rel, rerr := filepath.Rel(root, path)
			if rerr != nil {
				rel = path
			}
			fmt.Fprintf(h, "%s\x00%d\x00%d\x00", rel, info.Size(), info.ModTime().UnixNano())
			return nil
		})
		if err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16], nil
}

// exportImporter resolves imports from build-cache export data files —
// the gc importer handles "unsafe" itself.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("pgvet: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Check type-checks one package's parsed files with the given importer
// and wraps the result. It is the single type-checking entry point: Load
// uses it for real packages, the golden-test harness for testdata ones.
func Check(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("pgvet: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Run loads patterns in dir and runs the full analyzer suite — the
// programmatic equivalent of `pgvet <patterns>`.
func Run(dir string, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(pkgs), nil
}
