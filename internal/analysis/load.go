package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Load resolves patterns with `go list -json -export -deps` run in dir,
// parses and type-checks every matched (non-dependency) package from
// source, and returns them sharing one FileSet. Imports — the module's own
// packages and the standard library alike — are resolved through the
// build cache's export data, so loading needs nothing beyond the go
// toolchain itself. Test files are not loaded: pgvet's contracts are
// production-path contracts, and two of them (math/rand global state, map
// iteration) are deliberately looser in tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, exports, err := listPackages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("pgvet: %w", err)
			}
			files = append(files, f)
		}
		pkg, err := Check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkg.Dir = t.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// listPackages runs `go list -json -export -deps` in dir and returns the
// directly-matched packages plus an import-path → export-data-file map
// covering everything listed (matches and dependencies alike).
func listPackages(dir string, patterns ...string) ([]listPkg, map[string]string, error) {
	cmd := exec.Command("go", append([]string{"list", "-json", "-export", "-deps"}, patterns...)...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, nil, fmt.Errorf("pgvet: go list: %s", bytes.TrimSpace(ee.Stderr))
		}
		return nil, nil, fmt.Errorf("pgvet: go list: %w", err)
	}
	var targets []listPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return nil, nil, fmt.Errorf("pgvet: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}

// exportImporter resolves imports from build-cache export data files —
// the gc importer handles "unsafe" itself.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("pgvet: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Check type-checks one package's parsed files with the given importer
// and wraps the result. It is the single type-checking entry point: Load
// uses it for real packages, the golden-test harness for testdata ones.
func Check(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("pgvet: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Name:       tpkg.Name(),
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Run loads patterns in dir and runs the full analyzer suite — the
// programmatic equivalent of `pgvet <patterns>`.
func Run(dir string, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return RunAnalyzers(pkgs), nil
}
