package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context plumbing: a function that receives a
// context.Context parameter must flow it downstream. Two failure shapes
// are flagged inside such functions:
//
//   - calling context.Background() or context.TODO() — laundering away
//     the caller's cancellation and the span carried in the ctx;
//   - calling the ctx-less variant X(...) of a callee that also has an
//     XCtx(...) form in scope (same package, or the method set of the
//     receiver being called) without passing any context argument — the
//     repo's convention since PR 5 is that every ctx-less entry point is
//     a thin wrapper over its Ctx sibling, so calling the wrapper from a
//     ctx-bearing function silently drops cancellation and tracing.
//
// Wrapper shims themselves (the one-line Query → QueryCtx forwarders in
// the public API) do not receive a ctx, so they are out of scope by
// construction. Deliberate detachment (e.g. a background flusher that
// must outlive the request) is annotated //pgvet:ctxbg <why>.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions receiving a context must pass it on, not context.Background() or a ctx-less sibling",
	Run:  runCtxFlow,
}

func runCtxFlow(pkgs []*Package, report func(Diagnostic)) {
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ds := parseDirectives(pkg.Fset, file)
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !receivesContext(pkg, fd) {
					continue
				}
				checkCtxBody(pkg, file, ds, fd, report)
			}
		}
	}
}

// receivesContext reports whether fd has a parameter of type
// context.Context.
func receivesContext(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := pkg.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func checkCtxBody(pkg *Package, file *ast.File, ds directives, fd *ast.FuncDecl, report func(Diagnostic)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, fromContextPkg := contextPkgCall(pkg, call); fromContextPkg && (name == "Background" || name == "TODO") {
			pos := pkg.Fset.Position(call.Pos())
			if ok, unjustified := suppressed(ds, pkg.Fset, fd, pos.Line, "ctxbg"); ok {
				return true
			} else if unjustified {
				report(Diagnostic{Pos: pos, Message: "//pgvet:ctxbg annotation is missing its one-line justification"})
				return true
			}
			report(Diagnostic{Pos: pos, Message: "context." + name + "() inside a ctx-receiving function discards the caller's context; pass the ctx parameter (or annotate //pgvet:ctxbg <why> for deliberate detachment)"})
			return true
		}
		checkCtxlessSibling(pkg, ds, fd, call, report)
		return true
	})
}

// contextPkgCall returns the function name if call targets a
// package-level function of package context.
func contextPkgCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pkg.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	return fn.Name(), true
}

// checkCtxlessSibling flags a call to X when an XCtx sibling exists and
// no context argument is being passed.
func checkCtxlessSibling(pkg *Package, ds directives, fd *ast.FuncDecl, call *ast.CallExpr, report func(Diagnostic)) {
	// Already passing a context? Then whichever variant this is, the flow
	// is intact.
	for _, arg := range call.Args {
		if tv, ok := pkg.Info.Types[arg]; ok && tv.Type != nil && isContextType(tv.Type) {
			return
		}
	}
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	name := fn.Name()
	sibling := name + "Ctx"
	if !hasSibling(pkg, call, fn, sibling) {
		return
	}
	pos := pkg.Fset.Position(call.Pos())
	if ok, unjustified := suppressed(ds, pkg.Fset, fd, pos.Line, "ctxbg"); ok {
		return
	} else if unjustified {
		report(Diagnostic{Pos: pos, Message: "//pgvet:ctxbg annotation is missing its one-line justification"})
		return
	}
	report(Diagnostic{Pos: pos, Message: "call to " + name + " drops this function's context; use " + sibling + " (or annotate //pgvet:ctxbg <why>)"})
}

// calleeFunc resolves the *types.Func a call statically targets, or nil
// for indirect calls, builtins, and conversions.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// hasSibling reports whether a callable named sibling exists where fn
// lives: for methods, in the method set of the receiver type; for
// functions, at package scope of fn's package.
func hasSibling(pkg *Package, call *ast.CallExpr, fn *types.Func, sibling string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		// Method: search the receiver's method set (both value and
		// pointer receivers).
		t := recv.Type()
		for _, mt := range []types.Type{t, types.NewPointer(derefType(t))} {
			ms := types.NewMethodSet(mt)
			for i := 0; i < ms.Len(); i++ {
				if ms.At(i).Obj().Name() == sibling {
					return siblingTakesContext(ms.At(i).Obj())
				}
			}
		}
		return false
	}
	obj := fn.Pkg().Scope().Lookup(sibling)
	if obj == nil {
		return false
	}
	return siblingTakesContext(obj)
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// siblingTakesContext confirms the XCtx candidate really accepts a
// context.Context — a name collision alone is not a finding.
func siblingTakesContext(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
