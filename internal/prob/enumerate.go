package prob

import (
	"fmt"
	"sort"

	"probgraph/internal/graph"
)

// MaxEnumerableUncertain bounds full possible-world enumeration.
const MaxEnumerableUncertain = 24

// EnumerateWorlds calls fn for every possible world of pg with its
// normalized probability. Worlds with probability zero are skipped. The
// world EdgeSet passed to fn is reused between calls; clone it to retain.
// It fails when the uncertain edge count exceeds MaxEnumerableUncertain.
func EnumerateWorlds(e *Engine, fn func(world graph.EdgeSet, p float64) bool) error {
	pg := e.pg
	n := len(pg.uncertain)
	if n > MaxEnumerableUncertain {
		return fmt.Errorf("prob: %d uncertain edges exceed enumeration limit %d", n, MaxEnumerableUncertain)
	}
	world := pg.NewWorld()
	for m := 0; m < 1<<n; m++ {
		for i, ed := range pg.uncertain {
			world.Set(ed, m&(1<<i) != 0)
		}
		p := e.WorldProb(world)
		if p > 0 {
			if !fn(world, p) {
				return nil
			}
		}
	}
	return nil
}

// ProbDNFExact computes Pr(∨ clauses) where each clause asserts that all of
// its edges exist, via inclusion–exclusion over clauses (the paper's
// Equation 21 / "Exact" baseline). Cost is Θ(2^len(clauses)) inference
// queries with memoization on edge-set unions; callers cap the clause count.
func ProbDNFExact(e *Engine, clauses []graph.EdgeSet, maxClauses int) (float64, error) {
	m := len(clauses)
	if m == 0 {
		return 0, nil
	}
	if maxClauses > 0 && m > maxClauses {
		return 0, fmt.Errorf("prob: %d clauses exceed exact cap %d", m, maxClauses)
	}
	if m > 30 {
		return 0, fmt.Errorf("prob: %d clauses too many for inclusion-exclusion", m)
	}
	memo := make(map[string]float64)
	total := 0.0
	ne := e.pg.G.NumEdges()
	for mask := 1; mask < 1<<m; mask++ {
		union := graph.NewEdgeSet(ne)
		bits := 0
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				union.UnionWith(clauses[i])
				bits++
			}
		}
		key := union.Key()
		p, ok := memo[key]
		if !ok {
			var err error
			p, err = e.ProbAllPresent(union)
			if err != nil {
				return 0, err
			}
			memo[key] = p
		}
		if bits%2 == 1 {
			total += p
		} else {
			total -= p
		}
	}
	if total < 0 {
		total = 0
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// ProbConjNegConj computes Pr(base ∧ ⋀_j ¬other_j) exactly, where base and
// each other_j assert that all edges of the set hold the given polarity
// (present=true: edges exist; present=false: edges are absent — the cut
// case). This is the exact counterpart of the paper's Algorithm 3 for
// Pr(Bf|COR) and Pr(Bc|COM) numerators/denominators:
//
//	Pr(base ∧ ⋀¬other_j) = Σ_{J⊆others} (−1)^{|J|} Pr(base ∧ ⋀_{j∈J} other_j)
//
// When base is nil the leading conjunct is dropped (computes Pr(⋀¬other_j)).
func ProbConjNegConj(e *Engine, base *graph.EdgeSet, others []graph.EdgeSet, present bool, maxOthers int) (float64, error) {
	m := len(others)
	if maxOthers > 0 && m > maxOthers {
		return 0, fmt.Errorf("prob: %d overlapping sets exceed exact cap %d", m, maxOthers)
	}
	if m > 24 {
		return 0, fmt.Errorf("prob: %d overlapping sets too many for inclusion-exclusion", m)
	}
	ne := e.pg.G.NumEdges()
	memo := make(map[string]float64)
	probOf := func(union graph.EdgeSet) (float64, error) {
		key := union.Key()
		if p, ok := memo[key]; ok {
			return p, nil
		}
		var lits []Literal
		if present {
			lits = AllPresent(union)
		} else {
			lits = AllAbsent(union)
		}
		p, err := e.ProbLits(lits)
		if err != nil {
			return 0, err
		}
		memo[key] = p
		return p, nil
	}
	total := 0.0
	for mask := 0; mask < 1<<m; mask++ {
		union := graph.NewEdgeSet(ne)
		if base != nil {
			union.UnionWith(*base)
		}
		bits := 0
		for j := 0; j < m; j++ {
			if mask&(1<<j) != 0 {
				union.UnionWith(others[j])
				bits++
			}
		}
		if base == nil && mask == 0 {
			total += 1 // empty conjunction holds with probability 1
			continue
		}
		p, err := probOf(union)
		if err != nil {
			return 0, err
		}
		if bits%2 == 0 {
			total += p
		} else {
			total -= p
		}
	}
	if total < 0 {
		total = 0
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// SortLiterals orders literals deterministically (by edge, then polarity);
// used to build stable cache keys for conditioned engines.
func SortLiterals(lits []Literal) {
	sort.Slice(lits, func(i, j int) bool {
		if lits[i].Edge != lits[j].Edge {
			return lits[i].Edge < lits[j].Edge
		}
		return !lits[i].Present && lits[j].Present
	})
}

// LiteralsKey renders a canonical string key for a literal set.
func LiteralsKey(lits []Literal) string {
	cp := append([]Literal(nil), lits...)
	SortLiterals(cp)
	b := make([]byte, 0, len(cp)*5)
	for _, l := range cp {
		b = append(b, byte(l.Edge), byte(l.Edge>>8), byte(l.Edge>>16), byte(l.Edge>>24))
		if l.Present {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return string(b)
}
