// Package prob implements the correlated probabilistic graph model of the
// paper (Definition 2): a deterministic graph gc plus joint probability
// tables (JPTs) over neighbor-edge sets, together with an exact inference
// engine (variable elimination / junction-tree style) that supplies
// partition functions, conjunction probabilities, marginals, and exact
// possible-world sampling — including sampling conditioned on evidence,
// which the paper's Algorithm 3 and Algorithm 5 both require.
//
// Semantics. The distribution over possible worlds is the normalized product
// of the JPT factors (a Markov random field). When JPTs partition the edge
// set and each table is normalized — the construction used by the paper's
// experiments and by our dataset generators — the normalizer is exactly 1
// and the model coincides with the paper's Equation 1. JPTs that share
// edges (as in the paper's Figure 1) are fully supported; the engine
// normalizes automatically.
package prob

import (
	"fmt"
	"math"

	"probgraph/internal/graph"
)

// MaxJPTEdges bounds the arity of one joint probability table. Neighbor-edge
// sets are local by construction, so this is generous.
const MaxJPTEdges = 16

// JPT is a joint probability table over a small set of edges. Entry P[m]
// is the (possibly unnormalized) weight of the assignment in which edge
// Edges[i] exists iff bit i of m is set.
type JPT struct {
	Edges []graph.EdgeID
	P     []float64
}

// NewIndependentJPT returns the 1-edge table {1-p, p}.
func NewIndependentJPT(e graph.EdgeID, p float64) JPT {
	return JPT{Edges: []graph.EdgeID{e}, P: []float64{1 - p, p}}
}

// Validate checks structural well-formedness of the table.
func (t JPT) Validate(numEdges int) error {
	k := len(t.Edges)
	if k == 0 {
		return fmt.Errorf("prob: empty JPT")
	}
	if k > MaxJPTEdges {
		return fmt.Errorf("prob: JPT over %d edges exceeds limit %d", k, MaxJPTEdges)
	}
	if len(t.P) != 1<<k {
		return fmt.Errorf("prob: JPT over %d edges needs %d entries, has %d", k, 1<<k, len(t.P))
	}
	seen := make(map[graph.EdgeID]bool, k)
	sum := 0.0
	for _, e := range t.Edges {
		if e < 0 || int(e) >= numEdges {
			return fmt.Errorf("prob: JPT references edge %d outside graph (have %d edges)", e, numEdges)
		}
		if seen[e] {
			return fmt.Errorf("prob: JPT lists edge %d twice", e)
		}
		seen[e] = true
	}
	for i, p := range t.P {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return fmt.Errorf("prob: JPT entry %d has invalid weight %v", i, p)
		}
		sum += p
	}
	if sum <= 0 {
		return fmt.Errorf("prob: JPT has zero total weight")
	}
	return nil
}

// Normalize scales the table to sum to 1 in place.
func (t JPT) Normalize() {
	sum := 0.0
	for _, p := range t.P {
		sum += p
	}
	if sum > 0 {
		for i := range t.P {
			t.P[i] /= sum
		}
	}
}

// PGraph is a probabilistic graph: a certain structure G plus JPT factors.
// Edges not covered by any JPT are certain (exist in every possible world).
type PGraph struct {
	G    *graph.Graph
	JPTs []JPT

	uncertain []graph.EdgeID       // covered edges, ascending
	varOf     map[graph.EdgeID]int // edge -> index into uncertain
}

// New validates and assembles a probabilistic graph.
func New(g *graph.Graph, jpts []JPT) (*PGraph, error) {
	if g == nil {
		return nil, fmt.Errorf("prob: nil graph")
	}
	covered := graph.NewEdgeSet(g.NumEdges())
	for i, t := range jpts {
		if err := t.Validate(g.NumEdges()); err != nil {
			return nil, fmt.Errorf("prob: JPT %d: %w", i, err)
		}
		for _, e := range t.Edges {
			covered.Add(e)
		}
	}
	pg := &PGraph{G: g, JPTs: jpts, varOf: make(map[graph.EdgeID]int)}
	for _, e := range covered.Slice() {
		pg.varOf[e] = len(pg.uncertain)
		pg.uncertain = append(pg.uncertain, e)
	}
	return pg, nil
}

// MustNew is New for static construction; it panics on error.
func MustNew(g *graph.Graph, jpts []JPT) *PGraph {
	pg, err := New(g, jpts)
	if err != nil {
		panic(err)
	}
	return pg
}

// NewIndependent builds a probabilistic graph where each listed edge exists
// independently with the given probability; this is the baseline "IND"
// model the paper compares against in Figure 14.
func NewIndependent(g *graph.Graph, edgeProb map[graph.EdgeID]float64) (*PGraph, error) {
	jpts := make([]JPT, 0, len(edgeProb))
	for e := 0; e < g.NumEdges(); e++ {
		if p, ok := edgeProb[graph.EdgeID(e)]; ok {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return nil, fmt.Errorf("prob: edge %d probability %v out of [0,1]", e, p)
			}
			jpts = append(jpts, NewIndependentJPT(graph.EdgeID(e), p))
		}
	}
	return New(g, jpts)
}

// NumUncertain returns the number of edges with uncertain existence.
func (pg *PGraph) NumUncertain() int { return len(pg.uncertain) }

// UncertainEdges returns the uncertain edge IDs in ascending order. The
// returned slice must not be modified.
func (pg *PGraph) UncertainEdges() []graph.EdgeID { return pg.uncertain }

// IsUncertain reports whether edge e is covered by some JPT.
func (pg *PGraph) IsUncertain(e graph.EdgeID) bool {
	_, ok := pg.varOf[e]
	return ok
}

// CertainWorld returns a world containing every edge of G (all uncertain
// edges present). This is the certain graph gc's edge set.
func (pg *PGraph) CertainWorld() graph.EdgeSet {
	return graph.FullEdgeSet(pg.G.NumEdges())
}

// NewWorld returns a world with all certain edges present and all uncertain
// edges absent.
func (pg *PGraph) NewWorld() graph.EdgeSet {
	w := graph.FullEdgeSet(pg.G.NumEdges())
	for _, e := range pg.uncertain {
		w.Remove(e)
	}
	return w
}

// IsNeighborEdgeSet reports whether the edges form a neighbor-edge set per
// the paper's Definition 1: all incident to one common vertex, or forming a
// triangle. Generators use this to build paper-conformant JPT scopes; the
// engine itself accepts arbitrary scopes.
func IsNeighborEdgeSet(g *graph.Graph, edges []graph.EdgeID) bool {
	if len(edges) == 0 {
		return false
	}
	if len(edges) == 1 {
		return true
	}
	// Common vertex?
	count := make(map[graph.VertexID]int)
	for _, id := range edges {
		e := g.Edge(id)
		count[e.U]++
		count[e.V]++
	}
	for _, c := range count {
		if c == len(edges) {
			return true
		}
	}
	// Triangle: exactly 3 edges over exactly 3 vertices, each vertex twice.
	if len(edges) == 3 && len(count) == 3 {
		for _, c := range count {
			if c != 2 {
				return false
			}
		}
		return true
	}
	return false
}

// Literal is an assertion about one edge's existence.
type Literal struct {
	Edge    graph.EdgeID
	Present bool
}

// AllPresent returns literals asserting every edge in es exists.
func AllPresent(es graph.EdgeSet) []Literal {
	edges := es.Slice()
	lits := make([]Literal, len(edges))
	for i, e := range edges {
		lits[i] = Literal{Edge: e, Present: true}
	}
	return lits
}

// AllAbsent returns literals asserting every edge in es is missing.
func AllAbsent(es graph.EdgeSet) []Literal {
	edges := es.Slice()
	lits := make([]Literal, len(edges))
	for i, e := range edges {
		lits[i] = Literal{Edge: e, Present: false}
	}
	return lits
}
