package prob

import (
	"math"
	"math/rand"
	"testing"

	"probgraph/internal/graph"
)

func TestGibbsMatchesExactMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	pg := randomPGraph(rng, 6, 6)
	eng, err := NewEngine(pg)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := NewGibbs(pg)
	if err != nil {
		t.Fatal(err)
	}
	got := gb.EstimateMarginals(rng, 500, 2, 20000)
	for e := 0; e < pg.G.NumEdges(); e++ {
		want, err := eng.MarginalPresent(graph.EdgeID(e))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[e]-want) > 0.03 {
			t.Fatalf("edge %d: gibbs %v vs exact %v", e, got[e], want)
		}
	}
}

func TestGibbsRejectsZeroEntries(t *testing.T) {
	g := chain(3)
	j := JPT{Edges: []graph.EdgeID{0, 1}, P: []float64{0.5, 0, 0.25, 0.25}}
	pg := MustNew(g, []JPT{j})
	if _, err := NewGibbs(pg); err == nil {
		t.Fatal("zero JPT entry must be rejected")
	}
}

func TestGibbsRunStopsOnVisitFalse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pg := randomPGraph(rng, 5, 4)
	gb, err := NewGibbs(pg)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	gb.Run(rng, 10, 1, 0, func(graph.EdgeSet) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("visit called %d times, want 5", n)
	}
}

func TestGibbsWorldsContainCertainEdges(t *testing.T) {
	g := chain(4) // edges 0,1,2; only 1 uncertain
	pg := MustNew(g, []JPT{NewIndependentJPT(1, 0.5)})
	gb, err := NewGibbs(pg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	gb.Run(rng, 5, 1, 20, func(w graph.EdgeSet) bool {
		if !w.Contains(0) || !w.Contains(2) {
			t.Fatal("certain edge missing from gibbs world")
		}
		return true
	})
}
