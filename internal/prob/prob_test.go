package prob

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"probgraph/internal/graph"
)

// chain returns a labeled path graph with n vertices.
func chain(n int) *graph.Graph {
	b := graph.NewBuilder("chain")
	prev := b.AddVertex("a")
	for i := 1; i < n; i++ {
		next := b.AddVertex("a")
		b.MustAddEdge(prev, next, "")
		prev = next
	}
	return b.Build()
}

// randomPGraph builds a random correlated model: a random graph whose edges
// are grouped into JPTs of size 1–3; with probability 1/3 adjacent groups
// share one edge (exercising the normalizing MRF path).
func randomPGraph(rng *rand.Rand, nv, ne int) *PGraph {
	b := graph.NewBuilder("rpg")
	for i := 0; i < nv; i++ {
		b.AddVertex(graph.Label([]string{"a", "b"}[rng.Intn(2)]))
	}
	for tries, added := 0, 0; added < ne && tries < 30*ne; tries++ {
		u := graph.VertexID(rng.Intn(nv))
		v := graph.VertexID(rng.Intn(nv))
		if u == v {
			continue
		}
		if _, err := b.AddEdge(u, v, ""); err == nil {
			added++
		}
	}
	g := b.Build()
	var jpts []JPT
	e := 0
	for e < g.NumEdges() {
		k := 1 + rng.Intn(3)
		if e+k > g.NumEdges() {
			k = g.NumEdges() - e
		}
		edges := make([]graph.EdgeID, 0, k+1)
		for i := 0; i < k; i++ {
			edges = append(edges, graph.EdgeID(e+i))
		}
		// Occasionally overlap with the previous group's last edge.
		if e > 0 && rng.Intn(3) == 0 {
			edges = append(edges, graph.EdgeID(e-1))
		}
		tab := make([]float64, 1<<len(edges))
		for i := range tab {
			tab[i] = 0.05 + rng.Float64()
		}
		jpts = append(jpts, JPT{Edges: edges, P: tab})
		e += k
	}
	return MustNew(g, jpts)
}

func TestJPTValidate(t *testing.T) {
	cases := []struct {
		name string
		jpt  JPT
		ok   bool
	}{
		{"good", JPT{Edges: []graph.EdgeID{0}, P: []float64{0.4, 0.6}}, true},
		{"empty", JPT{}, false},
		{"wrong-len", JPT{Edges: []graph.EdgeID{0}, P: []float64{1}}, false},
		{"neg", JPT{Edges: []graph.EdgeID{0}, P: []float64{-0.1, 1.1}}, false},
		{"nan", JPT{Edges: []graph.EdgeID{0}, P: []float64{math.NaN(), 1}}, false},
		{"dup-edge", JPT{Edges: []graph.EdgeID{0, 0}, P: []float64{1, 1, 1, 1}}, false},
		{"out-of-range", JPT{Edges: []graph.EdgeID{9}, P: []float64{0.5, 0.5}}, false},
		{"zero-weight", JPT{Edges: []graph.EdgeID{0}, P: []float64{0, 0}}, false},
	}
	for _, c := range cases {
		err := c.jpt.Validate(3)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestJPTNormalize(t *testing.T) {
	j := JPT{Edges: []graph.EdgeID{0}, P: []float64{2, 6}}
	j.Normalize()
	if math.Abs(j.P[0]-0.25) > 1e-12 || math.Abs(j.P[1]-0.75) > 1e-12 {
		t.Fatalf("normalize gave %v", j.P)
	}
}

// paper001 builds the paper's Figure 1 graph 001: a triangle with the full
// 8-row JPT over its three neighbor edges.
func paper001(t *testing.T) (*PGraph, *Engine) {
	t.Helper()
	b := graph.NewBuilder("001")
	va := b.AddVertex("a")
	vb := b.AddVertex("b")
	vd := b.AddVertex("d")
	e1 := b.MustAddEdge(va, vb, "")
	e2 := b.MustAddEdge(vb, vd, "")
	e3 := b.MustAddEdge(va, vd, "")
	g := b.Build()
	// JPT rows from the paper (bit order: e1=bit0, e2=bit1, e3=bit2):
	// Pr(1,1,1)=0.2 Pr(1,1,0)=0.2 Pr(1,0,1)=0.1 Pr(1,0,0)=0.1
	// Pr(0,1,1)=0.1 Pr(0,1,0)=0.1 Pr(0,0,1)=0.1 Pr(0,0,0)=0.1
	tab := make([]float64, 8)
	set := func(v1, v2, v3 int, p float64) {
		tab[v1|v2<<1|v3<<2] = p
	}
	set(1, 1, 1, 0.2)
	set(1, 1, 0, 0.2)
	set(1, 0, 1, 0.1)
	set(1, 0, 0, 0.1)
	set(0, 1, 1, 0.1)
	set(0, 1, 0, 0.1)
	set(0, 0, 1, 0.1)
	set(0, 0, 0, 0.1)
	pg := MustNew(g, []JPT{{Edges: []graph.EdgeID{e1, e2, e3}, P: tab}})
	eng, err := NewEngine(pg)
	if err != nil {
		t.Fatal(err)
	}
	return pg, eng
}

func TestPaper001Exact(t *testing.T) {
	_, eng := paper001(t)
	if math.Abs(eng.Z()-1) > 1e-12 {
		t.Fatalf("Z = %v, want 1 (normalized table)", eng.Z())
	}
	// Pr(e1=1) = 0.2+0.2+0.1+0.1 = 0.6
	p, err := eng.MarginalPresent(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.6) > 1e-12 {
		t.Fatalf("Pr(e1) = %v, want 0.6", p)
	}
	// Pr(e1=1, e2=1, e3=1) = 0.2 (the full triangle world).
	es := graph.NewEdgeSet(3)
	es.Add(0)
	es.Add(1)
	es.Add(2)
	p, err = eng.ProbAllPresent(es)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.2) > 1e-12 {
		t.Fatalf("Pr(all) = %v, want 0.2", p)
	}
	// Pr(all absent) = 0.1.
	p, err = eng.ProbAllAbsent(es)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.1) > 1e-12 {
		t.Fatalf("Pr(none) = %v, want 0.1", p)
	}
}

func TestCertainEdgesAlwaysPresent(t *testing.T) {
	g := chain(4) // 3 edges; only edge 1 uncertain
	pg := MustNew(g, []JPT{NewIndependentJPT(1, 0.5)})
	eng, err := NewEngine(pg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ed := range []graph.EdgeID{0, 2} {
		p, err := eng.MarginalPresent(ed)
		if err != nil {
			t.Fatal(err)
		}
		if p != 1 {
			t.Fatalf("certain edge %d marginal = %v, want 1", ed, p)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		w := eng.SampleWorld(rng)
		if !w.Contains(0) || !w.Contains(2) {
			t.Fatal("sampled world missing certain edge")
		}
	}
	// Asserting a certain edge absent is impossible evidence.
	p, err := eng.ProbLits([]Literal{{Edge: 0, Present: false}})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("Pr(certain edge absent) = %v, want 0", p)
	}
}

// enumProb computes Pr(all lits hold) by brute-force world enumeration.
func enumProb(t *testing.T, eng *Engine, lits []Literal) float64 {
	t.Helper()
	total := 0.0
	err := EnumerateWorlds(eng, func(w graph.EdgeSet, p float64) bool {
		for _, l := range lits {
			if w.Contains(l.Edge) != l.Present {
				return true
			}
		}
		total += p
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

func TestEngineAgainstEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pg := randomPGraph(rng, 4+rng.Intn(3), 3+rng.Intn(4))
		eng, err := NewEngine(pg)
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		// World probabilities must sum to 1.
		sum := 0.0
		if err := EnumerateWorlds(eng, func(w graph.EdgeSet, p float64) bool {
			sum += p
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		// Random literal queries match enumeration.
		for trial := 0; trial < 4; trial++ {
			var lits []Literal
			for e := 0; e < pg.G.NumEdges(); e++ {
				if rng.Intn(3) == 0 {
					lits = append(lits, Literal{Edge: graph.EdgeID(e), Present: rng.Intn(2) == 0})
				}
			}
			want := enumProb(t, eng, lits)
			got, err := eng.ProbLits(lits)
			if err != nil {
				t.Fatalf("ProbLits: %v", err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Logf("seed %d lits %v: got %v want %v", seed, lits, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplingMatchesMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pg := randomPGraph(rng, 6, 6)
	eng, err := NewEngine(pg)
	if err != nil {
		t.Fatal(err)
	}
	const N = 40000
	counts := make([]int, pg.G.NumEdges())
	world := pg.NewWorld()
	scratch := make([]bool, pg.NumUncertain())
	for i := 0; i < N; i++ {
		eng.SampleWorldInto(rng, world, scratch)
		for e := 0; e < pg.G.NumEdges(); e++ {
			if world.Contains(graph.EdgeID(e)) {
				counts[e]++
			}
		}
	}
	for e := 0; e < pg.G.NumEdges(); e++ {
		want, err := eng.MarginalPresent(graph.EdgeID(e))
		if err != nil {
			t.Fatal(err)
		}
		got := float64(counts[e]) / N
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("edge %d: sampled %v, exact %v", e, got, want)
		}
	}
}

func TestConditionedSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pg := randomPGraph(rng, 6, 6)
	eng, err := NewEngine(pg)
	if err != nil {
		t.Fatal(err)
	}
	target := pg.UncertainEdges()[0]
	ev := []Literal{{Edge: target, Present: true}}
	cond, err := eng.NewConditioned(ev)
	if err != nil {
		t.Fatal(err)
	}
	// Evidence mass should match the unconditioned marginal.
	want, err := eng.MarginalPresent(target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond.ProbEvidence()-want) > 1e-9 {
		t.Fatalf("evidence mass %v, marginal %v", cond.ProbEvidence(), want)
	}
	// Every sampled world satisfies the evidence; other-edge frequencies
	// match exact conditionals.
	other := pg.UncertainEdges()[len(pg.UncertainEdges())-1]
	if other == target && pg.NumUncertain() > 1 {
		other = pg.UncertainEdges()[1]
	}
	const N = 30000
	hits := 0
	for i := 0; i < N; i++ {
		w := cond.SampleWorld(rng)
		if !w.Contains(target) {
			t.Fatal("conditioned sample violates evidence")
		}
		if w.Contains(other) {
			hits++
		}
	}
	wantCond, err := cond.MarginalPresent(other)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(hits) / N
	if math.Abs(got-wantCond) > 0.02 {
		t.Fatalf("conditional marginal: sampled %v, exact %v", got, wantCond)
	}
}

func TestContradictoryEvidence(t *testing.T) {
	g := chain(3)
	pg := MustNew(g, []JPT{NewIndependentJPT(0, 0.5), NewIndependentJPT(1, 0.5)})
	eng, err := NewEngine(pg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.NewConditioned([]Literal{{Edge: 0, Present: true}, {Edge: 0, Present: false}}); err == nil {
		t.Fatal("expected contradictory-evidence error")
	}
	// Contradictory literals in a query give probability 0.
	p, err := eng.ProbLits([]Literal{{Edge: 0, Present: true}, {Edge: 0, Present: false}})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Fatalf("Pr(contradiction) = %v, want 0", p)
	}
}

func TestProbDNFExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pg := randomPGraph(rng, 5, 5)
		eng, err := NewEngine(pg)
		if err != nil {
			t.Fatal(err)
		}
		ne := pg.G.NumEdges()
		nClauses := 1 + rng.Intn(3)
		clauses := make([]graph.EdgeSet, nClauses)
		for i := range clauses {
			clauses[i] = graph.NewEdgeSet(ne)
			for e := 0; e < ne; e++ {
				if rng.Intn(3) == 0 {
					clauses[i].Add(graph.EdgeID(e))
				}
			}
			if clauses[i].Count() == 0 {
				clauses[i].Add(graph.EdgeID(rng.Intn(ne)))
			}
		}
		got, err := ProbDNFExact(eng, clauses, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: a world satisfies the DNF if it contains some clause.
		want := 0.0
		if err := EnumerateWorlds(eng, func(w graph.EdgeSet, p float64) bool {
			for _, c := range clauses {
				if w.ContainsAll(c) {
					want += p
					break
				}
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestProbConjNegConj(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pg := randomPGraph(rng, 5, 5)
		eng, err := NewEngine(pg)
		if err != nil {
			t.Fatal(err)
		}
		ne := pg.G.NumEdges()
		mk := func() graph.EdgeSet {
			s := graph.NewEdgeSet(ne)
			for e := 0; e < ne; e++ {
				if rng.Intn(3) == 0 {
					s.Add(graph.EdgeID(e))
				}
			}
			if s.Count() == 0 {
				s.Add(graph.EdgeID(rng.Intn(ne)))
			}
			return s
		}
		base := mk()
		others := []graph.EdgeSet{mk(), mk()}
		for _, present := range []bool{true, false} {
			got, err := ProbConjNegConj(eng, &base, others, present, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := 0.0
			if err := EnumerateWorlds(eng, func(w graph.EdgeSet, p float64) bool {
				holds := func(s graph.EdgeSet) bool {
					for _, e := range s.Slice() {
						if w.Contains(e) != present {
							return false
						}
					}
					return true
				}
				if !holds(base) {
					return true
				}
				for _, o := range others {
					if holds(o) {
						return true
					}
				}
				want += p
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Logf("seed %d present=%v: got %v want %v", seed, present, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIsNeighborEdgeSet(t *testing.T) {
	b := graph.NewBuilder("x")
	v0 := b.AddVertex("a")
	v1 := b.AddVertex("a")
	v2 := b.AddVertex("a")
	v3 := b.AddVertex("a")
	e01 := b.MustAddEdge(v0, v1, "")
	e02 := b.MustAddEdge(v0, v2, "")
	e03 := b.MustAddEdge(v0, v3, "")
	e12 := b.MustAddEdge(v1, v2, "")
	e23 := b.MustAddEdge(v2, v3, "")
	g := b.Build()
	cases := []struct {
		edges []graph.EdgeID
		want  bool
	}{
		{[]graph.EdgeID{e01}, true},            // single edge
		{[]graph.EdgeID{e01, e02, e03}, true},  // star at v0
		{[]graph.EdgeID{e01, e02, e12}, true},  // triangle v0,v1,v2
		{[]graph.EdgeID{e01, e23}, false},      // disjoint pair
		{[]graph.EdgeID{}, false},              // empty
		{[]graph.EdgeID{e01, e12, e23}, false}, // path, no common vertex
	}
	for i, c := range cases {
		if got := IsNeighborEdgeSet(g, c.edges); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
}

func TestNewIndependent(t *testing.T) {
	g := chain(4)
	pg, err := NewIndependent(g, map[graph.EdgeID]float64{0: 0.3, 1: 0.7, 2: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(pg)
	if err != nil {
		t.Fatal(err)
	}
	for e, want := range map[graph.EdgeID]float64{0: 0.3, 1: 0.7, 2: 0.5} {
		got, err := eng.MarginalPresent(e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("edge %d marginal %v want %v", e, got, want)
		}
	}
	// Joint = product under independence.
	es := graph.NewEdgeSet(3)
	es.Add(0)
	es.Add(1)
	got, err := eng.ProbAllPresent(es)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.21) > 1e-12 {
		t.Fatalf("joint %v want 0.21", got)
	}
	if _, err := NewIndependent(g, map[graph.EdgeID]float64{0: 1.5}); err == nil {
		t.Fatal("expected out-of-range probability error")
	}
}

func TestLiteralsKey(t *testing.T) {
	a := []Literal{{Edge: 2, Present: true}, {Edge: 1, Present: false}}
	b := []Literal{{Edge: 1, Present: false}, {Edge: 2, Present: true}}
	if LiteralsKey(a) != LiteralsKey(b) {
		t.Fatal("key must be order-independent")
	}
	c := []Literal{{Edge: 1, Present: true}, {Edge: 2, Present: true}}
	if LiteralsKey(a) == LiteralsKey(c) {
		t.Fatal("different polarity must change key")
	}
}

func TestSharedEdgeJPTsNormalize(t *testing.T) {
	// Two tables both covering edge 1 (paper Figure 1 structure): the raw
	// product is unnormalized; the engine must still produce a proper
	// distribution.
	g := chain(4) // edges 0,1,2
	j1 := JPT{Edges: []graph.EdgeID{0, 1}, P: []float64{0.1, 0.2, 0.3, 0.4}}
	j2 := JPT{Edges: []graph.EdgeID{1, 2}, P: []float64{0.25, 0.25, 0.25, 0.25}}
	pg := MustNew(g, []JPT{j1, j2})
	eng, err := NewEngine(pg)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	if err := EnumerateWorlds(eng, func(w graph.EdgeSet, p float64) bool {
		sum += p
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("world probabilities sum to %v, want 1", sum)
	}
}
