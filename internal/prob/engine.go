package prob

import (
	"fmt"
	"math/rand"
	"sort"

	"probgraph/internal/graph"
)

// MaxFactorWidth bounds the arity of intermediate factors during variable
// elimination. Neighbor-edge JPTs keep the effective treewidth small; if a
// pathological model exceeds this, engine construction fails rather than
// exhausting memory.
const MaxFactorWidth = 22

// factor is a table over a sorted list of engine variables. tab[m] is the
// weight of the assignment where variable vars[i] is true iff bit i of m is
// set.
type factor struct {
	vars []int
	tab  []float64
}

// eval returns the factor's value under a global assignment.
func (f *factor) eval(assign []bool) float64 {
	idx := 0
	for i, v := range f.vars {
		if assign[v] {
			idx |= 1 << i
		}
	}
	return f.tab[idx]
}

// elimStep records the factors combined when one variable was summed out;
// replayed in reverse for exact backward sampling.
type elimStep struct {
	v       int
	factors []*factor
}

// Engine performs exact inference over a PGraph, optionally with evidence
// baked in. Construction runs one recorded variable-elimination pass; each
// subsequent SampleWorld is a cheap backward pass. After construction an
// Engine is immutable, so concurrent queries and sampling are safe provided
// each goroutine supplies its own rng and scratch buffers (QueryBatch and
// the PMI builder rely on this).
type Engine struct {
	pg       *PGraph
	evidence map[int]bool // variable -> forced value
	steps    []elimStep
	z        float64
	zFull    float64       // partition function of the unconditioned model
	template graph.EdgeSet // certain-edges-only world, built lazily
}

// NewEngine builds an inference engine for pg with no evidence.
func NewEngine(pg *PGraph) (*Engine, error) {
	return newEngine(pg, nil, 0)
}

// NewConditioned builds an engine whose distribution is pg's conditioned on
// the given literals. SampleWorld then draws worlds consistent with the
// evidence; Z returns the evidence probability mass times the base Z.
func (e *Engine) NewConditioned(lits []Literal) (*Engine, error) {
	ev := make(map[int]bool, len(lits))
	for _, l := range lits {
		v, ok := e.pg.varOf[l.Edge]
		if !ok {
			if l.Present {
				continue // certain edge asserted present: vacuous
			}
			return nil, fmt.Errorf("prob: evidence asserts certain edge %d absent", l.Edge)
		}
		if prev, dup := ev[v]; dup && prev != l.Present {
			return nil, fmt.Errorf("prob: contradictory evidence on edge %d", l.Edge)
		}
		ev[v] = l.Present
	}
	return newEngine(e.pg, ev, e.zFull)
}

func newEngine(pg *PGraph, evidence map[int]bool, zFull float64) (*Engine, error) {
	e := &Engine{pg: pg, evidence: evidence}
	if err := e.eliminate(); err != nil {
		return nil, err
	}
	if zFull == 0 {
		zFull = e.z
	}
	e.zFull = zFull
	e.template = pg.NewWorld()
	return e, nil
}

// eliminate runs recorded variable elimination with a min-degree ordering.
func (e *Engine) eliminate() error {
	n := len(e.pg.uncertain)
	// Build initial factors from JPTs, applying evidence by zeroing
	// incompatible entries (keeps factor shapes simple and exact).
	var factors []*factor
	for _, t := range e.pg.JPTs {
		f := &factor{vars: make([]int, len(t.Edges)), tab: append([]float64(nil), t.P...)}
		for i, ed := range t.Edges {
			f.vars[i] = e.pg.varOf[ed]
		}
		factors = append(factors, f)
	}
	for v, val := range e.evidence {
		// A unit factor pinning the variable; also handles variables whose
		// JPTs would otherwise disagree with evidence.
		tab := []float64{1, 0}
		if val {
			tab = []float64{0, 1}
		}
		factors = append(factors, &factor{vars: []int{v}, tab: tab})
	}

	// Interaction structure: which factors mention each variable.
	inFactor := make([][]int, n) // var -> factor indices (into factors, -1 = consumed)
	for fi, f := range factors {
		for _, v := range f.vars {
			inFactor[v] = append(inFactor[v], fi)
		}
	}
	alive := make([]bool, 0, len(factors)*2)
	for range factors {
		alive = append(alive, true)
	}

	eliminated := make([]bool, n)
	for count := 0; count < n; count++ {
		// Min-degree: pick the variable whose combined factor has the fewest
		// distinct variables.
		best, bestW := -1, 1<<30
		for v := 0; v < n; v++ {
			if eliminated[v] {
				continue
			}
			w := e.widthIfEliminated(v, factors, alive, inFactor)
			if w < bestW {
				best, bestW = v, w
			}
		}
		if bestW > MaxFactorWidth {
			return fmt.Errorf("prob: elimination width %d exceeds limit %d (model too densely coupled)", bestW, MaxFactorWidth)
		}
		v := best
		var gathered []*factor
		for _, fi := range inFactor[v] {
			if alive[fi] {
				gathered = append(gathered, factors[fi])
				alive[fi] = false
			}
		}
		e.steps = append(e.steps, elimStep{v: v, factors: gathered})
		nf := sumOut(gathered, v)
		factors = append(factors, nf)
		alive = append(alive, true)
		fi := len(factors) - 1
		for _, nv := range nf.vars {
			inFactor[nv] = append(inFactor[nv], fi)
		}
		eliminated[v] = true
	}

	// All remaining live factors are constants; their product is Z.
	z := 1.0
	for fi, f := range factors {
		if alive[fi] {
			if len(f.vars) != 0 {
				return fmt.Errorf("prob: internal: live factor with variables after elimination")
			}
			z *= f.tab[0]
		}
	}
	if z < 0 {
		return fmt.Errorf("prob: negative partition function")
	}
	e.z = z
	return nil
}

// widthIfEliminated returns the number of distinct variables in the union of
// live factors mentioning v.
func (e *Engine) widthIfEliminated(v int, factors []*factor, alive []bool, inFactor [][]int) int {
	seen := map[int]bool{}
	for _, fi := range inFactor[v] {
		if !alive[fi] {
			continue
		}
		for _, u := range factors[fi].vars {
			seen[u] = true
		}
	}
	return len(seen)
}

// sumOut multiplies the gathered factors and sums out v.
func sumOut(gathered []*factor, v int) *factor {
	varSet := map[int]bool{}
	for _, f := range gathered {
		for _, u := range f.vars {
			if u != v {
				varSet[u] = true
			}
		}
	}
	outVars := make([]int, 0, len(varSet))
	for u := range varSet {
		outVars = append(outVars, u)
	}
	sort.Ints(outVars)
	out := &factor{vars: outVars, tab: make([]float64, 1<<len(outVars))}

	// Enumerate assignments over outVars ∪ {v}.
	pos := make(map[int]int, len(outVars))
	for i, u := range outVars {
		pos[u] = i
	}
	total := 1 << len(outVars)
	assign := make(map[int]bool, len(outVars)+1)
	for m := 0; m < total; m++ {
		for i, u := range outVars {
			assign[u] = m&(1<<i) != 0
		}
		sum := 0.0
		for _, vv := range []bool{false, true} {
			assign[v] = vv
			prod := 1.0
			for _, f := range gathered {
				idx := 0
				for i, u := range f.vars {
					if assign[u] {
						idx |= 1 << i
					}
				}
				prod *= f.tab[idx]
			}
			sum += prod
		}
		out.tab[m] = sum
	}
	return out
}

// Z returns the (unnormalized) total weight of the engine's distribution.
// For an unconditioned engine over normalized edge-disjoint JPTs this is 1.
func (e *Engine) Z() float64 { return e.z }

// NumEdges returns the total edge count of the underlying graph.
func (e *Engine) NumEdges() int { return e.pg.G.NumEdges() }

// NumUncertain returns the number of uncertain edge variables.
func (e *Engine) NumUncertain() int { return len(e.pg.uncertain) }

// PGraph returns the engine's underlying probabilistic graph.
func (e *Engine) PGraph() *PGraph { return e.pg }

// ProbEvidence returns the probability mass of this engine's evidence under
// the unconditioned model: Z(evidence)/Z(). For an unconditioned engine it
// is 1.
func (e *Engine) ProbEvidence() float64 {
	if e.zFull == 0 {
		return 0
	}
	return e.z / e.zFull
}

// ProbLits returns the probability that all literals hold, conditioned on
// this engine's evidence.
func (e *Engine) ProbLits(lits []Literal) (float64, error) {
	if e.z == 0 {
		return 0, fmt.Errorf("prob: conditioning event has zero probability")
	}
	merged := make([]Literal, 0, len(lits)+len(e.evidence))
	merged = append(merged, lits...)
	for v, val := range e.evidence {
		merged = append(merged, Literal{Edge: e.pg.uncertain[v], Present: val})
	}
	cond, err := e.condProbEngine(merged)
	if err != nil {
		return 0, err
	}
	return cond.z / e.z, nil
}

// condProbEngine builds a throwaway engine with the given evidence; it
// reuses the PGraph so construction cost is one VE pass.
func (e *Engine) condProbEngine(lits []Literal) (*Engine, error) {
	ev := make(map[int]bool, len(lits))
	for _, l := range lits {
		v, ok := e.pg.varOf[l.Edge]
		if !ok {
			if l.Present {
				continue
			}
			// Certain edge asserted absent: impossible.
			return &Engine{pg: e.pg, z: 0, zFull: e.zFull}, nil
		}
		if prev, dup := ev[v]; dup && prev != l.Present {
			return &Engine{pg: e.pg, z: 0, zFull: e.zFull}, nil
		}
		ev[v] = l.Present
	}
	eng := &Engine{pg: e.pg, evidence: ev, zFull: e.zFull}
	if err := eng.eliminate(); err != nil {
		return nil, err
	}
	return eng, nil
}

// ProbAllPresent returns Pr(every edge in es exists | evidence). This is the
// probability of one embedding's existence (the paper's Pr(Bf)).
func (e *Engine) ProbAllPresent(es graph.EdgeSet) (float64, error) {
	return e.ProbLits(AllPresent(es))
}

// ProbAllAbsent returns Pr(every edge in es is missing | evidence), the
// probability of one embedding cut's presence (the paper's Pr(Bc)).
func (e *Engine) ProbAllAbsent(es graph.EdgeSet) (float64, error) {
	return e.ProbLits(AllAbsent(es))
}

// MarginalPresent returns Pr(edge exists | evidence). Certain edges have
// probability 1.
func (e *Engine) MarginalPresent(ed graph.EdgeID) (float64, error) {
	if _, ok := e.pg.varOf[ed]; !ok {
		return 1, nil
	}
	return e.ProbLits([]Literal{{Edge: ed, Present: true}})
}

// SampleWorld draws one possible world exactly from the engine's
// distribution: backward sampling over the recorded elimination steps, then
// certain edges are added. The result is a fresh EdgeSet over all edges of G.
func (e *Engine) SampleWorld(rng *rand.Rand) graph.EdgeSet {
	n := len(e.pg.uncertain)
	assign := make([]bool, n)
	for i := len(e.steps) - 1; i >= 0; i-- {
		st := e.steps[i]
		var w [2]float64
		for _, val := range []bool{false, true} {
			assign[st.v] = val
			prod := 1.0
			for _, f := range st.factors {
				prod *= f.eval(assign)
			}
			if val {
				w[1] = prod
			} else {
				w[0] = prod
			}
		}
		total := w[0] + w[1]
		if total <= 0 {
			assign[st.v] = false
			continue
		}
		assign[st.v] = rng.Float64()*total < w[1]
	}
	world := e.pg.NewWorld()
	for v, present := range assign {
		if present {
			world.Add(e.pg.uncertain[v])
		}
	}
	return world
}

// SampleWorldInto is SampleWorld writing into a caller-provided world (must
// have capacity for all edges of G), avoiding allocation in sampling loops.
// scratch must have capacity for NumUncertain() booleans.
func (e *Engine) SampleWorldInto(rng *rand.Rand, world graph.EdgeSet, scratch []bool) {
	n := len(e.pg.uncertain)
	assign := scratch[:n]
	for i := range assign {
		assign[i] = false
	}
	for i := len(e.steps) - 1; i >= 0; i-- {
		st := e.steps[i]
		assign[st.v] = false
		w0 := 1.0
		for _, f := range st.factors {
			w0 *= f.eval(assign)
		}
		assign[st.v] = true
		w1 := 1.0
		for _, f := range st.factors {
			w1 *= f.eval(assign)
		}
		total := w0 + w1
		if total <= 0 {
			assign[st.v] = false
			continue
		}
		assign[st.v] = rng.Float64()*total < w1
	}
	world.CopyFrom(e.template)
	for v := 0; v < n; v++ {
		if assign[v] {
			world.Add(e.pg.uncertain[v])
		}
	}
}

// WorldProb returns the normalized probability of one fully specified world
// under the unconditioned model. Worlds missing a certain edge have
// probability zero.
func (e *Engine) WorldProb(world graph.EdgeSet) float64 {
	if e.zFull == 0 {
		return 0
	}
	for ed := 0; ed < e.pg.G.NumEdges(); ed++ {
		if !e.pg.IsUncertain(graph.EdgeID(ed)) && !world.Contains(graph.EdgeID(ed)) {
			return 0
		}
	}
	prod := 1.0
	for _, t := range e.pg.JPTs {
		idx := 0
		for i, ed := range t.Edges {
			if world.Contains(ed) {
				idx |= 1 << i
			}
		}
		prod *= t.P[idx]
	}
	return prod / e.zFull
}
