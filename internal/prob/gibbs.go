package prob

import (
	"fmt"
	"math/rand"

	"probgraph/internal/graph"
)

// Gibbs is an approximate possible-world sampler for models whose coupling
// is too dense for exact variable elimination (Engine construction fails
// beyond MaxFactorWidth). It runs single-site Gibbs sweeps over the
// uncertain edges; the chain is ergodic whenever every JPT entry is
// strictly positive (zero entries can disconnect the state space, so
// NewGibbs rejects them).
//
// Use Engine when it is feasible — it is exact and faster per sample.
// Gibbs exists so that adversarially dense correlation structures degrade
// to approximation instead of failure.
type Gibbs struct {
	pg        *PGraph
	factorsOf [][]int // variable -> indices into pg.JPTs
	assign    []bool
	world     graph.EdgeSet
}

// NewGibbs prepares a sampler with all uncertain edges initially absent.
func NewGibbs(pg *PGraph) (*Gibbs, error) {
	for ji, j := range pg.JPTs {
		for ri, p := range j.P {
			if p <= 0 {
				return nil, fmt.Errorf("prob: gibbs requires strictly positive JPTs (JPT %d row %d is %v)", ji, ri, p)
			}
		}
	}
	g := &Gibbs{
		pg:        pg,
		factorsOf: make([][]int, pg.NumUncertain()),
		assign:    make([]bool, pg.NumUncertain()),
		world:     pg.NewWorld(),
	}
	for ji, j := range pg.JPTs {
		for _, e := range j.Edges {
			v := pg.varOf[e]
			g.factorsOf[v] = append(g.factorsOf[v], ji)
		}
	}
	return g, nil
}

// sweep resamples every variable once from its full conditional.
func (g *Gibbs) sweep(rng *rand.Rand) {
	for v := range g.assign {
		w0, w1 := 1.0, 1.0
		for _, ji := range g.factorsOf[v] {
			j := &g.pg.JPTs[ji]
			idx0, idx1 := 0, 0
			for bi, e := range j.Edges {
				ev := g.pg.varOf[e]
				if ev == v {
					idx1 |= 1 << bi
					continue
				}
				if g.assign[ev] {
					idx0 |= 1 << bi
					idx1 |= 1 << bi
				}
			}
			w0 *= j.P[idx0]
			w1 *= j.P[idx1]
		}
		total := w0 + w1
		g.assign[v] = total > 0 && rng.Float64()*total < w1
	}
}

// Run performs burnin sweeps, then emits samples taken every thin sweeps
// until visit returns false or count samples were delivered (count <= 0
// means unbounded). The world passed to visit is reused; clone to retain.
func (g *Gibbs) Run(rng *rand.Rand, burnin, thin, count int, visit func(world graph.EdgeSet) bool) {
	if thin < 1 {
		thin = 1
	}
	for i := 0; i < burnin; i++ {
		g.sweep(rng)
	}
	emitted := 0
	for count <= 0 || emitted < count {
		for i := 0; i < thin; i++ {
			g.sweep(rng)
		}
		g.world.CopyFrom(g.pg.NewWorld())
		for v, present := range g.assign {
			if present {
				g.world.Add(g.pg.uncertain[v])
			}
		}
		emitted++
		if !visit(g.world) {
			return
		}
	}
}

// EstimateMarginals runs the chain and returns per-edge presence
// frequencies (certain edges report 1).
func (g *Gibbs) EstimateMarginals(rng *rand.Rand, burnin, thin, samples int) []float64 {
	counts := make([]int, g.pg.G.NumEdges())
	n := 0
	g.Run(rng, burnin, thin, samples, func(w graph.EdgeSet) bool {
		n++
		for e := 0; e < g.pg.G.NumEdges(); e++ {
			if w.Contains(graph.EdgeID(e)) {
				counts[e]++
			}
		}
		return true
	})
	out := make([]float64, len(counts))
	for e, c := range counts {
		if g.pg.IsUncertain(graph.EdgeID(e)) {
			out[e] = float64(c) / float64(maxInt(n, 1))
		} else {
			out[e] = 1
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
