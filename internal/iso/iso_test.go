package iso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"probgraph/internal/graph"
)

// bruteForceExists enumerates all injective vertex maps.
func bruteForceExists(p, t *graph.Graph, mask *graph.EdgeSet) bool {
	n, m := p.NumVertices(), t.NumVertices()
	if n > m {
		return false
	}
	assign := make([]graph.VertexID, n)
	used := make([]bool, m)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == n {
			return true
		}
		for tv := 0; tv < m; tv++ {
			if used[tv] || p.VertexLabel(graph.VertexID(i)) != t.VertexLabel(graph.VertexID(tv)) {
				continue
			}
			ok := true
			for _, h := range p.Neighbors(graph.VertexID(i)) {
				if int(h.To) >= i {
					continue
				}
				id, exists := t.EdgeBetween(graph.VertexID(tv), assign[h.To])
				if !exists || (mask != nil && !mask.Contains(id)) || t.EdgeLabel(id) != p.EdgeLabel(h.Edge) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assign[i] = graph.VertexID(tv)
			used[tv] = true
			if rec(i + 1) {
				return true
			}
			used[tv] = false
		}
		return false
	}
	return rec(0)
}

func bruteForceCount(p, t *graph.Graph, mask *graph.EdgeSet) int {
	n, m := p.NumVertices(), t.NumVertices()
	if n > m {
		return 0
	}
	count := 0
	assign := make([]graph.VertexID, n)
	used := make([]bool, m)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			count++
			return
		}
		for tv := 0; tv < m; tv++ {
			if used[tv] || p.VertexLabel(graph.VertexID(i)) != t.VertexLabel(graph.VertexID(tv)) {
				continue
			}
			ok := true
			for _, h := range p.Neighbors(graph.VertexID(i)) {
				if int(h.To) >= i {
					continue
				}
				id, exists := t.EdgeBetween(graph.VertexID(tv), assign[h.To])
				if !exists || (mask != nil && !mask.Contains(id)) || t.EdgeLabel(id) != p.EdgeLabel(h.Edge) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assign[i] = graph.VertexID(tv)
			used[tv] = true
			rec(i + 1)
			used[tv] = false
		}
	}
	rec(0)
	return count
}

func randomGraph(rng *rand.Rand, nv, ne int, vlabels, elabels []graph.Label) *graph.Graph {
	b := graph.NewBuilder("rnd")
	for i := 0; i < nv; i++ {
		b.AddVertex(vlabels[rng.Intn(len(vlabels))])
	}
	for tries, added := 0, 0; added < ne && tries < 20*ne; tries++ {
		u := graph.VertexID(rng.Intn(nv))
		v := graph.VertexID(rng.Intn(nv))
		if u == v {
			continue
		}
		if _, err := b.AddEdge(u, v, elabels[rng.Intn(len(elabels))]); err == nil {
			added++
		}
	}
	return b.Build()
}

func TestExistsAgainstBruteForce(t *testing.T) {
	vlab := []graph.Label{"a", "b"}
	elab := []graph.Label{"", "x"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tg := randomGraph(rng, 4+rng.Intn(4), 3+rng.Intn(7), vlab, elab)
		pg := randomGraph(rng, 2+rng.Intn(3), 1+rng.Intn(3), vlab, elab)
		return Exists(pg, tg, nil) == bruteForceExists(pg, tg, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExistsWithMaskAgainstBruteForce(t *testing.T) {
	vlab := []graph.Label{"a", "b"}
	elab := []graph.Label{""}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tg := randomGraph(rng, 4+rng.Intn(4), 4+rng.Intn(6), vlab, elab)
		pg := randomGraph(rng, 2+rng.Intn(3), 1+rng.Intn(3), vlab, elab)
		mask := graph.NewEdgeSet(tg.NumEdges())
		for e := 0; e < tg.NumEdges(); e++ {
			if rng.Intn(2) == 0 {
				mask.Add(graph.EdgeID(e))
			}
		}
		return Exists(pg, tg, &mask) == bruteForceExists(pg, tg, &mask)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountAgainstBruteForce(t *testing.T) {
	vlab := []graph.Label{"a", "b"}
	elab := []graph.Label{""}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tg := randomGraph(rng, 4+rng.Intn(3), 3+rng.Intn(5), vlab, elab)
		pg := randomGraph(rng, 2+rng.Intn(2), 1+rng.Intn(2), vlab, elab)
		return Count(pg, tg, nil, 0) == bruteForceCount(pg, tg, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// paperQueryAnd002 builds the paper's Figure 1 query q and graph 002.
func paperQueryAnd002(t *testing.T) (q, g002 *graph.Graph) {
	t.Helper()
	// q: vertices a, a, b, b, c — edges labeled "" forming the house-like
	// shape. We reproduce the shape: a-a, a-b, a-b, b-b, b-c (5 edges).
	qb := graph.NewBuilder("q")
	a1 := qb.AddVertex("a")
	a2 := qb.AddVertex("a")
	b1 := qb.AddVertex("b")
	b2 := qb.AddVertex("b")
	c := qb.AddVertex("c")
	qb.MustAddEdge(a1, a2, "")
	qb.MustAddEdge(a1, b1, "")
	qb.MustAddEdge(a2, b2, "")
	qb.MustAddEdge(b1, b2, "")
	qb.MustAddEdge(b2, c, "")

	gb := graph.NewBuilder("002")
	ga1 := gb.AddVertex("a")
	ga2 := gb.AddVertex("a")
	gb1 := gb.AddVertex("b")
	gb2 := gb.AddVertex("b")
	gc := gb.AddVertex("c")
	gb.MustAddEdge(ga1, ga2, "") // e1
	gb.MustAddEdge(ga1, gb1, "") // e2
	gb.MustAddEdge(ga2, gb2, "") // e3
	gb.MustAddEdge(gb1, gb2, "") // e4
	gb.MustAddEdge(gb2, gc, "")  // e5
	return qb.Build(), gb.Build()
}

func TestPaperFigure1(t *testing.T) {
	q, g := paperQueryAnd002(t)
	if !Exists(q, g, nil) {
		t.Fatal("q must embed in the full graph 002")
	}
	// World (1) of Figure 2: e5 absent — q does not embed (needs c), but
	// q minus its c-edge does.
	mask := graph.FullEdgeSet(g.NumEdges())
	mask.Remove(4) // e5
	if Exists(q, g, &mask) {
		t.Fatal("q must not embed when e5 is absent")
	}
	rq := q.DeleteEdges([]graph.EdgeID{4}).DropIsolated()
	if !Exists(rq, g, &mask) {
		t.Fatal("relaxed q (c-edge deleted) must embed in world (1)")
	}
}

func TestDisconnectedPattern(t *testing.T) {
	// Pattern: two disjoint edges a-b, a-b. Target: path a-b-a-b.
	pb := graph.NewBuilder("p")
	pa1 := pb.AddVertex("a")
	pb1 := pb.AddVertex("b")
	pa2 := pb.AddVertex("a")
	pb2 := pb.AddVertex("b")
	pb.MustAddEdge(pa1, pb1, "")
	pb.MustAddEdge(pa2, pb2, "")
	p := pb.Build()

	tb := graph.NewBuilder("t")
	ta1 := tb.AddVertex("a")
	tb1 := tb.AddVertex("b")
	ta2 := tb.AddVertex("a")
	tb2 := tb.AddVertex("b")
	tb.MustAddEdge(ta1, tb1, "")
	tb.MustAddEdge(tb1, ta2, "")
	tb.MustAddEdge(ta2, tb2, "")
	tg := tb.Build()

	if !Exists(p, tg, nil) {
		t.Fatal("disconnected pattern should embed (edges {0,1} and {2,3})")
	}
	if got, want := Count(p, tg, nil, 0), bruteForceCount(p, tg, nil); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestEdgeSetsDedup(t *testing.T) {
	// Pattern a-a in triangle of a's: 3 edges, each found twice (two vertex
	// orders) -> 3 distinct edge sets from 6 embeddings.
	pb := graph.NewBuilder("p")
	x := pb.AddVertex("a")
	y := pb.AddVertex("a")
	pb.MustAddEdge(x, y, "")
	p := pb.Build()

	tb := graph.NewBuilder("t")
	v0 := tb.AddVertex("a")
	v1 := tb.AddVertex("a")
	v2 := tb.AddVertex("a")
	tb.MustAddEdge(v0, v1, "")
	tb.MustAddEdge(v1, v2, "")
	tb.MustAddEdge(v0, v2, "")
	tg := tb.Build()

	if got := len(FindAll(p, tg, nil, 0)); got != 6 {
		t.Fatalf("embeddings = %d, want 6", got)
	}
	sets := EdgeSets(p, tg, nil, 0)
	if len(sets) != 3 {
		t.Fatalf("distinct edge sets = %d, want 3", len(sets))
	}
	for _, s := range sets {
		if s.Count() != 1 {
			t.Fatalf("each edge set should have exactly 1 edge, got %d", s.Count())
		}
	}
}

func TestEdgeSetsLimit(t *testing.T) {
	pb := graph.NewBuilder("p")
	x := pb.AddVertex("a")
	y := pb.AddVertex("a")
	pb.MustAddEdge(x, y, "")
	p := pb.Build()
	tb := graph.NewBuilder("t")
	prev := tb.AddVertex("a")
	for i := 0; i < 9; i++ {
		next := tb.AddVertex("a")
		tb.MustAddEdge(prev, next, "")
		prev = next
	}
	tg := tb.Build()
	if got := len(EdgeSets(p, tg, nil, 4)); got != 4 {
		t.Fatalf("limited edge sets = %d, want 4", got)
	}
}

func TestEmbeddingEdgesConsistent(t *testing.T) {
	q, g := paperQueryAnd002(t)
	for _, em := range FindAll(q, g, nil, 0) {
		if em.Edges.Count() != q.NumEdges() {
			t.Fatalf("embedding uses %d edges, want %d", em.Edges.Count(), q.NumEdges())
		}
		for _, e := range q.Edges() {
			id, ok := g.EdgeBetween(em.VMap[e.U], em.VMap[e.V])
			if !ok || !em.Edges.Contains(id) {
				t.Fatal("embedding edge set inconsistent with vertex map")
			}
		}
	}
}

func TestLabelMismatchRejected(t *testing.T) {
	pb := graph.NewBuilder("p")
	x := pb.AddVertex("a")
	y := pb.AddVertex("b")
	pb.MustAddEdge(x, y, "L1")
	p := pb.Build()
	tb := graph.NewBuilder("t")
	u := tb.AddVertex("a")
	v := tb.AddVertex("b")
	tb.MustAddEdge(u, v, "L2")
	tg := tb.Build()
	if Exists(p, tg, nil) {
		t.Fatal("edge label mismatch must prevent matching")
	}
}

func TestEmptyPattern(t *testing.T) {
	p := graph.NewBuilder("empty").Build()
	tb := graph.NewBuilder("t")
	tb.AddVertex("a")
	tg := tb.Build()
	if !Exists(p, tg, nil) {
		t.Fatal("empty pattern embeds trivially")
	}
	if got := Count(p, tg, nil, 0); got != 1 {
		t.Fatalf("empty pattern count = %d, want 1", got)
	}
}

func TestPatternLargerThanTarget(t *testing.T) {
	pb := graph.NewBuilder("p")
	x := pb.AddVertex("a")
	y := pb.AddVertex("a")
	z := pb.AddVertex("a")
	pb.MustAddEdge(x, y, "")
	pb.MustAddEdge(y, z, "")
	p := pb.Build()
	tb := graph.NewBuilder("t")
	u := tb.AddVertex("a")
	v := tb.AddVertex("a")
	tb.MustAddEdge(u, v, "")
	tg := tb.Build()
	if Exists(p, tg, nil) {
		t.Fatal("pattern larger than target cannot embed")
	}
}

func TestFindAllLimit(t *testing.T) {
	pb := graph.NewBuilder("p")
	x := pb.AddVertex("a")
	y := pb.AddVertex("a")
	pb.MustAddEdge(x, y, "")
	p := pb.Build()
	tb := graph.NewBuilder("t")
	v0 := tb.AddVertex("a")
	v1 := tb.AddVertex("a")
	v2 := tb.AddVertex("a")
	tb.MustAddEdge(v0, v1, "")
	tb.MustAddEdge(v1, v2, "")
	tb.MustAddEdge(v0, v2, "")
	tg := tb.Build()
	if got := len(FindAll(p, tg, nil, 2)); got != 2 {
		t.Fatalf("limited FindAll = %d, want 2", got)
	}
}

func TestMaxDisjointGreedy(t *testing.T) {
	mk := func(ids ...graph.EdgeID) graph.EdgeSet {
		s := graph.NewEdgeSet(16)
		for _, id := range ids {
			s.Add(id)
		}
		return s
	}
	sets := []graph.EdgeSet{mk(0, 1), mk(1, 2), mk(2, 3), mk(4, 5)}
	chosen := MaxDisjointGreedy(sets)
	// {0,1}, {2,3}, {4,5} are mutually disjoint: greedy should find 3.
	if len(chosen) != 3 {
		t.Fatalf("chose %d sets (%v), want 3", len(chosen), chosen)
	}
	for i := 0; i < len(chosen); i++ {
		for j := i + 1; j < len(chosen); j++ {
			if sets[chosen[i]].Intersects(sets[chosen[j]]) {
				t.Fatal("greedy selection not disjoint")
			}
		}
	}
	if len(MaxDisjointGreedy(nil)) != 0 {
		t.Fatal("empty input should produce empty output")
	}
}

func TestMaskedEmbeddingsSubsetOfUnmasked(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tg := randomGraph(rng, 5, 7, []graph.Label{"a"}, []graph.Label{""})
		pg := randomGraph(rng, 3, 2, []graph.Label{"a"}, []graph.Label{""})
		mask := graph.NewEdgeSet(tg.NumEdges())
		for e := 0; e < tg.NumEdges(); e++ {
			if rng.Intn(3) > 0 {
				mask.Add(graph.EdgeID(e))
			}
		}
		masked := EdgeSets(pg, tg, &mask, 0)
		all := EdgeSets(pg, tg, nil, 0)
		keys := make(map[string]bool, len(all))
		for _, s := range all {
			keys[s.Key()] = true
		}
		for _, s := range masked {
			if !keys[s.Key()] {
				return false
			}
			// Every used edge must be alive in the mask.
			if !mask.ContainsAll(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
