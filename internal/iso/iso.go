// Package iso implements subgraph isomorphism testing and embedding
// enumeration for labeled undirected graphs, in the style of VF2
// (Cordella/Foggia/Sansone/Vento, TPAMI 2004 — reference [10] of the paper)
// with a connectivity-aware static ordering and label/degree feasibility
// pruning.
//
// Matching is the paper's Definition 5: an injective vertex mapping that
// preserves vertex labels, maps every pattern edge onto a target edge, and
// preserves edge labels. Non-pattern edges of the target are unconstrained
// (non-induced matching). A match restricted to a possible world is obtained
// by passing the world's edge mask: target edges absent from the mask are
// treated as nonexistent.
package iso

import (
	"sort"

	"probgraph/internal/graph"
)

// Embedding is one occurrence of a pattern inside a target graph.
type Embedding struct {
	// VMap maps each pattern vertex to its target image.
	VMap []graph.VertexID
	// Edges is the set of target edges used by the pattern's edges. Two
	// embeddings with equal edge sets behave identically in every
	// probabilistic computation, so most callers deduplicate on this.
	Edges graph.EdgeSet
}

// matcher holds the search state for one (pattern, target) pair.
type matcher struct {
	p, t    *graph.Graph
	mask    *graph.EdgeSet
	order   []graph.VertexID // pattern vertices in matching order
	parent  []int            // index into order of an already-matched neighbor, or -1
	pmap    []graph.VertexID // pattern -> target, -1 when unmatched
	tused   []bool
	yield   func(*Embedding) bool
	stopped bool
}

// buildOrder computes a static matching order: a BFS through each pattern
// component starting from the most constrained vertex (rarest label, then
// highest degree), so that all but component-initial vertices have a matched
// parent to anchor candidate generation.
func buildOrder(p, t *graph.Graph) (order []graph.VertexID, parent []int) {
	n := p.NumVertices()
	order = make([]graph.VertexID, 0, n)
	parent = make([]int, 0, n)
	placed := make([]bool, n)
	pos := make([]int, n) // vertex -> index in order

	tLabelCount, _ := t.LabelCounts()
	rarity := func(v graph.VertexID) int { return tLabelCount[p.VertexLabel(v)] }

	for len(order) < n {
		// Pick the best unplaced vertex preferring attachment to the matched
		// prefix, then rare target label, then high degree.
		best := graph.VertexID(-1)
		bestParent := -1
		bestKey := [3]int{1 << 30, 1 << 30, 1 << 30}
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			par := -1
			for _, h := range p.Neighbors(graph.VertexID(v)) {
				if placed[h.To] {
					par = pos[h.To]
					break
				}
			}
			attached := 1
			if par >= 0 {
				attached = 0
			}
			key := [3]int{attached, rarity(graph.VertexID(v)), -p.Degree(graph.VertexID(v))}
			if key[0] < bestKey[0] || (key[0] == bestKey[0] && (key[1] < bestKey[1] || (key[1] == bestKey[1] && key[2] < bestKey[2]))) {
				best, bestParent, bestKey = graph.VertexID(v), par, key
			}
		}
		placed[best] = true
		pos[best] = len(order)
		order = append(order, best)
		parent = append(parent, bestParent)
	}
	return order, parent
}

// feasible performs the cheap global pre-checks: every pattern vertex label
// and edge label must occur at least as often in the target. With a world
// mask the edge check is skipped (counting masked labels costs as much as
// matching).
func feasible(p, t *graph.Graph, mask *graph.EdgeSet) bool {
	if p.NumVertices() > t.NumVertices() || p.NumEdges() > t.NumEdges() {
		return false
	}
	pv, pe := p.LabelCounts()
	tv, te := t.LabelCounts()
	for l, c := range pv {
		if tv[l] < c {
			return false
		}
	}
	if mask == nil {
		for l, c := range pe {
			if te[l] < c {
				return false
			}
		}
	}
	return true
}

func (m *matcher) run() {
	n := m.p.NumVertices()
	if n == 0 {
		em := Embedding{VMap: nil, Edges: graph.NewEdgeSet(m.t.NumEdges())}
		m.yield(&em)
		return
	}
	m.pmap = make([]graph.VertexID, n)
	for i := range m.pmap {
		m.pmap[i] = -1
	}
	m.tused = make([]bool, m.t.NumVertices())
	m.extend(0)
}

// edgeAlive reports whether target edge id exists under the world mask.
func (m *matcher) edgeAlive(id graph.EdgeID) bool {
	return m.mask == nil || m.mask.Contains(id)
}

// check verifies that mapping pattern vertex pv to target vertex tv is
// consistent: labels equal, tv unused, and every pattern edge from pv to an
// already-matched vertex has a live, label-matching target edge.
func (m *matcher) check(pv, tv graph.VertexID) bool {
	if m.tused[tv] || m.p.VertexLabel(pv) != m.t.VertexLabel(tv) {
		return false
	}
	if m.mask == nil && m.p.Degree(pv) > m.t.Degree(tv) {
		return false
	}
	for _, h := range m.p.Neighbors(pv) {
		w := m.pmap[h.To]
		if w < 0 {
			continue
		}
		id, ok := m.t.EdgeBetween(tv, w)
		if !ok || !m.edgeAlive(id) || m.t.EdgeLabel(id) != m.p.EdgeLabel(h.Edge) {
			return false
		}
	}
	return true
}

func (m *matcher) extend(depth int) {
	if m.stopped {
		return
	}
	if depth == len(m.order) {
		m.emit()
		return
	}
	pv := m.order[depth]
	if par := m.parent[depth]; par >= 0 {
		// Anchored: candidates are live neighbors of the parent's image.
		anchor := m.pmap[m.order[par]]
		// Find the pattern edge pv—order[par] to match labels early.
		var want graph.Label
		for _, h := range m.p.Neighbors(pv) {
			if h.To == m.order[par] {
				want = m.p.EdgeLabel(h.Edge)
				break
			}
		}
		for _, h := range m.t.Neighbors(anchor) {
			if !m.edgeAlive(h.Edge) || m.t.EdgeLabel(h.Edge) != want {
				continue
			}
			m.tryAssign(pv, h.To, depth)
			if m.stopped {
				return
			}
		}
		return
	}
	// Component-initial vertex: try every unused target vertex.
	for tv := 0; tv < m.t.NumVertices(); tv++ {
		m.tryAssign(pv, graph.VertexID(tv), depth)
		if m.stopped {
			return
		}
	}
}

func (m *matcher) tryAssign(pv, tv graph.VertexID, depth int) {
	if !m.check(pv, tv) {
		return
	}
	m.pmap[pv] = tv
	m.tused[tv] = true
	m.extend(depth + 1)
	m.pmap[pv] = -1
	m.tused[tv] = false
}

func (m *matcher) emit() {
	em := Embedding{
		VMap:  append([]graph.VertexID(nil), m.pmap...),
		Edges: graph.NewEdgeSet(m.t.NumEdges()),
	}
	for _, e := range m.p.Edges() {
		id, _ := m.t.EdgeBetween(em.VMap[e.U], em.VMap[e.V])
		em.Edges.Add(id)
	}
	if !m.yield(&em) {
		m.stopped = true
	}
}

// Exists reports whether pattern p is subgraph-isomorphic to target t,
// optionally restricted to the possible world mask (nil = certain graph).
func Exists(p, t *graph.Graph, mask *graph.EdgeSet) bool {
	if !feasible(p, t, mask) {
		return false
	}
	found := false
	order, parent := buildOrder(p, t)
	m := &matcher{p: p, t: t, mask: mask, order: order, parent: parent,
		yield: func(*Embedding) bool { found = true; return false }}
	m.run()
	return found
}

// ForEach enumerates embeddings of p in t (under mask) and calls fn for each;
// fn returns false to stop early. Embeddings are produced per injective
// vertex mapping; callers that only care about edge sets should deduplicate
// (see EdgeSets).
func ForEach(p, t *graph.Graph, mask *graph.EdgeSet, fn func(*Embedding) bool) {
	if !feasible(p, t, mask) {
		return
	}
	order, parent := buildOrder(p, t)
	m := &matcher{p: p, t: t, mask: mask, order: order, parent: parent, yield: fn}
	m.run()
}

// FindAll returns up to limit embeddings of p in t (limit <= 0 means all).
func FindAll(p, t *graph.Graph, mask *graph.EdgeSet, limit int) []Embedding {
	var out []Embedding
	ForEach(p, t, mask, func(e *Embedding) bool {
		out = append(out, *e)
		return limit <= 0 || len(out) < limit
	})
	return out
}

// EdgeSets returns the distinct edge sets of embeddings of p in t, capped at
// limit distinct sets (limit <= 0 means all). This is the set Ef of the
// paper's Section 4.1: probabilistic events only depend on which target
// edges an embedding occupies.
func EdgeSets(p, t *graph.Graph, mask *graph.EdgeSet, limit int) []graph.EdgeSet {
	var out []graph.EdgeSet
	seen := make(map[string]bool)
	ForEach(p, t, mask, func(e *Embedding) bool {
		k := e.Edges.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, e.Edges)
		}
		return limit <= 0 || len(out) < limit
	})
	return out
}

// Count returns the number of embeddings of p in t, stopping at cap when
// cap > 0.
func Count(p, t *graph.Graph, mask *graph.EdgeSet, cap int) int {
	n := 0
	ForEach(p, t, mask, func(*Embedding) bool {
		n++
		return cap <= 0 || n < cap
	})
	return n
}

// MaxDisjointGreedy picks a maximal family of pairwise edge-disjoint sets
// greedily (smallest sets first), returning indices into sets. It is the
// cheap approximation of the paper's IN set used during feature mining; the
// PMI builder uses the exact max-weight-clique version instead.
func MaxDisjointGreedy(sets []graph.EdgeSet) []int {
	idx := make([]int, len(sets))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := sets[idx[a]].Count(), sets[idx[b]].Count()
		if ca != cb {
			return ca < cb
		}
		return idx[a] < idx[b]
	})
	var chosen []int
	for _, i := range idx {
		ok := true
		for _, j := range chosen {
			if sets[i].Intersects(sets[j]) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, i)
		}
	}
	sort.Ints(chosen)
	return chosen
}
