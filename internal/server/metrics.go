package server

import (
	"net/http"
	"runtime"
	"time"

	"probgraph/internal/obs"
)

// serverMetrics holds the server's observability state: per-endpoint
// query counters and latency histograms, mutation counters, the shared
// pipeline-stage metrics the engine observes into, and the slow-query
// ring. Everything is registered on one obs.Registry, and /stats reads
// the same counters /metrics exposes — the two can never disagree.
type serverMetrics struct {
	reg      *obs.Registry
	pipeline *obs.Pipeline
	slowlog  *obs.Slowlog

	queries   map[string]*obs.Counter   // endpoint -> request count
	latency   map[string]*obs.Histogram // endpoint -> wall-clock seconds
	mutations map[string]*obs.Counter   // op -> committed mutations
	compact   *obs.Counter
}

// queryEndpoints are the instrumented evaluation endpoints, in the order
// their counters register (registration order is exposition order).
var queryEndpoints = []string{"query", "topk", "batch", "stream", "topk_bounds", "topk_verify"}

var mutationOps = []string{"add", "remove", "replace"}

func newServerMetrics(s *Server, reg *obs.Registry, slowlogSize int) *serverMetrics {
	m := &serverMetrics{
		reg:       reg,
		pipeline:  obs.NewPipeline(reg),
		slowlog:   obs.NewSlowlog(slowlogSize),
		queries:   make(map[string]*obs.Counter, len(queryEndpoints)),
		latency:   make(map[string]*obs.Histogram, len(queryEndpoints)),
		mutations: make(map[string]*obs.Counter, len(mutationOps)),
	}
	for _, ep := range queryEndpoints {
		m.queries[ep] = reg.Counter("pg_queries_total",
			"Queries accepted per endpoint (batch counts members; incremented before the cache lookup).",
			"endpoint", ep)
		m.latency[ep] = reg.Histogram("pg_request_duration_seconds",
			"End-to-end request latency per endpoint, cache hits included.",
			nil, "endpoint", ep)
	}
	for _, op := range mutationOps {
		m.mutations[op] = reg.Counter("pg_mutations_total",
			"Committed mutations by operation.", "op", op)
	}
	m.compact = reg.Counter("pg_compactions_total",
		"Auto-compactions triggered by mutations (graph indices renumbered).")

	// Scrape-time families read the very sources /stats reports, so the
	// two views agree by construction.
	reg.Collect("pg_inflight_queries", "gauge",
		"Evaluations currently running or waiting on the inflight semaphore.",
		func(emit func(string, float64)) { emit("", float64(s.inflight.Load())) })
	reg.Collect("pg_cache_hits_total", "counter",
		"Result-cache hits.", func(emit func(string, float64)) {
			h, _ := s.cache.Counters()
			emit("", float64(h))
		})
	reg.Collect("pg_cache_misses_total", "counter",
		"Result-cache misses.", func(emit func(string, float64)) {
			_, mi := s.cache.Counters()
			emit("", float64(mi))
		})
	reg.Collect("pg_cache_entries", "gauge",
		"Result-cache resident entries.",
		func(emit func(string, float64)) { emit("", float64(s.cache.Len())) })
	reg.Collect("pg_cache_generation_hits_total", "counter",
		"Result-cache hits by database generation (recent generations only).",
		func(emit func(string, float64)) {
			for _, e := range s.genStats.snapshotSorted() {
				emit(obs.Labels("generation", e.Gen), float64(e.Hits))
			}
		})
	reg.Collect("pg_cache_generation_misses_total", "counter",
		"Result-cache misses by database generation (recent generations only).",
		func(emit func(string, float64)) {
			for _, e := range s.genStats.snapshotSorted() {
				emit(obs.Labels("generation", e.Gen), float64(e.Misses))
			}
		})
	reg.Collect("pg_db_generation", "gauge",
		"Current database generation.", func(emit func(string, float64)) {
			emit("", float64(s.db.View().Generation))
		})
	reg.Collect("pg_db_graphs", "gauge",
		"Database slots by state.", func(emit func(string, float64)) {
			v := s.db.View()
			emit(obs.Labels("state", "live"), float64(v.NumLive()))
			emit(obs.Labels("state", "tombstoned"), float64(v.Tombstones()))
		})
	reg.Collect("pg_index_bytes", "gauge",
		"PMI index size in bytes.", func(emit func(string, float64)) {
			emit("", float64(s.db.View().Build.IndexSizeBytes))
		})
	reg.Collect("pg_struct_postings_entries", "gauge",
		"Inverted structural index posting entries.",
		func(emit func(string, float64)) {
			if v := s.db.View(); v.Struct != nil {
				_, entries := v.Struct.PostingsStats()
				emit("", float64(entries))
			}
		})
	reg.Collect("pg_uptime_seconds", "gauge",
		"Seconds since the server started.", func(emit func(string, float64)) {
			emit("", time.Since(s.start).Seconds())
		})
	reg.Collect("pg_max_inflight", "gauge",
		"Configured inflight-query bound (0 = unbounded).",
		func(emit func(string, float64)) {
			mi := s.opt.MaxInflight
			if mi < 0 {
				mi = 0
			}
			emit("", float64(mi))
		})
	reg.Collect("pg_workers_default", "gauge",
		"Default per-query worker count (-1 = GOMAXPROCS).",
		func(emit func(string, float64)) {
			w := s.opt.Workers
			if w < 0 {
				w = runtime.GOMAXPROCS(0)
			}
			emit("", float64(w))
		})
	reg.RegisterGoRuntime()
	return m
}

// totalQueries sums the per-endpoint counters — the value /stats reports
// as "queries", read from the same atomics /metrics renders.
func (m *serverMetrics) totalQueries() int64 {
	var n int64
	for _, c := range m.queries { //pgvet:sorted sums every counter; addition is order-insensitive
		n += c.Value()
	}
	return n
}

// instrumented wraps a query-endpoint handler with the observability
// middleware: a fresh trace whose root span covers the handler (stage
// spans attach under it inside the engine), the pipeline bridge, the
// X-PG-Trace-Id response header, the endpoint latency histogram, and
// slowlog admission. The trace itself is cheap (one small allocation and
// mutex-guarded span appends at stage granularity); per-candidate hot
// paths never see it.
func (s *Server) instrumented(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := obs.NewTrace()
		root := tr.Root(endpoint)
		ctx := obs.ContextWithSpan(r.Context(), root)
		ctx = obs.ContextWithPipeline(ctx, s.metrics.pipeline)
		w.Header().Set("X-PG-Trace-Id", tr.ID())
		h(w, r.WithContext(ctx))
		root.End()
		elapsed := time.Since(start)
		s.metrics.latency[endpoint].Observe(elapsed.Seconds())
		durMS := float64(elapsed.Microseconds()) / 1000
		if sl := s.metrics.slowlog; sl.Admits(durMS) {
			sl.Offer(obs.SlowEntry{
				TraceID:    tr.ID(),
				Endpoint:   endpoint,
				Time:       start,
				DurationMS: durMS,
				Trace:      tr.Tree(),
			})
		}
	}
}

// traceWanted reports whether the request opted into an inline span tree
// (trace=1 URL knob or the request body's trace field).
func traceWanted(r *http.Request, bodyFlag bool) bool {
	return bodyFlag || r.URL.Query().Get("trace") == "1"
}

// traceTree snapshots the request's span tree for inline delivery. The
// root span is still open (the middleware ends it after the response is
// written), so its duration reads as-of-now — evaluation is complete at
// every call site, only response encoding is excluded.
func traceTree(r *http.Request) *obs.SpanNode {
	if tr := obs.TraceFrom(r.Context()); tr != nil {
		return tr.Tree()
	}
	return nil
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}

// handleSlowlog serves the N slowest queries (with span trees), slowest
// first.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"slowest": s.metrics.slowlog.Snapshot()})
}
