// Package server exposes an indexed probabilistic graph database as a
// long-running HTTP/JSON query service: load (or receive) a database once,
// answer many T-PS queries concurrently on the engine's deterministic
// worker pool, and serve repeated queries from an LRU result cache.
package server

import (
	"fmt"
	"strings"

	"probgraph/internal/dataset"
	"probgraph/internal/graph"
	"probgraph/internal/prob"
)

// datasetDecode parses one dataset pgraph block (certain graph + JPTs).
func datasetDecode(text string) (*prob.PGraph, int, error) {
	return dataset.NewPGraphDecoder(strings.NewReader(text)).Decode()
}

// GraphJSON is the wire form of a labeled graph; with JPTs attached it
// describes a probabilistic graph (the /graphs ingestion payload).
type GraphJSON struct {
	Name     string     `json:"name,omitempty"`
	Vertices []string   `json:"vertices"`
	Edges    []EdgeJSON `json:"edges"`
	JPTs     []JPTJSON  `json:"jpts,omitempty"`
}

// EdgeJSON is one undirected edge between vertex indices.
type EdgeJSON struct {
	U     int    `json:"u"`
	V     int    `json:"v"`
	Label string `json:"label,omitempty"`
}

// JPTJSON is a joint probability table over a neighbor-edge set: P has
// 2^len(Edges) rows, row m assigning edge i the value of bit i of m.
type JPTJSON struct {
	Edges []int     `json:"edges"`
	P     []float64 `json:"p"`
}

// GraphFromJSON builds the certain graph described by gj (JPTs ignored).
func GraphFromJSON(gj *GraphJSON) (*graph.Graph, error) {
	b := graph.NewBuilder(gj.Name)
	for _, l := range gj.Vertices {
		b.AddVertex(graph.Label(l))
	}
	for i, e := range gj.Edges {
		if e.U < 0 || e.U >= len(gj.Vertices) || e.V < 0 || e.V >= len(gj.Vertices) {
			return nil, fmt.Errorf("edge %d: endpoint out of range", i)
		}
		if _, err := b.AddEdge(graph.VertexID(e.U), graph.VertexID(e.V), graph.Label(e.Label)); err != nil {
			return nil, fmt.Errorf("edge %d: %v", i, err)
		}
	}
	return b.Build(), nil
}

// PGraphFromJSON builds the probabilistic graph described by gj. Edges not
// covered by any JPT are certain.
func PGraphFromJSON(gj *GraphJSON) (*prob.PGraph, error) {
	g, err := GraphFromJSON(gj)
	if err != nil {
		return nil, err
	}
	jpts := make([]prob.JPT, 0, len(gj.JPTs))
	for ji, j := range gj.JPTs {
		jpt := prob.JPT{P: append([]float64(nil), j.P...)}
		for _, e := range j.Edges {
			if e < 0 || e >= g.NumEdges() {
				return nil, fmt.Errorf("jpt %d: edge id %d out of range", ji, e)
			}
			jpt.Edges = append(jpt.Edges, graph.EdgeID(e))
		}
		jpts = append(jpts, jpt)
	}
	return prob.New(g, jpts)
}

// GraphToJSON renders g on the wire form.
func GraphToJSON(g *graph.Graph) *GraphJSON {
	gj := &GraphJSON{Name: g.Name(), Vertices: make([]string, g.NumVertices())}
	for v := 0; v < g.NumVertices(); v++ {
		gj.Vertices[v] = string(g.VertexLabel(graph.VertexID(v)))
	}
	for _, e := range g.Edges() {
		gj.Edges = append(gj.Edges, EdgeJSON{U: int(e.U), V: int(e.V), Label: string(e.Label)})
	}
	return gj
}

// parseGraphPayload resolves the two ways a request can carry a query
// graph: structured JSON (graph) or the text codec (graph_text, the format
// written by pggen -query / probgraph.SaveGraph).
func parseGraphPayload(gj *GraphJSON, text string) (*graph.Graph, error) {
	switch {
	case gj != nil && text != "":
		return nil, fmt.Errorf("give either graph or graph_text, not both")
	case gj != nil:
		return GraphFromJSON(gj)
	case text != "":
		g, err := graph.NewDecoder(strings.NewReader(text)).Decode()
		if err != nil {
			return nil, fmt.Errorf("graph_text: %v", err)
		}
		return g, nil
	default:
		return nil, fmt.Errorf("missing query graph (graph or graph_text)")
	}
}

// parsePGraphPayload is parseGraphPayload for probabilistic graphs: the
// text form is a dataset pgraph block.
func parsePGraphPayload(gj *GraphJSON, text string) (*prob.PGraph, error) {
	switch {
	case gj != nil && text != "":
		return nil, fmt.Errorf("give either graph or graph_text, not both")
	case gj != nil:
		return PGraphFromJSON(gj)
	case text != "":
		pg, _, err := datasetDecode(text)
		return pg, err
	default:
		return nil, fmt.Errorf("missing graph (graph or graph_text)")
	}
}
