package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// streamLines POSTs to /query/stream and returns the parsed NDJSON lines.
func streamLines(t *testing.T, env *testEnv, req QueryRequest) []map[string]any {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(env.ts.URL+"/query/stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/query/stream status %d", hr.StatusCode)
	}
	if ct := hr.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("/query/stream content type %q", ct)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(hr.Body)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestQueryStreamEndpointMatchesQuery: the stream's match lines and final
// summary must agree bitwise with /query on the same request — same
// answers, same SSP estimates — with exactly one summary line, last.
func TestQueryStreamEndpointMatchesQuery(t *testing.T) {
	env := newTestEnv(t, Options{})
	for i := range env.qs {
		req := QueryRequest{GraphText: env.qtexts[i], Epsilon: 0.4, Delta: 1, Seed: int64(7 + i)}
		var want QueryResponse
		env.post(t, "/query", req, &want)

		lines := streamLines(t, env, req)
		if len(lines) == 0 {
			t.Fatalf("query %d: empty stream", i)
		}
		summary := lines[len(lines)-1]
		if summary["done"] != true {
			t.Fatalf("query %d: last line is not the summary: %v", i, summary)
		}
		for j, ln := range lines[:len(lines)-1] {
			if _, ok := ln["done"]; ok {
				t.Fatalf("query %d: summary line %d is not last", i, j)
			}
		}

		// Summary answers ≡ /query answers (both ascending).
		var sumAnswers []int
		for _, v := range summary["answers"].([]any) {
			sumAnswers = append(sumAnswers, int(v.(float64)))
		}
		if sumAnswers == nil {
			sumAnswers = []int{}
		}
		if !reflect.DeepEqual(sumAnswers, want.Answers) {
			t.Fatalf("query %d: stream summary answers %v != /query %v", i, sumAnswers, want.Answers)
		}
		if int(summary["count"].(float64)) != len(want.Answers) {
			t.Fatalf("query %d: summary count %v != %d", i, summary["count"], len(want.Answers))
		}

		// Every match line is a /query answer with the identical SSP; the
		// lines cover the answer set exactly once.
		seen := map[int]bool{}
		for _, ln := range lines[:len(lines)-1] {
			gi := int(ln["graph"].(float64))
			if seen[gi] {
				t.Fatalf("query %d: graph %d streamed twice", i, gi)
			}
			seen[gi] = true
			wssp, ok := want.SSP[gi]
			if !ok {
				// /query omits SSP entries only for direct accepts encoded
				// as -1? No: direct accepts are -1 entries. A missing key
				// means the stream yielded a non-answer.
				t.Fatalf("query %d: stream yielded graph %d absent from /query SSP", i, gi)
			}
			if ln["ssp"].(float64) != wssp {
				t.Fatalf("query %d: SSP[%d] = %v != /query %v", i, gi, ln["ssp"], wssp)
			}
		}
		if len(seen) != len(want.Answers) {
			t.Fatalf("query %d: %d match lines, want %d", i, len(seen), len(want.Answers))
		}
	}
}

// expiredRequest builds a direct (in-process) request whose context's
// deadline has already passed — the deterministic way to exercise the
// deadline path without racing a real query's duration.
func expiredRequest(t *testing.T, path string, payload any) *http.Request {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	t.Cleanup(cancel)
	return req.WithContext(ctx)
}

// TestDeadlineExpiry504: /query, /topk, and /batch answer an expired
// deadline with a structured 504 JSON body ({"error": ..., "timeout":
// true}) — never a hung connection — and the dead query must not have
// populated the result cache.
func TestDeadlineExpiry504(t *testing.T) {
	env := newTestEnv(t, Options{})
	cases := []struct {
		path    string
		payload any
	}{
		{"/query", QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 3}},
		{"/topk", QueryRequest{GraphText: env.qtexts[0], Delta: 1, K: 2, Seed: 3}},
		{"/batch", BatchRequest{QueryTexts: env.qtexts, Epsilon: 0.4, Delta: 1, Seed: 3}},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		env.srv.Handler().ServeHTTP(rec, expiredRequest(t, c.path, c.payload))
		if rec.Code != http.StatusGatewayTimeout {
			t.Fatalf("%s: status %d, want 504", c.path, rec.Code)
		}
		var e struct {
			Error   string `json:"error"`
			Timeout bool   `json:"timeout"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("%s: 504 body not JSON: %v (%q)", c.path, err, rec.Body.String())
		}
		if !e.Timeout || e.Error == "" {
			t.Fatalf("%s: 504 body %+v lacks timeout marker", c.path, e)
		}
	}

	// The timed-out /query attempt must not have poisoned the cache: the
	// same request over the network misses (Cached == false) and succeeds.
	var fresh QueryResponse
	hr := env.post(t, "/query", QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 3}, &fresh)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("post-timeout query status %d", hr.StatusCode)
	}
	if fresh.Cached {
		t.Fatal("timed-out query populated the result cache")
	}
}

// TestCancelledRequestIs503: plain cancellation (client disconnect or
// server shutdown, not a deadline) maps to a structured 503 with
// "cancelled": true — visible to a still-attached client during graceful
// shutdown, harmlessly unwritable when the client is gone.
func TestCancelledRequestIs503(t *testing.T) {
	env := newTestEnv(t, Options{})
	body, err := json.Marshal(QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader(body))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := httptest.NewRecorder()
	env.srv.Handler().ServeHTTP(rec, req.WithContext(ctx))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	var e struct {
		Error     string `json:"error"`
		Cancelled bool   `json:"cancelled"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("503 body not JSON: %v (%q)", err, rec.Body.String())
	}
	if !e.Cancelled || e.Error == "" {
		t.Fatalf("503 body %+v lacks cancelled marker", e)
	}
	// And it never reached the cache.
	var fresh QueryResponse
	env.post(t, "/query", QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 3}, &fresh)
	if fresh.Cached {
		t.Fatal("cancelled query populated the result cache")
	}
}

// TestStreamDeadlineEndsWithErrorLine: a stream whose deadline has already
// passed ends with a single NDJSON error line marked timeout (the HTTP
// status is committed before evaluation, so the verdict rides in-band).
func TestStreamDeadlineEndsWithErrorLine(t *testing.T) {
	env := newTestEnv(t, Options{})
	rec := httptest.NewRecorder()
	env.srv.Handler().ServeHTTP(rec, expiredRequest(t, "/query/stream",
		QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 3}))
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status %d, want 200 (error rides in-band)", rec.Code)
	}
	var e StreamErrorJSON
	if err := json.Unmarshal(bytes.TrimSpace(rec.Body.Bytes()), &e); err != nil {
		t.Fatalf("stream error line not JSON: %v (%q)", err, rec.Body.String())
	}
	if !e.Timeout || e.Error == "" {
		t.Fatalf("stream error line %+v lacks timeout marker", e)
	}
}

// TestStreamCancellationEndsWithCancelledLine: plain cancellation (server
// shutdown with the client attached) ends the stream with an in-band
// cancelled marker — the NDJSON analogue of the non-stream 503 — never a
// silent EOF indistinguishable from a network cut.
func TestStreamCancellationEndsWithCancelledLine(t *testing.T) {
	env := newTestEnv(t, Options{})
	body, err := json.Marshal(QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/query/stream", bytes.NewReader(body))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := httptest.NewRecorder()
	env.srv.Handler().ServeHTTP(rec, req.WithContext(ctx))
	var e StreamErrorJSON
	if err := json.Unmarshal(bytes.TrimSpace(rec.Body.Bytes()), &e); err != nil {
		t.Fatalf("cancelled stream body not a single JSON line: %v (%q)", err, rec.Body.String())
	}
	if !e.Cancelled || e.Timeout || e.Error == "" {
		t.Fatalf("cancelled stream line %+v lacks cancelled marker", e)
	}
}

// TestTimeoutKnobPlumbing: a generous timeout_ms changes nothing (the
// request completes well inside it), and /stats reports the server-wide
// default deadline.
func TestTimeoutKnobPlumbing(t *testing.T) {
	env := newTestEnv(t, Options{Timeout: 30 * time.Second})
	req := QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 3, TimeoutMS: 60000}
	var resp QueryResponse
	hr := env.post(t, "/query", req, &resp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status %d", hr.StatusCode)
	}
	var st StatsResponse
	env.get(t, "/stats", &st)
	if st.DefaultTimeoutMS != 30000 {
		t.Fatalf("stats default_timeout_ms = %v, want 30000", st.DefaultTimeoutMS)
	}

	// The same query without the knob hits the cache entry the bounded run
	// wrote — deadlines are not part of the cache key (they are not
	// result-affecting).
	var again QueryResponse
	env.post(t, "/query", QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 3}, &again)
	if !again.Cached {
		t.Fatal("timeout_ms leaked into the cache key")
	}
}

// TestStreamDoesNotTouchCache: streams bypass the result cache in both
// directions — they neither write entries nor consume hits.
func TestStreamDoesNotTouchCache(t *testing.T) {
	env := newTestEnv(t, Options{})
	req := QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 3}
	streamLines(t, env, req)
	var st StatsResponse
	env.get(t, "/stats", &st)
	if st.CacheEntries != 0 {
		t.Fatalf("stream wrote %d cache entries", st.CacheEntries)
	}
	// Warm via /query, then stream again: still no hit recorded.
	env.post(t, "/query", req, nil)
	before := st
	env.get(t, "/stats", &before)
	streamLines(t, env, req)
	var after StatsResponse
	env.get(t, "/stats", &after)
	if after.CacheHits != before.CacheHits {
		t.Fatalf("stream consumed a cache hit: %d -> %d", before.CacheHits, after.CacheHits)
	}
}

// TestStreamRejectsBadRequests mirrors the /query 400 paths.
func TestStreamRejectsBadRequests(t *testing.T) {
	env := newTestEnv(t, Options{})
	cases := []QueryRequest{
		{Epsilon: 0.4, Delta: 1},                                // no graph
		{GraphText: env.qtexts[0], Epsilon: 1.5, Delta: 1},      // bad ε
		{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: -1},     // bad δ
		{GraphText: env.qtexts[0], Delta: 1, K: 2},              // k on stream
		{GraphText: env.qtexts[0], Delta: 1, Verifier: "bogus"}, // bad verifier
		{GraphText: env.qtexts[0], Delta: 1, TimeoutMS: -100},   // bad timeout
	}
	for i, req := range cases {
		hr := env.post(t, "/query/stream", req, nil)
		if hr.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d (%s): status %d, want 400", i, strconv.Itoa(i), hr.StatusCode)
		}
	}

	// Negative timeout_ms is malformed on every query endpoint, not just
	// the stream — same 400 mapping as out-of-range ε/δ.
	bad := QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, TimeoutMS: -1}
	for _, path := range []string{"/query", "/topk"} {
		req := bad
		if path == "/topk" {
			req.K = 2
		}
		if hr := env.post(t, path, req, nil); hr.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s negative timeout_ms: status %d, want 400", path, hr.StatusCode)
		}
	}
	breq := BatchRequest{QueryTexts: env.qtexts[:1], Epsilon: 0.4, Delta: 1, TimeoutMS: -1}
	if hr := env.post(t, "/batch", breq, nil); hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("/batch negative timeout_ms: status %d, want 400", hr.StatusCode)
	}
}
