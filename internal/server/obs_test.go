package server

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"probgraph/internal/obs"
)

// scrapeMetrics GETs /metrics and returns the raw exposition body plus a
// series → value map keyed exactly as rendered ("name" or "name{labels}").
func scrapeMetrics(t *testing.T, env *testEnv) (string, map[string]float64) {
	t.Helper()
	hr, err := http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", hr.StatusCode)
	}
	if ct := hr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics: Content-Type %q", ct)
	}
	raw, err := io.ReadAll(hr.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := make(map[string]float64)
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("metrics line without value: %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		series[line[:sp]] = v
	}
	return string(raw), series
}

var (
	commentLine = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	sampleLine  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)
)

// TestMetricsExposition is the /metrics golden test: after a known request
// mix, the exposition parses line by line against the 0.0.4 text format,
// the per-endpoint query counters carry exactly the requests sent (batch
// counting members), the latency histogram is cumulative and consistent,
// and counters only move up between scrapes.
func TestMetricsExposition(t *testing.T) {
	env := newTestEnv(t, Options{})
	req := QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 7}
	env.post(t, "/query", req, nil)
	env.post(t, "/query", req, nil) // cache hit — still counted
	env.post(t, "/topk", QueryRequest{GraphText: env.qtexts[1], Epsilon: 0.4, Delta: 1, K: 3, Seed: 8}, nil)
	env.post(t, "/batch", BatchRequest{QueryTexts: env.qtexts, Epsilon: 0.4, Delta: 1, Seed: 9}, nil)

	raw, series := scrapeMetrics(t, env)
	for _, line := range strings.Split(raw, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !commentLine.MatchString(line) {
				t.Errorf("malformed comment line: %q", line)
			}
		} else if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}

	wantCounts := map[string]float64{
		`pg_queries_total{endpoint="query"}`:  2,
		`pg_queries_total{endpoint="topk"}`:   1,
		`pg_queries_total{endpoint="batch"}`:  3, // members, not requests
		`pg_queries_total{endpoint="stream"}`: 0,
	}
	for s, want := range wantCounts {
		if got, ok := series[s]; !ok || got != want {
			t.Errorf("%s = %v (present=%t), want %v", s, got, ok, want)
		}
	}
	// The histogram counts requests (the batch is one request), its +Inf
	// bucket is the total, and buckets are cumulative non-decreasing.
	if got := series[`pg_request_duration_seconds_bucket{endpoint="query",le="+Inf"}`]; got != 2 {
		t.Errorf("query +Inf bucket = %v, want 2", got)
	}
	if got := series[`pg_request_duration_seconds_count{endpoint="batch"}`]; got != 1 {
		t.Errorf("batch histogram count = %v, want 1 (one request)", got)
	}
	prev := -1.0
	for _, b := range []string{"0.0001", "0.001", "0.01", "0.1", "1", "10", "+Inf"} {
		v, ok := series[`pg_request_duration_seconds_bucket{endpoint="query",le="`+b+`"}`]
		if !ok {
			t.Fatalf("missing query bucket le=%q", b)
		}
		if v < prev {
			t.Fatalf("bucket le=%q = %v below previous %v (must be cumulative)", b, v, prev)
		}
		prev = v
	}
	// Pipeline-bridge families: every query here is extracted from a
	// database graph, so the structural filter confirms at least its source.
	if series["pg_struct_confirmed_total"] < 1 {
		t.Errorf("pg_struct_confirmed_total = %v, want >= 1", series["pg_struct_confirmed_total"])
	}
	if series[`pg_stage_duration_seconds_count{stage="verify"}`] < 1 {
		t.Error("verify stage histogram never observed")
	}
	// Database-shape and runtime families.
	if got := series[`pg_db_graphs{state="live"}`]; got != 10 {
		t.Errorf(`pg_db_graphs{state="live"} = %v, want 10`, got)
	}
	if series["pg_db_generation"] != 1 || series["go_goroutines"] < 1 {
		t.Errorf("generation %v / goroutines %v", series["pg_db_generation"], series["go_goroutines"])
	}

	// Monotonicity across scrapes.
	env.post(t, "/query", QueryRequest{GraphText: env.qtexts[2], Epsilon: 0.4, Delta: 1, Seed: 10}, nil)
	_, after := scrapeMetrics(t, env)
	if got := after[`pg_queries_total{endpoint="query"}`]; got != 3 {
		t.Errorf("after third query counter = %v, want 3", got)
	}
	for _, s := range []string{
		`pg_queries_total{endpoint="query"}`, "pg_cache_misses_total",
		"pg_struct_confirmed_total", `pg_request_duration_seconds_sum{endpoint="query"}`,
	} {
		if after[s] < series[s] {
			t.Errorf("counter %s went backwards: %v -> %v", s, series[s], after[s])
		}
	}
}

// TestStatsAndMetricsAgree pins the satellite contract: /stats and
// /metrics are backed by the same registry and the same scrape-time
// sources, so with no traffic between the two reads every shared quantity
// is identical — not merely close.
func TestStatsAndMetricsAgree(t *testing.T) {
	env := newTestEnv(t, Options{})
	for i, qt := range env.qtexts {
		req := QueryRequest{GraphText: qt, Epsilon: 0.4, Delta: 1, Seed: int64(i)}
		env.post(t, "/query", req, nil)
		env.post(t, "/query", req, nil) // cache hit
	}
	env.post(t, "/topk", QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, K: 2, Seed: 1}, nil)

	var st StatsResponse
	env.get(t, "/stats", &st)
	_, series := scrapeMetrics(t, env)

	var metricQueries float64
	for _, ep := range queryEndpoints {
		metricQueries += series[`pg_queries_total{endpoint="`+ep+`"}`]
	}
	pairs := []struct {
		name   string
		stats  float64
		metric float64
	}{
		{"queries", float64(st.Queries), metricQueries},
		{"cache hits", float64(st.CacheHits), series["pg_cache_hits_total"]},
		{"cache misses", float64(st.CacheMisses), series["pg_cache_misses_total"]},
		{"cache entries", float64(st.CacheEntries), series["pg_cache_entries"]},
		{"generation", float64(st.Generation), series["pg_db_generation"]},
		{"live graphs", float64(st.LiveGraphs), series[`pg_db_graphs{state="live"}`]},
		{"tombstoned", float64(st.TombstonedGraphs), series[`pg_db_graphs{state="tombstoned"}`]},
		{"index bytes", float64(st.IndexBytes), series["pg_index_bytes"]},
		{"struct postings", float64(st.StructPostings), series["pg_struct_postings_entries"]},
		{"inflight", float64(st.Inflight), series["pg_inflight_queries"]},
	}
	for _, p := range pairs {
		if p.stats != p.metric {
			t.Errorf("%s: /stats says %v, /metrics says %v", p.name, p.stats, p.metric)
		}
	}
	if st.CacheHits != int64(len(env.qtexts)) {
		t.Fatalf("cache hits %d, want %d (fixture assumption broke)", st.CacheHits, len(env.qtexts))
	}
	hitsByGen := series[`pg_cache_generation_hits_total{generation="1"}`]
	if got := float64(st.CacheGenerations["1"].Hits); got != hitsByGen {
		t.Errorf("generation-1 hits: /stats %v, /metrics %v", got, hitsByGen)
	}
}

// TestTracePropagation covers the inline-trace knob and the trace-id
// header: every query response names its trace, trace=1 (body field or
// URL knob) inlines a span tree whose stages mirror the engine pipeline,
// cache hits included, and untraced responses carry no tree.
func TestTracePropagation(t *testing.T) {
	env := newTestEnv(t, Options{})
	req := QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 7, Trace: true}

	var traced QueryResponse
	hr := env.post(t, "/query", &req, &traced)
	if id := hr.Header.Get("X-PG-Trace-Id"); id == "" {
		t.Fatal("no X-PG-Trace-Id header on a query response")
	}
	if traced.Trace == nil {
		t.Fatal("trace=true produced no inline span tree")
	}
	if traced.Trace.Name != "query" {
		t.Fatalf("root span %q, want query", traced.Trace.Name)
	}
	stages := map[string]bool{}
	for _, c := range traced.Trace.Children {
		stages[c.Name] = true
	}
	for _, want := range []string{"struct_filter", "relax", "verify"} {
		if !stages[want] {
			t.Errorf("span tree missing %s stage: have %v", want, stages)
		}
	}

	// Untraced request: same query semantics, no tree, fresh trace id.
	req.Trace = false
	req.NoCache = true
	var plain QueryResponse
	hr2 := env.post(t, "/query", &req, &plain)
	if plain.Trace != nil {
		t.Fatal("untraced response carries a span tree")
	}
	if hr2.Header.Get("X-PG-Trace-Id") == hr.Header.Get("X-PG-Trace-Id") {
		t.Fatal("trace ids repeat across requests")
	}

	// URL knob on a cache hit: the trace covers this request (root + cache
	// lookup), even though no evaluation ran.
	req.NoCache = false
	var cached QueryResponse
	env.post(t, "/query?trace=1", &req, &cached)
	if !cached.Cached {
		t.Fatal("expected a cache hit")
	}
	if cached.Trace == nil || cached.Trace.Name != "query" {
		t.Fatalf("cache hit with trace=1: tree %+v", cached.Trace)
	}
}

// TestSlowlogEndpoint: served queries land in /debug/slowlog slowest
// first, each entry naming its trace; a negative SlowlogSize disables the
// ring entirely.
func TestSlowlogEndpoint(t *testing.T) {
	env := newTestEnv(t, Options{})
	for i, qt := range env.qtexts {
		env.post(t, "/query", QueryRequest{GraphText: qt, Epsilon: 0.4, Delta: 1, Seed: int64(i)}, nil)
	}
	var sl struct {
		Slowest []obs.SlowEntry `json:"slowest"`
	}
	env.get(t, "/debug/slowlog", &sl)
	if len(sl.Slowest) != len(env.qtexts) {
		t.Fatalf("slowlog holds %d entries, want %d", len(sl.Slowest), len(env.qtexts))
	}
	for i, e := range sl.Slowest {
		if e.TraceID == "" || e.Endpoint != "query" || e.Trace == nil {
			t.Fatalf("entry %d incomplete: %+v", i, e)
		}
		if e.Trace.Name != "query" {
			t.Fatalf("entry %d span tree root %q", i, e.Trace.Name)
		}
		if i > 0 && sl.Slowest[i-1].DurationMS < e.DurationMS {
			t.Fatalf("slowlog out of order at %d: %v before %v", i, sl.Slowest[i-1].DurationMS, e.DurationMS)
		}
	}

	off := newTestEnv(t, Options{SlowlogSize: -1})
	off.post(t, "/query", QueryRequest{GraphText: off.qtexts[0], Epsilon: 0.4, Delta: 1}, nil)
	var empty struct {
		Slowest []obs.SlowEntry `json:"slowest"`
	}
	off.get(t, "/debug/slowlog", &empty)
	if len(empty.Slowest) != 0 {
		t.Fatalf("disabled slowlog returned %d entries", len(empty.Slowest))
	}
}

// TestMutationMetricsAndCompactedSlots: committed mutations move the op
// counters, and a threshold-crossing removal reports the reclaimed slot
// count identically on the HTTP response, the mutation-log event, and the
// compaction counter.
func TestMutationMetricsAndCompactedSlots(t *testing.T) {
	var events []MutationEvent
	env := newTestEnv(t, Options{MutationLog: func(ev MutationEvent) {
		events = append(events, ev)
	}})
	env.srv.db.SetCompactThreshold(0.15)

	env.post(t, "/graphs", AddGraphRequest{GraphText: pgraphText(t, 818)}, nil) // 11 live
	var rm1, rm2 MutationResponse
	env.send(t, http.MethodDelete, "/graphs/0", nil, &rm1) // 1/11 tombstoned — below
	env.send(t, http.MethodDelete, "/graphs/1", nil, &rm2) // 2/11 — crosses 0.15
	if rm1.Compacted || rm1.CompactedSlots != 0 {
		t.Fatalf("first remove compacted: %+v", rm1)
	}
	if !rm2.Compacted || rm2.CompactedSlots != 2 {
		t.Fatalf("second remove: %+v, want compacted with 2 slots reclaimed", rm2)
	}
	if len(events) != 3 {
		t.Fatalf("logged %d mutation events, want 3", len(events))
	}
	last := events[2]
	if !last.Compacted || last.CompactedSlots != rm2.CompactedSlots {
		t.Fatalf("event/response disagree on compaction: event %+v, response %+v", last, rm2)
	}
	// The compacting removal commits two generations: the tombstone and
	// then the renumbered, compacted view.
	if last.OldGeneration != 3 || last.NewGeneration != 5 {
		t.Fatalf("event generations %d -> %d, want 3 -> 5", last.OldGeneration, last.NewGeneration)
	}

	_, series := scrapeMetrics(t, env)
	wants := map[string]float64{
		`pg_mutations_total{op="add"}`:     1,
		`pg_mutations_total{op="remove"}`:  2,
		`pg_mutations_total{op="replace"}`: 0,
		"pg_compactions_total":             1,
		`pg_db_graphs{state="live"}`:       9,
		`pg_db_graphs{state="tombstoned"}`: 0, // compaction dropped them
	}
	for s, want := range wants {
		if got := series[s]; got != want {
			t.Errorf("%s = %v, want %v", s, got, want)
		}
	}
}
