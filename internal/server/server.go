package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/graph"
)

// Options configures a Server.
type Options struct {
	// CacheSize caps the LRU result cache (entries). 0 selects the default
	// (256); negative disables caching.
	CacheSize int
	// Workers is the default QueryOptions.Concurrency for requests that do
	// not set workers themselves. 0 selects GOMAXPROCS (-1).
	Workers int
	// MaxInflight bounds concurrently evaluated queries; further requests
	// wait. 0 selects 2×GOMAXPROCS; negative means unbounded.
	MaxInflight int
	// Timeout is the default per-request evaluation deadline. A request's
	// timeout_ms overrides it; 0 means no server-side default. A query
	// that outlives its deadline is cancelled (candidate granularity) and
	// answered with a structured HTTP 504 — never a hung connection.
	Timeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.Workers == 0 {
		o.Workers = -1
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	return o
}

// Server answers T-PS queries over one resident Database. Queries take the
// read lock and run concurrently; /graphs ingestion takes the write lock
// and purges the result cache. All randomness stays seeded per request, so
// a response is bitwise-identical to the corresponding library call.
type Server struct {
	mu    sync.RWMutex
	db    *core.Database
	opt   Options
	cache *lruCache
	sem   chan struct{}

	start    time.Time
	queries  atomic.Int64
	inflight atomic.Int64
	mux      *http.ServeMux
}

// New wraps an indexed database in a Server.
func New(db *core.Database, opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		db:    db,
		opt:   opt,
		cache: newLRUCache(opt.CacheSize),
		start: time.Now(),
		mux:   http.NewServeMux(),
	}
	if opt.MaxInflight > 0 {
		s.sem = make(chan struct{}, opt.MaxInflight)
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("/topk", s.handleTopK)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/graphs", s.handleGraphs)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// QueryRequest is the /query (and, with K, /topk) payload. The query graph
// comes either as structured JSON (graph) or in the text codec
// (graph_text). Epsilon defaults to 0.5, verifier to "smp"; seed drives
// every randomized step deterministically.
type QueryRequest struct {
	Graph     *GraphJSON `json:"graph,omitempty"`
	GraphText string     `json:"graph_text,omitempty"`
	Epsilon   float64    `json:"epsilon,omitempty"`
	Delta     int        `json:"delta"`
	Verifier  string     `json:"verifier,omitempty"`
	Plain     bool       `json:"plain,omitempty"` // plain SSPBound instead of OPT-SSPBound
	Seed      int64      `json:"seed,omitempty"`
	Workers   int        `json:"workers,omitempty"`
	K         int        `json:"k,omitempty"`        // /topk only
	NoCache   bool       `json:"no_cache,omitempty"` // bypass the result cache
	// TimeoutMS caps this request's evaluation time in milliseconds,
	// overriding the server's default deadline (0 keeps the default). On
	// expiry the endpoints answer a structured HTTP 504; /query/stream
	// ends the NDJSON stream with an error line instead.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// StatsJSON reports the pipeline counters of one query (times in
// milliseconds).
type StatsJSON struct {
	StructFilterCandidates int     `json:"struct_filter_candidates"`
	StructConfirmed        int     `json:"struct_confirmed"`
	PrunedByUpper          int     `json:"pruned_by_upper"`
	AcceptedByLower        int     `json:"accepted_by_lower"`
	VerifyCandidates       int     `json:"verify_candidates"`
	RelaxedQueries         int     `json:"relaxed_queries"`
	TimeStructMS           float64 `json:"time_struct_ms"`
	TimeProbMS             float64 `json:"time_prob_ms"`
	TimeVerifyMS           float64 `json:"time_verify_ms"`
	TimeTotalMS            float64 `json:"time_total_ms"`
}

func statsJSON(st core.Stats) StatsJSON {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return StatsJSON{
		StructFilterCandidates: st.StructFilterCandidates,
		StructConfirmed:        st.StructConfirmed,
		PrunedByUpper:          st.PrunedByUpper,
		AcceptedByLower:        st.AcceptedByLower,
		VerifyCandidates:       st.VerifyCandidates,
		RelaxedQueries:         st.RelaxedQueries,
		TimeStructMS:           ms(st.TimeStruct),
		TimeProbMS:             ms(st.TimeProb),
		TimeVerifyMS:           ms(st.TimeVerify),
		TimeTotalMS:            ms(st.TimeTotal),
	}
}

// QueryResponse is the /query reply. Answers lists matching graph indices
// ascending; SSP maps verified indices to their estimated subgraph
// similarity probability (-1 for direct accepts, exactly as the library
// reports them). Cached marks responses served from the result cache.
type QueryResponse struct {
	Answers []int           `json:"answers"`
	Names   []string        `json:"names"`
	SSP     map[int]float64 `json:"ssp"`
	Stats   StatsJSON       `json:"stats"`
	Cached  bool            `json:"cached"`
	TimeMS  float64         `json:"time_ms"`
}

// TopKItemJSON is one /topk ranking entry.
type TopKItemJSON struct {
	Graph int     `json:"graph"`
	Name  string  `json:"name"`
	SSP   float64 `json:"ssp"`
}

// TopKResponse is the /topk reply.
type TopKResponse struct {
	Items  []TopKItemJSON `json:"items"`
	Cached bool           `json:"cached"`
	TimeMS float64        `json:"time_ms"`
}

// BatchRequest is the /batch payload: many queries sharing one option set.
// Query i runs with seed BatchSeed(seed, i), exactly like
// Database.QueryBatch — batching never changes an individual answer.
type BatchRequest struct {
	Queries    []GraphJSON `json:"queries,omitempty"`
	QueryTexts []string    `json:"query_texts,omitempty"`
	Epsilon    float64     `json:"epsilon,omitempty"`
	Delta      int         `json:"delta"`
	Verifier   string      `json:"verifier,omitempty"`
	Plain      bool        `json:"plain,omitempty"`
	Seed       int64       `json:"seed,omitempty"`
	Workers    int         `json:"workers,omitempty"`
	NoCache    bool        `json:"no_cache,omitempty"`
	TimeoutMS  int64       `json:"timeout_ms,omitempty"` // per-request deadline override
}

// BatchResponse is the /batch reply, results in input order.
type BatchResponse struct {
	Results []*QueryResponse `json:"results"`
	TimeMS  float64          `json:"time_ms"`
}

// AddGraphRequest is the /graphs ingestion payload: one probabilistic
// graph as structured JSON (graph, with jpts) or a dataset pgraph text
// block (graph_text).
type AddGraphRequest struct {
	Graph     *GraphJSON `json:"graph,omitempty"`
	GraphText string     `json:"graph_text,omitempty"`
}

// AddGraphResponse reports the new graph's database index.
type AddGraphResponse struct {
	Index  int `json:"index"`
	Graphs int `json:"graphs"`
}

// StatsResponse is the /stats reply. StructShards/StructPostings describe
// the inverted structural index (postings shards and total level-posting
// entries); both are 0 when the database has no structural filter.
type StatsResponse struct {
	Graphs         int     `json:"graphs"`
	PMIFeatures    int     `json:"pmi_features"`
	StructShards   int     `json:"struct_shards"`
	StructPostings int     `json:"struct_postings"`
	IndexBytes     int     `json:"index_bytes"`
	UptimeMS       float64 `json:"uptime_ms"`
	Queries        int64   `json:"queries"`
	Inflight       int64   `json:"inflight"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheEntries   int     `json:"cache_entries"`
	CacheCap       int     `json:"cache_cap"`
	Workers        int     `json:"workers"`
	// DefaultTimeoutMS is the server's per-request deadline default
	// (Options.Timeout); 0 means queries run unbounded unless the request
	// sets timeout_ms.
	DefaultTimeoutMS float64 `json:"default_timeout_ms"`
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// checkTimeoutMS validates the timeout_ms request knob: negative values
// are malformed (rejected 400 by the caller, matching the CLI flags and
// the ε/δ validation convention), 0 means "use the server default".
func checkTimeoutMS(timeoutMS int64) error {
	if timeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0, got %d", timeoutMS)
	}
	return nil
}

// requestContext derives the evaluation context for one request: the
// request's own context (cancelled when the client disconnects, and — when
// pgserve wires http.Server.BaseContext to its shutdown context — when the
// process is told to stop) bounded by the effective deadline: timeoutMS
// when positive, else the server default. timeoutMS has been validated by
// checkTimeoutMS.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.opt.Timeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return r.Context(), func() {}
}

// evalError maps an evaluation failure to the response. Deadline expiry is
// a structured 504 with "timeout": true — the client gets a parseable
// verdict, not a hung or reset connection. Plain cancellation means the
// request context died: either the client disconnected (the 503 write
// below lands nowhere, harmlessly) or the server is shutting down with
// the client still attached — then the 503 tells it to retry elsewhere.
// Everything else is an evaluation failure (422).
func evalError(w http.ResponseWriter, what string, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGatewayTimeout)
		json.NewEncoder(w).Encode(map[string]any{
			"error":   fmt.Sprintf("%s: deadline exceeded", what),
			"timeout": true,
		})
	case errors.Is(err, context.Canceled):
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{
			"error":     fmt.Sprintf("%s: cancelled", what),
			"cancelled": true,
		})
	default:
		httpError(w, http.StatusUnprocessableEntity, "%s: %v", what, err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func verifierKind(name string) (core.VerifierKind, error) {
	switch name {
	case "", "smp":
		return core.VerifierSMP, nil
	case "exact":
		return core.VerifierExact, nil
	case "none":
		return core.VerifierNone, nil
	default:
		return 0, fmt.Errorf("unknown verifier %q (want smp, exact, or none)", name)
	}
}

// queryOptions translates request knobs to engine options. Workers is the
// only server-side default injected; everything result-affecting comes
// from the request. Out-of-range ε/δ are rejected here — the error joins
// the handlers' bad-request path (HTTP 400), distinguishing malformed
// requests from evaluation failures (422).
func (s *Server) queryOptions(epsilon float64, delta int, verifier string, plain bool, seed int64, workers int) (core.QueryOptions, error) {
	vk, err := verifierKind(verifier)
	if err != nil {
		return core.QueryOptions{}, err
	}
	if workers == 0 {
		workers = s.opt.Workers
	}
	opt := core.QueryOptions{
		Epsilon:     epsilon,
		Delta:       delta,
		OptBounds:   !plain,
		Verifier:    vk,
		Seed:        seed,
		Concurrency: workers,
	}
	if err := opt.Validate(); err != nil {
		return core.QueryOptions{}, err
	}
	return opt, nil
}

// cacheKey identifies one deterministic query outcome: the query's
// canonical code plus every result-affecting option. Workers is excluded —
// the engine guarantees identical results at any concurrency — so requests
// differing only in pool size share an entry. Isomorphic query
// presentations share an entry too (the canonical code is a complete
// isomorphism invariant); the cached result is the one computed for the
// first-seen presentation.
func cacheKey(kind string, code string, opt core.QueryOptions, k int) string {
	return kind + "\x00" + code + "\x00" +
		strconv.FormatFloat(opt.Epsilon, 'x', -1, 64) + "\x00" +
		strconv.Itoa(opt.Delta) + "\x00" +
		strconv.Itoa(int(opt.Verifier)) + "\x00" +
		strconv.FormatBool(opt.OptBounds) + "\x00" +
		strconv.FormatInt(opt.Seed, 10) + "\x00" +
		strconv.Itoa(k)
}

// acquire blocks until an inflight evaluation slot is free.
func (s *Server) acquire() func() {
	s.inflight.Add(1)
	if s.sem == nil {
		return func() { s.inflight.Add(-1) }
	}
	s.sem <- struct{}{}
	return func() {
		<-s.sem
		s.inflight.Add(-1)
	}
}

func (s *Server) names(answers []int) []string {
	names := make([]string, len(answers))
	for i, gi := range answers {
		names[i] = s.db.Graphs[gi].G.Name()
	}
	return names
}

func (s *Server) queryResponse(res *core.Result, cached bool, elapsed time.Duration) *QueryResponse {
	answers := res.Answers
	if answers == nil {
		answers = []int{}
	}
	return &QueryResponse{
		Answers: answers,
		Names:   s.names(res.Answers),
		SSP:     res.SSP,
		Stats:   statsJSON(res.Stats),
		Cached:  cached,
		TimeMS:  float64(elapsed.Microseconds()) / 1000,
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	q, err := parseGraphPayload(req.Graph, req.GraphText)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt, err := s.queryOptions(req.Epsilon, req.Delta, req.Verifier, req.Plain, req.Seed, req.Workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkTimeoutMS(req.TimeoutMS); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()
	key := cacheKey("query", graph.CanonicalCode(q), opt, 0)

	// The read lock covers evaluation and response construction only —
	// never the response write, so a slow client cannot hold the lock and
	// starve /graphs (whose pending write lock would in turn block every
	// other request, /healthz included).
	s.mu.RLock()
	s.queries.Add(1)
	if !req.NoCache {
		if v, ok := s.cache.Get(key); ok {
			resp := s.queryResponse(v.(*core.Result), true, time.Since(start))
			s.mu.RUnlock()
			writeJSON(w, resp)
			return
		}
	}
	release := s.acquire()
	res, err := s.db.QueryCtx(ctx, q, opt)
	release()
	if err != nil {
		// Cancelled and timed-out evaluations return an error, so they can
		// never reach the cache Put below — a dead query never poisons the
		// result cache.
		s.mu.RUnlock()
		evalError(w, "query failed", err)
		return
	}
	if !req.NoCache {
		s.cache.Put(key, res)
	}
	resp := s.queryResponse(res, false, time.Since(start))
	s.mu.RUnlock()
	writeJSON(w, resp)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.K <= 0 {
		httpError(w, http.StatusBadRequest, "k must be positive")
		return
	}
	q, err := parseGraphPayload(req.Graph, req.GraphText)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt, err := s.queryOptions(req.Epsilon, req.Delta, req.Verifier, req.Plain, req.Seed, req.Workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkTimeoutMS(req.TimeoutMS); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()
	key := cacheKey("topk", graph.CanonicalCode(q), opt, req.K)

	// build assembles the response under the read lock (names need the
	// database); the write happens after release.
	build := func(items []core.TopKItem, cached bool) TopKResponse {
		out := TopKResponse{Items: []TopKItemJSON{}, Cached: cached,
			TimeMS: float64(time.Since(start).Microseconds()) / 1000}
		for _, it := range items {
			out.Items = append(out.Items, TopKItemJSON{
				Graph: it.Graph, Name: s.db.Graphs[it.Graph].G.Name(), SSP: it.SSP,
			})
		}
		return out
	}
	s.mu.RLock()
	s.queries.Add(1)
	if !req.NoCache {
		if v, ok := s.cache.Get(key); ok {
			out := build(v.([]core.TopKItem), true)
			s.mu.RUnlock()
			writeJSON(w, out)
			return
		}
	}
	release := s.acquire()
	items, err := s.db.QueryTopKCtx(ctx, q, req.K, opt)
	release()
	if err != nil {
		s.mu.RUnlock()
		evalError(w, "topk failed", err)
		return
	}
	if !req.NoCache {
		s.cache.Put(key, items)
	}
	out := build(items, false)
	s.mu.RUnlock()
	writeJSON(w, out)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Queries) > 0 && len(req.QueryTexts) > 0 {
		httpError(w, http.StatusBadRequest, "give either queries or query_texts, not both")
		return
	}
	var qs []*graph.Graph
	for i := range req.Queries {
		q, err := GraphFromJSON(&req.Queries[i])
		if err != nil {
			httpError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		qs = append(qs, q)
	}
	for i, text := range req.QueryTexts {
		q, err := parseGraphPayload(nil, text)
		if err != nil {
			httpError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		qs = append(qs, q)
	}
	if len(qs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	opt, err := s.queryOptions(req.Epsilon, req.Delta, req.Verifier, req.Plain, req.Seed, req.Workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkTimeoutMS(req.TimeoutMS); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()

	// Batch member i is definitionally Query with seed BatchSeed(seed, i),
	// so each member has its own cache slot — a subsequent /query with that
	// derived seed hits the same entry. The batch is served from cache only
	// when every member hits; one miss re-runs the whole batch (QueryBatch
	// derives seeds by position, so partial evaluation would change seeds).
	keys := make([]string, len(qs))
	for i, q := range qs {
		mo := opt
		mo.Seed = core.BatchSeed(opt.Seed, i)
		keys[i] = cacheKey("query", graph.CanonicalCode(q), mo, 0)
	}

	s.mu.RLock()
	s.queries.Add(int64(len(qs)))
	if !req.NoCache {
		// Probe with Peek first: a probe that ends in a miss must not
		// inflate the hit counter or LRU-promote entries the batch then
		// recomputes anyway. Only an all-present batch commits to Gets.
		allHit := true
		for _, key := range keys {
			if !s.cache.Peek(key) {
				allHit = false
				break
			}
		}
		if allHit {
			cached := make([]*core.Result, len(qs))
			for i, key := range keys {
				v, ok := s.cache.Get(key)
				if !ok { // evicted between Peek and Get: fall through to a full run
					allHit = false
					break
				}
				cached[i] = v.(*core.Result)
			}
			if allHit {
				out := BatchResponse{TimeMS: float64(time.Since(start).Microseconds()) / 1000}
				for _, res := range cached {
					out.Results = append(out.Results, s.queryResponse(res, true, 0))
				}
				s.mu.RUnlock()
				writeJSON(w, out)
				return
			}
		}
	}
	release := s.acquire()
	results, err := s.db.QueryBatchCtx(ctx, qs, opt)
	release()
	if err != nil {
		s.mu.RUnlock()
		evalError(w, "batch failed", err)
		return
	}
	out := BatchResponse{TimeMS: float64(time.Since(start).Microseconds()) / 1000}
	for i, res := range results {
		if !req.NoCache {
			s.cache.Put(keys[i], res)
		}
		out.Results = append(out.Results, s.queryResponse(res, false, 0))
	}
	s.mu.RUnlock()
	writeJSON(w, out)
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	var req AddGraphRequest
	if !decodeBody(w, r, &req) {
		return
	}
	pg, err := parsePGraphPayload(req.Graph, req.GraphText)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	gi, err := s.db.AddGraph(pg)
	if err != nil {
		// core.AddGraph is atomic — a failure leaves the database (and
		// therefore every cached result) exactly as it was.
		s.mu.Unlock()
		httpError(w, http.StatusUnprocessableEntity, "adding graph: %v", err)
		return
	}
	// Every cached result describes the pre-insertion database.
	s.cache.Purge()
	resp := AddGraphResponse{Index: gi, Graphs: s.db.Len()}
	s.mu.Unlock()
	writeJSON(w, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	hits, misses := s.cache.Counters()
	resp := StatsResponse{
		Graphs:       s.db.Len(),
		IndexBytes:   s.db.Build.IndexSizeBytes,
		UptimeMS:     float64(time.Since(s.start).Microseconds()) / 1000,
		Queries:      s.queries.Load(),
		Inflight:     s.inflight.Load(),
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheEntries: s.cache.Len(),
		CacheCap:     s.opt.CacheSize,
		Workers:      s.opt.Workers,

		DefaultTimeoutMS: float64(s.opt.Timeout.Microseconds()) / 1000,
	}
	if s.db.PMI != nil {
		resp.PMIFeatures = s.db.PMI.NumFeatures()
	}
	if s.db.Struct != nil {
		resp.StructShards, resp.StructPostings = s.db.Struct.PostingsStats()
	}
	s.mu.RUnlock()
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	n := s.db.Len()
	s.mu.RUnlock()
	writeJSON(w, map[string]any{"status": "ok", "graphs": n})
}
