package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/obs"
)

// Options configures a Server.
type Options struct {
	// CacheSize caps the LRU result cache (entries). 0 selects the default
	// (256); negative disables caching.
	CacheSize int
	// Workers is the default QueryOptions.Concurrency for requests that do
	// not set workers themselves. 0 selects GOMAXPROCS (-1).
	Workers int
	// MaxInflight bounds concurrently evaluated queries; further requests
	// wait. 0 selects 2×GOMAXPROCS; negative means unbounded.
	MaxInflight int
	// Timeout is the default per-request evaluation deadline. A request's
	// timeout_ms overrides it; 0 means no server-side default. A query
	// that outlives its deadline is cancelled (candidate granularity) and
	// answered with a structured HTTP 504 — never a hung connection.
	Timeout time.Duration
	// MutationLog, when set, is called once per committed mutation
	// (add/remove/replace) with the old→new generation transition —
	// pgserve wires it to one structured log line per mutation.
	MutationLog func(MutationEvent)
	// Metrics is the registry /metrics serves and every server metric
	// registers on. nil creates a private registry — /metrics always
	// works; pass one to co-register process-level gauges (pgserve adds
	// its snapshot-load gauge this way).
	Metrics *obs.Registry
	// SlowlogSize bounds the /debug/slowlog ring of slowest queries.
	// 0 selects the default (32); negative disables the slowlog.
	SlowlogSize int
}

func (o Options) withDefaults() Options {
	if o.CacheSize == 0 {
		o.CacheSize = 256
	}
	if o.Workers == 0 {
		o.Workers = -1
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.SlowlogSize == 0 {
		o.SlowlogSize = 32
	}
	return o
}

// MutationEvent describes one committed mutation for logging.
type MutationEvent struct {
	Op             string // "add", "remove", "replace"
	Index          int    // slot the mutation targeted (or created)
	OldGeneration  uint64
	NewGeneration  uint64
	LiveGraphs     int
	Tombstoned     int
	Compacted      bool // the mutation triggered auto-compaction
	CompactedSlots int  // tombstoned slots reclaimed when Compacted
}

// Server answers T-PS queries over one resident Database. The query path
// is lock-free: every request pins the database's current generation view
// and evaluates against it, so mutations (POST/DELETE/PUT /graphs...)
// never block a query and a query never observes a half-applied mutation
// — the old RWMutex is gone. Result-cache entries are keyed by the
// generation they were computed under, which invalidates exactly the
// stale entries (they simply stop being looked up and age out of the
// LRU); nothing is purged on mutation. All randomness stays seeded per
// request, so a response is bitwise-identical to the corresponding
// library call against the same generation.
type Server struct {
	db    *core.Database
	opt   Options
	cache *lruCache
	sem   chan struct{}

	start    time.Time
	inflight atomic.Int64
	genStats genCounters
	metrics  *serverMetrics
	mux      *http.ServeMux
}

// New wraps an indexed database in a Server.
func New(db *core.Database, opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		db:    db,
		opt:   opt,
		cache: newLRUCache(opt.CacheSize),
		start: time.Now(),
		mux:   http.NewServeMux(),
	}
	if opt.MaxInflight > 0 {
		s.sem = make(chan struct{}, opt.MaxInflight)
	}
	s.metrics = newServerMetrics(s, opt.Metrics, opt.SlowlogSize)
	s.mux.HandleFunc("/query", s.instrumented("query", s.handleQuery))
	s.mux.HandleFunc("/query/stream", s.instrumented("stream", s.handleQueryStream))
	s.mux.HandleFunc("/topk", s.instrumented("topk", s.handleTopK))
	s.mux.HandleFunc("/topk/bounds", s.instrumented("topk_bounds", s.handleTopKBounds))
	s.mux.HandleFunc("/topk/verify", s.instrumented("topk_verify", s.handleTopKVerify))
	s.mux.HandleFunc("/batch", s.instrumented("batch", s.handleBatch))
	s.mux.HandleFunc("POST /graphs", s.handleAddGraph)
	s.mux.HandleFunc("DELETE /graphs/{id}", s.handleRemoveGraph)
	s.mux.HandleFunc("PUT /graphs/{id}", s.handleReplaceGraph)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/slowlog", s.handleSlowlog)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the metrics registry the server renders at /metrics.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// QueryRequest is the /query (and, with K, /topk) payload. The query graph
// comes either as structured JSON (graph) or in the text codec
// (graph_text). Epsilon defaults to 0.5, verifier to "smp"; seed drives
// every randomized step deterministically.
type QueryRequest struct {
	Graph     *GraphJSON `json:"graph,omitempty"`
	GraphText string     `json:"graph_text,omitempty"`
	Epsilon   float64    `json:"epsilon,omitempty"`
	Delta     int        `json:"delta"`
	Verifier  string     `json:"verifier,omitempty"`
	Plain     bool       `json:"plain,omitempty"` // plain SSPBound instead of OPT-SSPBound
	Seed      int64      `json:"seed,omitempty"`
	Workers   int        `json:"workers,omitempty"`
	K         int        `json:"k,omitempty"`        // /topk only
	NoCache   bool       `json:"no_cache,omitempty"` // bypass the result cache
	// Trace inlines the request's span tree in the response (also
	// enabled by the trace=1 URL knob). Purely observational: answers,
	// stats, and caching are bitwise-identical with and without it.
	Trace bool `json:"trace,omitempty"`
	// TimeoutMS caps this request's evaluation time in milliseconds,
	// overriding the server's default deadline (0 keeps the default). On
	// expiry the endpoints answer a structured HTTP 504; /query/stream
	// ends the NDJSON stream with an error line instead.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// StatsJSON reports the pipeline counters of one query (times in
// milliseconds).
type StatsJSON struct {
	StructFilterCandidates int     `json:"struct_filter_candidates"`
	StructConfirmed        int     `json:"struct_confirmed"`
	PrunedByUpper          int     `json:"pruned_by_upper"`
	AcceptedByLower        int     `json:"accepted_by_lower"`
	VerifyCandidates       int     `json:"verify_candidates"`
	RelaxedQueries         int     `json:"relaxed_queries"`
	TimeStructMS           float64 `json:"time_struct_ms"`
	TimeProbMS             float64 `json:"time_prob_ms"`
	TimeVerifyMS           float64 `json:"time_verify_ms"`
	TimeTotalMS            float64 `json:"time_total_ms"`
}

func statsJSON(st core.Stats) StatsJSON {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	return StatsJSON{
		StructFilterCandidates: st.StructFilterCandidates,
		StructConfirmed:        st.StructConfirmed,
		PrunedByUpper:          st.PrunedByUpper,
		AcceptedByLower:        st.AcceptedByLower,
		VerifyCandidates:       st.VerifyCandidates,
		RelaxedQueries:         st.RelaxedQueries,
		TimeStructMS:           ms(st.TimeStruct),
		TimeProbMS:             ms(st.TimeProb),
		TimeVerifyMS:           ms(st.TimeVerify),
		TimeTotalMS:            ms(st.TimeTotal),
	}
}

// QueryResponse is the /query reply. Answers lists matching graph indices
// ascending; SSP maps verified indices to their estimated subgraph
// similarity probability (-1 for direct accepts, exactly as the library
// reports them). Generation is the database generation the query ran
// against; Cached marks responses served from the result cache (computed
// under that same generation).
type QueryResponse struct {
	Answers    []int           `json:"answers"`
	Names      []string        `json:"names"`
	SSP        map[int]float64 `json:"ssp"`
	Stats      StatsJSON       `json:"stats"`
	Generation uint64          `json:"generation"`
	Cached     bool            `json:"cached"`
	TimeMS     float64         `json:"time_ms"`
	// Trace is the request's span tree, present only when requested
	// (trace=1 or the body's trace field).
	Trace *obs.SpanNode `json:"trace,omitempty"`
}

// TopKItemJSON is one /topk ranking entry.
type TopKItemJSON struct {
	Graph int     `json:"graph"`
	Name  string  `json:"name"`
	SSP   float64 `json:"ssp"`
}

// TopKResponse is the /topk reply.
type TopKResponse struct {
	Items      []TopKItemJSON `json:"items"`
	Generation uint64         `json:"generation"`
	Cached     bool           `json:"cached"`
	TimeMS     float64        `json:"time_ms"`
	Trace      *obs.SpanNode  `json:"trace,omitempty"`
}

// BatchRequest is the /batch payload: many queries sharing one option set.
// Query i runs with seed BatchSeed(seed, i), exactly like
// Database.QueryBatch — batching never changes an individual answer.
type BatchRequest struct {
	Queries    []GraphJSON `json:"queries,omitempty"`
	QueryTexts []string    `json:"query_texts,omitempty"`
	Epsilon    float64     `json:"epsilon,omitempty"`
	Delta      int         `json:"delta"`
	Verifier   string      `json:"verifier,omitempty"`
	Plain      bool        `json:"plain,omitempty"`
	Seed       int64       `json:"seed,omitempty"`
	Workers    int         `json:"workers,omitempty"`
	NoCache    bool        `json:"no_cache,omitempty"`
	TimeoutMS  int64       `json:"timeout_ms,omitempty"` // per-request deadline override
	Trace      bool        `json:"trace,omitempty"`      // inline the batch's span tree
}

// BatchResponse is the /batch reply, results in input order.
type BatchResponse struct {
	Results []*QueryResponse `json:"results"`
	TimeMS  float64          `json:"time_ms"`
	Trace   *obs.SpanNode    `json:"trace,omitempty"`
}

// AddGraphRequest is the POST /graphs ingestion (and PUT /graphs/{id}
// replacement) payload: one probabilistic graph as structured JSON
// (graph, with jpts) or a dataset pgraph text block (graph_text).
type AddGraphRequest struct {
	Graph     *GraphJSON `json:"graph,omitempty"`
	GraphText string     `json:"graph_text,omitempty"`
}

// MutationResponse reports a committed mutation: the slot it targeted (or
// created), the generation it produced, and the resulting live/tombstoned
// counts. Compacted marks mutations whose tombstone count crossed the
// auto-compaction threshold — graph indices were renumbered.
type MutationResponse struct {
	Op             string `json:"op"`
	Index          int    `json:"index"`
	Generation     uint64 `json:"generation"`
	Graphs         int    `json:"graphs"` // live graphs
	Tombstoned     int    `json:"tombstoned"`
	Compacted      bool   `json:"compacted,omitempty"`
	CompactedSlots int    `json:"compacted_slots,omitempty"`
}

// GenCacheJSON is one generation's result-cache hit/miss counters.
type GenCacheJSON struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// StatsResponse is the /stats reply. Graphs counts slots (tombstoned
// included), LiveGraphs the queryable ones. StructShards/StructPostings
// describe the inverted structural index (postings shards and total
// level-posting entries); both are 0 when the database has no structural
// filter. CacheGenerations maps recent generation numbers (decimal
// strings) to their result-cache hit/miss counters.
type StatsResponse struct {
	Graphs           int                     `json:"graphs"`
	LiveGraphs       int                     `json:"live_graphs"`
	TombstonedGraphs int                     `json:"tombstoned_graphs"`
	Generation       uint64                  `json:"generation"`
	PMIFeatures      int                     `json:"pmi_features"`
	StructShards     int                     `json:"struct_shards"`
	StructPostings   int                     `json:"struct_postings"`
	IndexBytes       int                     `json:"index_bytes"`
	UptimeMS         float64                 `json:"uptime_ms"`
	Queries          int64                   `json:"queries"`
	Inflight         int64                   `json:"inflight"`
	CacheHits        int64                   `json:"cache_hits"`
	CacheMisses      int64                   `json:"cache_misses"`
	CacheEntries     int                     `json:"cache_entries"`
	CacheCap         int                     `json:"cache_cap"`
	CacheGenerations map[string]GenCacheJSON `json:"cache_generations"`
	Workers          int                     `json:"workers"`
	// DefaultTimeoutMS is the server's per-request deadline default
	// (Options.Timeout); 0 means queries run unbounded unless the request
	// sets timeout_ms.
	DefaultTimeoutMS float64 `json:"default_timeout_ms"`
}

// genCounters tracks per-generation result-cache hit/miss counts,
// retaining the most recent maxTrackedGens generations.
type genCounters struct {
	mu sync.Mutex
	m  map[uint64]*GenCacheJSON
}

const maxTrackedGens = 16

func (g *genCounters) record(gen uint64, hit bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = make(map[uint64]*GenCacheJSON)
	}
	c := g.m[gen]
	if c == nil {
		c = &GenCacheJSON{}
		g.m[gen] = c
		for len(g.m) > maxTrackedGens {
			oldest := gen
			for k := range g.m { //pgvet:sorted min-find over keys; the result is order-insensitive
				if k < oldest {
					oldest = k
				}
			}
			delete(g.m, oldest)
		}
	}
	if hit {
		c.Hits++
	} else {
		c.Misses++
	}
}

func (g *genCounters) snapshot() map[string]GenCacheJSON {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]GenCacheJSON, len(g.m))
	for gen, c := range g.m { //pgvet:sorted builds a map rendered by encoding/json, which sorts keys
		out[strconv.FormatUint(gen, 10)] = *c
	}
	return out
}

// genCacheEntry is one generation's counters with its label pre-rendered,
// ordered for byte-stable /metrics exposition.
type genCacheEntry struct {
	Gen string
	GenCacheJSON
}

// snapshotSorted returns the tracked per-generation counters in ascending
// generation order. /metrics renders from this: Prometheus exposition is
// part of the byte-stable output contract, so emission order cannot
// depend on map iteration.
func (g *genCounters) snapshotSorted() []genCacheEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	gens := make([]uint64, 0, len(g.m))
	for gen := range g.m { //pgvet:sorted keys are collected then sorted immediately below
		gens = append(gens, gen)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	out := make([]genCacheEntry, 0, len(gens))
	for _, gen := range gens {
		out = append(out, genCacheEntry{Gen: strconv.FormatUint(gen, 10), GenCacheJSON: *g.m[gen]})
	}
	return out
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// checkTimeoutMS validates the timeout_ms request knob: negative values
// are malformed (rejected 400 by the caller, matching the CLI flags and
// the ε/δ validation convention), 0 means "use the server default".
func checkTimeoutMS(timeoutMS int64) error {
	if timeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0, got %d", timeoutMS)
	}
	return nil
}

// requestContext derives the evaluation context for one request: the
// request's own context (cancelled when the client disconnects, and — when
// pgserve wires http.Server.BaseContext to its shutdown context — when the
// process is told to stop) bounded by the effective deadline: timeoutMS
// when positive, else the server default. timeoutMS has been validated by
// checkTimeoutMS.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.opt.Timeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return r.Context(), func() {}
}

// evalError maps an evaluation failure to the response. Deadline expiry is
// a structured 504 with "timeout": true — the client gets a parseable
// verdict, not a hung or reset connection. Plain cancellation means the
// request context died: either the client disconnected (the 503 write
// below lands nowhere, harmlessly) or the server is shutting down with
// the client still attached — then the 503 tells it to retry elsewhere.
// Everything else is an evaluation failure (422).
func evalError(w http.ResponseWriter, what string, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGatewayTimeout)
		json.NewEncoder(w).Encode(map[string]any{
			"error":   fmt.Sprintf("%s: deadline exceeded", what),
			"timeout": true,
		})
	case errors.Is(err, context.Canceled):
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{
			"error":     fmt.Sprintf("%s: cancelled", what),
			"cancelled": true,
		})
	default:
		httpError(w, http.StatusUnprocessableEntity, "%s: %v", what, err)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeBody parses a JSON request body, enforcing the expected method
// for mux patterns that are not method-qualified.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	return decodeJSONBody(w, r, v)
}

func decodeJSONBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	// Drain to EOF: net/http arms its client-disconnect detection (which
	// cancels r.Context()) only once the body is fully consumed, and
	// Decode stops after the first JSON value.
	io.Copy(io.Discard, r.Body)
	return true
}

func verifierKind(name string) (core.VerifierKind, error) {
	switch name {
	case "", "smp":
		return core.VerifierSMP, nil
	case "exact":
		return core.VerifierExact, nil
	case "none":
		return core.VerifierNone, nil
	default:
		return 0, fmt.Errorf("unknown verifier %q (want smp, exact, or none)", name)
	}
}

// queryOptions translates request knobs to engine options. Workers is the
// only server-side default injected; everything result-affecting comes
// from the request. Out-of-range ε/δ are rejected here — the error joins
// the handlers' bad-request path (HTTP 400), distinguishing malformed
// requests from evaluation failures (422) on every query endpoint,
// /query/stream included.
func (s *Server) queryOptions(epsilon float64, delta int, verifier string, plain bool, seed int64, workers int) (core.QueryOptions, error) {
	vk, err := verifierKind(verifier)
	if err != nil {
		return core.QueryOptions{}, err
	}
	if workers == 0 {
		workers = s.opt.Workers
	}
	opt := core.QueryOptions{
		Epsilon:     epsilon,
		Delta:       delta,
		OptBounds:   !plain,
		Verifier:    vk,
		Seed:        seed,
		Concurrency: workers,
	}
	if err := opt.Validate(); err != nil {
		return core.QueryOptions{}, err
	}
	return opt, nil
}

// cacheKey identifies one deterministic query outcome: the generation it
// was computed under, the query's canonical code, and every
// result-affecting option. Keying by generation is what replaces the old
// purge-on-insert: a mutation bumps the generation, so every existing
// entry simply stops being addressable and ages out of the LRU, while
// queries against a pinned older view would never be served a younger
// generation's result. Workers is excluded — the engine guarantees
// identical results at any concurrency — so requests differing only in
// pool size share an entry. Isomorphic query presentations share an entry
// too (the canonical code is a complete isomorphism invariant); the
// cached result is the one computed for the first-seen presentation.
func cacheKey(kind string, gen uint64, code string, opt core.QueryOptions, k int) string {
	return kind + "\x00" + strconv.FormatUint(gen, 10) + "\x00" + code + "\x00" +
		strconv.FormatFloat(opt.Epsilon, 'x', -1, 64) + "\x00" +
		strconv.Itoa(opt.Delta) + "\x00" +
		strconv.Itoa(int(opt.Verifier)) + "\x00" +
		strconv.FormatBool(opt.OptBounds) + "\x00" +
		strconv.FormatInt(opt.Seed, 10) + "\x00" +
		strconv.Itoa(k)
}

// cacheGet looks the key up and feeds the per-generation counters.
func (s *Server) cacheGet(gen uint64, key string) (any, bool) {
	v, ok := s.cache.Get(key)
	s.genStats.record(gen, ok)
	return v, ok
}

// acquire blocks until an inflight evaluation slot is free.
func (s *Server) acquire() func() {
	s.inflight.Add(1)
	if s.sem == nil {
		return func() { s.inflight.Add(-1) }
	}
	s.sem <- struct{}{}
	return func() {
		<-s.sem
		s.inflight.Add(-1)
	}
}

// names resolves answer indices against the view the query ran on — never
// the current database, which a concurrent mutation may have moved on.
func names(v *core.View, answers []int) []string {
	out := make([]string, len(answers))
	for i, gi := range answers {
		out[i] = v.Graphs[gi].G.Name()
	}
	return out
}

func queryResponse(v *core.View, res *core.Result, cached bool, elapsed time.Duration) *QueryResponse {
	answers := res.Answers
	ssp := res.SSP
	if v.Partitioned() {
		// Graph indices leave the server as global ids, so a shard's
		// answers and SSP keys are directly comparable — and mergeable —
		// with the full database's. Fresh slices/maps are built: res may
		// live in the result cache and must never be mutated.
		answers = make([]int, len(res.Answers))
		for i, gi := range res.Answers {
			answers[i] = v.GID(gi)
		}
		ssp = make(map[int]float64, len(res.SSP))
		//pgvet:sorted map-to-map rekeying; result is order-independent
		for gi, p := range res.SSP {
			ssp[v.GID(gi)] = p
		}
	}
	if answers == nil {
		answers = []int{}
	}
	return &QueryResponse{
		Answers:    answers,
		Names:      names(v, res.Answers),
		SSP:        ssp,
		Stats:      statsJSON(res.Stats),
		Generation: v.Generation,
		Cached:     cached,
		TimeMS:     float64(elapsed.Microseconds()) / 1000,
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	q, err := parseGraphPayload(req.Graph, req.GraphText)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt, err := s.queryOptions(req.Epsilon, req.Delta, req.Verifier, req.Plain, req.Seed, req.Workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkTimeoutMS(req.TimeoutMS); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()

	// Pin the current generation: evaluation, the cache key, and name
	// resolution all use this one immutable view. A mutation committing
	// mid-query neither blocks this request nor leaks into its result.
	v := s.db.View()
	s.metrics.queries["query"].Inc()
	key := cacheKey("query", v.Generation, graph.CanonicalCode(q), opt, 0)
	wantTrace := traceWanted(r, req.Trace)
	if !req.NoCache {
		if cached, ok := s.cacheGet(v.Generation, key); ok {
			resp := queryResponse(v, cached.(*core.Result), true, time.Since(start))
			if wantTrace {
				resp.Trace = traceTree(r)
			}
			writeJSON(w, resp)
			return
		}
	}
	release := s.acquire()
	res, err := v.QueryCtx(ctx, q, opt)
	release()
	if err != nil {
		// Cancelled and timed-out evaluations return an error, so they can
		// never reach the cache Put below — a dead query never poisons the
		// result cache.
		evalError(w, "query failed", err)
		return
	}
	if !req.NoCache {
		s.cache.Put(key, res)
	}
	resp := queryResponse(v, res, false, time.Since(start))
	if wantTrace {
		resp.Trace = traceTree(r)
	}
	writeJSON(w, resp)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.K <= 0 {
		httpError(w, http.StatusBadRequest, "k must be positive")
		return
	}
	q, err := parseGraphPayload(req.Graph, req.GraphText)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt, err := s.queryOptions(req.Epsilon, req.Delta, req.Verifier, req.Plain, req.Seed, req.Workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkTimeoutMS(req.TimeoutMS); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()

	v := s.db.View()
	s.metrics.queries["topk"].Inc()
	key := cacheKey("topk", v.Generation, graph.CanonicalCode(q), opt, req.K)
	wantTrace := traceWanted(r, req.Trace)

	build := func(items []core.TopKItem, cached bool) TopKResponse {
		out := TopKResponse{Items: []TopKItemJSON{}, Generation: v.Generation, Cached: cached,
			TimeMS: float64(time.Since(start).Microseconds()) / 1000}
		for _, it := range items {
			out.Items = append(out.Items, TopKItemJSON{
				Graph: v.GID(it.Graph), Name: v.Graphs[it.Graph].G.Name(), SSP: it.SSP,
			})
		}
		if wantTrace {
			out.Trace = traceTree(r)
		}
		return out
	}
	if !req.NoCache {
		if cached, ok := s.cacheGet(v.Generation, key); ok {
			writeJSON(w, build(cached.([]core.TopKItem), true))
			return
		}
	}
	release := s.acquire()
	items, err := v.QueryTopKCtx(ctx, q, req.K, opt)
	release()
	if err != nil {
		evalError(w, "topk failed", err)
		return
	}
	if !req.NoCache {
		s.cache.Put(key, items)
	}
	writeJSON(w, build(items, false))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Queries) > 0 && len(req.QueryTexts) > 0 {
		httpError(w, http.StatusBadRequest, "give either queries or query_texts, not both")
		return
	}
	var qs []*graph.Graph
	for i := range req.Queries {
		q, err := GraphFromJSON(&req.Queries[i])
		if err != nil {
			httpError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		qs = append(qs, q)
	}
	for i, text := range req.QueryTexts {
		q, err := parseGraphPayload(nil, text)
		if err != nil {
			httpError(w, http.StatusBadRequest, "query %d: %v", i, err)
			return
		}
		qs = append(qs, q)
	}
	if len(qs) == 0 {
		httpError(w, http.StatusBadRequest, "empty batch")
		return
	}
	opt, err := s.queryOptions(req.Epsilon, req.Delta, req.Verifier, req.Plain, req.Seed, req.Workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkTimeoutMS(req.TimeoutMS); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()

	// One pinned view serves the whole batch: every member runs against
	// the same generation, whose number also keys each member's cache
	// slot. Batch member i is definitionally Query with seed
	// BatchSeed(seed, i), so a subsequent /query with that derived seed
	// (and the same generation) hits the same entry. The batch is served
	// from cache only when every member hits; one miss re-runs the whole
	// batch (QueryBatch derives seeds by position, so partial evaluation
	// would change seeds).
	v := s.db.View()
	s.metrics.queries["batch"].Add(int64(len(qs)))
	keys := make([]string, len(qs))
	for i, q := range qs {
		mo := opt
		mo.Seed = core.BatchSeed(opt.Seed, i)
		keys[i] = cacheKey("query", v.Generation, graph.CanonicalCode(q), mo, 0)
	}

	if !req.NoCache {
		// Probe with Peek first: a probe that ends in a miss must not
		// inflate the hit counter or LRU-promote entries the batch then
		// recomputes anyway. Only an all-present batch commits to Gets.
		allHit := true
		for _, key := range keys {
			if !s.cache.Peek(key) {
				allHit = false
				break
			}
		}
		if allHit {
			cached := make([]*core.Result, len(qs))
			for i, key := range keys {
				cv, ok := s.cacheGet(v.Generation, key)
				if !ok { // evicted between Peek and Get: fall through to a full run
					allHit = false
					break
				}
				cached[i] = cv.(*core.Result)
			}
			if allHit {
				out := BatchResponse{TimeMS: float64(time.Since(start).Microseconds()) / 1000}
				for _, res := range cached {
					out.Results = append(out.Results, queryResponse(v, res, true, 0))
				}
				if traceWanted(r, req.Trace) {
					out.Trace = traceTree(r)
				}
				writeJSON(w, out)
				return
			}
		}
	}
	release := s.acquire()
	results, err := v.QueryBatchCtx(ctx, qs, opt)
	release()
	if err != nil {
		evalError(w, "batch failed", err)
		return
	}
	out := BatchResponse{TimeMS: float64(time.Since(start).Microseconds()) / 1000}
	for i, res := range results {
		if !req.NoCache {
			s.cache.Put(keys[i], res)
		}
		out.Results = append(out.Results, queryResponse(v, res, false, 0))
	}
	if traceWanted(r, req.Trace) {
		out.Trace = traceTree(r)
	}
	writeJSON(w, out)
}

// mutationResponse assembles the reply from core's mutation record —
// every field of which was captured inside the database's writer lock,
// so concurrent mutations cannot skew the reported generation, shape, or
// compaction marker — and fires the mutation log hook.
func (s *Server) mutationResponse(op string, m core.Mutation) MutationResponse {
	resp := MutationResponse{
		Op:             op,
		Index:          m.Index,
		Generation:     m.NewGeneration,
		Graphs:         m.LiveGraphs,
		Tombstoned:     m.Tombstoned,
		Compacted:      m.Compacted,
		CompactedSlots: m.CompactedSlots,
	}
	s.metrics.mutations[op].Inc()
	if m.Compacted {
		s.metrics.compact.Inc()
	}
	if s.opt.MutationLog != nil {
		s.opt.MutationLog(MutationEvent{
			Op: op, Index: m.Index,
			OldGeneration: m.OldGeneration, NewGeneration: m.NewGeneration,
			LiveGraphs: m.LiveGraphs, Tombstoned: m.Tombstoned,
			Compacted: m.Compacted, CompactedSlots: m.CompactedSlots,
		})
	}
	return resp
}

func (s *Server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	var req AddGraphRequest
	if !decodeJSONBody(w, r, &req) {
		return
	}
	pg, err := parsePGraphPayload(req.Graph, req.GraphText)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, err := s.db.AddGraphInfo(pg)
	if err != nil {
		// core.AddGraph is atomic — a failure publishes nothing, so every
		// cached result stays valid for its generation.
		httpError(w, http.StatusUnprocessableEntity, "adding graph: %v", err)
		return
	}
	writeJSON(w, s.mutationResponse("add", m))
}

// graphID parses the {id} path segment of /graphs/{id}.
func graphID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		httpError(w, http.StatusBadRequest, "bad graph id %q", r.PathValue("id"))
		return 0, false
	}
	return id, true
}

// mutationError maps a failed remove/replace to a status: unknown or
// already-removed slots are 404, everything else (engine construction,
// PMI column computation) an evaluation failure, 422.
func mutationError(w http.ResponseWriter, what string, err error) {
	status := http.StatusUnprocessableEntity
	if errors.Is(err, core.ErrNoSuchGraph) {
		status = http.StatusNotFound
	}
	httpError(w, status, "%s: %v", what, err)
}

func (s *Server) handleRemoveGraph(w http.ResponseWriter, r *http.Request) {
	id, ok := graphID(w, r)
	if !ok {
		return
	}
	m, err := s.db.RemoveGraphInfo(id)
	if err != nil {
		mutationError(w, "removing graph", err)
		return
	}
	writeJSON(w, s.mutationResponse("remove", m))
}

func (s *Server) handleReplaceGraph(w http.ResponseWriter, r *http.Request) {
	id, ok := graphID(w, r)
	if !ok {
		return
	}
	var req AddGraphRequest
	if !decodeJSONBody(w, r, &req) {
		return
	}
	pg, err := parsePGraphPayload(req.Graph, req.GraphText)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	m, err := s.db.ReplaceGraphInfo(id, pg)
	if err != nil {
		mutationError(w, "replacing graph", err)
		return
	}
	writeJSON(w, s.mutationResponse("replace", m))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	v := s.db.View()
	hits, misses := s.cache.Counters()
	resp := StatsResponse{
		Graphs:           v.Len(),
		LiveGraphs:       v.NumLive(),
		TombstonedGraphs: v.Tombstones(),
		Generation:       v.Generation,
		IndexBytes:       v.Build.IndexSizeBytes,
		UptimeMS:         float64(time.Since(s.start).Microseconds()) / 1000,
		Queries:          s.metrics.totalQueries(),
		Inflight:         s.inflight.Load(),
		CacheHits:        hits,
		CacheMisses:      misses,
		CacheEntries:     s.cache.Len(),
		CacheCap:         s.opt.CacheSize,
		CacheGenerations: s.genStats.snapshot(),
		Workers:          s.opt.Workers,

		DefaultTimeoutMS: float64(s.opt.Timeout.Microseconds()) / 1000,
	}
	if v.PMI != nil {
		resp.PMIFeatures = v.PMI.NumFeatures()
	}
	if v.Struct != nil {
		resp.StructShards, resp.StructPostings = v.Struct.PostingsStats()
	}
	writeJSON(w, resp)
}

// handleHealthz is the liveness probe: the process is up and serving
// HTTP. It says nothing about whether queries can be answered — that is
// /readyz's job — so orchestrators restart on /healthz failures and hold
// traffic on /readyz failures, independently.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := s.db.View()
	writeJSON(w, map[string]any{"status": "ok", "graphs": v.NumLive(), "generation": v.Generation})
}

// handleReadyz is the readiness probe: 200 once the database is loaded
// with at least one live graph (the snapshot parsed and this server can
// answer queries), 503 otherwise. The coordinator's /readyz additionally
// requires every shard to be ready — see internal/cluster.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	v := s.db.View()
	if v.NumLive() == 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"ready": false, "error": "no live graphs"})
		return
	}
	writeJSON(w, map[string]any{
		"ready": true, "graphs": v.NumLive(), "generation": v.Generation,
		"partitioned": v.Partitioned(),
	})
}
