package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"
)

// streamWriteTimeout is the per-write deadline of /query/stream responses,
// replacing the http.Server's whole-response WriteTimeout (which a long
// stream may legitimately outlive): every match line gets this long to
// reach the client before the connection is reclaimed as dead.
const streamWriteTimeout = 30 * time.Second

// StreamMatchJSON is one /query/stream NDJSON line: a verified answer,
// written (and flushed) the moment the prune+verify stage admitted it.
// SSP carries the verified estimate, or -1 for direct lower-bound accepts
// — exactly the library's Match.
type StreamMatchJSON struct {
	Graph int     `json:"graph"`
	Name  string  `json:"name"`
	SSP   float64 `json:"ssp"`
}

// StreamSummaryJSON is the final /query/stream line. Answers is the
// complete answer set re-sorted ascending — bitwise equal to /query's
// answers field for the same request — so a client that only tails the
// last line still gets the full deterministic result. SSP covers the
// answers only (what the match lines carried); unlike /query's ssp map it
// has no entries for verified candidates that fell below ε.
type StreamSummaryJSON struct {
	Done    bool            `json:"done"`
	Answers []int           `json:"answers"`
	SSP     map[int]float64 `json:"ssp"`
	Count   int             `json:"count"`
	TimeMS  float64         `json:"time_ms"`
}

// StreamErrorJSON ends a stream that could not complete. Timeout marks
// deadline expiry and Cancelled plain cancellation (server shutdown with
// the client still attached — or a disconnect, where the line lands
// nowhere, harmlessly): the non-streaming endpoints' structured 504/503,
// folded into the NDJSON protocol — the status line is long gone by then.
type StreamErrorJSON struct {
	Error     string `json:"error"`
	Timeout   bool   `json:"timeout,omitempty"`
	Cancelled bool   `json:"cancelled,omitempty"`
}

// streamItem is one element of the evaluation→delivery hand-off queue:
// a resolved match line or the stream's terminal error.
type streamItem struct {
	m   StreamMatchJSON
	err error
}

// streamQueue is the unbounded hand-off between the evaluation goroutine
// and the response writer: pushes never block (the evaluator must never
// wait on a slow client — that is what keeps the inflight slot's hold
// time bounded by evaluation alone), memory grows with the actual
// match count rather than a db.Len()-sized preallocation, and pop blocks
// on a 1-buffered wake-up channel until an item or close arrives.
type streamQueue struct {
	mu     sync.Mutex
	items  []streamItem
	head   int
	closed bool
	wake   chan struct{}
}

func newStreamQueue() *streamQueue {
	return &streamQueue{wake: make(chan struct{}, 1)}
}

func (sq *streamQueue) signal() {
	select {
	case sq.wake <- struct{}{}:
	default:
	}
}

func (sq *streamQueue) push(it streamItem) {
	sq.mu.Lock()
	sq.items = append(sq.items, it)
	sq.mu.Unlock()
	sq.signal()
}

func (sq *streamQueue) close() {
	sq.mu.Lock()
	sq.closed = true
	sq.mu.Unlock()
	sq.signal()
}

// pop returns the next item, or ok=false once the queue is closed and
// drained.
func (sq *streamQueue) pop() (it streamItem, ok bool) {
	for {
		sq.mu.Lock()
		if sq.head < len(sq.items) {
			it = sq.items[sq.head]
			sq.items[sq.head] = streamItem{} // release for GC
			sq.head++
			if sq.head == len(sq.items) {
				sq.items, sq.head = sq.items[:0], 0
			}
			sq.mu.Unlock()
			return it, true
		}
		closed := sq.closed
		sq.mu.Unlock()
		if closed {
			return streamItem{}, false
		}
		<-sq.wake
	}
}

// handleQueryStream is POST /query/stream: the /query pipeline with
// incremental NDJSON delivery. Each verified match is written and flushed
// as verification confirms it — arrival order, which is the one
// scheduling-dependent aspect of the engine — followed by a summary line
// carrying the sorted answer set. Client disconnect cancels the query via
// r.Context(); timeout_ms (or the server default deadline) bounds it.
//
// Two deliberate differences from /query:
//   - The result cache is bypassed entirely. A stream can be abandoned or
//     cancelled halfway, and a partial answer set must never be mistaken
//     for a complete cached result; rather than cache only the happy path
//     the endpoint stays cache-free and leaves caching to /query.
//   - Evaluation and delivery are decoupled. The inflight slot is held by
//     an evaluation goroutine only while the engine runs — the same
//     discipline as /query — and matches flow to the response writer
//     through an unbounded queue whose pushes never block, so the
//     evaluator can never wait on a slow client. A stalled consumer
//     therefore costs a connection (reclaimed by the per-write deadline),
//     never shared state: the query path pins a generation view and holds
//     no lock at all, so /graphs mutations and every other endpoint stay
//     live no matter what a stream's client does.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.K != 0 {
		httpError(w, http.StatusBadRequest, "k is not supported on /query/stream")
		return
	}
	q, err := parseGraphPayload(req.Graph, req.GraphText)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt, err := s.queryOptions(req.Epsilon, req.Delta, req.Verifier, req.Plain, req.Seed, req.Workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := checkTimeoutMS(req.TimeoutMS); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()

	// Evaluation goroutine: pins the current generation view, takes an
	// inflight slot, runs the stream, resolves names against that same
	// view (a concurrent mutation cannot disturb it), and releases the
	// slot the moment evaluation ends. The queue absorbs matches without
	// ever blocking the evaluator, so the slot hold is bounded by the
	// evaluation itself (which ctx bounds), never by the client.
	v := s.db.View()
	s.metrics.queries["stream"].Inc()
	release := s.acquire()
	queue := newStreamQueue()
	go func() {
		defer queue.close()
		defer release()
		for m, err := range v.QueryStream(ctx, q, opt) {
			if err != nil {
				queue.push(streamItem{err: err})
				return
			}
			// Graph indices leave the server as global ids (GID is the
			// identity off a partition), matching /query's translation.
			queue.push(streamItem{m: StreamMatchJSON{
				Graph: v.GID(m.Graph), Name: v.Graphs[m.Graph].G.Name(), SSP: m.SSP,
			}})
		}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	emit := func(v any) bool {
		// A stream may legitimately outlive the http.Server's blanket
		// WriteTimeout (sized for one-shot responses), so each write gets
		// its own fresh deadline instead: generous enough for any live
		// client, finite so a stuck connection is still reclaimed. Not
		// every ResponseWriter supports per-request deadlines (
		// ErrNotSupported); then the server-wide timeout keeps applying.
		rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		if err := enc.Encode(v); err != nil {
			return false
		}
		// A flush failure means the client is gone; r.Context() is
		// cancelled on disconnect, which ends the evaluation goroutine,
		// so the error itself needs no handling here.
		rc.Flush()
		return true
	}

	answers := []int{}
	ssp := make(map[int]float64)
	for {
		it, ok := queue.pop()
		if !ok {
			break
		}
		if it.err != nil {
			// On plain cancellation the client is either gone (the line
			// lands nowhere) or watching a graceful shutdown — then the
			// in-band cancelled marker is its cue to retry elsewhere,
			// mirroring the non-stream endpoints' 503.
			emit(StreamErrorJSON{
				Error:     "stream failed: " + it.err.Error(),
				Timeout:   errors.Is(it.err, context.DeadlineExceeded),
				Cancelled: errors.Is(it.err, context.Canceled),
			})
			return
		}
		if !emit(it.m) {
			return // evaluation goroutine finishes on its own; pushes never block
		}
		answers = append(answers, it.m.Graph)
		ssp[it.m.Graph] = it.m.SSP
	}
	sort.Ints(answers)
	emit(StreamSummaryJSON{
		Done:    true,
		Answers: answers,
		SSP:     ssp,
		Count:   len(answers),
		TimeMS:  float64(time.Since(start).Microseconds()) / 1000,
	})
}
