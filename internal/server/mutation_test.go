package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/dataset"
)

// send issues a JSON request with an arbitrary method.
func (env *testEnv) send(t *testing.T, method, path string, req any, resp any) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if req != nil {
		if err := json.NewEncoder(&body).Encode(req); err != nil {
			t.Fatal(err)
		}
	}
	hreq, err := http.NewRequest(method, env.ts.URL+path, &body)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hr, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if resp != nil {
		if err := json.NewDecoder(hr.Body).Decode(resp); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return hr
}

// pgraphText renders one generated probabilistic graph in the text codec.
func pgraphText(t *testing.T, seed int64) string {
	t.Helper()
	extra, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 1, MinVertices: 5, MaxVertices: 6, Organisms: 1,
		Correlated: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dataset.EncodePGraph(&buf, extra.Graphs[0], 0); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestRemoveAndReplaceEndpoints: DELETE and PUT /graphs/{id} mutate the
// database through the generation API — tombstoned graphs leave the
// answers with indices stable, replacement swaps a slot in place, and the
// error paths map to 400/404.
func TestRemoveAndReplaceEndpoints(t *testing.T) {
	env := newTestEnv(t, Options{})

	// Baseline query; pick a victim from its answers so removal is visible.
	req := QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.3, Delta: 1, Seed: 3}
	var base QueryResponse
	env.post(t, "/query", req, &base)
	if len(base.Answers) == 0 {
		t.Skip("baseline query has no answers")
	}
	victim := base.Answers[0]

	var mr MutationResponse
	hr := env.send(t, http.MethodDelete, fmt.Sprintf("/graphs/%d", victim), nil, &mr)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", hr.StatusCode)
	}
	if mr.Op != "remove" || mr.Index != victim || mr.Tombstoned != 1 || mr.Generation != base.Generation+1 {
		t.Fatalf("remove response %+v", mr)
	}

	var after QueryResponse
	env.post(t, "/query", req, &after)
	if after.Cached {
		t.Fatal("post-removal query served from a stale generation's cache entry")
	}
	if after.Generation != mr.Generation {
		t.Fatalf("post-removal generation %d, want %d", after.Generation, mr.Generation)
	}
	want := make([]int, 0, len(base.Answers)-1)
	for _, gi := range base.Answers {
		if gi != victim {
			want = append(want, gi)
		}
	}
	if !reflect.DeepEqual(after.Answers, want) {
		t.Fatalf("post-removal answers %v, want %v (indices must be stable)", after.Answers, want)
	}

	// Error paths: double delete and unknown slots are 404, junk ids 400.
	if hr := env.send(t, http.MethodDelete, fmt.Sprintf("/graphs/%d", victim), nil, nil); hr.StatusCode != http.StatusNotFound {
		t.Fatalf("double DELETE status %d, want 404", hr.StatusCode)
	}
	if hr := env.send(t, http.MethodDelete, "/graphs/999", nil, nil); hr.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range DELETE status %d, want 404", hr.StatusCode)
	}
	if hr := env.send(t, http.MethodDelete, "/graphs/junk", nil, nil); hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk id DELETE status %d, want 400", hr.StatusCode)
	}

	// Replace a surviving slot; the server must agree with the library
	// run against the same mutated state.
	target := want[0]
	text := pgraphText(t, 4242)
	var rr MutationResponse
	hr = env.send(t, http.MethodPut, fmt.Sprintf("/graphs/%d", target), AddGraphRequest{GraphText: text}, &rr)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("PUT status %d", hr.StatusCode)
	}
	if rr.Op != "replace" || rr.Index != target || rr.Generation != mr.Generation+1 {
		t.Fatalf("replace response %+v", rr)
	}
	if hr := env.send(t, http.MethodPut, fmt.Sprintf("/graphs/%d", victim), AddGraphRequest{GraphText: text}, nil); hr.StatusCode != http.StatusNotFound {
		t.Fatalf("PUT on tombstoned slot status %d, want 404", hr.StatusCode)
	}

	// The server's post-mutation result equals the library's on an
	// equally mutated database.
	lib := env.fresh
	if _, err := lib.RemoveGraph(victim); err != nil {
		t.Fatal(err)
	}
	pg, err := parsePGraphPayload(nil, text)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.ReplaceGraph(target, pg); err != nil {
		t.Fatal(err)
	}
	wantRes, err := lib.Query(env.qs[0], core.QueryOptions{Epsilon: 0.3, Delta: 1, OptBounds: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var final QueryResponse
	env.post(t, "/query", req, &final)
	wantAnswers := wantRes.Answers
	if wantAnswers == nil {
		wantAnswers = []int{}
	}
	if !reflect.DeepEqual(final.Answers, wantAnswers) || !reflect.DeepEqual(final.SSP, wantRes.SSP) {
		t.Fatalf("post-replace: server %v %v != library %v %v",
			final.Answers, final.SSP, wantRes.Answers, wantRes.SSP)
	}
}

// TestGenerationKeyedCache: mutation does not purge the cache — it makes
// stale entries unaddressable. Stats report generation, live/tombstoned
// counts, and per-generation hit/miss counters.
func TestGenerationKeyedCache(t *testing.T) {
	env := newTestEnv(t, Options{})
	req := QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 5}

	var r1, r2 QueryResponse
	env.post(t, "/query", req, &r1) // miss at gen 1
	env.post(t, "/query", req, &r2) // hit at gen 1
	if r1.Cached || !r2.Cached {
		t.Fatalf("warmup: cached = (%t, %t), want (false, true)", r1.Cached, r2.Cached)
	}

	var st StatsResponse
	env.get(t, "/stats", &st)
	if st.Generation != 1 || st.LiveGraphs != 10 || st.TombstonedGraphs != 0 {
		t.Fatalf("pre-mutation stats: gen=%d live=%d tomb=%d", st.Generation, st.LiveGraphs, st.TombstonedGraphs)
	}
	g1 := st.CacheGenerations["1"]
	if g1.Hits != 1 || g1.Misses != 1 {
		t.Fatalf("generation 1 counters %+v, want 1 hit / 1 miss", g1)
	}
	entriesBefore := st.CacheEntries
	if entriesBefore == 0 {
		t.Fatal("no cache entries after a warmed query")
	}

	// Mutate: the entry must not be served again, but also must not be
	// purged — it is still there, keyed by the old generation.
	var mr MutationResponse
	env.post(t, "/graphs", AddGraphRequest{GraphText: pgraphText(t, 515)}, &mr)
	if mr.Generation != 2 {
		t.Fatalf("add produced generation %d, want 2", mr.Generation)
	}
	env.get(t, "/stats", &st)
	if st.CacheEntries != entriesBefore {
		t.Fatalf("mutation changed cache entries %d -> %d (purge is gone by design)", entriesBefore, st.CacheEntries)
	}

	var r3, r4 QueryResponse
	env.post(t, "/query", req, &r3) // miss at gen 2 (recomputed)
	env.post(t, "/query", req, &r4) // hit at gen 2
	if r3.Cached || !r4.Cached {
		t.Fatalf("post-mutation: cached = (%t, %t), want (false, true)", r3.Cached, r4.Cached)
	}
	if r3.Generation != 2 || r4.Generation != 2 {
		t.Fatalf("post-mutation generations (%d, %d), want 2", r3.Generation, r4.Generation)
	}

	env.get(t, "/stats", &st)
	g2 := st.CacheGenerations["2"]
	if g2.Hits != 1 || g2.Misses != 1 {
		t.Fatalf("generation 2 counters %+v, want 1 hit / 1 miss", g2)
	}
	if st.CacheEntries != entriesBefore+1 {
		t.Fatalf("cache entries %d, want %d (old + new generation's)", st.CacheEntries, entriesBefore+1)
	}

	// Remove: stats flip to tombstoned, healthz reports live count.
	var rm MutationResponse
	env.send(t, http.MethodDelete, "/graphs/0", nil, &rm)
	env.get(t, "/stats", &st)
	if st.Generation != 3 || st.LiveGraphs != 10 || st.TombstonedGraphs != 1 || st.Graphs != 11 {
		t.Fatalf("post-remove stats: %+v", st)
	}
	var hz map[string]any
	env.get(t, "/healthz", &hz)
	if int(hz["graphs"].(float64)) != 10 || uint64(hz["generation"].(float64)) != 3 {
		t.Fatalf("healthz = %v", hz)
	}
}

// TestMutationLogHook: every committed mutation produces exactly one
// event carrying the old→new generation transition.
func TestMutationLogHook(t *testing.T) {
	var events []MutationEvent
	env := newTestEnv(t, Options{MutationLog: func(ev MutationEvent) {
		events = append(events, ev)
	}})

	env.post(t, "/graphs", AddGraphRequest{GraphText: pgraphText(t, 616)}, nil)
	env.send(t, http.MethodDelete, "/graphs/3", nil, nil)
	env.send(t, http.MethodPut, "/graphs/4", AddGraphRequest{GraphText: pgraphText(t, 617)}, nil)
	// Failed mutations must not log.
	env.send(t, http.MethodDelete, "/graphs/3", nil, nil)

	wantOps := []string{"add", "remove", "replace"}
	if len(events) != len(wantOps) {
		t.Fatalf("logged %d events, want %d: %+v", len(events), len(wantOps), events)
	}
	for i, ev := range events {
		if ev.Op != wantOps[i] {
			t.Fatalf("event %d op %q, want %q", i, ev.Op, wantOps[i])
		}
		if ev.NewGeneration != ev.OldGeneration+1 {
			t.Fatalf("event %d generations %d -> %d, want +1", i, ev.OldGeneration, ev.NewGeneration)
		}
		if ev.NewGeneration != uint64(i)+2 {
			t.Fatalf("event %d new generation %d, want %d", i, ev.NewGeneration, i+2)
		}
	}
	if events[1].Tombstoned != 1 || events[1].LiveGraphs != 10 {
		t.Fatalf("remove event shape %+v", events[1])
	}
}
