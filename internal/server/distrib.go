package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"probgraph/internal/core"
	"probgraph/internal/graph"
	"probgraph/internal/obs"
)

var (
	errBatchBothPayloads = errors.New("give either queries or query_texts, not both")
	errBatchEmpty        = errors.New("empty batch")
)

// This file is the shard side of distributed serving (see
// internal/cluster): request validation the coordinator reuses before
// fanning out, and the two shard-internal endpoints the distributed
// top-k replay needs — /topk/bounds (the verification schedule, no
// verification) and /topk/verify (SSPs for an explicit global-id list).
// Both speak global graph ids on the wire, like every other endpoint on
// a partition.

// Check validates every result-affecting knob of the request — the query
// graph parses, the verifier is known, ε/δ are in range, timeout_ms is
// non-negative — and returns the parsed query. The coordinator calls it
// before fanning a request out, so a malformed request is rejected with
// one 400 instead of N shard round-trips; the semantics are exactly the
// single-node handlers' bad-request path.
func (req *QueryRequest) Check() (*graph.Graph, error) {
	q, err := parseGraphPayload(req.Graph, req.GraphText)
	if err != nil {
		return nil, err
	}
	if _, err := verifierKind(req.Verifier); err != nil {
		return nil, err
	}
	opt := core.QueryOptions{Epsilon: req.Epsilon, Delta: req.Delta}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := checkTimeoutMS(req.TimeoutMS); err != nil {
		return nil, err
	}
	return q, nil
}

// Check validates a batch request the way /batch does (either queries or
// query_texts, at least one member, every member parses, options in
// range) and returns the parsed members in request order.
func (req *BatchRequest) Check() ([]*graph.Graph, error) {
	if len(req.Queries) > 0 && len(req.QueryTexts) > 0 {
		return nil, errBatchBothPayloads
	}
	var qs []*graph.Graph
	for i := range req.Queries {
		q, err := GraphFromJSON(&req.Queries[i])
		if err != nil {
			return nil, fmt.Errorf("query %d: %v", i, err)
		}
		qs = append(qs, q)
	}
	for i, text := range req.QueryTexts {
		q, err := parseGraphPayload(nil, text)
		if err != nil {
			return nil, fmt.Errorf("query %d: %v", i, err)
		}
		qs = append(qs, q)
	}
	if len(qs) == 0 {
		return nil, errBatchEmpty
	}
	if _, err := verifierKind(req.Verifier); err != nil {
		return nil, err
	}
	opt := core.QueryOptions{Epsilon: req.Epsilon, Delta: req.Delta}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := checkTimeoutMS(req.TimeoutMS); err != nil {
		return nil, err
	}
	return qs, nil
}

// TopKBoundJSON is one /topk/bounds schedule entry: a candidate's global
// graph id, its name, and its clamped SSP upper bound.
type TopKBoundJSON struct {
	Graph int     `json:"graph"`
	Name  string  `json:"name"`
	Upper float64 `json:"upper"`
}

// TopKBoundsResponse is the /topk/bounds reply: this shard's top-k
// verification schedule, sorted in serial verification order (upper
// descending, global id ascending). Degenerate marks the δ ≥ |E(q)| case,
// where bounds lists the shard's first k live graphs (all with SSP 1) and
// nothing needs verification.
type TopKBoundsResponse struct {
	Degenerate bool            `json:"degenerate"`
	Bounds     []TopKBoundJSON `json:"bounds"`
	Generation uint64          `json:"generation"`
	TimeMS     float64         `json:"time_ms"`
	Trace      *obs.SpanNode   `json:"trace,omitempty"`
}

// TopKVerifyRequest is the /topk/verify payload: a query (all the /topk
// knobs except k apply — seed, verifier, delta, workers) plus the global
// ids to verify, each of which must live on this shard.
type TopKVerifyRequest struct {
	QueryRequest
	Graphs []int `json:"graphs"`
}

// TopKVerifyResponse is the /topk/verify reply: SSP estimates keyed by
// global id, bitwise-identical to what the full database's top-k
// verification computes for those graphs.
type TopKVerifyResponse struct {
	SSP        map[int]float64 `json:"ssp"`
	Generation uint64          `json:"generation"`
	TimeMS     float64         `json:"time_ms"`
}

// handleTopKBounds is POST /topk/bounds: the top-k schedule of this
// server's graphs — upper bounds only, no verification. A distributed
// coordinator merges the schedules of every shard by (upper, global id)
// and replays the serial early-termination rule over the union; see
// internal/cluster. Not cached: the coordinator owns caching of the
// merged result.
func (s *Server) handleTopKBounds(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.K <= 0 {
		httpError(w, http.StatusBadRequest, "k must be positive")
		return
	}
	q, err := req.Check()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt, err := s.queryOptions(req.Epsilon, req.Delta, req.Verifier, req.Plain, req.Seed, req.Workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()

	v := s.db.View()
	s.metrics.queries["topk_bounds"].Inc()
	release := s.acquire()
	bounds, degenerate, err := v.QueryTopKBounds(ctx, q, req.K, opt)
	release()
	if err != nil {
		evalError(w, "topk bounds failed", err)
		return
	}
	resp := TopKBoundsResponse{
		Degenerate: degenerate,
		Bounds:     make([]TopKBoundJSON, 0, len(bounds)),
		Generation: v.Generation,
		TimeMS:     float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, b := range bounds {
		resp.Bounds = append(resp.Bounds, TopKBoundJSON{
			Graph: v.GID(b.Graph), Name: v.Graphs[b.Graph].G.Name(), Upper: b.Upper,
		})
	}
	if traceWanted(r, req.Trace) {
		resp.Trace = traceTree(r)
	}
	writeJSON(w, resp)
}

// handleTopKVerify is POST /topk/verify: SSP estimates for an explicit
// list of this server's graphs, by global id. The estimates are the ones
// the serial top-k run would compute (per-candidate seeding from the
// global id alone), so the coordinator can fold them into its replayed
// commit loop unchanged.
func (s *Server) handleTopKVerify(w http.ResponseWriter, r *http.Request) {
	var req TopKVerifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Graphs) == 0 {
		httpError(w, http.StatusBadRequest, "empty graphs list")
		return
	}
	q, err := req.Check()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opt, err := s.queryOptions(req.Epsilon, req.Delta, req.Verifier, req.Plain, req.Seed, req.Workers)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	start := time.Now()

	v := s.db.View()
	locals := make([]int, len(req.Graphs))
	for i, g := range req.Graphs {
		li := v.LocalOf(g)
		if li < 0 || !v.Live(li) {
			httpError(w, http.StatusBadRequest, "graph %d is not on this shard", g)
			return
		}
		locals[i] = li
	}
	s.metrics.queries["topk_verify"].Add(int64(len(locals)))
	release := s.acquire()
	ssps, err := v.VerifySSPBatch(ctx, q, locals, opt)
	release()
	if err != nil {
		evalError(w, "topk verify failed", err)
		return
	}
	resp := TopKVerifyResponse{
		SSP:        make(map[int]float64, len(ssps)),
		Generation: v.Generation,
		TimeMS:     float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, p := range ssps {
		resp.SSP[req.Graphs[i]] = p
	}
	writeJSON(w, resp)
}
