package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"probgraph/internal/core"
	"probgraph/internal/dataset"
	"probgraph/internal/graph"
)

// testEnv builds a small indexed database, snapshots it, reloads it (the
// pgserve startup path), and serves the reloaded copy — so every assertion
// below also exercises snapshot fidelity.
type testEnv struct {
	fresh  *core.Database // the database that wrote the snapshot
	srv    *Server
	ts     *httptest.Server
	raw    *dataset.DB
	qs     []*graph.Graph
	qtexts []string
}

func newTestEnv(t *testing.T, opt Options) *testEnv {
	t.Helper()
	raw, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 10, MinVertices: 5, MaxVertices: 7, Organisms: 3,
		Correlated: true, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.NewDatabase(raw.Graphs, core.DefaultBuildOptions())
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := fresh.Save(&snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadDatabase(&snap)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(loaded, opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	rng := rand.New(rand.NewSource(5))
	env := &testEnv{fresh: fresh, srv: srv, ts: ts, raw: raw}
	for i := 0; i < 3; i++ {
		q := dataset.ExtractQuery(raw.Graphs[i].G, 4, rng)
		var buf bytes.Buffer
		if err := graph.Encode(&buf, q); err != nil {
			t.Fatal(err)
		}
		env.qs = append(env.qs, q)
		env.qtexts = append(env.qtexts, buf.String())
	}
	return env
}

func (env *testEnv) post(t *testing.T, path string, req any, resp any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(env.ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if resp != nil {
		if err := json.NewDecoder(hr.Body).Decode(resp); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return hr
}

func (env *testEnv) get(t *testing.T, path string, resp any) {
	t.Helper()
	hr, err := http.Get(env.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, hr.StatusCode)
	}
	if err := json.NewDecoder(hr.Body).Decode(resp); err != nil {
		t.Fatal(err)
	}
}

// TestQueryMatchesLibraryBitwise: a /query response must equal
// Database.Query on the freshly built database — same answers, same SSP
// floats bit for bit — and a repeated request must come from the cache.
func TestQueryMatchesLibraryBitwise(t *testing.T) {
	env := newTestEnv(t, Options{})
	for i, q := range env.qs {
		opt := core.QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: int64(7 + i)}
		want, err := env.fresh.Query(q, opt)
		if err != nil {
			t.Fatal(err)
		}
		req := QueryRequest{GraphText: env.qtexts[i], Epsilon: 0.4, Delta: 1, Seed: int64(7 + i)}

		var got QueryResponse
		hr := env.post(t, "/query", req, &got)
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, hr.StatusCode)
		}
		if got.Cached {
			t.Fatalf("query %d: first request reported cached", i)
		}
		wantAnswers := want.Answers
		if wantAnswers == nil {
			wantAnswers = []int{}
		}
		if !reflect.DeepEqual(got.Answers, wantAnswers) {
			t.Fatalf("query %d: answers %v != library %v", i, got.Answers, want.Answers)
		}
		if len(got.SSP) != len(want.SSP) {
			t.Fatalf("query %d: SSP size %d != %d", i, len(got.SSP), len(want.SSP))
		}
		for gi, ssp := range want.SSP {
			if got.SSP[gi] != ssp {
				t.Fatalf("query %d: SSP[%d] = %v != %v (not bitwise)", i, gi, got.SSP[gi], ssp)
			}
		}

		// Identical request again: must be served from the cache with the
		// identical payload.
		var again QueryResponse
		env.post(t, "/query", req, &again)
		if !again.Cached {
			t.Fatalf("query %d: repeat not served from cache", i)
		}
		if !reflect.DeepEqual(again.Answers, got.Answers) || !reflect.DeepEqual(again.SSP, got.SSP) {
			t.Fatalf("query %d: cached response differs", i)
		}
	}

	var st StatsResponse
	env.get(t, "/stats", &st)
	if st.CacheHits < int64(len(env.qs)) {
		t.Fatalf("stats: cache_hits = %d, want >= %d", st.CacheHits, len(env.qs))
	}
	if st.Queries != int64(2*len(env.qs)) {
		t.Fatalf("stats: queries = %d, want %d", st.Queries, 2*len(env.qs))
	}
}

// TestQueryJSONGraphAndWorkersShareCache: the structured-JSON presentation
// of the same query, and any workers setting, hit the same cache entry.
func TestQueryJSONGraphAndWorkersShareCache(t *testing.T) {
	env := newTestEnv(t, Options{})
	req := QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 3}
	var first QueryResponse
	env.post(t, "/query", req, &first)

	jreq := QueryRequest{Graph: GraphToJSON(env.qs[0]), Epsilon: 0.4, Delta: 1, Seed: 3, Workers: 4}
	var second QueryResponse
	env.post(t, "/query", jreq, &second)
	if !second.Cached {
		t.Fatal("same query via JSON graph + different workers missed the cache")
	}
	if !reflect.DeepEqual(first.Answers, second.Answers) {
		t.Fatal("cached answers differ")
	}

	// Different seed must NOT hit.
	sreq := QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 4}
	var third QueryResponse
	env.post(t, "/query", sreq, &third)
	if third.Cached {
		t.Fatal("different seed wrongly served from cache")
	}
}

// TestTopKEndpoint mirrors QueryTopK.
func TestTopKEndpoint(t *testing.T) {
	env := newTestEnv(t, Options{})
	opt := core.QueryOptions{Delta: 1, OptBounds: true, Seed: 9}
	want, err := env.fresh.QueryTopK(env.qs[0], 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	req := QueryRequest{GraphText: env.qtexts[0], Delta: 1, K: 3, Seed: 9}
	var got TopKResponse
	env.post(t, "/topk", req, &got)
	if len(got.Items) != len(want) {
		t.Fatalf("topk size %d != %d", len(got.Items), len(want))
	}
	for i, it := range want {
		if got.Items[i].Graph != it.Graph || got.Items[i].SSP != it.SSP {
			t.Fatalf("topk[%d] = %+v != %+v", i, got.Items[i], it)
		}
	}
	var again TopKResponse
	env.post(t, "/topk", req, &again)
	if !again.Cached {
		t.Fatal("repeat topk not cached")
	}
}

// TestBatchEndpoint mirrors QueryBatch, including per-member cache slots.
func TestBatchEndpoint(t *testing.T) {
	env := newTestEnv(t, Options{})
	opt := core.QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: 21}
	want, err := env.fresh.QueryBatch(env.qs, opt)
	if err != nil {
		t.Fatal(err)
	}
	req := BatchRequest{QueryTexts: env.qtexts, Epsilon: 0.4, Delta: 1, Seed: 21}
	var got BatchResponse
	env.post(t, "/batch", req, &got)
	if len(got.Results) != len(want) {
		t.Fatalf("batch size %d != %d", len(got.Results), len(want))
	}
	for i, res := range want {
		wantAnswers := res.Answers
		if wantAnswers == nil {
			wantAnswers = []int{}
		}
		if !reflect.DeepEqual(got.Results[i].Answers, wantAnswers) {
			t.Fatalf("batch[%d]: answers %v != %v", i, got.Results[i].Answers, res.Answers)
		}
		for gi, ssp := range res.SSP {
			if got.Results[i].SSP[gi] != ssp {
				t.Fatalf("batch[%d]: SSP[%d] mismatch", i, gi)
			}
		}
	}

	// A /query with the derived batch seed hits the batch member's entry.
	single := QueryRequest{GraphText: env.qtexts[1], Epsilon: 0.4, Delta: 1,
		Seed: core.BatchSeed(21, 1)}
	var sr QueryResponse
	env.post(t, "/query", single, &sr)
	if !sr.Cached {
		t.Fatal("batch member not reusable by /query with the derived seed")
	}

	// Whole batch again: all members hit.
	var again BatchResponse
	env.post(t, "/batch", req, &again)
	for i, r := range again.Results {
		if !r.Cached {
			t.Fatalf("repeat batch member %d not cached", i)
		}
	}
}

// TestBatchPartialHitDoesNotInflateCounters: a batch probe that finds some
// members cached but not all must re-run everything without counting the
// probed members as cache hits.
func TestBatchPartialHitDoesNotInflateCounters(t *testing.T) {
	env := newTestEnv(t, Options{})
	// Warm member 0's slot via /query with the derived batch seed.
	warm := QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1,
		Seed: core.BatchSeed(21, 0)}
	env.post(t, "/query", warm, nil)

	var before StatsResponse
	env.get(t, "/stats", &before)

	req := BatchRequest{QueryTexts: env.qtexts, Epsilon: 0.4, Delta: 1, Seed: 21}
	var got BatchResponse
	env.post(t, "/batch", req, &got)
	for i, r := range got.Results {
		if r.Cached {
			t.Fatalf("partial-hit batch member %d wrongly marked cached", i)
		}
	}
	var after StatsResponse
	env.get(t, "/stats", &after)
	if after.CacheHits != before.CacheHits {
		t.Fatalf("partial-hit probe inflated cache_hits: %d -> %d", before.CacheHits, after.CacheHits)
	}
}

// TestAddGraphEndpoint: /graphs extends the database incrementally, purges
// the cache, and matches library AddGraph behavior.
func TestAddGraphEndpoint(t *testing.T) {
	env := newTestEnv(t, Options{})
	// Warm the cache.
	req := QueryRequest{GraphText: env.qtexts[0], Epsilon: 0.4, Delta: 1, Seed: 3}
	var warm QueryResponse
	env.post(t, "/query", req, &warm)

	extra, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 1, MinVertices: 5, MaxVertices: 6, Organisms: 1,
		Correlated: true, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	pg := extra.Graphs[0]
	if _, _, err := env.fresh.AddGraph(pg); err != nil {
		t.Fatal(err)
	}

	var pgText bytes.Buffer
	if err := dataset.EncodePGraph(&pgText, pg, 0); err != nil {
		t.Fatal(err)
	}
	var ar MutationResponse
	hr := env.post(t, "/graphs", AddGraphRequest{GraphText: pgText.String()}, &ar)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/graphs status %d", hr.StatusCode)
	}
	if ar.Op != "add" || ar.Index != env.fresh.Len()-1 || ar.Graphs != env.fresh.Len() {
		t.Fatalf("add response %+v, want index %d", ar, env.fresh.Len()-1)
	}
	if ar.Generation != env.srv.db.Generation() {
		t.Fatalf("add response generation %d, want %d", ar.Generation, env.srv.db.Generation())
	}

	// The warmed entry is keyed by the pre-insertion generation, so the
	// repeat misses (no purge happened — the old entry is simply
	// unaddressable now) and its fresh result matches the library on the
	// grown database.
	var rerun QueryResponse
	env.post(t, "/query", req, &rerun)
	if rerun.Cached {
		t.Fatal("cache served a pre-insertion result after AddGraph")
	}
	want, err := env.fresh.Query(env.qs[0], core.QueryOptions{Epsilon: 0.4, Delta: 1, OptBounds: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantAnswers := want.Answers
	if wantAnswers == nil {
		wantAnswers = []int{}
	}
	if !reflect.DeepEqual(rerun.Answers, wantAnswers) {
		t.Fatalf("post-add answers %v != library %v", rerun.Answers, want.Answers)
	}

	// Structured-JSON ingestion works too.
	gj := GraphToJSON(pg.G)
	for _, j := range pg.JPTs {
		jj := JPTJSON{P: append([]float64(nil), j.P...)}
		for _, e := range j.Edges {
			jj.Edges = append(jj.Edges, int(e))
		}
		gj.JPTs = append(gj.JPTs, jj)
	}
	var ar2 MutationResponse
	env.post(t, "/graphs", AddGraphRequest{Graph: gj}, &ar2)
	if ar2.Graphs != ar.Graphs+1 {
		t.Fatalf("second add: graphs = %d, want %d", ar2.Graphs, ar.Graphs+1)
	}
}

// TestHealthzAndErrors covers the health probe and the main error paths.
func TestHealthzAndErrors(t *testing.T) {
	env := newTestEnv(t, Options{})
	var hz map[string]any
	env.get(t, "/healthz", &hz)
	if hz["status"] != "ok" || int(hz["graphs"].(float64)) != 10 {
		t.Fatalf("healthz = %v", hz)
	}

	// GET on a POST endpoint.
	hr, err := http.Get(env.ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d", hr.StatusCode)
	}

	// Missing graph.
	hr = env.post(t, "/query", QueryRequest{Epsilon: 0.5, Delta: 1}, nil)
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing graph: status %d", hr.StatusCode)
	}
	// Bad verifier.
	hr = env.post(t, "/query", QueryRequest{GraphText: env.qtexts[0], Verifier: "bogus", Delta: 1}, nil)
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad verifier: status %d", hr.StatusCode)
	}
	// Malformed body.
	resp, err := http.Post(env.ts.URL+"/query", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
}

// TestBadThresholdsAre400 pins the QueryOptions-validation mapping on every
// query endpoint: an out-of-range ε or a negative δ is a malformed request
// (HTTP 400), not an evaluation failure (422), and exact boundary values
// (ε = 1, δ = 0) are accepted.
func TestBadThresholdsAre400(t *testing.T) {
	env := newTestEnv(t, Options{})
	bad := []struct {
		name    string
		epsilon float64
		delta   int
	}{
		{"epsilon above 1", 1.5, 1},
		{"epsilon negative", -0.1, 1},
		{"delta negative", 0.5, -1},
	}
	for _, c := range bad {
		reqs := map[string]any{
			"/query":        QueryRequest{GraphText: env.qtexts[0], Epsilon: c.epsilon, Delta: c.delta},
			"/query/stream": QueryRequest{GraphText: env.qtexts[0], Epsilon: c.epsilon, Delta: c.delta},
			"/topk":         QueryRequest{GraphText: env.qtexts[0], Epsilon: c.epsilon, Delta: c.delta, K: 2},
			"/batch":        BatchRequest{QueryTexts: env.qtexts[:1], Epsilon: c.epsilon, Delta: c.delta},
		}
		for path, req := range reqs {
			// Decode the body as one JSON object: the rejection must be a
			// structured HTTP 400 *before* any evaluation — on the stream
			// endpoint too, where a late rejection would instead surface
			// as an in-band NDJSON error line after a 200 status.
			var body map[string]any
			hr := env.post(t, path, req, &body)
			if hr.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400", path, c.name, hr.StatusCode)
			}
			if _, ok := body["error"]; !ok {
				t.Errorf("%s %s: 400 body %v lacks error field", path, c.name, body)
			}
			if _, streamed := body["done"]; streamed {
				t.Errorf("%s %s: rejection arrived as a stream line, not an up-front 400", path, c.name)
			}
		}
	}
	// The boundary itself is valid: ε exactly 1, δ exactly 0.
	var resp QueryResponse
	hr := env.post(t, "/query", QueryRequest{GraphText: env.qtexts[0], Epsilon: 1, Delta: 0}, &resp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("epsilon=1 delta=0: status %d, want 200", hr.StatusCode)
	}
}

// TestStatsReportStructIndex: /stats exposes the inverted structural
// index's shape and tracks AddGraph growth.
func TestStatsReportStructIndex(t *testing.T) {
	env := newTestEnv(t, Options{})
	var st StatsResponse
	env.get(t, "/stats", &st)
	if st.StructShards < 1 {
		t.Fatalf("struct_shards = %d, want >= 1", st.StructShards)
	}
	if st.StructPostings < 1 {
		t.Fatalf("struct_postings = %d, want >= 1", st.StructPostings)
	}
	before := st.StructPostings

	extra, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 1, MinVertices: 5, MaxVertices: 6, Organisms: 1,
		Correlated: true, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	var pgText bytes.Buffer
	if err := dataset.EncodePGraph(&pgText, extra.Graphs[0], 0); err != nil {
		t.Fatal(err)
	}
	env.post(t, "/graphs", AddGraphRequest{GraphText: pgText.String()}, nil)
	env.get(t, "/stats", &st)
	if st.StructPostings <= before {
		t.Fatalf("struct_postings did not grow after AddGraph: %d -> %d", before, st.StructPostings)
	}
}

// TestConcurrentMixedLoad hammers the server from many goroutines —
// queries, repeats, and an AddGraph in the middle — mostly to give the
// race detector something to chew on.
func TestConcurrentMixedLoad(t *testing.T) {
	env := newTestEnv(t, Options{MaxInflight: 4, CacheSize: 8})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				req := QueryRequest{
					GraphText: env.qtexts[(w+i)%len(env.qtexts)],
					Epsilon:   0.4, Delta: 1, Seed: int64(w % 2),
				}
				var resp QueryResponse
				env.post(t, "/query", req, &resp)
			}
		}(w)
	}
	extra, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: 1, MinVertices: 5, MaxVertices: 6, Organisms: 1,
		Correlated: true, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	var pgText bytes.Buffer
	if err := dataset.EncodePGraph(&pgText, extra.Graphs[0], 0); err != nil {
		t.Fatal(err)
	}
	env.post(t, "/graphs", AddGraphRequest{GraphText: pgText.String()}, nil)
	wg.Wait()

	var st StatsResponse
	env.get(t, "/stats", &st)
	if st.Graphs != 11 {
		t.Fatalf("stats: graphs = %d, want 11", st.Graphs)
	}
	if st.Queries != 30 {
		t.Fatalf("stats: queries = %d, want 30", st.Queries)
	}
	if st.Inflight != 0 {
		t.Fatalf("stats: inflight = %d, want 0", st.Inflight)
	}
}

// TestCacheKeyDistinguishesOptions: every result-affecting knob must
// produce a distinct key.
func TestCacheKeyDistinguishesOptions(t *testing.T) {
	base := core.QueryOptions{Epsilon: 0.5, Delta: 1, OptBounds: true, Seed: 1}
	keys := map[string]string{}
	add := func(name, key string) {
		for prev, pk := range keys {
			if pk == key {
				t.Fatalf("cache key collision between %s and %s", prev, name)
			}
		}
		keys[name] = key
	}
	add("base", cacheKey("query", 1, "CODE", base, 0))
	o := base
	o.Epsilon = 0.25
	add("epsilon", cacheKey("query", 1, "CODE", o, 0))
	o = base
	o.Delta = 2
	add("delta", cacheKey("query", 1, "CODE", o, 0))
	o = base
	o.Verifier = core.VerifierExact
	add("verifier", cacheKey("query", 1, "CODE", o, 0))
	o = base
	o.OptBounds = false
	add("bounds", cacheKey("query", 1, "CODE", o, 0))
	o = base
	o.Seed = 2
	add("seed", cacheKey("query", 1, "CODE", o, 0))
	add("code", cacheKey("query", 1, "OTHER", base, 0))
	add("kind", cacheKey("topk", 1, "CODE", base, 0))
	add("k", cacheKey("topk", 1, "CODE", base, 3))
	add("generation", cacheKey("query", 2, "CODE", base, 0))

	// Workers must NOT change the key.
	o = base
	o.Concurrency = 8
	if cacheKey("query", 1, "CODE", o, 0) != keys["base"] {
		t.Fatal("workers changed the cache key")
	}
}
