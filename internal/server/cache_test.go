package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := newLRUCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatal("miss on a")
	}
	// a is now most recent; inserting c evicts b.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	hits, misses := c.Counters()
	if hits != 3 || misses != 2 {
		t.Fatalf("counters = (%d, %d), want (3, 2)", hits, misses)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", 1)
	c.Put("a", 2)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatal("update lost")
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(-1)
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
	if c.Len() != 0 {
		t.Fatal("disabled cache has entries")
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRUCache(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%64)
				c.Put(k, i)
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}
