package server

import (
	"container/list"
	"sync"
)

// lruCache is a thread-safe fixed-capacity LRU map from result-cache keys
// to cached query outcomes. The query pipeline is deterministic for a fixed
// (query, options) pair, so a hit can be served verbatim: the cached value
// is exactly what re-running the query would produce.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits   int64
	misses int64
}

type lruEntry struct {
	key   string
	value any
}

// newLRUCache returns a cache holding up to capacity entries; capacity <= 0
// disables caching (every lookup misses, every store is dropped).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key, marking it most recently used.
func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry).value, true
	}
	c.misses++
	return nil, false
}

// Peek reports whether key is cached without promoting the entry or
// touching the hit/miss counters — for speculative probes (the /batch
// all-members-cached check) that may not result in serving the entry.
func (c *lruCache) Peek(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put stores value under key, evicting the least recently used entry when
// the cache is full.
func (c *lruCache) Put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).value = value
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&lruEntry{key: key, value: value})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the current entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Counters returns (hits, misses).
func (c *lruCache) Counters() (int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
