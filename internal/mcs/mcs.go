// Package mcs computes the paper's subgraph distance (Definition 8):
// dis(q, t) = |q| − |mcs(q, t)|, where mcs is the maximum common subgraph —
// the largest edge-subgraph of q that is subgraph-isomorphic to t
// (Definition 7).
//
// The search enumerates edge-deletion levels bottom-up (delete 0 edges,
// then 1, …), exactly mirroring the relaxed-query semantics used by the
// rest of the pipeline, with canonical-code deduplication at each level and
// an early exit at the caller's distance budget. This makes Distance(q, t,
// δ) cost O(Σ_{d≤δ} C(|q|, d)) isomorphism tests — cheap for the small δ
// that similarity queries use — rather than a full unbounded MCS search.
package mcs

import (
	"probgraph/internal/graph"
	"probgraph/internal/iso"
	"probgraph/internal/relax"
)

// Distance returns dis(q, t) if it is ≤ maxDelta, and maxDelta+1 otherwise.
// mask optionally restricts t to a possible world. Isolated vertices of q do
// not contribute: Definition 8's distance counts edges only.
func Distance(q, t *graph.Graph, mask *graph.EdgeSet, maxDelta int) int {
	if maxDelta < 0 {
		maxDelta = 0
	}
	q = q.DropIsolated()
	for d := 0; d <= maxDelta; d++ {
		for _, rq := range relax.Relaxed(q, d, 0) {
			if iso.Exists(rq, t, mask) {
				return d
			}
		}
	}
	return maxDelta + 1
}

// Similar reports whether dis(q, t) ≤ delta (the paper's q ⊆sim t).
func Similar(q, t *graph.Graph, mask *graph.EdgeSet, delta int) bool {
	return Distance(q, t, mask, delta) <= delta
}

// SimilarVia reports whether any of the pre-relaxed graphs embeds in t
// under mask. Callers that already hold U = Relaxed(q, δ) avoid
// recomputing it; per Lemma 1 this is equivalent to Similar(q, t, mask, δ)
// for U built at level δ.
func SimilarVia(relaxed []*graph.Graph, t *graph.Graph, mask *graph.EdgeSet) bool {
	for _, rq := range relaxed {
		if iso.Exists(rq, t, mask) {
			return true
		}
	}
	return false
}

// MCSEdges returns |mcs(q, t)| computed within the given budget: if the
// distance exceeds maxDelta the result is |q| − maxDelta − 1 as a lower
// bound indicator. Use Distance when only the threshold matters.
func MCSEdges(q, t *graph.Graph, mask *graph.EdgeSet, maxDelta int) int {
	d := Distance(q, t, mask, maxDelta)
	return q.NumEdges() - d
}
