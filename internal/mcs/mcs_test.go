package mcs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"probgraph/internal/graph"
	"probgraph/internal/iso"
	"probgraph/internal/relax"
)

func randomGraph(rng *rand.Rand, nv, ne int) *graph.Graph {
	b := graph.NewBuilder("rnd")
	for i := 0; i < nv; i++ {
		b.AddVertex(graph.Label([]string{"a", "b"}[rng.Intn(2)]))
	}
	for tries, added := 0, 0; added < ne && tries < 30*ne; tries++ {
		u := graph.VertexID(rng.Intn(nv))
		v := graph.VertexID(rng.Intn(nv))
		if u == v {
			continue
		}
		if _, err := b.AddEdge(u, v, ""); err == nil {
			added++
		}
	}
	return b.Build()
}

// bruteDistance checks every edge subset of q (largest first).
func bruteDistance(q, t *graph.Graph, mask *graph.EdgeSet, maxDelta int) int {
	ne := q.NumEdges()
	for d := 0; d <= maxDelta && d <= ne; d++ {
		keepSize := ne - d
		// Enumerate all subsets of size keepSize.
		idx := make([]graph.EdgeID, 0, keepSize)
		var rec func(start graph.EdgeID) bool
		rec = func(start graph.EdgeID) bool {
			if len(idx) == keepSize {
				sub := q.EdgeSubgraph(idx).DropIsolated()
				return iso.Exists(sub, t, mask)
			}
			for e := start; int(e) < ne; e++ {
				idx = append(idx, e)
				if rec(e + 1) {
					return true
				}
				idx = idx[:len(idx)-1]
			}
			return false
		}
		if keepSize == 0 {
			return d
		}
		if rec(0) {
			return d
		}
	}
	return maxDelta + 1
}

func TestDistanceAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tg := randomGraph(rng, 5+rng.Intn(3), 5+rng.Intn(4))
		q := randomGraph(rng, 3+rng.Intn(2), 2+rng.Intn(3))
		maxDelta := 2
		got := Distance(q, tg, nil, maxDelta)
		want := bruteDistance(q, tg, nil, maxDelta)
		if got != want {
			t.Logf("seed %d: got %d want %d", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceZeroForSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tg := randomGraph(rng, 6, 8)
	if tg.NumEdges() < 3 {
		t.Skip("unlucky generation")
	}
	sub := tg.EdgeSubgraph([]graph.EdgeID{0, 1, 2}).DropIsolated()
	if d := Distance(sub, tg, nil, 3); d != 0 {
		t.Fatalf("subgraph distance = %d, want 0", d)
	}
	if !Similar(sub, tg, nil, 0) {
		t.Fatal("subgraph must be similar at δ=0")
	}
}

func TestDistanceExceedsBudget(t *testing.T) {
	// Query of 3 labeled edges vs a target sharing nothing.
	qb := graph.NewBuilder("q")
	v0 := qb.AddVertex("x")
	v1 := qb.AddVertex("x")
	v2 := qb.AddVertex("x")
	v3 := qb.AddVertex("x")
	qb.MustAddEdge(v0, v1, "")
	qb.MustAddEdge(v1, v2, "")
	qb.MustAddEdge(v2, v3, "")
	q := qb.Build()
	tb := graph.NewBuilder("t")
	u0 := tb.AddVertex("y")
	u1 := tb.AddVertex("y")
	tb.MustAddEdge(u0, u1, "")
	tg := tb.Build()
	if d := Distance(q, tg, nil, 2); d != 3 {
		t.Fatalf("distance = %d, want maxDelta+1 = 3", d)
	}
	if Similar(q, tg, nil, 2) {
		t.Fatal("must not be similar within 2")
	}
}

func TestDistanceWithMask(t *testing.T) {
	// Path a-b-c; mask kills the b-c edge. Query = the full path.
	tb := graph.NewBuilder("t")
	v0 := tb.AddVertex("a")
	v1 := tb.AddVertex("b")
	v2 := tb.AddVertex("c")
	tb.MustAddEdge(v0, v1, "")
	tb.MustAddEdge(v1, v2, "")
	tg := tb.Build()
	mask := graph.FullEdgeSet(2)
	mask.Remove(1)
	if d := Distance(tg, tg, &mask, 2); d != 1 {
		t.Fatalf("masked distance = %d, want 1", d)
	}
}

func TestSimilarViaMatchesSimilar(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tg := randomGraph(rng, 5, 6)
		q := randomGraph(rng, 3, 3)
		if q.NumEdges() == 0 {
			return true
		}
		delta := 1
		u := relax.Relaxed(q, delta, 0)
		return SimilarVia(u, tg, nil) == (Distance(q, tg, nil, delta) == delta || Distance(q, tg, nil, delta) < delta && similarAtExactly(q, tg, delta))
	}
	// SimilarVia tests embedding of exactly-δ-relaxed graphs; by Lemma 1
	// that equals dis ≤ δ.
	g := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tg := randomGraph(rng, 5, 6)
		q := randomGraph(rng, 3, 3)
		if q.NumEdges() == 0 {
			return true
		}
		delta := 1
		u := relax.Relaxed(q, delta, 0)
		return SimilarVia(u, tg, nil) == Similar(q, tg, nil, delta)
	}
	_ = f
	if err := quick.Check(g, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func similarAtExactly(q, tg *graph.Graph, delta int) bool {
	return Distance(q, tg, nil, delta) <= delta
}

func TestMCSEdges(t *testing.T) {
	// Identical graphs: MCS = all edges.
	rng := rand.New(rand.NewSource(12))
	g := randomGraph(rng, 5, 6)
	if got := MCSEdges(g, g, nil, 2); got != g.NumEdges() {
		t.Fatalf("MCSEdges(g,g) = %d, want %d", got, g.NumEdges())
	}
}
