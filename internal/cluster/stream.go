package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"probgraph/internal/obs"
	"probgraph/internal/server"
)

// streamWriteTimeout mirrors the single-node per-write deadline: each
// forwarded line gets this long to reach the client before the
// connection is reclaimed as dead.
const streamWriteTimeout = 30 * time.Second

// handleQueryStream is POST /query/stream, distributed: one NDJSON
// stream per shard, match lines forwarded to the client verbatim as they
// arrive (they already carry global ids), then one merged summary line.
// Match arrival order interleaves across shards — exactly as it already
// interleaves across workers on a single node — while the summary
// (sorted answers, SSP map, count) is bitwise the single-node summary.
//
// A shard failing mid-stream aborts every other shard stream and ends
// the output with an in-band StreamErrorJSON naming the shard — the
// stream never just stops as if complete. ShardTimeout deliberately does
// not bound shard streams (a legitimate stream outlives any per-attempt
// budget); the client's timeout_ms travels in the body and bounds each
// shard's evaluation, and client disconnect cancels everything through
// the request context. Streams are never retried: forwarded lines
// cannot be unsent.
func (c *Coordinator) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.K != 0 {
		httpError(w, http.StatusBadRequest, "k is not supported on /query/stream")
		return
	}
	if _, err := req.Check(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := json.Marshal(&req)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	start := time.Now()
	sctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	ab := &streamAbort{cancel: cancel}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	sink := &streamSink{w: w, rc: http.NewResponseController(w), ssp: make(map[int]float64)}

	var wg sync.WaitGroup
	for _, sh := range c.shards {
		wg.Add(1)
		go func(sh Shard) {
			defer wg.Done()
			c.streamShard(sctx, sh, body, sink, ab)
		}(sh)
	}
	wg.Wait()

	if ce := ab.failure(); ce != nil {
		sink.emitJSON(server.StreamErrorJSON{
			Error: ce.msg, Timeout: ce.timeout, Cancelled: ce.cancelled,
		})
		return
	}
	sink.summary(start)
}

// streamAbort coordinates mid-stream failure: the first shard to fail
// records its structured error and cancels every sibling stream (whose
// own cancellation-induced endings are then not recorded over it).
type streamAbort struct {
	mu     sync.Mutex
	ce     *coordError
	cancel context.CancelFunc
}

func (a *streamAbort) abort(ce *coordError) {
	a.mu.Lock()
	if a.ce == nil {
		a.ce = ce
	}
	a.mu.Unlock()
	a.cancel()
}

func (a *streamAbort) failure() *coordError {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ce
}

// streamSink is the mutex-guarded client side of the fan-in: shard
// goroutines forward lines through it one at a time, and it accumulates
// the forwarded matches for the merged summary.
type streamSink struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	rc      *http.ResponseController
	failed  bool // client write failed; drop everything further
	answers []int
	ssp     map[int]float64
}

// forward writes one raw match line (newline included) and records it
// for the summary. false means the client is gone.
func (s *streamSink) forward(line []byte, gid int, ssp float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return false
	}
	s.rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
	if _, err := s.w.Write(line); err != nil {
		s.failed = true
		return false
	}
	s.rc.Flush()
	s.answers = append(s.answers, gid)
	s.ssp[gid] = ssp
	return true
}

func (s *streamSink) emitJSON(v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return
	}
	s.rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
	if json.NewEncoder(s.w).Encode(v) != nil {
		s.failed = true
		return
	}
	s.rc.Flush()
}

// summary emits the merged terminal line: the union of every shard's
// forwarded matches, sorted — bitwise the single-node summary, because
// the shards' match sets partition the single node's.
func (s *streamSink) summary(start time.Time) {
	s.mu.Lock()
	answers := s.answers
	if answers == nil {
		answers = []int{}
	}
	sort.Ints(answers)
	s.mu.Unlock()
	s.emitJSON(server.StreamSummaryJSON{
		Done:    true,
		Answers: answers,
		SSP:     s.ssp,
		Count:   len(answers),
		TimeMS:  float64(time.Since(start).Microseconds()) / 1000,
	})
}

// streamLine is the probe shape every shard NDJSON line decodes into:
// error lines carry Error and the terminal summary carries Done. It must
// not declare graph/ssp — a match line's ssp is a number but the summary
// line's is a map, so those fields decode per-shape in a second step.
type streamLine struct {
	Done      bool   `json:"done"`
	Error     string `json:"error"`
	Timeout   bool   `json:"timeout"`
	Cancelled bool   `json:"cancelled"`
}

// streamShard runs one shard's /query/stream, forwarding its match lines
// into the sink until the shard's summary arrives. Any failure — unreachable,
// non-200, in-band error line, or a stream that ends without a summary —
// aborts the whole fan-in with a structured error naming the shard.
func (c *Coordinator) streamShard(ctx context.Context, sh Shard, body []byte, sink *streamSink, ab *streamAbort) {
	sp := obs.SpanFrom(ctx).Child("shard:" + sh.Name + "/query/stream")
	start := time.Now()
	outcome, errMsg := "ok", ""
	defer func() {
		c.mx.shardLatency[sh.Name].Observe(time.Since(start).Seconds())
		c.mx.shardRequests[sh.Name][outcome].Inc()
		c.health.record(sh.Name, outcome != "error", errMsg)
		sp.End()
	}()

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, sh.URL+"/query/stream", bytes.NewReader(body))
	if err != nil {
		outcome, errMsg = "error", err.Error()
		ab.abort(&coordError{
			status: http.StatusServiceUnavailable, shard: sh.Name,
			msg: "shard " + sh.Name + " (" + sh.URL + ") unreachable: " + err.Error(),
		})
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		outcome, errMsg = "error", err.Error()
		if ctx.Err() == nil {
			ab.abort(&coordError{
				status: http.StatusServiceUnavailable, shard: sh.Name,
				msg: "shard " + sh.Name + " (" + sh.URL + ") unreachable: " + err.Error(),
			})
		}
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		outcome = "http_error"
		var eb shardErrorBody
		msg := "shard " + sh.Name + " answered " + resp.Status
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = "shard " + sh.Name + ": " + eb.Error
		}
		ab.abort(&coordError{
			status: resp.StatusCode, shard: sh.Name, msg: msg,
			timeout: eb.Timeout, cancelled: eb.Cancelled,
		})
		return
	}

	br := bufio.NewReader(resp.Body)
	for {
		line, rerr := br.ReadBytes('\n')
		if len(bytes.TrimSpace(line)) > 0 {
			var probe streamLine
			if json.Unmarshal(line, &probe) != nil {
				outcome, errMsg = "error", "undecodable stream line"
				ab.abort(&coordError{
					status: http.StatusBadGateway, shard: sh.Name,
					msg: "shard " + sh.Name + ": undecodable stream line",
				})
				return
			}
			switch {
			case probe.Error != "":
				// The shard's own in-band failure: propagate its structured
				// flags; status mirrors evalError's mapping.
				outcome = "http_error"
				status := http.StatusUnprocessableEntity
				if probe.Timeout {
					status = http.StatusGatewayTimeout
				} else if probe.Cancelled {
					status = http.StatusServiceUnavailable
				}
				ab.abort(&coordError{
					status: status, shard: sh.Name,
					msg:     "shard " + sh.Name + ": " + probe.Error,
					timeout: probe.Timeout, cancelled: probe.Cancelled,
				})
				return
			case probe.Done:
				return // shard complete; its summary is re-derived by the sink
			default:
				var m server.StreamMatchJSON
				if json.Unmarshal(line, &m) != nil {
					outcome, errMsg = "error", "undecodable stream line"
					ab.abort(&coordError{
						status: http.StatusBadGateway, shard: sh.Name,
						msg: "shard " + sh.Name + ": undecodable stream line",
					})
					return
				}
				if !sink.forward(line, m.Graph, m.SSP) {
					return // client gone; request context cancels the fleet
				}
			}
		}
		if rerr != nil {
			// EOF (or a mid-body transport error) before the summary line:
			// the shard died mid-stream. Under a coordinator-issued abort the
			// cancellation is ours, not the shard's failure — stay silent.
			if ctx.Err() == nil {
				outcome, errMsg = "error", "stream ended before summary"
				ab.abort(&coordError{
					status: http.StatusServiceUnavailable, shard: sh.Name,
					msg: "shard " + sh.Name + ": stream ended before summary: " + rerr.Error(),
				})
			} else {
				outcome, errMsg = "error", ctx.Err().Error()
			}
			return
		}
	}
}
