package cluster_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"probgraph/internal/cluster"
	"probgraph/internal/core"
	"probgraph/internal/dataset"
	"probgraph/internal/graph"
	"probgraph/internal/server"
)

func testDatabase(t *testing.T, seed int64, n int) *core.Database {
	t.Helper()
	raw, err := dataset.GeneratePPI(dataset.PPIOptions{
		NumGraphs: n, MinVertices: 5, MaxVertices: 7, EdgeFactor: 1.3,
		Labels: 3, Organisms: 2, Correlated: true, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultBuildOptions()
	opt.Feature.Beta = 0.2
	opt.Feature.Alpha = 0.05
	opt.Feature.Gamma = 0.05
	opt.Feature.MaxL = 3
	opt.PMI.Seed = seed
	db, err := core.NewDatabase(raw.Graphs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// fleet is a coordinator in front of range-partition shard servers, plus
// the equivalent single-node server for comparison.
type fleet struct {
	single *httptest.Server
	shards []*httptest.Server
	coord  *httptest.Server
}

func (f *fleet) Close() {
	f.single.Close()
	for _, s := range f.shards {
		s.Close()
	}
	f.coord.Close()
}

func newFleet(t *testing.T, db *core.Database, shards int) *fleet {
	t.Helper()
	f := &fleet{
		single: httptest.NewServer(server.New(db, server.Options{}).Handler()),
	}
	ranges, err := core.PartitionRanges(db.Len(), shards)
	if err != nil {
		t.Fatal(err)
	}
	var members []cluster.Shard
	for i, r := range ranges {
		part, err := db.Partition(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(server.New(part, server.Options{}).Handler())
		f.shards = append(f.shards, hs)
		members = append(members, cluster.Shard{Name: fmt.Sprintf("s%d", i), URL: hs.URL})
	}
	coord, err := cluster.New(cluster.Options{Shards: members})
	if err != nil {
		t.Fatal(err)
	}
	f.coord = httptest.NewServer(coord.Handler())
	return f
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func mustDecode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	return v
}

func extractQueries(db *core.Database, seed int64, n int) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]*graph.Graph, n)
	for i := range qs {
		qs[i] = dataset.ExtractQuery(db.Graphs()[i%db.Len()].G, 4, rng)
	}
	return qs
}

// TestClusterBitwiseIdentity is the acceptance property: every query
// endpoint answers bitwise-identically through the coordinator and the
// single node — answers, names, SSP values, top-k rankings with the
// early-termination merge, batch members, and stream summaries — across
// seeds, worker counts, and 2- and 3-shard fleets.
func TestClusterBitwiseIdentity(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		db := testDatabase(t, seed, 12)
		qs := extractQueries(db, seed, 3)
		for _, shards := range []int{2, 3} {
			f := newFleet(t, db, shards)
			for _, workers := range []int{1, 4} {
				for qi, q := range qs {
					req := server.QueryRequest{
						Graph:   server.GraphToJSON(q),
						Epsilon: 0.3, Delta: 1, Seed: seed + int64(qi), Workers: workers,
					}
					checkQueryParity(t, f, req, seed, shards, workers, qi)
					checkTopKParity(t, f, req, seed, shards, workers, qi)
					checkStreamParity(t, f, req, seed, shards, workers, qi)
				}
				checkBatchParity(t, f, qs, seed, workers)
			}
			f.Close()
		}
	}
}

func checkQueryParity(t *testing.T, f *fleet, req server.QueryRequest, seed int64, shards, workers, qi int) {
	t.Helper()
	st1, b1 := postJSON(t, f.single.URL+"/query", &req)
	st2, b2 := postJSON(t, f.coord.URL+"/query", &req)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("seed=%d shards=%d workers=%d q=%d: /query status %d vs %d (%s / %s)",
			seed, shards, workers, qi, st1, st2, b1, b2)
	}
	r1 := mustDecode[server.QueryResponse](t, b1)
	r2 := mustDecode[server.QueryResponse](t, b2)
	if len(r1.Answers) != len(r2.Answers) || r1.Generation != r2.Generation {
		t.Fatalf("seed=%d shards=%d workers=%d q=%d: /query %v gen %d vs %v gen %d",
			seed, shards, workers, qi, r1.Answers, r1.Generation, r2.Answers, r2.Generation)
	}
	for i := range r1.Answers {
		if r1.Answers[i] != r2.Answers[i] || r1.Names[i] != r2.Names[i] {
			t.Fatalf("seed=%d shards=%d workers=%d q=%d: /query answers %v/%v vs %v/%v",
				seed, shards, workers, qi, r1.Answers, r1.Names, r2.Answers, r2.Names)
		}
	}
	if len(r1.SSP) != len(r2.SSP) {
		t.Fatalf("seed=%d shards=%d workers=%d q=%d: SSP sizes %d vs %d",
			seed, shards, workers, qi, len(r1.SSP), len(r2.SSP))
	}
	for gid, p := range r1.SSP {
		if r2.SSP[gid] != p {
			t.Fatalf("seed=%d shards=%d workers=%d q=%d: SSP[%d] %v vs %v",
				seed, shards, workers, qi, gid, p, r2.SSP[gid])
		}
	}
	// The merged pipeline counters partition exactly (RelaxedQueries is
	// common to every shard).
	if r1.Stats.StructConfirmed != r2.Stats.StructConfirmed ||
		r1.Stats.PrunedByUpper != r2.Stats.PrunedByUpper ||
		r1.Stats.AcceptedByLower != r2.Stats.AcceptedByLower ||
		r1.Stats.VerifyCandidates != r2.Stats.VerifyCandidates ||
		r1.Stats.RelaxedQueries != r2.Stats.RelaxedQueries {
		t.Fatalf("seed=%d shards=%d workers=%d q=%d: stats diverge: %+v vs %+v",
			seed, shards, workers, qi, r1.Stats, r2.Stats)
	}
}

func checkTopKParity(t *testing.T, f *fleet, req server.QueryRequest, seed int64, shards, workers, qi int) {
	t.Helper()
	req.K = 4
	st1, b1 := postJSON(t, f.single.URL+"/topk", &req)
	st2, b2 := postJSON(t, f.coord.URL+"/topk", &req)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("seed=%d shards=%d workers=%d q=%d: /topk status %d vs %d (%s / %s)",
			seed, shards, workers, qi, st1, st2, b1, b2)
	}
	r1 := mustDecode[server.TopKResponse](t, b1)
	r2 := mustDecode[server.TopKResponse](t, b2)
	if len(r1.Items) != len(r2.Items) {
		t.Fatalf("seed=%d shards=%d workers=%d q=%d: /topk %v vs %v",
			seed, shards, workers, qi, r1.Items, r2.Items)
	}
	for i := range r1.Items {
		if r1.Items[i] != r2.Items[i] {
			t.Fatalf("seed=%d shards=%d workers=%d q=%d: /topk item %d: %+v vs %+v",
				seed, shards, workers, qi, i, r1.Items[i], r2.Items[i])
		}
	}
}

func checkBatchParity(t *testing.T, f *fleet, qs []*graph.Graph, seed int64, workers int) {
	t.Helper()
	breq := server.BatchRequest{Epsilon: 0.3, Delta: 1, Seed: seed, Workers: workers}
	for _, q := range qs {
		breq.Queries = append(breq.Queries, *server.GraphToJSON(q))
	}
	st1, b1 := postJSON(t, f.single.URL+"/batch", &breq)
	st2, b2 := postJSON(t, f.coord.URL+"/batch", &breq)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("seed=%d workers=%d: /batch status %d vs %d (%s / %s)", seed, workers, st1, st2, b1, b2)
	}
	r1 := mustDecode[server.BatchResponse](t, b1)
	r2 := mustDecode[server.BatchResponse](t, b2)
	if len(r1.Results) != len(r2.Results) {
		t.Fatalf("seed=%d workers=%d: /batch %d vs %d members", seed, workers, len(r1.Results), len(r2.Results))
	}
	for m := range r1.Results {
		a1, a2 := r1.Results[m].Answers, r2.Results[m].Answers
		if len(a1) != len(a2) {
			t.Fatalf("seed=%d workers=%d member=%d: answers %v vs %v", seed, workers, m, a1, a2)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("seed=%d workers=%d member=%d: answers %v vs %v", seed, workers, m, a1, a2)
			}
		}
		for gid, p := range r1.Results[m].SSP {
			if r2.Results[m].SSP[gid] != p {
				t.Fatalf("seed=%d workers=%d member=%d: SSP[%d] %v vs %v",
					seed, workers, m, gid, p, r2.Results[m].SSP[gid])
			}
		}
	}
}

// streamCapture is one /query/stream transcript: matches as (graph, ssp)
// pairs sorted by graph (arrival order is scheduling-dependent on both
// sides), plus the terminal summary.
type streamCapture struct {
	matches []server.StreamMatchJSON
	summary server.StreamSummaryJSON
}

func captureStream(t *testing.T, url string, req *server.QueryRequest) streamCapture {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query/stream", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	var cap streamCapture
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var probe struct {
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad stream line %s: %v", line, err)
		}
		switch {
		case probe.Error != "":
			t.Fatalf("stream error: %s", line)
		case probe.Done:
			cap.summary = mustDecode[server.StreamSummaryJSON](t, line)
		default:
			cap.matches = append(cap.matches, mustDecode[server.StreamMatchJSON](t, line))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !cap.summary.Done {
		t.Fatal("stream ended without summary")
	}
	sort.Slice(cap.matches, func(i, j int) bool { return cap.matches[i].Graph < cap.matches[j].Graph })
	return cap
}

func checkStreamParity(t *testing.T, f *fleet, req server.QueryRequest, seed int64, shards, workers, qi int) {
	t.Helper()
	c1 := captureStream(t, f.single.URL, &req)
	c2 := captureStream(t, f.coord.URL, &req)
	if len(c1.matches) != len(c2.matches) {
		t.Fatalf("seed=%d shards=%d workers=%d q=%d: stream matches %v vs %v",
			seed, shards, workers, qi, c1.matches, c2.matches)
	}
	for i := range c1.matches {
		if c1.matches[i] != c2.matches[i] {
			t.Fatalf("seed=%d shards=%d workers=%d q=%d: stream match %d: %+v vs %+v",
				seed, shards, workers, qi, i, c1.matches[i], c2.matches[i])
		}
	}
	if len(c1.summary.Answers) != len(c2.summary.Answers) || c1.summary.Count != c2.summary.Count {
		t.Fatalf("seed=%d shards=%d workers=%d q=%d: stream summaries %+v vs %+v",
			seed, shards, workers, qi, c1.summary, c2.summary)
	}
	for i := range c1.summary.Answers {
		if c1.summary.Answers[i] != c2.summary.Answers[i] {
			t.Fatalf("seed=%d shards=%d workers=%d q=%d: stream summaries %+v vs %+v",
				seed, shards, workers, qi, c1.summary, c2.summary)
		}
	}
	for gid, p := range c1.summary.SSP {
		if c2.summary.SSP[gid] != p {
			t.Fatalf("seed=%d shards=%d workers=%d q=%d: stream SSP[%d] %v vs %v",
				seed, shards, workers, qi, gid, p, c2.summary.SSP[gid])
		}
	}
}

// TestClusterShardDown checks the all-or-nothing failure contract: with
// one shard stopped, every endpoint answers a structured 503 naming the
// shard — never a silently partial result.
func TestClusterShardDown(t *testing.T) {
	db := testDatabase(t, 5, 9)
	f := newFleet(t, db, 3)
	defer f.Close()
	f.shards[1].Close() // s1 goes dark

	q := extractQueries(db, 5, 1)[0]
	req := server.QueryRequest{Graph: server.GraphToJSON(q), Epsilon: 0.3, Delta: 1, Seed: 5}

	type errBody struct {
		Error string `json:"error"`
		Shard string `json:"shard"`
	}
	for _, path := range []string{"/query", "/batch", "/topk"} {
		var body any = &req
		if path == "/batch" {
			body = &server.BatchRequest{
				Queries: []server.GraphJSON{*server.GraphToJSON(q)},
				Epsilon: 0.3, Delta: 1, Seed: 5,
			}
		}
		if path == "/topk" {
			r2 := req
			r2.K = 3
			body = &r2
		}
		st, data := postJSON(t, f.coord.URL+path, body)
		if st != http.StatusServiceUnavailable {
			t.Fatalf("%s with a dead shard: status %d (%s), want 503", path, st, data)
		}
		eb := mustDecode[errBody](t, data)
		if eb.Shard != "s1" || eb.Error == "" {
			t.Fatalf("%s error does not name the dead shard: %s", path, data)
		}
	}

	// The stream protocol folds the failure into an in-band error line.
	data, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.coord.URL+"/query/stream", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sawError bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var probe struct {
			Done  bool   `json:"done"`
			Error string `json:"error"`
		}
		if json.Unmarshal(sc.Bytes(), &probe) != nil {
			continue
		}
		if probe.Done {
			t.Fatalf("stream completed despite a dead shard: %s", sc.Bytes())
		}
		if probe.Error != "" {
			sawError = true
			if !bytes.Contains(sc.Bytes(), []byte("s1")) {
				t.Fatalf("stream error does not name the dead shard: %s", sc.Bytes())
			}
		}
	}
	if !sawError {
		t.Fatal("stream with a dead shard produced no error line")
	}
}

// TestClusterReadyz checks coordinator readiness: 200 with the whole
// fleet up, 503 naming the unreachable shard otherwise.
func TestClusterReadyz(t *testing.T) {
	db := testDatabase(t, 3, 6)
	f := newFleet(t, db, 2)
	defer f.Close()

	resp, err := http.Get(f.coord.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz with fleet up: %d (%s)", resp.StatusCode, body)
	}

	f.shards[0].Close()
	resp, err = http.Get(f.coord.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with a dead shard: %d (%s)", resp.StatusCode, body)
	}
	var rb struct {
		Ready  bool     `json:"ready"`
		Failed []string `json:"failed"`
	}
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatal(err)
	}
	if rb.Ready || len(rb.Failed) != 1 || rb.Failed[0] != "s0" {
		t.Fatalf("/readyz body does not name the dead shard: %s", body)
	}
}

// TestClusterGenerationMismatch checks that a half-rolled-out fleet
// (shards partitioned from different source generations) is refused.
func TestClusterGenerationMismatch(t *testing.T) {
	db := testDatabase(t, 7, 8)
	ranges, err := core.PartitionRanges(db.Len(), 2)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := db.Partition(ranges[0][0], ranges[0][1])
	if err != nil {
		t.Fatal(err)
	}
	// Bump the source generation, then partition the second shard from the
	// newer state.
	if _, err := db.RemoveGraph(ranges[1][0]); err != nil {
		t.Fatal(err)
	}
	p1, err := db.Partition(ranges[1][0], ranges[1][1])
	if err != nil {
		t.Fatal(err)
	}
	s0 := httptest.NewServer(server.New(p0, server.Options{}).Handler())
	defer s0.Close()
	s1 := httptest.NewServer(server.New(p1, server.Options{}).Handler())
	defer s1.Close()
	coord, err := cluster.New(cluster.Options{Shards: []cluster.Shard{
		{Name: "s0", URL: s0.URL}, {Name: "s1", URL: s1.URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ch := httptest.NewServer(coord.Handler())
	defer ch.Close()

	q := extractQueries(db, 7, 1)[0]
	req := server.QueryRequest{Graph: server.GraphToJSON(q), Epsilon: 0.3, Delta: 1, Seed: 7}
	st, data := postJSON(t, ch.URL+"/query", &req)
	if st != http.StatusServiceUnavailable || !bytes.Contains(data, []byte("generation mismatch")) {
		t.Fatalf("mixed-generation fleet: %d (%s), want 503 generation mismatch", st, data)
	}
}

// TestClusterCancellationPropagates checks that a client abandoning a
// coordinator request cancels the shard sub-requests (the shard sees its
// own request context end).
func TestClusterCancellationPropagates(t *testing.T) {
	shardSaw := make(chan struct{})
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body like a real shard's decode path does — net/http
		// only watches for client disconnect once the body is consumed.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		close(shardSaw)
	}))
	defer stuck.Close()
	coord, err := cluster.New(cluster.Options{
		Shards:  []cluster.Shard{{Name: "s0", URL: stuck.URL}},
		Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := httptest.NewServer(coord.Handler())
	defer ch.Close()

	db := testDatabase(t, 3, 4)
	q := extractQueries(db, 3, 1)[0]
	body, err := json.Marshal(&server.QueryRequest{
		Graph: server.GraphToJSON(q), Epsilon: 0.3, Delta: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ch.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() { _, err := http.DefaultClient.Do(req); errc <- err }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request reported no error")
	}
	select {
	case <-shardSaw:
	case <-time.After(5 * time.Second):
		t.Fatal("shard sub-request context never cancelled")
	}
}

// TestClusterTimeoutPropagates checks that a shard's structured 504
// (timeout_ms expiry) surfaces as the coordinator's 504 with the timeout
// flag, naming the shard.
func TestClusterTimeoutPropagates(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGatewayTimeout)
		json.NewEncoder(w).Encode(map[string]any{"error": "query timed out", "timeout": true})
	}))
	defer slow.Close()
	coord, err := cluster.New(cluster.Options{
		Shards: []cluster.Shard{{Name: "s0", URL: slow.URL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := httptest.NewServer(coord.Handler())
	defer ch.Close()

	db := testDatabase(t, 3, 4)
	q := extractQueries(db, 3, 1)[0]
	req := server.QueryRequest{Graph: server.GraphToJSON(q), Epsilon: 0.3, Delta: 1, TimeoutMS: 1}
	st, data := postJSON(t, ch.URL+"/query", &req)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("shard 504: coordinator answered %d (%s)", st, data)
	}
	var eb struct {
		Shard   string `json:"shard"`
		Timeout bool   `json:"timeout"`
	}
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Shard != "s0" || !eb.Timeout {
		t.Fatalf("504 body lacks shard/timeout: %s", data)
	}
}
