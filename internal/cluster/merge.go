package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"probgraph/internal/obs"
	"probgraph/internal/server"
)

// handleQuery is POST /query: validate once, fan the identical body out
// to every shard, merge. Shards hold disjoint global-id ranges and answer
// in global ids, so the merge is a disjoint sorted union — bitwise the
// single-node answer set, with bitwise the single-node SSP values.
func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req server.QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if _, err := req.Check(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	body, err := json.Marshal(&req)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resps, ce := c.queryShards(r.Context(), "/query", body)
	if ce != nil {
		ce.write(w)
		return
	}
	merged := mergeQuery(resps)
	merged.TimeMS = float64(time.Since(start).Microseconds()) / 1000
	if traceWanted(r, req.Trace) {
		merged.Trace = traceTree(r)
	}
	writeJSON(w, merged)
}

// handleBatch is POST /batch: one fan-out carrying the whole batch (each
// shard derives the same per-member seeds from the base seed), merged
// member-wise.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	qs, err := req.Check()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	start := time.Now()
	body, err := json.Marshal(&req)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	results := c.fanout(r.Context(), "/batch", body)
	if ce := shardFailure(results); ce != nil {
		ce.write(w)
		return
	}
	batches := make([]*server.BatchResponse, len(results))
	gens := make([]uint64, len(results))
	for i, res := range results {
		var br server.BatchResponse
		if err := json.Unmarshal(res.body, &br); err != nil || len(br.Results) != len(qs) {
			badShardResponse(w, res.shard)
			return
		}
		batches[i] = &br
		gens[i] = br.Results[0].Generation
	}
	if ce := generationMismatch(results, gens); ce != nil {
		ce.write(w)
		return
	}
	out := server.BatchResponse{TimeMS: float64(time.Since(start).Microseconds()) / 1000}
	member := make([]*server.QueryResponse, len(results))
	for qi := range qs {
		for si := range batches {
			member[si] = batches[si].Results[qi]
		}
		out.Results = append(out.Results, mergeQuery(member))
	}
	if traceWanted(r, req.Trace) {
		out.Trace = traceTree(r)
	}
	writeJSON(w, out)
}

// queryShards fans body out to path on every shard, decodes the
// QueryResponse answers, and enforces the all-or-nothing and same-
// generation rules.
func (c *Coordinator) queryShards(ctx context.Context, path string, body []byte) ([]*server.QueryResponse, *coordError) {
	results := c.fanout(ctx, path, body)
	if ce := shardFailure(results); ce != nil {
		return nil, ce
	}
	resps := make([]*server.QueryResponse, len(results))
	gens := make([]uint64, len(results))
	for i, res := range results {
		var qr server.QueryResponse
		if err := json.Unmarshal(res.body, &qr); err != nil {
			return nil, &coordError{
				status: http.StatusBadGateway, shard: res.shard.Name,
				msg: "shard " + res.shard.Name + ": undecodable response",
			}
		}
		resps[i] = &qr
		gens[i] = qr.Generation
	}
	if ce := generationMismatch(results, gens); ce != nil {
		return nil, ce
	}
	return resps, nil
}

// mergeQuery folds per-shard /query responses into the single-node
// response. Answer sets are disjoint (each global id lives on exactly one
// shard) and per-shard sorted, so the union sorted by global id is
// exactly the single-node answer slice; SSP maps union without conflicts.
// Pipeline counters sum — except RelaxedQueries, which every shard
// computes identically from the query alone (a sum would multiply it by
// the fleet size). Cached is the fleet AND: the merged answer came from
// caches only if every part did.
func mergeQuery(resps []*server.QueryResponse) *server.QueryResponse {
	type pair struct {
		gid  int
		name string
	}
	var pairs []pair
	out := &server.QueryResponse{
		Answers:    []int{},
		Names:      []string{},
		SSP:        map[int]float64{},
		Generation: resps[0].Generation,
		Cached:     true,
	}
	for _, qr := range resps {
		for i, gid := range qr.Answers {
			pairs = append(pairs, pair{gid, qr.Names[i]})
		}
		for gid, p := range qr.SSP {
			out.SSP[gid] = p
		}
		out.Cached = out.Cached && qr.Cached
		st, add := &out.Stats, qr.Stats
		st.StructFilterCandidates += add.StructFilterCandidates
		st.StructConfirmed += add.StructConfirmed
		st.PrunedByUpper += add.PrunedByUpper
		st.AcceptedByLower += add.AcceptedByLower
		st.VerifyCandidates += add.VerifyCandidates
		if add.RelaxedQueries > st.RelaxedQueries {
			st.RelaxedQueries = add.RelaxedQueries
		}
		st.TimeStructMS += add.TimeStructMS
		st.TimeProbMS += add.TimeProbMS
		st.TimeVerifyMS += add.TimeVerifyMS
		st.TimeTotalMS += add.TimeTotalMS
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].gid < pairs[j].gid })
	for _, p := range pairs {
		out.Answers = append(out.Answers, p.gid)
		out.Names = append(out.Names, p.name)
	}
	return out
}

func badShardResponse(w http.ResponseWriter, sh Shard) {
	(&coordError{
		status: http.StatusBadGateway, shard: sh.Name,
		msg: "shard " + sh.Name + ": undecodable response",
	}).write(w)
}

// traceWanted mirrors the single-node knob: the body's trace field or
// trace=1 in the URL.
func traceWanted(r *http.Request, bodyFlag bool) bool {
	return bodyFlag || r.URL.Query().Get("trace") == "1"
}

// traceTree snapshots the request's coordinator-side span tree (the
// fan-out children live under the endpoint root).
func traceTree(r *http.Request) *obs.SpanNode {
	if tr := obs.TraceFrom(r.Context()); tr != nil {
		return tr.Tree()
	}
	return nil
}
