package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// ShardHealthJSON is one shard's health record as /stats reports it.
// Healthy flips false after a transport failure and back true on the next
// successful exchange; an HTTP error status counts as success (the shard
// answered). The record is fed by real fan-out traffic plus /readyz
// probes — there is no background prober.
type ShardHealthJSON struct {
	Name                string  `json:"name"`
	URL                 string  `json:"url"`
	Healthy             bool    `json:"healthy"`
	LastError           string  `json:"last_error,omitempty"`
	ConsecutiveFailures int     `json:"consecutive_failures"`
	Requests            int64   `json:"requests"`
	Failures            int64   `json:"failures"`
	LastChangeMSAgo     float64 `json:"last_change_ms_ago,omitempty"`
}

// healthTracker keeps per-shard health state, updated from fan-out
// outcomes. One mutex guards the whole map: updates are a few field
// writes on the request path's tail, far off any hot loop.
type healthTracker struct {
	mu sync.Mutex
	m  map[string]*shardHealth
}

type shardHealth struct {
	shard      Shard
	healthy    bool
	lastError  string
	consec     int
	requests   int64
	failures   int64
	lastChange time.Time
}

func newHealthTracker(shards []Shard) *healthTracker {
	h := &healthTracker{m: make(map[string]*shardHealth, len(shards))}
	for _, sh := range shards {
		// Shards start healthy: the fleet is presumed serviceable until a
		// request proves otherwise (readiness is /readyz's job).
		h.m[sh.Name] = &shardHealth{shard: sh, healthy: true}
	}
	return h
}

func (h *healthTracker) record(name string, ok bool, errMsg string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.m[name]
	if st == nil {
		return
	}
	st.requests++
	if ok {
		if !st.healthy {
			st.healthy = true
			st.lastChange = time.Now()
		}
		st.consec = 0
		return
	}
	st.failures++
	st.consec++
	st.lastError = errMsg
	if st.healthy {
		st.healthy = false
		st.lastChange = time.Now()
	}
}

// healthy reports a shard's current up/down view, for the pg_shard_up
// gauge.
func (h *healthTracker) healthy(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.m[name]
	return st != nil && st.healthy
}

// snapshot returns every shard's record in fleet order.
func (h *healthTracker) snapshot(order []Shard) []ShardHealthJSON {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]ShardHealthJSON, 0, len(order))
	for _, sh := range order {
		st := h.m[sh.Name]
		rec := ShardHealthJSON{
			Name: sh.Name, URL: sh.URL,
			Healthy:             st.healthy,
			LastError:           st.lastError,
			ConsecutiveFailures: st.consec,
			Requests:            st.requests,
			Failures:            st.failures,
		}
		if !st.lastChange.IsZero() {
			rec.LastChangeMSAgo = float64(time.Since(st.lastChange).Microseconds()) / 1000
		}
		out = append(out, rec)
	}
	return out
}

// handleReadyz is the coordinator readiness probe: every shard's /readyz
// must answer 200 within the probe timeout. 503 names the shards that
// are not ready — an orchestrator holds traffic until the whole fleet
// can answer, because any missing shard would fail every query anyway.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	timeout := c.opt.ShardTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	type probe struct {
		name string
		err  error
	}
	results := make([]probe, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			results[i] = probe{name: sh.Name, err: c.probeReady(ctx, sh)}
		}(i, sh)
	}
	wg.Wait()

	var failed []string
	for _, p := range results {
		if p.err != nil {
			failed = append(failed, p.name)
		}
	}
	if len(failed) > 0 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		writeReadyz(w, false, len(c.shards), failed)
		return
	}
	writeReadyz(w, true, len(c.shards), nil)
}

func writeReadyz(w http.ResponseWriter, ready bool, shards int, failed []string) {
	out := map[string]any{"ready": ready, "shards": shards}
	if len(failed) > 0 {
		out["failed"] = failed
	}
	writeJSON(w, out)
}

// probeReady GETs one shard's /readyz. The outcome feeds the health
// tracker like any other exchange.
func (c *Coordinator) probeReady(ctx context.Context, sh Shard) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.URL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.health.record(sh.Name, false, err.Error())
		return err
	}
	resp.Body.Close()
	c.health.record(sh.Name, true, "")
	if resp.StatusCode != http.StatusOK {
		return errNotReady
	}
	return nil
}

// handleStats reports the coordinator's own counters plus every shard's
// health record.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"shards":    c.health.snapshot(c.shards),
		"queries":   c.mx.totalQueries(),
		"uptime_ms": float64(time.Since(c.start).Microseconds()) / 1000,
	})
}
