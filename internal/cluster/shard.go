package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"probgraph/internal/obs"
)

// shardResult is one shard's answer to a fan-out sub-request: the HTTP
// status and body on a completed exchange, or the transport error that
// survived the retries.
type shardResult struct {
	shard  Shard
	status int
	body   []byte
	err    error
}

// call performs one shard sub-request: POST body to sh.URL+path under the
// caller's context (client cancellation propagates into the shard),
// bounded per attempt by ShardTimeout, retried on transport errors only —
// an HTTP error status is the shard's answer, not a flaky network, and
// retrying a non-idempotent evaluation would change nothing anyway
// (responses are deterministic). Outcomes feed the shard's health record
// and metrics.
func (c *Coordinator) call(ctx context.Context, sh Shard, path string, body []byte) shardResult {
	sp := obs.SpanFrom(ctx).Child("shard:" + sh.Name + path)
	start := time.Now()
	res := shardResult{shard: sh}
	for attempt := 0; ; attempt++ {
		res.status, res.body, res.err = c.attempt(ctx, sh, path, body)
		if res.err == nil || attempt >= c.opt.Retries || ctx.Err() != nil {
			break
		}
	}
	c.mx.shardLatency[sh.Name].Observe(time.Since(start).Seconds())
	switch {
	case res.err != nil:
		c.mx.shardRequests[sh.Name]["error"].Inc()
		c.health.record(sh.Name, false, res.err.Error())
	case res.status != http.StatusOK:
		c.mx.shardRequests[sh.Name]["http_error"].Inc()
		// A non-200 is a served answer (400/422/504...), not a shard
		// outage: the shard is up and talking, so health stays good.
		c.health.record(sh.Name, true, "")
	default:
		c.mx.shardRequests[sh.Name]["ok"].Inc()
		c.health.record(sh.Name, true, "")
	}
	sp.End()
	return res
}

// attempt is one HTTP exchange with a shard.
func (c *Coordinator) attempt(ctx context.Context, sh Shard, path string, body []byte) (int, []byte, error) {
	actx := ctx
	if c.opt.ShardTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.opt.ShardTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, sh.URL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// fanout POSTs body to path on every shard concurrently and waits for all
// of them (each bounded by ShardTimeout and the request context, so the
// wait is bounded too). Results are in shard order.
func (c *Coordinator) fanout(ctx context.Context, path string, body []byte) []shardResult {
	out := make([]shardResult, len(c.shards))
	var wg sync.WaitGroup
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh Shard) {
			defer wg.Done()
			out[i] = c.call(ctx, sh, path, body)
		}(i, sh)
	}
	wg.Wait()
	return out
}

// shardErrorBody is the structured error payload shards answer non-200
// with (the single-node server's httpError / evalError shapes).
type shardErrorBody struct {
	Error     string `json:"error"`
	Timeout   bool   `json:"timeout"`
	Cancelled bool   `json:"cancelled"`
}

// shardFailure scans fan-out results in shard order and reports the first
// one that prevents a complete merge, as the HTTP answer the coordinator
// must give. Shard order makes the choice deterministic when several
// shards fail at once. nil means every shard answered 200.
//
// Mapping: a transport failure (after retries) is a 503 naming the shard
// — the structured "one shard down" answer, never a silently partial
// result. A shard's own structured error propagates with its status
// (504 deadline, 503 cancelled, 422 evaluation), prefixed with the shard
// name so operators see where it happened.
func shardFailure(results []shardResult) *coordError {
	for _, res := range results {
		if res.err != nil {
			return &coordError{
				status: http.StatusServiceUnavailable,
				shard:  res.shard.Name,
				msg:    fmt.Sprintf("shard %s (%s) unreachable: %v", res.shard.Name, res.shard.URL, res.err),
			}
		}
		if res.status != http.StatusOK {
			var body shardErrorBody
			msg := fmt.Sprintf("shard %s answered %d", res.shard.Name, res.status)
			if json.Unmarshal(res.body, &body) == nil && body.Error != "" {
				msg = fmt.Sprintf("shard %s: %s", res.shard.Name, body.Error)
			}
			return &coordError{
				status: res.status, shard: res.shard.Name, msg: msg,
				timeout: body.Timeout, cancelled: body.Cancelled,
			}
		}
	}
	return nil
}

// generationMismatch checks that every shard answered from the same
// database generation — merging across generations would silently mix
// two database states. The fleet operator re-partitions all shards from
// one source snapshot, so a mismatch means a half-rolled-out fleet:
// answered 503 (retry when the rollout settles), naming both shards.
func generationMismatch(results []shardResult, gens []uint64) *coordError {
	for i := 1; i < len(gens); i++ {
		if gens[i] != gens[0] {
			return &coordError{
				status: http.StatusServiceUnavailable,
				shard:  results[i].shard.Name,
				msg: fmt.Sprintf("shard generation mismatch: %s at %d, %s at %d",
					results[0].shard.Name, gens[0], results[i].shard.Name, gens[i]),
			}
		}
	}
	return nil
}

// coordError is a structured coordinator-level failure.
type coordError struct {
	status    int
	shard     string
	msg       string
	timeout   bool
	cancelled bool
}

func (e *coordError) Error() string { return e.msg }

func (e *coordError) write(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	out := map[string]any{"error": e.msg}
	if e.shard != "" {
		out["shard"] = e.shard
	}
	if e.timeout {
		out["timeout"] = true
	}
	if e.cancelled {
		out["cancelled"] = true
	}
	json.NewEncoder(w).Encode(out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody parses a JSON request body (POST only), mirroring the
// single-node server so clients see identical 400/405 behavior.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	// Drain to EOF: net/http arms its client-disconnect detection (which
	// cancels r.Context()) only once the body is fully consumed, and
	// Decode stops after the first JSON value.
	io.Copy(io.Discard, r.Body)
	return true
}
